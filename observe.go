package wavepipe

// Observability facade: the internal/trace event-stream API re-exported for
// library users. Attach an Observer through TranOptions.Observer; with none
// attached the engines' hot path stays allocation- and clock-read-free.
//
//	rec := wavepipe.NewTraceRecorder(0) // unbounded: keep every event
//	res, err := wavepipe.RunTransientCtx(ctx, sys, wavepipe.TranOptions{
//		TStop: 1e-3, Scheme: wavepipe.Combined, Observer: rec,
//	})
//	wavepipe.WriteChromeTrace(f, rec.Events(), rec.Snapshots())
//
// A recorded stream reconciles exactly with the run's Stats: ReplayTrace's
// Points/Solves/NRIters/LTERejects/Discarded/Recoveries equal the fields of
// the same name in Result.Stats.

import (
	"io"

	"wavepipe/internal/trace"
)

type (
	// Observer receives the structured run telemetry: one OnEvent call per
	// trace event, one OnSnapshot per periodic metrics sample. Callbacks are
	// synchronous and may come from any engine goroutine.
	Observer = trace.Observer
	// TraceEvent is one structured record of the run's event stream.
	TraceEvent = trace.Event
	// TraceSnapshot is one periodic metrics sample.
	TraceSnapshot = trace.Snapshot
	// TraceKind classifies a TraceEvent.
	TraceKind = trace.Kind
	// TracePhase identifies the solve sub-phase a timing event measured.
	TracePhase = trace.Phase
	// TraceRecorder is an in-memory Observer (bounded ring or unbounded).
	TraceRecorder = trace.Recorder
	// TraceMetrics is a live-counters Observer servable over HTTP.
	TraceMetrics = trace.Metrics
	// TraceReplayCounts are the Stats-reconcilable counters ReplayTrace
	// recomputes from a recorded stream.
	TraceReplayCounts = trace.ReplayCounts
)

// Trace event kinds.
const (
	TraceKindPredict        = trace.KindPredict        // speculative warm-start work
	TraceKindSolve          = trace.KindSolve          // one Newton point solve
	TraceKindAccept         = trace.KindAccept         // point entered the waveform
	TraceKindLTEReject      = trace.KindLTEReject      // truncation-error rejection
	TraceKindDiscard        = trace.KindDiscard        // speculative point thrown away
	TraceKindRecovery       = trace.KindRecovery       // recovery-ladder rescue
	TraceKindSerialFallback = trace.KindSerialFallback // pipeline degraded to serial
	TraceKindPhase          = trace.KindPhase          // timed solve sub-phase
	TraceKindWorker         = trace.KindWorker         // worker occupancy span
	TraceKindCancel         = trace.KindCancel         // context cancellation observed
	TraceKindCheckpoint     = trace.KindCheckpoint     // durable checkpoint written
)

// Solve sub-phases of TraceKindPhase events.
const (
	TracePhaseDeviceLoad = trace.PhaseDeviceLoad
	TracePhaseFactor     = trace.PhaseFactor
	TracePhaseTriSolve   = trace.PhaseTriSolve
	TracePhaseLTE        = trace.PhaseLTE
)

// Trace event flag bits.
const (
	TraceFlagFailed   = trace.FlagFailed   // the solve attempt errored
	TraceFlagBypassed = trace.FlagBypassed // factorization reused the prior LU
	TraceFlagResumed  = trace.FlagResumed  // solve warm-started from speculation
)

// NewTraceRecorder returns an in-memory observer. capacity > 0 bounds the
// event ring to that many newest events (an always-on flight recorder);
// capacity == 0 keeps every event (full post-run export); capacity < 0
// selects the default ring size (65536).
func NewTraceRecorder(capacity int) *TraceRecorder { return trace.NewRecorder(capacity) }

// NewTraceMetrics returns a live-metrics observer. Its Handler method serves
// Prometheus text at /metrics and expvar-style JSON elsewhere.
func NewTraceMetrics() *TraceMetrics { return trace.NewMetrics() }

// MultiObserver fans the telemetry out to several observers (nils skipped).
func MultiObserver(obs ...Observer) Observer { return trace.Multi(obs...) }

// WriteTraceJSONL renders events and snapshots as one JSON object per line,
// merged in emission order.
func WriteTraceJSONL(w io.Writer, events []TraceEvent, snaps []TraceSnapshot) error {
	return trace.WriteJSONL(w, events, snaps)
}

// ReadTraceJSONL parses a stream produced by WriteTraceJSONL.
func ReadTraceJSONL(r io.Reader) ([]TraceEvent, []TraceSnapshot, error) {
	return trace.ReadJSONL(r)
}

// WriteChromeTrace renders events and snapshots as Chrome trace_event JSON,
// loadable in chrome://tracing or Perfetto for flame-view inspection of the
// pipeline stages.
func WriteChromeTrace(w io.Writer, events []TraceEvent, snaps []TraceSnapshot) error {
	return trace.WriteChromeTrace(w, events, snaps)
}

// ReplayTrace recomputes the run counters from a recorded event stream. On a
// complete (undropped) trace they reconcile exactly with Result.Stats.
func ReplayTrace(events []TraceEvent) TraceReplayCounts { return trace.Replay(events) }
