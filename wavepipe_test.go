package wavepipe

import (
	"math"
	"strings"
	"testing"
)

func lowpass(t *testing.T) *System {
	t.Helper()
	c := NewCircuit("lowpass")
	in := c.Node("in")
	out := c.Node("out")
	AddVSource(c, "V1", in, Ground, Sin{Amplitude: 1, Freq: 1e3})
	AddResistor(c, "R1", in, out, 1e3)
	AddCapacitor(c, "C1", out, Ground, 1e-7)
	sys, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestAllSchemesThroughFacade(t *testing.T) {
	ref, err := RunTransient(lowpass(t), TranOptions{TStop: 3e-3})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []Scheme{Backward, Forward, Combined, FineGrained} {
		res, err := RunTransient(lowpass(t), TranOptions{TStop: 3e-3, Scheme: s})
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		dev, err := Compare(res.W, ref.W, "out")
		if err != nil {
			t.Fatal(err)
		}
		if dev.RelMax() > 0.02 {
			t.Fatalf("%v deviates by %g", s, dev.RelMax())
		}
	}
}

func TestSchemeString(t *testing.T) {
	names := map[Scheme]string{
		Serial: "serial", Backward: "backward", Forward: "forward",
		Combined: "combined", FineGrained: "finegrain", Scheme(99): "unknown",
	}
	for s, want := range names {
		if s.String() != want {
			t.Fatalf("%d.String() = %q", s, s.String())
		}
	}
}

func TestTranOptionsValidation(t *testing.T) {
	sys := lowpass(t)
	if _, err := RunTransient(sys, TranOptions{}); err == nil {
		t.Fatal("TStop=0 must fail")
	}
	if _, err := RunTransient(sys, TranOptions{TStop: 1e-3, Scheme: Scheme(42)}); err == nil {
		t.Fatal("bad scheme must fail")
	}
	if _, err := RunTransient(sys, TranOptions{TStop: 1e-3, IC: map[string]float64{"zz": 1}}); err == nil {
		t.Fatal("IC for unknown node must fail")
	}
	if _, err := RunTransient(sys, TranOptions{TStop: 1e-3, Record: []string{"zz"}}); err == nil {
		t.Fatal("recording unknown node must fail")
	}
}

func TestRecordAndToleranceOptions(t *testing.T) {
	res, err := RunTransient(lowpass(t), TranOptions{
		TStop:  1e-3,
		Record: []string{"out"},
		RelTol: 1e-4,
		AbsTol: 1e-8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.W.Names) != 1 || res.W.Names[0] != "out" {
		t.Fatalf("record list = %v", res.W.Names)
	}
	// Tighter tolerance → more points than default.
	def, err := RunTransient(lowpass(t), TranOptions{TStop: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Points <= def.Stats.Points {
		t.Fatalf("tight tolerance used %d points, default %d", res.Stats.Points, def.Stats.Points)
	}
}

func TestICAndUICThroughFacade(t *testing.T) {
	c := NewCircuit("discharge")
	out := c.Node("out")
	AddResistor(c, "R1", out, Ground, 1e3)
	AddCapacitor(c, "C1", out, Ground, 1e-6)
	sys, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunTransient(sys, TranOptions{
		TStop: 2e-3, UIC: true, IC: map[string]float64{"out": 3, "0": 99},
	})
	if err != nil {
		t.Fatal(err)
	}
	v, _ := res.W.At("out", 1e-3)
	want := 3 * math.Exp(-1)
	if math.Abs(v-want) > 0.01 {
		t.Fatalf("discharge = %g, want %g", v, want)
	}
}

func TestRunDeckEndToEnd(t *testing.T) {
	deck := `facade deck test
V1 in 0 SIN(0 1 10k)
R1 in out 1k
C1 out 0 10n
.options reltol=2e-3
.tran 1u 200u
.end
`
	d, err := ParseDeck(deck)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunDeck(d, TranOptions{Scheme: Combined})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Points < 20 {
		t.Fatalf("points = %d", res.Stats.Points)
	}
	// Low-pass attenuation at 10 kHz with fc ≈ 15.9 kHz: |H| ≈ 0.85.
	sig, err := res.W.Signal("out")
	if err != nil {
		t.Fatal(err)
	}
	peak := 0.0
	for _, v := range sig[len(sig)/2:] {
		if v > peak {
			peak = v
		}
	}
	if peak < 0.7 || peak > 0.95 {
		t.Fatalf("filter peak = %g, want ≈0.85", peak)
	}
	// Round-trip the deck through the writer.
	var sb strings.Builder
	if err := WriteDeck(&sb, d); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), ".tran") {
		t.Fatal("written deck lost .tran")
	}
}

func TestRunDeckErrors(t *testing.T) {
	d, err := ParseDeck("no tran\nR1 a 0 1k\nV1 a 0 1\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunDeck(d, TranOptions{}); err == nil {
		t.Fatal("deck without .TRAN and without TStop must fail")
	}
	if _, err := RunDeck(d, TranOptions{TStop: 1e-6}); err != nil {
		t.Fatalf("explicit TStop should recover: %v", err)
	}
}

func TestDefaultModels(t *testing.T) {
	if DefaultDiodeModel().IS != 1e-14 {
		t.Fatal("diode default")
	}
	if DefaultMOSModel(PMOS).Type != PMOS {
		t.Fatal("mos default")
	}
}

func TestControlledSourcesThroughFacade(t *testing.T) {
	c := NewCircuit("ctrl")
	in := c.Node("in")
	o1 := c.Node("o1")
	o2 := c.Node("o2")
	AddVSource(c, "V1", in, Ground, DC(1))
	AddVCVS(c, "E1", o1, Ground, in, Ground, 0.5)
	AddResistor(c, "R1", o1, Ground, 1e3)
	AddVCCS(c, "G1", Ground, o2, in, Ground, 1e-3)
	AddResistor(c, "R2", o2, Ground, 1e3)
	AddInductor(c, "L1", o2, Ground, 1e-3)
	AddISource(c, "I1", Ground, o2, DC(0))
	AddDiode(c, "D1", o1, Ground, DefaultDiodeModel(), 1)
	AddMOSFET(c, "M1", o1, in, Ground, Ground, DefaultMOSModel(NMOS), 1e-6, 1e-6)
	sys, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunTransient(sys, TranOptions{TStop: 1e-3, Method: Trapezoidal}); err != nil {
		t.Fatal(err)
	}
}
