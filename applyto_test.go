package wavepipe_test

import (
	"strings"
	"testing"

	"wavepipe"
)

const applyToDeck = `precedence test deck
V1 in 0 DC 1
R1 in out 1k
C1 out 0 1n
.tran 0.1u 30u 0 0.5u uic
.options reltol=5e-4 abstol=2e-9
.ic v(out)=0.25
.nodeset v(in)=0.9
.end
`

func parseApplyToDeck(t *testing.T) *wavepipe.Deck {
	t.Helper()
	d, err := wavepipe.ParseDeck(applyToDeck)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestApplyToDeckDefaults: with zero-valued options every field comes from
// the deck's cards.
func TestApplyToDeckDefaults(t *testing.T) {
	d := parseApplyToDeck(t)
	got, err := d.ApplyTo(wavepipe.TranOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got.TStop != d.Tran.TStop || got.TStop < 29e-6 {
		t.Errorf("TStop = %g, want 30u from .TRAN", got.TStop)
	}
	if !got.UIC {
		t.Error("UIC not taken from .TRAN")
	}
	if got.MaxStep != d.Tran.TMax || got.MaxStep < 0.4e-6 {
		t.Errorf("MaxStep = %g, want the .TRAN tmax", got.MaxStep)
	}
	if got.RelTol != 5e-4 || got.AbsTol != 2e-9 {
		t.Errorf("tolerances = %g/%g, want .OPTIONS values", got.RelTol, got.AbsTol)
	}
	if got.IC["out"] != 0.25 {
		t.Errorf("IC = %v, want the .IC card", got.IC)
	}
	if got.NodeSet["in"] != 0.9 {
		t.Errorf("NodeSet = %v, want the .NODESET card", got.NodeSet)
	}
}

// TestApplyToExplicitWins: explicitly set TranOptions fields override every
// deck card.
func TestApplyToExplicitWins(t *testing.T) {
	d := parseApplyToDeck(t)
	in := wavepipe.TranOptions{
		TStop:   1e-6,
		MaxStep: 1e-7,
		RelTol:  1e-2,
		AbsTol:  1e-5,
		IC:      map[string]float64{"out": 0.5},
		NodeSet: map[string]float64{"in": 0.1},
	}
	got, err := d.ApplyTo(in)
	if err != nil {
		t.Fatal(err)
	}
	if got.TStop != 1e-6 || got.MaxStep != 1e-7 {
		t.Errorf("explicit TStop/MaxStep overridden: %g/%g", got.TStop, got.MaxStep)
	}
	if got.RelTol != 1e-2 || got.AbsTol != 1e-5 {
		t.Errorf("explicit tolerances overridden: %g/%g", got.RelTol, got.AbsTol)
	}
	if got.IC["out"] != 0.5 || len(got.IC) != 1 {
		t.Errorf("explicit IC overridden: %v", got.IC)
	}
	if got.NodeSet["in"] != 0.1 {
		t.Errorf("explicit NodeSet overridden: %v", got.NodeSet)
	}
	// UIC is an OR, not an override: the deck's flag persists.
	if !got.UIC {
		t.Error("deck UIC dropped")
	}
}

// TestApplyToUICFromOptions: the flag also propagates the other way.
func TestApplyToUICFromOptions(t *testing.T) {
	d, err := wavepipe.ParseDeck("uic deck\nV1 in 0 DC 1\nR1 in 0 1k\n.tran 1u 10u\n.end\n")
	if err != nil {
		t.Fatal(err)
	}
	got, err := d.ApplyTo(wavepipe.TranOptions{UIC: true})
	if err != nil {
		t.Fatal(err)
	}
	if !got.UIC {
		t.Error("explicit UIC lost")
	}
}

// TestApplyToNoTranNoTStop: a deck without .TRAN and options without TStop
// is an error, not a zero-length run. ApplyTo itself only merges — the
// rejection comes from the single validation path when the run starts.
func TestApplyToNoTranNoTStop(t *testing.T) {
	d, err := wavepipe.ParseDeck("no tran\nV1 in 0 DC 1\nR1 in 0 1k\n.end\n")
	if err != nil {
		t.Fatal(err)
	}
	merged, aerr := d.ApplyTo(wavepipe.TranOptions{})
	if aerr != nil {
		t.Fatalf("ApplyTo is a pure merge and must not error: %v", aerr)
	}
	if merged.TStop != 0 {
		t.Fatalf("TStop = %g, want 0 (deck has no .TRAN)", merged.TStop)
	}
	if _, rerr := wavepipe.RunDeck(d, wavepipe.TranOptions{}); rerr == nil {
		t.Fatal("expected an error for missing .TRAN and TStop")
	} else if !strings.Contains(rerr.Error(), ".TRAN") {
		t.Fatalf("unhelpful error: %v", rerr)
	}
	// But an explicit TStop rescues it.
	got, aerr := d.ApplyTo(wavepipe.TranOptions{TStop: 1e-6})
	if aerr != nil {
		t.Fatal(aerr)
	}
	if got.TStop != 1e-6 {
		t.Fatalf("TStop = %g", got.TStop)
	}
}

// TestApplyToDoesNotMutateDeck: merging twice from the same deck gives the
// same answer (the deck is read-only to ApplyTo).
func TestApplyToDoesNotMutateDeck(t *testing.T) {
	d := parseApplyToDeck(t)
	a, err := d.ApplyTo(wavepipe.TranOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.ApplyTo(wavepipe.TranOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if a.TStop != b.TStop || a.MaxStep != b.MaxStep || a.RelTol != b.RelTol {
		t.Fatalf("repeated ApplyTo diverged: %+v vs %+v", a, b)
	}
}
