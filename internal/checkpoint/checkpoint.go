// Package checkpoint makes transient runs durable: periodic, versioned
// snapshots of complete engine state taken at accepted-step boundaries — the
// only safe suspension points WavePipe's accept/discard semantics define —
// plus the wall-clock guard rails (deadline timer, stall watchdog) a
// simulation service needs to preempt and migrate runs.
//
// A State captures everything the serial engine needs to continue exactly
// where it stopped: the trailing integrate.History window, the step
// controller's position (h, hUsed, afterBreak), the junction-limiting state,
// the recorded waveform, accumulated statistics, the recovery log, the
// incremental-assembly generation counter, and — crucially for bit-identity —
// the sparse LU factorization (pivot sequence, patterns, values), so the
// first post-resume factorization takes the same Refactor path as the
// uninterrupted run. The encoding is deterministic (fixed field order,
// little-endian, no maps) and guarded by a CRC, a version number and
// bounds-checked lengths: truncated, corrupted or wrong-version files decode
// to a typed faults error, never a panic or silent garbage.
//
// The Controller is the run's guard: it owns the first-wins abort flag the
// Newton loop and the engines poll, runs the watchdog goroutine, decides
// when a periodic snapshot is due, and persists snapshots atomically
// (write-to-temp, rename), so even kill -9 mid-write leaves the previous
// checkpoint intact. Periodic saves skip the fsync — atomic rename already
// survives process death, and the full fsync dance is paid once, by the
// final flush on the way out (SaveFinal), where latency no longer matters.
package checkpoint

import (
	"fmt"

	"wavepipe/internal/faults"
	"wavepipe/internal/integrate"
	"wavepipe/internal/sparse"
)

// Format versioning.
const (
	// Version is the current checkpoint format version.
	Version = 1
)

// magic identifies a WavePipe checkpoint file.
var magic = [4]byte{'W', 'P', 'C', 'P'}

// State is one complete, resumable snapshot of a transient run at an
// accepted-step boundary.
type State struct {
	// Circuit fingerprint, validated on resume so a checkpoint can never be
	// applied to a different circuit.
	N          int // MNA unknowns
	NumStates  int // device limiting-state slots
	NumDevices int
	PatternNNZ int // structural nonzeros of the MNA pattern

	// Run identity.
	TStop  float64
	Method int // integrate.Method the run was started with
	Scheme int // informational: facade scheme that wrote the snapshot

	// Engine position.
	T          float64 // time of the last accepted point
	H          float64 // next step size the controller chose
	HUsed      float64 // size of the last accepted step
	AfterBreak bool    // first step after a breakpoint restart
	Warmup     int     // pipeline serial-warmup stages remaining (0 for serial)
	Generation uint64  // incremental-assembly generation counter

	// Engine state proper.
	Hist  []*integrate.Point // trailing window, ascending, deep-copied
	SPrev []float64          // junction limiting state: previous iterate
	SNext []float64          // junction limiting state: current iterate
	LU    *sparse.LUState    // last factorization (nil if none yet)

	Stats    Stats
	Recovery []RecoveryEvent

	// Recorded waveform up to T.
	WaveNames []string
	WaveIndex []int
	WaveTimes []float64
	WaveData  [][]float64
}

// Stats mirrors transient.Stats with fixed-width fields so the encoding is
// platform-independent. The transient package converts in both directions
// (it imports checkpoint, so checkpoint cannot name its type).
type Stats struct {
	Points                 int64
	Solves                 int64
	NRIters                int64
	LTERejects             int64
	NRFailures             int64
	Discarded              int64
	OpIters                int64
	Stages                 int64
	Recoveries             int64
	WorkerPanics           int64
	DegradedStages         int64
	BypassedFactorizations int64
	Refactorizations       int64
	FullFactorizations     int64
	BypassedEvals          int64
	LinearStampHits        int64
	CriticalNanos          int64
	CoreBudget             int64
	PipelineWorkers        int64
	IntraWorkers           int64
	PipelineSerialized     bool
}

// RecoveryEvent mirrors transient.RecoveryEvent (same import-direction
// reason as Stats).
type RecoveryEvent struct {
	T      float64
	Kind   string
	Detail string
}

// bad wraps a checkpoint-format complaint in the typed error chain every
// decode/validation failure surfaces: a faults.SimError whose cause reaches
// faults.ErrBadCheckpoint.
func bad(format string, args ...any) error {
	return &faults.SimError{
		Phase: "checkpoint",
		Node:  -1,
		Cause: fmt.Errorf("%w: %s", faults.ErrBadCheckpoint, fmt.Sprintf(format, args...)),
	}
}

// Matches validates the snapshot against the live circuit and run options.
// A mismatch means the checkpoint belongs to a different circuit or an
// incompatibly configured run and resuming would compute garbage.
func (s *State) Matches(n, numStates, numDevices, patternNNZ int, tstop float64, method int) error {
	switch {
	case s.N != n:
		return bad("circuit mismatch: %d unknowns, checkpoint has %d", n, s.N)
	case s.NumStates != numStates:
		return bad("circuit mismatch: %d state slots, checkpoint has %d", numStates, s.NumStates)
	case s.NumDevices != numDevices:
		return bad("circuit mismatch: %d devices, checkpoint has %d", numDevices, s.NumDevices)
	case s.PatternNNZ != patternNNZ:
		return bad("circuit mismatch: %d pattern nonzeros, checkpoint has %d", patternNNZ, s.PatternNNZ)
	case s.TStop != tstop:
		return bad("run mismatch: tstop %g, checkpoint has %g", tstop, s.TStop)
	case s.Method != method:
		return bad("run mismatch: method %d, checkpoint has %d", method, s.Method)
	case len(s.Hist) == 0:
		return bad("empty history")
	}
	return nil
}
