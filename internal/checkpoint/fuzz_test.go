package checkpoint

import (
	"errors"
	"testing"

	"wavepipe/internal/faults"
	"wavepipe/internal/integrate"
)

// FuzzDecode drives Decode with arbitrary bytes. The contract under test:
// Decode either returns a structurally valid *State or a typed
// faults.SimError wrapping ErrBadCheckpoint — it never panics, and a
// success must survive a re-encode/re-decode round trip (no silently
// loaded garbage).
func FuzzDecode(f *testing.F) {
	// Seed corpus: valid encodings of representative states plus the
	// classic hostile shapes (empty, header-only, huge length prefix).
	full := &State{
		N: 2, NumStates: 1, NumDevices: 2, PatternNNZ: 3,
		TStop: 1e-6, Method: 2,
		T: 2e-7, H: 1e-8, HUsed: 1e-8,
		Hist: []*integrate.Point{
			{T: 1e-7, X: []float64{1, 2}, Q: []float64{3, 4}, Qdot: []float64{5, 6}},
			{T: 2e-7, X: []float64{7, 8}, Q: []float64{9, 10}, Qdot: []float64{11, 12}},
		},
		SPrev: []float64{0.5}, SNext: []float64{0.6},
		Recovery:  []RecoveryEvent{{T: 1.5e-7, Kind: "damping", Detail: "d"}},
		WaveNames: []string{"a"},
		WaveIndex: []int{1},
		WaveTimes: []float64{1e-7, 2e-7},
		WaveData:  [][]float64{{1}, {2}},
	}
	f.Add(Encode(full))
	minimal := &State{
		N: 1, NumStates: 0, NumDevices: 1, PatternNNZ: 1,
		TStop: 1, Method: 0, T: 0.5, H: 0.1,
		Hist:  []*integrate.Point{{T: 0.5, X: []float64{1}, Q: []float64{0}, Qdot: []float64{0}}},
		SPrev: []float64{}, SNext: []float64{},
		WaveTimes: []float64{0.5}, WaveData: [][]float64{{}},
	}
	f.Add(Encode(minimal))
	f.Add([]byte{})
	f.Add([]byte("WPCP"))
	f.Add([]byte("WPCP\x01\x00\x00\x00"))
	f.Add([]byte("WPCP\x01\x00\x00\x00\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff"))
	bigLen := Encode(minimal)
	if len(bigLen) > 120 {
		// Smash a plausible length-prefix region with 0xFF so the
		// count-vs-remaining guard is exercised from the corpus on.
		for i := 100; i < 112; i++ {
			bigLen[i] = 0xff
		}
	}
	f.Add(bigLen)

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(data) // must not panic
		if err != nil {
			if !errors.Is(err, faults.ErrBadCheckpoint) {
				t.Fatalf("decode error %v does not wrap ErrBadCheckpoint", err)
			}
			var se *faults.SimError
			if !errors.As(err, &se) || se.Phase != "checkpoint" {
				t.Fatalf("decode error %v is not a checkpoint-phase SimError", err)
			}
			return
		}
		// Accepted input: the state must be internally consistent enough to
		// encode deterministically and round-trip.
		re := Encode(s)
		s2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-decode of accepted state failed: %v", err)
		}
		if len(s2.Hist) != len(s.Hist) || len(s2.WaveTimes) != len(s.WaveTimes) {
			t.Fatal("re-decoded state lost structure")
		}
	})
}
