package checkpoint

import (
	"sync"
	"sync/atomic"
	"time"

	"wavepipe/internal/faults"
	"wavepipe/internal/trace"
)

// Defaults for Config fields left zero.
const (
	// DefaultEvery is the periodic-save cadence in accepted points when a
	// checkpoint path is configured without an explicit interval. At this
	// cadence the measured overhead on the grid16 serial benchmark is well
	// under the 2% budget.
	DefaultEvery = 256
	// DefaultStallFloor is the minimum idle time before the stall watchdog
	// may trip, so a single genuinely hard time point (one slow solve, not
	// a hang) does not abort the run.
	DefaultStallFloor = time.Second
	// DefaultPoll is the watchdog's wake-up period; it bounds how late a
	// deadline or stall is detected.
	DefaultPoll = 25 * time.Millisecond
	// minStallFactor is the lowest accepted watchdog multiple: below ~2×
	// the trailing average, ordinary step-to-step variance would trip it.
	minStallFactor = 2.0
)

// Config describes one run's durability and time-bound contract.
type Config struct {
	// Path is the checkpoint file. Empty disables persistence; snapshots
	// are still retained in memory for panic salvage.
	Path string
	// Every is the periodic-save cadence in accepted points (0 = DefaultEvery).
	Every int
	// Deadline is the wall-clock budget measured from Start (0 = none).
	Deadline time.Duration
	// StallFactor arms the watchdog: the run aborts with ErrStalled when no
	// step is accepted within StallFactor × the trailing EWMA of
	// inter-accept wall time (subject to StallFloor). 0 disables it.
	StallFactor float64
	// StallFloor is the minimum idle time before a stall trips
	// (0 = DefaultStallFloor).
	StallFloor time.Duration
	// Poll is the watchdog period (0 = DefaultPoll).
	Poll time.Duration
}

// Controller guards one run: it owns the cooperative abort flag, runs the
// deadline/stall watchdog goroutine, decides when periodic snapshots are
// due, and persists them. Engine-facing methods (NoteAccept, Save, Err) are
// called from the engine's coordinating goroutine; the watchdog shares only
// atomics and the abort flag with it. All engine-facing methods are nil-safe
// so unguarded runs pay a nil check and nothing else.
type Controller struct {
	cfg   Config
	abort faults.Abort
	start time.Time

	tr *trace.Tracer

	accepts int // engine goroutine only

	// Watchdog-shared heartbeat, all in nanoseconds since start.
	lastBeat atomic.Int64 // time of the most recent accepted step
	emaBeat  atomic.Int64 // EWMA of inter-accept intervals
	beats    atomic.Int64 // accepted-step count (EWMA valid from the 2nd)

	quit    chan struct{}
	wg      sync.WaitGroup
	started bool
	stopped bool

	mu       sync.Mutex
	retained *State
	saveErr  error
	saves    int
}

// NewController builds a controller from the config, applying defaults.
func NewController(cfg Config) *Controller {
	if cfg.Path != "" && cfg.Every <= 0 {
		cfg.Every = DefaultEvery
	}
	if cfg.StallFloor <= 0 {
		cfg.StallFloor = DefaultStallFloor
	}
	if cfg.Poll <= 0 {
		cfg.Poll = DefaultPoll
	}
	if cfg.StallFactor > 0 && cfg.StallFactor < minStallFactor {
		cfg.StallFactor = minStallFactor
	}
	return &Controller{cfg: cfg}
}

// NewRetained returns a controller with no path, deadline or watchdog: it
// persists nothing and only retains the latest snapshot in memory. The
// time-parallel window coordinator attaches one to each inner engine run
// to collect its final state — the same state the engines already hand to
// SaveFinal on every exit path — and uses it as the next window's seed.
func NewRetained() *Controller {
	return NewController(Config{})
}

// SetTracer attaches the run's event stream; each Save emits one
// KindCheckpoint event. Must be called before Start.
func (c *Controller) SetTracer(tr *trace.Tracer) {
	if c != nil {
		c.tr = tr
	}
}

// Start records the run's wall-clock origin and launches the watchdog if a
// deadline or stall factor is configured.
func (c *Controller) Start() {
	if c == nil || c.started {
		return
	}
	c.started = true
	c.start = time.Now()
	if c.cfg.Deadline <= 0 && c.cfg.StallFactor <= 0 {
		return
	}
	c.quit = make(chan struct{})
	c.wg.Add(1)
	go c.watch()
}

// Stop terminates the watchdog and waits for it; it is idempotent and safe
// on a controller that never started.
func (c *Controller) Stop() {
	if c == nil || !c.started || c.stopped {
		return
	}
	c.stopped = true
	if c.quit != nil {
		close(c.quit)
		c.wg.Wait()
	}
}

func (c *Controller) watch() {
	defer c.wg.Done()
	tick := time.NewTicker(c.cfg.Poll)
	defer tick.Stop()
	for {
		select {
		case <-c.quit:
			return
		case <-tick.C:
			now := time.Since(c.start)
			if c.cfg.Deadline > 0 && now >= c.cfg.Deadline {
				c.abort.Trip(faults.ErrDeadlineExceeded)
				return
			}
			if c.cfg.StallFactor > 0 && c.beats.Load() >= 2 {
				idle := now.Nanoseconds() - c.lastBeat.Load()
				thr := int64(c.cfg.StallFactor * float64(c.emaBeat.Load()))
				if floor := c.cfg.StallFloor.Nanoseconds(); thr < floor {
					thr = floor
				}
				if idle > thr {
					c.abort.Trip(faults.ErrStalled)
					return
				}
			}
		}
	}
}

// Active reports whether a guard is attached at all.
func (c *Controller) Active() bool { return c != nil }

// AbortFlag returns the run's cooperative stop flag (nil when unguarded),
// for wiring into workspaces so the Newton loop can poll it.
func (c *Controller) AbortFlag() *faults.Abort {
	if c == nil {
		return nil
	}
	return &c.abort
}

// Err returns the abort cause once the deadline or watchdog has tripped.
func (c *Controller) Err() error {
	if c == nil {
		return nil
	}
	return c.abort.Err()
}

// NoteAccept records one accepted step for the watchdog's heartbeat and
// reports whether a periodic snapshot is now due.
func (c *Controller) NoteAccept() bool {
	if c == nil {
		return false
	}
	now := time.Since(c.start).Nanoseconds()
	prev := c.lastBeat.Swap(now)
	if c.beats.Add(1) > 1 {
		dt := now - prev
		if old := c.emaBeat.Load(); old == 0 {
			c.emaBeat.Store(dt)
		} else {
			// EWMA with α = 1/8: smooth enough to ride out step-size
			// oscillation, fresh enough to track a slowing run.
			c.emaBeat.Store(old + (dt-old)/8)
		}
	}
	c.accepts++
	return c.cfg.Path != "" && c.cfg.Every > 0 && c.accepts%c.cfg.Every == 0
}

// Save retains the snapshot (for panic salvage) and, when a path is
// configured, persists it atomically in the relaxed mode: the write is
// torn-proof and survives process death (including kill -9) but is not
// fsynced — that cost is reserved for SaveFinal, off the hot path. The
// returned error is also latched for LastSaveErr; engines treat
// periodic-save failures as non-fatal.
func (c *Controller) Save(s *State) error {
	return c.save(s, false)
}

// SaveFinal is Save with full durability (fsync of file and directory):
// the flush engines issue once on the way out, when latency no longer
// matters and the snapshot must survive even a machine crash.
func (c *Controller) SaveFinal(s *State) error {
	return c.save(s, true)
}

func (c *Controller) save(s *State, durable bool) error {
	if c == nil || s == nil {
		return nil
	}
	began := time.Now()
	var err error
	if c.cfg.Path != "" {
		err = save(c.cfg.Path, s, durable)
	}
	c.mu.Lock()
	c.retained = s
	c.saveErr = err
	if err == nil {
		c.saves++
	}
	c.mu.Unlock()
	if c.tr.Active() {
		c.tr.Emit(trace.Event{
			Kind: trace.KindCheckpoint, T: s.T, Worker: -1,
			Dur: time.Since(began).Nanoseconds(),
		})
	}
	return err
}

// Retained returns the most recent snapshot handed to Save (persisted or
// not); panic containment salvages a partial result from it.
func (c *Controller) Retained() *State {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.retained
}

// LastSaveErr returns the outcome of the most recent Save.
func (c *Controller) LastSaveErr() error {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.saveErr
}

// Saves returns how many snapshots were successfully persisted.
func (c *Controller) Saves() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.saves
}
