package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"wavepipe/internal/faults"
	"wavepipe/internal/integrate"
	"wavepipe/internal/sparse"
	"wavepipe/internal/trace"
)

// testLU factorizes a small nonsingular matrix so tests have a real,
// Validate-passing LUState to round-trip.
func testLU(t *testing.T) *sparse.LUState {
	t.Helper()
	b := sparse.NewBuilder(3)
	slots := [][3]int{ // row, col, value index into vals
		{0, 0, 0}, {0, 1, 1}, {1, 0, 2}, {1, 1, 3}, {2, 2, 4}, {1, 2, 5},
	}
	idx := make([]int, len(slots))
	for i, s := range slots {
		idx[i] = b.Reserve(s[0], s[1])
	}
	m := b.Compile()
	vals := []float64{4, 1, 1, 3, 5, 0.5}
	for i, v := range vals {
		m.Add(idx[i], v)
	}
	s := sparse.NewSolver(m, sparse.OrderNatural)
	if err := s.Factorize(); err != nil {
		t.Fatalf("factorize: %v", err)
	}
	st := s.FactorState()
	if st == nil {
		t.Fatal("nil factor state after Factorize")
	}
	return st
}

// testState builds a fully populated snapshot (N=3, two signals, a real LU).
func testState(t *testing.T) *State {
	t.Helper()
	return &State{
		N: 3, NumStates: 2, NumDevices: 4, PatternNNZ: 6,
		TStop: 1e-6, Method: 2, Scheme: 0,
		T: 3e-7, H: 1e-8, HUsed: 0.8e-8, AfterBreak: true, Warmup: 2,
		Generation: 17,
		Hist: []*integrate.Point{
			{T: 1e-7, X: []float64{1, 2, 3}, Q: []float64{0.1, 0.2, 0.3}, Qdot: []float64{-1, -2, -3}},
			{T: 2e-7, X: []float64{1.5, 2.5, 3.5}, Q: []float64{0.15, 0.25, 0.35}, Qdot: []float64{-1.5, -2.5, -3.5}},
			{T: 3e-7, X: []float64{1.7, 2.7, 3.7}, Q: []float64{0.17, 0.27, 0.37}, Qdot: []float64{-1.7, -2.7, -3.7}},
		},
		SPrev: []float64{0.6, 0.7},
		SNext: []float64{0.61, 0.71},
		LU:    testLU(t),
		Stats: Stats{
			Points: 3, Solves: 5, NRIters: 12, LTERejects: 1, Stages: 5,
			Recoveries: 1, CriticalNanos: 12345, CoreBudget: 4,
			PipelineWorkers: 2, IntraWorkers: 2, PipelineSerialized: true,
		},
		Recovery: []RecoveryEvent{
			{T: 1.5e-7, Kind: "damping", Detail: "damping 0.05"},
		},
		WaveNames: []string{"out", "in"},
		WaveIndex: []int{2, 0},
		WaveTimes: []float64{1e-7, 2e-7, 3e-7},
		WaveData:  [][]float64{{3, 1}, {3.5, 1.5}, {3.7, 1.7}},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := testState(t)
	data := Encode(s)
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Fatalf("round trip mismatch:\n have %+v\n want %+v", got, s)
	}
	// Deterministic: same state, same bytes.
	if string(Encode(s)) != string(data) {
		t.Fatal("encoding is not deterministic")
	}
}

func TestEncodeDecodeNoLU(t *testing.T) {
	s := testState(t)
	s.LU = nil
	got, err := Decode(Encode(s))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.LU != nil {
		t.Fatal("decoded LU should be nil")
	}
}

// wantBadCheckpoint asserts the full typed chain: a *faults.SimError in
// phase "checkpoint" wrapping faults.ErrBadCheckpoint.
func wantBadCheckpoint(t *testing.T, err error, ctxt string) {
	t.Helper()
	if err == nil {
		t.Fatalf("%s: expected error, got nil", ctxt)
	}
	if !errors.Is(err, faults.ErrBadCheckpoint) {
		t.Fatalf("%s: error %v does not wrap ErrBadCheckpoint", ctxt, err)
	}
	var se *faults.SimError
	if !errors.As(err, &se) {
		t.Fatalf("%s: error %v is not a SimError", ctxt, err)
	}
	if se.Phase != "checkpoint" {
		t.Fatalf("%s: phase %q, want checkpoint", ctxt, se.Phase)
	}
}

func TestDecodeTruncated(t *testing.T) {
	data := Encode(testState(t))
	// Every truncation length must fail loudly, never panic.
	for _, n := range []int{0, 1, 4, 7, 8, 11, 12, 40, len(data) / 2, len(data) - 1} {
		if _, err := Decode(data[:n]); err == nil {
			t.Fatalf("truncation to %d bytes decoded successfully", n)
		} else {
			wantBadCheckpoint(t, err, "truncated")
		}
	}
}

func TestDecodeCorrupted(t *testing.T) {
	data := Encode(testState(t))
	// Flip one bit in every region of the file: header, payload, CRC.
	for _, off := range []int{0, 5, 9, 20, 100, len(data) / 2, len(data) - 2} {
		mut := append([]byte(nil), data...)
		mut[off] ^= 0x40
		if _, err := Decode(mut); err == nil {
			t.Fatalf("corruption at offset %d decoded successfully", off)
		} else {
			wantBadCheckpoint(t, err, "corrupted")
		}
	}
}

func TestDecodeWrongVersion(t *testing.T) {
	data := Encode(testState(t))
	mut := append([]byte(nil), data...)
	mut[4] = 99
	_, err := Decode(mut)
	wantBadCheckpoint(t, err, "wrong version")
	if !strings.Contains(err.Error(), "version") {
		t.Fatalf("error %v does not mention the version", err)
	}
}

func TestDecodeTrailingBytes(t *testing.T) {
	data := Encode(testState(t))
	_, err := Decode(append(append([]byte(nil), data...), 0, 0, 0))
	wantBadCheckpoint(t, err, "trailing bytes")
}

func TestMatches(t *testing.T) {
	s := testState(t)
	if err := s.Matches(3, 2, 4, 6, 1e-6, 2); err != nil {
		t.Fatalf("self-match failed: %v", err)
	}
	cases := []struct {
		name           string
		n, ns, nd, nnz int
		tstop          float64
		method         int
	}{
		{"unknowns", 4, 2, 4, 6, 1e-6, 2},
		{"states", 3, 3, 4, 6, 1e-6, 2},
		{"devices", 3, 2, 5, 6, 1e-6, 2},
		{"pattern", 3, 2, 4, 7, 1e-6, 2},
		{"tstop", 3, 2, 4, 6, 2e-6, 2},
		{"method", 3, 2, 4, 6, 1e-6, 1},
	}
	for _, c := range cases {
		err := s.Matches(c.n, c.ns, c.nd, c.nnz, c.tstop, c.method)
		wantBadCheckpoint(t, err, c.name)
	}
	empty := testState(t)
	empty.Hist = nil
	wantBadCheckpoint(t, empty.Matches(3, 2, 4, 6, 1e-6, 2), "empty history")
}

func TestSaveLoadAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.wpcp")
	s := testState(t)
	if err := Save(path, s); err != nil {
		t.Fatalf("save: %v", err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Fatal("save/load round trip mismatch")
	}
	// Overwrite with a later snapshot; no temp litter may remain.
	s.T = 4e-7
	s.Hist[2].T = 4e-7 // keep internal consistency
	if err := Save(path, s); err != nil {
		t.Fatalf("re-save: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "run.wpcp" {
		t.Fatalf("directory not clean after save: %v", entries)
	}
	got, err = Load(path)
	if err != nil || got.T != 4e-7 {
		t.Fatalf("reloaded T=%v err=%v", got.T, err)
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope.wpcp")); err == nil {
		t.Fatal("loading a missing file succeeded")
	}
}

func TestControllerNoteAcceptCadence(t *testing.T) {
	c := NewController(Config{Path: "x", Every: 3})
	c.Start()
	defer c.Stop()
	var due []int
	for i := 1; i <= 10; i++ {
		if c.NoteAccept() {
			due = append(due, i)
		}
	}
	if want := []int{3, 6, 9}; !reflect.DeepEqual(due, want) {
		t.Fatalf("due at %v, want %v", due, want)
	}
}

func TestControllerNoPathNeverDue(t *testing.T) {
	c := NewController(Config{})
	c.Start()
	defer c.Stop()
	for i := 0; i < 600; i++ {
		if c.NoteAccept() {
			t.Fatal("pathless controller reported a periodic save due")
		}
	}
}

func TestControllerNilSafe(t *testing.T) {
	var c *Controller
	c.Start()
	c.Stop()
	if c.Active() || c.NoteAccept() || c.Err() != nil || c.AbortFlag() != nil {
		t.Fatal("nil controller not inert")
	}
	if err := c.Save(&State{}); err != nil {
		t.Fatalf("nil save: %v", err)
	}
	if c.Retained() != nil || c.LastSaveErr() != nil || c.Saves() != 0 {
		t.Fatal("nil controller reports state")
	}
}

func TestControllerDeadline(t *testing.T) {
	before := runtime.NumGoroutine()
	c := NewController(Config{Deadline: 30 * time.Millisecond, Poll: 5 * time.Millisecond})
	c.Start()
	deadline := time.Now().Add(2 * time.Second)
	for c.Err() == nil {
		if time.Now().After(deadline) {
			t.Fatal("deadline never tripped")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !errors.Is(c.Err(), faults.ErrDeadlineExceeded) {
		t.Fatalf("abort cause %v, want ErrDeadlineExceeded", c.Err())
	}
	c.Stop()
	c.Stop() // idempotent
	waitGoroutines(t, before)
}

func TestControllerStall(t *testing.T) {
	before := runtime.NumGoroutine()
	c := NewController(Config{
		StallFactor: 2, StallFloor: 20 * time.Millisecond, Poll: 2 * time.Millisecond,
	})
	c.Start()
	// Two quick accepts establish a tiny EWMA; then go silent.
	c.NoteAccept()
	time.Sleep(2 * time.Millisecond)
	c.NoteAccept()
	deadline := time.Now().Add(2 * time.Second)
	for c.Err() == nil {
		if time.Now().After(deadline) {
			t.Fatal("stall watchdog never tripped")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !errors.Is(c.Err(), faults.ErrStalled) {
		t.Fatalf("abort cause %v, want ErrStalled", c.Err())
	}
	c.Stop()
	waitGoroutines(t, before)
}

func TestControllerStallNeedsTwoBeats(t *testing.T) {
	c := NewController(Config{
		StallFactor: 2, StallFloor: 5 * time.Millisecond, Poll: 2 * time.Millisecond,
	})
	c.Start()
	defer c.Stop()
	c.NoteAccept() // one beat only: no EWMA yet, watchdog must stay quiet
	time.Sleep(60 * time.Millisecond)
	if c.Err() != nil {
		t.Fatalf("watchdog tripped on a single beat: %v", c.Err())
	}
}

func TestControllerSaveRetainsAndPersists(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.wpcp")
	c := NewController(Config{Path: path})
	rec := trace.NewRecorder(0)
	c.SetTracer(trace.New(rec, 0))
	c.Start()
	defer c.Stop()
	s := testState(t)
	if err := c.Save(s); err != nil {
		t.Fatalf("save: %v", err)
	}
	if c.Retained() != s {
		t.Fatal("snapshot not retained")
	}
	if c.Saves() != 1 || c.LastSaveErr() != nil {
		t.Fatalf("saves=%d err=%v", c.Saves(), c.LastSaveErr())
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("checkpoint file missing: %v", err)
	}
	evs := rec.Events()
	found := false
	for _, e := range evs {
		if e.Kind == trace.KindCheckpoint {
			found = true
		}
	}
	if !found {
		t.Fatal("no KindCheckpoint trace event emitted")
	}
}

func TestControllerSaveErrorLatched(t *testing.T) {
	// An unwritable path: periodic saves fail but still retain the snapshot.
	c := NewController(Config{Path: filepath.Join(t.TempDir(), "no", "such", "dir", "c.wpcp")})
	c.Start()
	defer c.Stop()
	s := testState(t)
	if err := c.Save(s); err == nil {
		t.Fatal("save into a missing directory succeeded")
	}
	if c.Retained() != s {
		t.Fatal("failed save dropped the retained snapshot")
	}
	if c.LastSaveErr() == nil || c.Saves() != 0 {
		t.Fatalf("latched err=%v saves=%d", c.LastSaveErr(), c.Saves())
	}
}

func TestControllerClampsStallFactor(t *testing.T) {
	c := NewController(Config{StallFactor: 0.1})
	if c.cfg.StallFactor != minStallFactor {
		t.Fatalf("StallFactor %g, want clamped to %g", c.cfg.StallFactor, minStallFactor)
	}
}

// waitGoroutines polls until the goroutine count returns to at most the
// baseline (other tests' leftovers can only make the baseline generous).
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > baseline {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d > baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
