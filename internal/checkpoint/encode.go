package checkpoint

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"

	"wavepipe/internal/integrate"
	"wavepipe/internal/sparse"
)

// Binary layout (version 1), everything little-endian:
//
//	magic "WPCP" · u32 version · payload · u32 CRC32(IEEE, payload)
//
// The payload is a fixed field order (see Encode below) with u32 length
// prefixes on every variable-length run. Decode validates each length
// against the bytes actually remaining before allocating, so a corrupted
// length can neither over-allocate nor read out of bounds. No maps, no
// pointers, no platform-dependent widths: encoding the same State twice
// yields identical bytes.

// enc is an append-only little-endian writer.
type enc struct{ b []byte }

func (e *enc) u8(v uint8)   { e.b = append(e.b, v) }
func (e *enc) u32(v uint32) { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *enc) u64(v uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *enc) i64(v int64)  { e.u64(uint64(v)) }
func (e *enc) f64(v float64) {
	e.u64(math.Float64bits(v))
}
func (e *enc) boolByte(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}
func (e *enc) str(s string) {
	e.u32(uint32(len(s)))
	e.b = append(e.b, s...)
}
func (e *enc) floats(v []float64) {
	e.u32(uint32(len(v)))
	for _, x := range v {
		e.f64(x)
	}
}
func (e *enc) ints(v []int) {
	e.u32(uint32(len(v)))
	for _, x := range v {
		e.u32(uint32(x))
	}
}

// dec is a bounds-checked little-endian reader. The first failure latches
// err and turns every later read into a zero-value no-op, so decoding code
// reads straight through and checks once.
type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = bad(format, args...)
	}
}

func (d *dec) remaining() int { return len(d.b) - d.off }

func (d *dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || n > d.remaining() {
		d.fail("truncated: need %d bytes at offset %d, have %d", n, d.off, d.remaining())
		return nil
	}
	s := d.b[d.off : d.off+n]
	d.off += n
	return s
}

func (d *dec) u8() uint8 {
	s := d.take(1)
	if s == nil {
		return 0
	}
	return s[0]
}
func (d *dec) u32() uint32 {
	s := d.take(4)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(s)
}
func (d *dec) u64() uint64 {
	s := d.take(8)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(s)
}
func (d *dec) i64() int64     { return int64(d.u64()) }
func (d *dec) f64() float64   { return math.Float64frombits(d.u64()) }
func (d *dec) boolByte() bool { return d.u8() != 0 }

// count reads a u32 length prefix and checks that `count × elemBytes` fits
// in the remaining payload before the caller allocates anything.
func (d *dec) count(elemBytes int, what string) int {
	n := int(d.u32())
	if d.err != nil {
		return 0
	}
	if n < 0 || elemBytes > 0 && n > d.remaining()/elemBytes {
		d.fail("%s: count %d exceeds remaining payload", what, n)
		return 0
	}
	return n
}

func (d *dec) str(what string) string {
	n := d.count(1, what)
	if d.err != nil {
		return ""
	}
	return string(d.take(n))
}

func (d *dec) floats(what string) []float64 {
	n := d.count(8, what)
	if d.err != nil {
		return nil
	}
	v := make([]float64, n)
	for i := range v {
		v[i] = d.f64()
	}
	return v
}

// floatsN reads exactly n floats with no length prefix (for runs whose
// length is implied by an earlier field).
func (d *dec) floatsN(n int, what string) []float64 {
	if d.err != nil {
		return nil
	}
	if n < 0 || n > d.remaining()/8 {
		d.fail("%s: %d values exceed remaining payload", what, n)
		return nil
	}
	v := make([]float64, n)
	for i := range v {
		v[i] = d.f64()
	}
	return v
}

func (d *dec) ints(what string) []int {
	n := d.count(4, what)
	if d.err != nil {
		return nil
	}
	v := make([]int, n)
	for i := range v {
		v[i] = int(d.u32())
	}
	return v
}

// Encode serializes the snapshot. The output is deterministic: the same
// State always encodes to the same bytes.
func Encode(s *State) []byte {
	e := &enc{b: make([]byte, 0, encodeSizeHint(s))}
	e.b = append(e.b, magic[:]...)
	e.u32(Version)

	payloadStart := len(e.b)

	// Fingerprint and run identity.
	e.u32(uint32(s.N))
	e.u32(uint32(s.NumStates))
	e.u32(uint32(s.NumDevices))
	e.u32(uint32(s.PatternNNZ))
	e.f64(s.TStop)
	e.u32(uint32(s.Method))
	e.u32(uint32(s.Scheme))

	// Engine position.
	e.f64(s.T)
	e.f64(s.H)
	e.f64(s.HUsed)
	e.boolByte(s.AfterBreak)
	e.u32(uint32(s.Warmup))
	e.u64(s.Generation)

	// Stats.
	for _, v := range s.Stats.fields() {
		e.i64(v)
	}
	e.boolByte(s.Stats.PipelineSerialized)

	// History window.
	e.u32(uint32(len(s.Hist)))
	for _, p := range s.Hist {
		e.f64(p.T)
		e.floats(p.X)
		e.floats(p.Q)
		e.floats(p.Qdot)
	}

	// Limiting state.
	e.floats(s.SPrev)
	e.floats(s.SNext)

	// Recovery log.
	e.u32(uint32(len(s.Recovery)))
	for _, ev := range s.Recovery {
		e.f64(ev.T)
		e.str(ev.Kind)
		e.str(ev.Detail)
	}

	// Waveform.
	e.u32(uint32(len(s.WaveNames)))
	for _, n := range s.WaveNames {
		e.str(n)
	}
	e.ints(s.WaveIndex)
	e.u32(uint32(len(s.WaveTimes)))
	for _, t := range s.WaveTimes {
		e.f64(t)
	}
	for _, row := range s.WaveData {
		for _, v := range row {
			e.f64(v)
		}
	}

	// LU factorization.
	if s.LU == nil {
		e.u8(0)
	} else {
		e.u8(1)
		e.u32(uint32(s.LU.N))
		e.f64(s.LU.PivTol)
		e.ints(s.LU.ColPerm)
		e.ints(s.LU.RowPerm)
		e.ints(s.LU.Lp)
		e.ints(s.LU.Li)
		e.floats(s.LU.Lx)
		e.ints(s.LU.Up)
		e.ints(s.LU.Ui)
		e.floats(s.LU.Ux)
		e.floats(s.LU.Ud)
	}

	e.u32(crc32.ChecksumIEEE(e.b[payloadStart:]))
	return e.b
}

func encodeSizeHint(s *State) int {
	n := 256
	n += len(s.Hist) * (32 + 24*s.N)
	n += 16 * (len(s.SPrev) + len(s.SNext))
	n += len(s.WaveTimes) * 8 * (1 + len(s.WaveNames))
	if s.LU != nil {
		n += 12 * (len(s.LU.Li) + len(s.LU.Ui) + 2*s.LU.N)
	}
	return n
}

// fields returns the int64 stats in their fixed wire order.
func (st *Stats) fields() [20]int64 {
	return [20]int64{
		st.Points, st.Solves, st.NRIters, st.LTERejects, st.NRFailures,
		st.Discarded, st.OpIters, st.Stages, st.Recoveries, st.WorkerPanics,
		st.DegradedStages, st.BypassedFactorizations, st.Refactorizations,
		st.FullFactorizations, st.BypassedEvals, st.LinearStampHits,
		st.CriticalNanos, st.CoreBudget, st.PipelineWorkers, st.IntraWorkers,
	}
}

func (st *Stats) setFields(v [20]int64) {
	st.Points, st.Solves, st.NRIters, st.LTERejects, st.NRFailures = v[0], v[1], v[2], v[3], v[4]
	st.Discarded, st.OpIters, st.Stages, st.Recoveries, st.WorkerPanics = v[5], v[6], v[7], v[8], v[9]
	st.DegradedStages, st.BypassedFactorizations, st.Refactorizations = v[10], v[11], v[12]
	st.FullFactorizations, st.BypassedEvals, st.LinearStampHits = v[13], v[14], v[15]
	st.CriticalNanos, st.CoreBudget, st.PipelineWorkers, st.IntraWorkers = v[16], v[17], v[18], v[19]
}

// Decode parses and validates a checkpoint. Every failure — truncation,
// corruption, unsupported version, inconsistent internal structure — returns
// a typed faults.SimError wrapping faults.ErrBadCheckpoint; Decode never
// panics on hostile input.
func Decode(data []byte) (*State, error) {
	const headerLen = 8 // magic + version
	if len(data) < headerLen+4 {
		return nil, bad("file too short: %d bytes", len(data))
	}
	if string(data[:4]) != string(magic[:]) {
		return nil, bad("bad magic %q", data[:4])
	}
	version := binary.LittleEndian.Uint32(data[4:8])
	if version != Version {
		return nil, bad("unsupported version %d (have %d)", version, Version)
	}
	payload := data[headerLen : len(data)-4]
	wantCRC := binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := crc32.ChecksumIEEE(payload); got != wantCRC {
		return nil, bad("CRC mismatch: file %08x, computed %08x", wantCRC, got)
	}

	d := &dec{b: payload}
	s := &State{}

	s.N = int(d.u32())
	s.NumStates = int(d.u32())
	s.NumDevices = int(d.u32())
	s.PatternNNZ = int(d.u32())
	s.TStop = d.f64()
	s.Method = int(d.u32())
	s.Scheme = int(d.u32())

	s.T = d.f64()
	s.H = d.f64()
	s.HUsed = d.f64()
	s.AfterBreak = d.boolByte()
	s.Warmup = int(d.u32())
	s.Generation = d.u64()

	var sf [20]int64
	for i := range sf {
		sf[i] = d.i64()
	}
	s.Stats.setFields(sf)
	s.Stats.PipelineSerialized = d.boolByte()

	// History: every vector must match the fingerprint dimension, and the
	// window must be ascending — integrate.RestoreHistory re-checks, but
	// failing here attributes the error to the file, not the resume.
	nHist := d.count(8+3*12, "history")
	if d.err == nil && nHist > 4*integrate.HistoryDepth {
		d.fail("history: %d points exceeds window bound", nHist)
	}
	for i := 0; i < nHist && d.err == nil; i++ {
		p := &integrate.Point{T: d.f64()}
		p.X = d.floats("history X")
		p.Q = d.floats("history Q")
		p.Qdot = d.floats("history Qdot")
		if d.err == nil && (len(p.X) != s.N || len(p.Q) != s.N || len(p.Qdot) != s.N) {
			d.fail("history point %d: vector length does not match %d unknowns", i, s.N)
		}
		if d.err == nil && i > 0 && p.T <= s.Hist[i-1].T {
			d.fail("history point %d: times not ascending", i)
		}
		s.Hist = append(s.Hist, p)
	}

	s.SPrev = d.floats("limiting state SPrev")
	s.SNext = d.floats("limiting state SNext")
	if d.err == nil && (len(s.SPrev) != s.NumStates || len(s.SNext) != s.NumStates) {
		d.fail("limiting state length does not match %d slots", s.NumStates)
	}

	nRec := d.count(16, "recovery log")
	for i := 0; i < nRec && d.err == nil; i++ {
		ev := RecoveryEvent{T: d.f64()}
		ev.Kind = d.str("recovery kind")
		ev.Detail = d.str("recovery detail")
		s.Recovery = append(s.Recovery, ev)
	}

	nSig := d.count(4, "waveform signals")
	for i := 0; i < nSig && d.err == nil; i++ {
		s.WaveNames = append(s.WaveNames, d.str("signal name"))
	}
	s.WaveIndex = d.ints("waveform index")
	if d.err == nil && len(s.WaveIndex) != nSig {
		d.fail("waveform: %d indices for %d signals", len(s.WaveIndex), nSig)
	}
	if d.err == nil {
		for _, idx := range s.WaveIndex {
			if idx < 0 || idx >= s.N {
				d.fail("waveform: signal index %d out of range", idx)
				break
			}
		}
	}
	nSamp := d.count(8, "waveform samples")
	s.WaveTimes = d.floatsN(nSamp, "waveform times")
	if d.err == nil {
		for k := 1; k < nSamp; k++ {
			if s.WaveTimes[k] <= s.WaveTimes[k-1] {
				d.fail("waveform: times not ascending at sample %d", k)
				break
			}
		}
	}
	for k := 0; k < nSamp && d.err == nil; k++ {
		s.WaveData = append(s.WaveData, d.floatsN(nSig, "waveform row"))
	}

	if d.boolByte() {
		lu := &sparse.LUState{}
		lu.N = int(d.u32())
		lu.PivTol = d.f64()
		lu.ColPerm = d.ints("LU column perm")
		lu.RowPerm = d.ints("LU row perm")
		lu.Lp = d.ints("LU Lp")
		lu.Li = d.ints("LU Li")
		lu.Lx = d.floats("LU Lx")
		lu.Up = d.ints("LU Up")
		lu.Ui = d.ints("LU Ui")
		lu.Ux = d.floats("LU Ux")
		lu.Ud = d.floats("LU Ud")
		if d.err == nil {
			if lu.N != s.N {
				d.fail("LU dimension %d does not match %d unknowns", lu.N, s.N)
			} else if err := lu.Validate(); err != nil {
				d.fail("LU state: %v", err)
			}
		}
		s.LU = lu
	}

	if d.err != nil {
		return nil, d.err
	}
	if d.remaining() != 0 {
		return nil, bad("%d trailing bytes after payload", d.remaining())
	}
	return s, nil
}

// Save atomically and durably persists the snapshot: encode, write to a
// temporary file in the same directory, fsync, rename over path, fsync the
// directory. A crash — including kill -9 or power loss — at any moment
// leaves either the previous checkpoint or the new one, never a torn file.
func Save(path string, s *State) error {
	return save(path, s, true)
}

// save writes the snapshot via the write-temp-then-rename dance. With
// durable set it also fsyncs the file and directory, surviving a machine
// crash. Without it the write is still atomic and survives process death at
// any instant (the page cache outlives the process; only an OS crash can
// lose it) — the cheap mode periodic snapshots use on the hot path.
func save(path string, s *State, durable bool) error {
	data := Encode(s)
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func() { _ = os.Remove(tmpName) }
	if _, err := tmp.Write(data); err != nil {
		_ = tmp.Close()
		cleanup()
		return fmt.Errorf("checkpoint: %w", err)
	}
	if durable {
		if err := tmp.Sync(); err != nil {
			_ = tmp.Close()
			cleanup()
			return fmt.Errorf("checkpoint: %w", err)
		}
	}
	if err := tmp.Close(); err != nil {
		cleanup()
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		cleanup()
		return fmt.Errorf("checkpoint: %w", err)
	}
	if durable {
		// Best-effort directory sync so the rename itself is durable.
		if df, err := os.Open(dir); err == nil {
			_ = df.Sync()
			_ = df.Close()
		}
	}
	return nil
}

// Load reads and decodes a checkpoint file. Decode failures surface the
// typed faults.ErrBadCheckpoint chain.
func Load(path string) (*State, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	return Decode(data)
}
