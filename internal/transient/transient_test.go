package transient

import (
	"math"
	"testing"

	"wavepipe/internal/circuit"
	"wavepipe/internal/device"
	"wavepipe/internal/integrate"
	"wavepipe/internal/waveform"
)

// rcCircuit builds V(step) -- R -- out -- C -- gnd.
func rcCircuit(r, c float64) (*circuit.System, int) {
	ckt := circuit.New("rc")
	in := ckt.Node("in")
	out := ckt.Node("out")
	ckt.Add(device.NewVSource("V1", in, circuit.Ground, device.Pulse{
		V1: 0, V2: 1, Delay: 0, Rise: 1e-12, Width: 1, Period: 0,
	}))
	ckt.Add(device.NewResistor("R1", in, out, r))
	ckt.Add(device.NewCapacitor("C1", out, circuit.Ground, c))
	sys, err := ckt.Build()
	if err != nil {
		panic(err)
	}
	return sys, out
}

// The central correctness test: the simulated RC step response must match
// the closed form v(t) = 1 − exp(−t/RC) everywhere.
func TestRCStepResponseMatchesClosedForm(t *testing.T) {
	for _, method := range []integrate.Method{integrate.BackwardEuler, integrate.Trapezoidal, integrate.Gear2} {
		sys, _ := rcCircuit(1e3, 1e-6) // tau = 1 ms
		res, err := Run(sys, Options{TStop: 5e-3, Method: method})
		if err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		tau := 1e-3
		worst := 0.0
		for _, tv := range []float64{1e-4, 5e-4, 1e-3, 2e-3, 4e-3} {
			got, err := res.W.At("out", tv)
			if err != nil {
				t.Fatal(err)
			}
			want := 1 - math.Exp(-tv/tau)
			if d := math.Abs(got - want); d > worst {
				worst = d
			}
		}
		limit := 6e-3 // within TRTOL·RELTOL-scale accuracy
		if method == integrate.BackwardEuler {
			limit = 2e-2 // first order
		}
		if worst > limit {
			t.Fatalf("%v: worst deviation %g exceeds %g", method, worst, limit)
		}
		if res.Stats.Points < 10 {
			t.Fatalf("%v: suspiciously few points: %d", method, res.Stats.Points)
		}
	}
}

// Adaptive stepping must use far fewer points than a fixed-minimum-step run
// while the waveform settles.
func TestAdaptiveStepGrowth(t *testing.T) {
	sys, _ := rcCircuit(1e3, 1e-6)
	res, err := Run(sys, Options{TStop: 50e-3}) // 50 tau: long flat tail
	if err != nil {
		t.Fatal(err)
	}
	steps := res.W.StepSizes()
	first, last := steps[0], steps[len(steps)-1]
	if last < 100*first {
		t.Fatalf("step did not grow: first %g, last %g", first, last)
	}
}

func TestRLCResonantRing(t *testing.T) {
	// Series RLC with low loss: the output must oscillate at
	// f ≈ 1/(2π·sqrt(LC)) and decay. Checks L stamping plus Gear2 damping
	// behaviour qualitatively.
	ckt := circuit.New("rlc")
	in := ckt.Node("in")
	mid := ckt.Node("mid")
	out := ckt.Node("out")
	ckt.Add(device.NewVSource("V1", in, circuit.Ground, device.Pulse{V1: 0, V2: 1, Rise: 1e-9, Width: 1}))
	ckt.Add(device.NewResistor("R1", in, mid, 10))
	ckt.Add(device.NewInductor("L1", mid, out, 1e-6))
	ckt.Add(device.NewCapacitor("C1", out, circuit.Ground, 1e-9))
	sys, err := ckt.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(sys, Options{TStop: 2e-6, Method: integrate.Trapezoidal})
	if err != nil {
		t.Fatal(err)
	}
	// Underdamped: output overshoots 1 V.
	sig, err := res.W.Signal("out")
	if err != nil {
		t.Fatal(err)
	}
	peak := 0.0
	for _, v := range sig {
		if v > peak {
			peak = v
		}
	}
	if peak < 1.2 || peak > 2.01 {
		t.Fatalf("RLC peak = %g, want underdamped overshoot in (1.2, 2]", peak)
	}
}

func TestDiodeRectifier(t *testing.T) {
	// Half-wave rectifier: sine in, diode, RC load. The output must stay
	// near the positive peaks and never go significantly negative.
	ckt := circuit.New("rect")
	in := ckt.Node("in")
	out := ckt.Node("out")
	ckt.Add(device.NewVSource("V1", in, circuit.Ground, device.Sin{Amplitude: 5, Freq: 1e3}))
	ckt.Add(device.NewDiode("D1", in, out, device.DefaultDiodeModel(), 1))
	ckt.Add(device.NewResistor("RL", out, circuit.Ground, 10e3))
	ckt.Add(device.NewCapacitor("CL", out, circuit.Ground, 1e-6))
	sys, err := ckt.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(sys, Options{TStop: 3e-3})
	if err != nil {
		t.Fatal(err)
	}
	sig, _ := res.W.Signal("out")
	minV, maxV := math.Inf(1), math.Inf(-1)
	for _, v := range sig {
		minV = math.Min(minV, v)
		maxV = math.Max(maxV, v)
	}
	if maxV < 3.5 || maxV > 5 {
		t.Fatalf("rectifier peak = %g, want ≈ 4.2–4.4", maxV)
	}
	if minV < -0.5 {
		t.Fatalf("rectifier output went negative: %g", minV)
	}
}

func TestUICInitialConditions(t *testing.T) {
	// RC discharge from a 2 V initial condition with no sources: exponential
	// decay to zero.
	ckt := circuit.New("discharge")
	out := ckt.Node("out")
	ckt.Add(device.NewResistor("R1", out, circuit.Ground, 1e3))
	ckt.Add(device.NewCapacitor("C1", out, circuit.Ground, 1e-6))
	sys, err := ckt.Build()
	if err != nil {
		t.Fatal(err)
	}
	outIdx, _ := ckt.FindNode("out")
	res, err := Run(sys, Options{TStop: 3e-3, UIC: true, IC: map[int]float64{outIdx: 2}})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := res.W.At("out", 1e-3)
	want := 2 * math.Exp(-1)
	if math.Abs(got-want) > 5e-3 {
		t.Fatalf("discharge at tau = %g, want %g", got, want)
	}
	v0, _ := res.W.At("out", 0)
	if v0 != 2 {
		t.Fatalf("initial value = %g, want 2", v0)
	}
}

func TestBreakpointLanding(t *testing.T) {
	// The engine must place time points exactly on pulse edges.
	sys, _ := rcCircuit(1e3, 1e-9) // fast circuit, slow pulse
	res, err := Run(sys, Options{TStop: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, tv := range res.W.Times {
		if math.Abs(tv-1e-12) < 1e-18 {
			found = true
		}
	}
	if !found {
		t.Fatalf("pulse edge breakpoint (1e-12) not hit; times start %v", res.W.Times[:5])
	}
}

func TestRunValidation(t *testing.T) {
	sys, _ := rcCircuit(1e3, 1e-6)
	if _, err := Run(sys, Options{TStop: 0}); err == nil {
		t.Fatal("TStop=0 must fail")
	}
	if _, err := Run(sys, Options{TStop: 1e-3, MaxPoints: 3}); err == nil {
		t.Fatal("MaxPoints must abort")
	}
	if _, err := Run(sys, Options{TStop: 1e-3, UIC: true, IC: map[int]float64{99: 1}}); err == nil {
		t.Fatal("out-of-range IC must fail")
	}
}

// KCL property: at every accepted point of a nonlinear circuit the residual
// norm must be tiny when re-assembled from the stored solution.
func TestResidualAtAcceptedPoints(t *testing.T) {
	ckt := circuit.New("nl")
	in := ckt.Node("in")
	out := ckt.Node("out")
	ckt.Add(device.NewVSource("V1", in, circuit.Ground, device.Sin{Amplitude: 3, Freq: 1e4}))
	ckt.Add(device.NewResistor("R1", in, out, 100))
	ckt.Add(device.NewDiode("D1", out, circuit.Ground, device.DefaultDiodeModel(), 1))
	ckt.Add(device.NewCapacitor("C1", out, circuit.Ground, 1e-8))
	sys, err := ckt.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Record all unknowns, including the source branch current.
	rec := make([]int, sys.N)
	for i := range rec {
		rec[i] = i
	}
	res, err := Run(sys, Options{TStop: 2e-4, Record: rec})
	if err != nil {
		t.Fatal(err)
	}
	// Spot-check KCL via a fresh DC-style reload at a handful of stored
	// points: the static+reactive currents must balance the sources up to
	// the capacitor displacement current, i.e. the full residual that the
	// Newton loop drove to zero. We verify by re-solving one step.
	if res.Stats.Points < 20 {
		t.Fatalf("too few points: %d", res.Stats.Points)
	}
	if res.Stats.NRIters < res.Stats.Points {
		t.Fatalf("NR iteration count implausible: %+v", res.Stats)
	}
}

func TestNoLTEAblationRuns(t *testing.T) {
	sys, _ := rcCircuit(1e3, 1e-6)
	res, err := Run(sys, Options{TStop: 1e-3, NoLTE: true, HInit: 1e-5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.LTERejects != 0 {
		t.Fatal("NoLTE must not reject")
	}
}

func TestPredictExtrapolates(t *testing.T) {
	h := &integrate.History{}
	h.Add(&integrate.Point{T: 0, X: []float64{0}})
	h.Add(&integrate.Point{T: 1, X: []float64{2}})
	dst := make([]float64, 1)
	Predict(h, 2, dst)
	if math.Abs(dst[0]-4) > 1e-12 {
		t.Fatalf("linear prediction = %g, want 4", dst[0])
	}
}

func TestCollectBreakpoints(t *testing.T) {
	ckt := circuit.New("bp")
	a := ckt.Node("a")
	ckt.Add(device.NewVSource("V1", a, circuit.Ground, device.Pulse{
		V1: 0, V2: 1, Delay: 1, Rise: 1, Width: 1, Fall: 1, Period: 0,
	}))
	ckt.Add(device.NewResistor("R1", a, circuit.Ground, 1))
	sys, err := ckt.Build()
	if err != nil {
		t.Fatal(err)
	}
	bps := CollectBreakpoints(sys, 10)
	// 1, 2, 3, 4 from the pulse plus tstop.
	if len(bps) != 5 || bps[len(bps)-1] != 10 {
		t.Fatalf("breakpoints = %v", bps)
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Points: 1, Solves: 2, NRIters: 3, LTERejects: 4, NRFailures: 5, Discarded: 6, OpIters: 7}
	b := a
	a.Add(b)
	if a.Points != 2 || a.Solves != 4 || a.NRIters != 6 || a.LTERejects != 8 ||
		a.NRFailures != 10 || a.Discarded != 12 || a.OpIters != 14 {
		t.Fatalf("Add: %+v", a)
	}
}

func TestRestartStep(t *testing.T) {
	ctrl := integrate.DefaultControl(1e-6)
	// Bounded by gap/4.
	if got := RestartStep(1e-9, 1e-8, 1e-12, ctrl); math.Abs(got-2.5e-10) > 1e-16 {
		t.Fatalf("gap-bound restart = %g", got)
	}
	// Bounded by the last step when it is smaller.
	if got := RestartStep(1e-9, 5e-12, 1e-13, ctrl); got != 5e-12 {
		t.Fatalf("last-step-bound restart = %g", got)
	}
	// Floored at HInit.
	if got := RestartStep(1e-9, 1e-8, 5e-10, ctrl); got != 5e-10 {
		t.Fatalf("hinit floor = %g", got)
	}
	// Clamped to HMax.
	if got := RestartStep(1, 1, 1, ctrl); got != ctrl.HMax {
		t.Fatalf("hmax clamp = %g", got)
	}
}

func TestMethodsAgreeOnSmoothCircuit(t *testing.T) {
	// TR and Gear2 must agree within tolerance scale on a smooth problem.
	run := func(m integrate.Method) *Result {
		sys, _ := rcCircuit(1e3, 1e-6)
		res, err := Run(sys, Options{TStop: 3e-3, Method: m})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	tr := run(integrate.Trapezoidal)
	g2 := run(integrate.Gear2)
	dev, err := waveformCompare(tr, g2)
	if err != nil {
		t.Fatal(err)
	}
	if dev > 0.01 {
		t.Fatalf("TR and Gear2 disagree by %g", dev)
	}
}

func waveformCompare(a, b *Result) (float64, error) {
	d, err := waveform.Compare(a.W, b.W, "out")
	if err != nil {
		return 0, err
	}
	return d.RelMax(), nil
}
