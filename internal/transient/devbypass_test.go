package transient_test

import (
	"testing"

	"wavepipe/internal/circuits"
	"wavepipe/internal/trace"
	"wavepipe/internal/transient"
	"wavepipe/internal/waveform"
)

// suiteBench returns one named suite benchmark.
func suiteBench(t *testing.T, name string) circuits.Benchmark {
	t.Helper()
	for _, b := range circuits.Suite() {
		if b.Name == name {
			return b
		}
	}
	t.Fatalf("no suite circuit %q", name)
	return circuits.Benchmark{}
}

// TestDeviceBypassSuiteEquivalence runs every suite circuit with the
// incremental assembly engine off and on and requires the probe waveforms to
// agree within the engine's own LTE-scale accuracy band. The engine must
// also actually fire somewhere: a suite where no circuit records a single
// template hit means the wiring regressed, not the tolerance.
func TestDeviceBypassSuiteEquivalence(t *testing.T) {
	var totalHits, totalBypassed int64
	for _, b := range circuits.Suite() {
		run := func(tol float64) *transient.Result {
			sys, err := b.Make().Build()
			if err != nil {
				t.Fatalf("%s: %v", b.Name, err)
			}
			res, err := transient.Run(sys, transient.Options{TStop: b.TStop / 5, DeviceBypassTol: tol})
			if err != nil {
				t.Fatalf("%s (tol=%g): %v", b.Name, tol, err)
			}
			return res
		}
		ref := run(0)
		res := run(transient.DefaultDeviceBypassTol)
		if ref.Stats.BypassedEvals != 0 || ref.Stats.LinearStampHits != 0 {
			t.Fatalf("%s: engine off, yet counters filled (%d, %d)",
				b.Name, ref.Stats.BypassedEvals, ref.Stats.LinearStampHits)
		}
		dev, err := waveform.Compare(res.W, ref.W, b.Probe)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		// Probes that barely move inside the shortened window (digital
		// outputs before the input edge arrives) make the relative measure
		// a ratio of two roundoff-sized numbers; an absolute femtovolt bound
		// covers those.
		if dev.RelMax() > 0.02 && dev.Max > 1e-9 {
			t.Errorf("%s: bypassed run deviates by %.4f of signal range (max %g over %g)",
				b.Name, dev.RelMax(), dev.Max, dev.Range)
		}
		totalHits += res.Stats.LinearStampHits
		totalBypassed += res.Stats.BypassedEvals
	}
	if totalHits == 0 {
		t.Fatal("no suite circuit recorded a linear-template hit")
	}
	if totalBypassed == 0 {
		t.Fatal("no suite circuit recorded a bypassed device evaluation")
	}
}

// TestDeviceBypassStrictModeBitIdentical pins the strict-mode contract:
// DeviceBypassTol = 0 keeps the incremental engine out of the build entirely,
// so the run must be bit-identical — not merely close — to one that never
// mentioned the option. The second half pins determinism of the engine
// itself: two bypass-enabled runs of the same circuit must agree bit for bit.
func TestDeviceBypassStrictModeBitIdentical(t *testing.T) {
	b := suiteBench(t, "ring9")
	run := func(tol float64) *transient.Result {
		sys, err := b.Make().Build()
		if err != nil {
			t.Fatal(err)
		}
		res, err := transient.Run(sys, transient.Options{TStop: b.TStop / 5, DeviceBypassTol: tol})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	bitIdentical := func(what string, a, b *transient.Result) {
		t.Helper()
		if len(a.W.Times) != len(b.W.Times) {
			t.Fatalf("%s: %d vs %d time points", what, len(a.W.Times), len(b.W.Times))
		}
		for k := range a.W.Times {
			if a.W.Times[k] != b.W.Times[k] {
				t.Fatalf("%s: time axis diverges at sample %d: %g vs %g",
					what, k, a.W.Times[k], b.W.Times[k])
			}
			for j := range a.W.Data[k] {
				if a.W.Data[k][j] != b.W.Data[k][j] {
					t.Fatalf("%s: sample %d signal %d differs: %g vs %g",
						what, k, j, a.W.Data[k][j], b.W.Data[k][j])
				}
			}
		}
	}
	base := run(0)
	bitIdentical("strict mode vs untouched baseline", run(0), base)
	on := run(transient.DefaultDeviceBypassTol)
	if on.Stats.BypassedEvals == 0 {
		t.Fatal("bypass never fired on ring9")
	}
	bitIdentical("bypass-enabled determinism", run(transient.DefaultDeviceBypassTol), on)
}

// TestDeviceBypassTraceReconciliation replays a complete (unbounded) trace of
// a bypass-enabled run and requires the per-event counters to reconcile 1:1
// with the run's Stats: every bypassed evaluation and every template hit must
// appear in exactly one device-load phase event.
func TestDeviceBypassTraceReconciliation(t *testing.T) {
	b := suiteBench(t, "ring9")
	sys, err := b.Make().Build()
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder(0)
	res, err := transient.Run(sys, transient.Options{
		TStop:           b.TStop / 5,
		DeviceBypassTol: transient.DefaultDeviceBypassTol,
		Trace:           trace.New(rec, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.BypassedEvals == 0 || res.Stats.LinearStampHits == 0 {
		t.Fatalf("engine idle (bypassed=%d, hits=%d): nothing to reconcile",
			res.Stats.BypassedEvals, res.Stats.LinearStampHits)
	}
	c := trace.Replay(rec.Events())
	if int64(c.BypassedEvals) != res.Stats.BypassedEvals {
		t.Errorf("trace replays %d bypassed evals, stats say %d", c.BypassedEvals, res.Stats.BypassedEvals)
	}
	if int64(c.LinearStampHits) != res.Stats.LinearStampHits {
		t.Errorf("trace replays %d template hits, stats say %d", c.LinearStampHits, res.Stats.LinearStampHits)
	}
}
