package transient

import (
	"errors"
	"path/filepath"
	"testing"

	"wavepipe/internal/checkpoint"
	"wavepipe/internal/faults"
	"wavepipe/internal/integrate"
)

// Regression for the recovery-ladder × device-bypass interaction: every
// ladder escalation solves a different system (tighter damping, a new gmin
// rung, the final clean system), so each one must bump the incremental-
// assembly generation — a stamp journaled under one rung's regime replayed
// under the next would assemble the wrong matrix. Before the fix the ladder
// bumped only once at entry.
func TestRecoveryLadderBumpsBypassGeneration(t *testing.T) {
	sys, _ := rcCircuit(1e3, 1e-7)
	opts := Options{TStop: 1e-3}
	opts = opts.WithDefaults()
	ps := NewPointSolver(sys, opts.Method, opts.Newton, opts.Gmin)
	ps.WS.SetDeviceBypass(DefaultDeviceBypassTol, 0)
	// Defeat both damping rungs (sparing the t=0 operating point); the gmin
	// ramp is spared and succeeds.
	in := faults.NewInjector(faults.Rule{
		Class:     faults.NoConvergence,
		After:     1e-16,
		Count:     2,
		SpareFrom: faults.StageGmin,
	})
	ps.WS.Faults = in

	p0, err := InitialPoint(sys, ps, opts)
	if err != nil {
		t.Fatal(err)
	}
	hist := &integrate.History{}
	hist.Add(p0)

	gen0 := ps.WS.BypassGeneration()
	rl := &RecoveryLog{}
	if _, _, err := ps.RecoverAt(hist, 1e-6, rl); err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	if rl.Count(RecoveryGminRamp) != 1 {
		t.Fatalf("expected a gmin-ramp rescue, got %+v", rl.Events())
	}
	// Ladder entry (1) + two damping rungs (2) + eight gmin rungs (8) + the
	// final clean solve (1): at least 12 distinct assembly regimes.
	if delta := ps.WS.BypassGeneration() - gen0; delta < 12 {
		t.Fatalf("generation advanced by %d, want >= 12 (one per escalation)", delta)
	}
}

// The ladder must rescue a device-bypass run without bending the answer:
// same closed-form check the plain-path recovery tests use, with journals
// live across the forced rungs.
func TestRecoveryWithDeviceBypassKeepsAnswer(t *testing.T) {
	sys, _ := rcCircuit(1e3, 1e-7) // tau = 1e-4
	in := faults.NewInjector(faults.Rule{
		Class:     faults.NoConvergence,
		After:     1e-16,
		Count:     9, // shrink attempts + both damping rungs
		SpareFrom: faults.StageGmin,
	})
	res, err := Run(sys, Options{TStop: 1e-3, Faults: in, DeviceBypassTol: DefaultDeviceBypassTol})
	if err != nil {
		t.Fatalf("run failed despite gmin ramp: %v", err)
	}
	if res.Recovery.Count(RecoveryGminRamp) != 1 {
		t.Fatalf("gmin recoveries: %+v", res.Recovery.Events())
	}
	checkRC(t, res)
}

// sameWaveform asserts bitwise equality of two waveform sets.
func sameWaveform(t *testing.T, got, want *Result, ctxt string) {
	t.Helper()
	if got.W.Len() != want.W.Len() {
		t.Fatalf("%s: %d points, want %d", ctxt, got.W.Len(), want.W.Len())
	}
	for k := range want.W.Times {
		if got.W.Times[k] != want.W.Times[k] {
			t.Fatalf("%s: time[%d] = %g, want %g", ctxt, k, got.W.Times[k], want.W.Times[k])
		}
		for j := range want.W.Data[k] {
			if got.W.Data[k][j] != want.W.Data[k][j] {
				t.Fatalf("%s: data[%d][%d] = %g, want %g",
					ctxt, k, j, got.W.Data[k][j], want.W.Data[k][j])
			}
		}
	}
	for i := range want.FinalX {
		if got.FinalX[i] != want.FinalX[i] {
			t.Fatalf("%s: FinalX[%d] = %g, want %g", ctxt, i, got.FinalX[i], want.FinalX[i])
		}
	}
}

// Serial kill-and-resume bit-identity at the unit level: interrupt a run
// mid-flight (MaxPoints), resume from the final checkpoint, and require the
// complete waveform to equal the uninterrupted run's bit for bit.
func TestSerialResumeBitIdentical(t *testing.T) {
	build := func() Options { return Options{TStop: 1e-3} }
	sysRef, _ := rcCircuit(1e3, 1e-7)
	ref, err := Run(sysRef, build())
	if err != nil {
		t.Fatal(err)
	}
	if ref.Stats.Points < 40 {
		t.Fatalf("reference run too short for a meaningful interrupt (%d points)", ref.Stats.Points)
	}

	path := filepath.Join(t.TempDir(), "run.wpcp")
	sysA, _ := rcCircuit(1e3, 1e-7)
	optsA := build()
	optsA.MaxPoints = ref.Stats.Points / 2
	guardA := checkpoint.NewController(checkpoint.Config{Path: path})
	guardA.Start()
	optsA.Guard = guardA
	if _, err := Run(sysA, optsA); err == nil {
		t.Fatal("interrupted run reported success")
	}
	guardA.Stop()

	st, err := checkpoint.Load(path)
	if err != nil {
		t.Fatalf("loading final checkpoint: %v", err)
	}
	sysB, _ := rcCircuit(1e3, 1e-7)
	optsB := build()
	optsB.Resume = st
	res, err := Run(sysB, optsB)
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	sameWaveform(t, res, ref, "resumed")
	// Cumulative stats span both segments.
	if res.Stats.Points != ref.Stats.Points {
		t.Fatalf("cumulative points %d, want %d", res.Stats.Points, ref.Stats.Points)
	}
	if res.Stats.Solves != ref.Stats.Solves {
		t.Fatalf("cumulative solves %d, want %d", res.Stats.Solves, ref.Stats.Solves)
	}
}

// Resuming against the wrong circuit or options must fail with the typed
// checkpoint error before any solving happens.
func TestResumeValidation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.wpcp")
	sys, _ := rcCircuit(1e3, 1e-7)
	opts := Options{TStop: 1e-3, MaxPoints: 20}
	guard := checkpoint.NewController(checkpoint.Config{Path: path})
	guard.Start()
	opts.Guard = guard
	if _, err := Run(sys, opts); err == nil {
		t.Fatal("interrupted run reported success")
	}
	guard.Stop()
	st, err := checkpoint.Load(path)
	if err != nil {
		t.Fatal(err)
	}

	// Different circuit: an RC ladder with more unknowns.
	other, _ := rcCircuit(2e3, 1e-7)
	otherOpts := Options{TStop: 1e-3, Resume: st}
	if sysN := other.N; sysN == sys.N {
		// rcCircuit always has the same topology; perturb TStop instead.
		otherOpts.TStop = 2e-3
	}
	if _, err := Run(other, otherOpts); !errors.Is(err, faults.ErrBadCheckpoint) {
		t.Fatalf("mismatched resume: %v, want ErrBadCheckpoint", err)
	}
}

// A guarded run that never accepts a point (immediate failure) must not
// write a checkpoint, and a clean guarded run must write a final one.
func TestFinalCheckpointWritten(t *testing.T) {
	path := filepath.Join(t.TempDir(), "final.wpcp")
	sys, _ := rcCircuit(1e3, 1e-7)
	guard := checkpoint.NewController(checkpoint.Config{Path: path})
	guard.Start()
	res, err := Run(sys, Options{TStop: 1e-3, Guard: guard})
	guard.Stop()
	if err != nil {
		t.Fatal(err)
	}
	st, err := checkpoint.Load(path)
	if err != nil {
		t.Fatalf("final checkpoint unreadable: %v", err)
	}
	if st.T != res.W.Times[res.W.Len()-1] {
		t.Fatalf("final checkpoint at t=%g, run ended at t=%g", st.T, res.W.Times[res.W.Len()-1])
	}
	if int(st.Stats.Points) != res.Stats.Points {
		t.Fatalf("checkpoint points %d, run points %d", st.Stats.Points, res.Stats.Points)
	}
}
