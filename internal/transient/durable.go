package transient

import (
	"fmt"

	"wavepipe/internal/checkpoint"
	"wavepipe/internal/circuit"
	"wavepipe/internal/faults"
	"wavepipe/internal/integrate"
	"wavepipe/internal/num"
	"wavepipe/internal/waveform"
)

// Durable-run plumbing: converting between the engine's native state and
// checkpoint.State. The checkpoint package cannot import transient (the
// dependency points the other way), so Stats and RecoveryEvent are mirrored
// there and converted here.

// snapStats widens engine stats to the checkpoint's fixed-width mirror.
func snapStats(s Stats) checkpoint.Stats {
	return checkpoint.Stats{
		Points:                 int64(s.Points),
		Solves:                 int64(s.Solves),
		NRIters:                int64(s.NRIters),
		LTERejects:             int64(s.LTERejects),
		NRFailures:             int64(s.NRFailures),
		Discarded:              int64(s.Discarded),
		OpIters:                int64(s.OpIters),
		Stages:                 int64(s.Stages),
		Recoveries:             int64(s.Recoveries),
		WorkerPanics:           int64(s.WorkerPanics),
		DegradedStages:         int64(s.DegradedStages),
		BypassedFactorizations: int64(s.BypassedFactorizations),
		Refactorizations:       int64(s.Refactorizations),
		FullFactorizations:     int64(s.FullFactorizations),
		BypassedEvals:          s.BypassedEvals,
		LinearStampHits:        s.LinearStampHits,
		CriticalNanos:          s.CriticalNanos,
		CoreBudget:             int64(s.CoreBudget),
		PipelineWorkers:        int64(s.PipelineWorkers),
		IntraWorkers:           int64(s.IntraWorkers),
		PipelineSerialized:     s.PipelineSerialized,
	}
}

// unsnapStats narrows checkpointed stats back to the engine representation.
func unsnapStats(s checkpoint.Stats) Stats {
	return Stats{
		Points:                 int(s.Points),
		Solves:                 int(s.Solves),
		NRIters:                int(s.NRIters),
		LTERejects:             int(s.LTERejects),
		NRFailures:             int(s.NRFailures),
		Discarded:              int(s.Discarded),
		OpIters:                int(s.OpIters),
		Stages:                 int(s.Stages),
		Recoveries:             int(s.Recoveries),
		WorkerPanics:           int(s.WorkerPanics),
		DegradedStages:         int(s.DegradedStages),
		BypassedFactorizations: int(s.BypassedFactorizations),
		Refactorizations:       int(s.Refactorizations),
		FullFactorizations:     int(s.FullFactorizations),
		BypassedEvals:          s.BypassedEvals,
		LinearStampHits:        s.LinearStampHits,
		CriticalNanos:          s.CriticalNanos,
		CoreBudget:             int(s.CoreBudget),
		PipelineWorkers:        int(s.PipelineWorkers),
		IntraWorkers:           int(s.IntraWorkers),
		PipelineSerialized:     s.PipelineSerialized,
	}
}

// snapRecovery / unsnapRecovery convert the recovery log.
func snapRecovery(rl *RecoveryLog) []checkpoint.RecoveryEvent {
	evs := rl.Events()
	out := make([]checkpoint.RecoveryEvent, len(evs))
	for i, e := range evs {
		out[i] = checkpoint.RecoveryEvent{T: e.T, Kind: e.Kind, Detail: e.Detail}
	}
	return out
}

func unsnapRecovery(evs []checkpoint.RecoveryEvent) *RecoveryLog {
	rl := &RecoveryLog{}
	for _, e := range evs {
		rl.Note(e.T, e.Kind, e.Detail)
	}
	return rl
}

// badCheckpoint builds the typed error every resume-validation failure
// surfaces.
func badCheckpoint(format string, args ...any) error {
	return &faults.SimError{
		Phase: "checkpoint", Node: -1,
		Cause: fmt.Errorf("%w: %s", faults.ErrBadCheckpoint, fmt.Sprintf(format, args...)),
	}
}

// CaptureState snapshots a run at an accepted-step boundary: the trailing
// history window (deep-copied — the serial engine recycles evicted points),
// the step controller's position, the junction-limiting state, the LU
// factorization (its pivot sequence is what makes serial resume
// bit-identical), the recorded waveform (aliased — rows are immutable once
// appended), cumulative stats and the recovery log. total carries the run's
// cumulative statistics, including any segments before an earlier resume;
// ps is the solver whose workspace holds the authoritative limiting and
// factorization state (the serial solver, or pipeline lane 0).
func CaptureState(sys *circuit.System, ps *PointSolver, opts *Options,
	w *waveform.Set, rl *RecoveryLog, hist *integrate.History,
	total Stats, t, h, hUsed float64, afterBreak bool, warmup, scheme int) *checkpoint.State {

	pts := make([]*integrate.Point, hist.Len())
	for i := range pts {
		p := hist.At(i)
		pts[i] = &integrate.Point{T: p.T, X: num.Copy(p.X), Q: num.Copy(p.Q), Qdot: num.Copy(p.Qdot)}
	}

	return &checkpoint.State{
		N:          sys.N,
		NumStates:  sys.NumStates,
		NumDevices: len(sys.Circuit.Devices()),
		PatternNNZ: sys.PatternNNZ(),
		TStop:      opts.TStop,
		Method:     int(opts.Method),
		Scheme:     scheme,
		T:          t,
		H:          h,
		HUsed:      hUsed,
		AfterBreak: afterBreak,
		Warmup:     warmup,
		Generation: ps.WS.BypassGeneration(),
		Hist:       pts,
		SPrev:      num.Copy(ps.WS.SPrev),
		SNext:      num.Copy(ps.WS.SNext),
		LU:         ps.WS.Solver.FactorState(),
		Stats:      snapStats(total),
		Recovery:   snapRecovery(rl),
		WaveNames:  w.Names,
		WaveIndex:  w.Index,
		WaveTimes:  w.Times[:len(w.Times):len(w.Times)],
		WaveData:   w.Data[:len(w.Data):len(w.Data)],
	}
}

// SalvageResult rebuilds a partial Result from a retained checkpoint
// snapshot. It is the facade's last resort when a panic (contained at the
// API boundary) kept the engine from returning its own partial result: the
// waveform, stats, recovery log and final solution of the last snapshot are
// everything that provably survived. Returns nil when st is nil or its
// waveform cannot be rebuilt.
func SalvageResult(st *checkpoint.State) *Result {
	if st == nil {
		return nil
	}
	w, err := waveform.Restore(st.WaveNames, st.WaveIndex, st.WaveTimes, st.WaveData)
	if err != nil {
		return nil
	}
	res := &Result{
		W:        w,
		Stats:    unsnapStats(st.Stats),
		Recovery: unsnapRecovery(st.Recovery),
	}
	if n := len(st.Hist); n > 0 {
		res.FinalX = num.Copy(st.Hist[n-1].X)
	}
	return res
}

// Resumed is the engine state RestoreState rebuilds from a checkpoint.
type Resumed struct {
	Hist       *integrate.History
	W          *waveform.Set
	RL         *RecoveryLog
	Base       Stats // stats accumulated before the interruption
	T          float64
	H          float64
	HUsed      float64
	AfterBreak bool
	Warmup     int
}

// RestoreState validates a checkpoint against the live system and run
// options and rebuilds the engine state it describes: history window,
// waveform, step position, limiting state, the LU factorization, and the
// incremental-engine generation. The point solver's workspace is mutated in
// place; every failure surfaces faults.ErrBadCheckpoint.
func RestoreState(st *checkpoint.State, sys *circuit.System, ps *PointSolver, opts *Options) (*Resumed, error) {
	if err := st.Matches(sys.N, sys.NumStates, len(sys.Circuit.Devices()),
		sys.PatternNNZ(), opts.TStop, int(opts.Method)); err != nil {
		return nil, err
	}
	// The waveform must describe the same record set this run would build;
	// otherwise the resumed tail would append mismatched columns.
	expect := RecordSet(sys, *opts)
	if len(expect.Index) != len(st.WaveIndex) {
		return nil, badCheckpoint("record set mismatch: %d signals, checkpoint has %d",
			len(expect.Index), len(st.WaveIndex))
	}
	for i, idx := range expect.Index {
		if st.WaveIndex[i] != idx {
			return nil, badCheckpoint("record set mismatch at signal %d", i)
		}
	}
	hist, err := integrate.RestoreHistory(st.Hist)
	if err != nil {
		return nil, badCheckpoint("%v", err)
	}
	last := hist.Last()
	if last == nil || last.T != st.T {
		return nil, badCheckpoint("history does not end at checkpoint time %g", st.T)
	}
	w, err := waveform.Restore(st.WaveNames, st.WaveIndex, st.WaveTimes, st.WaveData)
	if err != nil {
		return nil, badCheckpoint("%v", err)
	}
	if n := w.Len(); n == 0 || w.Times[n-1] != st.T {
		return nil, badCheckpoint("waveform does not end at checkpoint time %g", st.T)
	}
	if st.H <= 0 {
		return nil, badCheckpoint("non-positive step %g", st.H)
	}
	copy(ps.WS.SPrev, st.SPrev)
	copy(ps.WS.SNext, st.SNext)
	if st.LU != nil {
		if err := ps.WS.Solver.RestoreFactor(st.LU); err != nil {
			return nil, badCheckpoint("%v", err)
		}
	}
	ps.WS.RestoreBypassGeneration(st.Generation)
	return &Resumed{
		Hist:       hist,
		W:          w,
		RL:         unsnapRecovery(st.Recovery),
		Base:       unsnapStats(st.Stats),
		T:          st.T,
		H:          st.H,
		HUsed:      st.HUsed,
		AfterBreak: st.AfterBreak,
		Warmup:     st.Warmup,
	}, nil
}
