package transient

import (
	"testing"

	"wavepipe/internal/circuit"
	"wavepipe/internal/device"
	"wavepipe/internal/integrate"
)

// rectifierCircuit builds the half-wave rectifier of TestDiodeRectifier: a
// nonlinear circuit whose Jacobian changes rapidly near diode turn-on and
// slowly elsewhere — the workload SPICE bypass was invented for.
func rectifierCircuit(t *testing.T) *circuit.System {
	t.Helper()
	ckt := circuit.New("rect")
	in := ckt.Node("in")
	out := ckt.Node("out")
	ckt.Add(device.NewVSource("V1", in, circuit.Ground, device.Sin{Amplitude: 5, Freq: 1e3}))
	ckt.Add(device.NewDiode("D1", in, out, device.DefaultDiodeModel(), 1))
	ckt.Add(device.NewResistor("RL", out, circuit.Ground, 10e3))
	ckt.Add(device.NewCapacitor("CL", out, circuit.Ground, 1e-6))
	sys, err := ckt.Build()
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestBypassGuardRefactorizesAcceptedIterate drives a point solver with an
// absurdly permissive bypass tolerance — every mid-iteration factorization
// wants to be skipped — and checks the convergence guard: the iterate a
// solve actually returns must always have used a fresh factorization
// (Solver.LastBypassed false after every successful SolveAt), while bypasses
// still happen inside the iterations.
func TestBypassGuardRefactorizesAcceptedIterate(t *testing.T) {
	sys, _ := rcCircuit(1e3, 1e-6)
	opts := Options{TStop: 1e-3, BypassTol: 1e9}.WithDefaults()
	ps := NewPointSolver(sys, opts.Method, opts.Newton, opts.Gmin)
	ps.WS.Solver.BypassTol = opts.BypassTol

	p0, err := InitialPoint(sys, ps, opts)
	if err != nil {
		t.Fatal(err)
	}
	hist := &integrate.History{}
	hist.Add(p0)
	tNow := p0.T
	const h = 2e-5
	for i := 0; i < 25; i++ {
		tNow += h
		pt, _, err := ps.SolveAt(hist, tNow, nil)
		if err != nil {
			t.Fatalf("solve %d at t=%g: %v", i, tNow, err)
		}
		if ps.WS.Solver.LastBypassed {
			t.Fatalf("solve %d: accepted iterate used a bypassed factorization", i)
		}
		hist.Add(pt)
	}
	if ps.WS.Solver.BypassedFactorizations == 0 {
		t.Fatal("huge bypass tolerance never bypassed a factorization")
	}
	ps.HarvestSolverStats()
	if ps.Stats.BypassedFactorizations != ps.WS.Solver.BypassedFactorizations {
		t.Fatal("harvested bypass counter does not match the solver's")
	}
}

// TestBypassDisabledByDefault: with BypassTol zero the solver must factorize
// on every Newton iteration and count no bypasses.
func TestBypassDisabledByDefault(t *testing.T) {
	sys, _ := rcCircuit(1e3, 1e-6)
	res, err := Run(sys, Options{TStop: 2e-3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.BypassedFactorizations != 0 {
		t.Fatalf("bypass off, yet %d bypasses counted", res.Stats.BypassedFactorizations)
	}
	if res.Stats.FullFactorizations == 0 && res.Stats.Refactorizations == 0 {
		t.Fatal("factorization counters never filled")
	}
}

// TestBypassRunMatchesReference: on the nonlinear half-wave rectifier of
// TestDiodeRectifier, a bypassed run must track the exact run within the
// engine's own LTE-scale accuracy while actually exercising the bypass.
func TestBypassRunMatchesReference(t *testing.T) {
	makeRes := func(bypassTol float64) *Result {
		sys := rectifierCircuit(t)
		res, err := Run(sys, Options{TStop: 2e-3, BypassTol: bypassTol})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := makeRes(0)
	res := makeRes(1e-3)
	if res.Stats.BypassedFactorizations == 0 {
		t.Fatal("bypass tolerance 1e-3 never triggered on the rectifier")
	}
	dev, err := waveformCompare(res, ref)
	if err != nil {
		t.Fatal(err)
	}
	if dev > 0.02 {
		t.Fatalf("bypassed run deviates by %g of signal range", dev)
	}
}
