// Package transient implements the serial adaptive-step transient engine —
// the baseline WavePipe is measured against — plus the single-point solver
// machinery (predictor, Newton solve, charge bookkeeping) shared with the
// parallel engines.
package transient

import (
	"context"
	"fmt"
	"math"
	"os"
	"sort"
	"time"

	"wavepipe/internal/checkpoint"
	"wavepipe/internal/circuit"
	"wavepipe/internal/dcop"
	"wavepipe/internal/faults"
	"wavepipe/internal/integrate"
	"wavepipe/internal/newton"
	"wavepipe/internal/num"
	"wavepipe/internal/sched"
	"wavepipe/internal/trace"
	"wavepipe/internal/waveform"
)

// debugSteps enables step-decision tracing (tests/diagnostics only).
var debugSteps = os.Getenv("WAVEPIPE_DEBUG") != ""

// Breakpointer is implemented by devices whose waveforms have slope
// discontinuities the engine must land on exactly.
type Breakpointer interface {
	Breakpoints(stop float64) []float64
}

// Options configures a transient analysis.
type Options struct {
	TStop   float64           // end of the simulation window (required)
	Method  integrate.Method  // integration method (default Gear2)
	HInit   float64           // first step (default TStop·1e-6)
	Control integrate.Control // zero value → integrate.DefaultControl(TStop)
	Newton  newton.Options    // zero value → newton.DefaultOptions()
	Gmin    float64           // junction shunt (default 1e-12)
	// UIC skips the DC operating point and starts from the IC values
	// (unspecified nodes start at 0), like SPICE's .TRAN ... UIC.
	UIC bool
	// IC maps solution-vector indices to initial values (used with UIC).
	IC map[int]float64
	// NodeSet maps solution-vector indices to operating-point initial
	// guesses (.NODESET): they seed Newton but are not enforced.
	NodeSet map[int]float64
	// Record lists solution-vector indices to store in the result waveform
	// set; nil records every node voltage.
	Record []int
	// MaxPoints aborts runaway simulations (default 2 000 000).
	MaxPoints int
	// DCOp configures the operating-point search.
	DCOp dcop.Options
	// NoLTE disables truncation-error step control (fixed conservative
	// stepping; used by ablation experiments).
	NoLTE bool
	// GrowthCapOverride, when > 0, replaces Control.GrowthCap (ablation).
	GrowthCapOverride float64
	// LoadWorkers > 1 enables fine-grained parallel device evaluation
	// inside every assembly pass (the conventional parallel-SPICE baseline).
	LoadWorkers int
	// CoreBudget > 1 attaches a shared worker gang to the point solver:
	// colored device loads and the level-scheduled sparse LU kernels run on
	// one pool of CoreBudget cores (caller included). Results are bit-
	// identical to the serial path. 0/1 keeps everything serial. Small
	// systems stay serial regardless (see IntraProfitable).
	CoreBudget int
	// LoadMode selects the parallel assembly strategy when LoadWorkers > 1:
	// automatic, shard-and-reduce, or colored direct stamping.
	LoadMode circuit.LoadMode
	// BypassTol > 0 enables Newton factorization bypass: when no Jacobian
	// value moved by more than this relative tolerance since the last real
	// factorization, the LU is reused (the accepted final iterate of every
	// point is still guaranteed a fresh factorization). 0 disables.
	BypassTol float64
	// DeviceBypassTol > 0 enables the incremental assembly engine: linear
	// devices collapse into a cached per-Alpha0 stamp template, and nonlinear
	// devices whose controlling voltages moved by less than
	// DeviceBypassTol·|v| + abstol since their last evaluation are answered
	// by journal replay instead of a model evaluation (SPICE3-style device
	// bypass). The iteration that declares convergence is always fully
	// evaluated, so accepted points never rest on replayed stamps.
	// 0 disables (the default, and the bit-exact reference path).
	DeviceBypassTol float64
	// Faults, when non-nil, is a deterministic fault-injection harness shared
	// by every solver layer of the run (tests only; nil in production).
	Faults *faults.Injector
	// Ctx, when non-nil, is polled at every time-point boundary: once it is
	// done the run stops, returning the partial Result alongside an error
	// wrapping faults.ErrCanceled.
	Ctx context.Context
	// Trace, when non-nil, receives the structured run telemetry (per-point
	// events, solve-phase timings, periodic snapshots). Nil keeps the hot
	// path allocation- and clock-read-free.
	Trace *trace.Tracer
	// Guard, when non-nil, makes the run durable and time-bound: it owns the
	// cooperative abort flag (deadline timer, stall watchdog), decides when
	// periodic checkpoints are due, and persists them. The engine writes a
	// final checkpoint on every exit path that has at least one accepted
	// point.
	Guard *checkpoint.Controller
	// Resume, when non-nil, is a validated-on-entry checkpoint the run
	// continues from instead of computing a DC operating point. The caller
	// must pass the same circuit and analysis options the checkpoint was
	// written under.
	Resume *checkpoint.State
	// OnAccept, when non-nil, observes every accepted time point right after
	// it is committed to the waveform set: t is the point's time and row the
	// recorded values in waveform column order. The row aliases the set's
	// storage — callers that retain it past the callback must copy. Called
	// from the engine's commit goroutine only, in time order, never after
	// Run returns. A resumed run does not re-emit points restored from the
	// checkpoint.
	OnAccept func(t float64, row []float64)
}

// DefaultDeviceBypassTol is the relative tolerance the facade enables
// device bypass with. It sits well inside the Newton update tolerance, so a
// replayed stamp can never move an iterate across the convergence band.
const DefaultDeviceBypassTol = 1e-3

// canceled reports whether o.Ctx has been canceled (nil-safe, non-blocking).
func (o *Options) canceled() bool {
	if o.Ctx == nil {
		return false
	}
	select {
	case <-o.Ctx.Done():
		return true
	default:
		return false
	}
}

// CancelError builds the typed error a canceled run returns.
func CancelError(phase string, t float64) error {
	return &faults.SimError{Phase: phase, Time: t, Node: -1, Cause: faults.ErrCanceled}
}

func (o Options) WithDefaults() Options {
	if o.Method == 0 {
		o.Method = integrate.Gear2
	}
	if o.HInit <= 0 {
		o.HInit = o.TStop * 1e-6
	}
	if o.Control == (integrate.Control{}) {
		o.Control = integrate.DefaultControl(o.TStop)
	}
	if o.GrowthCapOverride > 0 {
		o.Control.GrowthCap = o.GrowthCapOverride
	}
	if o.Newton.MaxIter == 0 {
		o.Newton = newton.DefaultOptions()
	}
	if o.Gmin <= 0 {
		o.Gmin = 1e-12
	}
	if o.MaxPoints <= 0 {
		o.MaxPoints = 2_000_000
	}
	if o.DCOp.GminSteps == 0 {
		o.DCOp = dcop.DefaultOptions()
	}
	return o
}

// Stats aggregates the work a transient run performed.
type Stats struct {
	Points     int // accepted time points
	Solves     int // Newton point solves attempted (incl. rejected/discarded)
	NRIters    int // total Newton iterations
	LTERejects int // points rejected by truncation-error control
	NRFailures int // Newton non-convergence retries
	Discarded  int // speculative points thrown away (parallel engines)
	OpIters    int // operating-point Newton iterations
	Stages     int // sequential solve rounds on the critical path
	Recoveries int // points rescued by the convergence-recovery ladder
	// WorkerPanics counts pipeline-stage worker panics converted to typed
	// errors; DegradedStages counts stages the pipeline ran serially because
	// of degradation (not counting post-breakpoint warmup).
	WorkerPanics   int
	DegradedStages int
	// Factorization accounting (filled from the sparse solver counters):
	// bypassed calls reused the previous LU outright, refactorizations took
	// the numeric-only path, full factorizations re-pivoted from scratch.
	BypassedFactorizations int
	Refactorizations       int
	FullFactorizations     int
	// Incremental-assembly accounting (filled from the workspace counters):
	// BypassedEvals counts device evaluations answered by journal replay,
	// LinearStampHits counts device loads that started from a cached linear
	// stamp template instead of re-stamping every linear device.
	BypassedEvals   int64
	LinearStampHits int64
	// CriticalNanos is the modeled multi-core wall-clock time: per pipeline
	// stage, the slowest concurrent worker's measured compute time. For the
	// serial engine it equals the sum of all point-solve times. This is the
	// timing model used to report speedups on hosts with fewer cores than
	// worker threads (see DESIGN.md, hardware substitution).
	CriticalNanos int64
	// Two-level scheduling accounting: the core budget the run was given,
	// how it was split between pipeline workers and intra-point workers,
	// and whether the pipeline had to serialize because the host (or the
	// budget) could not actually run the stage gangs concurrently.
	CoreBudget         int
	PipelineWorkers    int
	IntraWorkers       int
	PipelineSerialized bool
	// Time-parallel (Parareal) window accounting, filled only by the
	// internal/windows coordinator: windows launched, fine-propagator
	// invocations (speculative solves plus redos), and windows that failed
	// their convergence gate and were redone from the exact predecessor
	// state. Points/Solves above count every inner run, including
	// speculative window solves later discarded, so trace replay still
	// reconciles 1:1; the stitched waveform is shorter than Points.
	WindowsLaunched int64
	PararealIters   int64
	WindowRedos     int64
	// Parasitic-reduction accounting, filled by the facade when the
	// internal/reduce pass shrank the system before this run: original
	// nodes and devices the pass suppressed. Like the scheduling fields,
	// they describe the run rather than per-worker work.
	ReducedNodes   int64
	ReducedDevices int64
}

// Add accumulates other into s (used to merge per-worker stats).
func (s *Stats) Add(other Stats) {
	s.Points += other.Points
	s.Solves += other.Solves
	s.NRIters += other.NRIters
	s.LTERejects += other.LTERejects
	s.NRFailures += other.NRFailures
	s.Discarded += other.Discarded
	s.OpIters += other.OpIters
	s.Stages += other.Stages
	s.Recoveries += other.Recoveries
	s.WorkerPanics += other.WorkerPanics
	s.DegradedStages += other.DegradedStages
	s.BypassedFactorizations += other.BypassedFactorizations
	s.Refactorizations += other.Refactorizations
	s.FullFactorizations += other.FullFactorizations
	s.BypassedEvals += other.BypassedEvals
	s.LinearStampHits += other.LinearStampHits
	s.CriticalNanos += other.CriticalNanos
	// Scheduling fields describe the run, not per-worker work: keep the
	// maximum (per-worker stats carry zeros) and OR the serialization flag.
	if other.CoreBudget > s.CoreBudget {
		s.CoreBudget = other.CoreBudget
	}
	if other.PipelineWorkers > s.PipelineWorkers {
		s.PipelineWorkers = other.PipelineWorkers
	}
	if other.IntraWorkers > s.IntraWorkers {
		s.IntraWorkers = other.IntraWorkers
	}
	s.PipelineSerialized = s.PipelineSerialized || other.PipelineSerialized
	s.WindowsLaunched += other.WindowsLaunched
	s.PararealIters += other.PararealIters
	s.WindowRedos += other.WindowRedos
	if other.ReducedNodes > s.ReducedNodes {
		s.ReducedNodes = other.ReducedNodes
	}
	if other.ReducedDevices > s.ReducedDevices {
		s.ReducedDevices = other.ReducedDevices
	}
}

// Result is the outcome of a transient analysis. On failure the engines
// still return the partial Result accumulated so far (waveform, stats,
// recovery log) alongside the error, so callers can report how far the run
// got and what was tried.
type Result struct {
	W      *waveform.Set
	Stats  Stats
	FinalX []float64
	// Recovery records the robustness actions taken during the run (empty
	// on a healthy run).
	Recovery *RecoveryLog
}

// PointSolver computes implicit solutions at single time points on one
// workspace. One PointSolver must be used by at most one goroutine.
type PointSolver struct {
	WS     *circuit.Workspace
	Method integrate.Method
	Newton newton.Options
	Gmin   float64
	Stats  Stats
	// LastNanos is the modeled compute time of the most recent SolveAt,
	// WarmStart or ResumeAt call: measured wall time, with the device-load
	// wall time replaced by its parallel critical path when sharded loading
	// is on. LastIters is the Newton iteration count of that call.
	LastNanos int64
	LastIters int

	qhist, r, dx []float64

	// Warm-start bookkeeping for ResumeAt: the time point and Alpha0 the
	// workspace's current assembly and factorization correspond to.
	warmTime   float64
	warmAlpha0 float64
	warmValid  bool

	// Pooled per-point scratch: steady-state transient iteration allocates
	// nothing. tailBuf/predTs/predXs/predYs/predC serve the polynomial
	// predictor; warmBuf is WarmStart's returned iterate (consumed by the
	// matching ResumeAt before the next WarmStart on this solver); LTE holds
	// the divided-difference scratch of the engines' acceptance checks.
	tailBuf []*integrate.Point
	predTs  []float64
	predXs  [][]float64
	predYs  []float64
	predC   []float64
	warmBuf []float64
	LTE     integrate.LTEScratch

	// ptPool recycles Point buffers (X/Q/Qdot) through takePoint/PutPoint.
	// predRing backs PredictPoint's speculative full-point predictions: a
	// fixed rotation of four points, enough that the at-most-two predictions
	// of one pipeline stage never alias the previous stage's.
	ptPool   []*integrate.Point
	predRing [4]*integrate.Point
	predNext int
	predQs   [][]float64
	predQds  [][]float64
}

// NewPointSolver allocates a solver on a fresh workspace of sys.
func NewPointSolver(sys *circuit.System, method integrate.Method, nopts newton.Options, gmin float64) *PointSolver {
	n := sys.N
	return &PointSolver{
		WS:     sys.NewWorkspace(),
		Method: method,
		Newton: nopts,
		Gmin:   gmin,
		qhist:  make([]float64, n),
		r:      make([]float64, n),
		dx:     make([]float64, n),
	}
}

// SetTrace attaches the run's event stream to this solver's workspace and
// assigns its worker lane (nil tr keeps the untraced fast path).
func (ps *PointSolver) SetTrace(tr *trace.Tracer, worker int16) {
	ps.WS.Trace = tr
	ps.WS.Worker = worker
}

// Predict extrapolates the solution history polynomially to time t, writing
// the initial Newton guess into dst. At most three trailing points are used
// (quadratic prediction).
func Predict(hist *integrate.History, t float64, dst []float64) {
	pts := hist.Tail(3)
	ts := make([]float64, len(pts))
	xs := make([][]float64, len(pts))
	for i, p := range pts {
		ts[i] = p.T
		xs[i] = p.X
	}
	num.PredictVectorAt(ts, xs, t, dst)
}

// predict is Predict running entirely on the solver's pooled scratch.
func (ps *PointSolver) predict(hist *integrate.History, t float64, dst []float64) {
	ps.tailBuf = hist.AppendTail(ps.tailBuf[:0], 3)
	pts := ps.tailBuf
	k := len(pts)
	if cap(ps.predTs) < k {
		ps.predTs = make([]float64, k)
		ps.predXs = make([][]float64, k)
		ps.predYs = make([]float64, k)
		ps.predC = make([]float64, k)
	}
	ts, xs := ps.predTs[:k], ps.predXs[:k]
	for i, p := range pts {
		ts[i] = p.T
		xs[i] = p.X
	}
	num.PredictVectorAtWith(ts, xs, t, dst, ps.predYs[:k], ps.predC[:k])
}

// takePoint pops a recycled point (or allocates one) with X/Q/Qdot buffers
// of the system size.
func (ps *PointSolver) takePoint() *integrate.Point {
	if k := len(ps.ptPool); k > 0 {
		pt := ps.ptPool[k-1]
		ps.ptPool = ps.ptPool[:k-1]
		return pt
	}
	n := ps.WS.Sys.N
	return &integrate.Point{
		X:    make([]float64, n),
		Q:    make([]float64, n),
		Qdot: make([]float64, n),
	}
}

// PutPoint hands a point's buffers back to the solver pool. The caller must
// be the point's sole owner: nothing published to a shared history, waveform
// or another worker may be recycled. Nil and foreign-sized points are
// ignored.
func (ps *PointSolver) PutPoint(pt *integrate.Point) {
	if pt == nil || len(pt.X) != ps.WS.Sys.N || len(pt.Q) != ps.WS.Sys.N || len(pt.Qdot) != ps.WS.Sys.N {
		return
	}
	ps.ptPool = append(ps.ptPool, pt)
}

// PredictPoint extrapolates a full (X, Q, Qdot) point from history — the
// speculative stand-in for a predecessor that has not converged yet. The
// returned point comes from a fixed four-slot rotation: it stays valid for
// the duration of the pipeline stage that requested it and is reused two
// PredictPoint calls later.
func (ps *PointSolver) PredictPoint(hist *integrate.History, t float64) *integrate.Point {
	pt := ps.predRing[ps.predNext]
	ps.predNext = (ps.predNext + 1) % len(ps.predRing)
	n := ps.WS.Sys.N
	if pt == nil || len(pt.X) != n {
		pt = &integrate.Point{
			X:    make([]float64, n),
			Q:    make([]float64, n),
			Qdot: make([]float64, n),
		}
		ps.predRing[(ps.predNext+len(ps.predRing)-1)%len(ps.predRing)] = pt
	}
	pt.T = t
	ps.tailBuf = hist.AppendTail(ps.tailBuf[:0], 3)
	pts := ps.tailBuf
	k := len(pts)
	if cap(ps.predTs) < k {
		ps.predTs = make([]float64, k)
		ps.predXs = make([][]float64, k)
		ps.predYs = make([]float64, k)
		ps.predC = make([]float64, k)
	}
	if cap(ps.predQs) < k {
		ps.predQs = make([][]float64, k)
		ps.predQds = make([][]float64, k)
	}
	ts, xs := ps.predTs[:k], ps.predXs[:k]
	qs, qds := ps.predQs[:k], ps.predQds[:k]
	for i, p := range pts {
		ts[i] = p.T
		xs[i] = p.X
		qs[i] = p.Q
		qds[i] = p.Qdot
	}
	ys, c := ps.predYs[:k], ps.predC[:k]
	num.PredictVectorAtWith(ts, xs, t, pt.X, ys, c)
	num.PredictVectorAtWith(ts, qs, t, pt.Q, ys, c)
	num.PredictVectorAtWith(ts, qds, t, pt.Qdot, ys, c)
	return pt
}

// HarvestSolverStats copies the workspace's cumulative sparse-solver
// counters into Stats. Engines call it once per solver before merging stats.
func (ps *PointSolver) HarvestSolverStats() {
	ps.Stats.BypassedFactorizations = ps.WS.Solver.BypassedFactorizations
	ps.Stats.Refactorizations = ps.WS.Solver.Refactorizations
	ps.Stats.FullFactorizations = ps.WS.Solver.FullFactorizations
	ps.Stats.BypassedEvals, ps.Stats.LinearStampHits = ps.WS.DeviceBypassCounters()
}

// SolveAt computes the converged solution at tNew using hist for the
// integration formula. guess, when non-nil, seeds Newton (otherwise a
// polynomial prediction from hist is used). It returns the new point and
// the coefficients that produced it.
func (ps *PointSolver) SolveAt(hist *integrate.History, tNew float64, guess []float64) (*integrate.Point, integrate.Coeffs, error) {
	return ps.solveAtWith(hist, tNew, guess, ps.Newton, 0)
}

// solveAtWith is SolveAt with explicit Newton options and an optional
// node-to-ground conductance (the recovery ladder's knobs).
func (ps *PointSolver) solveAtWith(hist *integrate.History, tNew float64, guess []float64, nopts newton.Options, nodeGmin float64) (*integrate.Point, integrate.Coeffs, error) {
	start := time.Now()
	defer ps.model(start, ps.WS.LoadWallNanos, ps.WS.LoadCritNanos, ps.WS.Solver.LUWallNanos, ps.WS.Solver.LUCritNanos)
	co, err := integrate.Compute(ps.Method, hist, tNew, ps.qhist)
	if err != nil {
		return nil, co, err
	}
	pt := ps.takePoint()
	x := pt.X
	if guess != nil {
		copy(x, guess)
	} else {
		ps.predict(hist, tNew, x)
	}
	p := circuit.LoadParams{Time: tNew, Alpha0: co.Alpha0, Gmin: ps.Gmin, SrcScale: 1, NodeGmin: nodeGmin}
	ps.Stats.Solves++
	res, err := newton.Solve(ps.WS, x, p, ps.qhist, nopts, ps.r, ps.dx)
	ps.Stats.NRIters += res.Iters
	ps.LastIters = res.Iters
	ps.emitSolve(start, tNew, co.H0, res.Iters, 0, err)
	if err != nil {
		ps.Stats.NRFailures++
		ps.PutPoint(pt)
		return nil, co, err
	}
	return ps.finishPoint(pt, tNew, co), co, nil
}

// emitSolve publishes one KindSolve event covering the whole point solve
// (integration coefficients, prediction, Newton loop). No-op when untraced.
func (ps *PointSolver) emitSolve(start time.Time, tNew, h float64, iters int, flags uint8, err error) {
	tr := ps.WS.Trace
	if !tr.Active() {
		return
	}
	ev := trace.Event{
		Kind: trace.KindSolve, T: tNew, H: h, Iters: int32(iters),
		Worker: ps.WS.Worker, Flags: flags, Dur: time.Since(start).Nanoseconds(),
	}
	if err != nil {
		ev.Flags |= trace.FlagFailed
	}
	tr.Emit(ev)
}

// loadCounted pairs a device load performed outside the Newton loop with the
// same PhaseDeviceLoad event internal/newton emits for its loads, so trace
// replay stays reconcilable 1:1 with the workspace's bypass counters (the
// initial-point and warm-start loads can hit the linear template, and the
// former can even replay journals when the operating point just converged at
// the same iterate).
func (ps *PointSolver) loadCounted(x []float64, p circuit.LoadParams) {
	tr := ps.WS.Trace
	if !tr.Active() {
		ps.WS.Load(x, p)
		return
	}
	t0 := time.Now()
	ps.WS.Load(x, p)
	ev := trace.Event{
		Kind: trace.KindPhase, Phase: trace.PhaseDeviceLoad,
		Dur: time.Since(t0).Nanoseconds(), T: p.Time, Worker: ps.WS.Worker,
		Iters: int32(ps.WS.LastLoadBypassed()),
	}
	if ps.WS.LastLoadLinearHit() {
		ev.Flags |= trace.FlagLinearHit
	}
	tr.Emit(ev)
}

// WarmStart runs up to maxIter Newton iterations at tNew against the given
// (possibly speculative) history and returns the resulting approximation
// regardless of convergence. Forward pipelining uses it to pre-iterate on a
// predicted history while the true predecessor point is still being solved.
func (ps *PointSolver) WarmStart(hist *integrate.History, tNew float64, maxIter int) []float64 {
	start := time.Now()
	defer ps.model(start, ps.WS.LoadWallNanos, ps.WS.LoadCritNanos, ps.WS.Solver.LUWallNanos, ps.WS.Solver.LUCritNanos)
	ps.warmValid = false
	co, err := integrate.Compute(ps.Method, hist, tNew, ps.qhist)
	if err != nil {
		return nil
	}
	if ps.warmBuf == nil {
		ps.warmBuf = make([]float64, ps.WS.Sys.N)
	}
	x := ps.warmBuf
	ps.predict(hist, tNew, x)
	opts := ps.Newton
	opts.MaxIter = maxIter
	p := circuit.LoadParams{Time: tNew, Alpha0: co.Alpha0, Gmin: ps.Gmin, SrcScale: 1}
	res, _ := newton.Solve(ps.WS, x, p, ps.qhist, opts, ps.r, ps.dx) // non-convergence is fine
	ps.Stats.NRIters += res.Iters
	if tr := ps.WS.Trace; tr.Active() {
		tr.Emit(trace.Event{
			Kind: trace.KindPredict, T: tNew, H: co.H0, Iters: int32(res.Iters),
			Worker: ps.WS.Worker, Dur: time.Since(start).Nanoseconds(),
		})
	}
	// Leave the workspace assembled and factorized exactly at x so ResumeAt
	// can pick the speculative work up with only a residual rebuild. The
	// device assembly is history-independent; only qhist will change. The
	// factorization must be a real one — ResumeSolve's first step assumes an
	// exact LU at x — so neither the factorization bypass nor replayed
	// device stamps are allowed here.
	ps.WS.DisableBypassOnce()
	ps.loadCounted(x, p)
	if err := ps.WS.Solver.FactorizeFresh(); err != nil {
		return x
	}
	ps.warmTime = tNew
	ps.warmAlpha0 = co.Alpha0
	ps.warmValid = true
	return x
}

// ResumeAt finishes a speculatively warm-started point against the true
// history: if the stored assembly matches (same time point, same Alpha0 —
// i.e. the predicted history had the same spacings), the first correction
// costs one residual rebuild and triangular solve; otherwise it falls back
// to a plain SolveAt.
func (ps *PointSolver) ResumeAt(hist *integrate.History, tNew float64, warm []float64) (*integrate.Point, integrate.Coeffs, error) {
	co, err := integrate.Compute(ps.Method, hist, tNew, ps.qhist)
	if err != nil {
		return nil, co, err
	}
	match := ps.warmValid && warm != nil && ps.warmTime == tNew &&
		math.Abs(ps.warmAlpha0-co.Alpha0) <= 1e-9*math.Abs(co.Alpha0) &&
		os.Getenv("WAVEPIPE_NO_RESUME") == ""
	ps.warmValid = false
	if !match {
		return ps.SolveAt(hist, tNew, warm)
	}
	start := time.Now()
	defer ps.model(start, ps.WS.LoadWallNanos, ps.WS.LoadCritNanos, ps.WS.Solver.LUWallNanos, ps.WS.Solver.LUCritNanos)
	pt := ps.takePoint()
	x := pt.X
	copy(x, warm)
	p := circuit.LoadParams{Time: tNew, Alpha0: co.Alpha0, Gmin: ps.Gmin, SrcScale: 1}
	ps.Stats.Solves++
	res, err := newton.ResumeSolve(ps.WS, x, p, ps.qhist, ps.Newton, ps.r, ps.dx)
	ps.Stats.NRIters += res.Iters
	ps.LastIters = res.Iters
	ps.emitSolve(start, tNew, co.H0, res.Iters, trace.FlagResumed, err)
	if err != nil {
		ps.Stats.NRFailures++
		ps.PutPoint(pt)
		return nil, co, err
	}
	return ps.finishPoint(pt, tNew, co), co, nil
}

// model records the modeled compute time of the finished call: measured wall
// time with the device-load and LU-kernel wall segments replaced by their
// parallel critical paths (see DESIGN.md, hardware substitution).
func (ps *PointSolver) model(start time.Time, loadWall0, loadCrit0, luWall0, luCrit0 int64) {
	wall := time.Since(start).Nanoseconds()
	loadWall := ps.WS.LoadWallNanos - loadWall0
	loadCrit := ps.WS.LoadCritNanos - loadCrit0
	luWall := ps.WS.Solver.LUWallNanos - luWall0
	luCrit := ps.WS.Solver.LUCritNanos - luCrit0
	ps.LastNanos = wall - loadWall + loadCrit - luWall + luCrit
	ps.Stats.CriticalNanos += ps.LastNanos
}

// finishPoint assembles once more at the converged solution pt.X so the
// stored charge vector is exactly Q(x), then derives Qdot from the
// discretization. pt comes from takePoint and is filled in place.
func (ps *PointSolver) finishPoint(pt *integrate.Point, tNew float64, co integrate.Coeffs) *integrate.Point {
	p := circuit.LoadParams{Time: tNew, Alpha0: co.Alpha0, Gmin: ps.Gmin, SrcScale: 1, NoLimit: true}
	ps.loadCounted(pt.X, p)
	pt.T = tNew
	copy(pt.Q, ps.WS.Q)
	for i := range pt.Qdot {
		pt.Qdot[i] = co.Alpha0*pt.Q[i] + ps.qhist[i]
	}
	return pt
}

// InitialPoint computes the t = 0 point: a DC operating point (or the UIC
// initial conditions) with its charge vector.
func InitialPoint(sys *circuit.System, ps *PointSolver, opts Options) (*integrate.Point, error) {
	n := sys.N
	x := make([]float64, n)
	if opts.UIC {
		for idx, v := range opts.IC {
			if idx < 0 || idx >= n {
				return nil, fmt.Errorf("transient: IC index %d out of range", idx)
			}
			x[idx] = v
		}
	} else {
		op := opts.DCOp
		if len(opts.NodeSet) > 0 && op.NodeSet == nil {
			op.NodeSet = opts.NodeSet
		}
		st, err := dcop.Solve(ps.WS, x, op)
		ps.Stats.OpIters += st.NRIters
		if err != nil {
			return nil, fmt.Errorf("transient: operating point: %w", err)
		}
		// .IC overrides on top of the operating point (SPICE applies them
		// as node constraints; overriding is the common simplification).
		for idx, v := range opts.IC {
			if idx >= 0 && idx < n {
				x[idx] = v
			}
		}
	}
	ps.loadCounted(x, circuit.LoadParams{Time: 0, Alpha0: 0, Gmin: opts.Gmin, SrcScale: 1})
	return &integrate.Point{
		T:    0,
		X:    x,
		Q:    num.Copy(ps.WS.Q),
		Qdot: make([]float64, n),
	}, nil
}

// CollectBreakpoints gathers the waveform breakpoints of every device, plus
// tstop itself, sorted and deduplicated.
func CollectBreakpoints(sys *circuit.System, tstop float64) []float64 {
	return collectBreakpoints(sys.Circuit.Devices(), tstop)
}

func collectBreakpoints(devs []circuit.Device, tstop float64) []float64 {
	var bps []float64
	for _, d := range devs {
		if b, ok := d.(Breakpointer); ok {
			bps = append(bps, b.Breakpoints(tstop)...)
		}
	}
	bps = append(bps, tstop)
	sort.Float64s(bps)
	out := bps[:0]
	prev := math.Inf(-1)
	for _, t := range bps {
		if t > prev+1e-15*tstop && t > 0 {
			out = append(out, t)
			prev = t
		}
	}
	return out
}

// HorizonIsEdge reports whether a device waveform breakpoint coincides with
// tstop itself. A run ending on a plain horizon keeps its integrator
// history at full order in the final checkpoint, so a continuation resumed
// from it (durable restore, time-parallel window chains) picks up
// seamlessly; a run ending exactly on a waveform edge must capture a
// restart state instead, because post-edge dynamics bear no relation to the
// pre-edge derivative history.
func HorizonIsEdge(sys *circuit.System, tstop float64) bool {
	// Waveforms enumerate breakpoints strictly below the stop they are
	// given, so an edge exactly at tstop only shows up when asked for a
	// slightly longer horizon.
	eps := tstop * 1e-9
	for _, d := range sys.Circuit.Devices() {
		b, ok := d.(Breakpointer)
		if !ok {
			continue
		}
		for _, bp := range b.Breakpoints(tstop + 2*eps) {
			if math.Abs(bp-tstop) <= eps {
				return true
			}
		}
	}
	return false
}

// DefaultRecord returns the record list for nil Options.Record: every node
// voltage.
func DefaultRecord(sys *circuit.System) ([]string, []int) {
	names := make([]string, sys.NumNodes)
	idx := make([]int, sys.NumNodes)
	for i := 0; i < sys.NumNodes; i++ {
		names[i] = sys.Circuit.NodeName(i)
		idx[i] = i
	}
	return names, idx
}

// RecordSet builds the waveform set for the given options.
func RecordSet(sys *circuit.System, opts Options) *waveform.Set {
	if opts.Record == nil {
		names, idx := DefaultRecord(sys)
		return waveform.NewSet(names, idx)
	}
	names := make([]string, len(opts.Record))
	for i, idx := range opts.Record {
		if idx < sys.NumNodes {
			names[i] = sys.Circuit.NodeName(idx)
		} else {
			names[i] = fmt.Sprintf("branch%d", idx-sys.NumNodes)
		}
	}
	return waveform.NewSet(names, opts.Record)
}

// RestartStep sizes the first step after a waveform breakpoint: a small
// fraction of the gap to the next breakpoint, no larger than the last
// accepted step (the pre-edge dynamics bound what the circuit can follow),
// and never below the configured initial step.
func RestartStep(gap, lastStep, hInit float64, ctrl integrate.Control) float64 {
	h := gap / 4
	if lastStep > 0 && h > lastStep {
		h = lastStep
	}
	if h < hInit {
		h = hInit
	}
	return num.Clamp(h, ctrl.HMin, ctrl.HMax)
}

// IntraProfitable reports whether a system is large enough for the
// intra-point gang (pooled colored loads + level-scheduled LU kernels) to
// pay for its barrier overhead. Small circuits stay serial no matter what
// core budget the caller offers: the per-level synchronization costs more
// than the arithmetic it spreads.
func IntraProfitable(sys *circuit.System) bool {
	return sys.N >= 96 && len(sys.Circuit.Devices()) >= 128
}

// Run executes the serial adaptive transient analysis.
func Run(sys *circuit.System, opts Options) (result *Result, runErr error) {
	if opts.TStop <= 0 {
		return nil, fmt.Errorf("transient: TStop must be positive")
	}
	opts = opts.WithDefaults()
	ctrl := opts.Control
	tr := opts.Trace
	guard := opts.Guard
	ps := NewPointSolver(sys, opts.Method, opts.Newton, opts.Gmin)
	ps.WS.Faults = opts.Faults
	ps.WS.Abort = guard.AbortFlag()
	ps.WS.Solver.BypassTol = opts.BypassTol
	ps.WS.SetDeviceBypass(opts.DeviceBypassTol, 0)
	ps.SetTrace(tr, 0)
	if opts.LoadWorkers > 1 {
		ps.WS.SetLoadWorkers(opts.LoadWorkers)
		ps.WS.SetLoadMode(opts.LoadMode)
	}
	if opts.CoreBudget > 0 {
		ps.Stats.CoreBudget = opts.CoreBudget
		ps.Stats.PipelineWorkers = 1
		ps.Stats.IntraWorkers = 1
	}
	if opts.CoreBudget > 1 && IntraProfitable(sys) {
		budget := sched.NewBudget(opts.CoreBudget)
		budget.Reserve(1) // this goroutine is the gang leader
		if pool := budget.NewPool(opts.CoreBudget); pool != nil {
			defer pool.Close()
			ps.WS.SetPool(pool)
			ps.Stats.IntraWorkers = pool.Workers()
		}
	}
	rl := &RecoveryLog{}
	var base Stats // totals of run segments before a resume
	partial := func(w *waveform.Set, hist *integrate.History) *Result {
		ps.HarvestSolverStats()
		st := ps.Stats
		st.Add(base)
		res := &Result{W: w, Stats: st, Recovery: rl}
		if last := hist.Last(); last != nil {
			res.FinalX = num.Copy(last.X)
		}
		return res
	}

	var hist *integrate.History
	var w *waveform.Set
	h := math.Min(opts.HInit, ctrl.HMax)
	t := 0.0
	hUsed := 0.0
	afterBreak := true // the t=0 point counts as a breakpoint start

	capture := func() *checkpoint.State {
		ps.HarvestSolverStats()
		total := ps.Stats
		total.Add(base)
		// The serial engine assigns Stages = Solves only at run end; keep
		// checkpointed totals consistent with that convention.
		if total.Stages < total.Solves {
			total.Stages = total.Solves
		}
		return CaptureState(sys, ps, &opts, w, rl, hist, total, t, h, hUsed, afterBreak, 0, 0)
	}
	// Final checkpoint on every exit path that accepted at least one point —
	// success, typed abort, cancellation, even a panic unwinding through the
	// facade's containment. A failed final save on an otherwise-successful
	// run is an error: the caller asked for durability and did not get it.
	defer func() {
		if !guard.Active() || hist == nil || hist.Len() == 0 {
			return
		}
		saveErr := guard.SaveFinal(capture())
		if runErr == nil && saveErr != nil {
			runErr = &faults.SimError{Phase: "checkpoint", Time: t, Node: -1, Cause: saveErr}
		}
	}()

	if opts.Resume != nil {
		rs, err := RestoreState(opts.Resume, sys, ps, &opts)
		if err != nil {
			return nil, err
		}
		hist, w, rl, base = rs.Hist, rs.W, rs.RL, rs.Base
		t, h, hUsed, afterBreak = rs.T, rs.H, rs.HUsed, rs.AfterBreak
	} else {
		p0, err := InitialPoint(sys, ps, opts)
		if err != nil {
			return nil, err
		}
		hist = &integrate.History{}
		hist.Add(p0)
		w = RecordSet(sys, opts)
		w.Append(p0.T, p0.X)
		if opts.OnAccept != nil {
			opts.OnAccept(p0.T, w.Data[len(w.Data)-1])
		}
	}

	bps := CollectBreakpoints(sys, opts.TStop)
	nextBp := 0
	horizonEdge := HorizonIsEdge(sys, opts.TStop)
	var lteTail []*integrate.Point
	ckptDue := false

	for t < opts.TStop*(1-1e-12) {
		if ckptDue {
			ckptDue = false
			// Periodic snapshot; a failed write is latched in the controller
			// but never kills a healthy run.
			_ = guard.Save(capture())
		}
		if aerr := guard.Err(); aerr != nil {
			return partial(w, hist), &faults.SimError{Phase: "transient", Time: t, Node: -1, Cause: aerr}
		}
		if opts.canceled() {
			if tr.Active() {
				tr.Emit(trace.Event{Kind: trace.KindCancel, T: t, Worker: -1})
			}
			return partial(w, hist), CancelError("transient", t)
		}
		if ps.Stats.Points >= opts.MaxPoints {
			return partial(w, hist), fmt.Errorf("transient: exceeded %d points at t=%g", opts.MaxPoints, t)
		}
		// Advance past consumed breakpoints.
		for nextBp < len(bps) && bps[nextBp] <= t*(1+1e-12) {
			nextBp++
		}
		tLimit := opts.TStop
		if nextBp < len(bps) {
			tLimit = bps[nextBp]
		}
		hitBp := false
		tNew := t + h
		// Clamp onto the breakpoint when the step lands within 1% of it —
		// step-relative, so a shrinking step can always move the candidate
		// off the breakpoint (a limit-relative smudge can exceed tiny steps
		// and trap the rejection loop).
		if tNew >= tLimit-0.01*h {
			tNew = tLimit
			hitBp = true
		}

		pt, co, err := ps.SolveAt(hist, tNew, nil)
		if err != nil {
			// A tripped deadline/watchdog surfaces as a solve error (the
			// Newton loop polls the abort flag); report the abort, not a
			// convergence failure.
			if aerr := guard.Err(); aerr != nil {
				return partial(w, hist), &faults.SimError{Phase: "transient", Time: t, Node: -1, Cause: aerr}
			}
			// Step shrinking is the cheap first response; once the floor is
			// reached the convergence-recovery ladder takes over at the
			// smallest representable step.
			// A failed solve leaves journals recorded at diverging iterates:
			// retire them so the retry starts from full evaluations.
			ps.WS.InvalidateDeviceBypass()
			if h/8 >= ctrl.HMin {
				h /= 8
				continue
			}
			h = ctrl.HMin
			tNew = t + h
			hitBp = tNew >= tLimit-0.01*h
			if hitBp {
				tNew = tLimit
			}
			pt, co, err = ps.RecoverAt(hist, tNew, rl)
			if err != nil {
				if aerr := guard.Err(); aerr != nil {
					return partial(w, hist), &faults.SimError{Phase: "transient", Time: t, Node: -1, Cause: aerr}
				}
				return partial(w, hist), &faults.SimError{
					Phase: "transient", Time: t, Node: -1,
					Cause: fmt.Errorf("%w at t=%g: %w", faults.ErrStepTooSmall, t, err),
				}
			}
		}

		// LTE acceptance (the norm is also what sizes the next step). With
		// too little history (right after breakpoints) the norm is 0 and
		// the point is accepted, as in SPICE.
		norm := 0.0
		if !opts.NoLTE {
			lteTail = append(hist.AppendTail(lteTail[:0], co.Order+1), pt)
			if tr.Active() {
				t0 := time.Now()
				norm = ctrl.CheckLTEWith(ps.Method, co.Order, lteTail, co.H0, co.H1, &ps.LTE)
				tr.Emit(trace.Event{
					Kind: trace.KindPhase, Phase: trace.PhaseLTE, T: pt.T, Norm: norm,
					Worker: ps.WS.Worker, Dur: time.Since(t0).Nanoseconds(),
				})
			} else {
				norm = ctrl.CheckLTEWith(ps.Method, co.Order, lteTail, co.H0, co.H1, &ps.LTE)
			}
			if norm > 1 && co.H0 > ctrl.HMin*1.01 && !afterBreak {
				ps.Stats.LTERejects++
				if tr.Active() {
					tr.Emit(trace.Event{Kind: trace.KindLTEReject, T: tNew, H: co.H0, Norm: norm, Worker: ps.WS.Worker})
				}
				h = ctrl.ShrinkOnReject(co.H0, norm, co.Order)
				// The rejected candidate's journals describe a discarded
				// trajectory; the retried point must re-evaluate everything.
				ps.WS.InvalidateDeviceBypass()
				ps.PutPoint(pt)
				continue
			}
		}

		// The serial engine is the history's sole owner, so a point falling
		// out of the bounded window can be recycled into the next solve.
		ps.PutPoint(hist.Add(pt))
		w.Append(pt.T, pt.X)
		if opts.OnAccept != nil {
			opts.OnAccept(pt.T, w.Data[len(w.Data)-1])
		}
		ps.Stats.Points++
		t = pt.T
		hUsed = co.H0
		if guard.NoteAccept() {
			ckptDue = true // snapshot at the top of the next iteration
		}
		// Emitted only after t/hist/waveform agree: a panic unwinding out of
		// this callback flushes a checkpoint, which must see a committed step.
		if tr.Active() {
			tr.Emit(trace.Event{Kind: trace.KindAccept, T: pt.T, H: co.H0, Norm: norm, Worker: ps.WS.Worker})
		}

		if hitBp && (t < opts.TStop*(1-1e-12) || horizonEdge) {
			// Restart integration after the discontinuity: derivative
			// history is invalid, so truncate it and re-enter with a step
			// sized from the upcoming breakpoint gap (clamped by the last
			// step), as SPICE does. LTE control resumes as soon as enough
			// history accumulates. A final landing on the *plain* horizon
			// (no waveform edge at TStop) skips the restart: the run is
			// over, and keeping the history at full order lets a resumed
			// continuation pick up without a restart transient.
			for _, dp := range hist.Truncate() {
				ps.PutPoint(dp)
			}
			// Discontinuity: the next point's dynamics bear no relation to
			// the journals captured before the edge.
			ps.WS.InvalidateDeviceBypass()
			gap := opts.TStop - t
			for _, bp := range bps[nextBp:] {
				if bp > t*(1+1e-12) {
					gap = bp - t
					break
				}
			}
			h = RestartStep(gap, hUsed, opts.HInit, ctrl)
			afterBreak = true
			continue
		}
		afterBreak = false

		// Choose the next step from the accepted point's LTE norm.
		if opts.NoLTE {
			h = ctrl.ClampStep(hUsed, hUsed)
			continue
		}
		h = ctrl.ClampStep(ctrl.NextStep(ps.Method, co.Order, norm, hUsed, co.H1, hUsed), hUsed)
		if debugSteps {
			fmt.Printf("ser t=%.5g hUsed=%.3g norm=%.3g h1S=%.3g -> h=%.3g\n", t, hUsed, norm, co.H1, h)
		}
	}

	last := hist.Last()
	ps.Stats.Stages = ps.Stats.Solves // serial: every solve is sequential
	ps.HarvestSolverStats()
	final := ps.Stats
	final.Add(base)
	return &Result{W: w, Stats: final, FinalX: num.Copy(last.X), Recovery: rl}, nil
}
