package transient

import (
	"wavepipe/internal/circuit"
	"wavepipe/internal/integrate"
	"wavepipe/internal/newton"
)

// Lockstep support for the ensemble engine: a Candidate is one lane's
// in-flight point solve, split open at the iteration boundary so the
// device-load phase of every live lane can be batched (circuit.BatchLoad)
// while the rest of the iteration — residual, factorization, update,
// convergence test — runs per lane through newton.StepLoaded. With every
// bypass path disabled the per-lane floating-point sequence is identical
// to SolveAt, so a lane's lockstep trajectory is bit-identical to its own
// serial run.
//
// Unlike SolveAt, candidates do not accumulate Stats.CriticalNanos or emit
// trace events: the ensemble engine measures its gang's critical path at
// round granularity and owns the event stream.

// NewPointSolverOn wraps an existing workspace (typically a lane workspace
// from System.NewLaneWorkspaces) in a point solver. scratch, when it has at
// least 3·N capacity, backs the solver's qhist/residual/update vectors —
// the ensemble carves one contiguous block per lane so the per-iteration
// vectors of adjacent lanes stay cache-adjacent; a nil or short scratch
// falls back to private allocations.
func NewPointSolverOn(ws *circuit.Workspace, method integrate.Method, nopts newton.Options, gmin float64, scratch []float64) *PointSolver {
	n := ws.Sys.N
	ps := &PointSolver{WS: ws, Method: method, Newton: nopts, Gmin: gmin}
	if len(scratch) >= 3*n {
		ps.qhist = scratch[0:n:n]
		ps.r = scratch[n : 2*n : 2*n]
		ps.dx = scratch[2*n : 3*n : 3*n]
	} else {
		ps.qhist = make([]float64, n)
		ps.r = make([]float64, n)
		ps.dx = make([]float64, n)
	}
	return ps
}

// DonatePoints seeds the solver's point pool with pre-allocated points
// (the ensemble carves each lane's points from one strided backing array,
// so history rings and candidates stay struct-of-arrays too).
func (ps *PointSolver) DonatePoints(pts []*integrate.Point) {
	ps.ptPool = append(ps.ptPool, pts...)
}

// Candidate is one lane's lockstep point solve between BeginCandidate and
// Commit/Fail.
type Candidate struct {
	ps   *PointSolver
	pt   *integrate.Point
	Co   integrate.Coeffs
	TNew float64
	Iter int // Newton iterations executed so far
	p    circuit.LoadParams
	opts newton.Options
}

// BeginCandidate opens a candidate solve at tNew: integration coefficients
// and history vector, a pooled point seeded with the polynomial prediction,
// and the entry bookkeeping SolveAt performs (Solves counter, injected
// entry fault). A non-nil error is terminal for this point and the
// candidate has already been cleaned up.
func (ps *PointSolver) BeginCandidate(hist *integrate.History, tNew float64) (*Candidate, error) {
	co, err := integrate.Compute(ps.Method, hist, tNew, ps.qhist)
	if err != nil {
		return nil, err
	}
	pt := ps.takePoint()
	ps.predict(hist, tNew, pt.X)
	nopts := ps.Newton
	if nopts.MaxIter <= 0 {
		nopts.MaxIter = newton.DefaultMaxIter
	}
	c := &Candidate{
		ps: ps, pt: pt, Co: co, TNew: tNew, opts: nopts,
		p: circuit.LoadParams{Time: tNew, Alpha0: co.Alpha0, Gmin: ps.Gmin, SrcScale: 1},
	}
	ps.Stats.Solves++
	if err := newton.EntryFault(ps.WS, tNew); err != nil {
		return nil, c.Fail(err)
	}
	return c, nil
}

// LoadArgs returns the iterate and assembly parameters the batched load of
// the current iteration must use for this lane.
func (c *Candidate) LoadArgs() ([]float64, circuit.LoadParams) {
	p := c.p
	p.FirstIter = c.Iter == 0
	return c.pt.X, p
}

// Step runs the post-assembly remainder of the current Newton iteration;
// the caller must have batch-loaded this lane with LoadArgs first. done
// reports convergence; err is terminal (exhausted iteration budget
// included) and the caller must follow with Fail.
func (c *Candidate) Step() (done bool, err error) {
	ps := c.ps
	p := c.p
	p.FirstIter = c.Iter == 0
	done, err = newton.StepLoaded(ps.WS, c.pt.X, p, ps.qhist, c.opts, ps.r, ps.dx, c.Iter)
	c.Iter++
	ps.Stats.NRIters++
	if err != nil {
		return false, err
	}
	if done {
		return true, nil
	}
	if c.Iter >= c.opts.MaxIter {
		return false, newton.NoConvergenceErr(c.TNew, c.opts.MaxIter)
	}
	return false, nil
}

// Commit finishes a converged candidate exactly as SolveAt would: one
// bookkeeping assembly at the solution for the exact charge vector, Qdot
// from the discretization. The returned point belongs to the caller.
func (c *Candidate) Commit() *integrate.Point {
	c.ps.LastIters = c.Iter
	return c.ps.finishPoint(c.pt, c.TNew, c.Co)
}

// Fail abandons the candidate after a terminal error, mirroring SolveAt's
// failure bookkeeping (NRFailures, point recycling). Returns err unchanged
// for call-site convenience.
func (c *Candidate) Fail(err error) error {
	c.ps.LastIters = c.Iter
	c.ps.Stats.NRFailures++
	c.ps.PutPoint(c.pt)
	return err
}

// CollectBreakpointsFor is CollectBreakpoints over an explicit device list
// (ensemble lanes own variant device instances whose source parameters —
// and therefore breakpoints — may differ per lane).
func CollectBreakpointsFor(devs []circuit.Device, tstop float64) []float64 {
	return collectBreakpoints(devs, tstop)
}
