package transient

// Convergence-recovery ladder: what the engines do when a time point refuses
// to solve even after step shrinking has hit the floor. The ladder mirrors
// the dcop continuation philosophy at a single transient point:
//
//  1. (in the step loop) shrink the step — the cheap, usual fix;
//  2. escalate Newton damping with a doubled iteration budget — rescues
//     points where the undamped update overshoots a sharp nonlinearity;
//  3. ramp a large artificial conductance from every node to ground down to
//     zero (transient gmin stepping) — continuation for genuinely stiff or
//     near-singular points.
//
// Every successful climb is counted in Stats.Recoveries and recorded in the
// run's RecoveryLog; ladder failure surfaces ErrStepTooSmall with the last
// cause attached.

import (
	"fmt"
	"sync"

	"wavepipe/internal/faults"
	"wavepipe/internal/integrate"
	"wavepipe/internal/newton"
	"wavepipe/internal/trace"
)

// emitRecovery publishes one KindRecovery event, paired 1:1 with the
// Stats.Recoveries increments so traces reconcile exactly.
func (ps *PointSolver) emitRecovery(t float64, detail string) {
	if tr := ps.WS.Trace; tr.Active() {
		tr.Emit(trace.Event{Kind: trace.KindRecovery, T: t, Worker: ps.WS.Worker, Detail: detail})
	}
}

// Recovery event kinds.
const (
	RecoveryDamping        = "damping"         // escalated-damping rung succeeded
	RecoveryGminRamp       = "gmin-ramp"       // transient gmin ramp succeeded
	RecoverySerialFallback = "serial-fallback" // wavepipe degraded to serial integration
)

// RecoveryEvent records one robustness action taken during a run.
type RecoveryEvent struct {
	T      float64 // simulation time the solver was stuck at
	Kind   string  // one of the Recovery* kinds
	Detail string
}

// RecoveryLog collects the recovery events of one run. All methods are safe
// for concurrent use and are no-ops on a nil receiver.
type RecoveryLog struct {
	mu     sync.Mutex
	events []RecoveryEvent
}

// Note appends an event.
func (l *RecoveryLog) Note(t float64, kind, detail string) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.events = append(l.events, RecoveryEvent{T: t, Kind: kind, Detail: detail})
	l.mu.Unlock()
}

// Events returns a copy of the recorded events.
func (l *RecoveryLog) Events() []RecoveryEvent {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]RecoveryEvent, len(l.events))
	copy(out, l.events)
	return out
}

// Len returns the number of recorded events.
func (l *RecoveryLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// Count returns how many events of the given kind were recorded.
func (l *RecoveryLog) Count(kind string) int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, e := range l.events {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

// RecoverAt climbs the convergence-recovery ladder at a time point the
// regular solve (and step shrinking) could not crack: escalating damping
// first, then a transient gmin ramp. On success the converged point is
// returned exactly as SolveAt would return it — it still faces the caller's
// LTE acceptance test. Rungs are announced to the fault injector (SetStage)
// so tests can force the ladder to a chosen depth.
func (ps *PointSolver) RecoverAt(hist *integrate.History, tNew float64, log *RecoveryLog) (*integrate.Point, integrate.Coeffs, error) {
	in := ps.WS.Faults
	defer in.SetStage(faults.StageNormal)
	// Recovery always restarts from full device evaluations: the journals
	// left behind by the failed solves describe diverging iterates.
	ps.WS.InvalidateDeviceBypass()

	// Rung 1: escalating damping. Tighter clamps trade convergence speed
	// for stability, so the iteration budget doubles.
	in.SetStage(faults.StageDamping)
	damp := ps.Newton.Damping
	if damp <= 0 {
		damp = newton.DefaultOptions().Damping
	}
	maxIter := ps.Newton.MaxIter
	if maxIter <= 0 {
		maxIter = newton.DefaultOptions().MaxIter
	}
	var lastErr error
	for _, scale := range []float64{0.2, 0.04} {
		opts := ps.Newton
		opts.Damping = damp * scale
		opts.MaxIter = 2 * maxIter
		// Every escalation starts clean: the previous rung's failed solve
		// left journals recorded at diverging iterates, and nothing captured
		// under one rung's regime may replay under the next.
		ps.WS.InvalidateDeviceBypass()
		pt, co, err := ps.solveAtWith(hist, tNew, nil, opts, 0)
		if err == nil {
			ps.Stats.Recoveries++
			detail := fmt.Sprintf("damping %.3g", opts.Damping)
			log.Note(tNew, RecoveryDamping, detail)
			ps.emitRecovery(tNew, RecoveryDamping+" "+detail)
			return pt, co, nil
		}
		lastErr = err
	}

	// Rung 2: transient gmin ramp.
	in.SetStage(faults.StageGmin)
	pt, co, err := ps.gminRampAt(hist, tNew)
	if err == nil {
		ps.Stats.Recoveries++
		log.Note(tNew, RecoveryGminRamp, "")
		ps.emitRecovery(tNew, RecoveryGminRamp)
		return pt, co, nil
	}
	if lastErr == nil {
		lastErr = err
	}
	return nil, co, fmt.Errorf("recovery ladder exhausted (gmin ramp: %w; damping: %w)", err, lastErr)
}

// gminRampAt is dcop's gmin stepping transplanted to one transient point:
// solve with a large conductance from every node to ground, relax it
// geometrically to zero warm-starting each rung from the previous solution,
// and finish with a clean solve of the true system.
func (ps *PointSolver) gminRampAt(hist *integrate.History, tNew float64) (*integrate.Point, integrate.Coeffs, error) {
	guess := make([]float64, ps.WS.Sys.N)
	Predict(hist, tNew, guess)
	g := 1e-2
	const decades = 8
	for i := 0; i < decades; i++ {
		// Each rung solves a different continuation system; a stamp
		// journaled under one rung's conductance must never replay under
		// the next (or under the clean system below), so every rung bumps
		// the incremental-engine generation.
		ps.WS.InvalidateDeviceBypass()
		pt, co, err := ps.solveAtWith(hist, tNew, guess, ps.Newton, g)
		if err != nil {
			return nil, co, fmt.Errorf("gmin ramp at g=%.0e: %w", g, err)
		}
		copy(guess, pt.X)
		ps.PutPoint(pt) // rung points are never published
		g /= 10
	}
	ps.WS.InvalidateDeviceBypass()
	return ps.solveAtWith(hist, tNew, guess, ps.Newton, 0)
}
