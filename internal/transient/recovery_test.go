package transient

import (
	"errors"
	"math"
	"testing"

	"wavepipe/internal/faults"
)

// checkRC asserts the run's "out" waveform still matches the RC closed form
// (tau = 1e-4 s) — recovery must rescue the run without bending the answer.
func checkRC(t *testing.T, res *Result) {
	t.Helper()
	for _, tv := range []float64{1e-4, 3e-4, 8e-4} {
		got, err := res.W.At("out", tv)
		if err != nil {
			t.Fatal(err)
		}
		want := 1 - math.Exp(-tv/1e-4)
		if math.Abs(got-want) > 0.02 {
			t.Fatalf("out(%g) = %g, want %g", tv, got, want)
		}
	}
}

// A burst of Newton failures that defeats step shrinking must be rescued by
// the escalated-damping rung: the rule defeats every normal-stage solve until
// its budget is spent but spares the ladder from the damping rung up.
func TestRecoveryDampingRungRescuesRun(t *testing.T) {
	sys, _ := rcCircuit(1e3, 1e-7) // tau = 1e-4
	in := faults.NewInjector(faults.Rule{
		Class:     faults.NoConvergence,
		After:     1e-16, // spare the t=0 operating point
		Count:     7,     // exactly the shrink attempts down to the step floor
		SpareFrom: faults.StageDamping,
	})
	res, err := Run(sys, Options{TStop: 1e-3, Faults: in})
	if err != nil {
		t.Fatalf("run failed despite recovery ladder: %v", err)
	}
	if in.Fired() == 0 {
		t.Fatal("fault rule never fired")
	}
	if got := res.Recovery.Count(RecoveryDamping); got != 1 {
		t.Fatalf("damping recoveries = %d, want 1 (events: %+v)", got, res.Recovery.Events())
	}
	if res.Stats.Recoveries != 1 {
		t.Fatalf("Stats.Recoveries = %d, want 1", res.Stats.Recoveries)
	}
	checkRC(t, res)
}

// When the damping rung is defeated too, the gmin ramp must take over.
func TestRecoveryGminRampRescuesRun(t *testing.T) {
	sys, _ := rcCircuit(1e3, 1e-7)
	in := faults.NewInjector(faults.Rule{
		Class:     faults.NoConvergence,
		After:     1e-16,
		Count:     9, // 7 shrink attempts + both damping rungs
		SpareFrom: faults.StageGmin,
	})
	res, err := Run(sys, Options{TStop: 1e-3, Faults: in})
	if err != nil {
		t.Fatalf("run failed despite gmin ramp: %v", err)
	}
	if got := res.Recovery.Count(RecoveryGminRamp); got != 1 {
		t.Fatalf("gmin recoveries = %d, want 1 (events: %+v)", got, res.Recovery.Events())
	}
	if res.Recovery.Count(RecoveryDamping) != 0 {
		t.Fatalf("damping rung should have been defeated: %+v", res.Recovery.Events())
	}
	if res.Stats.Recoveries != 1 {
		t.Fatalf("Stats.Recoveries = %d, want 1", res.Stats.Recoveries)
	}
	checkRC(t, res)
}

// With every rung defeated the run must fail with the typed step-too-small
// error carrying the ladder's cause, and still hand back the partial result.
func TestRecoveryLadderExhaustion(t *testing.T) {
	sys, _ := rcCircuit(1e3, 1e-7)
	in := faults.NewInjector(faults.Rule{
		Class: faults.NoConvergence,
		After: 1e-16,
		Count: 1_000_000, // never runs dry; no rung is spared
	})
	res, err := Run(sys, Options{TStop: 1e-3, Faults: in})
	if err == nil {
		t.Fatal("run succeeded with every solve defeated")
	}
	if !errors.Is(err, faults.ErrStepTooSmall) {
		t.Fatalf("err = %v, want ErrStepTooSmall", err)
	}
	if !errors.Is(err, faults.ErrNoConvergence) {
		t.Fatalf("err = %v, want nested ErrNoConvergence cause", err)
	}
	var se *faults.SimError
	if !errors.As(err, &se) || se.Phase != "transient" {
		t.Fatalf("missing transient phase context: %v", err)
	}
	if res == nil || res.W == nil || res.W.Len() < 1 {
		t.Fatalf("partial result missing: %+v", res)
	}
	if res.FinalX == nil {
		t.Fatal("partial result has no final solution")
	}
}

// A healthy run must record zero recovery events: the ladder is strictly a
// failure path and must not fire (or cost anything) on the happy path.
func TestZeroFaultRunHasNoRecoveries(t *testing.T) {
	sys, _ := rcCircuit(1e3, 1e-7)
	res, err := Run(sys, Options{TStop: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Recovery == nil || res.Recovery.Len() != 0 {
		t.Fatalf("clean run logged recovery events: %+v", res.Recovery.Events())
	}
	if res.Stats.Recoveries != 0 {
		t.Fatalf("clean run counted %d recoveries", res.Stats.Recoveries)
	}
}
