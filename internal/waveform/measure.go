package waveform

import (
	"fmt"
	"math"
)

// Measurements on recorded signals: the .MEASURE-style post-processing a
// circuit simulator's users reach for first. All functions interpolate
// linearly between samples.

// CrossingTimes returns the times at which the named signal crosses level
// in the given direction: +1 rising, −1 falling, 0 both.
func (s *Set) CrossingTimes(name string, level float64, direction int) ([]float64, error) {
	j := s.SignalIndex(name)
	if j < 0 {
		return nil, fmt.Errorf("waveform: no signal %q", name)
	}
	var out []float64
	for i := 1; i < len(s.Times); i++ {
		a, b := s.Data[i-1][j], s.Data[i][j]
		rising := a < level && b >= level
		falling := a > level && b <= level
		if (direction >= 0 && rising) || (direction <= 0 && falling) {
			f := (level - a) / (b - a)
			out = append(out, s.Times[i-1]+f*(s.Times[i]-s.Times[i-1]))
		}
	}
	return out, nil
}

// RiseTime returns the 10%–90% rise time of the first low-to-high
// transition between the signal's minimum and maximum.
func (s *Set) RiseTime(name string) (float64, error) {
	lo, hi, err := s.Extremes(name)
	if err != nil {
		return 0, err
	}
	if hi-lo <= 0 {
		return 0, fmt.Errorf("waveform: %q has no swing", name)
	}
	t10, err := s.CrossingTimes(name, lo+0.1*(hi-lo), +1)
	if err != nil || len(t10) == 0 {
		return 0, fmt.Errorf("waveform: %q never crosses 10%%", name)
	}
	t90, err := s.CrossingTimes(name, lo+0.9*(hi-lo), +1)
	if err != nil || len(t90) == 0 {
		return 0, fmt.Errorf("waveform: %q never crosses 90%%", name)
	}
	for _, t9 := range t90 {
		if t9 > t10[0] {
			return t9 - t10[0], nil
		}
	}
	return 0, fmt.Errorf("waveform: %q has no completed rise", name)
}

// Extremes returns the minimum and maximum of the named signal.
func (s *Set) Extremes(name string) (lo, hi float64, err error) {
	sig, err := s.Signal(name)
	if err != nil {
		return 0, 0, err
	}
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, v := range sig {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	return lo, hi, nil
}

// Delay returns the time from the reference signal's mid-level crossing to
// the target signal's next mid-level crossing (propagation delay), using
// each signal's own mid-swing level and the given edge directions.
func (s *Set) Delay(from string, fromDir int, to string, toDir int) (float64, error) {
	fl, fh, err := s.Extremes(from)
	if err != nil {
		return 0, err
	}
	tl, th, err := s.Extremes(to)
	if err != nil {
		return 0, err
	}
	fc, err := s.CrossingTimes(from, (fl+fh)/2, fromDir)
	if err != nil || len(fc) == 0 {
		return 0, fmt.Errorf("waveform: %q has no reference edge", from)
	}
	tc, err := s.CrossingTimes(to, (tl+th)/2, toDir)
	if err != nil {
		return 0, err
	}
	for _, t := range tc {
		if t > fc[0] {
			return t - fc[0], nil
		}
	}
	return 0, fmt.Errorf("waveform: %q has no edge after %q's", to, from)
}

// Frequency estimates the signal's fundamental frequency from its rising
// mid-level crossings over the window [tmin, ∞).
func (s *Set) Frequency(name string, tmin float64) (float64, error) {
	lo, hi, err := s.Extremes(name)
	if err != nil {
		return 0, err
	}
	crossings, err := s.CrossingTimes(name, (lo+hi)/2, +1)
	if err != nil {
		return 0, err
	}
	var used []float64
	for _, t := range crossings {
		if t >= tmin {
			used = append(used, t)
		}
	}
	if len(used) < 2 {
		return 0, fmt.Errorf("waveform: %q has fewer than two periods after %g", name, tmin)
	}
	period := (used[len(used)-1] - used[0]) / float64(len(used)-1)
	return 1 / period, nil
}

// Overshoot returns the fractional overshoot of the first rising step:
// (peak − final) / (final − initial), where final is the value at the last
// sample.
func (s *Set) Overshoot(name string) (float64, error) {
	sig, err := s.Signal(name)
	if err != nil {
		return 0, err
	}
	if len(sig) < 2 {
		return 0, fmt.Errorf("waveform: %q too short", name)
	}
	initial, final := sig[0], sig[len(sig)-1]
	if final == initial {
		return 0, fmt.Errorf("waveform: %q has no step", name)
	}
	peak := initial
	for _, v := range sig {
		if (final > initial && v > peak) || (final < initial && v < peak) {
			peak = v
		}
	}
	return (peak - final) / (final - initial), nil
}

// SettlingTime returns the earliest time after which the signal stays
// within ±band·|final − initial| of its final value.
func (s *Set) SettlingTime(name string, band float64) (float64, error) {
	sig, err := s.Signal(name)
	if err != nil {
		return 0, err
	}
	if len(sig) < 2 {
		return 0, fmt.Errorf("waveform: %q too short", name)
	}
	final := sig[len(sig)-1]
	tol := band * math.Abs(final-sig[0])
	if tol == 0 {
		return s.Times[0], nil
	}
	settle := s.Times[0]
	inside := math.Abs(sig[0]-final) <= tol
	for i, v := range sig {
		if math.Abs(v-final) > tol {
			inside = false
		} else if !inside {
			inside = true
			settle = s.Times[i]
		}
	}
	if !inside {
		return 0, fmt.Errorf("waveform: %q never settles within %g", name, band)
	}
	return settle, nil
}

// RMS returns the root-mean-square value of the signal over [t0, t1],
// integrating trapezoidally on the sample grid.
func (s *Set) RMS(name string, t0, t1 float64) (float64, error) {
	j := s.SignalIndex(name)
	if j < 0 {
		return 0, fmt.Errorf("waveform: no signal %q", name)
	}
	if t1 <= t0 {
		return 0, fmt.Errorf("waveform: empty RMS window")
	}
	sum := 0.0
	for i := 1; i < len(s.Times); i++ {
		a := math.Max(s.Times[i-1], t0)
		b := math.Min(s.Times[i], t1)
		if b <= a {
			continue
		}
		va := s.atIndex(j, a)
		vb := s.atIndex(j, b)
		sum += (va*va + vb*vb) / 2 * (b - a)
	}
	return math.Sqrt(sum / (t1 - t0)), nil
}

// Resample returns a copy of the set sampled uniformly every dt (SPICE's
// TSTEP output semantics), linearly interpolated.
func (s *Set) Resample(dt float64) (*Set, error) {
	if dt <= 0 || s.Len() == 0 {
		return nil, fmt.Errorf("waveform: invalid resample interval")
	}
	out := NewSet(s.Names, s.Index)
	// Resampled sets index their own rows directly.
	out.Index = make([]int, len(s.Names))
	for i := range out.Index {
		out.Index[i] = i
	}
	row := make([]float64, len(s.Names))
	for t := s.Times[0]; t <= s.Times[s.Len()-1]*(1+1e-12); t += dt {
		for j := range s.Names {
			row[j] = s.atIndex(j, t)
		}
		out.Append(t, row)
	}
	return out, nil
}
