// Package waveform stores simulation results as sampled signals and
// provides the interpolation, comparison and export utilities used by the
// accuracy experiments (WavePipe vs. serial reference).
package waveform

import (
	"fmt"
	"io"
	"math"
	"sort"
)

// Set is a group of signals sampled on a shared, strictly increasing time
// axis (the accepted time points of a transient run).
type Set struct {
	Names []string    // signal names, e.g. node names
	Index []int       // solution-vector index of each signal
	Times []float64   // sample times, ascending
	Data  [][]float64 // Data[k][j] = signal j at Times[k]

	// chunk is the unconsumed remainder of a block-allocated backing array
	// rows are carved from, so Append is not one allocation per time point.
	chunk []float64
}

// NewSet creates an empty set recording the given solution-vector indices.
func NewSet(names []string, index []int) *Set {
	if len(names) != len(index) {
		panic("waveform: names and index length mismatch")
	}
	return &Set{Names: names, Index: index}
}

// Restore rebuilds a set from previously recorded samples (a checkpoint),
// ready for further Append calls. It validates the shape invariants Append
// maintains — matching lengths, row width, strictly ascending times — and
// takes ownership of the given slices.
func Restore(names []string, index []int, times []float64, data [][]float64) (*Set, error) {
	if len(names) != len(index) {
		return nil, fmt.Errorf("waveform: restore: %d names vs %d indices", len(names), len(index))
	}
	if len(times) != len(data) {
		return nil, fmt.Errorf("waveform: restore: %d times vs %d rows", len(times), len(data))
	}
	for k, row := range data {
		if len(row) != len(names) {
			return nil, fmt.Errorf("waveform: restore: row %d has %d values, want %d", k, len(row), len(names))
		}
		if k > 0 && times[k] <= times[k-1] {
			return nil, fmt.Errorf("waveform: restore: times not ascending at sample %d", k)
		}
	}
	return &Set{Names: names, Index: index, Times: times, Data: data}, nil
}

// Append records the selected entries of the full solution vector x at time
// t. Samples must arrive in ascending time order.
func (s *Set) Append(t float64, x []float64) {
	if n := len(s.Times); n > 0 && t <= s.Times[n-1] {
		panic(fmt.Sprintf("waveform: Append out of order: %g after %g", t, s.Times[n-1]))
	}
	w := len(s.Index)
	if len(s.chunk) < w {
		s.chunk = make([]float64, 256*w)
	}
	row := s.chunk[:w:w]
	s.chunk = s.chunk[w:]
	for j, idx := range s.Index {
		row[j] = x[idx]
	}
	s.Times = append(s.Times, t)
	s.Data = append(s.Data, row)
}

// Len returns the number of samples.
func (s *Set) Len() int { return len(s.Times) }

// SignalIndex returns the column of the named signal, or -1.
func (s *Set) SignalIndex(name string) int {
	for j, n := range s.Names {
		if n == name {
			return j
		}
	}
	return -1
}

// Signal returns the sample column of the named signal (shared slice of
// per-row values, freshly allocated).
func (s *Set) Signal(name string) ([]float64, error) {
	j := s.SignalIndex(name)
	if j < 0 {
		return nil, fmt.Errorf("waveform: no signal %q", name)
	}
	out := make([]float64, len(s.Data))
	for k, row := range s.Data {
		out[k] = row[j]
	}
	return out, nil
}

// At returns the named signal linearly interpolated at time t, clamped to
// the sampled range.
func (s *Set) At(name string, t float64) (float64, error) {
	j := s.SignalIndex(name)
	if j < 0 {
		return 0, fmt.Errorf("waveform: no signal %q", name)
	}
	return s.atIndex(j, t), nil
}

func (s *Set) atIndex(j int, t float64) float64 {
	n := len(s.Times)
	if n == 0 {
		return 0
	}
	if t <= s.Times[0] {
		return s.Data[0][j]
	}
	if t >= s.Times[n-1] {
		return s.Data[n-1][j]
	}
	k := sort.SearchFloat64s(s.Times, t)
	if s.Times[k] == t {
		return s.Data[k][j]
	}
	t0, t1 := s.Times[k-1], s.Times[k]
	f := (t - t0) / (t1 - t0)
	return s.Data[k-1][j] + f*(s.Data[k][j]-s.Data[k-1][j])
}

// Deviation summarizes how far one waveform set is from a reference.
type Deviation struct {
	Max   float64 // max |a−b| over the comparison grid
	RMS   float64 // root-mean-square |a−b|
	Range float64 // peak-to-peak range of the reference signal
}

// RelMax returns the maximum deviation relative to the reference signal's
// peak-to-peak range (0 when the reference is constant).
func (d Deviation) RelMax() float64 {
	if d.Range == 0 {
		return 0
	}
	return d.Max / d.Range
}

// Compare computes the deviation of signal name between set a and reference
// ref, sampled on the union of both time grids restricted to the
// overlapping interval.
func Compare(a, ref *Set, name string) (Deviation, error) {
	ja := a.SignalIndex(name)
	jr := ref.SignalIndex(name)
	if ja < 0 || jr < 0 {
		return Deviation{}, fmt.Errorf("waveform: signal %q missing from comparison", name)
	}
	if a.Len() == 0 || ref.Len() == 0 {
		return Deviation{}, fmt.Errorf("waveform: empty set in comparison")
	}
	lo := math.Max(a.Times[0], ref.Times[0])
	hi := math.Min(a.Times[a.Len()-1], ref.Times[ref.Len()-1])
	if hi <= lo {
		return Deviation{}, fmt.Errorf("waveform: no time overlap")
	}
	grid := make([]float64, 0, a.Len()+ref.Len())
	for _, t := range a.Times {
		if t >= lo && t <= hi {
			grid = append(grid, t)
		}
	}
	for _, t := range ref.Times {
		if t >= lo && t <= hi {
			grid = append(grid, t)
		}
	}
	sort.Float64s(grid)
	var dev Deviation
	var sum float64
	count := 0
	rmin, rmax := math.Inf(1), math.Inf(-1)
	prev := math.Inf(-1)
	for _, t := range grid {
		if t == prev {
			continue
		}
		prev = t
		va := a.atIndex(ja, t)
		vr := ref.atIndex(jr, t)
		d := math.Abs(va - vr)
		if d > dev.Max {
			dev.Max = d
		}
		sum += d * d
		count++
		rmin = math.Min(rmin, vr)
		rmax = math.Max(rmax, vr)
	}
	dev.RMS = math.Sqrt(sum / float64(count))
	dev.Range = rmax - rmin
	return dev, nil
}

// WriteCSV writes the set as a CSV table with a time column.
func (s *Set) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprint(w, "time"); err != nil {
		return err
	}
	for _, n := range s.Names {
		if _, err := fmt.Fprintf(w, ",%s", n); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for k, t := range s.Times {
		if _, err := fmt.Fprintf(w, "%.12g", t); err != nil {
			return err
		}
		for j := range s.Names {
			if _, err := fmt.Fprintf(w, ",%.9g", s.Data[k][j]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// StepSizes returns the sequence of time-step sizes of the set (length
// Len()−1). Used by the step-size trace experiment.
func (s *Set) StepSizes() []float64 {
	if len(s.Times) < 2 {
		return nil
	}
	out := make([]float64, len(s.Times)-1)
	for i := 1; i < len(s.Times); i++ {
		out[i-1] = s.Times[i] - s.Times[i-1]
	}
	return out
}
