package waveform

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func sample() *Set {
	s := NewSet([]string{"a", "b"}, []int{0, 2})
	s.Append(0, []float64{1, 99, 10})
	s.Append(1, []float64{2, 99, 20})
	s.Append(3, []float64{4, 99, 40})
	return s
}

func TestAppendAndSignal(t *testing.T) {
	s := sample()
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	a, err := s.Signal("a")
	if err != nil {
		t.Fatal(err)
	}
	if a[0] != 1 || a[2] != 4 {
		t.Fatalf("signal a = %v", a)
	}
	b, _ := s.Signal("b")
	if b[1] != 20 {
		t.Fatalf("signal b = %v", b)
	}
	if _, err := s.Signal("zzz"); err == nil {
		t.Fatal("unknown signal must error")
	}
	if s.SignalIndex("b") != 1 || s.SignalIndex("zzz") != -1 {
		t.Fatal("SignalIndex")
	}
}

func TestNewSetValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSet([]string{"a"}, []int{0, 1})
}

func TestAppendOutOfOrderPanics(t *testing.T) {
	s := sample()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Append(2, []float64{0, 0, 0})
}

func TestAtInterpolation(t *testing.T) {
	s := sample()
	cases := []struct{ tv, want float64 }{
		{-1, 1}, // clamp left
		{0, 1},  // exact sample
		{0.5, 1.5},
		{2, 3}, // between t=1 (2) and t=3 (4)
		{5, 4}, // clamp right
	}
	for _, c := range cases {
		got, err := s.At("a", c.tv)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("At(%g) = %g, want %g", c.tv, got, c.want)
		}
	}
	if _, err := s.At("zzz", 0); err == nil {
		t.Fatal("unknown signal must error")
	}
}

// Property: interpolated values are bounded by neighbouring samples.
func TestAtBoundedQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewSet([]string{"x"}, []int{0})
		tv := 0.0
		for i := 0; i < 20; i++ {
			tv += 0.1 + rng.Float64()
			s.Append(tv, []float64{rng.NormFloat64() * 5})
		}
		for trial := 0; trial < 50; trial++ {
			q := s.Times[0] + rng.Float64()*(s.Times[len(s.Times)-1]-s.Times[0])
			v, _ := s.At("x", q)
			lo, hi := math.Inf(1), math.Inf(-1)
			for k, st := range s.Times[:len(s.Times)-1] {
				if q >= st && q <= s.Times[k+1] {
					lo = math.Min(s.Data[k][0], s.Data[k+1][0])
					hi = math.Max(s.Data[k][0], s.Data[k+1][0])
				}
			}
			if v < lo-1e-12 || v > hi+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCompareIdenticalSetsIsZero(t *testing.T) {
	a := sample()
	dev, err := Compare(a, a, "a")
	if err != nil {
		t.Fatal(err)
	}
	if dev.Max != 0 || dev.RMS != 0 {
		t.Fatalf("self-compare deviation = %+v", dev)
	}
	if dev.Range != 3 {
		t.Fatalf("range = %g, want 3", dev.Range)
	}
	if dev.RelMax() != 0 {
		t.Fatal("RelMax")
	}
}

func TestCompareShiftedSets(t *testing.T) {
	a := NewSet([]string{"x"}, []int{0})
	b := NewSet([]string{"x"}, []int{0})
	for i := 0; i <= 10; i++ {
		tv := float64(i)
		a.Append(tv, []float64{tv})
		b.Append(tv, []float64{tv + 0.5})
	}
	dev, err := Compare(a, b, "x")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dev.Max-0.5) > 1e-12 || math.Abs(dev.RMS-0.5) > 1e-12 {
		t.Fatalf("deviation = %+v", dev)
	}
	if math.Abs(dev.RelMax()-0.05) > 1e-12 {
		t.Fatalf("RelMax = %g", dev.RelMax())
	}
}

func TestCompareDifferentGrids(t *testing.T) {
	// Same underlying line sampled on different grids: deviation ≈ 0.
	a := NewSet([]string{"x"}, []int{0})
	b := NewSet([]string{"x"}, []int{0})
	for i := 0; i <= 10; i++ {
		tv := float64(i)
		a.Append(tv, []float64{2 * tv})
	}
	for i := 0; i <= 7; i++ {
		tv := float64(i) * 1.3
		b.Append(tv, []float64{2 * tv})
	}
	dev, err := Compare(a, b, "x")
	if err != nil {
		t.Fatal(err)
	}
	if dev.Max > 1e-12 {
		t.Fatalf("deviation on shared line = %+v", dev)
	}
}

func TestCompareErrors(t *testing.T) {
	a := sample()
	empty := NewSet([]string{"a"}, []int{0})
	if _, err := Compare(a, empty, "a"); err == nil {
		t.Fatal("empty set must error")
	}
	if _, err := Compare(a, a, "zzz"); err == nil {
		t.Fatal("unknown signal must error")
	}
	far := NewSet([]string{"a"}, []int{0})
	far.Append(100, []float64{0})
	far.Append(101, []float64{0})
	if _, err := Compare(a, far, "a"); err == nil {
		t.Fatal("disjoint time ranges must error")
	}
}

func TestWriteCSV(t *testing.T) {
	var sb strings.Builder
	if err := sample().WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("CSV lines = %d:\n%s", len(lines), out)
	}
	if lines[0] != "time,a,b" {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[2], "1,2,20") {
		t.Fatalf("row = %q", lines[2])
	}
}

func TestStepSizes(t *testing.T) {
	s := sample()
	steps := s.StepSizes()
	if len(steps) != 2 || steps[0] != 1 || steps[1] != 2 {
		t.Fatalf("steps = %v", steps)
	}
	if NewSet(nil, nil).StepSizes() != nil {
		t.Fatal("empty set has no steps")
	}
}
