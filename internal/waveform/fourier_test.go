package waveform

import (
	"math"
	"testing"
)

func TestFourierPureSine(t *testing.T) {
	f0 := 1e3
	s := ramp(func(tv float64) float64 {
		return 2 + 3*math.Sin(2*math.Pi*f0*tv)
	}, 3e-3, 3000)
	f, err := s.FourierAnalyze("x", f0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.DC-2) > 1e-3 {
		t.Fatalf("DC = %g, want 2", f.DC)
	}
	if math.Abs(f.Magnitude[0]-3) > 0.01 {
		t.Fatalf("fundamental = %g, want 3", f.Magnitude[0])
	}
	for k := 1; k < 5; k++ {
		if f.Magnitude[k] > 0.01 {
			t.Fatalf("harmonic %d = %g, want ≈0", k+1, f.Magnitude[k])
		}
	}
	if f.THD > 0.01 {
		t.Fatalf("THD = %g", f.THD)
	}
}

func TestFourierSquareWave(t *testing.T) {
	// Odd harmonics at 1/k of the fundamental (4/π amplitude), THD ≈ 43%.
	f0 := 100.0
	s := ramp(func(tv float64) float64 {
		if math.Mod(tv*f0, 1) < 0.5 {
			return 1
		}
		return -1
	}, 0.03, 30000)
	f, err := s.FourierAnalyze("x", f0, 9)
	if err != nil {
		t.Fatal(err)
	}
	fund := 4 / math.Pi
	if math.Abs(f.Magnitude[0]-fund) > 0.02 {
		t.Fatalf("fundamental = %g, want %g", f.Magnitude[0], fund)
	}
	if math.Abs(f.Magnitude[2]-fund/3) > 0.02 {
		t.Fatalf("3rd harmonic = %g, want %g", f.Magnitude[2], fund/3)
	}
	if f.Magnitude[1] > 0.02 {
		t.Fatalf("2nd harmonic = %g, want ≈0", f.Magnitude[1])
	}
	// THD with harmonics up to 9: sqrt(sum 1/k² for odd k≥3) ≈ 0.4248.
	want := math.Sqrt(1.0/9 + 1.0/25 + 1.0/49 + 1.0/81)
	if math.Abs(f.THD-want) > 0.02 {
		t.Fatalf("THD = %g, want ≈%g", f.THD, want)
	}
}

func TestFourierErrors(t *testing.T) {
	s := ramp(func(tv float64) float64 { return tv }, 1e-3, 100)
	if _, err := s.FourierAnalyze("zzz", 1e3, 3); err == nil {
		t.Fatal("unknown signal")
	}
	if _, err := s.FourierAnalyze("x", 0, 3); err == nil {
		t.Fatal("zero frequency")
	}
	if _, err := s.FourierAnalyze("x", 1e3, 0); err == nil {
		t.Fatal("zero harmonics")
	}
	if _, err := s.FourierAnalyze("x", 100, 3); err == nil {
		t.Fatal("window shorter than a period")
	}
}
