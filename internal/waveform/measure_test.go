package waveform

import (
	"math"
	"testing"
)

// ramp builds a signal set from a function sampled at n points over [0, T].
func ramp(f func(float64) float64, T float64, n int) *Set {
	s := NewSet([]string{"x"}, []int{0})
	for i := 0; i <= n; i++ {
		t := T * float64(i) / float64(n)
		s.Append(t, []float64{f(t)})
	}
	return s
}

func TestCrossingTimes(t *testing.T) {
	s := ramp(func(t float64) float64 { return math.Sin(2 * math.Pi * t) }, 2, 400)
	rising, err := s.CrossingTimes("x", 0, +1)
	if err != nil {
		t.Fatal(err)
	}
	// sin crosses zero rising at t = 1; the start (t = 0) is not a crossing
	// because a < level is required strictly, and the end point lands an
	// ulp below zero.
	if len(rising) != 1 || math.Abs(rising[0]-1) > 0.01 {
		t.Fatalf("rising = %v", rising)
	}
	falling, _ := s.CrossingTimes("x", 0, -1)
	if len(falling) != 2 || math.Abs(falling[0]-0.5) > 0.01 {
		t.Fatalf("falling = %v", falling)
	}
	both, _ := s.CrossingTimes("x", 0, 0)
	if len(both) != 3 {
		t.Fatalf("both = %v", both)
	}
	if _, err := s.CrossingTimes("zzz", 0, 0); err == nil {
		t.Fatal("unknown signal")
	}
}

func TestRiseTimeOnExponential(t *testing.T) {
	// 1 − e^{−t/τ}: 10–90% rise time = τ·ln9.
	tau := 1e-3
	s := ramp(func(t float64) float64 { return 1 - math.Exp(-t/tau) }, 8e-3, 2000)
	rt, err := s.RiseTime("x")
	if err != nil {
		t.Fatal(err)
	}
	want := tau * math.Log(9)
	if math.Abs(rt-want) > 0.02*want {
		t.Fatalf("rise time = %g, want %g", rt, want)
	}
	flat := ramp(func(float64) float64 { return 1 }, 1, 10)
	if _, err := flat.RiseTime("x"); err == nil {
		t.Fatal("flat signal must error")
	}
}

func TestDelayBetweenSignals(t *testing.T) {
	s := NewSet([]string{"a", "b"}, []int{0, 1})
	for i := 0; i <= 100; i++ {
		t1 := float64(i) * 0.01
		a := 0.0
		if t1 > 0.2 {
			a = 1
		}
		b := 0.0
		if t1 > 0.45 {
			b = 1
		}
		s.Append(t1, []float64{a, b})
	}
	d, err := s.Delay("a", +1, "b", +1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-0.25) > 0.02 {
		t.Fatalf("delay = %g, want 0.25", d)
	}
	if _, err := s.Delay("b", +1, "a", +1); err == nil {
		t.Fatal("no later edge must error")
	}
}

func TestFrequencyOfSine(t *testing.T) {
	s := ramp(func(t float64) float64 { return math.Sin(2 * math.Pi * 50 * t) }, 0.1, 4000)
	f, err := s.Frequency("x", 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f-50) > 0.1 {
		t.Fatalf("frequency = %g, want 50", f)
	}
	if _, err := s.Frequency("x", 0.099); err == nil {
		t.Fatal("too-short window must error")
	}
}

func TestOvershootAndSettling(t *testing.T) {
	// Underdamped second-order step: x = 1 − e^{−ζω t}·cos(ωd t)-ish; use a
	// simple damped cosine form with known first peak.
	zeta, w := 0.2, 2*math.Pi*10
	wd := w * math.Sqrt(1-zeta*zeta)
	f := func(t float64) float64 {
		return 1 - math.Exp(-zeta*w*t)*math.Cos(wd*t)
	}
	s := ramp(f, 2.0, 8000)
	ov, err := s.Overshoot("x")
	if err != nil {
		t.Fatal(err)
	}
	// First peak of this form: 1 + e^{−ζω·T/2} with T = 2π/wd.
	want := math.Exp(-zeta * w * math.Pi / wd)
	if math.Abs(ov-want) > 0.03 {
		t.Fatalf("overshoot = %g, want ≈%g", ov, want)
	}
	st, err := s.SettlingTime("x", 0.02)
	if err != nil {
		t.Fatal(err)
	}
	// After st, the envelope e^{−ζωt} must be below the band.
	if env := math.Exp(-zeta * w * st); env > 0.05 {
		t.Fatalf("settling time %g too early (envelope %g)", st, env)
	}
	if st <= 0 || st > 1 {
		t.Fatalf("settling time = %g", st)
	}
}

func TestRMSOfSine(t *testing.T) {
	s := ramp(func(t float64) float64 { return 5 * math.Sin(2*math.Pi*100*t) }, 0.05, 20000)
	rms, err := s.RMS("x", 0, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	want := 5 / math.Sqrt2
	if math.Abs(rms-want) > 0.01*want {
		t.Fatalf("RMS = %g, want %g", rms, want)
	}
	if _, err := s.RMS("x", 1, 0); err == nil {
		t.Fatal("empty window must error")
	}
	if _, err := s.RMS("zzz", 0, 1); err == nil {
		t.Fatal("unknown signal must error")
	}
}

func TestResample(t *testing.T) {
	s := ramp(func(t float64) float64 { return 3 * t }, 1, 7) // uneven-ish grid
	out, err := s.Resample(0.25)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 5 {
		t.Fatalf("resampled to %d points", out.Len())
	}
	for i, tv := range out.Times {
		if math.Abs(tv-0.25*float64(i)) > 1e-12 {
			t.Fatalf("time grid = %v", out.Times)
		}
		v, _ := out.At("x", tv)
		if math.Abs(v-3*tv) > 1e-9 {
			t.Fatalf("value at %g = %g", tv, v)
		}
	}
	if _, err := s.Resample(0); err == nil {
		t.Fatal("zero interval must error")
	}
}
