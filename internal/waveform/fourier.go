package waveform

import (
	"fmt"
	"math"
)

// Fourier holds the harmonic decomposition of one signal (SPICE .FOUR).
type Fourier struct {
	Fundamental float64   // Hz
	DC          float64   // mean value over the analysis window
	Magnitude   []float64 // Magnitude[k]: amplitude of harmonic k+1
	PhaseDeg    []float64 // PhaseDeg[k]: phase of harmonic k+1 in degrees
	THD         float64   // total harmonic distortion, fraction of the fundamental
}

// FourierAnalyze computes the first nHarm harmonics of the named signal at
// fundamental frequency f0, integrating trapezoidally over the last full
// period before the final sample (SPICE's .FOUR convention). The signal
// must cover at least one period.
func (s *Set) FourierAnalyze(name string, f0 float64, nHarm int) (*Fourier, error) {
	j := s.SignalIndex(name)
	if j < 0 {
		return nil, fmt.Errorf("waveform: no signal %q", name)
	}
	if f0 <= 0 || nHarm < 1 {
		return nil, fmt.Errorf("waveform: invalid Fourier request f0=%g nHarm=%d", f0, nHarm)
	}
	period := 1 / f0
	tEnd := s.Times[s.Len()-1]
	t0 := tEnd - period
	if t0 < s.Times[0] {
		return nil, fmt.Errorf("waveform: %q covers %g s, need a full period %g", name, tEnd-s.Times[0], period)
	}

	// Resample the window uniformly: trapezoidal quadrature of the Fourier
	// integrals on a fine grid bounds the error well below RELTOL scales.
	const samples = 2048
	dt := period / samples
	f := &Fourier{Fundamental: f0}
	a := make([]float64, nHarm)
	b := make([]float64, nHarm)
	var dc float64
	for i := 0; i < samples; i++ {
		t := t0 + (float64(i)+0.5)*dt
		v := s.atIndex(j, t)
		dc += v
		for k := 0; k < nHarm; k++ {
			w := 2 * math.Pi * f0 * float64(k+1) * (t - t0)
			a[k] += v * math.Cos(w)
			b[k] += v * math.Sin(w)
		}
	}
	f.DC = dc / samples
	f.Magnitude = make([]float64, nHarm)
	f.PhaseDeg = make([]float64, nHarm)
	for k := 0; k < nHarm; k++ {
		ak := 2 * a[k] / samples
		bk := 2 * b[k] / samples
		f.Magnitude[k] = math.Hypot(ak, bk)
		f.PhaseDeg[k] = math.Atan2(ak, bk) * 180 / math.Pi
	}
	if f.Magnitude[0] > 0 {
		sum := 0.0
		for k := 1; k < nHarm; k++ {
			sum += f.Magnitude[k] * f.Magnitude[k]
		}
		f.THD = math.Sqrt(sum) / f.Magnitude[0]
	}
	return f, nil
}
