// Package trace is the observability backbone of the simulator: a
// low-overhead, concurrency-safe event stream the engines emit into, with
// periodic metrics snapshots, pluggable observers and exporters (JSONL,
// Chrome trace_event JSON, Prometheus text).
//
// The hot-path contract is the nil tracer: a nil *Tracer is a valid tracer
// whose Emit is a no-op, so every engine guards its emissions with a single
// pointer test and a run without an observer pays nothing — no allocations,
// no locks, no clock reads. With an observer attached, events are
// serialized under one mutex (stamping a global sequence number and a
// run-relative wall clock) and handed to the observer synchronously in
// emission order; observers that need decoupling buffer internally (see
// Recorder's bounded ring).
//
// Event semantics are chosen so that a recorded stream reconciles exactly
// with the end-of-run transient.Stats counters: one KindSolve per Newton
// point-solve attempt (Stats.Solves), one KindAccept per published point
// (Stats.Points), one KindLTEReject per truncation-error rejection, one
// KindDiscard per thrown-away speculative point, one KindRecovery per
// successful recovery-ladder climb. Replay recomputes those counters from a
// stream.
package trace

import (
	"sync"
	"time"
)

// Kind classifies an event.
type Kind uint8

// Event kinds.
const (
	KindNone           Kind = iota
	KindPredict             // speculative warm-start work (forward pipelining)
	KindSolve               // one Newton point-solve attempt
	KindAccept              // a point entered the published waveform
	KindLTEReject           // truncation-error control rejected a candidate
	KindDiscard             // a speculative point was thrown away unused
	KindRecovery            // a recovery-ladder rung rescued a point
	KindSerialFallback      // the pipeline degraded to serial integration
	KindPhase               // a timed sub-phase of a solve (see Phase)
	KindWorker              // one worker's occupancy span in a pipeline stage
	KindCancel              // the run observed context cancellation
	KindCheckpoint          // a durable checkpoint was written (Dur = encode+write time)
	KindLaneRetire          // an ensemble lane detached from the gang (Detail = reason)
	KindWindowSeed          // a Parareal window was launched from a coarse seed (Stage = window)
	KindWindowConverge      // a Parareal window passed its convergence gate (Stage = window)
	KindWindowRedo          // a Parareal window was redone from its exact predecessor state
	kindCount
)

var kindNames = [kindCount]string{
	"", "predict", "solve", "accept", "lte-reject", "discard",
	"recovery", "serial-fallback", "phase", "worker", "cancel", "checkpoint",
	"lane-retire", "window-seed", "window-converge", "window-redo",
}

// String returns the stable wire name of the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// KindFromString parses a wire name produced by Kind.String.
func KindFromString(s string) (Kind, bool) {
	for i, n := range kindNames {
		if i > 0 && n == s {
			return Kind(i), true
		}
	}
	return KindNone, false
}

// Phase identifies the timed sub-phase a KindPhase event measured.
type Phase uint8

// Solve sub-phases.
const (
	PhaseNone       Phase = iota
	PhaseDeviceLoad       // device evaluation + matrix assembly
	PhaseFactor           // sparse LU factorization (or bypass)
	PhaseTriSolve         // forward/backward triangular solves
	PhaseLTE              // truncation-error estimation
	phaseCount
)

var phaseNames = [phaseCount]string{"", "device-load", "factor", "tri-solve", "lte"}

// String returns the stable wire name of the phase.
func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return "unknown"
}

// PhaseFromString parses a wire name produced by Phase.String.
func PhaseFromString(s string) (Phase, bool) {
	for i, n := range phaseNames {
		if i > 0 && n == s {
			return Phase(i), true
		}
	}
	return PhaseNone, false
}

// Event flag bits.
const (
	// FlagFailed marks a solve attempt that returned an error.
	FlagFailed uint8 = 1 << 0
	// FlagBypassed marks a factorization answered by reusing the prior LU.
	FlagBypassed uint8 = 1 << 1
	// FlagResumed marks a solve warm-started from speculative iterations.
	FlagResumed uint8 = 1 << 2
	// FlagLinearHit marks a device-load phase that started from a cached
	// linear stamp template (incremental assembly LRU hit). Such events also
	// carry the load's bypassed-device-eval count in Iters.
	FlagLinearHit uint8 = 1 << 3
)

// Event is one structured trace record. The struct is fixed-size and
// pointer-free apart from the rarely-set Detail string, so recorders can
// hold millions of them without per-event allocation.
type Event struct {
	Seq    uint64  // global emission order (shared with snapshots)
	Wall   int64   // nanoseconds since the tracer was created
	Dur    int64   // span duration in nanoseconds (0 for instants)
	T      float64 // simulation time the event refers to
	H      float64 // step size, where meaningful
	Norm   float64 // LTE norm, where meaningful
	Stage  int32   // pipeline stage number (0 for the serial engine)
	Iters  int32   // Newton iterations, where meaningful
	Worker int16   // emitting worker (-1: coordinator / not attributable)
	Kind   Kind
	Phase  Phase
	Flags  uint8
	Detail string // rare human-readable context (recovery rung, reason)
}

// Snapshot is a periodic metrics sample, emitted every SnapshotEvery
// accepted points (see New). Counters are cumulative since run start.
type Snapshot struct {
	Seq             uint64  // shared sequence with events
	Wall            int64   // nanoseconds since run start
	T               float64 // simulation time at the snapshot
	H               float64 // step size of the most recent accepted point
	Points          int64   // accepted time points
	Solves          int64   // Newton point solves attempted
	NRIters         int64   // Newton iterations (incl. speculative warm-starts)
	LTERejects      int64   // truncation-error rejections
	Discarded       int64   // speculative points thrown away
	Recoveries      int64   // recovery-ladder rescues
	BypassHits      int64   // factorizations answered by LU reuse
	BypassedEvals   int64   // device evaluations answered by journal replay
	LinearStampHits int64   // device loads started from a cached linear template
	PointsPerSec    float64 // accept rate since the previous snapshot
}

// Observer receives the structured run telemetry. Callbacks are invoked
// synchronously, in emission order, from whichever goroutine emitted —
// implementations must be safe for concurrent use with themselves only if
// they are shared between tracers, and should return quickly (buffer
// internally when post-processing is slow).
type Observer interface {
	OnEvent(Event)
	OnSnapshot(Snapshot)
}

// multi fans one event stream out to several observers.
type multi []Observer

func (m multi) OnEvent(ev Event) {
	for _, o := range m {
		o.OnEvent(ev)
	}
}

func (m multi) OnSnapshot(s Snapshot) {
	for _, o := range m {
		o.OnSnapshot(s)
	}
}

// Multi combines observers into one that forwards every callback to each,
// in order. Nil entries are skipped; with zero non-nil observers it returns
// nil (which callers should treat as "no observer").
func Multi(obs ...Observer) Observer {
	var m multi
	for _, o := range obs {
		if o != nil {
			m = append(m, o)
		}
	}
	switch len(m) {
	case 0:
		return nil
	case 1:
		return m[0]
	default:
		return m
	}
}

// DefaultSnapshotEvery is the snapshot cadence (in accepted points) used
// when New is given a non-positive cadence.
const DefaultSnapshotEvery = 128

// Tracer serializes the engines' event emissions: it stamps sequence
// numbers and run-relative wall time, maintains the rolling counters behind
// periodic snapshots, and forwards everything to the observer. A nil
// *Tracer is valid and ignores all emissions — that is the production fast
// path when no observer is attached.
type Tracer struct {
	mu    sync.Mutex
	obs   Observer
	start time.Time
	seq   uint64
	every int64 // snapshot cadence in accepted points

	// Rolling counters feeding snapshots.
	points, solves, nrIters     int64
	lteRejects, discarded       int64
	recoveries, bypassHits      int64
	evalBypasses, linearHits    int64
	lastSnapPoints, lastSnapWal int64
}

// New returns a tracer forwarding to obs, snapshotting every snapshotEvery
// accepted points (<= 0 selects DefaultSnapshotEvery). A nil obs returns a
// nil tracer: emissions become no-ops.
func New(obs Observer, snapshotEvery int) *Tracer {
	if obs == nil {
		return nil
	}
	if snapshotEvery <= 0 {
		snapshotEvery = DefaultSnapshotEvery
	}
	return &Tracer{obs: obs, start: time.Now(), every: int64(snapshotEvery)}
}

// Active reports whether emissions reach an observer. It is the test
// engines should use before assembling an Event.
func (t *Tracer) Active() bool { return t != nil }

// Emit stamps and forwards one event, updating the snapshot counters and
// emitting a snapshot when an accept crosses the cadence boundary. Safe for
// concurrent use; a nil receiver ignores the call.
func (t *Tracer) Emit(ev Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	// Deferred so a panicking observer cannot strand the mutex: the
	// facade's containment path emits a final checkpoint event while the
	// original Emit frame is still unwinding.
	defer t.mu.Unlock()
	t.seq++
	ev.Seq = t.seq
	ev.Wall = time.Since(t.start).Nanoseconds()
	switch ev.Kind {
	case KindSolve:
		t.solves++
		t.nrIters += int64(ev.Iters)
	case KindPredict:
		t.nrIters += int64(ev.Iters)
	case KindAccept:
		t.points++
	case KindLTEReject:
		t.lteRejects++
	case KindDiscard:
		t.discarded++
	case KindRecovery:
		t.recoveries++
	case KindPhase:
		if ev.Phase == PhaseFactor && ev.Flags&FlagBypassed != 0 {
			t.bypassHits++
		}
		if ev.Phase == PhaseDeviceLoad {
			t.evalBypasses += int64(ev.Iters)
			if ev.Flags&FlagLinearHit != 0 {
				t.linearHits++
			}
		}
	}
	t.obs.OnEvent(ev)
	if ev.Kind == KindAccept && t.points%t.every == 0 {
		t.snapshotLocked(ev)
	}
}

// snapshotLocked builds and forwards a snapshot; t.mu must be held.
func (t *Tracer) snapshotLocked(at Event) {
	t.seq++
	s := Snapshot{
		Seq:             t.seq,
		Wall:            at.Wall,
		T:               at.T,
		H:               at.H,
		Points:          t.points,
		Solves:          t.solves,
		NRIters:         t.nrIters,
		LTERejects:      t.lteRejects,
		Discarded:       t.discarded,
		Recoveries:      t.recoveries,
		BypassHits:      t.bypassHits,
		BypassedEvals:   t.evalBypasses,
		LinearStampHits: t.linearHits,
	}
	if dw := at.Wall - t.lastSnapWal; dw > 0 {
		s.PointsPerSec = float64(t.points-t.lastSnapPoints) / (float64(dw) / 1e9)
	}
	t.lastSnapPoints = t.points
	t.lastSnapWal = at.Wall
	t.obs.OnSnapshot(s)
}
