package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// jsonlRecord is the wire form of one JSONL line: a tagged union of Event
// ("event") and Snapshot ("snapshot") with kind/phase names spelled out so
// the log is greppable and stable across Kind renumbering.
type jsonlRecord struct {
	Type   string  `json:"type"`
	Seq    uint64  `json:"seq"`
	Wall   int64   `json:"wall_ns"`
	Dur    int64   `json:"dur_ns,omitempty"`
	Kind   string  `json:"kind,omitempty"`
	Phase  string  `json:"phase,omitempty"`
	Worker int16   `json:"worker,omitempty"`
	Stage  int32   `json:"stage,omitempty"`
	T      float64 `json:"t"`
	H      float64 `json:"h,omitempty"`
	Norm   float64 `json:"norm,omitempty"`
	Iters  int32   `json:"iters,omitempty"`
	Flags  uint8   `json:"flags,omitempty"`
	Detail string  `json:"detail,omitempty"`

	// Snapshot-only counters.
	Points          int64   `json:"points,omitempty"`
	Solves          int64   `json:"solves,omitempty"`
	NRIters         int64   `json:"nr_iters,omitempty"`
	LTERejects      int64   `json:"lte_rejects,omitempty"`
	Discarded       int64   `json:"discarded,omitempty"`
	Recoveries      int64   `json:"recoveries,omitempty"`
	BypassHits      int64   `json:"bypass_hits,omitempty"`
	BypassedEvals   int64   `json:"bypassed_evals,omitempty"`
	LinearStampHits int64   `json:"linear_stamp_hits,omitempty"`
	PointsPerSec    float64 `json:"points_per_sec,omitempty"`
}

// WriteJSONL renders events and snapshots as one JSON object per line,
// interleaved by sequence number (both streams share one sequence, so the
// merge reproduces emission order).
func WriteJSONL(w io.Writer, events []Event, snaps []Snapshot) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	ei, si := 0, 0
	for ei < len(events) || si < len(snaps) {
		var rec jsonlRecord
		if si >= len(snaps) || (ei < len(events) && events[ei].Seq < snaps[si].Seq) {
			ev := events[ei]
			ei++
			rec = jsonlRecord{
				Type: "event", Seq: ev.Seq, Wall: ev.Wall, Dur: ev.Dur,
				Kind: ev.Kind.String(), Worker: ev.Worker, Stage: ev.Stage,
				T: ev.T, H: ev.H, Norm: ev.Norm, Iters: ev.Iters,
				Flags: ev.Flags, Detail: ev.Detail,
			}
			if ev.Phase != PhaseNone {
				rec.Phase = ev.Phase.String()
			}
		} else {
			s := snaps[si]
			si++
			rec = jsonlRecord{
				Type: "snapshot", Seq: s.Seq, Wall: s.Wall, T: s.T, H: s.H,
				Points: s.Points, Solves: s.Solves, NRIters: s.NRIters,
				LTERejects: s.LTERejects, Discarded: s.Discarded,
				Recoveries: s.Recoveries, BypassHits: s.BypassHits,
				BypassedEvals: s.BypassedEvals, LinearStampHits: s.LinearStampHits,
				PointsPerSec: s.PointsPerSec,
			}
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a stream produced by WriteJSONL back into events and
// snapshots. Blank lines are skipped; unknown record types are an error so
// corrupted logs fail loudly.
func ReadJSONL(r io.Reader) ([]Event, []Snapshot, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var events []Event
	var snaps []Snapshot
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var rec jsonlRecord
		if err := json.Unmarshal(b, &rec); err != nil {
			return nil, nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		switch rec.Type {
		case "event":
			k, ok := KindFromString(rec.Kind)
			if !ok {
				return nil, nil, fmt.Errorf("trace: line %d: unknown kind %q", line, rec.Kind)
			}
			ev := Event{
				Seq: rec.Seq, Wall: rec.Wall, Dur: rec.Dur, Kind: k,
				Worker: rec.Worker, Stage: rec.Stage, T: rec.T, H: rec.H,
				Norm: rec.Norm, Iters: rec.Iters, Flags: rec.Flags, Detail: rec.Detail,
			}
			if rec.Phase != "" {
				p, ok := PhaseFromString(rec.Phase)
				if !ok {
					return nil, nil, fmt.Errorf("trace: line %d: unknown phase %q", line, rec.Phase)
				}
				ev.Phase = p
			}
			events = append(events, ev)
		case "snapshot":
			snaps = append(snaps, Snapshot{
				Seq: rec.Seq, Wall: rec.Wall, T: rec.T, H: rec.H,
				Points: rec.Points, Solves: rec.Solves, NRIters: rec.NRIters,
				LTERejects: rec.LTERejects, Discarded: rec.Discarded,
				Recoveries: rec.Recoveries, BypassHits: rec.BypassHits,
				BypassedEvals: rec.BypassedEvals, LinearStampHits: rec.LinearStampHits,
				PointsPerSec: rec.PointsPerSec,
			})
		default:
			return nil, nil, fmt.Errorf("trace: line %d: unknown record type %q", line, rec.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	return events, snaps, nil
}

// chromeEvent is one element of the Chrome trace_event JSON array
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU),
// loadable in chrome://tracing and Perfetto for flame-view inspection of
// the pipeline stages.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Ph    string         `json:"ph"`
	Ts    float64        `json:"ts"` // microseconds
	Dur   float64        `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// chromeTid maps a worker id to a Chrome thread id: the coordinator (-1)
// becomes tid 0, worker k becomes tid k+1.
func chromeTid(worker int16) int { return int(worker) + 1 }

// WriteChromeTrace renders events and snapshots as a Chrome trace_event
// JSON array. Span events (solves, speculative warm-starts, solve phases,
// worker occupancy) become complete ("X") events on the emitting worker's
// thread lane; point lifecycle events (accept, reject, discard, recovery,
// serial-fallback, cancel) become instant ("i") events; snapshots become
// counter ("C") tracks for step size and points/sec.
func WriteChromeTrace(w io.Writer, events []Event, snaps []Snapshot) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("[\n"); err != nil {
		return err
	}
	first := true
	emit := func(ce chromeEvent) error {
		b, err := json.Marshal(ce)
		if err != nil {
			return err
		}
		if !first {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		first = false
		_, err = bw.Write(b)
		return err
	}

	// Thread-name metadata: name the lanes that appear in the stream.
	seen := map[int16]bool{}
	for _, ev := range events {
		if seen[ev.Worker] {
			continue
		}
		seen[ev.Worker] = true
		name := fmt.Sprintf("worker %d", ev.Worker)
		if ev.Worker < 0 {
			name = "coordinator"
		}
		if err := emit(chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: chromeTid(ev.Worker),
			Args: map[string]any{"name": name},
		}); err != nil {
			return err
		}
	}

	for _, ev := range events {
		ce := chromeEvent{
			Name: ev.Kind.String(), Cat: "sim", Pid: 1, Tid: chromeTid(ev.Worker),
			Ts: float64(ev.Wall) / 1e3,
			Args: map[string]any{
				"t":     ev.T,
				"stage": ev.Stage,
			},
		}
		if ev.Kind == KindPhase {
			ce.Name = ev.Phase.String()
			ce.Cat = "phase"
		}
		if ev.H != 0 {
			ce.Args["h"] = ev.H
		}
		if ev.Norm != 0 {
			ce.Args["norm"] = ev.Norm
		}
		if ev.Iters != 0 {
			ce.Args["iters"] = ev.Iters
		}
		if ev.Flags != 0 {
			ce.Args["flags"] = ev.Flags
		}
		if ev.Detail != "" {
			ce.Args["detail"] = ev.Detail
		}
		if ev.Dur > 0 {
			// Span: stamp the start so concurrent workers nest correctly.
			ce.Ph = "X"
			ce.Ts = float64(ev.Wall-ev.Dur) / 1e3
			ce.Dur = float64(ev.Dur) / 1e3
		} else {
			ce.Ph = "i"
			ce.Scope = "t"
		}
		if err := emit(ce); err != nil {
			return err
		}
	}

	for _, s := range snaps {
		if err := emit(chromeEvent{
			Name: "step size", Ph: "C", Pid: 1, Ts: float64(s.Wall) / 1e3,
			Args: map[string]any{"h": s.H},
		}); err != nil {
			return err
		}
		if err := emit(chromeEvent{
			Name: "points/sec", Ph: "C", Pid: 1, Ts: float64(s.Wall) / 1e3,
			Args: map[string]any{"rate": s.PointsPerSec},
		}); err != nil {
			return err
		}
	}

	if _, err := bw.WriteString("\n]\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// ReplayCounts are the Stats-reconcilable counters recomputed from a
// recorded event stream (see Replay).
type ReplayCounts struct {
	Points          int // KindAccept events
	Solves          int // KindSolve events (incl. failed attempts)
	NRIters         int // iterations summed over solve + predict events
	LTERejects      int // KindLTEReject events
	Discarded       int // KindDiscard events
	Recoveries      int // KindRecovery events
	SerialFallbacks int // KindSerialFallback events
	BypassHits      int // bypassed-factorization phase events
	BypassedEvals   int // device evals replayed, summed over device-load phases
	LinearStampHits int // device-load phases flagged as linear-template hits
	Cancels         int // KindCancel events
	WindowSeeds     int // KindWindowSeed events (Parareal windows launched)
	WindowConverges int // KindWindowConverge events (windows past their gate)
	WindowRedos     int // KindWindowRedo events (windows redone from exact state)
}

// Replay recomputes the run counters from a recorded stream. On a complete
// (undropped) trace these reconcile exactly with the run's transient.Stats:
// Points, Solves, NRIters, LTERejects, Discarded and Recoveries match the
// fields of the same name.
func Replay(events []Event) ReplayCounts {
	var c ReplayCounts
	for _, ev := range events {
		switch ev.Kind {
		case KindAccept:
			c.Points++
		case KindSolve:
			c.Solves++
			c.NRIters += int(ev.Iters)
		case KindPredict:
			c.NRIters += int(ev.Iters)
		case KindLTEReject:
			c.LTERejects++
		case KindDiscard:
			c.Discarded++
		case KindRecovery:
			c.Recoveries++
		case KindSerialFallback:
			c.SerialFallbacks++
		case KindCancel:
			c.Cancels++
		case KindWindowSeed:
			c.WindowSeeds++
		case KindWindowConverge:
			c.WindowConverges++
		case KindWindowRedo:
			c.WindowRedos++
		case KindPhase:
			if ev.Phase == PhaseFactor && ev.Flags&FlagBypassed != 0 {
				c.BypassHits++
			}
			if ev.Phase == PhaseDeviceLoad {
				c.BypassedEvals += int(ev.Iters)
				if ev.Flags&FlagLinearHit != 0 {
					c.LinearStampHits++
				}
			}
		}
	}
	return c
}
