package trace

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"sync/atomic"
)

// Metrics is an Observer that maintains live run counters behind atomic
// loads, cheap enough to serve from an HTTP endpoint while the simulation
// is running. It keeps no event history — pair it with a Recorder when the
// stream itself is wanted.
type Metrics struct {
	points     atomic.Int64
	solves     atomic.Int64
	nrIters    atomic.Int64
	lteRejects atomic.Int64
	discarded  atomic.Int64
	recoveries atomic.Int64
	fallbacks  atomic.Int64
	cancels    atomic.Int64
	bypassHits atomic.Int64
	events     atomic.Int64

	stepSize     atomic.Uint64 // float64 bits
	simTime      atomic.Uint64 // float64 bits
	pointsPerSec atomic.Uint64 // float64 bits
}

// NewMetrics returns an empty live-metrics observer.
func NewMetrics() *Metrics { return &Metrics{} }

// OnEvent updates the counters for one event.
func (m *Metrics) OnEvent(ev Event) {
	m.events.Add(1)
	switch ev.Kind {
	case KindAccept:
		m.points.Add(1)
		m.stepSize.Store(math.Float64bits(ev.H))
		m.simTime.Store(math.Float64bits(ev.T))
	case KindSolve:
		m.solves.Add(1)
		m.nrIters.Add(int64(ev.Iters))
	case KindPredict:
		m.nrIters.Add(int64(ev.Iters))
	case KindLTEReject:
		m.lteRejects.Add(1)
	case KindDiscard:
		m.discarded.Add(1)
	case KindRecovery:
		m.recoveries.Add(1)
	case KindSerialFallback:
		m.fallbacks.Add(1)
	case KindCancel:
		m.cancels.Add(1)
	case KindPhase:
		if ev.Phase == PhaseFactor && ev.Flags&FlagBypassed != 0 {
			m.bypassHits.Add(1)
		}
	}
}

// OnSnapshot records the latest throughput sample.
func (m *Metrics) OnSnapshot(s Snapshot) {
	m.pointsPerSec.Store(math.Float64bits(s.PointsPerSec))
}

// metricRows enumerates the exported metrics with stable names. Gauge rows
// carry float values; the rest are monotonic counters.
func (m *Metrics) metricRows() []struct {
	name, help string
	gauge      bool
	val        float64
} {
	f := func(u *atomic.Uint64) float64 { return math.Float64frombits(u.Load()) }
	return []struct {
		name, help string
		gauge      bool
		val        float64
	}{
		{"wavepipe_points_total", "Accepted time points.", false, float64(m.points.Load())},
		{"wavepipe_solves_total", "Newton point solves attempted.", false, float64(m.solves.Load())},
		{"wavepipe_nr_iters_total", "Newton iterations, including speculative warm-starts.", false, float64(m.nrIters.Load())},
		{"wavepipe_lte_rejects_total", "Truncation-error rejections.", false, float64(m.lteRejects.Load())},
		{"wavepipe_discarded_total", "Speculative points thrown away.", false, float64(m.discarded.Load())},
		{"wavepipe_recoveries_total", "Recovery-ladder rescues.", false, float64(m.recoveries.Load())},
		{"wavepipe_serial_fallbacks_total", "Pipeline degradations to serial integration.", false, float64(m.fallbacks.Load())},
		{"wavepipe_cancels_total", "Context cancellations observed.", false, float64(m.cancels.Load())},
		{"wavepipe_bypass_hits_total", "Factorizations answered by LU reuse.", false, float64(m.bypassHits.Load())},
		{"wavepipe_trace_events_total", "Trace events emitted.", false, float64(m.events.Load())},
		{"wavepipe_step_size_seconds", "Step size of the most recent accepted point.", true, f(&m.stepSize)},
		{"wavepipe_sim_time_seconds", "Simulation time of the most recent accepted point.", true, f(&m.simTime)},
		{"wavepipe_points_per_second", "Accept rate over the most recent snapshot window.", true, f(&m.pointsPerSec)},
	}
}

// WritePrometheus renders the counters in the Prometheus text exposition
// format (text/plain; version=0.0.4).
func (m *Metrics) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, r := range m.metricRows() {
		typ := "counter"
		if r.gauge {
			typ = "gauge"
		}
		fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s %s\n%s %g\n", r.name, r.help, r.name, typ, r.name, r.val)
	}
	return bw.Flush()
}

// WriteJSON renders the counters as a flat expvar-style JSON object.
func (m *Metrics) WriteJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("{")
	for i, r := range m.metricRows() {
		if i > 0 {
			bw.WriteString(",")
		}
		fmt.Fprintf(bw, "\n  %q: %g", r.name, r.val)
	}
	bw.WriteString("\n}\n")
	return bw.Flush()
}

// Handler serves the metrics over HTTP: "/metrics" in Prometheus text
// format, "/vars" (and anything else) as expvar-style JSON.
func (m *Metrics) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		m.WritePrometheus(w)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		m.WriteJSON(w)
	})
	return mux
}

// Points returns the accepted-point count so far.
func (m *Metrics) Points() int64 { return m.points.Load() }

// Solves returns the Newton point-solve count so far.
func (m *Metrics) Solves() int64 { return m.solves.Load() }
