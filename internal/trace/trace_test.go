package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	if tr.Active() {
		t.Fatal("nil tracer must report inactive")
	}
	// Must not panic.
	tr.Emit(Event{Kind: KindAccept, T: 1e-9})
	if got := New(nil, 0); got != nil {
		t.Fatalf("New(nil, ...) = %v, want nil", got)
	}
}

func TestTracerStampsAndCounts(t *testing.T) {
	rec := NewRecorder(0)
	tr := New(rec, 2)
	tr.Emit(Event{Kind: KindSolve, Iters: 3, T: 1e-9})
	tr.Emit(Event{Kind: KindAccept, T: 1e-9, H: 1e-9})
	tr.Emit(Event{Kind: KindSolve, Iters: 2, T: 2e-9})
	tr.Emit(Event{Kind: KindAccept, T: 2e-9, H: 1e-9}) // 2nd accept → snapshot
	tr.Emit(Event{Kind: KindLTEReject, T: 3e-9})
	tr.Emit(Event{Kind: KindDiscard, T: 3e-9})
	tr.Emit(Event{Kind: KindRecovery, T: 3e-9})
	tr.Emit(Event{Kind: KindPhase, Phase: PhaseFactor, Flags: FlagBypassed})

	evs := rec.Events()
	if len(evs) != 8 {
		t.Fatalf("got %d events, want 8", len(evs))
	}
	var lastSeq uint64
	for i, ev := range evs {
		if ev.Seq <= lastSeq {
			t.Fatalf("event %d: seq %d not increasing past %d", i, ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		if ev.Wall < 0 {
			t.Fatalf("event %d: negative wall %d", i, ev.Wall)
		}
	}
	snaps := rec.Snapshots()
	if len(snaps) != 1 {
		t.Fatalf("got %d snapshots, want 1 (cadence 2, 2 accepts)", len(snaps))
	}
	s := snaps[0]
	if s.Points != 2 || s.Solves != 2 || s.NRIters != 5 || s.BypassHits != 0 {
		t.Fatalf("snapshot counters wrong: %+v", s)
	}
	if s.Seq <= evs[3].Seq {
		t.Fatalf("snapshot seq %d must follow the accept that triggered it (%d)", s.Seq, evs[3].Seq)
	}

	c := Replay(evs)
	want := ReplayCounts{Points: 2, Solves: 2, NRIters: 5, LTERejects: 1, Discarded: 1, Recoveries: 1, BypassHits: 1}
	if c != want {
		t.Fatalf("Replay = %+v, want %+v", c, want)
	}
}

func TestTracerConcurrentEmit(t *testing.T) {
	rec := NewRecorder(0)
	tr := New(rec, 1000)
	var wg sync.WaitGroup
	const workers, per = 8, 200
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tr.Emit(Event{Kind: KindSolve, Worker: int16(w), Iters: 1})
			}
		}(w)
	}
	wg.Wait()
	evs := rec.Events()
	if len(evs) != workers*per {
		t.Fatalf("got %d events, want %d", len(evs), workers*per)
	}
	seen := map[uint64]bool{}
	for _, ev := range evs {
		if seen[ev.Seq] {
			t.Fatalf("duplicate seq %d", ev.Seq)
		}
		seen[ev.Seq] = true
	}
}

func TestRecorderRingWrap(t *testing.T) {
	rec := NewRecorder(4)
	tr := New(rec, 1<<30)
	for i := 0; i < 10; i++ {
		tr.Emit(Event{Kind: KindSolve, Iters: int32(i)})
	}
	if rec.Len() != 4 {
		t.Fatalf("Len = %d, want 4", rec.Len())
	}
	if rec.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", rec.Dropped())
	}
	evs := rec.Events()
	for i, ev := range evs {
		if want := int32(6 + i); ev.Iters != want {
			t.Fatalf("ring kept wrong events: pos %d has iters %d, want %d", i, ev.Iters, want)
		}
	}
	rec.Reset()
	if rec.Len() != 0 || rec.Dropped() != 0 || len(rec.Snapshots()) != 0 {
		t.Fatal("Reset did not clear state")
	}
}

func TestMulti(t *testing.T) {
	if Multi() != nil || Multi(nil, nil) != nil {
		t.Fatal("Multi of no observers must be nil")
	}
	a, b := NewRecorder(0), NewRecorder(0)
	if Multi(a) != Observer(a) {
		t.Fatal("Multi of one observer must return it unwrapped")
	}
	m := Multi(a, nil, b)
	m.OnEvent(Event{Kind: KindAccept})
	m.OnSnapshot(Snapshot{Points: 1})
	if a.Len() != 1 || b.Len() != 1 {
		t.Fatalf("fan-out missed an observer: %d, %d", a.Len(), b.Len())
	}
	if len(a.Snapshots()) != 1 || len(b.Snapshots()) != 1 {
		t.Fatal("fan-out missed a snapshot")
	}
}

func TestKindPhaseWireNames(t *testing.T) {
	for k := KindPredict; k < kindCount; k++ {
		got, ok := KindFromString(k.String())
		if !ok || got != k {
			t.Fatalf("kind %d roundtrip failed: %q → %v %v", k, k.String(), got, ok)
		}
	}
	for p := PhaseDeviceLoad; p < phaseCount; p++ {
		got, ok := PhaseFromString(p.String())
		if !ok || got != p {
			t.Fatalf("phase %d roundtrip failed: %q → %v %v", p, p.String(), got, ok)
		}
	}
	if _, ok := KindFromString("nope"); ok {
		t.Fatal("unknown kind must not parse")
	}
	if _, ok := PhaseFromString(""); ok {
		t.Fatal("empty phase must not parse")
	}
}

func sampleStream() ([]Event, []Snapshot) {
	rec := NewRecorder(0)
	tr := New(rec, 2)
	tr.Emit(Event{Kind: KindPredict, Iters: 2, T: 0.5e-9, Worker: 1, Stage: 3})
	tr.Emit(Event{Kind: KindSolve, Iters: 4, T: 1e-9, H: 1e-9, Norm: 0.25, Flags: FlagResumed})
	tr.Emit(Event{Kind: KindPhase, Phase: PhaseDeviceLoad, Dur: 1200, T: 1e-9})
	tr.Emit(Event{Kind: KindPhase, Phase: PhaseFactor, Dur: 400, Flags: FlagBypassed, T: 1e-9})
	tr.Emit(Event{Kind: KindAccept, T: 1e-9, H: 1e-9})
	tr.Emit(Event{Kind: KindLTEReject, T: 2e-9, Norm: 1.7})
	tr.Emit(Event{Kind: KindDiscard, T: 2e-9, Worker: 2})
	tr.Emit(Event{Kind: KindRecovery, T: 2e-9, Detail: "damping scale=0.2"})
	tr.Emit(Event{Kind: KindAccept, T: 2e-9, H: 0.5e-9})
	tr.Emit(Event{Kind: KindSerialFallback, T: 2e-9, Detail: "worker panic"})
	tr.Emit(Event{Kind: KindWorker, Worker: 0, Stage: 4, Dur: 900})
	tr.Emit(Event{Kind: KindCancel, T: 2.5e-9})
	return rec.Events(), rec.Snapshots()
}

func TestJSONLRoundtrip(t *testing.T) {
	events, snaps := sampleStream()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, events, snaps); err != nil {
		t.Fatal(err)
	}
	// Every line must be standalone JSON.
	for i, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if !json.Valid([]byte(line)) {
			t.Fatalf("line %d is not valid JSON: %s", i+1, line)
		}
	}
	gotEv, gotSn, err := ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(gotEv) != len(events) {
		t.Fatalf("got %d events, want %d", len(gotEv), len(events))
	}
	for i := range events {
		if gotEv[i] != events[i] {
			t.Fatalf("event %d mismatch:\n got %+v\nwant %+v", i, gotEv[i], events[i])
		}
	}
	if len(gotSn) != len(snaps) {
		t.Fatalf("got %d snapshots, want %d", len(gotSn), len(snaps))
	}
	for i := range snaps {
		if gotSn[i] != snaps[i] {
			t.Fatalf("snapshot %d mismatch:\n got %+v\nwant %+v", i, gotSn[i], snaps[i])
		}
	}
	if Replay(gotEv) != Replay(events) {
		t.Fatal("replay counts changed across the roundtrip")
	}
}

func TestReadJSONLRejectsGarbage(t *testing.T) {
	if _, _, err := ReadJSONL(strings.NewReader(`{"type":"event","kind":"bogus"}` + "\n")); err == nil {
		t.Fatal("unknown kind must error")
	}
	if _, _, err := ReadJSONL(strings.NewReader(`{"type":"mystery"}` + "\n")); err == nil {
		t.Fatal("unknown record type must error")
	}
	if _, _, err := ReadJSONL(strings.NewReader("not json\n")); err == nil {
		t.Fatal("malformed JSON must error")
	}
}

func TestChromeTraceIsValidJSON(t *testing.T) {
	events, snaps := sampleStream()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events, snaps); err != nil {
		t.Fatal(err)
	}
	var arr []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &arr); err != nil {
		t.Fatalf("chrome trace is not a JSON array: %v", err)
	}
	var spans, instants, counters, metas int
	for _, e := range arr {
		switch e["ph"] {
		case "X":
			spans++
			if e["dur"].(float64) <= 0 {
				t.Fatalf("span with non-positive dur: %v", e)
			}
		case "i":
			instants++
		case "C":
			counters++
		case "M":
			metas++
		default:
			t.Fatalf("unexpected phase %v", e["ph"])
		}
	}
	if spans != 3 { // device-load, factor, worker spans carry Dur
		t.Fatalf("got %d spans, want 3", spans)
	}
	if instants != len(events)-3 {
		t.Fatalf("got %d instants, want %d", instants, len(events)-3)
	}
	if counters != 2*len(snaps) {
		t.Fatalf("got %d counters, want %d", counters, 2*len(snaps))
	}
	if metas == 0 {
		t.Fatal("missing thread_name metadata")
	}
}

func TestMetricsObserver(t *testing.T) {
	m := NewMetrics()
	events, snaps := sampleStream()
	for _, ev := range events {
		m.OnEvent(ev)
	}
	for _, s := range snaps {
		m.OnSnapshot(s)
	}
	if m.Points() != 2 || m.Solves() != 1 {
		t.Fatalf("Points=%d Solves=%d, want 2, 1", m.Points(), m.Solves())
	}

	var prom bytes.Buffer
	if err := m.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	text := prom.String()
	for _, want := range []string{
		"wavepipe_points_total 2",
		"wavepipe_solves_total 1",
		"wavepipe_nr_iters_total 6",
		"wavepipe_lte_rejects_total 1",
		"wavepipe_discarded_total 1",
		"wavepipe_recoveries_total 1",
		"wavepipe_serial_fallbacks_total 1",
		"wavepipe_cancels_total 1",
		"wavepipe_bypass_hits_total 1",
		"# TYPE wavepipe_points_total counter",
		"# TYPE wavepipe_step_size_seconds gauge",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("prometheus text missing %q:\n%s", want, text)
		}
	}

	var js bytes.Buffer
	if err := m.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var obj map[string]float64
	if err := json.Unmarshal(js.Bytes(), &obj); err != nil {
		t.Fatalf("metrics JSON invalid: %v\n%s", err, js.String())
	}
	if obj["wavepipe_points_total"] != 2 {
		t.Fatalf("metrics JSON points = %g, want 2", obj["wavepipe_points_total"])
	}
}

func BenchmarkEmitNilTracer(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(Event{Kind: KindSolve, Iters: 3})
	}
}

func BenchmarkEmitRecorder(b *testing.B) {
	rec := NewRecorder(1024)
	tr := New(rec, 1<<30)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(Event{Kind: KindSolve, Iters: 3})
	}
}
