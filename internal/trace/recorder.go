package trace

import "sync"

// defaultRingCapacity bounds a Recorder created with a negative capacity.
const defaultRingCapacity = 1 << 16

// Recorder is an Observer that collects events and snapshots in memory for
// post-run export (JSONL, Chrome trace) or inspection.
//
// With capacity > 0 it is a fixed-size ring keeping the newest events: the
// steady-state cost of recording is one struct copy, no allocation, which
// is what makes an always-on flight recorder affordable on long runs (the
// Dropped counter reports how much history scrolled away). With capacity
// 0 it grows without bound — the right choice for finite runs that will be
// exported in full, where dropped events would make the trace irreconcilable
// with the run's Stats. Snapshots are comparatively rare and are always
// kept in full.
type Recorder struct {
	mu       sync.Mutex
	capacity int
	events   []Event
	head     int // index of the oldest event once the ring has wrapped
	wrapped  bool
	dropped  uint64
	snaps    []Snapshot
}

// NewRecorder returns a recorder. capacity > 0 bounds the event ring to
// that many newest events; capacity == 0 keeps every event; capacity < 0
// selects the default ring size (65536).
func NewRecorder(capacity int) *Recorder {
	if capacity < 0 {
		capacity = defaultRingCapacity
	}
	return &Recorder{capacity: capacity}
}

// OnEvent records one event, evicting the oldest when the ring is full.
func (r *Recorder) OnEvent(ev Event) {
	r.mu.Lock()
	if r.capacity > 0 && len(r.events) == r.capacity {
		r.events[r.head] = ev
		r.head = (r.head + 1) % r.capacity
		r.wrapped = true
		r.dropped++
	} else {
		r.events = append(r.events, ev)
	}
	r.mu.Unlock()
}

// OnSnapshot records one snapshot.
func (r *Recorder) OnSnapshot(s Snapshot) {
	r.mu.Lock()
	r.snaps = append(r.snaps, s)
	r.mu.Unlock()
}

// Events returns the recorded events in emission order (a copy).
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.events))
	if r.wrapped {
		out = append(out, r.events[r.head:]...)
		out = append(out, r.events[:r.head]...)
		return out
	}
	return append(out, r.events...)
}

// Snapshots returns the recorded snapshots in emission order (a copy).
func (r *Recorder) Snapshots() []Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Snapshot(nil), r.snaps...)
}

// Len returns how many events are currently held.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Dropped returns how many events were evicted from the ring.
func (r *Recorder) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Reset discards everything recorded so far, keeping the configuration.
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.events = r.events[:0]
	r.head = 0
	r.wrapped = false
	r.dropped = 0
	r.snaps = r.snaps[:0]
	r.mu.Unlock()
}
