package sched

import (
	"runtime"
	"sync/atomic"
)

// Barrier is a sense-reversing spin barrier for gangs whose members are
// pinned to distinct CPUs for microseconds at a time — the level boundaries
// of the scheduled LU kernels and the color-class boundaries of the parallel
// device load. sync.WaitGroup costs a futex round-trip per phase, which
// dwarfs the work inside a small level; spinning with Gosched keeps the
// latency at a few loads.
//
// A barrier is reused across gangs by calling Reset before each one. Each
// gang member keeps a local sense word (starting at 0) and passes it to
// every Wait.
//
// Poison releases all current and future waiters immediately; it exists so a
// panicking gang member can free its peers before re-panicking (the pool's
// recover fence then surfaces the panic to the caller). After a poison the
// protected data is undefined and the gang must abandon the kernel; Reset
// clears the poison for the next run.
//
// Symmetric participation: every gang member must cross the same sequence of
// Waits. A member may leave the kernel early only after Poison — never on a
// shared data flag, because the last arriver at a barrier proceeds instantly
// and can raise the flag in the next phase before its peers have run their
// post-barrier check; the peers would then leave without reaching the barrier
// it is parked at. Error flags must downgrade remaining phases to no-ops
// instead of skipping their Waits.
type Barrier struct {
	n        int32
	count    atomic.Int32
	sense    atomic.Uint32
	poisoned atomic.Bool
}

// Reset prepares the barrier for a gang of n members and clears any poison.
func (b *Barrier) Reset(n int32) {
	b.n = n
	b.count.Store(0)
	b.sense.Store(0)
	b.poisoned.Store(false)
}

// Wait blocks until all n gang members have arrived (or the barrier is
// poisoned). sense points at the member's local sense word.
func (b *Barrier) Wait(sense *uint32) {
	s := *sense ^ 1
	*sense = s
	if b.count.Add(1) == b.n {
		b.count.Store(0)
		b.sense.Store(s)
		return
	}
	for b.sense.Load() != s {
		if b.poisoned.Load() {
			return
		}
		runtime.Gosched()
	}
}

// Poison releases every current and future waiter without synchronizing.
func (b *Barrier) Poison() { b.poisoned.Store(true) }

// Poisoned reports whether the barrier has been poisoned since the last
// Reset.
func (b *Barrier) Poisoned() bool { return b.poisoned.Load() }
