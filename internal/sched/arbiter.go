package sched

import (
	"context"
	"errors"
	"sort"
	"sync"
	"sync/atomic"
)

// ErrQueueFull is returned by Arbiter.Acquire when admission control
// rejects a job because the wait queue is at capacity. Serving layers map
// it to a retryable "busy" answer (HTTP 429).
var ErrQueueFull = errors.New("sched: admission queue full")

// Arbiter promotes the per-run core Budget to a global, multi-tenant
// scheduler: many concurrent simulations draw their core grants from one
// machine-wide Budget, ordered by priority with FIFO fairness inside a
// priority class. It adds the three policies a shared machine needs on top
// of Budget's bare reservation arithmetic:
//
//   - Admission control: at most MaxQueued jobs may wait; further Acquire
//     calls fail fast with ErrQueueFull instead of building unbounded
//     backlog.
//   - Fair-share allocation: a starting job is granted
//     min(want, max(1, free/waiters)) cores, so a burst of arrivals splits
//     the machine instead of the first job hogging every core.
//   - Preemption: when the highest-priority waiter outranks a running
//     grant and no core is free, the lowest-priority running grant is
//     signalled to yield (its Preempted channel closes). The owner is
//     expected to checkpoint at the next accepted-step boundary and
//     Release; the waiter is dispatched as soon as the cores come back.
//
// The sum of all outstanding grants never exceeds the budget: grants are
// carved from a Budget with the same compare-and-swap reservation the
// engines use, so the invariant holds under any interleaving.
type Arbiter struct {
	budget    *Budget
	maxQueued int

	mu      sync.Mutex
	waiting []*waiter
	running map[*Grant]struct{}
	seq     uint64
	closed  bool

	preemptions atomic.Int64
	admitted    atomic.Int64
	rejected    atomic.Int64
}

// waiter is one blocked Acquire call.
type waiter struct {
	priority int
	want     int
	seq      uint64
	ready    chan *Grant // buffered(1); receives the grant when dispatched
}

// Grant is a live core allocation. The owner must call Release exactly once
// when the job stops running (completion, failure, cancellation, or after
// yielding to preemption).
type Grant struct {
	// Cores is the number of cores granted (>= 1). Pass it to the run as
	// its CoreBudget: the job's internal two-level scheduler subdivides it.
	Cores int
	// Priority the grant was acquired with (informational).
	Priority int

	a         *Arbiter
	seq       uint64
	preempt   chan struct{}
	preempted bool // guarded by a.mu
	released  bool // guarded by a.mu
}

// Preempted returns a channel that is closed when the arbiter asks this
// grant to yield to a higher-priority job. The owner should stop at its
// next safe suspension point (for a simulation: checkpoint at an accepted
// step), Release the grant, and re-Acquire to resume.
func (g *Grant) Preempted() <-chan struct{} { return g.preempt }

// Release returns the grant's cores to the global budget and dispatches any
// waiters that now fit. Safe to call once; further calls are no-ops.
func (g *Grant) Release() {
	a := g.a
	a.mu.Lock()
	if g.released {
		a.mu.Unlock()
		return
	}
	g.released = true
	delete(a.running, g)
	a.budget.Release(g.Cores)
	a.dispatch()
	a.mu.Unlock()
}

// NewArbiter returns an arbiter over a budget of cores. maxQueued bounds
// the wait queue (<= 0 means a default of 64).
func NewArbiter(cores, maxQueued int) *Arbiter {
	if maxQueued <= 0 {
		maxQueued = 64
	}
	return &Arbiter{
		budget:    NewBudget(cores),
		maxQueued: maxQueued,
		running:   make(map[*Grant]struct{}),
	}
}

// Total returns the size of the global core budget.
func (a *Arbiter) Total() int { return a.budget.Total() }

// InUse returns the cores currently granted. It never exceeds Total.
func (a *Arbiter) InUse() int { return a.budget.InUse() }

// Running returns the number of live grants.
func (a *Arbiter) Running() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.running)
}

// Queued returns the number of Acquire calls currently waiting.
func (a *Arbiter) Queued() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.waiting)
}

// Preemptions returns the cumulative count of preemption signals issued.
func (a *Arbiter) Preemptions() int64 { return a.preemptions.Load() }

// Admitted returns the cumulative count of grants issued.
func (a *Arbiter) Admitted() int64 { return a.admitted.Load() }

// Rejected returns the cumulative count of admission rejections.
func (a *Arbiter) Rejected() int64 { return a.rejected.Load() }

// Acquire blocks until the arbiter can grant at least one core, or until
// ctx is done. priority orders the wait queue (higher runs first; equal
// priorities are FIFO); want caps the grant (want <= 0 asks for one core).
// The returned grant's Cores is min(want, fair share of the free cores),
// never less than 1.
func (a *Arbiter) Acquire(ctx context.Context, priority, want int) (*Grant, error) {
	if want <= 0 {
		want = 1
	}
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return nil, errors.New("sched: arbiter closed")
	}
	if len(a.waiting) >= a.maxQueued {
		a.rejected.Add(1)
		a.mu.Unlock()
		return nil, ErrQueueFull
	}
	a.seq++
	w := &waiter{priority: priority, want: want, seq: a.seq, ready: make(chan *Grant, 1)}
	a.waiting = append(a.waiting, w)
	sort.SliceStable(a.waiting, func(i, j int) bool {
		if a.waiting[i].priority != a.waiting[j].priority {
			return a.waiting[i].priority > a.waiting[j].priority
		}
		return a.waiting[i].seq < a.waiting[j].seq
	})
	a.dispatch()
	a.mu.Unlock()

	select {
	case g := <-w.ready:
		if g == nil { // Close failed the wait
			return nil, errors.New("sched: arbiter closed")
		}
		return g, nil
	case <-ctx.Done():
		a.mu.Lock()
		for i, q := range a.waiting {
			if q == w {
				a.waiting = append(a.waiting[:i], a.waiting[i+1:]...)
				break
			}
		}
		a.mu.Unlock()
		// A grant may have been dispatched concurrently with the
		// cancellation; it must not leak its reservation.
		select {
		case g := <-w.ready:
			if g != nil {
				g.Release()
			}
		default:
		}
		return nil, ctx.Err()
	}
}

// dispatch starts as many queued waiters as fit, in priority order, and
// signals one preemption when the head waiter outranks a running grant.
// Callers hold a.mu.
func (a *Arbiter) dispatch() {
	for len(a.waiting) > 0 {
		head := a.waiting[0]
		free := a.budget.Total() - a.budget.InUse()
		if free <= 0 {
			a.preemptFor(head)
			return
		}
		// Fair share: a burst of waiters splits the free cores instead of
		// the head taking them all; a lone waiter still gets everything it
		// asked for.
		share := free / len(a.waiting)
		if share < 1 {
			share = 1
		}
		if share > head.want {
			share = head.want
		}
		got := a.budget.Reserve(share)
		if got == 0 {
			a.preemptFor(head)
			return
		}
		g := &Grant{Cores: got, Priority: head.priority, a: a, seq: head.seq, preempt: make(chan struct{})}
		a.running[g] = struct{}{}
		a.waiting = a.waiting[1:]
		a.admitted.Add(1)
		head.ready <- g
	}
}

// preemptFor signals the lowest-priority running grant to yield when the
// waiter strictly outranks it. At most one un-signalled victim is chosen
// per call, so a single high-priority arrival evicts one job, not the whole
// machine. Callers hold a.mu.
func (a *Arbiter) preemptFor(w *waiter) {
	var victim *Grant
	for g := range a.running {
		if g.preempted || g.Priority >= w.priority {
			continue
		}
		// Prefer the lowest priority; among equals, the youngest grant (the
		// one that has made the least progress).
		if victim == nil || g.Priority < victim.Priority ||
			(g.Priority == victim.Priority && g.seq > victim.seq) {
			victim = g
		}
	}
	if victim != nil {
		victim.preempted = true
		a.preemptions.Add(1)
		close(victim.preempt)
	}
}

// Close rejects all future Acquire calls and fails the waiting ones. Live
// grants are left to their owners to Release.
func (a *Arbiter) Close() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return
	}
	a.closed = true
	for _, w := range a.waiting {
		close(w.ready) // receivers see a nil grant…
	}
	a.waiting = nil
}
