package sched

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// TestPoolRunCoversAllWorkers checks every worker index runs exactly once
// per gang, across many gangs, with Force so the concurrent path is
// exercised even on a single-CPU host (and under -race).
func TestPoolRunCoversAllWorkers(t *testing.T) {
	p := NewPool(4)
	if p == nil {
		t.Fatal("NewPool(4) returned nil")
	}
	p.Force = true
	defer p.Close()
	hits := make([]atomic.Int64, p.Workers())
	const gangs = 200
	for g := 0; g < gangs; g++ {
		p.Run(func(w int) { hits[w].Add(1) })
	}
	for w := range hits {
		if got := hits[w].Load(); got != gangs {
			t.Fatalf("worker %d ran %d times, want %d", w, got, gangs)
		}
	}
}

// TestPoolBarrierStress drives a barrier-synchronized kernel (the shape the
// LU and colored-load kernels use) through many phases under -race.
func TestPoolBarrierStress(t *testing.T) {
	p := NewPool(4)
	p.Force = true
	defer p.Close()
	var bar Barrier
	const phases = 50
	shared := make([]int64, phases) // phase i written by worker i%4, read by all in phase i+1
	for rep := 0; rep < 20; rep++ {
		for i := range shared {
			shared[i] = 0
		}
		bar.Reset(int32(p.Workers()))
		p.Run(func(w int) {
			var sense uint32
			for ph := 0; ph < phases; ph++ {
				if ph%p.Workers() == w {
					v := int64(ph + 1)
					if ph > 0 {
						v += shared[ph-1] // read prior phase: ordering via barrier
					}
					shared[ph] = v
				}
				bar.Wait(&sense)
			}
		})
		want := int64(0)
		for ph := 0; ph < phases; ph++ {
			want += int64(ph + 1)
			if shared[ph] != want {
				t.Fatalf("rep %d phase %d: got %d want %d", rep, ph, shared[ph], want)
			}
		}
	}
}

// TestPoolPanicPropagates checks a gang member's panic is re-raised on the
// caller after the gang drains, and that the pool is reusable afterwards.
func TestPoolPanicPropagates(t *testing.T) {
	p := NewPool(3)
	p.Force = true
	defer p.Close()
	var bar Barrier
	for _, bad := range []int{0, 1, 2} {
		func() {
			defer func() {
				if r := recover(); r != "boom" {
					t.Fatalf("worker %d: recovered %v, want boom", bad, r)
				}
			}()
			bar.Reset(int32(p.Workers()))
			p.Run(func(w int) {
				defer func() {
					if r := recover(); r != nil {
						bar.Poison()
						panic(r)
					}
				}()
				var sense uint32
				bar.Wait(&sense)
				if w == bad {
					panic("boom")
				}
				bar.Wait(&sense)
			})
			t.Fatalf("worker %d: Run returned without panicking", bad)
		}()
		// Pool must still work after a poisoned gang.
		var ok atomic.Int64
		p.Run(func(w int) { ok.Add(1) })
		if ok.Load() != int64(p.Workers()) {
			t.Fatalf("pool unusable after panic: %d/%d workers ran", ok.Load(), p.Workers())
		}
	}
}

// TestPoolDegradesSequentially checks the nil pool and the non-Gang path run
// the function serially, in worker order.
func TestPoolDegradesSequentially(t *testing.T) {
	var nilPool *Pool
	order := []int{}
	nilPool.Run(func(w int) { order = append(order, w) })
	if len(order) != 1 || order[0] != 0 {
		t.Fatalf("nil pool ran %v, want [0]", order)
	}
	if nilPool.Workers() != 1 || nilPool.Gang() {
		t.Fatalf("nil pool: Workers=%d Gang=%v", nilPool.Workers(), nilPool.Gang())
	}
	if runtime.GOMAXPROCS(0) == 1 {
		p := NewPool(3) // Force unset: degrades on a 1-CPU host
		defer p.Close()
		if p.Gang() {
			t.Skip("GOMAXPROCS changed concurrently")
		}
		order = order[:0]
		p.Run(func(w int) { order = append(order, w) })
		if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
			t.Fatalf("degraded pool ran %v, want [0 1 2]", order)
		}
	}
}

// TestBudgetInvariant checks reservations never exceed the total and that
// pool close releases its grant.
func TestBudgetInvariant(t *testing.T) {
	b := NewBudget(8)
	if got := b.Reserve(4); got != 4 {
		t.Fatalf("Reserve(4) = %d", got)
	}
	// Pipeline lanes reserved; carve four gangs out of the remainder like
	// the wavepipe engine does (intra = budget/threads = 2 → 1 extra each).
	pools := make([]*Pool, 0, 4)
	for i := 0; i < 4; i++ {
		p := b.NewPool(2)
		if p == nil {
			t.Fatalf("gang %d: NewPool(2) = nil with %d free", i, b.Total()-b.InUse())
		}
		pools = append(pools, p)
	}
	if b.InUse() != 8 {
		t.Fatalf("InUse = %d, want 8", b.InUse())
	}
	if p := b.NewPool(4); p != nil {
		t.Fatalf("over-budget NewPool succeeded with width %d", p.Workers())
	}
	for _, p := range pools {
		p.Close()
	}
	if b.InUse() != 4 {
		t.Fatalf("after close InUse = %d, want 4", b.InUse())
	}
	b.Release(4)
	if b.InUse() != 0 {
		t.Fatalf("final InUse = %d, want 0", b.InUse())
	}
	// Partial grant: only 3 free, asking for a gang of 8 → width 4.
	b2 := NewBudget(4)
	b2.Reserve(1)
	p := b2.NewPool(8)
	if p.Workers() != 4 {
		t.Fatalf("partial grant width = %d, want 4", p.Workers())
	}
	p.Close()
}

// TestPoolNoGoroutineLeak runs gangs on several pools, closes them, and
// checks the goroutine count returns to its baseline.
func TestPoolNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 8; i++ {
		p := NewPool(4)
		p.Force = true
		var n atomic.Int64
		p.Run(func(w int) { n.Add(1) })
		p.Run(func(w int) { n.Add(1) })
		if n.Load() != 8 {
			t.Fatalf("pool %d: %d runs, want 8", i, n.Load())
		}
		p.Close()
		p.Close() // double close is safe
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
}
