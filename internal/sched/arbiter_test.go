package sched

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestArbiterNeverOversubscribes drives many concurrent acquire/release
// cycles and asserts the granted total never exceeds the budget.
func TestArbiterNeverOversubscribes(t *testing.T) {
	const cores, jobs = 4, 24
	a := NewArbiter(cores, jobs)
	var peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(pri int) {
			defer wg.Done()
			g, err := a.Acquire(context.Background(), pri%3, 1+pri%4)
			if err != nil {
				t.Errorf("acquire: %v", err)
				return
			}
			for k := 0; k < 50; k++ {
				inUse := int64(a.InUse())
				for {
					p := peak.Load()
					if inUse <= p || peak.CompareAndSwap(p, inUse) {
						break
					}
				}
				time.Sleep(time.Microsecond)
			}
			g.Release()
		}(i)
	}
	wg.Wait()
	if p := peak.Load(); p > cores {
		t.Fatalf("peak cores in use %d exceeds budget %d", p, cores)
	}
	if a.InUse() != 0 {
		t.Fatalf("cores leaked: %d still in use", a.InUse())
	}
	if a.Running() != 0 || a.Queued() != 0 {
		t.Fatalf("jobs leaked: running=%d queued=%d", a.Running(), a.Queued())
	}
}

// TestArbiterAdmissionControl verifies the queue bound rejects with
// ErrQueueFull instead of blocking forever.
func TestArbiterAdmissionControl(t *testing.T) {
	a := NewArbiter(1, 2)
	g, err := a.Acquire(context.Background(), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Fill the wait queue.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			w, err := a.Acquire(ctx, 0, 1)
			if w != nil {
				w.Release()
			}
			errs <- err
		}()
	}
	// Wait until both are queued, then the third must bounce.
	deadline := time.Now().Add(2 * time.Second)
	for a.Queued() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("waiters never queued (queued=%d)", a.Queued())
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := a.Acquire(context.Background(), 0, 1); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if a.Rejected() != 1 {
		t.Fatalf("rejected = %d, want 1", a.Rejected())
	}
	cancel() // drain the two waiters
	<-errs
	<-errs
	g.Release()
}

// TestArbiterPreemption verifies a higher-priority waiter signals the
// lowest-priority running grant, and is dispatched once it releases.
func TestArbiterPreemption(t *testing.T) {
	a := NewArbiter(1, 8)
	low, err := a.Acquire(context.Background(), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	highReady := make(chan *Grant, 1)
	go func() {
		g, err := a.Acquire(context.Background(), 5, 1)
		if err != nil {
			t.Errorf("high acquire: %v", err)
		}
		highReady <- g
	}()
	select {
	case <-low.Preempted():
	case <-time.After(2 * time.Second):
		t.Fatal("low-priority grant was never asked to yield")
	}
	select {
	case <-highReady:
		t.Fatal("high-priority job dispatched before the victim released")
	case <-time.After(20 * time.Millisecond):
	}
	low.Release()
	select {
	case g := <-highReady:
		if g == nil {
			t.Fatal("nil grant")
		}
		g.Release()
	case <-time.After(2 * time.Second):
		t.Fatal("high-priority job never dispatched after release")
	}
	if a.Preemptions() != 1 {
		t.Fatalf("preemptions = %d, want 1", a.Preemptions())
	}
	// Equal priority must NOT preempt.
	g1, _ := a.Acquire(context.Background(), 1, 1)
	done := make(chan struct{})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	go func() {
		if g, err := a.Acquire(ctx, 1, 1); err == nil {
			g.Release()
		}
		close(done)
	}()
	select {
	case <-g1.Preempted():
		t.Fatal("equal priority preempted a running grant")
	case <-done:
	}
	g1.Release()
}

// TestArbiterFairShare verifies a burst of waiters splits the free cores
// instead of the first taking everything.
func TestArbiterFairShare(t *testing.T) {
	a := NewArbiter(8, 8)
	// Hold the whole budget, queue 4 greedy waiters, then release: each
	// should get 8/4 = 2 cores.
	hold, err := a.Acquire(context.Background(), 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if hold.Cores != 8 {
		t.Fatalf("lone job granted %d cores, want all 8", hold.Cores)
	}
	grants := make(chan *Grant, 4)
	for i := 0; i < 4; i++ {
		go func() {
			g, err := a.Acquire(context.Background(), 0, 8)
			if err != nil {
				t.Errorf("acquire: %v", err)
			}
			grants <- g
		}()
	}
	deadline := time.Now().Add(2 * time.Second)
	for a.Queued() < 4 {
		if time.Now().After(deadline) {
			t.Fatalf("waiters never queued (queued=%d)", a.Queued())
		}
		time.Sleep(time.Millisecond)
	}
	hold.Release()
	for i := 0; i < 4; i++ {
		select {
		case g := <-grants:
			if g.Cores != 2 {
				t.Fatalf("burst grant got %d cores, want fair share 2", g.Cores)
			}
			defer g.Release()
		case <-time.After(2 * time.Second):
			t.Fatal("waiter never dispatched")
		}
	}
}

// TestArbiterAcquireCancel verifies a canceled Acquire neither blocks nor
// leaks a reservation.
func TestArbiterAcquireCancel(t *testing.T) {
	a := NewArbiter(1, 8)
	g, _ := a.Acquire(context.Background(), 0, 1)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := a.Acquire(ctx, 0, 1)
		done <- err
	}()
	deadline := time.Now().Add(2 * time.Second)
	for a.Queued() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	g.Release()
	if a.InUse() != 0 {
		t.Fatalf("reservation leaked: %d in use", a.InUse())
	}
}
