// Package sched provides the shared two-level scheduling primitives used by
// the simulator: a gang-scheduled worker Pool for intra-point parallelism
// (colored device load, level-scheduled sparse LU) and a global core Budget
// that both parallelism levels draw from, so that
//
//	pipeline threads × intra-point gang width ≤ CoreBudget
//
// never oversubscribes the machine. Pools are cheap, long-lived objects: the
// workers are persistent goroutines that park on a channel between gangs, so
// the per-call cost of Run is two channel operations per worker instead of a
// goroutine spawn. The calling goroutine always participates as worker 0,
// which is what makes the budget arithmetic exact — a pipeline worker that
// owns a gang of width k costs k cores total, not k+1.
package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// maxGang caps a single pool's width. Level-scheduled LU and colored load
// saturate well before this on every circuit in the suite; the cap only
// guards against absurd -cores values creating thousands of spinners.
const maxGang = 64

// ForceGang is the package-wide analogue of Pool.Force: while true, every
// pool's Gang() reports true regardless of GOMAXPROCS. Equivalence tests use
// it to drive the concurrent kernels bitwise-identically on single-CPU hosts
// where raising GOMAXPROCS above the hardware thread count would push the
// spin barriers into OS time-slicing (milliseconds per crossing); with
// GOMAXPROCS=1 the gang round-robins cooperatively through Gosched instead.
// Not for production use: a forced gang on one CPU is strictly slower than
// the degraded sequential sweep.
var ForceGang atomic.Bool

// Pool is a gang of persistent workers. Run(fn) executes fn(w) for
// w = 0..Workers()-1 concurrently, with the caller acting as worker 0, and
// returns when every worker has finished. A Pool has a single owner: Run must
// not be called concurrently with itself or with Close.
//
// Kernels that synchronize inside fn (e.g. with a Barrier sized to
// Workers()) MUST check Gang() first and fall back to a serial variant when
// it reports false: when the gang cannot actually run concurrently, Run
// degrades to calling fn sequentially, which would deadlock a barrier.
type Pool struct {
	n     int              // gang width including the caller
	tasks []chan func(int) // one per hired worker (n-1)
	wg    sync.WaitGroup

	// Force makes Gang() report true even on GOMAXPROCS=1 hosts, so race
	// tests can drive the concurrent paths on single-CPU machines.
	Force bool

	mu     sync.Mutex
	pv     any // first panic recovered from a gang member
	closed bool

	budget  *Budget // set when the pool was carved out of a Budget
	granted int     // extra cores reserved from budget (n-1 at creation)
}

// NewPool returns a pool of gang width n (caller included). Widths ≤ 1
// return nil: the nil *Pool is valid and means "serial" everywhere.
func NewPool(n int) *Pool {
	if n > maxGang {
		n = maxGang
	}
	if n <= 1 {
		return nil
	}
	p := &Pool{n: n, tasks: make([]chan func(int), n-1)}
	for i := range p.tasks {
		ch := make(chan func(int))
		p.tasks[i] = ch
		w := i + 1
		go func() {
			for fn := range ch {
				p.runGuarded(fn, w)
				p.wg.Done()
			}
		}()
	}
	return p
}

// Workers returns the gang width. The nil pool has width 1.
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.n
}

// Gang reports whether Run will actually execute the gang concurrently.
// On a single-CPU host (GOMAXPROCS=1) spinning gang members would only slow
// the caller down, so Run degrades to a sequential sweep unless Force is set;
// kernels use Gang to pick between their concurrent and serial forms (and,
// for the serial form, to model the would-be parallel critical path).
func (p *Pool) Gang() bool {
	return p != nil && p.n > 1 && (p.Force || ForceGang.Load() || runtime.GOMAXPROCS(0) > 1)
}

// Run executes fn(w) for every worker w in [0, Workers()) and returns once
// all have completed. If any fn panics, the first recovered value is
// re-panicked on the caller after the gang has drained, so engine-level
// panic fences (wavepipe's guardTask) see it exactly like a serial panic.
// With a nil pool, or when Gang() is false, fn is called sequentially.
func (p *Pool) Run(fn func(w int)) {
	if !p.Gang() {
		for w := 0; w < p.Workers(); w++ {
			fn(w)
		}
		return
	}
	p.mu.Lock()
	p.pv = nil
	p.mu.Unlock()
	p.wg.Add(p.n - 1)
	for _, ch := range p.tasks {
		ch <- fn
	}
	p.runGuarded(fn, 0)
	p.wg.Wait()
	p.mu.Lock()
	pv := p.pv
	p.mu.Unlock()
	if pv != nil {
		panic(pv)
	}
}

func (p *Pool) runGuarded(fn func(int), w int) {
	defer func() {
		if r := recover(); r != nil {
			p.mu.Lock()
			if p.pv == nil {
				p.pv = r
			}
			p.mu.Unlock()
		}
	}()
	fn(w)
}

// Close stops the hired workers and releases the pool's reservation back to
// its Budget. Safe on nil and safe to call twice.
func (p *Pool) Close() {
	if p == nil {
		return
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	for _, ch := range p.tasks {
		close(ch)
	}
	if p.budget != nil {
		p.budget.Release(p.granted)
	}
}

// Budget tracks a global core budget shared by every parallelism level of a
// run. The engines reserve their pipeline lanes first, then carve intra-point
// gangs out of the remainder, so the total reservation never exceeds Total.
type Budget struct {
	total int64
	used  atomic.Int64
}

// NewBudget returns a budget of total cores. total ≤ 0 yields a zero budget
// (every Reserve grants nothing).
func NewBudget(total int) *Budget {
	if total < 0 {
		total = 0
	}
	return &Budget{total: int64(total)}
}

// Total returns the budget's size.
func (b *Budget) Total() int {
	if b == nil {
		return 0
	}
	return int(b.total)
}

// InUse returns the number of cores currently reserved.
func (b *Budget) InUse() int {
	if b == nil {
		return 0
	}
	return int(b.used.Load())
}

// Reserve grants min(n, free) cores and records them as in use; it returns
// the granted count (possibly 0). Callers must Release what they were
// granted.
func (b *Budget) Reserve(n int) int {
	if b == nil || n <= 0 {
		return 0
	}
	for {
		used := b.used.Load()
		free := b.total - used
		if free <= 0 {
			return 0
		}
		g := int64(n)
		if g > free {
			g = free
		}
		if b.used.CompareAndSwap(used, used+g) {
			return int(g)
		}
	}
}

// Release returns n previously reserved cores to the budget.
func (b *Budget) Release(n int) {
	if b == nil || n <= 0 {
		return
	}
	b.used.Add(int64(-n))
}

// NewPool reserves up to gang-1 extra cores (the gang leader is the calling
// worker, assumed already accounted for by the caller's own reservation) and
// returns a pool of width 1+granted. When nothing extra is available it
// returns nil, i.e. serial. Closing the pool releases the reservation.
func (b *Budget) NewPool(gang int) *Pool {
	if gang > maxGang {
		gang = maxGang
	}
	if b == nil || gang <= 1 {
		return nil
	}
	g := b.Reserve(gang - 1)
	if g == 0 {
		return nil
	}
	p := NewPool(1 + g)
	if p == nil { // 1+g == 1 cannot happen (g ≥ 1), but stay safe
		b.Release(g)
		return nil
	}
	p.budget = b
	p.granted = g
	return p
}

// SplitBudget divides a global core budget among identical gangs of width
// gang, capped at maxUnits concurrent gangs. It returns how many gangs may
// run at once and the per-gang core budget, chosen so that
// units × perUnit ≤ total — the invariant the time-parallel window
// coordinator relies on so windows × pipeline × intra-point parallelism
// never oversubscribes the machine. A non-positive total means the budget
// is unmanaged: every unit may run with an unmanaged (zero) inner budget.
func SplitBudget(total, gang, maxUnits int) (units, perUnit int) {
	if maxUnits < 1 {
		maxUnits = 1
	}
	if gang < 1 {
		gang = 1
	}
	if total <= 0 {
		return maxUnits, 0
	}
	units = total / gang
	if units < 1 {
		units = 1
	}
	if units > maxUnits {
		units = maxUnits
	}
	return units, total / units
}
