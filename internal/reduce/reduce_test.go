package reduce_test

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"wavepipe/internal/circuit"
	"wavepipe/internal/circuits"
	"wavepipe/internal/device"
	"wavepipe/internal/reduce"
)

// seriesChain builds in --R1-- a --R2-- b --R3-- out --Rload-- gnd with a
// source driving "in"; a and b are exact series-merge candidates.
func seriesChain() *circuit.Circuit {
	c := circuit.New("series")
	in := c.Node("in")
	a := c.Node("a")
	b := c.Node("b")
	out := c.Node("out")
	c.Add(device.NewVSource("Vin", in, circuit.Ground, device.DC(1)))
	c.Add(device.NewResistor("R1", in, a, 10))
	c.Add(device.NewResistor("R2", a, b, 20))
	c.Add(device.NewResistor("R3", b, out, 30))
	c.Add(device.NewResistor("Rload", out, circuit.Ground, 40))
	return c
}

func TestSeriesResistorMergeExact(t *testing.T) {
	c := seriesChain()
	rc, info, err := reduce.Reduce(c, reduce.Options{Keep: []string{"out"}})
	if err != nil {
		t.Fatal(err)
	}
	if rc == c {
		t.Fatal("expected a reduced circuit, got the original")
	}
	if got := rc.NumNodes(); got != 2 {
		t.Fatalf("reduced nodes = %d, want 2 (in, out)", got)
	}
	if info.RemovedNodes != 2 || info.RemovedDevices != 2 {
		t.Fatalf("counters = %d nodes/%d devices, want 2/2", info.RemovedNodes, info.RemovedDevices)
	}
	if _, err := rc.Build(); err != nil {
		t.Fatalf("reduced circuit does not build: %v", err)
	}
	// Merged resistor: one device named R1 with R = 60 spanning in--out.
	var merged *device.Resistor
	for _, d := range rc.Devices() {
		if r, ok := d.(*device.Resistor); ok && r.Name() == "R1" {
			merged = r
		}
	}
	if merged == nil || merged.R != 60 {
		t.Fatalf("merged resistor = %+v, want R1 with R=60", merged)
	}

	// Exact expansion: with v(in)=1, v(out)=0.4 (divider 60/40), the
	// suppressed interiors sit at the resistive divider points.
	inIdx, _ := c.FindNode("in")
	outIdx, _ := c.FindNode("out")
	aIdx, _ := c.FindNode("a")
	bIdx, _ := c.FindNode("b")
	row := make([]float64, rc.NumNodes())
	row[info.NodeMap[inIdx]] = 1.0
	row[info.NodeMap[outIdx]] = 0.4
	va := info.ExpandValue(aIdx, row)
	vb := info.ExpandValue(bIdx, row)
	wantA := 1.0 - 0.6*10/60 // cumulative R fraction along the chain
	wantB := 1.0 - 0.6*30/60
	if math.Abs(va-wantA) > 1e-12 || math.Abs(vb-wantB) > 1e-12 {
		t.Fatalf("expansion: v(a)=%g v(b)=%g, want %g %g", va, vb, wantA, wantB)
	}
	// Retained nodes expand to themselves.
	if v := info.ExpandValue(outIdx, row); v != 0.4 {
		t.Fatalf("retained node expansion = %g, want 0.4", v)
	}
}

func TestSeriesInductorMerge(t *testing.T) {
	c := circuit.New("lchain")
	in := c.Node("in")
	a := c.Node("a")
	out := c.Node("out")
	c.Add(device.NewVSource("Vin", in, circuit.Ground, device.DC(1)))
	c.Add(device.NewInductor("L1", in, a, 1e-9))
	c.Add(device.NewInductor("L2", a, out, 3e-9))
	c.Add(device.NewResistor("Rload", out, circuit.Ground, 50))
	rc, info, err := reduce.Reduce(c, reduce.Options{Keep: []string{"out"}})
	if err != nil {
		t.Fatal(err)
	}
	if rc == c || info.RemovedNodes != 1 {
		t.Fatalf("expected 1 suppressed node, got info=%+v", info)
	}
	var merged *device.Inductor
	for _, d := range rc.Devices() {
		if l, ok := d.(*device.Inductor); ok && l.Name() == "L1" {
			merged = l
		}
	}
	if merged == nil || math.Abs(merged.L-4e-9) > 1e-24 {
		t.Fatalf("merged inductor = %+v, want L=4e-9", merged)
	}
	if _, err := rc.Build(); err != nil {
		t.Fatalf("reduced circuit does not build: %v", err)
	}
	// Inductive divider: v(a) = v(in) - (L1/Ltot)(v(in)-v(out)).
	aIdx, _ := c.FindNode("a")
	inIdx, _ := c.FindNode("in")
	outIdx, _ := c.FindNode("out")
	row := make([]float64, rc.NumNodes())
	row[info.NodeMap[inIdx]] = 1.0
	row[info.NodeMap[outIdx]] = 0.2
	want := 1.0 - (1e-9/4e-9)*0.8
	if v := info.ExpandValue(aIdx, row); math.Abs(v-want) > 1e-12 {
		t.Fatalf("v(a) = %g, want %g", v, want)
	}
}

func TestLadderLumpCounts(t *testing.T) {
	c := circuits.RCLadder(100)
	rc, info, err := reduce.Reduce(c, reduce.Options{Tol: 0.02, Keep: []string{"in", "out"}})
	if err != nil {
		t.Fatal(err)
	}
	if rc == c {
		t.Fatal("ladder should reduce")
	}
	s := reduce.Sections(0.02)
	// in + out + (s-1) retained interiors.
	want := 2 + s - 1
	if got := rc.NumNodes(); got != want {
		t.Fatalf("reduced nodes = %d, want %d (sections=%d)", got, want, s)
	}
	if info.RemovedNodes != c.NumNodes()-want {
		t.Fatalf("RemovedNodes = %d, want %d", info.RemovedNodes, c.NumNodes()-want)
	}
	if _, err := rc.Build(); err != nil {
		t.Fatalf("reduced ladder does not build: %v", err)
	}
	// Total resistance and capacitance are conserved by lumping.
	totR, totC := 0.0, 0.0
	for _, d := range rc.Devices() {
		switch x := d.(type) {
		case *device.Resistor:
			totR += x.R
		case *device.Capacitor:
			totC += x.C
		}
	}
	wantR := 101 * 10.0 // 100 segment resistors + Rout
	wantC := 100*20e-15 + 50e-15
	if math.Abs(totR-wantR) > 1e-9 || math.Abs(totC-wantC)/wantC > 1e-12 {
		t.Fatalf("conservation: R=%g (want %g) C=%g (want %g)", totR, wantR, totC, wantC)
	}
	// Every suppressed node must have an expansion over retained nodes.
	for o := 0; o < c.NumNodes(); o++ {
		if info.NodeMap[o] >= 0 {
			continue
		}
		if len(info.Expansion[o]) == 0 {
			t.Fatalf("suppressed node %s has no expansion", c.NodeName(o))
		}
		for _, term := range info.Expansion[o] {
			if term.Node < 0 || term.Node >= rc.NumNodes() {
				t.Fatalf("expansion of %s references bad node %d", c.NodeName(o), term.Node)
			}
		}
	}
}

func TestExactModeLadderIsNoop(t *testing.T) {
	c := circuits.RCLadder(50)
	rc, info, err := reduce.Reduce(c, reduce.Options{Tol: 0, Keep: []string{"out"}})
	if err != nil {
		t.Fatal(err)
	}
	if rc != c || info != nil {
		t.Fatal("exact mode on a pure ladder must be a no-op returning the original circuit")
	}
}

func TestGridIsNoop(t *testing.T) {
	// Every power-grid node touches >= 4 devices: nothing is reducible.
	c := circuits.PowerGridMesh(8, 1.0)
	rc, info, err := reduce.Reduce(c, reduce.Options{Tol: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if rc != c || info != nil {
		t.Fatal("grid reduction must be a no-op")
	}
}

func TestUnknownKeepNodeFails(t *testing.T) {
	c := circuits.RCLadder(10)
	_, _, err := reduce.Reduce(c, reduce.Options{Keep: []string{"nosuchnode"}})
	var une *reduce.UnknownNodeError
	if !errors.As(err, &une) {
		t.Fatalf("err = %v, want *reduce.UnknownNodeError", err)
	}
	if une.Node != "nosuchnode" {
		t.Fatalf("error names %q, want nosuchnode", une.Node)
	}
}

func TestKeepNodeProtected(t *testing.T) {
	c := circuits.RCLadder(100)
	rc, info, err := reduce.Reduce(c, reduce.Options{Tol: 0.02, Keep: []string{"out", "n50"}})
	if err != nil {
		t.Fatal(err)
	}
	if rc == c {
		t.Fatal("ladder should still reduce around the protected node")
	}
	if _, ok := rc.FindNode("n50"); !ok {
		t.Fatal("protected node n50 was collapsed")
	}
	idx, _ := c.FindNode("n50")
	if info.NodeMap[idx] < 0 {
		t.Fatal("NodeMap says n50 was suppressed")
	}
}

func TestKeepDevicesProtected(t *testing.T) {
	c := circuits.RCLadder(100)
	rc, _, err := reduce.Reduce(c, reduce.Options{Tol: 0.02, Keep: []string{"out"}, KeepDevices: []string{"R50"}})
	if err != nil {
		t.Fatal(err)
	}
	// R50 joins n49 and n50; both terminals must survive for lane overrides.
	for _, name := range []string{"n49", "n50"} {
		if _, ok := rc.FindNode(name); !ok {
			t.Fatalf("terminal %s of protected device R50 was collapsed", name)
		}
	}
	var r50 *device.Resistor
	for _, d := range rc.Devices() {
		if r, ok := d.(*device.Resistor); ok && r.Name() == "R50" {
			r50 = r
		}
	}
	if r50 == nil || r50.R != 10 {
		t.Fatal("protected device R50 must survive unmerged")
	}
}

func TestPlanAppliesAcrossLanes(t *testing.T) {
	mk := func(rval float64) *circuit.Circuit {
		c := circuit.New("lane")
		in := c.Node("in")
		prev := in
		c.Add(device.NewVSource("Vin", in, circuit.Ground, device.DC(1)))
		for i := 1; i <= 30; i++ {
			nd := c.Node(fmt.Sprintf("n%d", i))
			c.Add(device.NewResistor(fmt.Sprintf("R%d", i), prev, nd, rval))
			c.Add(device.NewCapacitor(fmt.Sprintf("C%d", i), nd, circuit.Ground, 5e-15))
			prev = nd
		}
		out := c.Node("out")
		c.Add(device.NewResistor("Rout", prev, out, rval))
		c.Add(device.NewCapacitor("Cout", out, circuit.Ground, 10e-15))
		return c
	}
	ref := mk(10)
	plan, err := reduce.New(ref, reduce.Options{Tol: 0.02, Keep: []string{"out"}})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Empty() {
		t.Fatal("plan should not be empty")
	}
	r0, i0, err := plan.Apply(ref)
	if err != nil {
		t.Fatal(err)
	}
	r1, i1, err := plan.Apply(mk(25))
	if err != nil {
		t.Fatal(err)
	}
	if r0.NumNodes() != r1.NumNodes() {
		t.Fatalf("lanes diverge structurally: %d vs %d nodes", r0.NumNodes(), r1.NumNodes())
	}
	if len(r0.Devices()) != len(r1.Devices()) {
		t.Fatalf("lanes diverge structurally: %d vs %d devices", len(r0.Devices()), len(r1.Devices()))
	}
	if i0.RemovedNodes != i1.RemovedNodes {
		t.Fatal("lane reduction counters diverge")
	}
	// Values track each lane: total lumped R scales with rval.
	sumR := func(c *circuit.Circuit) float64 {
		s := 0.0
		for _, d := range c.Devices() {
			if r, ok := d.(*device.Resistor); ok {
				s += r.R
			}
		}
		return s
	}
	if math.Abs(sumR(r1)/sumR(r0)-2.5) > 1e-12 {
		t.Fatalf("lane values not recomputed: sumR ratio = %g, want 2.5", sumR(r1)/sumR(r0))
	}
	// Mismatched topology is rejected.
	if _, _, err := plan.Apply(circuits.RCLadder(10)); err == nil {
		t.Fatal("Apply on a mismatched circuit must fail")
	}
}

func TestNonRenoderDisablesPass(t *testing.T) {
	// A switch holds time-varying topology; its presence must disable the
	// pass for the whole circuit even though reducible structure exists.
	c := seriesChain()
	x := c.Node("x")
	c.Add(device.NewSwitch("S1", x, circuit.Ground, x, circuit.Ground, device.DefaultSwitchModel()))
	c.Add(device.NewResistor("Rx", c.Node("out"), x, 10))
	rc, info, err := reduce.Reduce(c, reduce.Options{Tol: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if rc != c || info != nil {
		t.Fatal("circuit with a Switch must not be reduced")
	}
}
