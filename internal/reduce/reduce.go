// Package reduce implements structure-exploiting parasitic reduction: a
// Build-time topological pass that shrinks the MNA system before symbolic
// analysis ever sees it. It scans the circuit for linear-only internal
// nodes — nodes touched solely by R/C/L devices, carrying no sources and no
// protected (probed) names — and applies two transforms:
//
//   - Series merges (exact): an internal node joining exactly two resistors
//     or exactly two inductors is suppressed and the pair replaced by one
//     equivalent device (R' = R1+R2, L' = L1+L2). The suppressed voltage is
//     an affine combination of the endpoint voltages at every instant, so
//     merged waveforms are reconstructible without error.
//
//   - Uniform RC-ladder lumping (error-budgeted): a maximal run of interior
//     ladder nodes (two resistors in the path plus a grounded capacitor,
//     uniform values) is re-sectioned to roughly ceil(sqrt(1/Tol)) lumped
//     spans: span resistances are summed exactly and suppressed node
//     capacitances are lumped onto the nearest retained node. This is the
//     classic distributed-line approximation whose waveform error shrinks
//     quadratically with the section count; Tol = 0 disables it entirely
//     (exact mode).
//
// The pass is split into a Plan (topology and grouping decisions, computed
// once per deck) and Apply (value computation plus circuit construction,
// run per parameter variant), so ensemble lanes share one plan and keep the
// structurally identical circuits the batch engine requires. Apply returns
// the original circuit untouched when nothing transforms, which is what
// guarantees bit-identical results for exact-mode runs on circuits with no
// reducible structure.
package reduce

import (
	"fmt"
	"math"
	"strings"

	"wavepipe/internal/circuit"
	"wavepipe/internal/device"
)

// Options configures a reduction plan.
type Options struct {
	// Tol is the waveform error budget for lossy transforms (RC-ladder
	// lumping). 0 selects exact mode: series merges only.
	Tol float64
	// Keep lists node names that must survive the pass (probes, recorded
	// nodes, .IC/.NODESET targets, deck .print references). An unknown name
	// fails with *UnknownNodeError.
	Keep []string
	// KeepDevices lists instance names (case-insensitive) whose terminals
	// must survive — the ensemble layer protects per-lane device overrides
	// this way. Names not present in the circuit are ignored here; the
	// ensemble front-end validates override names itself.
	KeepDevices []string
}

// UnknownNodeError is returned when Options.Keep names a node the circuit
// does not define: silently reducing away a node the caller meant to
// observe would be far worse than failing the run.
type UnknownNodeError struct {
	Node string
}

func (e *UnknownNodeError) Error() string {
	return fmt.Sprintf("reduce: keep list names unknown node %q", e.Node)
}

// Sections returns the lumped section count the error budget tol buys: the
// distributed-line approximation error of an s-section lumped ladder falls
// off as 1/s², so s = ceil(sqrt(1/tol)) keeps the waveform deviation near
// the budget. tol <= 0 returns 0 (lumping disabled).
func Sections(tol float64) int {
	if tol <= 0 {
		return 0
	}
	s := int(math.Ceil(math.Sqrt(1 / tol)))
	if s < 1 {
		s = 1
	}
	return s
}

// chain is one maximal series run of same-kind two-terminal devices
// (resistors or inductors) whose interior nodes are suppressed exactly.
type chain struct {
	kind     byte  // 'R' or 'L'
	devs     []int // device indices in path order, len = len(interior)+1
	interior []int // suppressed node indices in path order
	endA     int   // retained endpoint (node index or Ground)
	endB     int
}

// ladderRun is one maximal run of uniform RC-ladder interior nodes
// re-sectioned under the error budget.
type ladderRun struct {
	rDevs    []int // path resistors in order, len = len(interior)+1
	cDevs    []int // grounded capacitor of each interior node, len = len(interior)
	interior []int // interior node indices in path order
	endA     int   // anchors (node index or Ground)
	endB     int
	keepPos  []int // 0-based positions into interior that stay (sorted)
}

// Plan is the topology half of a reduction: which nodes are suppressed and
// how the surviving devices are grouped. A Plan is built once from a
// reference circuit and applied to every structurally identical variant.
type Plan struct {
	numNodes   int
	numDevices int
	tol        float64
	chains     []chain
	runs       []ladderRun
	removed    []bool // per original node
	removedDev []bool // per original device index
	empty      bool   // nothing transforms: Apply returns the input circuit
}

// Empty reports whether the plan performs no transformation (Apply will
// return the original circuit, guaranteeing bit-identical simulation).
func (p *Plan) Empty() bool { return p.empty }

// terminals lists the node indices a device touches (including pure sensing
// terminals — a sensed node must survive). ok is false for device types the
// pass cannot analyze, which disables reduction for the whole circuit.
func terminals(d circuit.Device) ([]int, bool) {
	switch t := d.(type) {
	case *device.Resistor:
		return []int{t.P, t.N}, true
	case *device.Capacitor:
		return []int{t.P, t.N}, true
	case *device.Inductor:
		return []int{t.P, t.N}, true
	case *device.VSource:
		return []int{t.P, t.N}, true
	case *device.ISource:
		return []int{t.P, t.N}, true
	case *device.VCVS:
		return []int{t.P, t.N, t.CP, t.CN}, true
	case *device.VCCS:
		return []int{t.P, t.N, t.CP, t.CN}, true
	case *device.Diode:
		return []int{t.P, t.N}, true
	case *device.MOSFET:
		return []int{t.D, t.G, t.S, t.B}, true
	case *device.MOSFETEKV:
		return []int{t.D, t.G, t.S, t.B}, true
	case *device.BJT:
		return []int{t.C, t.B, t.E}, true
	default:
		return nil, false
	}
}

// otherEnd returns the far terminal of a two-terminal device seen from n.
func otherEnd(d circuit.Device, n int) int {
	switch t := d.(type) {
	case *device.Resistor:
		if t.P == n {
			return t.N
		}
		return t.P
	case *device.Capacitor:
		if t.P == n {
			return t.N
		}
		return t.P
	case *device.Inductor:
		if t.P == n {
			return t.N
		}
		return t.P
	}
	return n
}

// node classification values.
const (
	plain  = iota // not a candidate
	seriesR       // exactly two resistors
	seriesL       // exactly two inductors
	ladder        // two path resistors plus a grounded capacitor
)

// New builds a reduction plan for c under opts. The plan is value-free
// apart from the ladder uniformity check, so it can be applied to every
// parameter variant of the same topology. An unknown Options.Keep name
// returns *UnknownNodeError; a circuit containing devices the pass cannot
// analyze (or clone) yields an empty plan, never an error.
func New(c *circuit.Circuit, opts Options) (*Plan, error) {
	numNodes := c.NumNodes()
	devs := c.Devices()
	p := &Plan{
		numNodes:   numNodes,
		numDevices: len(devs),
		tol:        opts.Tol,
		removed:    make([]bool, numNodes),
		removedDev: make([]bool, len(devs)),
	}

	protected := make([]bool, numNodes)
	for _, name := range opts.Keep {
		idx, ok := c.FindNode(name)
		if !ok {
			return nil, &UnknownNodeError{Node: name}
		}
		if idx != circuit.Ground {
			protected[idx] = true
		}
	}

	// Incidence: every terminal of every device, deduplicated per device.
	// Any device the pass cannot analyze or clone disables the whole plan —
	// Apply must be able to re-instantiate every surviving device.
	incident := make([][]int, numNodes)
	keepDev := make(map[string]bool, len(opts.KeepDevices))
	for _, n := range opts.KeepDevices {
		keepDev[strings.ToLower(n)] = true
	}
	for di, d := range devs {
		terms, ok := terminals(d)
		if !ok {
			p.empty = true
			return p, nil
		}
		if _, ok := d.(circuit.Renoder); !ok {
			p.empty = true
			return p, nil
		}
		prot := keepDev[strings.ToLower(d.Name())]
		seen := map[int]bool{}
		for _, t := range terms {
			if t == circuit.Ground || seen[t] {
				continue
			}
			seen[t] = true
			incident[t] = append(incident[t], di)
			if prot {
				protected[t] = true
			}
		}
	}

	// Classify nodes. A candidate node is touched only by the pattern's
	// devices, is not protected, and every path device leads somewhere else
	// (no self-loops).
	class := make([]int, numNodes)
	capOf := make([]int, numNodes) // ladder nodes: their grounded cap device
	for n := 0; n < numNodes; n++ {
		capOf[n] = -1
		if protected[n] {
			continue
		}
		inc := incident[n]
		switch len(inc) {
		case 2:
			r0, okR0 := devs[inc[0]].(*device.Resistor)
			r1, okR1 := devs[inc[1]].(*device.Resistor)
			if okR0 && okR1 && r0.P != r0.N && r1.P != r1.N {
				class[n] = seriesR
				continue
			}
			l0, okL0 := devs[inc[0]].(*device.Inductor)
			l1, okL1 := devs[inc[1]].(*device.Inductor)
			if okL0 && okL1 && l0.P != l0.N && l1.P != l1.N {
				class[n] = seriesL
			}
		case 3:
			var rs []int
			cdev := -1
			for _, di := range inc {
				switch t := devs[di].(type) {
				case *device.Resistor:
					if t.P != t.N {
						rs = append(rs, di)
					}
				case *device.Capacitor:
					if (t.P == n && t.N == circuit.Ground) || (t.N == n && t.P == circuit.Ground) {
						cdev = di
					}
				}
			}
			if len(rs) == 2 && cdev >= 0 {
				class[n] = ladder
				capOf[n] = cdev
			}
		}
	}

	// Demote ladder candidates that share a resistor with a series-R
	// candidate: the two transforms must never claim adjacent nodes, so
	// every chain endpoint and every run anchor is guaranteed retained.
	for n := 0; n < numNodes; n++ {
		if class[n] != seriesR {
			continue
		}
		for _, di := range incident[n] {
			if o := otherEnd(devs[di], n); o != circuit.Ground && o != n && class[o] == ladder {
				class[o] = plain
			}
		}
	}

	// pathDevs lists the devices a walk may step through from a candidate
	// node of the given class (the grounded cap of a ladder node is not a
	// path edge).
	pathDevs := func(n int) []int {
		if class[n] != ladder {
			return incident[n]
		}
		out := make([]int, 0, 2)
		for _, di := range incident[n] {
			if di != capOf[n] {
				out = append(out, di)
			}
		}
		return out
	}

	visited := make([]bool, numNodes)
	// walk collects the maximal candidate path through seed for nodes of
	// seed's class. ok is false for closed loops of candidates (a floating
	// ring — left untouched).
	walk := func(seed int) (interior, pdevs []int, endA, endB int, ok bool) {
		cls := class[seed]
		// Find the left endpoint.
		prevDev := pathDevs(seed)[0]
		cur := seed
		next := otherEnd(devs[prevDev], cur)
		for next != circuit.Ground && class[next] == cls && !visited[next] {
			if next == seed {
				return nil, nil, 0, 0, false // closed candidate loop
			}
			cur = next
			pd := pathDevs(cur)
			if pd[0] == prevDev {
				prevDev = pd[1]
			} else {
				prevDev = pd[0]
			}
			next = otherEnd(devs[prevDev], cur)
		}
		endA = next
		// Traverse from endA through the chain.
		d := prevDev
		node := cur
		for {
			interior = append(interior, node)
			pdevs = append(pdevs, d)
			pd := pathDevs(node)
			if pd[0] == d {
				d = pd[1]
			} else {
				d = pd[0]
			}
			nx := otherEnd(devs[d], node)
			if nx == circuit.Ground || class[nx] != cls {
				pdevs = append(pdevs, d)
				endB = nx
				return interior, pdevs, endA, endB, true
			}
			node = nx
		}
	}

	for n := 0; n < numNodes; n++ {
		if visited[n] || (class[n] != seriesR && class[n] != seriesL) {
			continue
		}
		interior, pdevs, endA, endB, ok := walk(n)
		for _, m := range interior {
			visited[m] = true
		}
		if !ok {
			continue
		}
		kind := byte('R')
		if class[n] == seriesL {
			kind = 'L'
		}
		p.chains = append(p.chains, chain{kind: kind, devs: pdevs, interior: interior, endA: endA, endB: endB})
		for _, m := range interior {
			p.removed[m] = true
		}
		for _, di := range pdevs {
			p.removedDev[di] = true
		}
	}

	sections := Sections(opts.Tol)
	if sections > 0 {
		for n := 0; n < numNodes; n++ {
			if visited[n] || class[n] != ladder {
				continue
			}
			interior, pdevs, endA, endB, ok := walk(n)
			for _, m := range interior {
				visited[m] = true
			}
			if !ok {
				continue
			}
			m := len(interior)
			if m < sections+1 {
				continue // too short: lumping would not shrink it
			}
			if !uniformRun(devs, pdevs, interior, capOf) {
				continue
			}
			run := ladderRun{
				rDevs: pdevs, interior: interior, endA: endA, endB: endB,
				cDevs: make([]int, m),
			}
			for i, nd := range interior {
				run.cDevs[i] = capOf[nd]
			}
			// Retained positions: sections-1 interior nodes at (near-)equal
			// path spacing; positions are 1..m between anchors 0 and m+1.
			keepSet := map[int]bool{}
			for j := 1; j < sections; j++ {
				q := int(math.Round(float64(j) * float64(m+1) / float64(sections)))
				if q < 1 {
					q = 1
				}
				if q > m {
					q = m
				}
				keepSet[q] = true
			}
			for q := 1; q <= m; q++ {
				if keepSet[q] {
					run.keepPos = append(run.keepPos, q-1)
				}
			}
			p.runs = append(p.runs, run)
			kept := make([]bool, m)
			for _, k := range run.keepPos {
				kept[k] = true
			}
			for i, nd := range interior {
				if !kept[i] {
					p.removed[nd] = true
					p.removedDev[run.cDevs[i]] = true
				}
			}
			for _, di := range pdevs {
				p.removedDev[di] = true
			}
		}
	}

	if len(p.chains) == 0 && len(p.runs) == 0 {
		p.empty = true
	}
	return p, nil
}

// uniformRun reports whether a ladder run's segment values are uniform
// enough to lump: all path resistors within 1e-6 relative of the first, all
// interior caps within 1e-6 relative of the first. The error-budget model
// assumes a uniform distributed line; nonuniform runs are left intact.
func uniformRun(devs []circuit.Device, rDevs, interior []int, capOf []int) bool {
	r0 := devs[rDevs[0]].(*device.Resistor).R
	for _, di := range rDevs[1:] {
		if relDiff(devs[di].(*device.Resistor).R, r0) > 1e-6 {
			return false
		}
	}
	c0 := devs[capOf[interior[0]]].(*device.Capacitor).C
	for _, nd := range interior[1:] {
		if relDiff(devs[capOf[nd]].(*device.Capacitor).C, c0) > 1e-6 {
			return false
		}
	}
	return true
}

func relDiff(a, b float64) float64 {
	m := math.Max(math.Abs(a), math.Abs(b))
	if m == 0 {
		return 0
	}
	return math.Abs(a-b) / m
}

// Reduce plans and applies in one step (the single-run path).
func Reduce(c *circuit.Circuit, opts Options) (*circuit.Circuit, *circuit.ReducedInfo, error) {
	p, err := New(c, opts)
	if err != nil {
		return nil, nil, err
	}
	return p.Apply(c)
}

// Apply instantiates the plan against c, which must be structurally
// identical to the circuit the plan was built from (ensemble lanes:
// different values, same topology). It returns the reduced circuit plus the
// expansion record; when the plan is empty it returns c itself with a nil
// record, so callers can keep the original compiled System and its
// bit-identical results.
func (p *Plan) Apply(c *circuit.Circuit) (*circuit.Circuit, *circuit.ReducedInfo, error) {
	if p.empty {
		return c, nil, nil
	}
	devs := c.Devices()
	if c.NumNodes() != p.numNodes || len(devs) != p.numDevices {
		return nil, nil, fmt.Errorf("reduce: circuit does not match plan (%d nodes/%d devices, plan has %d/%d)",
			c.NumNodes(), len(devs), p.numNodes, p.numDevices)
	}

	nc := circuit.New(c.Title)
	nodeMap := make([]int, p.numNodes)
	for o := 0; o < p.numNodes; o++ {
		if p.removed[o] {
			nodeMap[o] = -1
		} else {
			nodeMap[o] = nc.Node(c.NodeName(o))
		}
	}
	remap := func(i int) int {
		if i == circuit.Ground {
			return circuit.Ground
		}
		return nodeMap[i]
	}

	info := &circuit.ReducedInfo{
		OrigNodes: make([]string, p.numNodes),
		NodeMap:   nodeMap,
		Expansion: make([][]circuit.ExpandTerm, p.numNodes),
		Tol:       p.tol,
	}
	for o := 0; o < p.numNodes; o++ {
		info.OrigNodes[o] = c.NodeName(o)
		if p.removed[o] {
			info.RemovedNodes++
		}
	}

	// Group emission is anchored at each group's smallest device index so
	// the reduced device order tracks the original order deterministically.
	chainAt := map[int]*chain{}
	for i := range p.chains {
		chainAt[minOf(p.chains[i].devs)] = &p.chains[i]
	}
	runAt := map[int]*ladderRun{}
	for i := range p.runs {
		key := minOf(p.runs[i].rDevs)
		for i2 := range p.runs[i].cDevs {
			if !p.removedDev[p.runs[i].cDevs[i2]] {
				continue
			}
			if p.runs[i].cDevs[i2] < key {
				key = p.runs[i].cDevs[i2]
			}
		}
		runAt[key] = &p.runs[i]
	}

	for i, d := range devs {
		if !p.removedDev[i] {
			rn, ok := d.(circuit.Renoder)
			if !ok {
				return nil, nil, fmt.Errorf("reduce: device %q (%T) cannot be re-instantiated", d.Name(), d)
			}
			nc.Add(rn.Renoded(remap))
			continue
		}
		if ch, ok := chainAt[i]; ok {
			if err := emitChain(nc, devs, ch, remap, info); err != nil {
				return nil, nil, err
			}
		}
		if rn, ok := runAt[i]; ok {
			if err := emitRun(nc, devs, rn, remap, info); err != nil {
				return nil, nil, err
			}
		}
	}
	info.RemovedDevices = len(devs) - len(nc.Devices())
	return nc, info, nil
}

func minOf(a []int) int {
	m := a[0]
	for _, v := range a[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// affineTerms builds the two-anchor expansion for a suppressed node with
// interpolation weight w toward endB (ground anchors contribute zero and
// are dropped).
func affineTerms(remap func(int) int, endA, endB int, w float64) []circuit.ExpandTerm {
	var terms []circuit.ExpandTerm
	if endA != circuit.Ground {
		terms = append(terms, circuit.ExpandTerm{Node: remap(endA), W: 1 - w})
	}
	if endB != circuit.Ground {
		terms = append(terms, circuit.ExpandTerm{Node: remap(endB), W: w})
	}
	if terms == nil {
		terms = []circuit.ExpandTerm{}
	}
	return terms
}

// emitChain adds the merged series device and records the exact expansion
// of each suppressed interior node (the resistive/inductive divider).
func emitChain(nc *circuit.Circuit, devs []circuit.Device, ch *chain, remap func(int) int, info *circuit.ReducedInfo) error {
	vals := make([]float64, len(ch.devs))
	total := 0.0
	for i, di := range ch.devs {
		switch t := devs[di].(type) {
		case *device.Resistor:
			if ch.kind != 'R' {
				return fmt.Errorf("reduce: plan mismatch: %q is a resistor in an inductor chain", t.Name())
			}
			vals[i] = t.R
		case *device.Inductor:
			if ch.kind != 'L' {
				return fmt.Errorf("reduce: plan mismatch: %q is an inductor in a resistor chain", t.Name())
			}
			vals[i] = t.L
		default:
			return fmt.Errorf("reduce: plan mismatch: %q (%T) in series chain", devs[di].Name(), devs[di])
		}
		total += vals[i]
	}
	name := devs[ch.devs[0]].Name()
	a, b := remap(ch.endA), remap(ch.endB)
	if ch.kind == 'R' {
		nc.Add(device.NewResistor(name, a, b, total))
	} else {
		nc.Add(device.NewInductor(name, a, b, total))
	}
	cum := 0.0
	for i, nd := range ch.interior {
		cum += vals[i]
		w := 0.5
		if total != 0 {
			w = cum / total
		}
		info.Expansion[nd] = affineTerms(remap, ch.endA, ch.endB, w)
	}
	return nil
}

// emitRun adds the lumped span resistors and nearest-anchor capacitors of a
// ladder run and records the resistive-interpolation expansion of each
// suppressed interior node.
func emitRun(nc *circuit.Circuit, devs []circuit.Device, run *ladderRun, remap func(int) int, info *circuit.ReducedInfo) error {
	m := len(run.interior)
	rvals := make([]float64, len(run.rDevs))
	for i, di := range run.rDevs {
		t, ok := devs[di].(*device.Resistor)
		if !ok {
			return fmt.Errorf("reduce: plan mismatch: %q (%T) in ladder run", devs[di].Name(), devs[di])
		}
		rvals[i] = t.R
	}
	cvals := make([]float64, m)
	for i, di := range run.cDevs {
		t, ok := devs[di].(*device.Capacitor)
		if !ok {
			return fmt.Errorf("reduce: plan mismatch: %q (%T) as ladder capacitor", devs[di].Name(), devs[di])
		}
		cvals[i] = t.C
	}

	// Anchor positions along the path: 0 = endA, m+1 = endB, interiors at
	// 1..m; rvals[i] joins position i to i+1.
	anchors := []int{0}
	for _, k := range run.keepPos {
		anchors = append(anchors, k+1)
	}
	anchors = append(anchors, m+1)
	nodeAt := func(pos int) int {
		switch pos {
		case 0:
			return run.endA
		case m + 1:
			return run.endB
		default:
			return run.interior[pos-1]
		}
	}

	// Span resistors: exact sums between consecutive anchors.
	for j := 0; j+1 < len(anchors); j++ {
		lo, hi := anchors[j], anchors[j+1]
		sum := 0.0
		for i := lo; i < hi; i++ {
			sum += rvals[i]
		}
		name := devs[run.rDevs[lo]].Name()
		nc.Add(device.NewResistor(name, remap(nodeAt(lo)), remap(nodeAt(hi)), sum))
	}

	kept := make([]bool, m)
	for _, k := range run.keepPos {
		kept[k] = true
	}

	// Suppressed caps lump onto the nearest anchor (ties go left); anchors
	// that are Ground absorb nothing, so their share shifts to the opposite
	// anchor of the span to conserve total capacitance.
	addCap := map[int]float64{}  // anchor pos -> added C
	capName := map[int]string{}  // anchor pos -> name of first contributor
	for q := 1; q <= m; q++ {
		if kept[q-1] {
			continue
		}
		// Locate the enclosing span.
		j := 0
		for ; j+1 < len(anchors); j++ {
			if anchors[j] < q && q < anchors[j+1] {
				break
			}
		}
		lo, hi := anchors[j], anchors[j+1]
		target := lo
		if q-lo > hi-q {
			target = hi
		}
		if nodeAt(target) == circuit.Ground {
			if target == lo {
				target = hi
			} else {
				target = lo
			}
		}
		if nodeAt(target) == circuit.Ground {
			continue // both anchors grounded: the cap has nowhere to live
		}
		addCap[target] += cvals[q-1]
		if _, ok := capName[target]; !ok {
			capName[target] = devs[run.cDevs[q-1]].Name()
		}

		// Expansion: resistive interpolation between the span anchors.
		cum := 0.0
		for i := lo; i < q; i++ {
			cum += rvals[i]
		}
		tot := 0.0
		for i := lo; i < hi; i++ {
			tot += rvals[i]
		}
		w := 0.5
		if tot != 0 {
			w = cum / tot
		}
		info.Expansion[run.interior[q-1]] = affineTerms(remap, nodeAt(lo), nodeAt(hi), w)
	}
	// Emit lumped caps in ascending anchor order for determinism.
	for _, pos := range anchors {
		if cv, ok := addCap[pos]; ok {
			nc.Add(device.NewCapacitor(capName[pos], remap(nodeAt(pos)), circuit.Ground, cv))
		}
	}
	return nil
}
