// Package ac implements small-signal frequency-domain analysis (SPICE
// .AC): the circuit is linearized at its DC operating point into separate
// conductance (G) and capacitance (C) matrices, and the complex system
// (G + jωC)·x = b is solved over a frequency sweep. The complex LU
// factorization is refactorized per frequency on the fixed pattern.
package ac

import (
	"fmt"
	"math"
	"math/cmplx"

	"wavepipe/internal/circuit"
	"wavepipe/internal/dcop"
	"wavepipe/internal/sparse"
	"wavepipe/internal/transient"
)

// Sweep selects the frequency grid.
type Sweep int

// Sweep kinds, matching SPICE's .AC variants.
const (
	Dec Sweep = iota // logarithmic, Points per decade
	Oct              // logarithmic, Points per octave
	Lin              // linear, Points total
)

// Options configures an AC analysis.
type Options struct {
	Sweep  Sweep
	Points int     // per decade/octave (Dec/Oct) or total (Lin)
	FStart float64 // Hz, > 0
	FStop  float64 // Hz, >= FStart
	// Record lists solution-vector indices to store (nil = all nodes).
	Record []int
	// DCOp configures the operating-point search.
	DCOp dcop.Options
	// Gmin is the junction shunt used at the operating point.
	Gmin float64
}

// Result holds the complex response at each recorded signal and frequency.
type Result struct {
	Freqs []float64
	Names []string
	Index []int
	Data  [][]complex128 // Data[k][j]: signal j at Freqs[k]
	OP    []float64      // the operating point the linearization used
}

// SignalIndex returns the column of the named signal, or -1.
func (r *Result) SignalIndex(name string) int {
	for j, n := range r.Names {
		if n == name {
			return j
		}
	}
	return -1
}

// Signal returns the complex response column of the named signal.
func (r *Result) Signal(name string) ([]complex128, error) {
	j := r.SignalIndex(name)
	if j < 0 {
		return nil, fmt.Errorf("ac: no signal %q", name)
	}
	out := make([]complex128, len(r.Data))
	for k, row := range r.Data {
		out[k] = row[j]
	}
	return out, nil
}

// MagDB returns 20·log10 |H| of the named signal per frequency.
func (r *Result) MagDB(name string) ([]float64, error) {
	sig, err := r.Signal(name)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(sig))
	for i, v := range sig {
		out[i] = 20 * math.Log10(cmplx.Abs(v))
	}
	return out, nil
}

// PhaseDeg returns the phase of the named signal in degrees per frequency.
func (r *Result) PhaseDeg(name string) ([]float64, error) {
	sig, err := r.Signal(name)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(sig))
	for i, v := range sig {
		out[i] = cmplx.Phase(v) * 180 / math.Pi
	}
	return out, nil
}

// Frequencies expands the sweep specification into the frequency grid.
func (o Options) Frequencies() ([]float64, error) {
	if o.FStart <= 0 || o.FStop < o.FStart {
		return nil, fmt.Errorf("ac: invalid frequency range [%g, %g]", o.FStart, o.FStop)
	}
	if o.Points <= 0 {
		return nil, fmt.Errorf("ac: Points must be positive")
	}
	var out []float64
	switch o.Sweep {
	case Lin:
		if o.Points == 1 || o.FStop == o.FStart {
			return []float64{o.FStart}, nil
		}
		step := (o.FStop - o.FStart) / float64(o.Points-1)
		for i := 0; i < o.Points; i++ {
			out = append(out, o.FStart+float64(i)*step)
		}
	default:
		base := 10.0
		if o.Sweep == Oct {
			base = 2
		}
		ratio := math.Pow(base, 1/float64(o.Points))
		for f := o.FStart; f < o.FStop*(1+1e-9); f *= ratio {
			out = append(out, f)
		}
		if last := out[len(out)-1]; last < o.FStop*(1-1e-9) {
			out = append(out, o.FStop)
		}
	}
	return out, nil
}

// Run computes the small-signal response of sys.
func Run(sys *circuit.System, opts Options) (*Result, error) {
	freqs, err := opts.Frequencies()
	if err != nil {
		return nil, err
	}
	if opts.Gmin <= 0 {
		opts.Gmin = 1e-12
	}
	if opts.DCOp.GminSteps == 0 {
		opts.DCOp = dcop.DefaultOptions()
	}

	// 1. Operating point.
	ws := sys.NewWorkspace()
	op := make([]float64, sys.N)
	if _, err := dcop.Solve(ws, op, opts.DCOp); err != nil {
		return nil, fmt.Errorf("ac: operating point: %w", err)
	}

	// 2. Split linearization at the OP: G into ws.M, C into ws.MC.
	ws.LoadSplit(op, circuit.LoadParams{Gmin: opts.Gmin, SrcScale: 1})

	// 3. Stimulus vector from the AC source specifications.
	b := make([]complex128, sys.N)
	for _, d := range sys.Circuit.Devices() {
		if src, ok := d.(circuit.ACSource); ok {
			src.StampAC(b)
		}
	}

	// 4. Sweep: factorize once, refactorize per frequency.
	cm := sparse.NewComplexFromPattern(ws.M)
	order := sparse.ComputeOrdering(ws.M, sparse.OrderMinDegree)
	res := &Result{Freqs: freqs, OP: op}
	res.Names, res.Index = recordList(sys, opts.Record)

	var lu *sparse.ComplexLU
	x := make([]complex128, sys.N)
	for _, f := range freqs {
		omega := 2 * math.Pi * f
		cm.Fill(ws.M, ws.MC, omega)
		if lu == nil {
			lu, err = sparse.FactorizeComplex(cm, order, sparse.DefaultPivotTolerance)
		} else if rerr := lu.Refactor(cm); rerr != nil {
			lu, err = sparse.FactorizeComplex(cm, order, sparse.DefaultPivotTolerance)
		}
		if err != nil {
			return nil, fmt.Errorf("ac: f=%g: %w", f, err)
		}
		lu.Solve(b, x)
		row := make([]complex128, len(res.Index))
		for j, idx := range res.Index {
			row[j] = x[idx]
		}
		res.Data = append(res.Data, row)
	}
	return res, nil
}

func recordList(sys *circuit.System, record []int) ([]string, []int) {
	if record == nil {
		names, idx := transient.DefaultRecord(sys)
		return names, idx
	}
	names := make([]string, len(record))
	for i, idx := range record {
		if idx < sys.NumNodes {
			names[i] = sys.Circuit.NodeName(idx)
		} else {
			names[i] = fmt.Sprintf("branch%d", idx-sys.NumNodes)
		}
	}
	return names, record
}
