package ac

import (
	"math"
	"math/cmplx"
	"testing"

	"wavepipe/internal/circuit"
	"wavepipe/internal/device"
)

func rcSystem(t *testing.T, r, c float64) *circuit.System {
	t.Helper()
	ckt := circuit.New("rc")
	in := ckt.Node("in")
	out := ckt.Node("out")
	src := device.NewVSource("V1", in, circuit.Ground, device.DC(0))
	src.ACMag = 1
	ckt.Add(src)
	ckt.Add(device.NewResistor("R1", in, out, r))
	ckt.Add(device.NewCapacitor("C1", out, circuit.Ground, c))
	sys, err := ckt.Build()
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// The canonical AC check: a first-order RC low-pass must match
// H(jω) = 1/(1 + jωRC) in magnitude and phase across the sweep.
func TestRCLowPassTransferFunction(t *testing.T) {
	r, c := 1e3, 1e-9 // fc ≈ 159 kHz
	sys := rcSystem(t, r, c)
	res, err := Run(sys, Options{Sweep: Dec, Points: 10, FStart: 1e3, FStop: 1e8})
	if err != nil {
		t.Fatal(err)
	}
	sig, err := res.Signal("out")
	if err != nil {
		t.Fatal(err)
	}
	for k, f := range res.Freqs {
		want := 1 / complex(1, 2*math.Pi*f*r*c)
		if cmplx.Abs(sig[k]-want) > 1e-9*cmplx.Abs(want) {
			t.Fatalf("f=%g: H=%v, want %v", f, sig[k], want)
		}
	}
	// −3 dB point sits at fc.
	fc := 1 / (2 * math.Pi * r * c)
	resAt, err := Run(sys, Options{Sweep: Lin, Points: 1, FStart: fc, FStop: fc})
	if err != nil {
		t.Fatal(err)
	}
	db, _ := resAt.MagDB("out")
	if math.Abs(db[0]-(-3.0103)) > 0.01 {
		t.Fatalf("at fc: %g dB, want −3.01", db[0])
	}
	ph, _ := resAt.PhaseDeg("out")
	if math.Abs(ph[0]-(-45)) > 0.01 {
		t.Fatalf("at fc: %g°, want −45", ph[0])
	}
}

// RLC series resonance: the capacitor voltage peaks at f0 = 1/(2π√(LC))
// with Q = (1/R)·√(L/C).
func TestRLCResonance(t *testing.T) {
	ckt := circuit.New("rlc")
	in := ckt.Node("in")
	mid := ckt.Node("mid")
	out := ckt.Node("out")
	src := device.NewVSource("V1", in, circuit.Ground, device.DC(0))
	src.ACMag = 1
	ckt.Add(src)
	ckt.Add(device.NewResistor("R1", in, mid, 10))
	ckt.Add(device.NewInductor("L1", mid, out, 1e-3))
	ckt.Add(device.NewCapacitor("C1", out, circuit.Ground, 1e-9))
	sys, err := ckt.Build()
	if err != nil {
		t.Fatal(err)
	}
	f0 := 1 / (2 * math.Pi * math.Sqrt(1e-3*1e-9))
	res, err := Run(sys, Options{Sweep: Lin, Points: 1, FStart: f0, FStop: f0})
	if err != nil {
		t.Fatal(err)
	}
	sig, _ := res.Signal("out")
	q := math.Sqrt(1e-3/1e-9) / 10
	if math.Abs(cmplx.Abs(sig[0])-q) > 0.01*q {
		t.Fatalf("|H(f0)| = %g, want Q = %g", cmplx.Abs(sig[0]), q)
	}
}

// Small-signal gain of the common-source amplifier must equal −gm·Rd with
// gm taken from the Level-1 model at the operating point.
func TestCSAmplifierGainAC(t *testing.T) {
	ckt := circuit.New("cs")
	vdd := ckt.Node("vdd")
	in := ckt.Node("in")
	out := ckt.Node("out")
	ckt.Add(device.NewVSource("VDD", vdd, circuit.Ground, device.DC(3)))
	src := device.NewVSource("VIN", in, circuit.Ground, device.DC(0.9))
	src.ACMag = 1
	ckt.Add(src)
	model := device.DefaultMOSModel(device.NMOS)
	model.LAMBDA = 0
	ckt.Add(device.NewMOSFET("M1", out, in, circuit.Ground, circuit.Ground, model, 20e-6, 1e-6))
	ckt.Add(device.NewResistor("RD", vdd, out, 10e3))
	sys, err := ckt.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(sys, Options{Sweep: Lin, Points: 1, FStart: 1e3, FStop: 1e3})
	if err != nil {
		t.Fatal(err)
	}
	sig, _ := res.Signal("out")
	// gm = KP·W/L·(vgs − vth) in saturation (vgst = 0.2 keeps the OP there).
	gm := 110e-6 * 20 * (0.9 - 0.7)
	wantGain := gm * 10e3
	if math.Abs(cmplx.Abs(sig[0])-wantGain) > 0.02*wantGain {
		t.Fatalf("|gain| = %g, want %g", cmplx.Abs(sig[0]), wantGain)
	}
	ph, _ := res.PhaseDeg("out")
	if math.Abs(math.Abs(ph[0])-180) > 1 {
		t.Fatalf("phase = %g°, want ±180 (inverting)", ph[0])
	}
}

func TestFrequencyGrids(t *testing.T) {
	fs, err := (Options{Sweep: Dec, Points: 2, FStart: 1, FStop: 100}).Frequencies()
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 5 || math.Abs(fs[1]-math.Sqrt(10)) > 1e-9 || math.Abs(fs[4]-100) > 1e-9 {
		t.Fatalf("dec grid = %v", fs)
	}
	fs, err = (Options{Sweep: Oct, Points: 1, FStart: 1, FStop: 8}).Frequencies()
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 4 || math.Abs(fs[3]-8) > 1e-8 {
		t.Fatalf("oct grid = %v", fs)
	}
	fs, err = (Options{Sweep: Lin, Points: 5, FStart: 10, FStop: 50}).Frequencies()
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 5 || fs[0] != 10 || fs[4] != 50 {
		t.Fatalf("lin grid = %v", fs)
	}
	if _, err := (Options{Sweep: Lin, Points: 0, FStart: 1, FStop: 2}).Frequencies(); err == nil {
		t.Fatal("zero points must fail")
	}
	if _, err := (Options{Sweep: Dec, Points: 5, FStart: 0, FStop: 2}).Frequencies(); err == nil {
		t.Fatal("zero start must fail")
	}
	if _, err := (Options{Sweep: Dec, Points: 5, FStart: 10, FStop: 2}).Frequencies(); err == nil {
		t.Fatal("inverted range must fail")
	}
}

func TestResultAccessors(t *testing.T) {
	sys := rcSystem(t, 1e3, 1e-9)
	res, err := Run(sys, Options{Sweep: Dec, Points: 2, FStart: 1e3, FStop: 1e4})
	if err != nil {
		t.Fatal(err)
	}
	if res.SignalIndex("out") < 0 || res.SignalIndex("zzz") != -1 {
		t.Fatal("SignalIndex")
	}
	if _, err := res.Signal("zzz"); err == nil {
		t.Fatal("unknown signal must error")
	}
	if _, err := res.MagDB("zzz"); err == nil {
		t.Fatal("MagDB unknown signal")
	}
	if _, err := res.PhaseDeg("zzz"); err == nil {
		t.Fatal("PhaseDeg unknown signal")
	}
	if len(res.OP) != sys.N {
		t.Fatal("missing OP")
	}
}

func TestExplicitRecordList(t *testing.T) {
	sys := rcSystem(t, 1e3, 1e-9)
	res, err := Run(sys, Options{Sweep: Lin, Points: 2, FStart: 1e3, FStop: 2e3, Record: []int{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Names) != 2 || res.Names[0] != "out" || res.Names[1] != "branch0" {
		t.Fatalf("record names = %v", res.Names)
	}
}

// The EKV model's split G/C assembly must give the textbook gm·Rd gain in
// strong inversion (asymptotically gm = sqrt(2·n·β·Id)/n... checked
// numerically against a finite-difference gm at the operating point).
func TestEKVAmplifierGainAC(t *testing.T) {
	build := func(vg float64) *circuit.System {
		ckt := circuit.New("ekvamp")
		vdd := ckt.Node("vdd")
		in := ckt.Node("in")
		out := ckt.Node("out")
		ckt.Add(device.NewVSource("VDD", vdd, circuit.Ground, device.DC(3)))
		src := device.NewVSource("VIN", in, circuit.Ground, device.DC(vg))
		src.ACMag = 1
		ckt.Add(src)
		model := device.DefaultEKVModel(device.NMOS)
		model.LAMBDA = 0
		ckt.Add(device.NewMOSFETEKV("M1", out, in, circuit.Ground, circuit.Ground, model, 20e-6, 1e-6))
		ckt.Add(device.NewResistor("RD", vdd, out, 10e3))
		sys, err := ckt.Build()
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}
	vg := 0.75
	res, err := Run(build(vg), Options{Sweep: Lin, Points: 1, FStart: 1e3, FStop: 1e3})
	if err != nil {
		t.Fatal(err)
	}
	sig, _ := res.Signal("out")
	gain := cmplx.Abs(sig[0])

	// Finite-difference gm from two operating points.
	opOut := func(v float64) float64 {
		r, err := Run(build(v), Options{Sweep: Lin, Points: 1, FStart: 1e3, FStop: 1e3})
		if err != nil {
			t.Fatal(err)
		}
		return r.OP[res.SignalIndex("out")]
	}
	dv := 1e-4
	fdGain := -(opOut(vg+dv) - opOut(vg-dv)) / (2 * dv)
	if math.Abs(gain-fdGain) > 0.02*fdGain {
		t.Fatalf("AC gain %g vs finite-difference %g", gain, fdGain)
	}
}
