// Package windows implements time-parallel transient simulation: a
// pipelined Parareal coordinator layered over the existing serial and
// WavePipe engines (Ruprecht, arXiv 1509.06935).
//
// WavePipe's pipelined time-stepping saturates at 3-4 threads by
// construction, so cores beyond that are idle for a single run. The window
// coordinator soaks them up along the time axis: a cheap coarse propagator
// (large fixed steps, loosened Newton tolerance, aggressive device bypass)
// sweeps [0, TStop] once and hands each of W windows a seed state in the
// PR-6 checkpoint format; every window is then refined concurrently by an
// ordinary fine engine resumed from its seed. Window w's fine solution is
// speculative until window w-1 has converged: the coordinator compares the
// coarse seed against the exact predecessor end state under the fine
// tolerances, and either accepts the speculative solve (gate passed) or
// redoes the window from the exact state (one pipelined Parareal
// correction). Because window w+1 only waits for window w's *convergence*,
// corrections propagate without a global iteration barrier.
//
// Guarantees and containment mirror the FWP discard/redo logic:
//
//   - The convergence gate is a weighted max-norm under the fine
//     tolerances, so an accepted speculative window differs from the exact
//     chain by at most Gate error weights at the seam — the same currency
//     the LTE controller budgets per step.
//   - Under the strict gate no speculative window is ever accepted: the
//     run degenerates to the sequential window chain (bit-identical to
//     handing the final checkpoint of each window to the next).
//   - When consecutive windows fail to contract the coordinator stops
//     speculating (serial fallback): remaining windows wait for their
//     predecessor and run once from the exact state, costing at most the
//     serial run plus the wasted speculation.
//
// Core accounting goes through sched.SplitBudget: at most wconc windows
// run at once, each inner engine granted CoreBudget/wconc cores, so
// windows × pipeline × intra-point parallelism never oversubscribes.
package windows

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"wavepipe/internal/checkpoint"
	"wavepipe/internal/circuit"
	"wavepipe/internal/integrate"
	"wavepipe/internal/newton"
	"wavepipe/internal/num"
	"wavepipe/internal/sched"
	"wavepipe/internal/trace"
	"wavepipe/internal/transient"
	"wavepipe/internal/waveform"
)

// Defaults for CoarseOptions and Options.
const (
	DefaultSteps         = 16 // coarse fixed steps per window
	DefaultTolScale      = 8  // coarse Newton-tolerance loosening factor
	DefaultGate          = 2  // convergence gate in fine error weights
	DefaultFallbackAfter = 2  // consecutive redos before serial fallback
)

// Floors for the coarse propagator's aggressive bypass settings.
const (
	coarseBypassTol       = 0.05
	coarseDeviceBypassTol = 1e-2
)

// CoarseOptions tunes the Parareal coarse propagator and the per-window
// convergence gate. The zero value selects the defaults.
type CoarseOptions struct {
	// Steps is the number of fixed coarse steps per window (default 16).
	// The coarse propagator integrates with NoLTE at h = windowLen/Steps,
	// still landing on device breakpoints, so its cost is roughly
	// W·Steps point solves regardless of the fine step density.
	Steps int
	// TolScale loosens the coarse Newton tolerances by this factor
	// (default 8). Coarse accuracy only has to be good enough to pass the
	// gate, not to ship: accepted waveforms always come from fine solves.
	TolScale float64
	// Gate is the per-window convergence threshold in fine error weights
	// (default 2): a speculative window is accepted when the weighted
	// max-norm of (coarse seed − exact predecessor end state) under the
	// fine tolerances is ≤ Gate. The default keeps accepted seams within
	// the same order of error the LTE controller already tolerates per
	// step; raising it trades waveform accuracy for fewer redos.
	Gate float64
	// Strict never accepts a speculative window: every window is solved
	// from its exact predecessor state, making the result bit-identical
	// to the sequential window chain. Intended for verification.
	Strict bool
}

func (c CoarseOptions) withDefaults() CoarseOptions {
	if c.Steps <= 0 {
		c.Steps = DefaultSteps
	}
	if c.TolScale <= 0 {
		c.TolScale = DefaultTolScale
	}
	if c.Gate <= 0 {
		c.Gate = DefaultGate
	}
	return c
}

// Options configures a time-parallel run.
type Options struct {
	// W is the number of time windows (≥ 2; 1 falls through to Fine).
	W int
	// Coarse tunes the coarse propagator and convergence gate.
	Coarse CoarseOptions
	// Base is the fine analysis configuration for the full run: TStop is
	// the full horizon; Control, when zero, is defaulted from it so inner
	// runs never re-derive step bounds from window-local horizons.
	Base transient.Options
	// ThreadsPerWindow is the core cost of one fine engine instance (its
	// pipeline width; 1 for the serial engine). It is the gang width the
	// core budget is split by.
	ThreadsPerWindow int
	// CoreBudget caps total concurrent cores across all windows plus the
	// coarse sweep. 0 leaves concurrency unmanaged (all W windows may
	// run at once).
	CoreBudget int
	// FallbackAfter is the consecutive-redo streak that triggers serial
	// fallback (default 2).
	FallbackAfter int
	// Fine runs one fine solve over a fully-prepared window-local options
	// value (TStop, Resume, Guard, CoreBudget set by the coordinator).
	// The facade injects its scheme dispatch here; nil defaults to the
	// serial engine.
	Fine func(transient.Options) (*transient.Result, error)
}

// winRec is one window's outcome, written only by that window's worker.
type winRec struct {
	specRes *transient.Result // speculative attempt (window 0: the exact run)
	redoRes *transient.Result // exact-seeded attempt (gate fail or strict)
	gateOK  bool              // speculative solve accepted
	res     *transient.Result // the accepted (or last attempted) result
	end     *checkpoint.State // exact end state handed to the successor
	err     error
}

// winState is what a window publishes to its successor.
type winState struct {
	state *checkpoint.State
	err   error
}

type runner struct {
	sys    *circuit.System
	opts   Options
	base   transient.Options
	coarse CoarseOptions
	tb     []float64 // W+1 window boundaries, tb[0]=0, tb[W]=TStop
	bps    []float64 // sorted device breakpoints over [0, TStop]
	tr     *trace.Tracer
	tol    num.Tolerances // fine tolerances the gate is judged under
	fbAft  int

	wconc       int
	innerBudget int
	slots       chan struct{}
	budget      *sched.Budget

	fallback   atomic.Bool
	redoStreak atomic.Int32
	fineSolves atomic.Int64
	redoCount  atomic.Int64

	recs       []winRec
	seedCh     []chan *checkpoint.State
	convCh     []chan *winState
	coarseRes  []*transient.Result
	coarseErr  error
	coarseSkip bool

	statsMu sync.Mutex
	stats   transient.Stats
}

// Run executes a time-parallel transient analysis over sys and stitches
// the per-window results into one Result whose Stats aggregate every inner
// engine run (coarse segments, speculative solves and redos), so a shared
// trace stream still reconciles 1:1 against the counters. On failure the
// converged window prefix is returned alongside the error.
func Run(sys *circuit.System, opts Options) (*transient.Result, error) {
	if opts.Fine == nil {
		opts.Fine = func(o transient.Options) (*transient.Result, error) {
			return transient.Run(sys, o)
		}
	}
	if opts.W < 2 {
		return opts.Fine(opts.Base)
	}
	base := opts.Base
	if base.TStop <= 0 {
		return nil, fmt.Errorf("windows: TStop must be positive, got %g", base.TStop)
	}
	if base.Control == (integrate.Control{}) {
		base.Control = integrate.DefaultControl(base.TStop)
	}
	if base.HInit <= 0 {
		// The engines default HInit (and the RestartStep floor) from their
		// own TStop; pin it from the full horizon so an inner run over a
		// short window takes the same first step the serial engine would.
		base.HInit = base.TStop * 1e-6
	}
	base.OnAccept = nil // replayed over the stitched waveform at the end

	bps := transient.CollectBreakpoints(sys, base.TStop)
	tb := planBoundaries(base.TStop, opts.W, bps)
	if len(tb) < 3 {
		// No usable cut point: the circuit offers nowhere to split time
		// without losing accuracy. Degenerate to the plain engine (window
		// counters stay zero — no time-parallel window was launched).
		return opts.Fine(base)
	}
	W := len(tb) - 1
	opts.W = W
	r := &runner{
		sys:    sys,
		opts:   opts,
		base:   base,
		coarse: opts.Coarse.withDefaults(),
		tb:     tb,
		bps:    bps,
		tr:     base.Trace,
		tol:    base.Control.Tol,
		fbAft:  opts.FallbackAfter,
		recs:   make([]winRec, W),
		seedCh: make([]chan *checkpoint.State, W),
		convCh: make([]chan *winState, W),
	}
	if r.fbAft <= 0 {
		r.fbAft = DefaultFallbackAfter
	}
	perWindow := opts.ThreadsPerWindow
	if perWindow < 1 {
		perWindow = 1
	}
	r.wconc, r.innerBudget = sched.SplitBudget(opts.CoreBudget, perWindow, W)
	r.slots = make(chan struct{}, r.wconc)
	r.budget = sched.NewBudget(opts.CoreBudget)
	for w := 0; w < W; w++ {
		r.seedCh[w] = make(chan *checkpoint.State, 1)
		r.convCh[w] = make(chan *winState, 1)
	}
	// Under the strict gate every window restarts from its exact
	// predecessor anyway, so coarse seeds would be dead work.
	r.coarseSkip = r.coarse.Strict

	var wg sync.WaitGroup
	if !r.coarseSkip {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.coarseSweep()
		}()
	}
	for w := 0; w < W; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r.worker(w)
		}(w)
	}
	wg.Wait()
	return r.assemble()
}

// acquire claims one of the wconc concurrency slots and reserves the
// per-window share of the global core budget.
func (r *runner) acquire() {
	r.slots <- struct{}{}
	r.budget.Reserve(r.innerBudget)
}

func (r *runner) release() {
	r.budget.Release(r.innerBudget)
	<-r.slots
}

func (r *runner) emit(kind trace.Kind, w int, t float64) {
	if !r.tr.Active() {
		return
	}
	r.tr.Emit(trace.Event{
		Kind:   kind,
		T:      t,
		H:      r.tb[w+1] - r.tb[w],
		Stage:  int32(w),
		Worker: -1,
	})
}

// planBoundaries places the window boundaries for a requested window count.
// The engines truncate integrator history and restart first-order at every
// breakpoint landing — including the artificial landing a window boundary
// forces — so boundary placement decides the accuracy of the whole scheme:
//
//   - Each uniform-grid target snaps to the nearest device waveform
//     breakpoint within half a window. The serial engine restarts there
//     anyway, so the window chain reproduces its exact step sequence and
//     the sequential chain is bit-identical to the serial run.
//   - On a circuit whose waveforms have edges (interior breakpoints exist),
//     a target with no breakpoint nearby is dropped and its two windows
//     merge: cutting mid-edge on switching waveforms shifts edge timing by
//     more than any seam tolerance is worth. The effective window count
//     can therefore be smaller than requested.
//   - On a smooth circuit (no interior breakpoints at all — sinusoidal or
//     DC drive), targets stay on the uniform grid: the engines keep
//     full-order history at a plain-horizon landing, so the continuation
//     costs one LTE-bounded step perturbation, not a restart transient.
//
// The returned slice holds the kept boundaries: tb[0] = 0, tb[last] =
// tstop. len(tb) < 3 means time cannot be usefully split.
func planBoundaries(tstop float64, W int, bps []float64) []float64 {
	winLen := tstop / float64(W)
	interior := false
	for _, bp := range bps {
		if bp < tstop*(1-1e-9) {
			interior = true
			break
		}
	}
	tb := make([]float64, 1, W+1)
	for k := 1; k < W; k++ {
		target := tstop * float64(k) / float64(W)
		best := -1.0
		for _, bp := range bps {
			if bp <= tb[len(tb)-1]+winLen/8 || bp >= tstop-winLen/8 {
				continue
			}
			if bp < target-winLen/2 || bp > target+winLen/2 {
				continue
			}
			if best < 0 || math.Abs(bp-target) < math.Abs(best-target) {
				best = bp
			}
		}
		switch {
		case best > 0:
			tb = append(tb, best)
		case !interior && target > tb[len(tb)-1]+winLen/8:
			tb = append(tb, target)
		}
	}
	return append(tb, tstop)
}

// restartH computes the first step after a landing at time t exactly as the
// serial engine does after a breakpoint: a fraction of the gap to the next
// device breakpoint, bounded by the last accepted step hUsed. An engine
// stopping at its window-local TStop sees a zero gap and retains a floored
// step; the coordinator knows the global breakpoint list and restores the
// step the serial engine would have chosen at the same instant.
func (r *runner) restartH(t, hUsed float64) float64 {
	gap := r.base.TStop - t
	for _, bp := range r.bps {
		if bp > t*(1+1e-12) {
			gap = bp - t
			break
		}
	}
	return transient.RestartStep(gap, hUsed, r.base.HInit, r.base.Control)
}

// coarseH is the fixed coarse step for window w.
func (r *runner) coarseH(w int) float64 {
	return (r.tb[w+1] - r.tb[w]) / float64(r.coarse.Steps)
}

// coarseOptions derives the coarse propagator configuration for the
// segment covering window w from the fine base: fixed NoLTE steps at
// windowLen/Steps, Newton tolerances loosened by TolScale, and the bypass
// engines forced at least as aggressive as the coarse floors. Fault
// injection is stripped — the coarse sweep is an accelerator, and injected
// faults belong to the fine runs whose results actually ship.
func (r *runner) coarseOptions(w int, resume *checkpoint.State) transient.Options {
	o := r.base
	o.TStop = r.tb[w+1]
	o.NoLTE = true
	o.HInit = r.coarseH(w)
	n := o.Newton
	if n.MaxIter == 0 {
		n = newton.DefaultOptions()
	}
	if n.Tol == (num.Tolerances{}) {
		n.Tol = num.DefaultTolerances()
	}
	n.Tol.RelTol *= r.coarse.TolScale
	n.Tol.AbsTol *= r.coarse.TolScale
	o.Newton = n
	o.Control.Tol.RelTol *= r.coarse.TolScale
	o.Control.Tol.AbsTol *= r.coarse.TolScale
	if o.BypassTol < coarseBypassTol {
		o.BypassTol = coarseBypassTol
	}
	if o.DeviceBypassTol < coarseDeviceBypassTol {
		o.DeviceBypassTol = coarseDeviceBypassTol
	}
	o.Faults = nil
	o.CoreBudget = r.innerBudget
	o.Resume = resume
	return o
}

// coarseSweep runs W-1 sequential coarse segments over [0, tb[W-1]],
// publishing window w's seed as soon as segment w-1 lands. It holds one
// concurrency slot for the whole sweep — the coarse lane of the pipelined
// Parareal schedule. Every seed channel is always published exactly once
// (nil on failure), so workers never block on a dead sweep.
func (r *runner) coarseSweep() {
	published := 1
	defer func() {
		for ; published < r.opts.W; published++ {
			r.seedCh[published] <- nil
		}
	}()
	r.acquire()
	defer r.release()
	var resume *checkpoint.State
	for k := 0; k < r.opts.W-1; k++ {
		if err := r.canceled(); err != nil {
			r.coarseErr = err
			return
		}
		guard := checkpoint.NewRetained()
		o := r.coarseOptions(k, resume)
		o.Guard = guard
		res, err := transient.Run(r.sys, o)
		r.coarseRes = append(r.coarseRes, res)
		r.addStats(res)
		if err != nil {
			r.coarseErr = err
			return
		}
		end := guard.Retained()
		if end == nil {
			r.coarseErr = fmt.Errorf("windows: coarse segment %d retained no state", k)
			return
		}
		// Two independent deep copies: the fine window and the next
		// coarse segment both consume (and mutate) their seed's history.
		r.seedCh[k+1] <- seedFrom(end, r.tb[k+2], r.restartH(end.T, end.HUsed), 3)
		published++
		if k+1 < r.opts.W-1 {
			resume = seedFrom(end, r.tb[k+2], 0, 0)
			// The coarse chain is NoLTE fixed-step: a truncated landing
			// step must not leak into the next segment (NoLTE never grows
			// the step back), so pin the segment's own coarse step.
			resume.H = r.coarseH(k + 1)
		}
	}
}

func (r *runner) canceled() error {
	if ctx := r.base.Ctx; ctx != nil {
		select {
		case <-ctx.Done():
			return transient.CancelError("window-coordinator", 0)
		default:
		}
	}
	return nil
}

// seedFrom rewrites a final checkpoint state into a window seed: the run
// horizon becomes the window end, the recorded waveform is truncated to
// its final sample (the seam the stitcher later drops), counters and the
// recovery log reset so inner stats sum cleanly, and the trailing history
// is deep-copied because the consuming engine recycles history buffers in
// place. The LU snapshot is kept: restoring it makes the window's first
// factorization a numeric refactor along the predecessor's pivot sequence
// — the same path the uninterrupted engine takes — which is what makes the
// sequential window chain bit-identical to serial (a fresh factorization
// may legally pick a different pivot order and a different summation
// order). The snapshot is immutable and deep-copied on restore, so sharing
// it across window seeds is safe. hOverride > 0
// replaces the restart step, but only when the captured state is a
// post-edge restart (AfterBreak): the engine that produced it saw a zero
// gap beyond its own horizon, and the coordinator knows the true gap to
// the next global breakpoint. A full-order continuation state keeps its
// own LTE-chosen step. warmup is the pipeline refill depth for pipelined
// fine engines (the serial engine ignores it).
func seedFrom(st *checkpoint.State, tEnd, hOverride float64, warmup int) *checkpoint.State {
	s := *st
	s.TStop = tEnd
	s.Scheme = 0
	s.Warmup = warmup
	if hOverride > 0 && s.AfterBreak {
		s.H = hOverride
	}
	s.Stats = checkpoint.Stats{}
	s.Recovery = nil
	n := len(st.WaveTimes)
	if n > 0 {
		s.WaveTimes = st.WaveTimes[n-1:]
		s.WaveData = st.WaveData[n-1:]
	}
	pts := make([]*integrate.Point, len(st.Hist))
	for i, p := range st.Hist {
		pts[i] = &integrate.Point{
			T:    p.T,
			X:    num.Copy(p.X),
			Q:    num.Copy(p.Q),
			Qdot: num.Copy(p.Qdot),
		}
	}
	s.Hist = pts
	return &s
}

// fineWindow runs one fine solve over window w from seed (nil: from t=0
// through the DC operating point) and returns the result plus the exact
// end state retained by the engine's final checkpoint.
func (r *runner) fineWindow(w int, seed *checkpoint.State) (*transient.Result, *checkpoint.State, error) {
	guard := checkpoint.NewRetained()
	o := r.base
	o.TStop = r.tb[w+1]
	o.Resume = seed
	o.Guard = guard
	o.CoreBudget = r.innerBudget
	res, err := r.opts.Fine(o)
	r.fineSolves.Add(1)
	r.addStats(res)
	end := guard.Retained()
	if err == nil && end == nil {
		err = fmt.Errorf("windows: window %d retained no final state", w)
	}
	return res, end, err
}

func (r *runner) addStats(res *transient.Result) {
	if res == nil {
		return
	}
	r.statsMu.Lock()
	r.stats.Add(res.Stats)
	r.statsMu.Unlock()
}

// gatePass implements the per-window convergence gate: the coarse seed is
// close enough to the exact predecessor end state when their weighted
// max-norm distance under the fine tolerances is within Gate — the same
// error currency the LTE controller budgets per accepted step.
func (r *runner) gatePass(seedX []float64, exact *checkpoint.State) bool {
	if seedX == nil || exact == nil || len(exact.Hist) == 0 {
		return false
	}
	ref := exact.Hist[len(exact.Hist)-1].X
	if len(ref) != len(seedX) {
		return false
	}
	diff := make([]float64, len(ref))
	for i := range ref {
		diff[i] = seedX[i] - ref[i]
	}
	return r.tol.WeightedMaxNorm(diff, ref) <= r.coarse.Gate
}

func (r *runner) worker(w int) {
	rec := &r.recs[w]
	defer func() {
		r.convCh[w] <- &winState{state: rec.end, err: rec.err}
	}()
	r.emit(trace.KindWindowSeed, w, r.tb[w])

	if w == 0 {
		// Window 0's "speculative" solve starts from the true initial
		// conditions, so it is exact by construction.
		r.acquire()
		rec.specRes, rec.end, rec.err = r.fineWindow(0, nil)
		r.release()
		rec.res, rec.gateOK = rec.specRes, rec.err == nil
		if rec.err == nil {
			r.emit(trace.KindWindowConverge, w, r.tb[w+1])
		}
		return
	}

	var seedX []float64
	var specEnd *checkpoint.State
	var specErr error
	if !r.coarseSkip {
		if seed := <-r.seedCh[w]; seed != nil && !r.fallback.Load() {
			seedX = num.Copy(seed.Hist[len(seed.Hist)-1].X)
			r.acquire()
			rec.specRes, specEnd, specErr = r.fineWindow(w, seed)
			r.release()
		}
	}

	pred := <-r.convCh[w-1]
	if pred.err != nil {
		rec.err = pred.err
		return
	}
	if rec.specRes != nil && specErr == nil && !r.coarse.Strict && r.gatePass(seedX, pred.state) {
		rec.res, rec.end, rec.gateOK = rec.specRes, specEnd, true
		r.redoStreak.Store(0)
		r.emit(trace.KindWindowConverge, w, r.tb[w+1])
		return
	}

	if !r.coarse.Strict {
		// The window failed to contract (or never got a usable seed):
		// one pipelined Parareal correction from the exact state. A
		// persistent streak means the coarse propagator is not pulling
		// its weight — stop speculating and let the remaining windows
		// run as a sequential chain.
		r.redoCount.Add(1)
		r.emit(trace.KindWindowRedo, w, r.tb[w])
		if int(r.redoStreak.Add(1)) >= r.fbAft && r.fallback.CompareAndSwap(false, true) {
			if r.tr.Active() {
				r.tr.Emit(trace.Event{
					Kind:   trace.KindSerialFallback,
					T:      r.tb[w],
					Stage:  int32(w),
					Worker: -1,
					Detail: "parareal windows failed to contract",
				})
			}
		}
	}
	rseed := seedFrom(pred.state, r.tb[w+1], r.restartH(pred.state.T, pred.state.HUsed), 3)
	r.acquire()
	rec.redoRes, rec.end, rec.err = r.fineWindow(w, rseed)
	r.release()
	rec.res = rec.redoRes
	if rec.err == nil {
		r.emit(trace.KindWindowConverge, w, r.tb[w+1])
	}
}

// assemble stitches the per-window waveforms (dropping each seam's
// duplicated seed sample), merges stats and recovery logs across every
// inner run, models the multi-core critical path of the window schedule,
// and replays OnAccept over the stitched rows.
func (r *runner) assemble() (*transient.Result, error) {
	W := r.opts.W
	out := &transient.Result{Recovery: &transient.RecoveryLog{}}

	var names []string
	var index []int
	var times []float64
	var data [][]float64
	var firstErr error
	for w := 0; w < W; w++ {
		rec := &r.recs[w]
		res := rec.res
		if res == nil || res.W == nil || res.W.Len() == 0 {
			if rec.err != nil && firstErr == nil {
				firstErr = rec.err
			}
			break
		}
		if w == 0 {
			names, index = res.W.Names, res.W.Index
			times = append(times, res.W.Times...)
			data = append(data, res.W.Data...)
		} else {
			times = append(times, res.W.Times[1:]...)
			data = append(data, res.W.Data[1:]...)
		}
		out.FinalX = res.FinalX
		if rec.err != nil {
			if firstErr == nil {
				firstErr = rec.err
			}
			break
		}
	}
	if names != nil {
		set, err := waveform.Restore(names, index, times, data)
		if err != nil {
			return nil, fmt.Errorf("windows: stitching produced an invalid waveform: %w", err)
		}
		out.W = set
	}

	// Recovery log: coarse first, then per window (discarded speculative
	// attempts included — their robustness actions really happened).
	mergeRL := func(res *transient.Result) {
		if res == nil || res.Recovery == nil {
			return
		}
		for _, ev := range res.Recovery.Events() {
			out.Recovery.Note(ev.T, ev.Kind, ev.Detail)
		}
	}
	for _, res := range r.coarseRes {
		mergeRL(res)
	}
	if r.coarseErr != nil {
		out.Recovery.Note(0, "coarse-abort", r.coarseErr.Error())
	}
	if r.fallback.Load() {
		out.Recovery.Note(0, transient.RecoverySerialFallback,
			"parareal windows failed to contract")
	}
	for w := 0; w < W; w++ {
		mergeRL(r.recs[w].specRes)
		if r.recs[w].redoRes != r.recs[w].specRes {
			mergeRL(r.recs[w].redoRes)
		}
	}

	out.Stats = r.stats
	out.Stats.WindowsLaunched = int64(W)
	out.Stats.PararealIters = r.fineSolves.Load()
	out.Stats.WindowRedos = r.redoCount.Load()
	if r.opts.CoreBudget > out.Stats.CoreBudget {
		out.Stats.CoreBudget = r.opts.CoreBudget
	}
	out.Stats.CriticalNanos = r.modelCritical()

	if r.opts.Base.OnAccept != nil && out.W != nil {
		for i, t := range out.W.Times {
			r.opts.Base.OnAccept(t, out.W.Data[i])
		}
	}
	return out, firstErr
}

// modelCritical replays the window schedule against the measured
// per-attempt critical paths: the coarse sweep occupies one of the wconc
// concurrency slots, speculative solves start when their seed is ready and
// a slot frees up, and window w converges no earlier than window w-1 plus
// its own correction when the gate failed. This is the same hardware-
// substitution timing model the engines use (DESIGN.md), extended across
// the time axis.
func (r *runner) modelCritical() int64 {
	W := r.opts.W
	slots := make([]int64, r.wconc)
	seedReady := make([]int64, W)
	var cum int64
	for k, res := range r.coarseRes {
		if res != nil {
			cum += res.Stats.CriticalNanos
		}
		if k+1 < W {
			seedReady[k+1] = cum
		}
	}
	if cum > 0 {
		slots[0] = cum // the coarse lane
	}
	crit := func(res *transient.Result) int64 {
		if res == nil {
			return 0
		}
		return res.Stats.CriticalNanos
	}
	conv := make([]int64, W)
	var last int64
	for w := 0; w < W; w++ {
		rec := &r.recs[w]
		var specDone int64
		if rec.specRes != nil {
			si := 0
			for i := range slots {
				if slots[i] < slots[si] {
					si = i
				}
			}
			start := slots[si]
			if seedReady[w] > start {
				start = seedReady[w]
			}
			specDone = start + crit(rec.specRes)
			slots[si] = specDone
		}
		switch {
		case w == 0:
			conv[0] = specDone
		case rec.gateOK:
			conv[w] = conv[w-1]
			if specDone > conv[w] {
				conv[w] = specDone
			}
		default:
			conv[w] = conv[w-1] + crit(rec.redoRes)
		}
		if rec.res != nil {
			last = conv[w]
		}
	}
	return last
}
