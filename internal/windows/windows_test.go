package windows

import (
	"math"
	"testing"

	"wavepipe/internal/checkpoint"
	"wavepipe/internal/integrate"
	"wavepipe/internal/sparse"
)

// TestPlanBoundariesSnapsToBreakpoints: on a breakpoint-structured horizon
// every uniform target must snap to the nearest device breakpoint within
// half a window, and the ends must stay pinned at 0 and tstop.
func TestPlanBoundariesSnapsToBreakpoints(t *testing.T) {
	bps := []float64{0.5e-9, 1.0e-9, 4.3e-9, 4.5e-9, 6.3e-9, 8e-9}
	tb := planBoundaries(8e-9, 2, bps)
	if len(tb) != 3 {
		t.Fatalf("W=2: got %d boundaries %v, want 3", len(tb), tb)
	}
	if tb[0] != 0 || tb[2] != 8e-9 {
		t.Fatalf("W=2: ends %v not pinned to [0, tstop]", tb)
	}
	// Target 4e-9: nearest in-range breakpoint is 4.3e-9.
	if tb[1] != 4.3e-9 {
		t.Fatalf("W=2: interior boundary %g, want snap to 4.3e-9", tb[1])
	}
}

// TestPlanBoundariesMergesWithoutBreakpoint: an edge-rich circuit with no
// breakpoint near a target must drop that boundary (merge the two windows)
// rather than cut mid-edge.
func TestPlanBoundariesMergesWithoutBreakpoint(t *testing.T) {
	// Interior breakpoints exist but none near the 5e-9 midpoint target
	// (window is 10n wide at W=2; half-window reach is 2.5n).
	bps := []float64{0.1e-9, 0.2e-9, 9.9e-9, 10e-9}
	tb := planBoundaries(10e-9, 2, bps)
	if len(tb) >= 3 {
		t.Fatalf("expected merge to a single window, got boundaries %v", tb)
	}
}

// TestPlanBoundariesUniformOnSmooth: with no interior breakpoints at all the
// targets stay on the uniform grid — the engines keep full-order history at
// plain-horizon landings, so uniform cuts are accurate there.
func TestPlanBoundariesUniformOnSmooth(t *testing.T) {
	tb := planBoundaries(1e-6, 4, []float64{1e-6})
	want := []float64{0, 0.25e-6, 0.5e-6, 0.75e-6, 1e-6}
	if len(tb) != len(want) {
		t.Fatalf("got %v, want %v", tb, want)
	}
	for i := range want {
		if math.Abs(tb[i]-want[i]) > 1e-18 {
			t.Fatalf("boundary %d = %g, want %g", i, tb[i], want[i])
		}
	}
}

// TestPlanBoundariesMonotone: whatever the breakpoint layout, the kept
// boundaries must be strictly increasing from 0 to tstop.
func TestPlanBoundariesMonotone(t *testing.T) {
	bps := []float64{1e-10, 1.05e-10, 1.1e-10, 5e-9, 5.01e-9, 9.9e-9, 1e-8}
	for W := 2; W <= 16; W++ {
		tb := planBoundaries(1e-8, W, bps)
		if tb[0] != 0 || tb[len(tb)-1] != 1e-8 {
			t.Fatalf("W=%d: ends %v not pinned", W, tb)
		}
		for i := 1; i < len(tb); i++ {
			if tb[i] <= tb[i-1] {
				t.Fatalf("W=%d: boundaries not strictly increasing: %v", W, tb)
			}
		}
		if len(tb) > W+1 {
			t.Fatalf("W=%d: more boundaries than requested windows: %v", W, tb)
		}
	}
}

// TestSeedFromPreservesLU: the window seed must carry the predecessor's LU
// snapshot — restoring it is what keeps the window's first factorization on
// the refactor path (same pivot sequence as the uninterrupted run), which
// the strict bit-identity guarantee depends on.
func TestSeedFromPreservesLU(t *testing.T) {
	st := &checkpoint.State{
		T: 1e-9, H: 1e-12, HUsed: 2e-12, AfterBreak: true,
		LU:        &sparse.LUState{N: 1},
		Hist:      []*integrate.Point{{T: 1e-9, X: []float64{1}, Q: []float64{2}, Qdot: []float64{3}}},
		WaveTimes: []float64{0, 1e-9},
		WaveData:  [][]float64{{0}, {1}},
	}
	s := seedFrom(st, 2e-9, 5e-12, 3)
	if s.LU == nil {
		t.Fatal("seed dropped the LU snapshot")
	}
	if s.TStop != 2e-9 || s.Warmup != 3 {
		t.Fatalf("seed horizon/warmup: %+v", s)
	}
	if s.H != 5e-12 {
		t.Fatalf("post-edge restart state must take the coordinator's step, got %g", s.H)
	}
	if len(s.WaveTimes) != 1 || s.WaveTimes[0] != 1e-9 {
		t.Fatalf("seed waveform not truncated to the seam: %v", s.WaveTimes)
	}
	// The seed's history must be an independent deep copy.
	s.Hist[0].X[0] = 42
	if st.Hist[0].X[0] == 42 {
		t.Fatal("seed history aliases the source state")
	}
	// A full-order continuation state (AfterBreak false) keeps its own step.
	st.AfterBreak = false
	if s2 := seedFrom(st, 2e-9, 5e-12, 0); s2.H != st.H {
		t.Fatalf("continuation state step overridden: %g", s2.H)
	}
}
