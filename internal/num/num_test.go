package num

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWeight(t *testing.T) {
	tol := Tolerances{RelTol: 1e-3, AbsTol: 1e-6}
	if got := tol.Weight(0); got != 1e-6 {
		t.Fatalf("Weight(0) = %g, want 1e-6", got)
	}
	if got := tol.Weight(-2); math.Abs(got-(2e-3+1e-6)) > 1e-18 {
		t.Fatalf("Weight(-2) = %g", got)
	}
}

func TestWeightedNorms(t *testing.T) {
	tol := Tolerances{RelTol: 0.1, AbsTol: 1}
	err := []float64{1, -2, 0}
	ref := []float64{0, 10, 5}
	// weights: 1, 2, 1.5 -> ratios 1, 1, 0
	if got := tol.WeightedMaxNorm(err, ref); math.Abs(got-1) > 1e-15 {
		t.Fatalf("max norm = %g, want 1", got)
	}
	want := math.Sqrt((1.0 + 1.0 + 0.0) / 3.0)
	if got := tol.WeightedRMSNorm(err, ref); math.Abs(got-want) > 1e-15 {
		t.Fatalf("rms norm = %g, want %g", got, want)
	}
	if got := tol.WeightedMaxNorm(nil, nil); got != 0 {
		t.Fatalf("empty max norm = %g", got)
	}
	if got := tol.WeightedRMSNorm(nil, nil); got != 0 {
		t.Fatalf("empty rms norm = %g", got)
	}
}

func TestMaxAbsDotAxpy(t *testing.T) {
	if got := MaxAbs([]float64{-3, 2, 1}); got != 3 {
		t.Fatalf("MaxAbs = %g", got)
	}
	if got := MaxAbs(nil); got != 0 {
		t.Fatalf("MaxAbs(nil) = %g", got)
	}
	if got := Dot([]float64{1, 2}, []float64{3, 4}); got != 11 {
		t.Fatalf("Dot = %g", got)
	}
	y := []float64{1, 1}
	AxpyInPlace(2, []float64{1, -1}, y)
	if y[0] != 3 || y[1] != -1 {
		t.Fatalf("Axpy = %v", y)
	}
	c := Copy(y)
	c[0] = 99
	if y[0] != 3 {
		t.Fatal("Copy aliases input")
	}
}

func TestDividedDifferencesQuadratic(t *testing.T) {
	// f(t) = 2t² - 3t + 1: dd[0]=f(t0), dd[1]=f[t0,t1], dd[2]=2 (leading coeff).
	f := func(x float64) float64 { return 2*x*x - 3*x + 1 }
	ts := []float64{0.5, 1.25, 3.0}
	ys := []float64{f(ts[0]), f(ts[1]), f(ts[2])}
	dd := DividedDifferences(ts, ys)
	if math.Abs(dd[2]-2) > 1e-12 {
		t.Fatalf("leading divided difference = %g, want 2", dd[2])
	}
	if math.Abs(dd[0]-f(ts[0])) > 1e-12 {
		t.Fatalf("dd[0] = %g", dd[0])
	}
}

// Property: the order-k divided difference of a degree-(k-1) polynomial is 0,
// and of a degree-k polynomial is its leading coefficient.
func TestDividedDifferencesPolynomialProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		deg := 1 + rng.Intn(4)
		coef := make([]float64, deg+1)
		for i := range coef {
			coef[i] = rng.NormFloat64()
		}
		if math.Abs(coef[deg]) < 1e-3 {
			coef[deg] = 1
		}
		eval := func(x float64) float64 {
			v := 0.0
			for i := deg; i >= 0; i-- {
				v = v*x + coef[i]
			}
			return v
		}
		n := deg + 2
		ts := make([]float64, n)
		ys := make([]float64, n)
		base := rng.Float64()
		for i := range ts {
			ts[i] = base + float64(i)*(0.3+rng.Float64())
			ys[i] = eval(ts[i])
		}
		dd := DividedDifferences(ts, ys)
		if math.Abs(dd[deg]-coef[deg]) > 1e-6*(1+math.Abs(coef[deg])) {
			t.Fatalf("trial %d: dd[%d] = %g, want leading coeff %g", trial, deg, dd[deg], coef[deg])
		}
		if math.Abs(dd[deg+1]) > 1e-6 {
			t.Fatalf("trial %d: dd[%d] = %g, want 0", trial, deg+1, dd[deg+1])
		}
	}
}

func TestDerivativeEstimate(t *testing.T) {
	// f(t) = t³: f'''(t) = 6 everywhere.
	f := func(x float64) float64 { return x * x * x }
	ts := []float64{0, 0.1, 0.25, 0.4}
	ys := []float64{f(ts[0]), f(ts[1]), f(ts[2]), f(ts[3])}
	if got := DerivativeEstimate(ts, ys, 3); math.Abs(got-6) > 1e-9 {
		t.Fatalf("3rd derivative estimate = %g, want 6", got)
	}
	// Request order above available history: degrades to max possible.
	if got := DerivativeEstimate(ts[:2], ys[:2], 3); math.IsNaN(got) {
		t.Fatalf("degraded estimate NaN")
	}
}

func TestPredictAtExactForPolynomials(t *testing.T) {
	// Interpolating through deg+1 points reproduces the polynomial exactly.
	f := func(x float64) float64 { return 1 - 4*x + 0.5*x*x }
	ts := []float64{0, 1, 2.5}
	ys := []float64{f(0), f(1), f(2.5)}
	for _, x := range []float64{-1, 0.3, 3.7} {
		if got := PredictAt(ts, ys, x); math.Abs(got-f(x)) > 1e-12 {
			t.Fatalf("PredictAt(%g) = %g, want %g", x, got, f(x))
		}
	}
}

func TestPredictVectorAt(t *testing.T) {
	ts := []float64{0, 1}
	hist := [][]float64{{1, 10}, {2, 20}}
	dst := make([]float64, 2)
	PredictVectorAt(ts, hist, 2, dst)
	if dst[0] != 3 || dst[1] != 30 {
		t.Fatalf("linear extrapolation = %v", dst)
	}
	PredictVectorAt(ts[:1], hist[:1], 5, dst)
	if dst[0] != 1 || dst[1] != 10 {
		t.Fatalf("constant extrapolation = %v", dst)
	}
	PredictVectorAt(nil, nil, 5, dst)
	if dst[0] != 0 || dst[1] != 0 {
		t.Fatalf("empty history should zero dst: %v", dst)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Fatal("Clamp broken")
	}
}

func TestEqualWithin(t *testing.T) {
	if !EqualWithin(1e9, 1e9+1, 1e-6) {
		t.Fatal("scale-aware comparison should accept")
	}
	if EqualWithin(0, 1, 1e-6) {
		t.Fatal("should reject")
	}
}

// Property: PredictAt through n random points reproduces each sample point.
func TestPredictAtInterpolatesQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		ts := make([]float64, n)
		ys := make([]float64, n)
		cur := rng.Float64()
		for i := range ts {
			cur += 0.2 + rng.Float64()
			ts[i] = cur
			ys[i] = rng.NormFloat64() * 10
		}
		for i := range ts {
			if math.Abs(PredictAt(ts, ys, ts[i])-ys[i]) > 1e-6*(1+math.Abs(ys[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
