// Package num provides small numeric utilities shared by the simulation
// engines: weighted error norms, divided differences for local-truncation-
// error estimation, and polynomial prediction used by forward pipelining.
package num

import "math"

// Tolerances bundles the relative/absolute tolerances used to weight error
// norms, mirroring SPICE's RELTOL/VNTOL(ABSTOL) options.
type Tolerances struct {
	// RelTol is the relative tolerance applied to the magnitude of each
	// unknown (default 1e-3).
	RelTol float64
	// AbsTol is the absolute floor of the per-unknown error weight
	// (default 1e-6, i.e. 1 µV / 1 µA).
	AbsTol float64
}

// DefaultTolerances returns the SPICE-like defaults used throughout the
// repository.
func DefaultTolerances() Tolerances {
	return Tolerances{RelTol: 1e-3, AbsTol: 1e-6}
}

// Weight returns the error weight for an unknown of magnitude |x|:
// RelTol*|x| + AbsTol. Errors divided by this weight are dimensionless and
// acceptable when at most 1.
func (t Tolerances) Weight(x float64) float64 {
	return t.RelTol*math.Abs(x) + t.AbsTol
}

// WeightedMaxNorm returns max_i |err[i]| / weight(ref[i]). The slices must
// have equal length. An empty input yields 0.
func (t Tolerances) WeightedMaxNorm(err, ref []float64) float64 {
	m := 0.0
	for i, e := range err {
		w := t.Weight(ref[i])
		if v := math.Abs(e) / w; v > m {
			m = v
		}
	}
	return m
}

// WeightedRMSNorm returns sqrt(mean_i (err[i]/weight(ref[i]))²).
func (t Tolerances) WeightedRMSNorm(err, ref []float64) float64 {
	if len(err) == 0 {
		return 0
	}
	s := 0.0
	for i, e := range err {
		w := t.Weight(ref[i])
		v := e / w
		s += v * v
	}
	return math.Sqrt(s / float64(len(err)))
}

// MaxAbs returns max_i |v[i]|, or 0 for an empty slice.
func MaxAbs(v []float64) float64 {
	m := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// NonFiniteIndex returns the index of the first NaN or ±Inf entry of v, or
// -1 when every entry is finite.
func NonFiniteIndex(v []float64) int {
	for i, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return i
		}
	}
	return -1
}

// Dot returns the dot product of a and b (equal lengths required).
func Dot(a, b []float64) float64 {
	s := 0.0
	for i, x := range a {
		s += x * b[i]
	}
	return s
}

// AxpyInPlace computes y += alpha*x in place.
func AxpyInPlace(alpha float64, x, y []float64) {
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Copy returns a fresh copy of v.
func Copy(v []float64) []float64 {
	out := make([]float64, len(v))
	copy(out, v)
	return out
}

// DividedDifferences computes the Newton divided-difference table for the
// sample points (ts[i], ys[i]) and returns the coefficients c[k] =
// y[t0, t1, ..., tk]. The times must be strictly distinct. The order-k
// divided difference approximates f^(k)(ξ)/k! on the sample interval, which
// is how the engines estimate the high-order derivatives entering the LTE
// formulas.
func DividedDifferences(ts, ys []float64) []float64 {
	c := make([]float64, len(ts))
	DividedDifferencesInto(ts, ys, c)
	return c
}

// DividedDifferencesInto is DividedDifferences writing into a caller-owned
// buffer (len(c) == len(ts)), for allocation-free inner loops.
func DividedDifferencesInto(ts, ys, c []float64) {
	n := len(ts)
	copy(c, ys)
	for k := 1; k < n; k++ {
		for i := n - 1; i >= k; i-- {
			c[i] = (c[i] - c[i-1]) / (ts[i] - ts[i-k])
		}
	}
}

// DerivativeEstimate returns an estimate of the k-th derivative of the
// sampled function at the trailing sample, using the order-k divided
// difference over the last k+1 samples scaled by k!.
func DerivativeEstimate(ts, ys []float64, k int) float64 {
	n := len(ts)
	if k+1 > n {
		k = n - 1
	}
	dd := DividedDifferences(ts[n-k-1:], ys[n-k-1:])
	f := 1.0
	for i := 2; i <= k; i++ {
		f *= float64(i)
	}
	return dd[k] * f
}

// PredictAt evaluates the Newton-form interpolating polynomial through the
// points (ts, ys) at time t. Used by forward pipelining to predict a not-
// yet-converged solution from history, and by step control to extrapolate
// initial Newton guesses.
func PredictAt(ts, ys []float64, t float64) float64 {
	c := DividedDifferences(ts, ys)
	n := len(ts)
	// Horner evaluation of the Newton form.
	v := c[n-1]
	for i := n - 2; i >= 0; i-- {
		v = v*(t-ts[i]) + c[i]
	}
	return v
}

// PredictVectorAt extrapolates each component of the history vectors hist
// (hist[j] is the full solution vector at time ts[j]) to time t, writing the
// result into dst. The number of history vectors sets the polynomial order.
func PredictVectorAt(ts []float64, hist [][]float64, t float64, dst []float64) {
	PredictVectorAtWith(ts, hist, t, dst, nil, nil)
}

// PredictVectorAtWith is PredictVectorAt with caller-pooled scratch vectors
// ys and c of length >= len(ts) (nil allocates fresh ones), for
// allocation-free prediction in the point-solve hot path.
func PredictVectorAtWith(ts []float64, hist [][]float64, t float64, dst, ys, c []float64) {
	n := len(ts)
	if n == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	if n == 1 {
		copy(dst, hist[0])
		return
	}
	// Per-component Newton interpolation with shared scratch buffers.
	if len(ys) < n || len(c) < n {
		ys = make([]float64, n)
		c = make([]float64, n)
	}
	ys, c = ys[:n], c[:n]
	for i := range dst {
		for j := 0; j < n; j++ {
			ys[j] = hist[j][i]
		}
		DividedDifferencesInto(ts, ys, c)
		v := c[n-1]
		for j := n - 2; j >= 0; j-- {
			v = v*(t-ts[j]) + c[j]
		}
		dst[i] = v
	}
}

// Clamp returns v limited to the closed interval [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	switch {
	case v < lo:
		return lo
	case v > hi:
		return hi
	default:
		return v
	}
}

// EqualWithin reports |a-b| <= tol*(1+max(|a|,|b|)), a scale-aware
// approximate comparison used by tests.
func EqualWithin(a, b, tol float64) bool {
	scale := 1 + math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= tol*scale
}
