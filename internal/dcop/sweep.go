package dcop

import (
	"fmt"

	"wavepipe/internal/circuit"
	"wavepipe/internal/waveform"
)

// Sweep runs a DC sweep: for each value v in [start, stop] stepped by step,
// it calls set(v) (which should retune a source), solves the operating
// point warm-started from the previous solution, and records the selected
// unknowns. The result's time axis carries the sweep values.
func Sweep(ws *circuit.Workspace, set func(float64), start, stop, step float64,
	names []string, record []int, opts Options) (*waveform.Set, error) {
	if step == 0 || (stop-start)*step < 0 {
		return nil, fmt.Errorf("dcop: invalid sweep %g:%g:%g", start, stop, step)
	}
	x := make([]float64, ws.Sys.N)
	n := int((stop-start)/step) + 1
	values := make([]float64, 0, n)
	rows := make([][]float64, 0, n)
	for i := 0; i < n; i++ {
		v := start + float64(i)*step
		set(v)
		if _, err := Solve(ws, x, opts); err != nil {
			return nil, fmt.Errorf("dcop: sweep point %g: %w", v, err)
		}
		row := make([]float64, ws.Sys.N)
		copy(row, x)
		values = append(values, v)
		rows = append(rows, row)
	}
	// The waveform axis must ascend; descending sweeps are stored reversed.
	w := waveform.NewSet(names, record)
	if step > 0 {
		for i := range values {
			w.Append(values[i], rows[i])
		}
	} else {
		for i := len(values) - 1; i >= 0; i-- {
			w.Append(values[i], rows[i])
		}
	}
	return w, nil
}
