package dcop

import (
	"errors"
	"math"
	"testing"

	"wavepipe/internal/circuit"
	"wavepipe/internal/device"
	"wavepipe/internal/faults"
)

// divider builds the 9 V / 2k / 1k voltage divider (v(mid) = 3) and returns
// a workspace carrying the given fault harness.
func divider(t *testing.T, in *faults.Injector) (*circuit.Workspace, []float64, int) {
	t.Helper()
	c := circuit.New("op")
	cin := c.Node("in")
	mid := c.Node("mid")
	c.Add(device.NewVSource("V1", cin, circuit.Ground, device.DC(9)))
	c.Add(device.NewResistor("R1", cin, mid, 2e3))
	c.Add(device.NewResistor("R2", mid, circuit.Ground, 1e3))
	sys, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	ws := sys.NewWorkspace()
	ws.Faults = in
	midIdx, _ := c.FindNode("mid")
	return ws, make([]float64, sys.N), midIdx
}

// Defeating direct Newton while sparing the gmin rung must land the ladder
// on gmin stepping — and still produce the exact operating point.
func TestLadderFallsBackToGminStepping(t *testing.T) {
	in := faults.NewInjector(faults.Rule{
		Class: faults.NoConvergence, Count: 5, SpareFrom: faults.StageGmin,
	})
	ws, x, mid := divider(t, in)
	st, err := Solve(ws, x, DefaultOptions())
	if err != nil {
		t.Fatalf("gmin fallback failed: %v", err)
	}
	if st.Strategy != "gmin" {
		t.Fatalf("strategy = %q, want gmin", st.Strategy)
	}
	if st.Continues == 0 {
		t.Fatal("no continuation stages counted")
	}
	if math.Abs(x[mid]-3) > 1e-9 {
		t.Fatalf("v(mid) = %g, want 3", x[mid])
	}
}

// Defeating direct Newton and the gmin rung must push the ladder all the way
// to source stepping.
func TestLadderFallsBackToSourceStepping(t *testing.T) {
	in := faults.NewInjector(faults.Rule{
		Class: faults.NoConvergence, Count: 10, SpareFrom: faults.StageSource,
	})
	ws, x, mid := divider(t, in)
	st, err := Solve(ws, x, DefaultOptions())
	if err != nil {
		t.Fatalf("source fallback failed: %v", err)
	}
	if st.Strategy != "source" {
		t.Fatalf("strategy = %q, want source", st.Strategy)
	}
	if math.Abs(x[mid]-3) > 1e-9 {
		t.Fatalf("v(mid) = %g, want 3", x[mid])
	}
}

// With every strategy defeated, Solve must fail with the typed taxonomy:
// a dcop-phase SimError carrying the no-convergence cause.
func TestLadderExhaustionIsTyped(t *testing.T) {
	in := faults.NewInjector(faults.Rule{
		Class: faults.NoConvergence, Count: 1_000_000,
	})
	ws, x, _ := divider(t, in)
	st, err := Solve(ws, x, DefaultOptions())
	if err == nil {
		t.Fatalf("solve succeeded with every strategy defeated: %+v", st)
	}
	if !errors.Is(err, faults.ErrNoConvergence) {
		t.Fatalf("err = %v, want ErrNoConvergence", err)
	}
	var se *faults.SimError
	if !errors.As(err, &se) || se.Phase != "dcop" {
		t.Fatalf("missing dcop phase context: %v", err)
	}
}
