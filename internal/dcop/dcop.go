// Package dcop computes the DC operating point of a circuit: plain
// Newton–Raphson first, then gmin stepping, then source stepping — the
// standard SPICE continuation ladder.
package dcop

import (
	"errors"
	"fmt"

	"wavepipe/internal/circuit"
	"wavepipe/internal/faults"
	"wavepipe/internal/newton"
)

// Options controls the operating-point search.
type Options struct {
	Newton newton.Options
	// Gmin is the junction shunt conductance used everywhere (default 1e-12).
	Gmin float64
	// GminSteps is the number of gmin-stepping decades (default 10).
	GminSteps int
	// SrcSteps is the number of source-stepping increments (default 10).
	SrcSteps int
	// NodeSet maps node unknowns to suggested operating-point voltages
	// (SPICE .NODESET): a first pass clamps those nodes toward the targets
	// through 1 S conductances, then the clamps are released and the point
	// re-solved — steering multistable circuits to the intended state.
	NodeSet map[int]float64
}

// DefaultOptions returns the standard continuation ladder configuration.
func DefaultOptions() Options {
	return Options{Newton: newton.DefaultOptions(), Gmin: 1e-12, GminSteps: 10, SrcSteps: 10}
}

// Stats reports how the operating point was found.
type Stats struct {
	Strategy  string // "direct", "gmin", or "source"
	NRIters   int
	Continues int // continuation stages run
}

// Solve computes the DC operating point into x (which also provides the
// initial guess, typically all zeros).
func Solve(ws *circuit.Workspace, x []float64, opts Options) (Stats, error) {
	if opts.Gmin <= 0 {
		opts.Gmin = 1e-12
	}
	if opts.GminSteps <= 0 {
		opts.GminSteps = 10
	}
	if opts.SrcSteps <= 0 {
		opts.SrcSteps = 10
	}
	n := ws.Sys.N
	r := make([]float64, n)
	dx := make([]float64, n)
	base := circuit.LoadParams{Alpha0: 0, Gmin: opts.Gmin, SrcScale: 1}

	stats := Stats{Strategy: "direct"}
	// 0. .NODESET pre-pass: clamp the suggested nodes, solve, release.
	if len(opts.NodeSet) > 0 {
		clamped := base
		clamped.ClampG = 1
		for idx, v := range opts.NodeSet {
			clamped.ClampIdx = append(clamped.ClampIdx, idx)
			clamped.ClampV = append(clamped.ClampV, v)
			if idx >= 0 && idx < n {
				x[idx] = v
			}
		}
		res, err := newton.Solve(ws, x, clamped, nil, opts.Newton, r, dx)
		stats.NRIters += res.Iters
		if err != nil {
			// The clamp pass is best-effort: fall through to the ladder
			// from whatever iterate it reached.
			stats.Strategy = "nodeset-failed"
		} else {
			stats.Strategy = "nodeset"
		}
	}

	// 1. Direct Newton.
	save := make([]float64, n)
	copy(save, x)
	res, err := newton.Solve(ws, x, base, nil, opts.Newton, r, dx)
	stats.NRIters += res.Iters
	if err == nil {
		return stats, nil
	}

	// 2. Gmin stepping: solve with a large conductance to ground on every
	// node, then relax it geometrically down to zero. The ladder rungs are
	// marked on the fault injector so tests can target a specific strategy.
	defer ws.Faults.SetStage(faults.StageNormal)
	copy(x, save)
	stats.Strategy = "gmin"
	ws.Faults.SetStage(faults.StageGmin)
	gmin := 1e-2
	ok := true
	for i := 0; i <= opts.GminSteps; i++ {
		p := base
		if i < opts.GminSteps {
			p.NodeGmin = gmin
		}
		res, err = newton.Solve(ws, x, p, nil, opts.Newton, r, dx)
		stats.NRIters += res.Iters
		stats.Continues++
		if err != nil {
			ok = false
			break
		}
		gmin /= 10
	}
	if ok {
		return stats, nil
	}

	// 3. Source stepping: ramp all independent sources from 0 to 100 %.
	copy(x, save)
	stats.Strategy = "source"
	ws.Faults.SetStage(faults.StageSource)
	for i := 1; i <= opts.SrcSteps; i++ {
		p := base
		p.SrcScale = float64(i) / float64(opts.SrcSteps)
		p.NodeGmin = opts.Gmin
		res, err = newton.Solve(ws, x, p, nil, opts.Newton, r, dx)
		stats.NRIters += res.Iters
		stats.Continues++
		if err != nil {
			return stats, &faults.SimError{
				Phase: "dcop", Time: 0, Node: -1,
				Cause: fmt.Errorf("source stepping failed at %.0f%%: %w", p.SrcScale*100, err),
			}
		}
	}
	// Final clean solve at full sources without the node shunt.
	res, err = newton.Solve(ws, x, base, nil, opts.Newton, r, dx)
	stats.NRIters += res.Iters
	if err != nil {
		return stats, &faults.SimError{
			Phase: "dcop", Time: 0, Node: -1,
			Cause: errors.Join(errors.New("all strategies failed"), err),
		}
	}
	return stats, nil
}
