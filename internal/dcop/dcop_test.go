package dcop

import (
	"math"
	"testing"

	"wavepipe/internal/circuit"
	"wavepipe/internal/device"
)

func solve(t *testing.T, add func(*circuit.Circuit)) ([]float64, Stats, *circuit.Circuit) {
	t.Helper()
	c := circuit.New("op")
	add(c)
	sys, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	ws := sys.NewWorkspace()
	x := make([]float64, sys.N)
	st, err := Solve(ws, x, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return x, st, c
}

func TestDirectLinearOP(t *testing.T) {
	x, st, c := solve(t, func(c *circuit.Circuit) {
		in := c.Node("in")
		mid := c.Node("mid")
		c.Add(device.NewVSource("V1", in, circuit.Ground, device.DC(9)))
		c.Add(device.NewResistor("R1", in, mid, 2e3))
		c.Add(device.NewResistor("R2", mid, circuit.Ground, 1e3))
	})
	if st.Strategy != "direct" {
		t.Fatalf("strategy = %s", st.Strategy)
	}
	mid, _ := c.FindNode("mid")
	if math.Abs(x[mid]-3) > 1e-9 {
		t.Fatalf("v(mid) = %g, want 3", x[mid])
	}
}

func TestDiodeBiasOP(t *testing.T) {
	x, _, c := solve(t, func(c *circuit.Circuit) {
		in := c.Node("in")
		a := c.Node("a")
		c.Add(device.NewVSource("V1", in, circuit.Ground, device.DC(3)))
		c.Add(device.NewResistor("R1", in, a, 470))
		c.Add(device.NewDiode("D1", a, circuit.Ground, device.DefaultDiodeModel(), 1))
	})
	a, _ := c.FindNode("a")
	if x[a] < 0.6 || x[a] > 0.8 {
		t.Fatalf("diode OP voltage = %g", x[a])
	}
}

func TestCMOSInverterOP(t *testing.T) {
	// Inverter with input at mid-supply: output near the switching point;
	// with input low: output at VDD.
	run := func(vin float64) float64 {
		x, _, c := solve(t, func(c *circuit.Circuit) {
			vdd := c.Node("vdd")
			in := c.Node("in")
			out := c.Node("out")
			c.Add(device.NewVSource("VDD", vdd, circuit.Ground, device.DC(1.8)))
			c.Add(device.NewVSource("VIN", in, circuit.Ground, device.DC(vin)))
			pm := device.DefaultMOSModel(device.PMOS)
			pm.KP = 45e-6
			c.Add(device.NewMOSFET("MP", out, in, vdd, vdd, pm, 2e-6, 0.5e-6))
			c.Add(device.NewMOSFET("MN", out, in, circuit.Ground, circuit.Ground,
				device.DefaultMOSModel(device.NMOS), 1e-6, 0.5e-6))
			c.Add(device.NewResistor("RL", out, circuit.Ground, 1e9))
		})
		out, _ := c.FindNode("out")
		return x[out]
	}
	if v := run(0); v < 1.7 {
		t.Fatalf("inverter(0) = %g, want ≈1.8", v)
	}
	if v := run(1.8); v > 0.1 {
		t.Fatalf("inverter(1.8) = %g, want ≈0", v)
	}
}

func TestRingOscillatorOPNeedsContinuation(t *testing.T) {
	// The ring oscillator's DC operating point is the metastable mid-rail
	// point; plain Newton from zero may or may not reach it, but the
	// continuation ladder must.
	c := circuit.New("ring")
	vdd := c.Node("vdd")
	c.Add(device.NewVSource("VDD", vdd, circuit.Ground, device.DC(1.8)))
	nodes := make([]int, 5)
	for i := range nodes {
		nodes[i] = c.Node(string(rune('a' + i)))
	}
	pm := device.DefaultMOSModel(device.PMOS)
	pm.KP = 45e-6
	nm := device.DefaultMOSModel(device.NMOS)
	for i := 0; i < 5; i++ {
		in := nodes[i]
		out := nodes[(i+1)%5]
		c.Add(device.NewMOSFET("MP"+string(rune('0'+i)), out, in, vdd, vdd, pm, 2e-6, 0.5e-6))
		c.Add(device.NewMOSFET("MN"+string(rune('0'+i)), out, in, circuit.Ground, circuit.Ground, nm, 1e-6, 0.5e-6))
	}
	sys, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	ws := sys.NewWorkspace()
	x := make([]float64, sys.N)
	if _, err := Solve(ws, x, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	// All stages sit at the same metastable voltage strictly inside the rails.
	for i := 1; i < 5; i++ {
		if math.Abs(x[nodes[i]]-x[nodes[0]]) > 1e-3 {
			t.Fatalf("stages differ: %g vs %g", x[nodes[i]], x[nodes[0]])
		}
	}
	if x[nodes[0]] < 0.2 || x[nodes[0]] > 1.6 {
		t.Fatalf("metastable point = %g, want inside the rails", x[nodes[0]])
	}
}

func TestHopelessCircuitFails(t *testing.T) {
	// Two ideal voltage sources fighting across one node cannot have an OP.
	c := circuit.New("bad")
	a := c.Node("a")
	c.Add(device.NewVSource("V1", a, circuit.Ground, device.DC(1)))
	c.Add(device.NewVSource("V2", a, circuit.Ground, device.DC(2)))
	sys, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	ws := sys.NewWorkspace()
	x := make([]float64, sys.N)
	if _, err := Solve(ws, x, DefaultOptions()); err == nil {
		t.Fatal("conflicting sources must fail")
	}
}

func TestDefaultOptionFilling(t *testing.T) {
	// Zero-valued options get defaults inside Solve (no panic, solves fine).
	c := circuit.New("z")
	a := c.Node("a")
	c.Add(device.NewVSource("V1", a, circuit.Ground, device.DC(1)))
	c.Add(device.NewResistor("R1", a, circuit.Ground, 50))
	sys, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	ws := sys.NewWorkspace()
	x := make([]float64, sys.N)
	if _, err := Solve(ws, x, Options{}); err != nil {
		t.Fatal(err)
	}
}
