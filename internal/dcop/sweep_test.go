package dcop

import (
	"math"
	"testing"

	"wavepipe/internal/circuit"
	"wavepipe/internal/device"
)

func TestSweepDiodeIV(t *testing.T) {
	// Classic diode I-V curve: sweep the source, read the branch current.
	c := circuit.New("div")
	in := c.Node("in")
	a := c.Node("a")
	src := device.NewVSource("V1", in, circuit.Ground, device.DC(0))
	c.Add(src)
	c.Add(device.NewResistor("R1", in, a, 100))
	c.Add(device.NewDiode("D1", a, circuit.Ground, device.DefaultDiodeModel(), 1))
	sys, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	ws := sys.NewWorkspace()
	w, err := Sweep(ws, src.SetDC, 0, 1.0, 0.05,
		[]string{"a", "iv1"}, []int{1, src.BranchIndex()}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if w.Len() != 21 {
		t.Fatalf("points = %d", w.Len())
	}
	// At 0 V everything is 0; at 1 V the diode conducts a few mA.
	i0, _ := w.At("iv1", 0)
	i1, _ := w.At("iv1", 1)
	if math.Abs(i0) > 1e-9 {
		t.Fatalf("i(0) = %g", i0)
	}
	if -i1 < 1e-3 || -i1 > 10e-3 { // source current is negative (P→N)
		t.Fatalf("i(1) = %g", i1)
	}
	// The diode voltage saturates near 0.6–0.8 V while the drive rises.
	va, _ := w.At("a", 1)
	if va < 0.5 || va > 0.85 {
		t.Fatalf("v(a) at 1 V = %g", va)
	}
}

func TestSweepDescendingAndErrors(t *testing.T) {
	c := circuit.New("r")
	in := c.Node("in")
	src := device.NewVSource("V1", in, circuit.Ground, device.DC(0))
	c.Add(src)
	c.Add(device.NewResistor("R1", in, circuit.Ground, 1e3))
	sys, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	ws := sys.NewWorkspace()
	w, err := Sweep(ws, src.SetDC, 2, -2, -1, []string{"in"}, []int{0}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Stored ascending regardless of sweep direction.
	if w.Times[0] != -2 || w.Times[len(w.Times)-1] != 2 {
		t.Fatalf("axis = %v", w.Times)
	}
	v, _ := w.At("in", -2)
	if v != -2 {
		t.Fatalf("v(-2) = %g", v)
	}
	if _, err := Sweep(ws, src.SetDC, 0, 1, -0.1, nil, nil, DefaultOptions()); err == nil {
		t.Fatal("wrong-sign step must fail")
	}
	if _, err := Sweep(ws, src.SetDC, 0, 1, 0, nil, nil, DefaultOptions()); err == nil {
		t.Fatal("zero step must fail")
	}
}

func TestSweepMOSTransferCurve(t *testing.T) {
	// NMOS inverter VTC via DC sweep: output falls monotonically with vin.
	c := circuit.New("vtc")
	vdd := c.Node("vdd")
	in := c.Node("in")
	out := c.Node("out")
	c.Add(device.NewVSource("VDD", vdd, circuit.Ground, device.DC(1.8)))
	vin := device.NewVSource("VIN", in, circuit.Ground, device.DC(0))
	c.Add(vin)
	c.Add(device.NewResistor("RL", vdd, out, 20e3))
	c.Add(device.NewMOSFET("M1", out, in, circuit.Ground, circuit.Ground,
		device.DefaultMOSModel(device.NMOS), 4e-6, 1e-6))
	sys, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	ws := sys.NewWorkspace()
	outIdx, _ := c.FindNode("out")
	w, err := Sweep(ws, vin.SetDC, 0, 1.8, 0.1, []string{"out"}, []int{outIdx}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	vHigh, _ := w.At("out", 0)
	vLow, _ := w.At("out", 1.8)
	if vHigh < 1.75 {
		t.Fatalf("VTC high = %g", vHigh)
	}
	if vLow > 0.3 {
		t.Fatalf("VTC low = %g", vLow)
	}
	sig, _ := w.Signal("out")
	for i := 1; i < len(sig); i++ {
		if sig[i] > sig[i-1]+1e-9 {
			t.Fatalf("VTC not monotone at %d", i)
		}
	}
}

// Adjoint sensitivities must match brute-force finite differences of the
// operating point.
func TestSensitivityAgainstFiniteDifference(t *testing.T) {
	build := func(r1, r2, v float64) (*circuit.Workspace, int) {
		c := circuit.New("sens")
		in := c.Node("in")
		mid := c.Node("mid")
		c.Add(device.NewVSource("V1", in, circuit.Ground, device.DC(v)))
		c.Add(device.NewResistor("R1", in, mid, r1))
		c.Add(device.NewResistor("R2", mid, circuit.Ground, r2))
		c.Add(device.NewISource("I1", circuit.Ground, mid, device.DC(1e-3)))
		sys, err := c.Build()
		if err != nil {
			t.Fatal(err)
		}
		mi, _ := c.FindNode("mid")
		return sys.NewWorkspace(), mi
	}
	opAt := func(r1, r2, v float64) float64 {
		ws, mi := build(r1, r2, v)
		x := make([]float64, ws.Sys.N)
		if _, err := Solve(ws, x, DefaultOptions()); err != nil {
			t.Fatal(err)
		}
		return x[mi]
	}
	ws, mi := build(1e3, 2e3, 6)
	x := make([]float64, ws.Sys.N)
	sens, err := Sens(ws, x, mi, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(sens) != 4 { // R1.r, R2.r, V1.dc, I1.dc
		t.Fatalf("sensitivity count = %d: %+v", len(sens), sens)
	}
	get := func(dev, param string) float64 {
		for _, s := range sens {
			if s.Device == dev && s.Param == param {
				return s.DVDp
			}
		}
		t.Fatalf("missing sensitivity %s.%s", dev, param)
		return 0
	}
	base := opAt(1e3, 2e3, 6)
	fdR1 := (opAt(1e3*1.0001, 2e3, 6) - base) / (1e3 * 0.0001)
	fdR2 := (opAt(1e3, 2e3*1.0001, 6) - base) / (2e3 * 0.0001)
	fdV := (opAt(1e3, 2e3, 6.0001) - base) / 0.0001
	check := func(name string, got, want float64) {
		if math.Abs(got-want) > 1e-3*(math.Abs(want)+1e-9) {
			t.Fatalf("%s sensitivity = %g, want %g", name, got, want)
		}
	}
	check("R1", get("R1", "r"), fdR1)
	check("R2", get("R2", "r"), fdR2)
	check("V1", get("V1", "dc"), fdV)
	// Normalized values are DVDp·p.
	for _, s := range sens {
		if s.Device == "R1" && math.Abs(s.Normalized-s.DVDp*1e3) > 1e-12 {
			t.Fatalf("normalization: %+v", s)
		}
	}
	// Out-of-range output index errors.
	if _, err := Sens(ws, x, 99, DefaultOptions()); err == nil {
		t.Fatal("bad output index must fail")
	}
}
