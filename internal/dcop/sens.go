package dcop

import (
	"fmt"

	"wavepipe/internal/circuit"
)

// Sensitivity computes DC small-signal sensitivities d v(out) / d p for
// every parameter exposed by the circuit's devices (SPICE .SENS), using the
// adjoint method: with the residual R(x, p) = 0 at the operating point,
//
//	dx/dp = −J⁻¹ · ∂R/∂p   and   d x_out/dp = −λᵀ · ∂R/∂p,
//
// where Jᵀ·λ = e_out. One transpose solve prices every parameter at a dot
// product.
type Sensitivity struct {
	Device string
	Param  string
	// DVDp is the derivative of the observed unknown with respect to the
	// parameter, in the parameter's natural unit (V/Ω, V/V, V/A, ...).
	DVDp float64
	// Normalized is DVDp · p: the output change per relative (100%)
	// parameter change, comparable across parameters.
	Normalized float64
}

// ParamSensitive is implemented by devices exposing DC-sensitivity
// parameters.
type ParamSensitive interface {
	// SensParams lists the parameter names and their current values.
	SensParams() ([]string, []float64)
	// AddDResidual accumulates ∂R/∂param at the operating point x into out.
	AddDResidual(param string, x, out []float64)
}

// Sens computes the operating point (into x, which also seeds the search)
// and the sensitivities of unknown outIdx with respect to every exposed
// parameter.
func Sens(ws *circuit.Workspace, x []float64, outIdx int, opts Options) ([]Sensitivity, error) {
	if outIdx < 0 || outIdx >= ws.Sys.N {
		return nil, fmt.Errorf("dcop: sensitivity output index %d out of range", outIdx)
	}
	if _, err := Solve(ws, x, opts); err != nil {
		return nil, err
	}
	// Re-assemble the Jacobian at the solution and factorize for the
	// adjoint solve.
	ws.Load(x, circuit.LoadParams{Gmin: opts.Gmin, SrcScale: 1, NoLimit: true})
	if err := ws.Solver.Factorize(); err != nil {
		return nil, err
	}
	n := ws.Sys.N
	e := make([]float64, n)
	e[outIdx] = 1
	lambda := make([]float64, n)
	scratch := make([]float64, n)
	ws.Solver.LU().SolveTransposeWith(e, lambda, scratch)

	var out []Sensitivity
	dr := make([]float64, n)
	for _, d := range ws.Sys.Circuit.Devices() {
		ps, ok := d.(ParamSensitive)
		if !ok {
			continue
		}
		names, values := ps.SensParams()
		for k, name := range names {
			for i := range dr {
				dr[i] = 0
			}
			ps.AddDResidual(name, x, dr)
			s := 0.0
			for i := range dr {
				s -= lambda[i] * dr[i]
			}
			out = append(out, Sensitivity{
				Device:     d.Name(),
				Param:      name,
				DVDp:       s,
				Normalized: s * values[k],
			})
		}
	}
	return out, nil
}
