package sparse

import (
	"fmt"
	"sync/atomic"

	"wavepipe/internal/sched"
)

// This file adds the level-scheduled parallel execution of Refactor and the
// triangular solves on top of an existing symbolic factorization.
//
// Dependency structure. Refactoring column k reads exactly the L columns
// i ∈ U(:,k) (the stored elimination pattern) and writes only column k's own
// slices (ux, ud, lx), so columns form a DAG whose levels
//
//	level[k] = 1 + max{ level[i] : i ∈ pattern of U(:,k) }   (0 when empty)
//
// can run concurrently. The same idea applies to the triangular solves with
// the rows of L and U as DAG nodes.
//
// Determinism. Each column's arithmetic in refactorColumn is a self-contained
// instruction sequence identical to the serial sweep, so any level-respecting
// execution order is bit-identical to serial Refactor. The solves need more
// care: the serial column sweep scatters updates, so the parallel kernels
// switch to row-oriented (dot-product) forms whose per-row accumulation
// applies the same terms, in the same order (ascending columns forward,
// descending columns backward), with the same skip-on-zero conditions, onto
// the same starting value — reproducing the serial result bit for bit
// (including the sign of zeros). This is the deterministic-reduction rule:
// every parallel reduction in the simulator must fix its accumulation order
// structurally, never by arrival time.
//
// The schedule is computed once per symbolic pattern, cached on the LU next
// to the pattern itself, and reused by every Refactor/Solve of that pattern.
// (The fill ordering lives one layer up, shared per sparsity structure; the
// level schedule depends on the pivot sequence, which is per-LU.)

// luSchedule caches the level schedule and the row-oriented solve structures
// for one symbolic pattern at one gang width.
type luSchedule struct {
	nw int // gang width the chunk model was computed for

	// Refactor: columns grouped by elimination level.
	refOrder []int32 // columns, level by level
	refPtr   []int32 // level l -> refOrder[refPtr[l]:refPtr[l+1]]
	refChunk []int32 // per level, nw+1 cost-balanced boundaries into the level
	refFrac  float64 // modeled critical-path fraction at nw workers
	refPar   bool    // worth running across the gang

	// Forward solve: strict-lower L in row-major form. Entry p of row j is
	// the coefficient L[j, fwdCol[p]] stored at lx[fwdIdx[p]]; columns
	// ascend within a row, matching the serial update order.
	fwdRp    []int32
	fwdCol   []int32
	fwdIdx   []int32
	fwdOrder []int32
	fwdPtr   []int32
	fwdChunk []int32

	// Backward solve: strict-upper U in row-major form with columns
	// descending within a row, again matching serial update order.
	bwdRp    []int32
	bwdCol   []int32
	bwdIdx   []int32
	bwdOrder []int32
	bwdPtr   []int32
	bwdChunk []int32

	solveFrac float64
	solvePar  bool
}

// Profitability gates. The modeled critical path charges every level one
// barrier of barrierUnits on top of its most expensive chunk, so narrow
// levels (chains: one column per level) price themselves out naturally,
// while wide mesh levels amortize the barrier away. A kernel goes parallel
// only when the model predicts at least a ~1.18× win; on circuit-sized
// meshes the heavy, narrow levels near the elimination-tree root cap the
// win around 1.2–1.4× (refactor) and keep the cheaper triangular solves
// serial until the pattern is a few thousand unknowns — consistent with the
// known difficulty of parallel sparse triangular solves at small scale.
const (
	maxCritFraction = 0.85
	barrierUnits    = 48 // ≈100–200ns barrier in nnz-op cost units
)

// schedule returns the cached level schedule for gang width nw, building it
// on first use (or when the width changes, which only happens if a pool of a
// different size is attached mid-run — effectively never).
func (f *LU) schedule(nw int) *luSchedule {
	if f.lsched != nil && f.lsched.nw == nw {
		return f.lsched
	}
	n := f.n
	sc := &luSchedule{nw: nw}

	// --- Refactor levels over columns ---
	level := make([]int32, n)
	cost := make([]int64, n)
	nlev := int32(0)
	for k := 0; k < n; k++ {
		lv := int32(0)
		c := int64(2 + (f.up[k+1] - f.up[k]) + 2*(f.lp[k+1]-f.lp[k]))
		for p := f.up[k]; p < f.up[k+1]; p++ {
			i := f.ui[p]
			if level[i]+1 > lv {
				lv = level[i] + 1
			}
			c += int64(1 + f.lp[i+1] - f.lp[i])
		}
		level[k] = lv
		cost[k] = c
		if lv+1 > nlev {
			nlev = lv + 1
		}
	}
	sc.refOrder, sc.refPtr = groupByLevel(level, nlev)
	sc.refChunk, sc.refFrac = balanceChunks(sc.refOrder, sc.refPtr, cost, nw)
	sc.refPar = nw > 1 && sc.refFrac <= maxCritFraction

	// --- Row-major L (forward solve) ---
	sc.fwdRp = make([]int32, n+1)
	for _, j := range f.li {
		sc.fwdRp[j+1]++
	}
	for j := 0; j < n; j++ {
		sc.fwdRp[j+1] += sc.fwdRp[j]
	}
	sc.fwdCol = make([]int32, len(f.li))
	sc.fwdIdx = make([]int32, len(f.li))
	cur := make([]int32, n)
	copy(cur, sc.fwdRp[:n])
	for k := 0; k < n; k++ { // ascending k ⇒ ascending columns within each row
		for q := f.lp[k]; q < f.lp[k+1]; q++ {
			j := f.li[q]
			sc.fwdCol[cur[j]] = int32(k)
			sc.fwdIdx[cur[j]] = int32(q)
			cur[j]++
		}
	}
	fcost := cost[:0] // reuse; same length n
	flev := level     // reuse
	nlev = 0
	for j := 0; j < n; j++ {
		lv := int32(0)
		for p := sc.fwdRp[j]; p < sc.fwdRp[j+1]; p++ {
			if flev[sc.fwdCol[p]]+1 > lv {
				lv = flev[sc.fwdCol[p]] + 1
			}
		}
		flev[j] = lv
		fcost = append(fcost, int64(1+sc.fwdRp[j+1]-sc.fwdRp[j]))
		if lv+1 > nlev {
			nlev = lv + 1
		}
	}
	sc.fwdOrder, sc.fwdPtr = groupByLevel(flev, nlev)
	var fFrac float64
	sc.fwdChunk, fFrac = balanceChunks(sc.fwdOrder, sc.fwdPtr, fcost, nw)

	// --- Row-major U (backward solve) ---
	sc.bwdRp = make([]int32, n+1)
	for _, j := range f.ui {
		sc.bwdRp[j+1]++
	}
	for j := 0; j < n; j++ {
		sc.bwdRp[j+1] += sc.bwdRp[j]
	}
	sc.bwdCol = make([]int32, len(f.ui))
	sc.bwdIdx = make([]int32, len(f.ui))
	for i := range cur {
		cur[i] = sc.bwdRp[i]
	}
	for k := n - 1; k >= 0; k-- { // descending k ⇒ descending columns per row
		for p := f.up[k]; p < f.up[k+1]; p++ {
			j := f.ui[p]
			sc.bwdCol[cur[j]] = int32(k)
			sc.bwdIdx[cur[j]] = int32(p)
			cur[j]++
		}
	}
	bcost := make([]int64, n)
	blev := make([]int32, n)
	nlev = 0
	for j := n - 1; j >= 0; j-- {
		lv := int32(0)
		for p := sc.bwdRp[j]; p < sc.bwdRp[j+1]; p++ {
			if blev[sc.bwdCol[p]]+1 > lv {
				lv = blev[sc.bwdCol[p]] + 1
			}
		}
		blev[j] = lv
		bcost[j] = int64(2 + sc.bwdRp[j+1] - sc.bwdRp[j])
		if lv+1 > nlev {
			nlev = lv + 1
		}
	}
	sc.bwdOrder, sc.bwdPtr = groupByLevel(blev, nlev)
	var bFrac float64
	sc.bwdChunk, bFrac = balanceChunks(sc.bwdOrder, sc.bwdPtr, bcost, nw)

	sc.solveFrac = (fFrac + bFrac) / 2
	sc.solvePar = nw > 1 && fFrac <= maxCritFraction && bFrac <= maxCritFraction

	f.lsched = sc
	return sc
}

// groupByLevel buckets indices 0..len(level)-1 by level, ascending index
// within each level (stable counting sort).
func groupByLevel(level []int32, nlev int32) (order, ptr []int32) {
	if nlev == 0 {
		return nil, []int32{0}
	}
	ptr = make([]int32, nlev+1)
	for _, lv := range level {
		ptr[lv+1]++
	}
	for l := int32(0); l < nlev; l++ {
		ptr[l+1] += ptr[l]
	}
	order = make([]int32, len(level))
	cur := make([]int32, nlev)
	copy(cur, ptr[:nlev])
	for j, lv := range level {
		order[cur[lv]] = int32(j)
		cur[lv]++
	}
	return order, ptr
}

// balanceChunks precomputes, for every level, nw+1 contiguous cost-balanced
// chunk boundaries (greedy: each worker takes items until its cumulative
// share reaches the level's per-worker target). The boundaries are part of
// the schedule, so the work assignment — and therefore any execution trace —
// is a pure function of the pattern, never of runtime arrival order. It also
// returns the modeled critical-path fraction: per level, the most expensive
// chunk plus one barrier of barrierUnits, summed and divided by the serial
// cost.
func balanceChunks(order, ptr []int32, cost []int64, nw int) (chunks []int32, frac float64) {
	nlevels := len(ptr) - 1
	if nlevels <= 0 {
		return nil, 1
	}
	chunks = make([]int32, nlevels*(nw+1))
	var total, crit int64
	for l := 0; l < nlevels; l++ {
		seg := order[ptr[l]:ptr[l+1]]
		var levelCost int64
		for _, j := range seg {
			levelCost += cost[j]
		}
		total += levelCost
		base := l * (nw + 1)
		var lmax, acc int64
		pos := 0
		for w := 0; w < nw; w++ {
			chunks[base+w] = int32(pos)
			prev := acc
			if w < nw-1 {
				target := levelCost * int64(w+1) / int64(nw)
				for pos < len(seg) && acc < target {
					acc += cost[seg[pos]]
					pos++
				}
			} else { // last worker sweeps up whatever remains
				for pos < len(seg) {
					acc += cost[seg[pos]]
					pos++
				}
			}
			if c := acc - prev; c > lmax {
				lmax = c
			}
		}
		chunks[base+nw] = int32(len(seg))
		crit += lmax + barrierUnits
	}
	if total == 0 {
		return chunks, 1
	}
	return chunks, float64(crit) / float64(total)
}

// evenRange splits n uniform-cost items into nw even contiguous chunks and
// returns chunk w's half-open range (used by the permutation phases).
func evenRange(n, w, nw int) (lo, hi int) {
	return w * n / nw, (w + 1) * n / nw
}

// ScheduleInfo reports the level-schedule geometry of a factorization for a
// given gang width — used by benchmarks and the corescale figure metadata.
type ScheduleInfo struct {
	RefactorLevels   int
	RefactorCritFrac float64
	RefactorParallel bool
	SolveLevels      int
	SolveCritFrac    float64
	SolveParallel    bool
}

// Schedule returns the level-schedule geometry for gang width nw.
func (f *LU) Schedule(nw int) ScheduleInfo {
	sc := f.schedule(nw)
	return ScheduleInfo{
		RefactorLevels:   len(sc.refPtr) - 1,
		RefactorCritFrac: sc.refFrac,
		RefactorParallel: sc.refPar,
		SolveLevels:      (len(sc.fwdPtr) - 1) + (len(sc.bwdPtr) - 1),
		SolveCritFrac:    sc.solveFrac,
		SolveParallel:    sc.solvePar,
	}
}

// RefactorParallel is Refactor executed level-by-level across the pool's
// gang. It requires pool.Gang(); callers on a degraded pool use serial
// Refactor, which is bit-identical (per-column arithmetic is independent of
// execution order). Like Refactor, an ErrRefactorPivot return leaves the
// factorization content undefined.
func (f *LU) RefactorParallel(m *Matrix, pool *sched.Pool) error {
	if m.N() != f.n {
		return fmt.Errorf("sparse: Refactor dimension mismatch: %d vs %d", m.N(), f.n)
	}
	nw := pool.Workers()
	sc := f.schedule(nw)
	for len(f.parWork) < nw {
		f.parWork = append(f.parWork, make([]float64, f.n))
	}
	f.parBar.Reset(int32(nw))
	var bad atomic.Bool
	pool.Run(func(wk int) {
		defer func() {
			if r := recover(); r != nil {
				f.parBar.Poison()
				panic(r)
			}
		}()
		var sense uint32
		w := f.parWork[wk]
		for lv := 0; lv+1 < len(sc.refPtr); lv++ {
			// A failed pivot only skips the remaining work; every worker
			// still crosses every barrier. Returning on bad instead would
			// strand a gang member: the last arriver at a barrier passes
			// through instantly and can set bad in the NEXT level before
			// its peers have run their post-barrier check — those peers
			// would then leave without reaching the barrier it now waits
			// at. Only poison may exit early (a poisoned barrier releases
			// all current and future waiters).
			if !bad.Load() {
				cols := sc.refOrder[sc.refPtr[lv]:sc.refPtr[lv+1]]
				base := lv * (nw + 1)
				lo, hi := sc.refChunk[base+wk], sc.refChunk[base+wk+1]
				for _, k := range cols[lo:hi] {
					if !f.refactorColumn(m, int(k), w) {
						bad.Store(true)
						break
					}
				}
			}
			f.parBar.Wait(&sense)
			if f.parBar.Poisoned() {
				return
			}
		}
	})
	if bad.Load() {
		return ErrRefactorPivot
	}
	return nil
}

// SolveParallelWith runs the permutation scatter and both triangular solves
// level-by-level across the pool's gang, bit-identical to SolveWith (see the
// determinism note at the top of the file). Requires pool.Gang(); b and x
// may alias; scratch must have length N.
func (f *LU) SolveParallelWith(b, x, scratch []float64, pool *sched.Pool) {
	nw := pool.Workers()
	sc := f.schedule(nw)
	w := scratch
	f.parBar.Reset(int32(nw))
	pool.Run(func(wk int) {
		defer func() {
			if r := recover(); r != nil {
				f.parBar.Poison()
				panic(r)
			}
		}()
		var sense uint32
		lo, hi := evenRange(f.n, wk, nw)
		for k := lo; k < hi; k++ {
			w[k] = b[f.rowPerm[k]]
		}
		f.parBar.Wait(&sense)
		// Forward: row j of L dotted against finalized y values from strictly
		// lower levels; ascending columns + skip-on-zero match the serial
		// update sequence exactly.
		for lv := 0; lv+1 < len(sc.fwdPtr); lv++ {
			rows := sc.fwdOrder[sc.fwdPtr[lv]:sc.fwdPtr[lv+1]]
			base := lv * (nw + 1)
			rlo, rhi := sc.fwdChunk[base+wk], sc.fwdChunk[base+wk+1]
			for _, jj := range rows[rlo:rhi] {
				j := int(jj)
				acc := w[j]
				for p := sc.fwdRp[j]; p < sc.fwdRp[j+1]; p++ {
					yv := w[sc.fwdCol[p]]
					if yv == 0 {
						continue
					}
					acc -= f.lx[sc.fwdIdx[p]] * yv
				}
				w[j] = acc
			}
			f.parBar.Wait(&sense)
			if f.parBar.Poisoned() {
				return
			}
		}
		// Backward: row j of U with descending columns, then the diagonal
		// division — the same operation order as the serial backward sweep.
		for lv := 0; lv+1 < len(sc.bwdPtr); lv++ {
			rows := sc.bwdOrder[sc.bwdPtr[lv]:sc.bwdPtr[lv+1]]
			base := lv * (nw + 1)
			rlo, rhi := sc.bwdChunk[base+wk], sc.bwdChunk[base+wk+1]
			for _, jj := range rows[rlo:rhi] {
				j := int(jj)
				acc := w[j]
				for p := sc.bwdRp[j]; p < sc.bwdRp[j+1]; p++ {
					zv := w[sc.bwdCol[p]]
					if zv == 0 {
						continue
					}
					acc -= f.ux[sc.bwdIdx[p]] * zv
				}
				w[j] = acc / f.ud[j]
			}
			f.parBar.Wait(&sense)
			if f.parBar.Poisoned() {
				return
			}
		}
		for k := lo; k < hi; k++ {
			x[f.colPerm[k]] = w[k]
		}
	})
}
