package sparse

import "testing"

// tridiag builds a compiled n×n tridiagonal pattern.
func tridiag(n int) *Matrix {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.Reserve(i, i)
		if i > 0 {
			b.Reserve(i, i-1)
			b.Reserve(i-1, i)
		}
	}
	return b.Compile()
}

// SharedOrdering must compute the fill-reducing permutation once per
// distinct pattern: a second request for the same pattern — whether the
// same Matrix or a structurally identical rebuild — is a cache hit
// returning an equal permutation.
func TestSharedOrderingCachesByPattern(t *testing.T) {
	h0, m0 := OrderingCacheCounters()

	a := tridiag(40)
	p1 := SharedOrdering(a, OrderMinDegree)
	if len(p1) != 40 {
		t.Fatalf("perm length %d", len(p1))
	}
	_, mAfterFirst := OrderingCacheCounters()
	if mAfterFirst == m0 {
		t.Fatal("first request was not a miss")
	}

	// Same matrix again: identity fast path.
	p2 := SharedOrdering(a, OrderMinDegree)
	// Structurally identical rebuild: full pattern compare.
	p3 := SharedOrdering(tridiag(40), OrderMinDegree)

	h1, m1 := OrderingCacheCounters()
	if h1-h0 < 2 {
		t.Fatalf("expected >=2 hits, got %d", h1-h0)
	}
	if m1 != mAfterFirst {
		t.Fatalf("repeat requests missed: misses %d -> %d", mAfterFirst, m1)
	}
	for i := range p1 {
		if p1[i] != p2[i] || p1[i] != p3[i] {
			t.Fatalf("cached permutations disagree at %d", i)
		}
	}

	// A different pattern must not be answered from the cache.
	q := SharedOrdering(tridiag(41), OrderMinDegree)
	if len(q) != 41 {
		t.Fatalf("wrong perm for different pattern: len %d", len(q))
	}
	_, m2 := OrderingCacheCounters()
	if m2 == m1 {
		t.Fatal("different pattern did not miss")
	}
}

// The cached permutation must factorize the pattern it was computed for —
// i.e. SharedOrdering agrees with a direct Factorize using the same rule.
func TestSharedOrderingMatchesDirect(t *testing.T) {
	m := tridiag(25)
	perm := SharedOrdering(m, OrderMinDegree)
	seen := make([]bool, len(perm))
	for _, c := range perm {
		if c < 0 || c >= len(perm) || seen[c] {
			t.Fatalf("not a permutation: %v", perm)
		}
		seen[c] = true
	}
}
