package sparse

import "sync"

// The ordering cache answers repeat symbolic analyses: two Systems built
// from the same deck (a re-run of an identical netlist, or the K lanes of
// an ensemble) produce bit-identical CSC patterns, and a fill-reducing
// ordering depends only on that pattern. Recomputing minimum degree per run
// is pure waste, so ComputeOrdering-through-SharedOrdering keeps a small
// process-wide cache keyed by the exact pattern.
//
// An entry stores references to the pattern's ColPtr/RowIdx slices plus a
// cheap (n, nnz, fingerprint) prefilter, and a full O(nnz) comparison
// confirms a hit — there are no false positives. The cache is bounded and
// evicts least-recently-used; circuit patterns are immutable after Compile,
// so holding slice references is safe.

const orderingCacheSize = 8

type orderingEntry struct {
	ord    Ordering
	n      int
	fp     uint64
	colPtr []int
	rowIdx []int
	perm   []int
	tick   uint64
}

var orderingCache struct {
	mu      sync.Mutex
	entries [orderingCacheSize]*orderingEntry
	tick    uint64
	hits    int64
	misses  int64
}

// patternFingerprint hashes the pattern (FNV-1a over ColPtr and RowIdx) as
// a prefilter so misses rarely pay the full comparison.
func patternFingerprint(m *Matrix) uint64 {
	h := uint64(1469598103934665603)
	mix := func(v int) {
		h ^= uint64(v)
		h *= 1099511628211
	}
	mix(m.n)
	for _, v := range m.ColPtr {
		mix(v)
	}
	for _, v := range m.RowIdx {
		mix(v)
	}
	return h
}

func samePattern(e *orderingEntry, m *Matrix) bool {
	if e.n != m.n || len(e.rowIdx) != len(m.RowIdx) {
		return false
	}
	// Identity fast path: clones share the pattern slices.
	if len(m.ColPtr) > 0 && len(e.colPtr) == len(m.ColPtr) && &e.colPtr[0] == &m.ColPtr[0] {
		return true
	}
	for i, v := range e.colPtr {
		if m.ColPtr[i] != v {
			return false
		}
	}
	for i, v := range e.rowIdx {
		if m.RowIdx[i] != v {
			return false
		}
	}
	return true
}

// SharedOrdering returns ComputeOrdering(m, o), serving repeat patterns
// from the process-wide cache. Callers must treat the returned permutation
// as immutable (FactorizeWithPerm copies it, so the solver layer already
// honors that). Safe for concurrent use.
func SharedOrdering(m *Matrix, o Ordering) []int {
	fp := patternFingerprint(m)
	c := &orderingCache
	c.mu.Lock()
	c.tick++
	for _, e := range c.entries {
		if e != nil && e.ord == o && e.fp == fp && samePattern(e, m) {
			e.tick = c.tick
			c.hits++
			perm := e.perm
			c.mu.Unlock()
			return perm
		}
	}
	c.misses++
	c.mu.Unlock()

	perm := ComputeOrdering(m, o)

	c.mu.Lock()
	// Insert into the stalest slot (re-check for a racing insert is not
	// needed for correctness: duplicates just waste one slot until evicted).
	slot := 0
	for i, e := range c.entries {
		if e == nil {
			slot = i
			break
		}
		if e.tick < c.entries[slot].tick {
			slot = i
		}
	}
	c.tick++
	c.entries[slot] = &orderingEntry{
		ord: o, n: m.n, fp: fp,
		colPtr: m.ColPtr, rowIdx: m.RowIdx,
		perm: perm, tick: c.tick,
	}
	c.mu.Unlock()
	return perm
}

// OrderingCacheCounters reports cumulative SharedOrdering hits and misses
// (tests use deltas; the counters are process-wide).
func OrderingCacheCounters() (hits, misses int64) {
	orderingCache.mu.Lock()
	defer orderingCache.mu.Unlock()
	return orderingCache.hits, orderingCache.misses
}
