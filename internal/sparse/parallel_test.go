package sparse

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"wavepipe/internal/sched"
)

// meshMatrix builds the 5-point Laplacian-like pattern of a side×side power
// grid — the structure with the widest elimination levels in the suite.
func meshMatrix(side int, rng *rand.Rand) *Matrix {
	n := side * side
	b := NewBuilder(n)
	at := func(i, j int) int { return i*side + j }
	type stamp struct {
		slot int
		val  float64
	}
	var stamps []stamp
	for i := 0; i < side; i++ {
		for j := 0; j < side; j++ {
			u := at(i, j)
			stamps = append(stamps, stamp{b.Reserve(u, u), 4.1 + 0.1*rng.Float64()})
			if i+1 < side {
				v := at(i+1, j)
				g := -1 - 0.05*rng.Float64()
				stamps = append(stamps, stamp{b.Reserve(u, v), g}, stamp{b.Reserve(v, u), g})
			}
			if j+1 < side {
				v := at(i, j+1)
				g := -1 - 0.05*rng.Float64()
				stamps = append(stamps, stamp{b.Reserve(u, v), g}, stamp{b.Reserve(v, u), g})
			}
		}
	}
	m := b.Compile()
	for _, s := range stamps {
		m.Add(s.slot, s.val)
	}
	return m
}

// tridiagMatrix builds a chain: every elimination level holds one column, so
// the schedule must stay serial.
func tridiagMatrix(n int) *Matrix {
	b := NewBuilder(n)
	var slots []int
	var vals []float64
	for i := 0; i < n; i++ {
		slots = append(slots, b.Reserve(i, i))
		vals = append(vals, 3)
		if i+1 < n {
			slots = append(slots, b.Reserve(i, i+1), b.Reserve(i+1, i))
			vals = append(vals, -1, -1)
		}
	}
	m := b.Compile()
	for k, s := range slots {
		m.Add(s, vals[k])
	}
	return m
}

func forcedPool(t *testing.T, n int) *sched.Pool {
	t.Helper()
	p := sched.NewPool(n)
	if p == nil {
		t.Fatalf("NewPool(%d) = nil", n)
	}
	p.Force = true
	t.Cleanup(p.Close)
	return p
}

func bitsEqual(t *testing.T, name string, got, want []float64) {
	t.Helper()
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s[%d]: %x (%g) != serial %x (%g)",
				name, i, math.Float64bits(got[i]), got[i],
				math.Float64bits(want[i]), want[i])
		}
	}
}

// TestRefactorParallelBitIdentical factorizes the same mesh twice, perturbs
// the values, refactors one copy serially and one level-scheduled, and
// demands bitwise-equal factors.
func TestRefactorParallelBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := meshMatrix(24, rng)
	serial, err := Factorize(m, OrderMinDegree, DefaultPivotTolerance)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Factorize(m, OrderMinDegree, DefaultPivotTolerance)
	if err != nil {
		t.Fatal(err)
	}
	pool := forcedPool(t, 4)
	info := par.Schedule(pool.Workers())
	if !info.RefactorParallel {
		t.Fatalf("mesh schedule not parallel: %+v", info)
	}
	for round := 0; round < 5; round++ {
		for i := range m.Values {
			m.Values[i] *= 1 + 0.01*rng.NormFloat64()
		}
		if err := serial.Refactor(m); err != nil {
			t.Fatalf("round %d serial: %v", round, err)
		}
		if err := par.RefactorParallel(m, pool); err != nil {
			t.Fatalf("round %d parallel: %v", round, err)
		}
		bitsEqual(t, "lx", par.lx, serial.lx)
		bitsEqual(t, "ux", par.ux, serial.ux)
		bitsEqual(t, "ud", par.ud, serial.ud)
	}
}

// TestSolveParallelBitIdentical checks the row-oriented level-scheduled
// triangular solves reproduce the serial column sweeps bit for bit,
// including structurally-zero right-hand sides (the skip-on-zero paths).
func TestSolveParallelBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := meshMatrix(24, rng)
	lu, err := Factorize(m, OrderMinDegree, DefaultPivotTolerance)
	if err != nil {
		t.Fatal(err)
	}
	pool := forcedPool(t, 4)
	n := m.N()
	scratchS := make([]float64, n)
	scratchP := make([]float64, n)
	xs := make([]float64, n)
	xp := make([]float64, n)
	rhs := make([]float64, n)
	for round := 0; round < 6; round++ {
		for i := range rhs {
			switch {
			case round == 0 && i%3 != 0:
				rhs[i] = 0 // sparse rhs: exercises the zero skips
			case round == 1 && i%2 == 0:
				rhs[i] = math.Copysign(0, -1) // negative zeros must survive
			default:
				rhs[i] = rng.NormFloat64()
			}
		}
		lu.SolveWith(rhs, xs, scratchS)
		lu.SolveParallelWith(rhs, xp, scratchP, pool)
		bitsEqual(t, "x", xp, xs)
	}
	// Aliased solve (b == x), as used by iterative refinement.
	copy(xs, rhs)
	copy(xp, rhs)
	lu.SolveWith(xs, xs, scratchS)
	lu.SolveParallelWith(xp, xp, scratchP, pool)
	bitsEqual(t, "aliased x", xp, xs)
}

// TestSolverSchedBitIdentical runs the whole Solver path (factorize,
// refactor loop, solve with refinement) with and without an attached gang
// and compares every solution bitwise.
func TestSolverSchedBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m1 := meshMatrix(24, rng)
	mp := meshMatrix(24, rand.New(rand.NewSource(3))) // identical values: same seed
	for i := range m1.Values {
		if m1.Values[i] != mp.Values[i] {
			t.Fatal("seeded mesh copies differ")
		}
	}
	ss := NewSolver(m1, OrderMinDegree)
	sp := NewSolver(mp, OrderMinDegree)
	sp.Sched = forcedPool(t, 3)
	ss.Refine = true
	sp.Refine = true
	n := m1.N()
	xs := make([]float64, n)
	xp := make([]float64, n)
	rhs := make([]float64, n)
	for round := 0; round < 4; round++ {
		scale := 1 + 0.02*rng.NormFloat64()
		for i := range m1.Values {
			m1.Values[i] *= scale
			mp.Values[i] *= scale
		}
		if err := ss.FactorizeFresh(); err != nil {
			t.Fatal(err)
		}
		if err := sp.FactorizeFresh(); err != nil {
			t.Fatal(err)
		}
		for i := range rhs {
			rhs[i] = rng.NormFloat64()
		}
		if err := ss.Solve(rhs, xs); err != nil {
			t.Fatal(err)
		}
		if err := sp.Solve(rhs, xp); err != nil {
			t.Fatal(err)
		}
		bitsEqual(t, "solver x", xp, xs)
	}
	if sp.Refactorizations == 0 {
		t.Fatal("scheduled solver never took the refactor path")
	}
	if sp.LUWallNanos <= 0 || sp.LUCritNanos <= 0 {
		t.Fatalf("LU timing not accumulated: wall=%d crit=%d", sp.LUWallNanos, sp.LUCritNanos)
	}
}

// TestRefactorParallelDetectsDegeneratePivot mirrors the serial degenerate
// pivot test: after zeroing the matrix diagonal region that backed a pivot,
// the parallel refactor must return ErrRefactorPivot and the pool must stay
// usable.
func TestRefactorParallelDetectsDegeneratePivot(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := meshMatrix(16, rng)
	lu, err := Factorize(m, OrderMinDegree, DefaultPivotTolerance)
	if err != nil {
		t.Fatal(err)
	}
	pool := forcedPool(t, 4)
	// Collapse the values so every stored pivot becomes degenerate relative
	// to its column.
	for i := range m.Values {
		m.Values[i] = 0
	}
	m.Values[0] = 1
	if err := lu.RefactorParallel(m, pool); !errors.Is(err, ErrRefactorPivot) {
		t.Fatalf("err = %v, want ErrRefactorPivot", err)
	}
	// Pool still serviceable after the abandoned gang.
	ok := 0
	pool.Run(func(w int) {
		if w == 0 {
			ok = 1
		}
	})
	if ok != 1 {
		t.Fatal("pool unusable after pivot failure")
	}
}

// TestScheduleGating checks the profitability gates: mesh refactors
// parallelize, the cheaper triangular solves need a much larger pattern,
// and chains stay fully serial (one column per level prices itself out via
// the modeled barrier cost).
func TestScheduleGating(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	mesh := meshMatrix(32, rng)
	lum, err := Factorize(mesh, OrderMinDegree, DefaultPivotTolerance)
	if err != nil {
		t.Fatal(err)
	}
	mi := lum.Schedule(4)
	t.Logf("mesh 32x32: %+v", mi)
	if !mi.RefactorParallel {
		t.Errorf("mesh refactor gated off: %+v", mi)
	}
	if mi.SolveParallel {
		t.Errorf("mesh 32x32 solve should stay serial at nw=4: %+v", mi)
	}

	big := meshMatrix(48, rng)
	lub, err := Factorize(big, OrderMinDegree, DefaultPivotTolerance)
	if err != nil {
		t.Fatal(err)
	}
	bi := lub.Schedule(8)
	t.Logf("mesh 48x48: %+v", bi)
	if !bi.RefactorParallel || !bi.SolveParallel {
		t.Errorf("mesh 48x48 at nw=8 should parallelize both: %+v", bi)
	}

	chain := tridiagMatrix(1024)
	luc, err := Factorize(chain, OrderNatural, DefaultPivotTolerance)
	if err != nil {
		t.Fatal(err)
	}
	ci := luc.Schedule(4)
	t.Logf("tridiag 1024: %+v", ci)
	if ci.RefactorParallel || ci.SolveParallel {
		t.Errorf("chain schedule not gated off: %+v", ci)
	}
}
