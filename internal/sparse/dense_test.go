package sparse

// Dense Gaussian elimination reference used only by tests to validate the
// sparse kernel.

import "math"

func denseSolve(a [][]float64, b []float64) ([]float64, bool) {
	n := len(a)
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n+1)
		copy(m[i], a[i])
		m[i][n] = b[i]
	}
	for col := 0; col < n; col++ {
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[piv][col]) {
				piv = r
			}
		}
		if math.Abs(m[piv][col]) < 1e-13 {
			return nil, false
		}
		m[col], m[piv] = m[piv], m[col]
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := m[r][col] / m[col][col]
			if f == 0 {
				continue
			}
			for c := col; c <= n; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = m[i][n] / m[i][i]
	}
	return x, true
}
