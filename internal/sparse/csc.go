// Package sparse implements the sparse linear algebra kernel used by the
// circuit engines: compressed sparse column (CSC) matrices with a fixed
// nonzero pattern, fill-reducing orderings, and a KLU-style LU factorization
// with a fast numeric refactorization path for Newton iterations where the
// pattern never changes.
package sparse

import (
	"fmt"
	"sort"
)

// Builder accumulates the nonzero pattern of a matrix before it is compiled
// into a CSC matrix. Circuit stamping reserves each (row, col) slot once at
// setup time and receives a stable slot index used for O(1) value
// accumulation on every Newton iteration.
type Builder struct {
	n     int
	index map[[2]int]int
	rows  []int
	cols  []int
}

// NewBuilder returns a Builder for an n×n matrix.
func NewBuilder(n int) *Builder {
	return &Builder{n: n, index: make(map[[2]int]int)}
}

// N returns the matrix dimension.
func (b *Builder) N() int { return b.n }

// Reserve registers the (row, col) slot (0-based) and returns its stable
// slot index. Reserving the same slot twice returns the same index.
// Reserve panics on out-of-range coordinates: that is a programming error in
// the stamping code, not a runtime condition.
func (b *Builder) Reserve(row, col int) int {
	if row < 0 || row >= b.n || col < 0 || col >= b.n {
		panic(fmt.Sprintf("sparse: Reserve(%d,%d) out of range for n=%d", row, col, b.n))
	}
	key := [2]int{row, col}
	if idx, ok := b.index[key]; ok {
		return idx
	}
	idx := len(b.rows)
	b.index[key] = idx
	b.rows = append(b.rows, row)
	b.cols = append(b.cols, col)
	return idx
}

// NNZ returns the number of reserved slots so far.
func (b *Builder) NNZ() int { return len(b.rows) }

// SlotRow returns the row of a slot index returned by Reserve. The circuit
// layer uses it to recover the write-conflict footprint of each device when
// building the coloring for parallel direct stamping.
func (b *Builder) SlotRow(slot int) int { return b.rows[slot] }

// SlotCol returns the column of a slot index returned by Reserve.
func (b *Builder) SlotCol(slot int) int { return b.cols[slot] }

// Compile freezes the pattern into a Matrix. The Builder may continue to be
// used afterwards, but slots reserved later are not part of the compiled
// matrix.
func (b *Builder) Compile() *Matrix {
	nnz := len(b.rows)
	m := &Matrix{
		n:      b.n,
		ColPtr: make([]int, b.n+1),
		RowIdx: make([]int, nnz),
		Values: make([]float64, nnz),
		slot:   make([]int, nnz),
	}
	// Count entries per column, then prefix-sum into ColPtr.
	for _, c := range b.cols {
		m.ColPtr[c+1]++
	}
	for j := 0; j < b.n; j++ {
		m.ColPtr[j+1] += m.ColPtr[j]
	}
	next := make([]int, b.n)
	copy(next, m.ColPtr[:b.n])
	for k := 0; k < nnz; k++ {
		c := b.cols[k]
		p := next[c]
		next[c]++
		m.RowIdx[p] = b.rows[k]
		m.slot[p] = k
	}
	// Sort rows within each column and keep slot mapping aligned.
	for j := 0; j < b.n; j++ {
		lo, hi := m.ColPtr[j], m.ColPtr[j+1]
		idx := make([]int, hi-lo)
		for i := range idx {
			idx[i] = lo + i
		}
		sort.Slice(idx, func(a, bb int) bool { return m.RowIdx[idx[a]] < m.RowIdx[idx[bb]] })
		rows := make([]int, hi-lo)
		slots := make([]int, hi-lo)
		for i, p := range idx {
			rows[i] = m.RowIdx[p]
			slots[i] = m.slot[p]
		}
		copy(m.RowIdx[lo:hi], rows)
		copy(m.slot[lo:hi], slots)
	}
	// slotPos[slotIdx] = position in CSC arrays.
	m.slotPos = make([]int, nnz)
	for p, s := range m.slot {
		m.slotPos[s] = p
	}
	return m
}

// Matrix is an n×n sparse matrix in CSC layout with a frozen pattern.
// Values may be rewritten between factorizations; the pattern may not.
type Matrix struct {
	n      int
	ColPtr []int     // len n+1
	RowIdx []int     // len nnz, sorted within each column
	Values []float64 // len nnz

	slot    []int // CSC position -> builder slot index
	slotPos []int // builder slot index -> CSC position
}

// N returns the matrix dimension.
func (m *Matrix) N() int { return m.n }

// Clone returns a matrix sharing this matrix's (immutable) pattern with a
// fresh, zeroed value array. Worker threads computing different time points
// concurrently each own a clone; slot indices from the original Builder are
// valid on every clone.
func (m *Matrix) Clone() *Matrix {
	c := *m
	c.Values = make([]float64, len(m.Values))
	return &c
}

// NNZ returns the number of stored entries.
func (m *Matrix) NNZ() int { return len(m.RowIdx) }

// Zero clears all stored values (the pattern is untouched).
func (m *Matrix) Zero() {
	for i := range m.Values {
		m.Values[i] = 0
	}
}

// Add accumulates v into the slot previously returned by Builder.Reserve.
func (m *Matrix) Add(slot int, v float64) {
	m.Values[m.slotPos[slot]] += v
}

// SlotValue returns the value currently stored in the slot previously
// returned by Builder.Reserve. The incremental assembly engine reads a
// device's slots around its evaluation to journal the stamp deltas it
// replays on bypassed iterations.
func (m *Matrix) SlotValue(slot int) float64 {
	return m.Values[m.slotPos[slot]]
}

// SlotPos returns the CSC position backing a slot. Positions are identical
// across clones of the same pattern, so a caller that precomputes them once
// can index Values directly on every clone instead of paying the slot
// indirection on each access (the incremental engine's capture and replay
// loops are exactly such a hot path).
func (m *Matrix) SlotPos(slot int) int {
	return m.slotPos[slot]
}

// SlotAt returns the builder slot index stored at (row, col), or -1 if the
// pattern has no entry there. The ensemble engine uses it to replay a
// structurally identical circuit's Reserve calls against a frozen host
// pattern, so variant devices obtain slot ids valid on every clone of that
// pattern. O(log nnz(col)).
func (m *Matrix) SlotAt(row, col int) int {
	if row < 0 || row >= m.n || col < 0 || col >= m.n {
		return -1
	}
	lo, hi := m.ColPtr[col], m.ColPtr[col+1]
	p := lo + sort.SearchInts(m.RowIdx[lo:hi], row)
	if p < hi && m.RowIdx[p] == row {
		return m.slot[p]
	}
	return -1
}

// CloneWithValues is Clone with a caller-supplied value array, so a batch of
// lane matrices can stride one contiguous backing block (struct-of-arrays
// layout). vals must have length NNZ; it is zeroed and adopted, not copied.
func (m *Matrix) CloneWithValues(vals []float64) *Matrix {
	if len(vals) != len(m.Values) {
		panic(fmt.Sprintf("sparse: CloneWithValues needs len %d, got %d", len(m.Values), len(vals)))
	}
	for i := range vals {
		vals[i] = 0
	}
	c := *m
	c.Values = vals
	return &c
}

// At returns the value at (row, col), or 0 if the slot is not part of the
// pattern. Intended for tests and diagnostics; O(log nnz(col)).
func (m *Matrix) At(row, col int) float64 {
	lo, hi := m.ColPtr[col], m.ColPtr[col+1]
	p := lo + sort.SearchInts(m.RowIdx[lo:hi], row)
	if p < hi && m.RowIdx[p] == row {
		return m.Values[p]
	}
	return 0
}

// MulVec computes y = A·x. len(x) and len(y) must equal N.
func (m *Matrix) MulVec(x, y []float64) {
	for i := range y {
		y[i] = 0
	}
	for j := 0; j < m.n; j++ {
		xj := x[j]
		if xj == 0 {
			continue
		}
		for p := m.ColPtr[j]; p < m.ColPtr[j+1]; p++ {
			y[m.RowIdx[p]] += m.Values[p] * xj
		}
	}
}

// ToDense expands the matrix into a dense row-major [][]float64 (tests only).
func (m *Matrix) ToDense() [][]float64 {
	d := make([][]float64, m.n)
	for i := range d {
		d[i] = make([]float64, m.n)
	}
	for j := 0; j < m.n; j++ {
		for p := m.ColPtr[j]; p < m.ColPtr[j+1]; p++ {
			d[m.RowIdx[p]][j] = m.Values[p]
		}
	}
	return d
}

// FromDense builds a Matrix holding every nonzero of d plus the diagonal
// (reserved even when zero, as MNA stamping does). Intended for tests.
func FromDense(d [][]float64) *Matrix {
	n := len(d)
	b := NewBuilder(n)
	slots := make(map[[2]int]int)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if d[i][j] != 0 || i == j {
				slots[[2]int{i, j}] = b.Reserve(i, j)
			}
		}
	}
	m := b.Compile()
	for ij, s := range slots {
		m.Add(s, d[ij[0]][ij[1]])
	}
	return m
}

// SymmetrizedAdjacency returns, for each node, the sorted union of off-
// diagonal row indices of column j and the off-diagonal column indices of
// row j — the adjacency structure of A + Aᵀ used by the fill-reducing
// orderings.
func (m *Matrix) SymmetrizedAdjacency() [][]int {
	adj := make([][]int, m.n)
	seen := make([]map[int]bool, m.n)
	for i := range seen {
		seen[i] = make(map[int]bool)
	}
	for j := 0; j < m.n; j++ {
		for p := m.ColPtr[j]; p < m.ColPtr[j+1]; p++ {
			i := m.RowIdx[p]
			if i == j {
				continue
			}
			if !seen[i][j] {
				seen[i][j] = true
				adj[i] = append(adj[i], j)
			}
			if !seen[j][i] {
				seen[j][i] = true
				adj[j] = append(adj[j], i)
			}
		}
	}
	for i := range adj {
		sort.Ints(adj[i])
	}
	return adj
}
