package sparse

import (
	"fmt"
	"math/cmplx"

	"wavepipe/internal/faults"
)

// ComplexMatrix is an n×n complex sparse matrix sharing the pattern of a
// real Matrix (AC analysis builds G + jωC on the pattern of G ∪ C).
type ComplexMatrix struct {
	n      int
	ColPtr []int
	RowIdx []int
	Values []complex128
}

// NewComplexFromPattern returns a complex matrix over m's pattern with
// zeroed values.
func NewComplexFromPattern(m *Matrix) *ComplexMatrix {
	return &ComplexMatrix{
		n:      m.n,
		ColPtr: m.ColPtr,
		RowIdx: m.RowIdx,
		Values: make([]complex128, len(m.RowIdx)),
	}
}

// N returns the matrix dimension.
func (m *ComplexMatrix) N() int { return m.n }

// Fill sets Values[p] = g.Values[p] + jω·c.Values[p]. g and c must share
// this matrix's pattern (true when all three came from the same Builder).
func (m *ComplexMatrix) Fill(g, c *Matrix, omega float64) {
	for p := range m.Values {
		m.Values[p] = complex(g.Values[p], omega*c.Values[p])
	}
}

// MulVec computes y = A·x (tests and iterative refinement).
func (m *ComplexMatrix) MulVec(x, y []complex128) {
	for i := range y {
		y[i] = 0
	}
	for j := 0; j < m.n; j++ {
		xj := x[j]
		if xj == 0 {
			continue
		}
		for p := m.ColPtr[j]; p < m.ColPtr[j+1]; p++ {
			y[m.RowIdx[p]] += m.Values[p] * xj
		}
	}
}

// ComplexLU is the complex-valued counterpart of LU: Gilbert–Peierls
// factorization with threshold partial pivoting and a numeric Refactor path
// reused across the frequency sweep (the pattern of G + jωC is frequency-
// independent).
type ComplexLU struct {
	n       int
	colPerm []int
	rowPerm []int
	rowInv  []int

	lp []int
	li []int
	lx []complex128
	up []int
	ui []int
	ux []complex128
	ud []complex128

	pivTol    float64
	work      []complex128
	solveWork []complex128 // pooled Solve scratch; one goroutine per LU
}

// FactorizeComplex computes a fresh complex LU factorization.
func FactorizeComplex(m *ComplexMatrix, order []int, pivTol float64) (*ComplexLU, error) {
	if pivTol <= 0 || pivTol > 1 {
		pivTol = DefaultPivotTolerance
	}
	n := m.N()
	f := &ComplexLU{
		n:       n,
		colPerm: order,
		rowPerm: make([]int, n),
		rowInv:  make([]int, n),
		lp:      make([]int, n+1),
		up:      make([]int, n+1),
		ud:      make([]complex128, n),
		pivTol:  pivTol,
	}
	for i := range f.rowInv {
		f.rowInv[i] = -1
	}
	x := make([]complex128, n)
	mark := make([]int, n)
	topo := make([]int, 0, n)
	stack := make([]int, 0, n)
	stackP := make([]int, 0, n)
	tmpCols := make([]int, 0, n)

	for k := 0; k < n; k++ {
		j := f.colPerm[k]
		topo = topo[:0]
		for p := m.ColPtr[j]; p < m.ColPtr[j+1]; p++ {
			r := m.RowIdx[p]
			if mark[r] == k+1 {
				continue
			}
			stack = append(stack[:0], r)
			stackP = append(stackP[:0], 0)
			mark[r] = k + 1
			for len(stack) > 0 {
				top := len(stack) - 1
				row := stack[top]
				pos := f.rowInv[row]
				advanced := false
				if pos >= 0 {
					for c := f.lp[pos] + stackP[top]; c < f.lp[pos+1]; c++ {
						child := f.li[c]
						stackP[top] = c - f.lp[pos] + 1
						if mark[child] != k+1 {
							mark[child] = k + 1
							stack = append(stack, child)
							stackP = append(stackP, 0)
							advanced = true
							break
						}
					}
				}
				if !advanced {
					topo = append(topo, row)
					stack = stack[:top]
					stackP = stackP[:top]
				}
			}
		}
		for _, r := range topo {
			x[r] = 0
		}
		for p := m.ColPtr[j]; p < m.ColPtr[j+1]; p++ {
			x[m.RowIdx[p]] = m.Values[p]
		}
		for t := len(topo) - 1; t >= 0; t-- {
			r := topo[t]
			pos := f.rowInv[r]
			if pos < 0 {
				continue
			}
			xr := x[r]
			if xr == 0 {
				continue
			}
			for c := f.lp[pos]; c < f.lp[pos+1]; c++ {
				x[f.li[c]] -= f.lx[c] * xr
			}
		}
		tmpCols = tmpCols[:0]
		pivotRow := -1
		maxAbs := 0.0
		for _, r := range topo {
			if f.rowInv[r] >= 0 {
				tmpCols = append(tmpCols, r)
				continue
			}
			if a := cmplx.Abs(x[r]); a > maxAbs {
				maxAbs = a
				pivotRow = r
			}
		}
		if pivotRow == -1 || maxAbs < tinyPivot {
			return nil, fmt.Errorf("complex %w at column %d", faults.ErrSingular, k)
		}
		if f.rowInv[j] < 0 && mark[j] == k+1 {
			if a := cmplx.Abs(x[j]); a >= f.pivTol*maxAbs && a >= tinyPivot {
				pivotRow = j
			}
		}
		f.rowPerm[k] = pivotRow
		f.rowInv[pivotRow] = k
		pv := x[pivotRow]
		f.ud[k] = pv
		insertionSortByPos(tmpCols, f.rowInv)
		for _, r := range tmpCols {
			f.ui = append(f.ui, f.rowInv[r])
			f.ux = append(f.ux, x[r])
		}
		f.up[k+1] = len(f.ui)
		for _, r := range topo {
			if f.rowInv[r] >= 0 || r == pivotRow {
				continue
			}
			f.li = append(f.li, r)
			f.lx = append(f.lx, x[r]/pv)
		}
		f.lp[k+1] = len(f.li)
	}
	for p := range f.li {
		f.li[p] = f.rowInv[f.li[p]]
	}
	for k := 0; k < n; k++ {
		sortColumnComplex(f.li[f.lp[k]:f.lp[k+1]], f.lx[f.lp[k]:f.lp[k+1]])
	}
	return f, nil
}

func sortColumnComplex(idx []int, val []complex128) {
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && idx[j] < idx[j-1]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
			val[j], val[j-1] = val[j-1], val[j]
		}
	}
}

// Refactor recomputes the numeric factorization for new values on the same
// pattern (the per-frequency path of an AC sweep). ErrRefactorPivot is
// returned when a stored pivot degenerates.
func (f *ComplexLU) Refactor(m *ComplexMatrix) error {
	if m.N() != f.n {
		return fmt.Errorf("sparse: complex Refactor dimension mismatch")
	}
	if f.work == nil {
		f.work = make([]complex128, f.n)
	}
	w := f.work
	for k := 0; k < f.n; k++ {
		j := f.colPerm[k]
		for p := m.ColPtr[j]; p < m.ColPtr[j+1]; p++ {
			w[f.rowInv[m.RowIdx[p]]] = m.Values[p]
		}
		for p := f.up[k]; p < f.up[k+1]; p++ {
			i := f.ui[p]
			xi := w[i]
			f.ux[p] = xi
			if xi == 0 {
				continue
			}
			for q := f.lp[i]; q < f.lp[i+1]; q++ {
				w[f.li[q]] -= f.lx[q] * xi
			}
		}
		pv := w[k]
		colMax := cmplx.Abs(pv)
		for q := f.lp[k]; q < f.lp[k+1]; q++ {
			if a := cmplx.Abs(w[f.li[q]]); a > colMax {
				colMax = a
			}
		}
		if cmplx.Abs(pv) < tinyPivot || (colMax > 0 && cmplx.Abs(pv) < 1e-14*colMax) {
			return ErrRefactorPivot
		}
		f.ud[k] = pv
		for q := f.lp[k]; q < f.lp[k+1]; q++ {
			f.lx[q] = w[f.li[q]] / pv
		}
		for p := f.up[k]; p < f.up[k+1]; p++ {
			w[f.ui[p]] = 0
		}
		w[k] = 0
		for q := f.lp[k]; q < f.lp[k+1]; q++ {
			w[f.li[q]] = 0
		}
	}
	return nil
}

// Solve computes x with A·x = b. The scratch vector is pooled on the
// receiver, so repeated solves (one per AC frequency point) allocate nothing.
func (f *ComplexLU) Solve(b, x []complex128) {
	if f.solveWork == nil {
		f.solveWork = make([]complex128, f.n)
	}
	w := f.solveWork
	for k := 0; k < f.n; k++ {
		w[k] = b[f.rowPerm[k]]
	}
	for k := 0; k < f.n; k++ {
		yk := w[k]
		if yk == 0 {
			continue
		}
		for q := f.lp[k]; q < f.lp[k+1]; q++ {
			w[f.li[q]] -= f.lx[q] * yk
		}
	}
	for k := f.n - 1; k >= 0; k-- {
		zk := w[k] / f.ud[k]
		w[k] = zk
		if zk == 0 {
			continue
		}
		for p := f.up[k]; p < f.up[k+1]; p++ {
			w[f.ui[p]] -= f.ux[p] * zk
		}
	}
	for k := 0; k < f.n; k++ {
		x[f.colPerm[k]] = w[k]
	}
}
