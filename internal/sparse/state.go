package sparse

import (
	"errors"
	"fmt"
)

// LUState is a serializable snapshot of a completed LU factorization: the
// pivot sequence (row/column permutations), the factor patterns, and the
// numeric values. Checkpoints carry it so that a resumed run's first
// factorization takes the same Refactor path — eliminating along the stored
// pattern in the stored pivot order — as the uninterrupted run would have,
// which is what makes serial resume bit-identical: a fresh Factorize could
// legally choose a different pivot sequence and therefore a different
// floating-point summation order.
type LUState struct {
	N       int
	PivTol  float64
	ColPerm []int // position k -> original column
	RowPerm []int // position k -> original row
	// L, strict lower triangle by pivot column (row indices in pivot space).
	Lp []int
	Li []int
	Lx []float64
	// U, strict upper triangle by pivot column, plus its diagonal.
	Up []int
	Ui []int
	Ux []float64
	Ud []float64
}

// State deep-copies the factorization into a serializable snapshot.
func (f *LU) State() *LUState {
	st := &LUState{
		N:       f.n,
		PivTol:  f.pivTol,
		ColPerm: append([]int(nil), f.colPerm...),
		RowPerm: append([]int(nil), f.rowPerm...),
		Lp:      append([]int(nil), f.lp...),
		Li:      append([]int(nil), f.li...),
		Lx:      append([]float64(nil), f.lx...),
		Up:      append([]int(nil), f.up...),
		Ui:      append([]int(nil), f.ui...),
		Ux:      append([]float64(nil), f.ux...),
		Ud:      append([]float64(nil), f.ud...),
	}
	return st
}

// Validate checks the snapshot's internal consistency — shapes, monotone
// column pointers, in-range indices, permutation bijectivity — so a corrupted
// checkpoint can never panic the solver with out-of-range accesses.
func (st *LUState) Validate() error {
	n := st.N
	if n <= 0 {
		return errors.New("lu state: non-positive dimension")
	}
	if st.PivTol <= 0 || st.PivTol > 1 {
		return fmt.Errorf("lu state: pivot tolerance %g out of (0,1]", st.PivTol)
	}
	if len(st.ColPerm) != n || len(st.RowPerm) != n || len(st.Ud) != n {
		return errors.New("lu state: permutation/diagonal length mismatch")
	}
	if err := validatePerm(st.ColPerm, n); err != nil {
		return fmt.Errorf("lu state: column perm: %w", err)
	}
	if err := validatePerm(st.RowPerm, n); err != nil {
		return fmt.Errorf("lu state: row perm: %w", err)
	}
	if err := validateFactor(st.Lp, st.Li, len(st.Lx), n); err != nil {
		return fmt.Errorf("lu state: L: %w", err)
	}
	if err := validateFactor(st.Up, st.Ui, len(st.Ux), n); err != nil {
		return fmt.Errorf("lu state: U: %w", err)
	}
	return nil
}

func validatePerm(p []int, n int) error {
	seen := make([]bool, n)
	for _, v := range p {
		if v < 0 || v >= n || seen[v] {
			return errors.New("not a permutation")
		}
		seen[v] = true
	}
	return nil
}

func validateFactor(cp, idx []int, nx, n int) error {
	if len(cp) != n+1 {
		return errors.New("column pointer length mismatch")
	}
	if cp[0] != 0 || cp[n] != len(idx) || len(idx) != nx {
		return errors.New("column pointer/value bounds mismatch")
	}
	for k := 0; k < n; k++ {
		if cp[k] > cp[k+1] {
			return errors.New("non-monotone column pointers")
		}
	}
	for _, i := range idx {
		if i < 0 || i >= n {
			return errors.New("index out of range")
		}
	}
	return nil
}

// RestoreLU rebuilds a ready-to-use factorization from a snapshot. The
// returned LU refactorizes and solves exactly as the snapshotted one did;
// lazily-built scratch (Refactor/Solve workspaces, the parallel elimination
// schedule) is reconstructed on first use.
func RestoreLU(st *LUState) (*LU, error) {
	if err := st.Validate(); err != nil {
		return nil, err
	}
	f := &LU{
		n:       st.N,
		pivTol:  st.PivTol,
		colPerm: append([]int(nil), st.ColPerm...),
		rowPerm: append([]int(nil), st.RowPerm...),
		rowInv:  make([]int, st.N),
		lp:      append([]int(nil), st.Lp...),
		li:      append([]int(nil), st.Li...),
		lx:      append([]float64(nil), st.Lx...),
		up:      append([]int(nil), st.Up...),
		ui:      append([]int(nil), st.Ui...),
		ux:      append([]float64(nil), st.Ux...),
		ud:      append([]float64(nil), st.Ud...),
	}
	for k, r := range f.rowPerm {
		f.rowInv[r] = k
	}
	return f, nil
}

// FactorState snapshots the solver's current factorization, or nil when the
// solver has not factorized yet.
func (s *Solver) FactorState() *LUState {
	if s.lu == nil {
		return nil
	}
	return s.lu.State()
}

// RestoreFactor installs a snapshotted factorization so the next Factorize
// call takes the Refactor path against the restored pivot sequence. The
// snapshot must match the solver's matrix dimension. Bypass reference values
// are deliberately not restored: the first post-restore Factorize always
// refactorizes.
func (s *Solver) RestoreFactor(st *LUState) error {
	if st == nil {
		return errors.New("lu state: nil snapshot")
	}
	if st.N != s.M.N() {
		return fmt.Errorf("lu state: dimension %d does not match matrix %d", st.N, s.M.N())
	}
	lu, err := RestoreLU(st)
	if err != nil {
		return err
	}
	s.lu = lu
	s.prevValues = nil
	s.LastBypassed = false
	return nil
}
