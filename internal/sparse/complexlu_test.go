package sparse

import (
	"math/cmplx"
	"math/rand"
	"testing"
)

func randComplexSystem(rng *rand.Rand, n int, density float64) (*ComplexMatrix, []complex128, []int) {
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		d[i][i] = 2 + rng.Float64()*4
		for j := 0; j < n; j++ {
			if i != j && rng.Float64() < density {
				d[i][j] = rng.NormFloat64()
			}
		}
	}
	g := FromDense(d)
	// Reactive part on the same pattern.
	c := g.Clone()
	for p := range c.Values {
		c.Values[p] = rng.NormFloat64()
	}
	cm := NewComplexFromPattern(g)
	cm.Fill(g, c, 0.7)
	b := make([]complex128, n)
	for i := range b {
		b[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return cm, b, ComputeOrdering(g, OrderMinDegree)
}

func TestComplexLUSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(25)
		cm, b, order := randComplexSystem(rng, n, 0.2)
		lu, err := FactorizeComplex(cm, order, DefaultPivotTolerance)
		if err != nil {
			continue
		}
		x := make([]complex128, n)
		lu.Solve(b, x)
		r := make([]complex128, n)
		cm.MulVec(x, r)
		for i := range r {
			if cmplx.Abs(r[i]-b[i]) > 1e-7*(1+cmplx.Abs(b[i])) {
				t.Fatalf("trial %d: residual[%d] = %v", trial, i, r[i]-b[i])
			}
		}
	}
}

func TestComplexRefactorAcrossFrequencies(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	n := 15
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		d[i][i] = 3
		if i+1 < n {
			d[i][i+1] = -1
		}
		if i > 0 {
			d[i][i-1] = -1
		}
	}
	g := FromDense(d)
	c := g.Clone()
	for p := range c.Values {
		c.Values[p] = rng.Float64() * 1e-9
	}
	cm := NewComplexFromPattern(g)
	order := ComputeOrdering(g, OrderMinDegree)
	b := make([]complex128, n)
	b[0] = 1
	var lu *ComplexLU
	x := make([]complex128, n)
	r := make([]complex128, n)
	for _, freq := range []float64{1e3, 1e5, 1e7, 1e9} {
		omega := 2 * 3.141592653589793 * freq
		cm.Fill(g, c, omega)
		if lu == nil {
			var err error
			lu, err = FactorizeComplex(cm, order, DefaultPivotTolerance)
			if err != nil {
				t.Fatal(err)
			}
		} else if err := lu.Refactor(cm); err != nil {
			t.Fatal(err)
		}
		lu.Solve(b, x)
		cm.MulVec(x, r)
		for i := range r {
			if cmplx.Abs(r[i]-b[i]) > 1e-8*(1+cmplx.Abs(b[i])) {
				t.Fatalf("f=%g: residual[%d] = %v", freq, i, r[i]-b[i])
			}
		}
	}
}

func TestComplexSingular(t *testing.T) {
	g := FromDense([][]float64{{1, 1}, {1, 1}})
	c := g.Clone() // zero values
	cm := NewComplexFromPattern(g)
	cm.Fill(g, c, 1)
	if _, err := FactorizeComplex(cm, []int{0, 1}, DefaultPivotTolerance); err == nil {
		t.Fatal("singular complex matrix must fail")
	}
}
