package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBuilderCompileBasics(t *testing.T) {
	b := NewBuilder(3)
	s00 := b.Reserve(0, 0)
	s11 := b.Reserve(1, 1)
	s01 := b.Reserve(0, 1)
	again := b.Reserve(0, 0)
	if again != s00 {
		t.Fatalf("re-Reserve returned new slot %d != %d", again, s00)
	}
	if b.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3", b.NNZ())
	}
	m := b.Compile()
	m.Add(s00, 2)
	m.Add(s00, 3)
	m.Add(s11, -1)
	m.Add(s01, 7)
	if got := m.At(0, 0); got != 5 {
		t.Fatalf("At(0,0) = %g, want 5 (accumulated)", got)
	}
	if got := m.At(1, 1); got != -1 {
		t.Fatalf("At(1,1) = %g", got)
	}
	if got := m.At(0, 1); got != 7 {
		t.Fatalf("At(0,1) = %g", got)
	}
	if got := m.At(2, 2); got != 0 {
		t.Fatalf("At(2,2) = %g, want 0 (not in pattern)", got)
	}
	m.Zero()
	if got := m.At(0, 0); got != 0 {
		t.Fatalf("after Zero, At(0,0) = %g", got)
	}
	if m.N() != 3 || m.NNZ() != 3 {
		t.Fatalf("N=%d NNZ=%d", m.N(), m.NNZ())
	}
}

func TestReservePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBuilder(2).Reserve(2, 0)
}

func TestMulVec(t *testing.T) {
	d := [][]float64{
		{2, 0, 1},
		{0, 3, 0},
		{-1, 0, 4},
	}
	m := FromDense(d)
	x := []float64{1, 2, 3}
	y := make([]float64, 3)
	m.MulVec(x, y)
	want := []float64{5, 6, 11}
	for i := range want {
		if math.Abs(y[i]-want[i]) > 1e-14 {
			t.Fatalf("y = %v, want %v", y, want)
		}
	}
}

func randSparseSystem(rng *rand.Rand, n int, density float64) ([][]float64, []float64) {
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		// Diagonally dominant-ish to stay well conditioned most of the time.
		d[i][i] = 2 + rng.Float64()*5
		for j := 0; j < n; j++ {
			if i != j && rng.Float64() < density {
				d[i][j] = rng.NormFloat64()
			}
		}
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64() * 10
	}
	return d, b
}

func TestLUSolveAgainstDenseAllOrderings(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, ord := range []Ordering{OrderMinDegree, OrderRCM, OrderNatural} {
		for trial := 0; trial < 30; trial++ {
			n := 2 + rng.Intn(25)
			d, b := randSparseSystem(rng, n, 0.25)
			want, ok := denseSolve(d, b)
			if !ok {
				continue
			}
			m := FromDense(d)
			lu, err := Factorize(m, ord, DefaultPivotTolerance)
			if err != nil {
				t.Fatalf("ordering %v trial %d: %v", ord, trial, err)
			}
			x := make([]float64, n)
			lu.Solve(b, x)
			for i := range x {
				if math.Abs(x[i]-want[i]) > 1e-7*(1+math.Abs(want[i])) {
					t.Fatalf("ordering %v trial %d: x[%d] = %g, want %g", ord, trial, i, x[i], want[i])
				}
			}
		}
	}
}

// The MNA voltage-source case: structurally zero diagonal entries requiring
// off-diagonal pivoting.
func TestLUZeroDiagonal(t *testing.T) {
	d := [][]float64{
		{1e-3, 0, 1},
		{0, 1e-3, -1},
		{1, -1, 0},
	}
	b := []float64{0, 0, 5}
	m := FromDense(d)
	lu, err := Factorize(m, OrderNatural, DefaultPivotTolerance)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 3)
	lu.Solve(b, x)
	want, _ := denseSolve(d, b)
	for i := range x {
		if math.Abs(x[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
			t.Fatalf("x = %v, want %v", x, want)
		}
	}
}

func TestLUSingular(t *testing.T) {
	d := [][]float64{
		{1, 2, 0},
		{2, 4, 0},
		{0, 0, 1},
	}
	m := FromDense(d)
	if _, err := Factorize(m, OrderNatural, DefaultPivotTolerance); err == nil {
		t.Fatal("expected singular error")
	}
	// All-zero matrix is singular too.
	z := FromDense([][]float64{{0, 0}, {0, 0}})
	if _, err := Factorize(z, OrderMinDegree, DefaultPivotTolerance); err == nil {
		t.Fatal("expected singular error for zero matrix")
	}
}

func TestRefactorMatchesFreshFactorization(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	n := 20
	d, b := randSparseSystem(rng, n, 0.2)
	m := FromDense(d)
	lu, err := Factorize(m, OrderMinDegree, DefaultPivotTolerance)
	if err != nil {
		t.Fatal(err)
	}
	// Perturb the values on the same pattern, as a Newton iteration does.
	for p := range m.Values {
		if m.Values[p] != 0 {
			m.Values[p] *= 1 + 0.3*rng.NormFloat64()
		}
	}
	if err := lu.Refactor(m); err != nil {
		t.Fatal(err)
	}
	x := make([]float64, n)
	lu.Solve(b, x)
	want, ok := denseSolve(m.ToDense(), b)
	if !ok {
		t.Skip("perturbed system singular in reference")
	}
	for i := range x {
		if math.Abs(x[i]-want[i]) > 1e-6*(1+math.Abs(want[i])) {
			t.Fatalf("x[%d] = %g, want %g", i, x[i], want[i])
		}
	}
}

func TestRefactorDetectsDegeneratePivot(t *testing.T) {
	d := [][]float64{
		{4, 1},
		{1, 4},
	}
	m := FromDense(d)
	lu, err := Factorize(m, OrderNatural, DefaultPivotTolerance)
	if err != nil {
		t.Fatal(err)
	}
	// New values make the (0,0) pivot exactly cancel after elimination...
	// simplest: zero out an entire pivot column numerically.
	m.Zero()
	m.Add(0, 0) // slot order follows FromDense reservation; set all to 0 then fix one
	// Rebuild deterministic values: A = [[0,1],[1,0]] with natural order and
	// pivot sequence fixed from the old factorization -> pivot w[0]=0.
	for p := range m.Values {
		m.Values[p] = 0
	}
	setAt(t, m, 0, 1, 1)
	setAt(t, m, 1, 0, 1)
	if err := lu.Refactor(m); err == nil {
		t.Fatal("expected ErrRefactorPivot")
	}
}

// setAt writes v at (r,c) by scanning the CSC pattern (test helper).
func setAt(t *testing.T, m *Matrix, r, c int, v float64) {
	t.Helper()
	for p := m.ColPtr[c]; p < m.ColPtr[c+1]; p++ {
		if m.RowIdx[p] == r {
			m.Values[p] = v
			return
		}
	}
	t.Fatalf("(%d,%d) not in pattern", r, c)
}

func TestSolverRefactorFallback(t *testing.T) {
	d := [][]float64{
		{4, 1},
		{1, 4},
	}
	m := FromDense(d)
	s := NewSolver(m, OrderNatural)
	if err := s.Factorize(); err != nil {
		t.Fatal(err)
	}
	if s.FullFactorizations != 1 || s.Refactorizations != 0 {
		t.Fatalf("stats after first: %d/%d", s.FullFactorizations, s.Refactorizations)
	}
	// Same pattern, benign values: refactor path.
	setAt(t, m, 0, 0, 5)
	if err := s.Factorize(); err != nil {
		t.Fatal(err)
	}
	if s.Refactorizations != 1 {
		t.Fatalf("expected refactorization, stats %d/%d", s.FullFactorizations, s.Refactorizations)
	}
	// Degenerate stored pivot: automatic fallback to full factorization.
	setAt(t, m, 0, 0, 0)
	setAt(t, m, 1, 1, 0)
	setAt(t, m, 0, 1, 1)
	setAt(t, m, 1, 0, 1)
	if err := s.Factorize(); err != nil {
		t.Fatal(err)
	}
	if s.FullFactorizations != 2 {
		t.Fatalf("expected fallback full factorization, stats %d/%d", s.FullFactorizations, s.Refactorizations)
	}
	b := []float64{2, 3}
	x := make([]float64, 2)
	if err := s.Solve(b, x); err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-3) > 1e-12 || math.Abs(x[1]-2) > 1e-12 {
		t.Fatalf("x = %v, want [3 2]", x)
	}
}

func TestSolverSolveBeforeFactorize(t *testing.T) {
	s := NewSolver(FromDense([][]float64{{1}}), OrderNatural)
	if err := s.Solve([]float64{1}, []float64{0}); err == nil {
		t.Fatal("expected error")
	}
}

// Property: for random well-conditioned sparse systems, A·(A⁻¹b) ≈ b.
func TestLUResidualQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		d, b := randSparseSystem(rng, n, 0.15)
		m := FromDense(d)
		lu, err := Factorize(m, OrderMinDegree, DefaultPivotTolerance)
		if err != nil {
			return true // singular random draw: vacuous
		}
		x := make([]float64, n)
		lu.Solve(b, x)
		r := make([]float64, n)
		m.MulVec(x, r)
		for i := range r {
			if math.Abs(r[i]-b[i]) > 1e-6*(1+math.Abs(b[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: repeated Refactor on the same pattern with varying values keeps
// solving correctly (the Newton-loop usage pattern).
func TestRefactorLoopQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(20)
		d, b := randSparseSystem(rng, n, 0.2)
		m := FromDense(d)
		s := NewSolver(m, OrderMinDegree)
		x := make([]float64, n)
		r := make([]float64, n)
		for iter := 0; iter < 5; iter++ {
			for p := range m.Values {
				if m.Values[p] != 0 {
					m.Values[p] *= 1 + 0.1*rng.NormFloat64()
				}
			}
			if err := s.Factorize(); err != nil {
				return true // singular perturbation: vacuous
			}
			if err := s.Solve(b, x); err != nil {
				return false
			}
			m.MulVec(x, r)
			for i := range r {
				if math.Abs(r[i]-b[i]) > 1e-5*(1+math.Abs(b[i])) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestOrderingsArePermutations(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d, _ := randSparseSystem(rng, 30, 0.1)
	m := FromDense(d)
	for _, o := range []Ordering{OrderMinDegree, OrderRCM, OrderNatural} {
		perm := ComputeOrdering(m, o)
		if len(perm) != 30 {
			t.Fatalf("%v: len %d", o, len(perm))
		}
		seen := make([]bool, 30)
		for _, p := range perm {
			if p < 0 || p >= 30 || seen[p] {
				t.Fatalf("%v: not a permutation: %v", o, perm)
			}
			seen[p] = true
		}
	}
}

func TestOrderingString(t *testing.T) {
	if OrderMinDegree.String() != "min-degree" || OrderRCM.String() != "rcm" ||
		OrderNatural.String() != "natural" || Ordering(99).String() != "unknown" {
		t.Fatal("Ordering.String broken")
	}
}

// Min-degree should reduce fill versus natural ordering on a 2D grid — the
// structure of power-grid circuit matrices.
func TestMinDegreeReducesFillOnGrid(t *testing.T) {
	const side = 12
	n := side * side
	b := NewBuilder(n)
	at := func(i, j int) int { return i*side + j }
	var slots []int
	var vals []float64
	for i := 0; i < side; i++ {
		for j := 0; j < side; j++ {
			u := at(i, j)
			slots = append(slots, b.Reserve(u, u))
			vals = append(vals, 4.1)
			if i+1 < side {
				v := at(i+1, j)
				slots = append(slots, b.Reserve(u, v), b.Reserve(v, u))
				vals = append(vals, -1, -1)
			}
			if j+1 < side {
				v := at(i, j+1)
				slots = append(slots, b.Reserve(u, v), b.Reserve(v, u))
				vals = append(vals, -1, -1)
			}
		}
	}
	m := b.Compile()
	for k, s := range slots {
		m.Add(s, vals[k])
	}
	luMD, err := Factorize(m, OrderMinDegree, DefaultPivotTolerance)
	if err != nil {
		t.Fatal(err)
	}
	luNat, err := Factorize(m, OrderNatural, DefaultPivotTolerance)
	if err != nil {
		t.Fatal(err)
	}
	if luMD.LNNZ()+luMD.UNNZ() >= luNat.LNNZ()+luNat.UNNZ() {
		t.Fatalf("min-degree fill %d not below natural fill %d",
			luMD.LNNZ()+luMD.UNNZ(), luNat.LNNZ()+luNat.UNNZ())
	}
	// And both must still solve correctly.
	rhs := make([]float64, n)
	rhs[0] = 1
	x1 := make([]float64, n)
	x2 := make([]float64, n)
	luMD.Solve(rhs, x1)
	luNat.Solve(rhs, x2)
	for i := range x1 {
		if math.Abs(x1[i]-x2[i]) > 1e-8*(1+math.Abs(x2[i])) {
			t.Fatalf("solutions disagree at %d: %g vs %g", i, x1[i], x2[i])
		}
	}
}
