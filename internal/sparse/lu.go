package sparse

import (
	"errors"
	"fmt"
	"math"
	"time"

	"wavepipe/internal/faults"
	"wavepipe/internal/sched"
)

// ErrRefactorPivot is returned by Refactor when a pivot chosen during the
// original factorization has become numerically unacceptable for the new
// values. The caller should fall back to a full Factorize.
var ErrRefactorPivot = errors.New("sparse: pivot too small during refactorization")

// DefaultPivotTolerance is the threshold partial-pivoting parameter: the
// diagonal entry is kept as pivot when its magnitude is at least this
// fraction of the largest eligible candidate. Diagonal preference keeps the
// factorization close to the MNA structure and maximizes refactorization
// reuse.
const DefaultPivotTolerance = 0.001

// minimum acceptable pivot magnitude relative to the column scale.
const tinyPivot = 1e-300

// LU holds a sparse LU factorization P·A·Q = L·U where P is the row
// (pivot) permutation, Q the fill-reducing column permutation, L unit lower
// triangular and U upper triangular. The pattern and pivot sequence can be
// reused by Refactor when only the numerical values of A change.
type LU struct {
	n       int
	colPerm []int // position k -> original column
	rowPerm []int // position k -> original row
	rowInv  []int // original row -> position

	// L: strict lower part, by column in pivot coordinates, rows ascending.
	lp []int
	li []int
	lx []float64
	// U: strict upper part, by column in pivot coordinates, rows ascending.
	up []int
	ui []int
	ux []float64
	ud []float64 // diagonal of U

	pivTol    float64
	work      []float64 // Refactor workspace (an LU serves one goroutine)
	solveWork []float64 // Solve workspace; separate from work, which Refactor
	// requires to stay zeroed between columns

	// Level-scheduled execution state (see parallel.go): the schedule is
	// symbolic-pattern metadata cached next to the pattern, parWork holds one
	// zeroed refactor workspace per gang member, parBar synchronizes levels.
	lsched  *luSchedule
	parWork [][]float64
	parBar  sched.Barrier
}

// Factorize computes a fresh LU factorization of m using the given column
// ordering and threshold partial pivoting.
func Factorize(m *Matrix, ordering Ordering, pivTol float64) (*LU, error) {
	return FactorizeWithPerm(m, ComputeOrdering(m, ordering), pivTol)
}

// FactorizeWithPerm is Factorize with a caller-supplied column permutation
// (perm[k] = original column eliminated at step k). Callers that factorize
// many matrices sharing one sparsity pattern compute the fill-reducing
// ordering once and pass it here; the permutation is copied, so one slice
// may back any number of concurrent factorizations.
func FactorizeWithPerm(m *Matrix, perm []int, pivTol float64) (*LU, error) {
	if pivTol <= 0 || pivTol > 1 {
		pivTol = DefaultPivotTolerance
	}
	n := m.N()
	f := &LU{
		n:       n,
		colPerm: append([]int(nil), perm...),
		rowPerm: make([]int, n),
		rowInv:  make([]int, n),
		lp:      make([]int, n+1),
		up:      make([]int, n+1),
		ud:      make([]float64, n),
		pivTol:  pivTol,
	}
	for i := range f.rowInv {
		f.rowInv[i] = -1
	}

	// Workspaces, all indexed by original row.
	x := make([]float64, n)      // numeric values of the current column
	mark := make([]int, n)       // DFS visitation stamp (column index+1)
	topo := make([]int, 0, n)    // reverse postorder pattern of the column
	stack := make([]int, 0, n)   // DFS stack of original rows
	stackP := make([]int, 0, n)  // per-stack-node child cursor
	tmpCols := make([]int, 0, n) // scratch for sorting U entries

	for k := 0; k < n; k++ {
		j := f.colPerm[k]
		topo = topo[:0]

		// Symbolic: depth-first search from each structural nonzero of
		// A(:, j) through the columns of L built so far. Reverse postorder
		// is a topological order for the sparse forward solve.
		for p := m.ColPtr[j]; p < m.ColPtr[j+1]; p++ {
			r := m.RowIdx[p]
			if mark[r] == k+1 {
				continue
			}
			stack = append(stack[:0], r)
			stackP = append(stackP[:0], 0)
			mark[r] = k + 1
			for len(stack) > 0 {
				top := len(stack) - 1
				row := stack[top]
				pos := f.rowInv[row]
				advanced := false
				if pos >= 0 {
					for c := f.lp[pos] + stackP[top]; c < f.lp[pos+1]; c++ {
						child := f.li[c] // stored as original row until finalize
						stackP[top] = c - f.lp[pos] + 1
						if mark[child] != k+1 {
							mark[child] = k + 1
							stack = append(stack, child)
							stackP = append(stackP, 0)
							advanced = true
							break
						}
					}
				}
				if !advanced && len(stack)-1 == top {
					topo = append(topo, row)
					stack = stack[:top]
					stackP = stackP[:top]
				}
			}
		}

		// Numeric scatter of A(:, j).
		for _, r := range topo {
			x[r] = 0
		}
		for p := m.ColPtr[j]; p < m.ColPtr[j+1]; p++ {
			x[m.RowIdx[p]] = m.Values[p]
		}
		// Sparse forward solve in reverse postorder.
		for t := len(topo) - 1; t >= 0; t-- {
			r := topo[t]
			pos := f.rowInv[r]
			if pos < 0 {
				continue
			}
			xr := x[r]
			if xr == 0 {
				continue
			}
			for c := f.lp[pos]; c < f.lp[pos+1]; c++ {
				x[f.li[c]] -= f.lx[c] * xr
			}
		}

		// Partition pattern into U entries (already pivotal rows) and pivot
		// candidates, and choose the pivot.
		tmpCols = tmpCols[:0]
		pivotRow := -1
		maxAbs := 0.0
		for _, r := range topo {
			if f.rowInv[r] >= 0 {
				tmpCols = append(tmpCols, r)
				continue
			}
			a := math.Abs(x[r])
			if a > maxAbs {
				maxAbs = a
				pivotRow = r
			}
		}
		if pivotRow == -1 || maxAbs < tinyPivot {
			return nil, fmt.Errorf("%w at column %d (original column %d)", faults.ErrSingular, k, j)
		}
		if f.rowInv[j] < 0 && mark[j] == k+1 {
			if a := math.Abs(x[j]); a >= f.pivTol*maxAbs && a >= tinyPivot {
				pivotRow = j
			}
		}
		f.rowPerm[k] = pivotRow
		f.rowInv[pivotRow] = k
		pv := x[pivotRow]
		f.ud[k] = pv

		// Store U(:, k): pivotal rows sorted by ascending pivot position.
		insertionSortByPos(tmpCols, f.rowInv)
		for _, r := range tmpCols {
			f.ui = append(f.ui, f.rowInv[r])
			f.ux = append(f.ux, x[r])
		}
		f.up[k+1] = len(f.ui)

		// Store L(:, k): remaining candidates divided by the pivot. Row
		// indices stay in original-row space until finalize.
		for _, r := range topo {
			if f.rowInv[r] >= 0 || r == pivotRow {
				continue
			}
			f.li = append(f.li, r)
			f.lx = append(f.lx, x[r]/pv)
		}
		f.lp[k+1] = len(f.li)
	}

	// Finalize: translate L row indices from original rows to pivot
	// positions and sort each column ascending (required by Refactor).
	for p := range f.li {
		f.li[p] = f.rowInv[f.li[p]]
	}
	for k := 0; k < n; k++ {
		sortColumn(f.li[f.lp[k]:f.lp[k+1]], f.lx[f.lp[k]:f.lp[k+1]])
	}
	return f, nil
}

// insertionSortByPos sorts rows ascending by pos[row]; the slices involved
// are short (one matrix column).
func insertionSortByPos(rows []int, pos []int) {
	for i := 1; i < len(rows); i++ {
		for j := i; j > 0 && pos[rows[j]] < pos[rows[j-1]]; j-- {
			rows[j], rows[j-1] = rows[j-1], rows[j]
		}
	}
}

// sortColumn sorts (idx, val) pairs ascending by idx.
func sortColumn(idx []int, val []float64) {
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && idx[j] < idx[j-1]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
			val[j], val[j-1] = val[j-1], val[j]
		}
	}
}

// Refactor recomputes the numeric factorization for new values in m,
// reusing the symbolic pattern and pivot sequence of the receiver. It is
// much faster than Factorize (no graph traversal, no pivot search). If a
// stored pivot has become too small for the new values, ErrRefactorPivot is
// returned and the factorization content is undefined; the caller should
// run a full Factorize.
func (f *LU) Refactor(m *Matrix) error {
	if m.N() != f.n {
		return fmt.Errorf("sparse: Refactor dimension mismatch: %d vs %d", m.N(), f.n)
	}
	if f.work == nil {
		f.work = make([]float64, f.n)
	}
	w := f.work // pivot-position space, kept zero between columns
	for k := 0; k < f.n; k++ {
		if !f.refactorColumn(m, k, w) {
			return ErrRefactorPivot
		}
	}
	return nil
}

// refactorColumn recomputes column k of the factorization from the values in
// m, using w (pivot-position space, zero on entry, restored to zero on a
// true return) as scatter workspace. It reads only L columns from strictly
// earlier elimination levels and writes only column k's own storage, which
// is what makes the level-scheduled parallel Refactor both safe and
// bit-identical to the serial sweep. A false return means the stored pivot
// went degenerate (ErrRefactorPivot), leaving w and column k dirty.
func (f *LU) refactorColumn(m *Matrix, k int, w []float64) bool {
	j := f.colPerm[k]
	for p := m.ColPtr[j]; p < m.ColPtr[j+1]; p++ {
		w[f.rowInv[m.RowIdx[p]]] = m.Values[p]
	}
	// Forward elimination along the stored U pattern (ascending pivot
	// positions form a valid topological order for a lower-triangular
	// dependency structure).
	for p := f.up[k]; p < f.up[k+1]; p++ {
		i := f.ui[p]
		xi := w[i]
		f.ux[p] = xi
		if xi == 0 {
			continue
		}
		for q := f.lp[i]; q < f.lp[i+1]; q++ {
			w[f.li[q]] -= f.lx[q] * xi
		}
	}
	pv := w[k]
	// Scale test: the pivot must not be degenerate relative to the
	// column it eliminates.
	colMax := math.Abs(pv)
	for q := f.lp[k]; q < f.lp[k+1]; q++ {
		if a := math.Abs(w[f.li[q]]); a > colMax {
			colMax = a
		}
	}
	if math.Abs(pv) < tinyPivot || (colMax > 0 && math.Abs(pv) < 1e-14*colMax) {
		return false
	}
	f.ud[k] = pv
	for q := f.lp[k]; q < f.lp[k+1]; q++ {
		f.lx[q] = w[f.li[q]] / pv
	}
	// Clear exactly the touched positions.
	for p := f.up[k]; p < f.up[k+1]; p++ {
		w[f.ui[p]] = 0
	}
	w[k] = 0
	for q := f.lp[k]; q < f.lp[k+1]; q++ {
		w[f.li[q]] = 0
	}
	return true
}

// Solve computes x with A·x = b using the factorization. b and x may alias.
// The scratch vector is pooled on the receiver, so like Refactor this is
// single-goroutine per LU; concurrent solves must use SolveWith.
func (f *LU) Solve(b, x []float64) {
	if f.solveWork == nil {
		f.solveWork = make([]float64, f.n)
	}
	f.SolveWith(b, x, f.solveWork)
}

// SolveWith is Solve with a caller-provided scratch vector of length N,
// allowing allocation-free repeated solves.
func (f *LU) SolveWith(b, x, scratch []float64) {
	w := scratch
	for k := 0; k < f.n; k++ {
		w[k] = b[f.rowPerm[k]]
	}
	// Forward: L·y = P·b (unit diagonal).
	for k := 0; k < f.n; k++ {
		yk := w[k]
		if yk == 0 {
			continue
		}
		for q := f.lp[k]; q < f.lp[k+1]; q++ {
			w[f.li[q]] -= f.lx[q] * yk
		}
	}
	// Backward: U·z = y, U stored by strict-upper columns + diagonal.
	for k := f.n - 1; k >= 0; k-- {
		zk := w[k] / f.ud[k]
		w[k] = zk
		if zk == 0 {
			continue
		}
		for p := f.up[k]; p < f.up[k+1]; p++ {
			w[f.ui[p]] -= f.ux[p] * zk
		}
	}
	for k := 0; k < f.n; k++ {
		x[f.colPerm[k]] = w[k]
	}
}

// LNNZ returns the number of stored entries of L (excluding the unit
// diagonal).
func (f *LU) LNNZ() int { return len(f.li) }

// UNNZ returns the number of stored entries of U (including the diagonal).
func (f *LU) UNNZ() int { return len(f.ui) + f.n }

// Solver bundles a matrix with its factorization and transparently chooses
// between the fast Refactor path and a full Factorize. It is the interface
// the Newton loops use: rewrite the matrix values, call Factorize, call
// Solve. A Solver is not safe for concurrent use; each worker thread owns
// its own.
type Solver struct {
	M        *Matrix
	Ordering Ordering
	PivTol   float64
	// ColPerm, when non-nil, is a precomputed column ordering used instead
	// of computing Ordering on every full factorization. Systems that hand
	// out many solvers over one sparsity pattern share a single ordering
	// this way (the ordering depends only on the pattern). Read-only here.
	ColPerm []int
	// Refine enables one step of iterative refinement per solve
	// (x += A⁻¹·(b − A·x)): roughly halves the effective backward error on
	// ill-conditioned MNA matrices for one extra matvec + triangular solve.
	Refine bool
	// BypassTol enables SPICE-style factorization bypass: when every matrix
	// value has changed by at most this relative amount since the values that
	// produced the current factorization, Factorize keeps the previous LU and
	// the solve becomes a quasi-Newton step. 0 disables bypass.
	BypassTol float64
	// Sched, when non-nil, runs Refactor and the triangular solves
	// level-scheduled across the pool's gang (see parallel.go). Each pattern
	// is profitability-gated: chain-like structures with no level width stay
	// on the serial sweeps. Results are bit-identical either way.
	Sched *sched.Pool

	// LUWallNanos and LUCritNanos accumulate the wall-clock time and the
	// modeled parallel critical-path time of the schedulable factorization
	// work. On hosts without real spare cores the kernels degrade to their
	// serial forms and the critical path is modeled from the schedule's
	// chunk geometry, mirroring the device-load accounting in circuit.
	LUWallNanos int64
	LUCritNanos int64

	lu      *LU
	scratch []float64
	resid   []float64
	// prevValues snapshots M.Values as of the last real (re)factorization;
	// bypass drift is measured against it, not the previous iteration, so
	// slow cumulative change still forces a refactorization eventually.
	prevValues []float64

	// Stats.
	FullFactorizations int
	Refactorizations   int
	// BypassedFactorizations counts Factorize calls answered by reusing the
	// previous LU. LastBypassed reports whether the most recent Factorize was
	// one of them — the Newton guard uses it to ensure an accepted iterate
	// always rests on a fresh factorization.
	BypassedFactorizations int
	LastBypassed           bool
}

// NewSolver returns a Solver for m using the given ordering.
func NewSolver(m *Matrix, o Ordering) *Solver {
	return &Solver{M: m, Ordering: o, PivTol: DefaultPivotTolerance}
}

// Factorize (re)factorizes the current values of the matrix, preferring the
// numeric-only refactorization path. With BypassTol > 0 and values within
// tolerance of the ones that produced the current factorization, the call is
// a no-op that keeps the previous LU (LastBypassed reports this).
func (s *Solver) Factorize() error {
	if s.lu != nil && s.BypassTol > 0 && s.prevValues != nil &&
		maxRelChange(s.prevValues, s.M.Values) <= s.BypassTol {
		s.BypassedFactorizations++
		s.LastBypassed = true
		return nil
	}
	return s.FactorizeFresh()
}

// FactorizeFresh is Factorize without the bypass shortcut: the matrix values
// are always run through Refactor or a full Factorize. Callers that must
// leave an exact factorization behind (the final Newton guard, warm-start
// handoff) use this directly.
func (s *Solver) FactorizeFresh() error {
	s.LastBypassed = false
	if s.lu != nil {
		if err := s.refactor(); err == nil {
			s.Refactorizations++
			s.snapshotValues()
			return nil
		}
		// Fall through to a full factorization with fresh pivoting.
	}
	var lu *LU
	var err error
	if s.ColPerm != nil {
		lu, err = FactorizeWithPerm(s.M, s.ColPerm, s.PivTol)
	} else {
		lu, err = Factorize(s.M, s.Ordering, s.PivTol)
	}
	if err != nil {
		return err
	}
	s.lu = lu
	s.FullFactorizations++
	s.snapshotValues()
	return nil
}

// snapshotValues records the matrix values backing the current factorization
// so later Factorize calls can measure bypass drift against them.
func (s *Solver) snapshotValues() {
	if s.BypassTol <= 0 {
		return
	}
	if s.prevValues == nil {
		s.prevValues = make([]float64, len(s.M.Values))
	}
	copy(s.prevValues, s.M.Values)
}

// maxRelChange returns the maximum elementwise relative change between old
// and new, with the relative base max(|old|, |new|). A value appearing where
// there was an exact zero counts as an infinite change.
func maxRelChange(old, new []float64) float64 {
	maxRel := 0.0
	for i, nv := range new {
		ov := old[i]
		d := math.Abs(nv - ov)
		if d == 0 {
			continue
		}
		base := math.Abs(ov)
		if a := math.Abs(nv); a > base {
			base = a
		}
		// base > 0 here since d > 0 implies at least one operand is nonzero.
		if rel := d / base; rel > maxRel {
			maxRel = rel
		}
	}
	return maxRel
}

// refactor runs the numeric-only refactorization, level-scheduled across the
// attached pool when the pattern has enough parallel width. On a degraded
// pool (no spare CPUs) the serial sweep runs instead — bit-identical, since
// per-column arithmetic is order-independent — and the parallel critical
// path is modeled from the schedule geometry.
func (s *Solver) refactor() error {
	if s.Sched.Workers() > 1 {
		if sc := s.lu.schedule(s.Sched.Workers()); sc.refPar {
			start := time.Now()
			var err error
			gang := s.Sched.Gang()
			if gang {
				err = s.lu.RefactorParallel(s.M, s.Sched)
			} else {
				err = s.lu.Refactor(s.M)
			}
			wall := time.Since(start).Nanoseconds()
			s.LUWallNanos += wall
			if gang {
				s.LUCritNanos += wall
			} else {
				s.LUCritNanos += int64(float64(wall) * sc.refFrac)
			}
			return err
		}
	}
	return s.lu.Refactor(s.M)
}

// solveVec applies the factorization to one right-hand side, routing through
// the level-scheduled parallel solve when it is attached and profitable.
func (s *Solver) solveVec(b, x []float64) {
	if s.Sched.Workers() > 1 {
		if sc := s.lu.schedule(s.Sched.Workers()); sc.solvePar {
			start := time.Now()
			if gang := s.Sched.Gang(); gang {
				s.lu.SolveParallelWith(b, x, s.scratch, s.Sched)
				wall := time.Since(start).Nanoseconds()
				s.LUWallNanos += wall
				s.LUCritNanos += wall
			} else {
				s.lu.SolveWith(b, x, s.scratch)
				wall := time.Since(start).Nanoseconds()
				s.LUWallNanos += wall
				s.LUCritNanos += int64(float64(wall) * sc.solveFrac)
			}
			return
		}
	}
	s.lu.SolveWith(b, x, s.scratch)
}

// Solve computes x with A·x = b for the most recent factorization.
func (s *Solver) Solve(b, x []float64) error {
	if s.lu == nil {
		return errors.New("sparse: Solve called before Factorize")
	}
	if s.scratch == nil {
		s.scratch = make([]float64, s.M.N())
	}
	s.solveVec(b, x)
	if s.Refine {
		if s.resid == nil {
			s.resid = make([]float64, s.M.N())
		}
		// r = b − A·x, then x += A⁻¹·r.
		s.M.MulVec(x, s.resid)
		for i := range s.resid {
			s.resid[i] = b[i] - s.resid[i]
		}
		s.solveVec(s.resid, s.resid)
		for i := range x {
			x[i] += s.resid[i]
		}
	}
	return nil
}

// LU returns the current factorization (nil before the first Factorize).
func (s *Solver) LU() *LU { return s.lu }
