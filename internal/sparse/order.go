package sparse

import "container/heap"

// Ordering identifies a fill-reducing column preordering strategy.
type Ordering int

const (
	// OrderMinDegree is a minimum-degree ordering on the symmetrized
	// pattern A + Aᵀ (the default; best general fill reduction here).
	OrderMinDegree Ordering = iota
	// OrderRCM is reverse Cuthill–McKee bandwidth reduction.
	OrderRCM
	// OrderNatural keeps the natural 0..n-1 order.
	OrderNatural
)

// String returns the ordering name.
func (o Ordering) String() string {
	switch o {
	case OrderMinDegree:
		return "min-degree"
	case OrderRCM:
		return "rcm"
	case OrderNatural:
		return "natural"
	default:
		return "unknown"
	}
}

// ComputeOrdering returns a permutation perm where perm[k] is the original
// index eliminated at step k.
func ComputeOrdering(m *Matrix, o Ordering) []int {
	switch o {
	case OrderRCM:
		return rcm(m.SymmetrizedAdjacency())
	case OrderNatural:
		perm := make([]int, m.N())
		for i := range perm {
			perm[i] = i
		}
		return perm
	default:
		return minDegree(m.SymmetrizedAdjacency())
	}
}

type mdItem struct {
	node, degree, pos int
}

type mdHeap []*mdItem

func (h mdHeap) Len() int { return len(h) }
func (h mdHeap) Less(i, j int) bool {
	if h[i].degree != h[j].degree {
		return h[i].degree < h[j].degree
	}
	return h[i].node < h[j].node // deterministic tie-break
}
func (h mdHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].pos, h[j].pos = i, j
}
func (h *mdHeap) Push(x any) {
	it := x.(*mdItem)
	it.pos = len(*h)
	*h = append(*h, it)
}
func (h *mdHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// minDegree performs classic minimum-degree elimination on an undirected
// adjacency structure: repeatedly eliminate the node of smallest current
// degree and turn its neighbourhood into a clique. Adjacency is kept as
// hash sets, which is simple and adequate for the circuit sizes exercised
// here (up to a few tens of thousands of nodes on mesh-like graphs).
func minDegree(adj [][]int) []int {
	n := len(adj)
	nbr := make([]map[int]bool, n)
	for i, a := range adj {
		nbr[i] = make(map[int]bool, len(a))
		for _, j := range a {
			nbr[i][j] = true
		}
	}
	items := make([]*mdItem, n)
	h := make(mdHeap, 0, n)
	for i := 0; i < n; i++ {
		items[i] = &mdItem{node: i, degree: len(nbr[i])}
		heap.Push(&h, items[i])
	}
	perm := make([]int, 0, n)
	eliminated := make([]bool, n)
	for h.Len() > 0 {
		it := heap.Pop(&h).(*mdItem)
		v := it.node
		if eliminated[v] {
			continue
		}
		eliminated[v] = true
		perm = append(perm, v)
		// Collect live neighbours and form the elimination clique.
		live := make([]int, 0, len(nbr[v]))
		for u := range nbr[v] {
			if !eliminated[u] {
				live = append(live, u)
			}
		}
		for _, u := range live {
			delete(nbr[u], v)
		}
		for a := 0; a < len(live); a++ {
			for b := a + 1; b < len(live); b++ {
				u, w := live[a], live[b]
				if !nbr[u][w] {
					nbr[u][w] = true
					nbr[w][u] = true
				}
			}
		}
		for _, u := range live {
			if d := len(nbr[u]); d != items[u].degree {
				items[u].degree = d
				heap.Fix(&h, items[u].pos)
			}
		}
		nbr[v] = nil
	}
	return perm
}

// rcm computes the reverse Cuthill–McKee ordering of an undirected graph,
// processing each connected component from a pseudo-peripheral start node.
func rcm(adj [][]int) []int {
	n := len(adj)
	visited := make([]bool, n)
	order := make([]int, 0, n)
	degree := func(v int) int { return len(adj[v]) }
	for start := 0; start < n; start++ {
		if visited[start] {
			continue
		}
		s := pseudoPeripheral(adj, start)
		// BFS with neighbours sorted by ascending degree.
		queue := []int{s}
		visited[s] = true
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			next := make([]int, 0, len(adj[v]))
			for _, u := range adj[v] {
				if !visited[u] {
					visited[u] = true
					next = append(next, u)
				}
			}
			// insertion sort by degree: neighbour lists are short
			for i := 1; i < len(next); i++ {
				for j := i; j > 0 && degree(next[j]) < degree(next[j-1]); j-- {
					next[j], next[j-1] = next[j-1], next[j]
				}
			}
			queue = append(queue, next...)
		}
	}
	// Reverse.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// pseudoPeripheral finds a node of (approximately) maximal eccentricity in
// the component of start by repeated BFS to the farthest minimum-degree node.
func pseudoPeripheral(adj [][]int, start int) int {
	cur := start
	curEcc := -1
	for {
		far, ecc := bfsFarthest(adj, cur)
		if ecc <= curEcc {
			return cur
		}
		cur, curEcc = far, ecc
	}
}

func bfsFarthest(adj [][]int, s int) (node, ecc int) {
	dist := map[int]int{s: 0}
	queue := []int{s}
	node, ecc = s, 0
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range adj[v] {
			if _, ok := dist[u]; !ok {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
				if dist[u] > ecc || (dist[u] == ecc && len(adj[u]) < len(adj[node])) {
					node, ecc = u, dist[u]
				}
			}
		}
	}
	return node, ecc
}
