package sparse

import (
	"math"
	"math/rand"
	"testing"
)

func TestSolveTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(20)
		d, b := randSparseSystem(rng, n, 0.25)
		m := FromDense(d)
		lu, err := Factorize(m, OrderMinDegree, DefaultPivotTolerance)
		if err != nil {
			continue
		}
		x := make([]float64, n)
		scratch := make([]float64, n)
		lu.SolveTransposeWith(b, x, scratch)
		// Verify Aᵀ·x = b directly.
		for j := 0; j < n; j++ {
			s := 0.0
			for i := 0; i < n; i++ {
				s += d[i][j] * x[i]
			}
			if math.Abs(s-b[j]) > 1e-7*(1+math.Abs(b[j])) {
				t.Fatalf("trial %d: (Aᵀx)[%d] = %g, want %g", trial, j, s, b[j])
			}
		}
	}
}

func TestOneNorm(t *testing.T) {
	m := FromDense([][]float64{
		{1, -4},
		{-2, 3},
	})
	if got := m.OneNorm(); got != 7 {
		t.Fatalf("OneNorm = %g, want 7", got)
	}
}

// denseCond1 computes the exact 1-norm condition number by brute force.
func denseCond1(a [][]float64) float64 {
	n := len(a)
	norm := func(m [][]float64) float64 {
		best := 0.0
		for j := 0; j < n; j++ {
			s := 0.0
			for i := 0; i < n; i++ {
				s += math.Abs(m[i][j])
			}
			if s > best {
				best = s
			}
		}
		return best
	}
	inv := make([][]float64, n)
	for j := range inv {
		inv[j] = make([]float64, n)
	}
	for j := 0; j < n; j++ {
		e := make([]float64, n)
		e[j] = 1
		col, ok := denseSolve(a, e)
		if !ok {
			return math.Inf(1)
		}
		for i := range col {
			inv[i][j] = col[i]
		}
	}
	return norm(a) * norm(inv)
}

func TestCondEst1AgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(15)
		d, _ := randSparseSystem(rng, n, 0.3)
		m := FromDense(d)
		lu, err := Factorize(m, OrderMinDegree, DefaultPivotTolerance)
		if err != nil {
			continue
		}
		est := CondEst1(m, lu)
		exact := denseCond1(d)
		// Hager's estimate is a lower bound, usually within a small factor.
		if est > exact*(1+1e-9) {
			t.Fatalf("trial %d: estimate %g above exact %g", trial, est, exact)
		}
		if est < exact/10 {
			t.Fatalf("trial %d: estimate %g far below exact %g", trial, est, exact)
		}
	}
}

func TestCondEst1FlagsIllConditioning(t *testing.T) {
	// Nearly singular: two almost-parallel rows.
	d := [][]float64{
		{1, 1, 0},
		{1, 1 + 1e-9, 0},
		{0, 0, 1},
	}
	m := FromDense(d)
	lu, err := Factorize(m, OrderNatural, DefaultPivotTolerance)
	if err != nil {
		t.Fatal(err)
	}
	if est := CondEst1(m, lu); est < 1e8 {
		t.Fatalf("near-singular condition estimate = %g, want huge", est)
	}
	// Identity: κ = 1.
	id := FromDense([][]float64{{1, 0}, {0, 1}})
	lu2, _ := Factorize(id, OrderNatural, DefaultPivotTolerance)
	if est := CondEst1(id, lu2); math.Abs(est-1) > 1e-9 {
		t.Fatalf("identity condition estimate = %g", est)
	}
}

func TestIterativeRefinementImprovesResidual(t *testing.T) {
	// A graded, poorly scaled system where plain LU leaves visible residual.
	n := 30
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		d[i][i] = math.Pow(10, float64(i%12)-6)
		if i+1 < n {
			d[i][i+1] = d[i][i] * 0.99
		}
		if i > 0 {
			d[i][i-1] = d[i][i] * 0.97
		}
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = math.Pow(-1, float64(i)) * math.Pow(10, float64(i%7)-3)
	}
	// Componentwise backward error |b − A·x|_i / (|A|·|x| + |b|)_i — the
	// quantity one refinement step reliably reduces.
	backwardErr := func(refine bool) float64 {
		m := FromDense(d)
		s := NewSolver(m, OrderNatural)
		s.Refine = refine
		if err := s.Factorize(); err != nil {
			t.Fatal(err)
		}
		x := make([]float64, n)
		if err := s.Solve(b, x); err != nil {
			t.Fatal(err)
		}
		r := make([]float64, n)
		m.MulVec(x, r)
		worst := 0.0
		for i := range r {
			den := math.Abs(b[i])
			for j := 0; j < n; j++ {
				den += math.Abs(d[i][j]) * math.Abs(x[j])
			}
			if den == 0 {
				continue
			}
			if v := math.Abs(r[i]-b[i]) / den; v > worst {
				worst = v
			}
		}
		return worst
	}
	plain := backwardErr(false)
	refined := backwardErr(true)
	if refined > plain {
		t.Fatalf("refinement did not help: %g -> %g", plain, refined)
	}
	if refined > 1e-14 {
		t.Fatalf("refined backward error = %g, want near machine precision", refined)
	}
}
