package sparse

import "math"

// SolveTransposeWith solves Aᵀ·x = b using the factorization, with a
// caller-provided scratch vector of length N. With B = P·A·Q = L·U, the
// transpose system factors as Bᵀ = Uᵀ·Lᵀ: a forward solve on the
// column-stored U (which reads as lower-triangular rows of Uᵀ) followed by
// a backward solve on Lᵀ.
func (f *LU) SolveTransposeWith(b, x, scratch []float64) {
	w := scratch
	for k := 0; k < f.n; k++ {
		w[k] = b[f.colPerm[k]]
	}
	// Forward: Uᵀ·u = v.
	for k := 0; k < f.n; k++ {
		s := w[k]
		for p := f.up[k]; p < f.up[k+1]; p++ {
			s -= f.ux[p] * w[f.ui[p]]
		}
		w[k] = s / f.ud[k]
	}
	// Backward: Lᵀ·z = u (unit diagonal).
	for k := f.n - 1; k >= 0; k-- {
		s := w[k]
		for q := f.lp[k]; q < f.lp[k+1]; q++ {
			s -= f.lx[q] * w[f.li[q]]
		}
		w[k] = s
	}
	for k := 0; k < f.n; k++ {
		x[f.rowPerm[k]] = w[k]
	}
}

// OneNorm returns ‖A‖₁ (maximum absolute column sum).
func (m *Matrix) OneNorm() float64 {
	norm := 0.0
	for j := 0; j < m.n; j++ {
		s := 0.0
		for p := m.ColPtr[j]; p < m.ColPtr[j+1]; p++ {
			s += math.Abs(m.Values[p])
		}
		if s > norm {
			norm = s
		}
	}
	return norm
}

// CondEst1 returns a lower-bound estimate of the 1-norm condition number
// κ₁(A) = ‖A‖₁·‖A⁻¹‖₁ using Hager's algorithm on the factorization.
// Circuit engines use it to flag near-singular operating points.
func CondEst1(m *Matrix, f *LU) float64 {
	n := m.N()
	if n == 0 {
		return 0
	}
	x := make([]float64, n)
	y := make([]float64, n)
	z := make([]float64, n)
	scratch := make([]float64, n)
	for i := range x {
		x[i] = 1 / float64(n)
	}
	est := 0.0
	for iter := 0; iter < 5; iter++ {
		f.SolveWith(x, y, scratch) // y = A⁻¹·x
		newEst := 0.0
		for _, v := range y {
			newEst += math.Abs(v)
		}
		if iter > 0 && newEst <= est {
			break
		}
		est = newEst
		for i, v := range y {
			if v >= 0 {
				z[i] = 1
			} else {
				z[i] = -1
			}
		}
		f.SolveTransposeWith(z, y, scratch) // y = A⁻ᵀ·sign(y)
		jmax, vmax := 0, 0.0
		for i, v := range y {
			if a := math.Abs(v); a > vmax {
				vmax, jmax = a, i
			}
		}
		if vmax <= dotAbs(y, x) {
			break
		}
		for i := range x {
			x[i] = 0
		}
		x[jmax] = 1
	}
	return est * m.OneNorm()
}

func dotAbs(a, b []float64) float64 {
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return math.Abs(s)
}
