package wavepipe

import (
	"testing"

	"wavepipe/internal/circuits"
	"wavepipe/internal/transient"
	"wavepipe/internal/waveform"
)

// TestDeviceBypassPipelinedMatchesSerial runs a digital suite circuit through
// every pipelining scheme at 2-4 workers with the incremental assembly engine
// enabled, and requires the probe waveform to track the serial bypass-off
// reference. Each pipeline lane owns an independent incState (template LRU,
// journals, generation counter), so this test doubles as the -race workout
// for concurrent per-point bypass state — the CI race step runs it with the
// race detector on.
func TestDeviceBypassPipelinedMatchesSerial(t *testing.T) {
	var bench circuits.Benchmark
	for _, b := range circuits.Suite() {
		if b.Name == "inv50" {
			bench = b
		}
	}
	if bench.Make == nil {
		t.Fatal("inv50 missing from the suite")
	}
	tstop := bench.TStop / 2
	mk := func() *Options {
		return &Options{Base: transient.Options{
			TStop:           tstop,
			DeviceBypassTol: transient.DefaultDeviceBypassTol,
		}}
	}
	refSys, err := bench.Make().Build()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := transient.Run(refSys, transient.Options{TStop: tstop})
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range []Scheme{SchemeBackward, SchemeForward, SchemeCombined} {
		for _, threads := range []int{2, 4} {
			sys, err := bench.Make().Build()
			if err != nil {
				t.Fatal(err)
			}
			opts := mk()
			opts.Scheme = scheme
			opts.Threads = threads
			res, err := Run(sys, *opts)
			if err != nil {
				t.Fatalf("%v/%dT: %v", scheme, threads, err)
			}
			dev, err := waveform.Compare(res.W, ref.W, bench.Probe)
			if err != nil {
				t.Fatal(err)
			}
			if dev.RelMax() > 0.02 && dev.Max > 1e-9 {
				t.Errorf("%v/%dT: deviation %.4f of range (max %g over %g)",
					scheme, threads, dev.RelMax(), dev.Max, dev.Range)
			}
			if res.Stats.LinearStampHits == 0 {
				t.Errorf("%v/%dT: pipelined run recorded no linear-template hits", scheme, threads)
			}
		}
	}
}
