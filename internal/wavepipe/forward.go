package wavepipe

import (
	"errors"

	"wavepipe/internal/faults"
	"wavepipe/internal/integrate"
	"wavepipe/internal/trace"
	"wavepipe/internal/transient"
)

// forwardStage runs one forward-pipelining stage (optionally combined with
// backward workers), in two parallel phases:
//
//	phase A — worker 0: main point t1 = t + h
//	          worker 2: backward point t1 − δ       (combined, ≥3 threads)
//	          worker 1: speculative Newton warm-up at t2 = t1 + h against a
//	                    polynomially *predicted* t1 point
//	phase B — worker 1: corrective solve of t2 from the exact history,
//	                    warm-started from phase A
//	          worker 3: backward point t2 − δ       (combined, 4 threads)
//
// Phase B starts the moment the true t1 point exists. Accuracy is protected
// by re-solving the forward point against the exact history and LTE-checking
// every accepted point.
func (e *engine) forwardStage(combined bool) error {
	t := e.t()
	limit := e.stageLimit()
	t1 := t + e.h
	hitBp := false
	if t1 >= limit-0.01*e.h { // step-relative clamp; see transient.Run
		t1 = limit
		hitBp = true
	}
	h0 := t1 - t
	// The forward step is chosen conservatively (no growth) and must not
	// cross a breakpoint.
	t2 := t1 + h0
	doForward := !hitBp
	fwdHitsBp := false
	if t2 >= limit-0.01*h0 {
		t2 = limit
		fwdHitsBp = true
		if t2-t1 < 0.1*h0 {
			doForward = false
		}
	}
	fwdHitsBp = fwdHitsBp && doForward

	delta := e.opts.DeltaRatio * h0
	doBack1 := combined && e.opts.Threads >= 3
	doBack2 := combined && e.opts.Threads >= 4 && doForward && t2-delta > t1+0.05*h0

	// ---- Phase A ----
	var main, back1 pointResult
	// Warm-start tasks get their own result slots purely for panic capture:
	// a panicked warm-up leaves warmFwd/warmB2 nil and phase B falls back to
	// a cold solve.
	var warmFwdRes, warmB2Res pointResult
	var warmFwd, warmB2 []float64
	var warmFwdNanos, warmB2Nanos int64
	// The predicted history mirrors the spacing of the true one (including
	// the backward point when present) so the speculative assemblies'
	// Alpha0 match and ResumeAt can reuse them. Each warm-start task predicts
	// with its own solver's pooled prediction ring, so the concurrent phase-A
	// tasks never share scratch.
	predicted := func(ps *transient.PointSolver) *integrate.History {
		ph := e.hist.Clone()
		if doBack1 {
			ph.Add(ps.PredictPoint(e.hist, t1-delta))
		}
		ph.Add(ps.PredictPoint(e.hist, t1))
		return ph
	}
	tasksA := []func(){e.guardTask(t1, &main, func() {
		pt, co, err := e.solvers[0].SolveAt(e.hist, t1, nil)
		main = pointResult{pt: pt, co: co, err: err}
	})}
	if doBack1 {
		tasksA = append(tasksA, e.guardTask(t1-delta, &back1, func() {
			pt, co, err := e.solvers[2].SolveAt(e.hist, t1-delta, nil)
			back1 = pointResult{pt: pt, co: co, err: err}
		}))
	}
	depth := e.warmDepth()
	if doForward {
		tasksA = append(tasksA, e.guardTask(t2, &warmFwdRes, func() {
			warmFwd = e.solvers[1].WarmStart(predicted(e.solvers[1]), t2, depth)
			warmFwdNanos = e.solvers[1].LastNanos
		}))
	}
	if doBack2 {
		tasksA = append(tasksA, e.guardTask(t2-delta, &warmB2Res, func() {
			warmB2 = e.solvers[3].WarmStart(predicted(e.solvers[3]), t2-delta, depth)
			warmB2Nanos = e.solvers[3].LastNanos
		}))
	}
	e.runTasks(tasksA...)
	e.notePanics(&main, &back1, &warmFwdRes, &warmB2Res)
	e.critNanos += e.phaseACrit(doBack1, warmFwdNanos, warmB2Nanos)
	e.noteMainIters(e.solvers[0].LastIters)
	e.notePhaseAOccupancy(t1, doBack1, doForward, doBack2)

	if main.err != nil {
		e.noteDiscards(t1, boolCount(doBack1))
		if !errors.Is(main.err, faults.ErrWorkerPanic) {
			e.shrinkAfterFailure()
		}
		return nil
	}

	// ---- Phase B (speculative with respect to the LTE checks below) ----
	var fwd, back2 pointResult
	var trueHist *integrate.History
	if doForward {
		trueHist = e.hist.Clone()
		if doBack1 && back1.err == nil {
			trueHist.Add(back1.pt)
		}
		trueHist.Add(main.pt)
		tasksB := []func(){e.guardTask(t2, &fwd, func() {
			pt, co, err := e.solvers[1].ResumeAt(trueHist, t2, warmFwd)
			fwd = pointResult{pt: pt, co: co, err: err}
		})}
		if doBack2 {
			tasksB = append(tasksB, e.guardTask(t2-delta, &back2, func() {
				pt, co, err := e.solvers[3].ResumeAt(trueHist, t2-delta, warmB2)
				back2 = pointResult{pt: pt, co: co, err: err}
			}))
		}
		e.runTasks(tasksB...)
		e.notePanics(&fwd, &back2)
		e.critNanos += e.phaseBCrit(doBack2)
		e.notePhaseBOccupancy(t2, doBack2)
	}

	// ---- Validation and publication, ascending in time ----
	mainNorm := e.lteNorm(main)
	if mainNorm > 1 && main.co.H0 > e.ctrl.HMin*1.01 && !e.afterBreak {
		// The whole stage is built on t1: discard everything.
		e.noteReject(t1, main.co.H0, mainNorm)
		e.noteDiscards(t1, boolCount(doBack1)+boolCount(doForward)+boolCount(doBack2))
		e.h = e.ctrl.ShrinkOnReject(main.co.H0, mainNorm, main.co.Order)
		return nil
	}
	accepted := 0
	if doBack1 {
		if back1.err == nil && (e.afterBreak || e.lteNorm(back1) <= 1) {
			e.accept(back1.pt)
			accepted++
		} else {
			e.noteDiscards(t1-delta, 1)
		}
	}
	e.accept(main.pt)
	accepted++

	if hitBp {
		e.handleBreak(h0)
		return nil
	}
	e.afterBreak = false

	if !doForward {
		e.nextStep(h0, accepted, mainNorm, main.co.H1)
		return nil
	}

	// Speculative points pass the same LTE bar as everything else; a
	// stricter bar was tried and bought no measurable accuracy while
	// discarding ~15% more points (see EXPERIMENTS.md).
	const specBar = 1.0
	lteAgainst := func(res pointResult) float64 {
		return e.lteNormAgainst(trueHist, res)
	}
	if doBack2 {
		if back2.err == nil && lteAgainst(back2) <= specBar {
			e.accept(back2.pt)
			accepted++
		} else {
			e.noteDiscards(t2-delta, 1)
		}
	}
	if fwd.err == nil {
		if fwdNorm := lteAgainst(fwd); fwdNorm <= specBar {
			// back2 may have been accepted between the main point and the
			// forward point; history stays ascending either way.
			e.accept(fwd.pt)
			accepted++
			if fwdHitsBp {
				e.handleBreak(fwd.co.H0)
				return nil
			}
			e.nextStep(fwd.co.H0, accepted, fwdNorm, fwd.co.H1)
			return nil
		}
		// The forward point's LTE feedback still guides the next step.
		fwdNorm := lteAgainst(fwd)
		e.noteDiscards(t2, 1)
		e.noteReject(t2, fwd.co.H0, fwdNorm)
		e.h = e.ctrl.ShrinkOnReject(fwd.co.H0, fwdNorm, fwd.co.Order)
		return nil
	}
	e.noteDiscards(t2, 1)
	e.nextStep(h0, accepted, mainNorm, main.co.H1)
	return nil
}

func boolCount(b bool) int {
	if b {
		return 1
	}
	return 0
}

// notePhaseAOccupancy publishes worker-occupancy spans for the forward
// stage's first parallel round (main solve, optional backward point, the
// speculative warm starts), matching the worker→solver assignment above.
func (e *engine) notePhaseAOccupancy(t float64, back1, fwd, back2 bool) {
	if !e.tr.Active() {
		return
	}
	emit := func(w int) {
		e.tr.Emit(trace.Event{
			Kind: trace.KindWorker, T: t, Worker: int16(w),
			Stage: int32(e.stages), Dur: e.solvers[w].LastNanos,
		})
	}
	emit(0)
	if back1 {
		emit(2)
	}
	if fwd {
		emit(1)
	}
	if back2 {
		emit(3)
	}
}

// notePhaseBOccupancy publishes the second round's spans: the corrective
// forward solve and the optional backward point under it.
func (e *engine) notePhaseBOccupancy(t float64, back2 bool) {
	if !e.tr.Active() {
		return
	}
	e.tr.Emit(trace.Event{
		Kind: trace.KindWorker, T: t, Worker: 1,
		Stage: int32(e.stages), Dur: e.solvers[1].LastNanos,
	})
	if back2 {
		e.tr.Emit(trace.Event{
			Kind: trace.KindWorker, T: t, Worker: 3,
			Stage: int32(e.stages), Dur: e.solvers[3].LastNanos,
		})
	}
}

// phaseACrit returns the critical-path time of the stage's first parallel
// round: the main point, the optional backward point and the speculative
// warm starts all run concurrently.
func (e *engine) phaseACrit(withBack1 bool, warmNanos ...int64) int64 {
	crit := e.solvers[0].LastNanos
	if withBack1 && e.solvers[2].LastNanos > crit {
		crit = e.solvers[2].LastNanos
	}
	for _, w := range warmNanos {
		if w > crit {
			crit = w
		}
	}
	return crit
}

// phaseBCrit returns the critical-path time of the stage's second parallel
// round: the corrective forward solve and the optional backward point under
// it.
func (e *engine) phaseBCrit(withBack2 bool) int64 {
	crit := e.solvers[1].LastNanos
	if withBack2 && e.solvers[3].LastNanos > crit {
		crit = e.solvers[3].LastNanos
	}
	return crit
}
