package wavepipe

// PlanThreads is the pipeline width the two-level core-budget split policy
// picks for the combined scheme: below 8 cores the pipeline gets everything
// (intra-point gangs of 2-3 rarely clear the level-schedule profitability
// gate, so they would idle); from 8 cores on, pipeline width is traded for
// gang width — the mesh circuits' LU schedules only go parallel at gang
// width >= 4, and a 2-wide pipeline with 4-wide gangs beats a 4-wide
// pipeline with 2-wide gangs (grid32: 1046 ms vs 1597 ms critical path).
// Width is always clamped to the scheme's useful 2-4 range. The corescale
// and windowscale benchmarks use this as the "best WavePipe-only" baseline
// configuration at a given budget.
func PlanThreads(budget int) int {
	th := budget
	if budget >= 8 {
		th = budget / 4
	}
	if th > 4 {
		th = 4
	}
	if th < 2 {
		th = 2
	}
	return th
}
