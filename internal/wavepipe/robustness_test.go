package wavepipe

import (
	"testing"

	"wavepipe/internal/faults"
	"wavepipe/internal/transient"
	"wavepipe/internal/waveform"
)

// runRectifier executes a combined-scheme 4-thread run of the rectifier with
// real concurrent workers and the given fault harness.
func runRectifier(t *testing.T, in *faults.Injector) *transient.Result {
	t.Helper()
	res, err := Run(rectifierSystem(t), Options{
		Base:                 transient.Options{TStop: 3e-3, Faults: in},
		Scheme:               SchemeCombined,
		Threads:              4,
		ForceParallelWorkers: true,
	})
	if err != nil {
		t.Fatalf("faulted run did not recover: %v", err)
	}
	return res
}

// checkEnvelope asserts the faulted run's waveform still tracks the clean
// serial reference within the repository's standard accuracy envelope —
// recovery and degradation must not bend the answer.
func checkEnvelope(t *testing.T, res *transient.Result) {
	t.Helper()
	ref, err := transient.Run(rectifierSystem(t), transient.Options{TStop: 3e-3})
	if err != nil {
		t.Fatal(err)
	}
	dev, err := waveform.Compare(res.W, ref.W, "out")
	if err != nil {
		t.Fatal(err)
	}
	if dev.RelMax() > 0.02 {
		t.Fatalf("deviation %.4f exceeds envelope 0.02", dev.RelMax())
	}
}

// Each injectable fault class, thrown at a pipelined run mid-waveform, must
// be absorbed: the run completes and stays inside the accuracy envelope.
func TestPipelineSurvivesNoConvergenceBurst(t *testing.T) {
	in := faults.NewInjector(faults.Rule{
		Class: faults.NoConvergence, After: 0.2e-3, Count: 5,
		SpareFrom: faults.StageDamping,
	})
	res := checkFaulted(t, in)
	if res.Stats.NRFailures == 0 {
		t.Fatal("injected failures left no trace in stats")
	}
}

func TestPipelineSurvivesSingularBurst(t *testing.T) {
	in := faults.NewInjector(faults.Rule{
		Class: faults.Singular, After: 0.2e-3, Count: 5,
		SpareFrom: faults.StageDamping,
	})
	checkFaulted(t, in)
}

func TestPipelineSurvivesNonFiniteStamps(t *testing.T) {
	in := faults.NewInjector(faults.Rule{
		Class: faults.NonFinite, After: 0.2e-3, Count: 5,
		SpareFrom: faults.StageDamping,
	})
	checkFaulted(t, in)
}

// checkFaulted runs the standard faulted scenario and its shared assertions.
func checkFaulted(t *testing.T, in *faults.Injector) *transient.Result {
	t.Helper()
	res := runRectifier(t, in)
	if in.Fired() == 0 {
		t.Fatal("fault rule never fired")
	}
	checkEnvelope(t, res)
	return res
}

// Worker panics must be contained by the stage guards, counted, and answered
// with a serial-fallback window — never a crashed process or a failed run.
func TestPipelineSurvivesWorkerPanics(t *testing.T) {
	in := faults.NewInjector(faults.Rule{
		Class: faults.WorkerPanic, After: 0.2e-3, Count: 3,
	})
	res := checkFaulted(t, in)
	if res.Stats.WorkerPanics == 0 {
		t.Fatal("panics were not counted")
	}
	if res.Recovery.Count(transient.RecoverySerialFallback) == 0 {
		t.Fatalf("no serial-fallback event logged: %+v", res.Recovery.Events())
	}
	if res.Stats.DegradedStages == 0 {
		t.Fatal("degradation window never ran serial stages")
	}
}

// A clean pipelined run must show zero robustness activity: no recovery
// events, no recoveries, no panics, no degraded stages.
func TestZeroFaultPipelineHasNoRecoveryActivity(t *testing.T) {
	res := runRectifier(t, nil)
	if res.Recovery == nil || res.Recovery.Len() != 0 {
		t.Fatalf("clean run logged recovery events: %+v", res.Recovery.Events())
	}
	s := res.Stats
	if s.Recoveries != 0 || s.WorkerPanics != 0 || s.DegradedStages != 0 {
		t.Fatalf("clean run shows robustness activity: %+v", s)
	}
}
