package wavepipe

import (
	"math"
	"testing"

	"wavepipe/internal/circuit"
	"wavepipe/internal/device"
	"wavepipe/internal/integrate"
	"wavepipe/internal/newton"
	"wavepipe/internal/transient"
	"wavepipe/internal/waveform"
)

func rcSystem(t *testing.T) *circuit.System {
	t.Helper()
	ckt := circuit.New("rc")
	in := ckt.Node("in")
	out := ckt.Node("out")
	ckt.Add(device.NewVSource("V1", in, circuit.Ground, device.Pulse{
		V1: 0, V2: 1, Rise: 1e-12, Width: 1,
	}))
	ckt.Add(device.NewResistor("R1", in, out, 1e3))
	ckt.Add(device.NewCapacitor("C1", out, circuit.Ground, 1e-6))
	sys, err := ckt.Build()
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func rectifierSystem(t *testing.T) *circuit.System {
	t.Helper()
	ckt := circuit.New("rect")
	in := ckt.Node("in")
	out := ckt.Node("out")
	ckt.Add(device.NewVSource("V1", in, circuit.Ground, device.Sin{Amplitude: 5, Freq: 1e3}))
	ckt.Add(device.NewDiode("D1", in, out, device.DefaultDiodeModel(), 1))
	ckt.Add(device.NewResistor("RL", out, circuit.Ground, 10e3))
	ckt.Add(device.NewCapacitor("CL", out, circuit.Ground, 4.7e-7))
	sys, err := ckt.Build()
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// The paper's central claim: WavePipe does not jeopardize accuracy. Every
// scheme's waveform must track the serial reference within tolerance-scale
// deviation on both a linear and a nonlinear circuit.
func TestAccuracyMatchesSerialAllSchemes(t *testing.T) {
	cases := []struct {
		name  string
		mk    func(*testing.T) *circuit.System
		tstop float64
		limit float64 // relative to signal range
	}{
		{"rc", rcSystem, 5e-3, 0.01},
		{"rectifier", rectifierSystem, 3e-3, 0.02},
	}
	for _, tc := range cases {
		ref, err := transient.Run(tc.mk(t), transient.Options{TStop: tc.tstop})
		if err != nil {
			t.Fatalf("%s serial: %v", tc.name, err)
		}
		for _, scheme := range []Scheme{SchemeBackward, SchemeForward, SchemeCombined} {
			for _, threads := range []int{2, 3, 4} {
				res, err := Run(tc.mk(t), Options{
					Base:    transient.Options{TStop: tc.tstop},
					Scheme:  scheme,
					Threads: threads,
				})
				if err != nil {
					t.Fatalf("%s %v/%dT: %v", tc.name, scheme, threads, err)
				}
				dev, err := waveform.Compare(res.W, ref.W, "out")
				if err != nil {
					t.Fatal(err)
				}
				if dev.RelMax() > tc.limit {
					t.Errorf("%s %v/%dT: relative deviation %.4f exceeds %.4f (max %g over range %g)",
						tc.name, scheme, threads, dev.RelMax(), tc.limit, dev.Max, dev.Range)
				}
			}
		}
	}
}

// sineRCSystem is an LTE-limited workload: the continuously curving drive
// keeps truncation error (not HMax or the growth cap) as the binding step
// constraint — the regime where backward pipelining pays off.
func sineRCSystem(t *testing.T) *circuit.System {
	t.Helper()
	ckt := circuit.New("sinerc")
	in := ckt.Node("in")
	out := ckt.Node("out")
	ckt.Add(device.NewVSource("V1", in, circuit.Ground, device.Sin{Amplitude: 1, Freq: 1e3}))
	ckt.Add(device.NewResistor("R1", in, out, 1e3))
	ckt.Add(device.NewCapacitor("C1", out, circuit.Ground, 1e-7))
	sys, err := ckt.Build()
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// Backward pipelining must advance with larger steps than serial on an
// LTE-limited workload: the number of *stages* (sequential solve rounds on
// the critical path) must be meaningfully lower than the serial point
// count over the same window. This is the paper's headline mechanism.
func TestBackwardPipeliningTakesLargerSteps(t *testing.T) {
	tstop := 5e-3
	ref, err := transient.Run(sineRCSystem(t), transient.Options{TStop: tstop})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(sineRCSystem(t), Options{
		Base:    transient.Options{TStop: tstop},
		Scheme:  SchemeBackward,
		Threads: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if float64(res.Stats.Stages) > 0.85*float64(ref.Stats.Stages) {
		t.Fatalf("backward pipelining stages (%d) not below 85%% of serial (%d)",
			res.Stats.Stages, ref.Stats.Stages)
	}
	// Equivalently: the average time advanced per critical-path solve must
	// beat serial's average step.
	avgAdvance := tstop / float64(res.Stats.Stages)
	serialAvg := tstop / float64(ref.Stats.Stages)
	if avgAdvance <= serialAvg {
		t.Fatalf("advance per stage %g not above serial %g", avgAdvance, serialAvg)
	}
}

// Forward pipelining's speculative warm start must save corrective Newton
// iterations: the phase-B solves should converge in fewer iterations than a
// cold solve would.
func TestForwardPipeliningAcceptsSpeculativePoints(t *testing.T) {
	res, err := Run(rectifierSystem(t), Options{
		Base:   transient.Options{TStop: 2e-3},
		Scheme: SchemeForward,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Points < 20 {
		t.Fatalf("too few points: %d", res.Stats.Points)
	}
	// Most speculative points must survive; massive discarding would mean
	// the prediction is useless.
	if res.Stats.Discarded > res.Stats.Points/2 {
		t.Fatalf("too many discarded speculative points: %d of %d",
			res.Stats.Discarded, res.Stats.Points)
	}
}

func TestCombinedSchemeUsesFourWorkers(t *testing.T) {
	res, err := Run(rcSystem(t), Options{
		Base:    transient.Options{TStop: 2e-3},
		Scheme:  SchemeCombined,
		Threads: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Points < 10 {
		t.Fatalf("too few points: %d", res.Stats.Points)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{Scheme: SchemeCombined}.withDefaults()
	if o.Threads != 3 || o.DeltaRatio != 0.2 || o.WarmIters != 0 {
		t.Fatalf("combined defaults: %+v", o)
	}
	o = Options{Scheme: SchemeForward, Threads: 8}.withDefaults()
	if o.Threads != 2 {
		t.Fatalf("forward must clamp to 2 threads: %+v", o)
	}
	o = Options{Scheme: SchemeBackward, Threads: 9}.withDefaults()
	if o.Threads != 4 {
		t.Fatalf("backward must clamp to 4 threads: %+v", o)
	}
	if SchemeBackward.String() != "backward" || SchemeForward.String() != "forward" ||
		SchemeCombined.String() != "combined" || Scheme(9).String() != "unknown" {
		t.Fatal("scheme names")
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(rcSystem(t), Options{}); err == nil {
		t.Fatal("TStop=0 must fail")
	}
	if _, err := Run(rcSystem(t), Options{
		Base: transient.Options{TStop: 1e-3, MaxPoints: 2},
	}); err == nil {
		t.Fatal("MaxPoints must abort")
	}
}

// Waveform monotonicity property: accepted points must always be published
// in strictly ascending time order across all schemes (the coordinator's
// ordering contract).
func TestTimeAxisStrictlyAscending(t *testing.T) {
	for _, scheme := range []Scheme{SchemeBackward, SchemeForward, SchemeCombined} {
		res, err := Run(rectifierSystem(t), Options{
			Base:    transient.Options{TStop: 2e-3},
			Scheme:  scheme,
			Threads: 4,
		})
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		for i := 1; i < len(res.W.Times); i++ {
			if res.W.Times[i] <= res.W.Times[i-1] {
				t.Fatalf("%v: time axis not ascending at %d: %g after %g",
					scheme, i, res.W.Times[i], res.W.Times[i-1])
			}
		}
	}
}

// The pipelined engines must respect waveform breakpoints exactly, like the
// serial engine.
func TestBreakpointHandling(t *testing.T) {
	ckt := circuit.New("bp")
	in := ckt.Node("in")
	out := ckt.Node("out")
	ckt.Add(device.NewVSource("V1", in, circuit.Ground, device.Pulse{
		V1: 0, V2: 1, Delay: 1e-3, Rise: 1e-5, Width: 1e-3, Fall: 1e-5,
	}))
	ckt.Add(device.NewResistor("R1", in, out, 1e3))
	ckt.Add(device.NewCapacitor("C1", out, circuit.Ground, 1e-7))
	sys, err := ckt.Build()
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range []Scheme{SchemeBackward, SchemeForward, SchemeCombined} {
		res, err := Run(sys, Options{Base: transient.Options{TStop: 4e-3}, Scheme: scheme})
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		for _, want := range []float64{1e-3, 1e-3 + 1e-5} {
			found := false
			for _, tv := range res.W.Times {
				if math.Abs(tv-want) < 1e-12 {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("%v: breakpoint %g not hit", scheme, want)
			}
		}
	}
}

func TestGear2DefaultMethod(t *testing.T) {
	res, err := Run(rcSystem(t), Options{
		Base: transient.Options{TStop: 1e-3, Method: integrate.Gear2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalX == nil || len(res.FinalX) == 0 {
		t.Fatal("missing final solution")
	}
}

// ResumeAt must fall back to a full solve when the speculative assembly's
// discretization does not match the true history (e.g. the backward point
// under the main step failed, changing the trailing spacing).
func TestResumeAtFallback(t *testing.T) {
	sys := rcSystem(t)
	ps := transient.NewPointSolver(sys, integrate.Gear2, newtonDefaults(), 1e-12)
	hist := &integrate.History{}
	p0, err := transient.InitialPoint(sys, ps, transient.Options{TStop: 1e-3}.WithDefaults())
	if err != nil {
		t.Fatal(err)
	}
	hist.Add(p0)
	pt1, _, err := ps.SolveAt(hist, 1e-7, nil)
	if err != nil {
		t.Fatal(err)
	}
	hist.Add(pt1)
	// Warm start for t=3e-7 against this history...
	warm := ps.WarmStart(hist, 3e-7, 2)
	// ...then resume against a *different* history (extra point changes
	// Alpha0): must still produce a correct point via the fallback.
	pt2, _, err := ps.SolveAt(hist, 2e-7, nil)
	if err != nil {
		t.Fatal(err)
	}
	hist.Add(pt2)
	pt3, co, err := ps.ResumeAt(hist, 3e-7, warm)
	if err != nil {
		t.Fatal(err)
	}
	if pt3.T != 3e-7 || co.H0 <= 0 {
		t.Fatalf("resume fallback point: %+v", pt3)
	}
	// And a matching resume (same history shape) also works.
	warm2 := ps.WarmStart(hist, 4e-7, 2)
	pt4, _, err := ps.ResumeAt(hist, 4e-7, warm2)
	if err != nil {
		t.Fatal(err)
	}
	if pt4.T != 4e-7 {
		t.Fatalf("resume point: %+v", pt4)
	}
}

func newtonDefaults() newton.Options { return newton.DefaultOptions() }

func TestWarmDepthAdaptivity(t *testing.T) {
	e := &engine{opts: Options{}}
	if e.warmDepth() != 1 {
		t.Fatalf("cold depth = %d, want 1", e.warmDepth())
	}
	e.noteMainIters(4)
	if e.emaIters != 4 {
		t.Fatalf("first sample sets the average: %g", e.emaIters)
	}
	for i := 0; i < 30; i++ {
		e.noteMainIters(6)
	}
	if d := e.warmDepth(); d != 6 {
		t.Fatalf("converged depth = %d, want 6", d)
	}
	for i := 0; i < 100; i++ {
		e.noteMainIters(50)
	}
	if d := e.warmDepth(); d != 10 {
		t.Fatalf("depth cap = %d, want 10", d)
	}
	e.opts.WarmIters = 3
	if e.warmDepth() != 3 {
		t.Fatal("explicit WarmIters must win")
	}
}

// The pipelined schemes must also hold accuracy under the trapezoidal rule
// (the paper's analysis covers both second-order methods).
func TestTrapezoidalSchemes(t *testing.T) {
	ref, err := transient.Run(rectifierSystem(t), transient.Options{
		TStop: 2e-3, Method: integrate.Trapezoidal,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range []Scheme{SchemeBackward, SchemeCombined} {
		res, err := Run(rectifierSystem(t), Options{
			Base:    transient.Options{TStop: 2e-3, Method: integrate.Trapezoidal},
			Scheme:  scheme,
			Threads: 3,
		})
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		dev, err := waveform.Compare(res.W, ref.W, "out")
		if err != nil {
			t.Fatal(err)
		}
		if dev.RelMax() > 0.02 {
			t.Fatalf("%v trap deviation %.4f", scheme, dev.RelMax())
		}
	}
}

// Determinism: identical options must produce bit-identical waveforms (no
// map-iteration or scheduling nondeterminism leaks into results).
func TestRunIsDeterministic(t *testing.T) {
	for _, scheme := range []Scheme{SchemeBackward, SchemeForward, SchemeCombined} {
		opts := Options{
			Base:    transient.Options{TStop: 1e-3},
			Scheme:  scheme,
			Threads: 4,
		}
		a, err := Run(rectifierSystem(t), opts)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(rectifierSystem(t), opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.W.Times) != len(b.W.Times) {
			t.Fatalf("%v: point counts differ: %d vs %d", scheme, len(a.W.Times), len(b.W.Times))
		}
		for i := range a.W.Times {
			if a.W.Times[i] != b.W.Times[i] || a.W.Data[i][1] != b.W.Data[i][1] {
				t.Fatalf("%v: runs diverge at %d", scheme, i)
			}
		}
	}
}
