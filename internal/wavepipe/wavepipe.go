// Package wavepipe implements the paper's contribution: waveform-pipelined
// parallel transient simulation. Multiple adjacent time points are computed
// concurrently by worker goroutines in a way resembling hardware pipelining,
// without relaxation — every accepted point satisfies the same implicit
// integration formula, Newton tolerance and LTE test as the serial engine.
//
// Two embodiments are provided, plus their combination:
//
//   - Backward pipelining (SchemeBackward): while the main worker computes
//     the regular next point t+h, extra workers compute solutions at
//     backward points t+h−δ, t+h−2δ, ... All depend only on already-known
//     history, so they run fully in parallel. The densely spaced trailing
//     points shrink the variable-step Gear-2 LTE constant and refresh the
//     derivative estimate, allowing a larger next step — the pipeline
//     advances simulated time faster than one serial step per solve.
//
//   - Forward pipelining (SchemeForward): a second worker speculatively
//     iterates on the point after next (t+2h) using a polynomial
//     *prediction* of the not-yet-converged t+h solution as history. Once
//     the true t+h point is published, the worker swaps in the exact
//     history and finishes Newton from its warm iterate. Accuracy is
//     unaffected — the final iterations always use the true history and the
//     point is still LTE-checked — but most of its Newton work overlapped
//     with the predecessor's.
//
//   - SchemeCombined layers a backward worker under the main point and
//     (with 4 threads) under the forward point as well.
package wavepipe

import (
	"errors"
	"fmt"
	"math"
	"os"
	"runtime"
	"sync"
	"time"

	"wavepipe/internal/checkpoint"
	"wavepipe/internal/circuit"
	"wavepipe/internal/faults"
	"wavepipe/internal/integrate"
	"wavepipe/internal/num"
	"wavepipe/internal/sched"
	"wavepipe/internal/trace"
	"wavepipe/internal/transient"
	"wavepipe/internal/waveform"
)

// Scheme selects the pipelining embodiment.
type Scheme int

// Available pipelining schemes.
const (
	SchemeBackward Scheme = iota
	SchemeForward
	SchemeCombined
)

// String returns the scheme name.
func (s Scheme) String() string {
	switch s {
	case SchemeBackward:
		return "backward"
	case SchemeForward:
		return "forward"
	case SchemeCombined:
		return "combined"
	default:
		return "unknown"
	}
}

// Options configures a WavePipe run.
type Options struct {
	// Base carries the underlying transient configuration (window, method,
	// tolerances). Method must be Gear2 or Trapezoidal for second-order
	// pipelining; Gear2 (the default) is what the paper analyses.
	Base transient.Options
	// Scheme selects backward, forward or combined pipelining.
	Scheme Scheme
	// Threads is the number of concurrent point workers: 2–3 for backward,
	// 2 for forward, 3–4 for combined. Defaults to 2 (3 for combined).
	Threads int
	// DeltaRatio sets the backward offset δ = DeltaRatio·h (default 0.2).
	DeltaRatio float64
	// WarmIters is how many speculative Newton iterations the forward
	// worker runs on the predicted history. 0 (the default) adapts the
	// depth to the rolling main-solve iteration count, mirroring a real
	// parallel machine where the speculative worker iterates until the
	// true predecessor point is published.
	WarmIters int
	// AggressiveGrowth credits the step-size growth cap once per accepted
	// point instead of once per stage (cap·GrowthCap^points). Faster on
	// smooth circuits but defeats the cap's trust-region role near sharp
	// nonlinear events; kept as an ablation knob (experiment A2), off by
	// default.
	AggressiveGrowth bool
	// ForceParallelWorkers launches stage workers as goroutines even when
	// the host has fewer cores than Threads (normally they run sequentially
	// there so the critical-path timing model stays uncontended). Results
	// are identical either way; used by the race-detector tests.
	ForceParallelWorkers bool
}

func (o Options) withDefaults() Options {
	if o.Threads <= 0 {
		if o.Scheme == SchemeCombined {
			o.Threads = 3
		} else {
			o.Threads = 2
		}
	}
	if o.Scheme == SchemeForward {
		o.Threads = 2 // forward pipelining is depth-1 in this implementation
	}
	if o.Scheme == SchemeCombined && o.Threads > 4 {
		o.Threads = 4
	}
	if o.Scheme == SchemeBackward && o.Threads > 4 {
		o.Threads = 4
	}
	if o.DeltaRatio <= 0 || o.DeltaRatio >= 0.9 {
		o.DeltaRatio = 0.2
	}
	return o
}

// Run executes a WavePipe transient analysis and returns a result of the
// same shape as the serial engine's.
func Run(sys *circuit.System, opts Options) (result *transient.Result, runErr error) {
	if opts.Base.TStop <= 0 {
		return nil, fmt.Errorf("wavepipe: TStop must be positive")
	}
	opts = opts.withDefaults()
	base := opts.Base.WithDefaults()
	e := &engine{
		sys:   sys,
		opts:  opts,
		base:  base,
		ctrl:  base.Control,
		rl:    &transient.RecoveryLog{},
		flt:   base.Faults,
		tr:    base.Trace,
		guard: base.Guard,
	}
	// Two-level budget split: one core per pipeline worker first, then the
	// remainder divided into equal per-solver intra-point gangs. Small
	// systems keep the whole budget at the pipeline level — barrier costs
	// would eat the intra-point gain (see transient.IntraProfitable).
	e.intra = 1
	if base.CoreBudget > 0 {
		e.coreBudget = base.CoreBudget
		e.budget = sched.NewBudget(base.CoreBudget)
		e.budget.Reserve(opts.Threads) // pipeline leaders (may be partial)
		if transient.IntraProfitable(sys) {
			if intra := base.CoreBudget / opts.Threads; intra > 1 {
				e.intra = intra
			}
		}
	}
	for i := 0; i < opts.Threads; i++ {
		s := transient.NewPointSolver(sys, base.Method, base.Newton, base.Gmin)
		s.WS.Faults = base.Faults
		s.WS.Abort = e.guard.AbortFlag()
		if base.LoadWorkers > 1 {
			s.WS.SetLoadWorkers(base.LoadWorkers)
			s.WS.SetLoadMode(base.LoadMode)
		}
		if e.intra > 1 {
			// NewPool grants whatever the budget still covers; a nil pool
			// (budget exhausted) just leaves this solver serial inside.
			if pool := e.budget.NewPool(e.intra); pool != nil {
				s.WS.SetPool(pool)
				e.pools = append(e.pools, pool)
			}
		}
		s.WS.Solver.BypassTol = base.BypassTol
		s.WS.SetDeviceBypass(base.DeviceBypassTol, 0)
		s.SetTrace(base.Trace, int16(i))
		e.solvers = append(e.solvers, s)
	}
	defer func() {
		for _, p := range e.pools {
			p.Close()
		}
	}()

	// Final checkpoint on every exit path that has at least one accepted
	// point (see the serial engine's identical contract).
	defer func() {
		if !e.guard.Active() || e.hist == nil || e.hist.Len() == 0 {
			return
		}
		saveErr := e.guard.SaveFinal(e.capture())
		if runErr == nil && saveErr != nil {
			runErr = &faults.SimError{Phase: "checkpoint", Time: e.t(), Node: -1, Cause: saveErr}
		}
	}()

	if base.Resume != nil {
		rs, err := transient.RestoreState(base.Resume, sys, e.solvers[0], &base)
		if err != nil {
			return nil, err
		}
		// Lane 0 received the limiting/factorization state; the other lanes
		// adopt the limiting state (invalidating their journals). Pipelined
		// resume is equivalence-tolerance, not bit-identical: only the
		// serial engine's solve order is reproducible.
		for _, s := range e.solvers[1:] {
			s.WS.CopyStateFrom(e.solvers[0].WS)
		}
		e.hist, e.w, e.rl = rs.Hist, rs.W, rs.RL
		e.baseStats = rs.Base
		e.h, e.afterBreak, e.warmup = rs.H, rs.AfterBreak, rs.Warmup
	} else {
		p0, err := transient.InitialPoint(sys, e.solvers[0], base)
		if err != nil {
			return nil, err
		}
		e.hist = &integrate.History{}
		e.hist.Add(p0)
		e.w = transient.RecordSet(sys, base)
		e.w.Append(p0.T, p0.X)
		if base.OnAccept != nil {
			base.OnAccept(p0.T, e.w.Data[len(e.w.Data)-1])
		}
		e.h = math.Min(base.HInit, e.ctrl.HMax)
		e.afterBreak = true
	}
	e.bps = transient.CollectBreakpoints(sys, base.TStop)
	e.horizonEdge = transient.HorizonIsEdge(sys, base.TStop)

	for e.t() < base.TStop*(1-1e-12) {
		if e.ckptDue {
			e.ckptDue = false
			// Periodic snapshot at a committed stage boundary; a failed
			// write is latched in the controller, not fatal.
			_ = e.guard.Save(e.capture())
		}
		if aerr := e.guard.Err(); aerr != nil {
			return e.result(), &faults.SimError{Phase: "wavepipe", Time: e.t(), Node: -1, Cause: aerr}
		}
		if base.Ctx != nil {
			select {
			case <-base.Ctx.Done():
				if e.tr.Active() {
					e.tr.Emit(trace.Event{Kind: trace.KindCancel, T: e.t(), Worker: -1, Stage: int32(e.stages)})
				}
				return e.result(), transient.CancelError("wavepipe", e.t())
			default:
			}
		}
		if e.points >= base.MaxPoints {
			return e.result(), fmt.Errorf("wavepipe: exceeded %d points at t=%g", base.MaxPoints, e.t())
		}
		e.stages++
		if debugSteps && e.stages%100000 == 0 {
			// Stall diagnostic: a healthy run never reaches this.
			fmt.Printf("wavepipe: stage=%d t=%.6g h=%.3g points=%d rejects=%d\n",
				e.stages, e.t(), e.h, e.points, e.lteRejects)
		}
		var err error
		switch {
		case e.warmup > 0 || e.degraded > 0:
			// Pipeline flush: after a waveform discontinuity the truncation-
			// error checks have no valid history, so speculative points
			// would be accepted blind. Like a hardware pipeline after a
			// branch, refill serially until LTE control re-engages. The same
			// serial path is the degradation fallback after worker panics or
			// repeated stage failures (see degrade).
			err = e.serialStage()
		case opts.Scheme == SchemeForward:
			err = e.forwardStage(false)
		case opts.Scheme == SchemeCombined:
			err = e.forwardStage(true)
		default:
			err = e.backwardStage()
		}
		if err != nil {
			// A tripped deadline/watchdog can surface as a stage failure
			// (the Newton loops poll the abort flag); report the abort.
			if aerr := e.guard.Err(); aerr != nil {
				return e.result(), &faults.SimError{Phase: "wavepipe", Time: e.t(), Node: -1, Cause: aerr}
			}
			return e.result(), err
		}
	}

	return e.result(), nil
}

// capture snapshots the engine at a committed stage boundary. Lane 0 holds
// the authoritative limiting/factorization state: it computes every main
// point and every serial-fallback point.
func (e *engine) capture() *checkpoint.State {
	total := transient.Stats{}
	for _, s := range e.solvers {
		s.HarvestSolverStats()
		total.Add(s.Stats)
	}
	total.Points = e.points
	total.LTERejects = e.lteRejects
	total.Discarded = e.discarded
	total.Stages = e.stages
	total.WorkerPanics = e.workerPanics
	total.DegradedStages = e.degradedStages
	total.CriticalNanos = e.critNanos
	total.Add(e.baseStats)
	hUsed := 0.0
	if n := e.hist.Len(); n >= 2 {
		hUsed = e.hist.At(n-1).T - e.hist.At(n-2).T
	}
	return transient.CaptureState(e.sys, e.solvers[0], &e.base, e.w, e.rl, e.hist,
		total, e.t(), e.h, hUsed, e.afterBreak, e.warmup, 1)
}

// result assembles the (possibly partial) run outcome from the engine state.
func (e *engine) result() *transient.Result {
	stats := transient.Stats{}
	for _, s := range e.solvers {
		s.HarvestSolverStats()
		stats.Add(s.Stats)
	}
	stats.Points = e.points
	stats.LTERejects = e.lteRejects
	stats.Discarded = e.discarded
	stats.Stages = e.stages
	stats.WorkerPanics = e.workerPanics
	stats.DegradedStages = e.degradedStages
	// The summed per-solver CriticalNanos is total work; replace it with
	// the pipeline critical path accumulated per stage.
	stats.CriticalNanos = e.critNanos
	stats.CoreBudget = e.coreBudget
	stats.PipelineWorkers = e.opts.Threads
	stats.IntraWorkers = 1
	for _, p := range e.pools {
		if w := p.Workers(); w > stats.IntraWorkers {
			stats.IntraWorkers = w
		}
	}
	stats.PipelineSerialized = e.pipelineSerialized
	stats.Add(e.baseStats)
	return &transient.Result{W: e.w, Stats: stats, FinalX: num.Copy(e.hist.Last().X), Recovery: e.rl}
}

// engine holds the per-run coordinator state. Worker goroutines only touch
// their own PointSolver plus the immutable history snapshot of the stage.
type engine struct {
	sys  *circuit.System
	opts Options
	base transient.Options
	ctrl integrate.Control

	solvers []*transient.PointSolver
	hist    *integrate.History
	w       *waveform.Set

	bps         []float64
	nextBp      int
	horizonEdge bool // a device waveform edge coincides with TStop
	h           float64
	afterBreak  bool
	warmup      int // serial stages remaining after a pipeline flush

	// Two-level scheduling state: the run's core budget (0 = unmanaged),
	// the per-solver intra-point gang width, the budget accountant and the
	// pools it granted, and whether any pipeline phase had to serialize.
	coreBudget         int
	intra              int
	budget             *sched.Budget
	pools              []*sched.Pool
	pipelineSerialized bool

	// Robustness state: the run's recovery log and fault harness, the
	// remaining serial-fallback window, and the consecutive-failure streak
	// that triggers it.
	rl         *transient.RecoveryLog
	flt        *faults.Injector
	degraded   int
	failStreak int

	// Durability state: the run's guard (nil when unguarded), whether a
	// periodic checkpoint is due at the next committed stage boundary, and
	// the stats baseline carried over from before a resume.
	guard     *checkpoint.Controller
	ckptDue   bool
	baseStats transient.Stats

	// tr is the run's event stream (nil when untraced; every emission site
	// is nil-safe). Counter-bearing emissions go through the accept /
	// noteDiscards / noteReject / degrade helpers so the trace can never
	// diverge from the Stats counters.
	tr *trace.Tracer

	points         int
	lteRejects     int
	discarded      int
	stages         int
	workerPanics   int
	degradedStages int
	critNanos      int64
	emaIters       float64 // rolling main-solve Newton iteration count

	// Coordinator-side scratch: the LTE checks and step selection run on the
	// coordinator between parallel phases, so one set of buffers makes the
	// per-stage bookkeeping allocation-free.
	ltePts  []*integrate.Point
	tailBuf []*integrate.Point
	lteScr  integrate.LTEScratch
}

// t returns the current simulation time.
func (e *engine) t() float64 { return e.hist.Last().T }

// stageLimit returns the next hard time boundary (breakpoint or TStop).
func (e *engine) stageLimit() float64 {
	t := e.t()
	for e.nextBp < len(e.bps) && e.bps[e.nextBp] <= t*(1+1e-12) {
		e.nextBp++
	}
	if e.nextBp < len(e.bps) {
		return e.bps[e.nextBp]
	}
	return e.base.TStop
}

// warmDepth returns the speculative iteration budget for the forward
// worker: the configured WarmIters, or (adaptively) one less than the
// rolling main-solve iteration count — the warm start's trailing
// assembly+factorization costs roughly one more iteration, keeping the
// speculative task no heavier than the concurrent main solve.
func (e *engine) warmDepth() int {
	if e.opts.WarmIters > 0 {
		return e.opts.WarmIters
	}
	d := int(e.emaIters + 0.5)
	if d < 1 {
		d = 1
	}
	if d > 10 {
		d = 10
	}
	return d
}

// noteMainIters feeds the rolling iteration average.
func (e *engine) noteMainIters(iters int) {
	if e.emaIters == 0 {
		e.emaIters = float64(iters)
		return
	}
	e.emaIters += 0.2 * (float64(iters) - e.emaIters)
}

// sequentialFor reports whether a phase of n concurrent tasks must run
// sequentially. Two reasons force it: the host has fewer schedulable cores
// than tasks (concurrent solves would time-share the CPU and pollute the
// per-solve measurements behind the critical-path model), or the run's core
// budget grants fewer pipeline slots than the phase needs. Both are
// rechecked every phase — GOMAXPROCS is mutable at runtime, so a one-shot
// answer captured at engine construction can go stale mid-run.
func (e *engine) sequentialFor(n int) bool {
	if e.opts.ForceParallelWorkers {
		return false
	}
	if runtime.GOMAXPROCS(0) < n {
		return true
	}
	return e.coreBudget > 0 && e.coreBudget < n
}

// runTasks executes the independent tasks of one pipeline phase, in
// parallel on hosts with enough cores and budget, and sequentially
// otherwise (same results either way; see sequentialFor).
func (e *engine) runTasks(tasks ...func()) {
	if len(tasks) == 1 {
		tasks[0]()
		return
	}
	if e.sequentialFor(len(tasks)) {
		e.pipelineSerialized = true
		for _, t := range tasks {
			t()
		}
		return
	}
	var wg sync.WaitGroup
	for _, t := range tasks {
		wg.Add(1)
		go func(f func()) {
			defer wg.Done()
			f()
		}(t)
	}
	wg.Wait()
}

// pointResult carries one worker's outcome back to the coordinator.
type pointResult struct {
	pt  *integrate.Point
	co  integrate.Coeffs
	err error
}

// lteNorm checks a candidate against the pre-stage history, estimating the
// derivative from spaced points (see History.SpacedTail) while keeping the
// candidate's true trailing spacing in the error coefficient.
func (e *engine) lteNorm(res pointResult) float64 {
	return e.lteNormAgainst(e.hist, res)
}

func (e *engine) lteNormAgainst(hist *integrate.History, res pointResult) float64 {
	e.ltePts = hist.AppendSpacedTail(e.ltePts[:0], res.co.Order+1, res.co.H0/4)
	e.ltePts = append(e.ltePts, res.pt)
	if e.tr.Active() {
		t0 := time.Now()
		norm := e.ctrl.CheckLTEWith(e.base.Method, res.co.Order, e.ltePts, res.co.H0, res.co.H1, &e.lteScr)
		e.tr.Emit(trace.Event{
			Kind: trace.KindPhase, Phase: trace.PhaseLTE, T: res.pt.T, Norm: norm,
			Worker: -1, Stage: int32(e.stages), Dur: time.Since(t0).Nanoseconds(),
		})
		return norm
	}
	return e.ctrl.CheckLTEWith(e.base.Method, res.co.Order, e.ltePts, res.co.H0, res.co.H1, &e.lteScr)
}

// accept publishes a point into the history and the waveform set. Any
// accepted point is progress, so the failure streak resets.
func (e *engine) accept(pt *integrate.Point) {
	if e.tr.Active() {
		e.tr.Emit(trace.Event{
			Kind: trace.KindAccept, T: pt.T, H: pt.T - e.hist.Last().T,
			Worker: -1, Stage: int32(e.stages),
		})
	}
	e.hist.Add(pt)
	e.w.Append(pt.T, pt.X)
	if e.base.OnAccept != nil {
		e.base.OnAccept(pt.T, e.w.Data[len(e.w.Data)-1])
	}
	e.points++
	e.failStreak = 0
	if e.guard.NoteAccept() {
		// Mid-stage accept: snapshot at the next committed stage boundary,
		// never between the parallel phases of one stage.
		e.ckptDue = true
	}
}

// noteDiscards counts n speculative points thrown away unused, pairing each
// Stats.Discarded increment with one KindDiscard event.
func (e *engine) noteDiscards(t float64, n int) {
	e.discarded += n
	if e.tr.Active() {
		for i := 0; i < n; i++ {
			e.tr.Emit(trace.Event{Kind: trace.KindDiscard, T: t, Worker: -1, Stage: int32(e.stages)})
		}
	}
}

// noteReject counts one LTE rejection, pairing the Stats.LTERejects
// increment with one KindLTEReject event. A rejected candidate's journals
// describe a discarded trajectory, so the bypass state is retired with it.
func (e *engine) noteReject(t, h, norm float64) {
	e.lteRejects++
	e.invalidateBypass()
	if e.tr.Active() {
		e.tr.Emit(trace.Event{
			Kind: trace.KindLTEReject, T: t, H: h, Norm: norm,
			Worker: -1, Stage: int32(e.stages),
		})
	}
}

// noteOccupancy publishes one worker-occupancy span for each solver that
// participated in the just-joined parallel round (tasks i < n), using the
// solver's modeled compute time as the span length.
func (e *engine) noteOccupancy(t float64, n int) {
	if !e.tr.Active() {
		return
	}
	for i := 0; i < n && i < len(e.solvers); i++ {
		e.tr.Emit(trace.Event{
			Kind: trace.KindWorker, T: t, Worker: int16(i),
			Stage: int32(e.stages), Dur: e.solvers[i].LastNanos,
		})
	}
}

// invalidateBypass retires every solver's device-bypass journals. The
// coordinator calls it whenever the run's trajectory breaks — rejections,
// failures, breakpoints — so no pipeline lane replays stamps captured on a
// discarded path. Each workspace owns an independent generation counter, so
// concurrent stage workers are never exposed to a mid-flight bump (the
// coordinator only calls this between parallel phases).
func (e *engine) invalidateBypass() {
	for _, s := range e.solvers {
		s.WS.InvalidateDeviceBypass()
	}
}

// degradeWindow is how many serial stages the pipeline runs after a
// degradation trigger before re-entering pipelined operation.
const degradeWindow = 8

// degrade drops the pipeline to serial integration for the next
// degradeWindow stages. The first trigger of a window is logged.
func (e *engine) degrade(reason string) {
	if e.degraded == 0 {
		e.rl.Note(e.t(), transient.RecoverySerialFallback, reason)
		if e.tr.Active() {
			e.tr.Emit(trace.Event{
				Kind: trace.KindSerialFallback, T: e.t(), Worker: -1,
				Stage: int32(e.stages), Detail: reason,
			})
		}
	}
	e.degraded = degradeWindow
}

// guardTask wraps one stage-worker task so that a panic (real or injected)
// surfaces as a typed error on res instead of killing the process — a bad
// device model must cost at most the stage, never the run.
func (e *engine) guardTask(tTarget float64, res *pointResult, f func()) func() {
	return func() {
		defer func() {
			if r := recover(); r != nil {
				res.err = &faults.SimError{
					Phase: "wavepipe", Time: tTarget, Node: -1,
					Cause: fmt.Errorf("%w: %v", faults.ErrWorkerPanic, r),
				}
			}
		}()
		if cls, ok := e.flt.At(faults.SiteWorker, tTarget); ok && cls == faults.WorkerPanic {
			panic(fmt.Sprintf("injected worker panic at t=%g", tTarget))
		}
		f()
	}
}

// notePanics counts worker panics among the stage's results and schedules
// the serial-fallback window.
func (e *engine) notePanics(results ...*pointResult) {
	for _, r := range results {
		if r != nil && r.err != nil && errors.Is(r.err, faults.ErrWorkerPanic) {
			e.workerPanics++
			e.degrade("worker panic")
		}
	}
}

// serialStage advances one plain single-point step (the pipeline-flush
// refill path after breakpoints).
func (e *engine) serialStage() error {
	t := e.t()
	limit := e.stageLimit()
	tNew := t + e.h
	hitBp := false
	if tNew >= limit-0.01*e.h { // step-relative clamp; see transient.Run
		tNew = limit
		hitBp = true
	}
	pt, co, err := e.solvers[0].SolveAt(e.hist, tNew, nil)
	if err != nil {
		// Step shrinking first; at the floor, the serial stage is the
		// pipeline's last line of defense, so it climbs the same
		// convergence-recovery ladder as the serial engine.
		if e.h/8 >= e.ctrl.HMin {
			e.failStreak++
			e.invalidateBypass()
			e.h /= 8
			return nil
		}
		e.h = e.ctrl.HMin
		tNew = t + e.h
		hitBp = tNew >= limit-0.01*e.h
		if hitBp {
			tNew = limit
		}
		pt, co, err = e.solvers[0].RecoverAt(e.hist, tNew, e.rl)
		if err != nil {
			return &faults.SimError{
				Phase: "wavepipe", Time: t, Node: -1,
				Cause: fmt.Errorf("%w at t=%g: %w", faults.ErrStepTooSmall, t, err),
			}
		}
	}
	e.critNanos += e.solvers[0].LastNanos
	e.noteOccupancy(tNew, 1)
	res := pointResult{pt: pt, co: co}
	norm := e.lteNorm(res)
	if norm > 1 && co.H0 > e.ctrl.HMin*1.01 && !e.afterBreak {
		e.noteReject(tNew, co.H0, norm)
		e.h = e.ctrl.ShrinkOnReject(co.H0, norm, co.Order)
		return nil
	}
	e.accept(pt)
	e.noteMainIters(e.solvers[0].LastIters)
	if hitBp && !e.finalPlainLanding() {
		e.handleBreak(co.H0)
		return nil
	}
	e.afterBreak = false
	if e.warmup > 0 {
		e.warmup--
	} else if e.degraded > 0 {
		e.degraded--
		e.degradedStages++
	}
	e.nextStep(co.H0, 1, norm, co.H1)
	return nil
}

// finalPlainLanding reports whether the engine just landed on the plain
// simulation horizon rather than on a device waveform edge. Such a landing
// needs no integrator restart — the run is over, and the final checkpoint
// keeps the history at full order so a resumed continuation picks up
// without a restart transient (see transient.HorizonIsEdge).
func (e *engine) finalPlainLanding() bool {
	return e.t() >= e.base.TStop*(1-1e-12) && !e.horizonEdge
}

// handleBreak restarts integration after landing on a breakpoint, sizing
// the restart step from the next breakpoint gap (see transient.RestartStep).
func (e *engine) handleBreak(lastStep float64) {
	e.hist.Truncate()
	// Discontinuity: journals captured before the edge describe dynamics
	// that no longer exist.
	e.invalidateBypass()
	t := e.t()
	gap := e.base.TStop - t
	if e.nextBp < len(e.bps) {
		// stageLimit has not advanced past the just-consumed breakpoint yet;
		// scan forward for the next strictly-later one.
		for _, bp := range e.bps[e.nextBp:] {
			if bp > t*(1+1e-12) {
				gap = bp - t
				break
			}
		}
	}
	e.h = transient.RestartStep(gap, lastStep, e.base.HInit, e.ctrl)
	e.afterBreak = true
	// Refill serially until the LTE checks have a full stencil again:
	// Gear-2 needs order+2 = 4 points, i.e. 3 accepted steps past the
	// breakpoint point.
	e.warmup = 3
}

// nextStep picks the step for the following stage from the accepted
// anchor's LTE norm (see integrate.Control.NextStep), under the growth cap.
// The cap is applied to the stage's main advance (hUsed), exactly as the
// serial engine caps against its last step — the pipelining gain comes from
// the relaxed LTE error coefficient (clustered trailing history enters
// h1Next), not from weakening the cap. AggressiveGrowth (ablation A2)
// credits the cap once per accepted point instead.
func (e *engine) nextStep(hUsed float64, accepted int, norm, h1Solve float64) {
	order := e.base.Method.Order()
	e.tailBuf = e.hist.AppendTail(e.tailBuf[:0], 2)
	last := e.tailBuf
	h1Next := 0.0
	if len(last) == 2 {
		h1Next = last[1].T - last[0].T
	}
	h := e.ctrl.NextStep(e.base.Method, order, norm, hUsed, h1Solve, h1Next)
	growth := e.ctrl.GrowthCap
	if e.opts.AggressiveGrowth {
		growth = math.Pow(e.ctrl.GrowthCap, float64(accepted))
	}
	if capV := hUsed * growth; h > capV {
		h = capV
	}
	e.h = num.Clamp(h, e.ctrl.HMin, e.ctrl.HMax)
	if debugSteps {
		fmt.Printf("bwp t=%.5g hUsed=%.3g norm=%.3g h1S=%.3g h1N=%.3g -> h=%.3g\n",
			e.t(), hUsed, norm, h1Solve, h1Next, e.h)
	}
}

// debugSteps enables step-decision tracing (tests/diagnostics only).
var debugSteps = os.Getenv("WAVEPIPE_DEBUG") != ""

// shrinkAfterFailure reduces the stage step after a Newton failure. It never
// fails the run: repeated failures and the step floor both hand control to
// the serial fallback, whose recovery ladder is the last word.
func (e *engine) shrinkAfterFailure() {
	e.failStreak++
	e.invalidateBypass()
	if e.failStreak >= 3 {
		e.degrade("repeated stage failure")
	}
	e.h /= 8
	if e.h < e.ctrl.HMin {
		e.h = e.ctrl.HMin
		e.degrade("step floor reached")
	}
}

// backwardStage runs one backward-pipelining stage: the main point t+h and
// Threads−1 backward points t+h−jδ, all solved concurrently from the same
// history.
func (e *engine) backwardStage() error {
	t := e.t()
	limit := e.stageLimit()
	tMain := t + e.h
	hitBp := false
	if tMain >= limit-0.01*e.h { // step-relative clamp; see transient.Run
		tMain = limit
		hitBp = true
	}
	h0 := tMain - t
	delta := e.opts.DeltaRatio * h0

	// Backward targets, ascending, ending with the main point. Offsets that
	// would crowd the base point are dropped.
	targets := make([]float64, 0, e.opts.Threads)
	for j := e.opts.Threads - 1; j >= 1; j-- {
		tb := tMain - float64(j)*delta
		if tb > t+0.05*h0 {
			targets = append(targets, tb)
		}
	}
	targets = append(targets, tMain)

	results := make([]pointResult, len(targets))
	tasks := make([]func(), len(targets))
	for i := range targets {
		i := i
		tasks[i] = e.guardTask(targets[i], &results[i], func() {
			pt, co, err := e.solvers[i].SolveAt(e.hist, targets[i], nil)
			results[i] = pointResult{pt: pt, co: co, err: err}
		})
	}
	e.runTasks(tasks...)
	for i := range results {
		e.notePanics(&results[i])
	}
	// Stage critical path: the slowest of the concurrent workers.
	var stageCrit int64
	for i := range targets {
		if d := e.solvers[i].LastNanos; d > stageCrit {
			stageCrit = d
		}
	}
	e.critNanos += stageCrit
	e.noteOccupancy(tMain, len(targets))

	main := results[len(results)-1]
	if main.err != nil {
		e.noteDiscards(tMain, len(targets)-1)
		if !errors.Is(main.err, faults.ErrWorkerPanic) {
			// A panicked main worker is not a step-size problem; the
			// scheduled serial fallback simply redoes the point. Newton
			// failures shrink the step as before.
			e.shrinkAfterFailure()
		}
		return nil
	}
	mainNorm := e.lteNorm(main)
	if mainNorm > 1 && main.co.H0 > e.ctrl.HMin*1.01 && !e.afterBreak {
		e.noteReject(tMain, main.co.H0, mainNorm)
		e.noteDiscards(tMain, len(targets)-1)
		e.h = e.ctrl.ShrinkOnReject(main.co.H0, mainNorm, main.co.Order)
		return nil
	}

	// Accept the surviving backward points (ascending) and then the main
	// point. Backward points are optional accelerators: failures only cost
	// their potential speedup. LTE norms are evaluated against the
	// pre-stage history every candidate was actually solved from.
	keep := make([]bool, len(results)-1)
	for i, r := range results[:len(results)-1] {
		if r.err != nil {
			continue
		}
		if !e.afterBreak {
			if norm := e.lteNorm(r); norm > 1 {
				continue
			}
		}
		keep[i] = true
	}
	accepted := 0
	for i, r := range results[:len(results)-1] {
		if keep[i] {
			e.accept(r.pt)
			accepted++
		} else {
			e.noteDiscards(targets[i], 1)
		}
	}
	e.accept(main.pt)
	accepted++

	if hitBp && !e.finalPlainLanding() {
		e.handleBreak(h0)
		return nil
	}
	e.afterBreak = false
	e.nextStep(h0, accepted, mainNorm, main.co.H1)
	return nil
}
