package wavepipe

import (
	"testing"

	"wavepipe/internal/transient"
	"wavepipe/internal/waveform"
)

// TestParallelWorkersRaceAndEquivalence forces the truly concurrent worker
// path (normally skipped on hosts with fewer cores than threads) so the
// race detector can inspect the sharing discipline: immutable history
// points, per-worker solvers, coordinator-only acceptance. It also checks
// that the concurrent path produces the same waveform as the sequential
// one.
func TestParallelWorkersRaceAndEquivalence(t *testing.T) {
	for _, scheme := range []Scheme{SchemeBackward, SchemeForward, SchemeCombined} {
		seqRes, err := Run(rectifierSystem(t), Options{
			Base:    transient.Options{TStop: 1e-3},
			Scheme:  scheme,
			Threads: 4,
		})
		if err != nil {
			t.Fatalf("%v sequential: %v", scheme, err)
		}
		parRes, err := Run(rectifierSystem(t), Options{
			Base:                 transient.Options{TStop: 1e-3},
			Scheme:               scheme,
			Threads:              4,
			ForceParallelWorkers: true,
		})
		if err != nil {
			t.Fatalf("%v parallel: %v", scheme, err)
		}
		if seqRes.Stats.Points != parRes.Stats.Points {
			t.Fatalf("%v: point counts differ: %d vs %d",
				scheme, seqRes.Stats.Points, parRes.Stats.Points)
		}
		dev, err := waveform.Compare(parRes.W, seqRes.W, "out")
		if err != nil {
			t.Fatal(err)
		}
		if dev.Max != 0 {
			t.Fatalf("%v: concurrent path diverges from sequential by %g", scheme, dev.Max)
		}
	}
}
