package wavepipe

import (
	"testing"

	"wavepipe/internal/circuit"
	"wavepipe/internal/device"
	"wavepipe/internal/transient"
)

// Regression: a pulse with an instantaneous fall (Fall = 0) must not stall
// the pipelined engines (README quickstart circuit).
func TestInstantFallPulseDoesNotStall(t *testing.T) {
	mk := func() *circuit.System {
		c := circuit.New("rcq")
		in := c.Node("in")
		out := c.Node("out")
		c.Add(device.NewVSource("V1", in, circuit.Ground, device.Pulse{
			V2: 1, Rise: 1e-9, Width: 1e-6,
		}))
		c.Add(device.NewResistor("R1", in, out, 1e3))
		c.Add(device.NewCapacitor("C1", out, circuit.Ground, 1e-9))
		sys, err := c.Build()
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}
	for _, scheme := range []Scheme{SchemeBackward, SchemeForward, SchemeCombined} {
		res, err := Run(mk(), Options{
			Base:    transient.Options{TStop: 5e-6, MaxPoints: 5000},
			Scheme:  scheme,
			Threads: 2,
		})
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		if res.Stats.Points > 2000 {
			t.Fatalf("%v: %d points for a trivial RC", scheme, res.Stats.Points)
		}
	}
}
