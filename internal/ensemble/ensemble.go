// Package ensemble runs K parameter-variants of one circuit topology in
// lockstep over a struct-of-arrays workspace — the batch engine behind
// Monte Carlo, PVT-corner and parameter-sweep workloads.
//
// All lanes share the host System's symbolic work, computed exactly once:
// the compiled Jacobian pattern, the fill-reducing column ordering (every
// lane solver factorizes through FactorizeWithPerm on the shared
// permutation), the Build-time conflict-graph coloring, and the per-pattern
// LU level schedules. Per lane, only values differ: lane matrices stride
// one contiguous value block, the F/Q/B and limiting-state vectors stride a
// second, the Newton scratch (history vector, residual, update) a third,
// and each lane's history/candidate points are carved from a shared arena —
// so device evaluation iterates the models once per batched iteration and
// stamps the lanes' adjacent blocks (circuit.BatchLoad).
//
// Step control stays fully independent per lane: each lane mirrors the
// serial transient engine's plan/solve/LTE/accept loop exactly, so a lane's
// waveform is bit-identical to its own independent serial run (all bypass
// paths are structurally disabled in lanes). Lanes share one sched core
// Budget: each round, the active lanes are dealt across the gang's workers,
// and within a worker's chunk the live Newton iterations advance in
// lockstep with batched assembly. A lane retires — finishes, faults, or
// exhausts the recovery ladder at the step floor — without stalling the
// gang: it is simply dropped from the next round's deal.
//
// Critical-path accounting follows the repository's hardware-substitution
// model: the aggregate Stats.CriticalNanos is the sum over rounds of the
// slowest worker chunk's measured wall time (plus the chunked DC phase and
// any serial recovery-ladder climbs), i.e. the wall time a machine with
// Workers free cores would need.
package ensemble

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"wavepipe/internal/circuit"
	"wavepipe/internal/faults"
	"wavepipe/internal/integrate"
	"wavepipe/internal/num"
	"wavepipe/internal/sched"
	"wavepipe/internal/trace"
	"wavepipe/internal/transient"
	"wavepipe/internal/waveform"
)

// Lane describes one ensemble member: a circuit structurally identical to
// the host System's (same nodes, same device sequence and arity — only
// parameter values may differ).
type Lane struct {
	Name string
	Circ *circuit.Circuit
	// Faults, when non-nil, is a per-lane fault-injection harness (tests
	// only). Faulting one lane exercises the retirement path while the
	// remaining lanes run to completion.
	Faults *faults.Injector
}

// Options configures an ensemble run.
type Options struct {
	// Base is the per-lane analysis configuration, shared by every lane.
	// Durability (Guard/Resume), factorization bypass, device bypass and
	// parallel loads are not supported inside lanes and must be unset.
	Base transient.Options
	// Workers is the lane-gang width, caller included (the shared core
	// budget). 0 selects min(K, max(2, NumCPU)).
	Workers int
	// ForceGang spawns real gang goroutines even on a single-CPU host
	// (race tests); production runs leave it false and let the pool decide.
	ForceGang bool
	// Trace receives the run's event stream: per-lane solve/accept/reject
	// events (Worker = lane index) and one KindLaneRetire per lane.
	Trace *trace.Tracer
}

// LaneResult is one lane's outcome. Res is non-nil even on failure (the
// partial waveform up to the retirement point); Err is nil for a lane that
// reached TStop.
type LaneResult struct {
	Name string
	Res  *transient.Result
	Err  error
}

// Result is the outcome of an ensemble run.
type Result struct {
	Lanes []LaneResult
	// Stats aggregates all lanes' work counters; CriticalNanos holds the
	// gang's modeled critical path (not the per-lane sum), CoreBudget and
	// PipelineWorkers the gang width.
	Stats transient.Stats
	// Rounds is the number of gang rounds (every active lane attempts one
	// candidate point per round).
	Rounds int
}

// laneState is the per-lane mirror of the serial engine's loop variables.
type laneState struct {
	idx  int
	name string
	devs []circuit.Device
	ps   *transient.PointSolver
	hist *integrate.History
	w    *waveform.Set
	rl   *transient.RecoveryLog

	bps    []float64
	nextBp int

	t, h, hUsed float64
	afterBreak  bool
	lteTail     []*integrate.Point

	// Current-round candidate.
	tNew, tLimit float64
	hitBp        bool
	cand         *transient.Candidate
	candErr      error
	iters        int
	pt           *integrate.Point
	co           integrate.Coeffs

	// planned marks a lane that has a candidate time for this round.
	planned bool

	// Retirement.
	done bool
	err  error
	res  *transient.Result
}

type engine struct {
	sys   *circuit.System
	base  transient.Options
	ctrl  integrate.Control
	tr    *trace.Tracer
	lanes []*laneState
	pool  *sched.Pool
	width int

	// Per-worker chunk scratch (BatchLoad argument slices), reused across
	// rounds so the steady state allocates nothing.
	chWS [][]*circuit.Workspace
	chXS [][][]float64
	chPS [][]circuit.LoadParams

	chunks [][]*laneState // per-worker chunk scratch

	walls      []int64 // per-worker chunk wall times of the current round
	crit       int64   // accumulated gang critical path
	roundCount int
}

func validate(base *transient.Options) error {
	switch {
	case base.TStop <= 0:
		return fmt.Errorf("ensemble: TStop must be positive")
	case base.Guard != nil || base.Resume != nil:
		return fmt.Errorf("ensemble: durable runs (Guard/Resume) are not supported inside lanes")
	case base.BypassTol != 0:
		return fmt.Errorf("ensemble: factorization bypass is not supported inside lanes")
	case base.DeviceBypassTol != 0:
		return fmt.Errorf("ensemble: device bypass is not supported inside lanes")
	case base.LoadWorkers > 1:
		return fmt.Errorf("ensemble: parallel device loads are not supported inside lanes")
	case base.Trace != nil:
		return fmt.Errorf("ensemble: set the tracer on ensemble.Options, not on the lane options")
	}
	return nil
}

// Run executes the ensemble. The host System must come from a Build of a
// circuit structurally identical to every lane's. The returned Result is
// non-nil whenever the setup succeeded, even if lanes failed; the error is
// non-nil only for setup failures or run-wide cancellation.
func Run(sys *circuit.System, lanes []Lane, opts Options) (*Result, error) {
	k := len(lanes)
	if k == 0 {
		return nil, fmt.Errorf("ensemble: no lanes")
	}
	if err := validate(&opts.Base); err != nil {
		return nil, err
	}
	base := opts.Base.WithDefaults()

	for i := range lanes {
		if lanes[i].Circ == nil {
			return nil, fmt.Errorf("ensemble: lane %d has no circuit", i)
		}
		if err := sys.BindLanes(lanes[i].Circ); err != nil {
			return nil, fmt.Errorf("ensemble: lane %d: %w", i, err)
		}
	}

	width := opts.Workers
	if width <= 0 {
		width = runtime.NumCPU()
		if width < 2 {
			width = 2
		}
	}
	if width > k {
		width = k
	}
	budget := sched.NewBudget(width)
	budget.Reserve(1) // the caller is the gang leader
	pool := budget.NewPool(width)
	defer pool.Close()
	if opts.ForceGang && pool != nil {
		pool.Force = true
	}

	e := &engine{
		sys: sys, base: base, ctrl: base.Control, tr: opts.Trace,
		pool: pool, width: pool.Workers(),
	}
	e.walls = make([]int64, e.width)
	e.chWS = make([][]*circuit.Workspace, e.width)
	e.chXS = make([][][]float64, e.width)
	e.chPS = make([][]circuit.LoadParams, e.width)
	e.chunks = make([][]*laneState, e.width)
	perChunk := (k + e.width - 1) / e.width
	for w := 0; w < e.width; w++ {
		e.chunks[w] = make([]*laneState, 0, perChunk)
		e.chWS[w] = make([]*circuit.Workspace, 0, perChunk)
		e.chXS[w] = make([][]float64, 0, perChunk)
		e.chPS[w] = make([]circuit.LoadParams, 0, perChunk)
	}

	// Struct-of-arrays lane state: matrices, vectors, Newton scratch and
	// point arenas all stride shared backing blocks.
	n := sys.N
	wss := sys.NewLaneWorkspaces(k)
	scratch := make([]float64, k*3*n)
	perLanePts := integrate.HistoryDepth + 8
	arena := make([]float64, k*perLanePts*3*n)
	e.lanes = make([]*laneState, k)
	for i := range lanes {
		ws := wss[i]
		devs := lanes[i].Circ.Devices()
		ws.SetDevices(devs)
		ws.Faults = lanes[i].Faults
		ps := transient.NewPointSolverOn(ws, base.Method, base.Newton, base.Gmin,
			scratch[i*3*n:(i+1)*3*n])
		ps.DonatePoints(integrate.CarvePoints(
			arena[i*perLanePts*3*n:(i+1)*perLanePts*3*n], perLanePts, n))
		name := lanes[i].Name
		if name == "" {
			name = fmt.Sprintf("lane%d", i)
		}
		e.lanes[i] = &laneState{
			idx: i, name: name, devs: devs, ps: ps,
			rl:         &transient.RecoveryLog{},
			h:          math.Min(base.HInit, e.ctrl.HMax),
			afterBreak: true, // the t = 0 point counts as a breakpoint start
			bps:        transient.CollectBreakpointsFor(devs, base.TStop),
		}
	}

	e.runDC()
	err := e.loop()

	lr := make([]LaneResult, k)
	agg := transient.Stats{}
	rounds := 0
	for i, st := range e.lanes {
		lr[i] = LaneResult{Name: st.name, Res: st.res, Err: st.err}
		if st.res != nil {
			agg.Add(st.res.Stats)
		}
	}
	// The summed CriticalNanos double-counts nothing here (lockstep
	// candidates do not accumulate it), but what the caller needs is the
	// gang's modeled critical path: overwrite with the round-level model.
	agg.CriticalNanos = e.crit
	agg.CoreBudget = e.width
	agg.PipelineWorkers = e.width
	agg.IntraWorkers = 1
	res := &Result{Lanes: lr, Stats: agg, Rounds: e.roundCount}
	_ = rounds
	return res, err
}

// runDC computes every lane's t = 0 point, dealt across the gang like a
// solve round (its slowest chunk joins the critical path).
func (e *engine) runDC() {
	e.dispatch(func(st *laneState) {
		p0, err := transient.InitialPoint(e.sys, st.ps, e.base)
		if err != nil {
			st.candErr = err
			return
		}
		st.hist = &integrate.History{}
		st.hist.Add(p0)
		st.w = transient.RecordSet(e.sys, e.base)
		st.w.Append(p0.T, p0.X)
	})
	for _, st := range e.lanes {
		if st.candErr != nil {
			err := st.candErr
			st.candErr = nil
			e.retire(st, err)
		}
	}
}

// dispatch deals every non-retired lane across the gang, runs fn per lane
// on the owning worker, and folds the slowest worker's wall time into the
// critical path.
func (e *engine) dispatch(fn func(*laneState)) {
	for w := range e.walls {
		e.walls[w] = 0
	}
	e.pool.Run(func(w int) {
		t0 := time.Now()
		busy := false
		for i := w; i < len(e.lanes); i += e.width {
			if st := e.lanes[i]; !st.done {
				fn(st)
				busy = true
			}
		}
		if busy {
			e.walls[w] = time.Since(t0).Nanoseconds()
		}
	})
	max := int64(0)
	for _, d := range e.walls {
		if d > max {
			max = d
		}
	}
	e.crit += max
}

// canceled reports whether the run-wide context has been canceled.
func (e *engine) canceled() bool {
	if e.base.Ctx == nil {
		return false
	}
	select {
	case <-e.base.Ctx.Done():
		return true
	default:
		return false
	}
}

// loop is the round engine: plan (serial) → lockstep chunk solves (gang) →
// acceptance bookkeeping and retirement (serial), until every lane retired.
func (e *engine) loop() error {
	for {
		active := 0
		for _, st := range e.lanes {
			if !st.done {
				active++
			}
		}
		if active == 0 {
			return nil
		}
		if e.canceled() {
			if e.tr.Active() {
				e.tr.Emit(trace.Event{Kind: trace.KindCancel, Worker: -1})
			}
			var firstT float64
			first := true
			for _, st := range e.lanes {
				if st.done {
					continue
				}
				if first {
					firstT, first = st.t, false
				}
				e.retire(st, transient.CancelError("transient", st.t))
			}
			return transient.CancelError("ensemble", firstT)
		}
		e.roundCount++
		for _, st := range e.lanes {
			if !st.done {
				e.plan(st)
			}
		}
		e.dispatchChunks() // each worker's lanes advance in one lockstep chunk
		for _, st := range e.lanes {
			if !st.done && st.planned {
				e.finishRound(st)
			}
		}
	}
}

// plan mirrors the serial engine's loop head: MaxPoints guard, breakpoint
// advance, candidate time with breakpoint clamping.
func (e *engine) plan(st *laneState) {
	st.planned = false
	if st.ps.Stats.Points >= e.base.MaxPoints {
		e.retire(st, fmt.Errorf("transient: exceeded %d points at t=%g", e.base.MaxPoints, st.t))
		return
	}
	for st.nextBp < len(st.bps) && st.bps[st.nextBp] <= st.t*(1+1e-12) {
		st.nextBp++
	}
	st.tLimit = e.base.TStop
	if st.nextBp < len(st.bps) {
		st.tLimit = st.bps[st.nextBp]
	}
	st.hitBp = false
	st.tNew = st.t + st.h
	if st.tNew >= st.tLimit-0.01*st.h {
		st.tNew = st.tLimit
		st.hitBp = true
	}
	st.planned = true
}

// finishRound mirrors the serial engine's post-solve logic for one lane:
// failure → step shrink (next round) or recovery ladder at the floor; then
// LTE acceptance, history/waveform commit, breakpoint restart, next step.
func (e *engine) finishRound(st *laneState) {
	ps := st.ps
	ctrl := e.ctrl
	if st.candErr != nil {
		e.emitSolve(st, st.candErr)
		ps.WS.InvalidateDeviceBypass()
		if st.h/8 >= ctrl.HMin {
			st.h /= 8
			return // re-plan next round with the smaller step
		}
		// Step floor: climb the recovery ladder serially — this is the
		// cold path, and its wall time joins the critical path directly.
		st.h = ctrl.HMin
		tNew := st.t + st.h
		hitBp := tNew >= st.tLimit-0.01*st.h
		if hitBp {
			tNew = st.tLimit
		}
		t0 := time.Now()
		pt, co, err := ps.RecoverAt(st.hist, tNew, st.rl)
		e.crit += time.Since(t0).Nanoseconds()
		if err != nil {
			e.retire(st, &faults.SimError{
				Phase: "transient", Time: st.t, Node: -1,
				Cause: fmt.Errorf("%w at t=%g: %w", faults.ErrStepTooSmall, st.t, err),
			})
			return
		}
		if e.tr.Active() {
			e.tr.Emit(trace.Event{Kind: trace.KindRecovery, T: tNew, Worker: int16(st.idx)})
		}
		st.tNew, st.hitBp = tNew, hitBp
		st.pt, st.co = pt, co
		st.candErr = nil
	} else {
		e.emitSolve(st, nil)
	}

	pt, co := st.pt, st.co
	norm := 0.0
	if !e.base.NoLTE {
		st.lteTail = append(st.hist.AppendTail(st.lteTail[:0], co.Order+1), pt)
		norm = ctrl.CheckLTEWith(ps.Method, co.Order, st.lteTail, co.H0, co.H1, &ps.LTE)
		if norm > 1 && co.H0 > ctrl.HMin*1.01 && !st.afterBreak {
			ps.Stats.LTERejects++
			if e.tr.Active() {
				e.tr.Emit(trace.Event{Kind: trace.KindLTEReject, T: st.tNew, H: co.H0, Norm: norm, Worker: int16(st.idx)})
			}
			st.h = ctrl.ShrinkOnReject(co.H0, norm, co.Order)
			ps.WS.InvalidateDeviceBypass()
			ps.PutPoint(pt)
			return
		}
	}

	ps.PutPoint(st.hist.Add(pt))
	st.w.Append(pt.T, pt.X)
	ps.Stats.Points++
	st.t = pt.T
	st.hUsed = co.H0
	if e.tr.Active() {
		e.tr.Emit(trace.Event{Kind: trace.KindAccept, T: pt.T, H: co.H0, Norm: norm, Worker: int16(st.idx)})
	}

	if st.hitBp {
		for _, dp := range st.hist.Truncate() {
			ps.PutPoint(dp)
		}
		ps.WS.InvalidateDeviceBypass()
		gap := e.base.TStop - st.t
		for _, bp := range st.bps[st.nextBp:] {
			if bp > st.t*(1+1e-12) {
				gap = bp - st.t
				break
			}
		}
		st.h = transient.RestartStep(gap, st.hUsed, e.base.HInit, ctrl)
		st.afterBreak = true
	} else {
		st.afterBreak = false
		if e.base.NoLTE {
			st.h = ctrl.ClampStep(st.hUsed, st.hUsed)
		} else {
			st.h = ctrl.ClampStep(ctrl.NextStep(ps.Method, co.Order, norm, st.hUsed, co.H1, st.hUsed), st.hUsed)
		}
	}

	if st.t >= e.base.TStop*(1-1e-12) {
		e.retire(st, nil)
	}
}

// emitSolve publishes the lane's one KindSolve event per candidate attempt
// (lane workspaces carry no tracer, so the engine owns the event stream).
func (e *engine) emitSolve(st *laneState, err error) {
	if !e.tr.Active() {
		return
	}
	ev := trace.Event{
		Kind: trace.KindSolve, T: st.tNew, H: st.co.H0,
		Iters: int32(st.iters), Worker: int16(st.idx),
	}
	if err != nil {
		ev.Flags |= trace.FlagFailed
	}
	e.tr.Emit(ev)
}

// retire detaches a lane from the gang, freezing its Result. err == nil
// means the lane reached TStop.
func (e *engine) retire(st *laneState, err error) {
	st.done = true
	st.err = err
	ps := st.ps
	ps.Stats.Stages = ps.Stats.Solves // per-lane solves are sequential
	ps.HarvestSolverStats()
	res := &transient.Result{W: st.w, Stats: ps.Stats, Recovery: st.rl}
	if st.hist != nil {
		if last := st.hist.Last(); last != nil {
			res.FinalX = num.Copy(last.X)
		}
	}
	st.res = res
	if e.tr.Active() {
		ev := trace.Event{Kind: trace.KindLaneRetire, T: st.t, Worker: int16(st.idx), Detail: "finished"}
		if err != nil {
			ev.Flags |= trace.FlagFailed
			ev.Detail = "failed"
		}
		e.tr.Emit(ev)
	}
}

// dispatchChunks deals the round's planned lanes across the gang (lane i
// goes to worker i mod width) and advances each worker's chunk in lockstep;
// the slowest chunk's wall time joins the critical path.
func (e *engine) dispatchChunks() {
	for w := range e.walls {
		e.walls[w] = 0
	}
	e.pool.Run(func(w int) {
		chunk := e.chunks[w][:0]
		for i := w; i < len(e.lanes); i += e.width {
			if st := e.lanes[i]; !st.done && st.planned {
				chunk = append(chunk, st)
			}
		}
		e.chunks[w] = chunk
		if len(chunk) == 0 {
			return
		}
		t0 := time.Now()
		e.solveChunk(w, chunk)
		e.walls[w] = time.Since(t0).Nanoseconds()
	})
	max := int64(0)
	for _, d := range e.walls {
		if d > max {
			max = d
		}
	}
	e.crit += max
}

// solveChunk advances one worker's lanes through a full candidate solve in
// lockstep: every live lane's device load is batched (device-outer,
// lane-inner over the chunk's struct-of-arrays blocks), then each lane runs
// the per-lane remainder of the Newton iteration. Lanes leave the lockstep
// as they converge or fail; results land in the lane state for the serial
// acceptance phase.
func (e *engine) solveChunk(w int, chunk []*laneState) {
	live := 0
	for _, st := range chunk {
		st.cand, st.candErr, st.pt = nil, nil, nil
		st.iters = 0
		c, err := st.ps.BeginCandidate(st.hist, st.tNew)
		if err != nil {
			st.candErr = err
			continue
		}
		st.cand = c
		st.co = c.Co
		live++
	}
	wss := e.chWS[w][:0]
	xs := e.chXS[w][:0]
	lps := e.chPS[w][:0]
	for live > 0 {
		wss, xs, lps = wss[:0], xs[:0], lps[:0]
		for _, st := range chunk {
			if st.cand == nil {
				wss = append(wss, nil)
				xs = append(xs, nil)
				lps = append(lps, circuit.LoadParams{})
				continue
			}
			x, p := st.cand.LoadArgs()
			wss = append(wss, st.ps.WS)
			xs = append(xs, x)
			lps = append(lps, p)
		}
		circuit.BatchLoad(wss, xs, lps)
		for _, st := range chunk {
			if st.cand == nil {
				continue
			}
			done, err := st.cand.Step()
			if err != nil {
				st.iters = st.cand.Iter
				st.candErr = st.cand.Fail(err)
				st.cand = nil
				live--
				continue
			}
			if done {
				st.iters = st.cand.Iter
				st.co = st.cand.Co
				st.pt = st.cand.Commit()
				st.cand = nil
				live--
			}
		}
	}
	e.chWS[w], e.chXS[w], e.chPS[w] = wss, xs, lps
}
