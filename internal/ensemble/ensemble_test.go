package ensemble

import (
	"context"
	"errors"
	"math"
	"runtime"
	"testing"
	"time"

	"wavepipe/internal/circuit"
	"wavepipe/internal/circuits"
	"wavepipe/internal/device"
	"wavepipe/internal/faults"
	"wavepipe/internal/transient"
)

// ladderLanes builds k structurally identical RC ladders whose resistors
// are scaled by 1 + spread·i/k (spread 0 makes all lanes identical).
func ladderLanes(k, segments int, spread float64) []Lane {
	lanes := make([]Lane, k)
	for i := range lanes {
		c := circuits.RCLadder(segments)
		scale := 1 + spread*float64(i)/float64(k)
		for _, d := range c.Devices() {
			if r, ok := d.(*device.Resistor); ok {
				r.SetValue(r.Value() * scale)
			}
		}
		lanes[i] = Lane{Name: c.Title, Circ: c}
	}
	return lanes
}

func hostFor(t testing.TB, lanes []Lane) *circuit.System {
	sys, err := lanes[0].Circ.Build()
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// Every lane's waveform must be bit-identical to its own independent
// serial run: same accepted times, same sampled values, same counters.
func TestLaneWaveformsMatchSerial(t *testing.T) {
	const k, segs = 5, 24
	base := transient.Options{TStop: 20e-9}

	lanes := ladderLanes(k, segs, 0.8)
	res, err := Run(hostFor(t, lanes), lanes, Options{Base: base, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Lanes) != k {
		t.Fatalf("got %d lane results, want %d", len(res.Lanes), k)
	}

	serialLanes := ladderLanes(k, segs, 0.8)
	for i, lr := range res.Lanes {
		if lr.Err != nil {
			t.Fatalf("lane %d failed: %v", i, lr.Err)
		}
		sys, err := serialLanes[i].Circ.Build()
		if err != nil {
			t.Fatal(err)
		}
		want, err := transient.Run(sys, base)
		if err != nil {
			t.Fatal(err)
		}
		gw, ww := lr.Res.W, want.W
		if gw.Len() != ww.Len() {
			t.Fatalf("lane %d: %d points vs serial %d", i, gw.Len(), ww.Len())
		}
		for p := range gw.Times {
			if gw.Times[p] != ww.Times[p] {
				t.Fatalf("lane %d point %d: t=%g vs serial %g", i, p, gw.Times[p], ww.Times[p])
			}
			for j := range gw.Data[p] {
				if gw.Data[p][j] != ww.Data[p][j] {
					t.Fatalf("lane %d point %d signal %s: %g vs serial %g",
						i, p, gw.Names[j], gw.Data[p][j], ww.Data[p][j])
				}
			}
		}
		if lr.Res.Stats.Points != want.Stats.Points ||
			lr.Res.Stats.Solves != want.Stats.Solves ||
			lr.Res.Stats.NRIters != want.Stats.NRIters ||
			lr.Res.Stats.LTERejects != want.Stats.LTERejects {
			t.Fatalf("lane %d counters diverge: %+v vs serial %+v", i, lr.Res.Stats, want.Stats)
		}
	}
	if res.Rounds == 0 {
		t.Fatal("Rounds not counted")
	}
	if res.Stats.CriticalNanos <= 0 {
		t.Fatal("aggregate critical path not measured")
	}
}

// Identical lanes must produce identical waveforms (one shared device set
// evaluated against per-lane state must not cross-contaminate lanes).
func TestIdenticalLanesAgree(t *testing.T) {
	lanes := ladderLanes(4, 16, 0)
	res, err := Run(hostFor(t, lanes), lanes, Options{Base: transient.Options{TStop: 10e-9}})
	if err != nil {
		t.Fatal(err)
	}
	ref := res.Lanes[0].Res.W
	for i, lr := range res.Lanes[1:] {
		if lr.Err != nil {
			t.Fatalf("lane %d failed: %v", i+1, lr.Err)
		}
		w := lr.Res.W
		if w.Len() != ref.Len() {
			t.Fatalf("lane %d: %d points vs lane 0's %d", i+1, w.Len(), ref.Len())
		}
		for p := range w.Times {
			if w.Times[p] != ref.Times[p] || w.Data[p][0] != ref.Data[p][0] {
				t.Fatalf("lane %d diverged from lane 0 at point %d", i+1, p)
			}
		}
	}
}

// A lane whose Newton solves are sabotaged to the recovery floor must
// retire with an error while the remaining lanes run to completion with
// waveforms unaffected by the dead lane.
func TestFaultedLaneRetiresWithoutStallingGang(t *testing.T) {
	const k = 4
	base := transient.Options{TStop: 10e-9}

	lanes := ladderLanes(k, 16, 0.5)
	lanes[1].Faults = faults.NewInjector(faults.Rule{
		Class: faults.NoConvergence,
		After: 1e-12, // spare the operating point
		Count: 1 << 20,
	})
	res, err := Run(hostFor(t, lanes), lanes, Options{Base: base, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Lanes[1].Err == nil {
		t.Fatal("sabotaged lane did not fail")
	}
	if !errors.Is(res.Lanes[1].Err, faults.ErrStepTooSmall) {
		t.Fatalf("lane 1 error = %v, want ErrStepTooSmall", res.Lanes[1].Err)
	}
	if res.Lanes[1].Res == nil {
		t.Fatal("failed lane has no partial result")
	}

	serialLanes := ladderLanes(k, 16, 0.5)
	for _, i := range []int{0, 2, 3} {
		if res.Lanes[i].Err != nil {
			t.Fatalf("healthy lane %d failed: %v", i, res.Lanes[i].Err)
		}
		sys, err := serialLanes[i].Circ.Build()
		if err != nil {
			t.Fatal(err)
		}
		want, err := transient.Run(sys, base)
		if err != nil {
			t.Fatal(err)
		}
		got := res.Lanes[i].Res.W
		if got.Len() != want.W.Len() {
			t.Fatalf("healthy lane %d: %d points vs serial %d", i, got.Len(), want.W.Len())
		}
		last := got.Len() - 1
		if got.Data[last][0] != want.W.Data[last][0] {
			t.Fatalf("healthy lane %d final sample diverged", i)
		}
	}
}

// ForceGang spawns real worker goroutines even on one CPU; under -race
// this exercises the lockstep rounds for data races. The pool must not
// leak goroutines after Run returns.
func TestLockstepGangRace(t *testing.T) {
	before := runtime.NumGoroutine()
	lanes := ladderLanes(6, 12, 0.6)
	res, err := Run(hostFor(t, lanes), lanes, Options{
		Base:      transient.Options{TStop: 8e-9},
		Workers:   3,
		ForceGang: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, lr := range res.Lanes {
		if lr.Err != nil {
			t.Fatalf("lane %d failed: %v", i, lr.Err)
		}
		if v := lr.Res.W.Data[lr.Res.W.Len()-1][0]; math.IsNaN(v) {
			t.Fatalf("lane %d produced NaN", i)
		}
	}
	for deadline := time.Now().Add(2 * time.Second); ; {
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// A structurally different lane circuit must be rejected at bind time.
func TestStructuralMismatchRejected(t *testing.T) {
	lanes := ladderLanes(2, 12, 0)
	lanes[1].Circ = circuits.RCLadder(13)
	_, err := Run(hostFor(t, lanes), lanes, Options{Base: transient.Options{TStop: 1e-9}})
	if err == nil {
		t.Fatal("mismatched lane accepted")
	}
}

// Cancellation retires every active lane with a partial result.
func TestCancellationRetiresLanes(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	base := transient.Options{TStop: 10e-9, Ctx: ctx}
	lanes := ladderLanes(3, 12, 0.3)
	res, err := Run(hostFor(t, lanes), lanes, Options{Base: base})
	if err == nil {
		t.Fatal("canceled run returned nil error")
	}
	if res == nil {
		t.Fatal("canceled run returned no result")
	}
	for i, lr := range res.Lanes {
		if lr.Err == nil {
			t.Fatalf("lane %d not marked canceled", i)
		}
		if lr.Res == nil {
			t.Fatalf("lane %d has no partial result", i)
		}
	}
}

// Unsupported per-lane options must be rejected loudly.
func TestUnsupportedOptionsRejected(t *testing.T) {
	lanes := ladderLanes(1, 8, 0)
	host := hostFor(t, lanes)
	for name, base := range map[string]transient.Options{
		"bypass":    {TStop: 1e-9, BypassTol: 1e-3},
		"devbypass": {TStop: 1e-9, DeviceBypassTol: 1e-3},
		"no-tstop":  {},
	} {
		if _, err := Run(host, lanes, Options{Base: base}); err == nil {
			t.Fatalf("%s options accepted", name)
		}
	}
}

// BenchmarkEnsembleGrid16 guards the steady-state allocation rate of the
// batch engine: allocations are dominated by per-run setup (workspaces,
// arena, waveforms), so allocs/lane must stay bounded as rounds accumulate.
func BenchmarkEnsembleGrid16(b *testing.B) {
	const k = 8
	lanes := make([]Lane, k)
	for i := range lanes {
		c := circuits.PowerGridMesh(16, 1.8)
		for _, d := range c.Devices() {
			if r, ok := d.(*device.Resistor); ok {
				r.SetValue(r.Value() * (1 + 0.05*float64(i)))
			}
		}
		lanes[i] = Lane{Circ: c}
	}
	sys, err := lanes[0].Circ.Build()
	if err != nil {
		b.Fatal(err)
	}
	base := transient.Options{TStop: 20e-9}

	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(sys, lanes, Options{Base: base, Workers: 4}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	runtime.ReadMemStats(&m1)
	b.ReportMetric(float64(m1.Mallocs-m0.Mallocs)/float64(b.N*k), "allocs/lane")
}
