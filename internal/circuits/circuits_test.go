package circuits

import (
	"math"
	"testing"

	"wavepipe/internal/transient"
)

func TestSuiteBuildsAndDescribes(t *testing.T) {
	for _, b := range Suite() {
		st, err := b.Describe()
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if st.Nodes < 4 || st.Devices < 5 || st.Unknowns < st.Nodes {
			t.Fatalf("%s: implausible size %+v", b.Name, st)
		}
		if b.Kind != "analog" && b.Kind != "digital" {
			t.Fatalf("%s: bad kind %q", b.Name, b.Kind)
		}
		// The probe node must exist.
		ckt := b.Make()
		if _, ok := ckt.FindNode(b.Probe); !ok {
			t.Fatalf("%s: probe node %q missing", b.Name, b.Probe)
		}
	}
}

func TestPowerGridDroop(t *testing.T) {
	ckt := PowerGridMesh(8, 1.8)
	sys, err := ckt.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := transient.Run(sys, transient.Options{TStop: 8e-9})
	if err != nil {
		t.Fatal(err)
	}
	sig, err := res.W.Signal("n4_4")
	if err != nil {
		t.Fatal(err)
	}
	minV := math.Inf(1)
	for _, v := range sig {
		minV = math.Min(minV, v)
	}
	// The grid must start at VDD and droop (but not collapse) under load.
	v0 := sig[0]
	if math.Abs(v0-1.8) > 0.05 {
		t.Fatalf("initial grid voltage %g, want ≈1.8", v0)
	}
	if minV >= v0-1e-4 || minV < 1.0 {
		t.Fatalf("droop out of range: min %g from %g", minV, v0)
	}
}

func TestRCLadderDelay(t *testing.T) {
	sys, err := RCLadder(100).Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := transient.Run(sys, transient.Options{TStop: 10e-9})
	if err != nil {
		t.Fatal(err)
	}
	// Far end approaches 1 V near the end of the 4 ns high plateau
	// (Elmore delay ≈ 1 ns for 100 segments), then decays after the fall.
	end, _ := res.W.At("out", 4.9e-9)
	if math.Abs(end-1) > 0.05 {
		t.Fatalf("ladder end = %g, want ≈1", end)
	}
	early, _ := res.W.At("out", 0.6e-9)
	if early > 0.5 {
		t.Fatalf("ladder shows no delay: v(0.6ns) = %g", early)
	}
	late, _ := res.W.At("out", 9.9e-9)
	if late > 0.2 {
		t.Fatalf("ladder did not decay after the pulse: %g", late)
	}
}

func TestRingOscillatorOscillates(t *testing.T) {
	sys, err := RingOscillator(5, 1.8).Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := transient.Run(sys, transient.Options{TStop: 12e-9})
	if err != nil {
		t.Fatal(err)
	}
	sig, err := res.W.Signal("s0")
	if err != nil {
		t.Fatal(err)
	}
	// Count rail-to-rail crossings of mid-supply (period ≈ 2.6 ns: expect
	// ≈9 crossings in 12 ns; require sustained oscillation).
	crossings := 0
	for i := 1; i < len(sig); i++ {
		if (sig[i-1]-0.9)*(sig[i]-0.9) < 0 {
			crossings++
		}
	}
	if crossings < 6 {
		t.Fatalf("ring oscillator not oscillating: %d crossings", crossings)
	}
}

func TestInverterChainInverts(t *testing.T) {
	sys, err := InverterChain(4, 1.8).Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := transient.Run(sys, transient.Options{TStop: 4e-9})
	if err != nil {
		t.Fatal(err)
	}
	// Even number of stages: the output follows the input logically.
	vOutHigh, _ := res.W.At("out", 1.5e-9) // input high plateau
	if vOutHigh < 1.5 {
		t.Fatalf("4-stage chain output during input high = %g, want ≈1.8", vOutHigh)
	}
	vOut0, _ := res.W.At("out", 0.1e-9) // before the pulse, input low
	if vOut0 > 0.3 {
		t.Fatalf("4-stage chain output during input low = %g, want ≈0", vOut0)
	}
}

func TestNANDTreeSwitches(t *testing.T) {
	sys, err := NANDTree(3, 1.8).Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := transient.Run(sys, transient.Options{TStop: 5e-9})
	if err != nil {
		t.Fatal(err)
	}
	sig, err := res.W.Signal("out")
	if err != nil {
		t.Fatal(err)
	}
	minV, maxV := math.Inf(1), math.Inf(-1)
	for _, v := range sig {
		minV = math.Min(minV, v)
		maxV = math.Max(maxV, v)
	}
	if maxV-minV < 1.0 {
		t.Fatalf("NAND tree output swing %g too small", maxV-minV)
	}
}

func TestBridgeRectifierFullWave(t *testing.T) {
	sys, err := BridgeRectifier(1e3).Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := transient.Run(sys, transient.Options{TStop: 3e-3})
	if err != nil {
		t.Fatal(err)
	}
	outp, _ := res.W.Signal("outp")
	outn, _ := res.W.Signal("outn")
	// The differential output must be positive and substantial once charged.
	last := len(outp) - 1
	diff := outp[last] - outn[last]
	if diff < 5 || diff > 10 {
		t.Fatalf("rectified output %g, want ≈8", diff)
	}
}

func TestCSAmplifierGain(t *testing.T) {
	sys, err := CSAmplifier(10e6).Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := transient.Run(sys, transient.Options{TStop: 400e-9})
	if err != nil {
		t.Fatal(err)
	}
	sig, _ := res.W.Signal("out")
	// Skip the settling; measure steady-state swing.
	minV, maxV := math.Inf(1), math.Inf(-1)
	for i := len(sig) / 2; i < len(sig); i++ {
		minV = math.Min(minV, sig[i])
		maxV = math.Max(maxV, sig[i])
	}
	gain := (maxV - minV) / (2 * 0.05)
	if gain < 1.5 {
		t.Fatalf("amplifier gain %g, want > 1.5", gain)
	}
}

func TestRLCTreeRings(t *testing.T) {
	sys, err := RLCTree(5).Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := transient.Run(sys, transient.Options{TStop: 6e-9})
	if err != nil {
		t.Fatal(err)
	}
	sig, _ := res.W.Signal("out")
	maxV := 0.0
	for _, v := range sig {
		maxV = math.Max(maxV, v)
	}
	if maxV < 1.02 {
		t.Fatalf("RLC tree shows no ringing: peak %g", maxV)
	}
}

func TestRingOscillatorEvenStagesFixed(t *testing.T) {
	ckt := RingOscillator(4, 1.8) // even input must be bumped to odd
	if ckt.Title != "ringosc-5" {
		t.Fatalf("even stage count not fixed: %s", ckt.Title)
	}
}

func TestInverterChainEKVSwitches(t *testing.T) {
	sys, err := InverterChainEKV(6, 1.2).Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := transient.Run(sys, transient.Options{TStop: 5e-9})
	if err != nil {
		t.Fatal(err)
	}
	sig, err := res.W.Signal("out")
	if err != nil {
		t.Fatal(err)
	}
	minV, maxV := math.Inf(1), math.Inf(-1)
	for _, v := range sig {
		minV = math.Min(minV, v)
		maxV = math.Max(maxV, v)
	}
	if maxV-minV < 0.9 {
		t.Fatalf("EKV chain output swing %g too small", maxV-minV)
	}
}

func TestECLChainTogglesAndIterates(t *testing.T) {
	sys, err := ECLChain(4).Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := transient.Run(sys, transient.Options{TStop: 20e-9})
	if err != nil {
		t.Fatal(err)
	}
	sig, err := res.W.Signal("out")
	if err != nil {
		t.Fatal(err)
	}
	minV, maxV := math.Inf(1), math.Inf(-1)
	for _, v := range sig {
		minV = math.Min(minV, v)
		maxV = math.Max(maxV, v)
	}
	if maxV-minV < 0.4 {
		t.Fatalf("ECL output swing %g too small", maxV-minV)
	}
	// The junction-limited BJTs must cost visibly more Newton iterations
	// per solve than the Level-1 chain — that is the circuit's role in the
	// forward-pipelining experiment.
	iters := float64(res.Stats.NRIters) / float64(res.Stats.Solves)
	if iters < 2.1 {
		t.Fatalf("ECL iters/solve = %.2f, want > 2.1", iters)
	}
}

func TestPeriod(t *testing.T) {
	if Period(1e3) != 1e-3 {
		t.Fatal("Period")
	}
}
