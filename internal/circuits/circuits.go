// Package circuits generates the parameterized benchmark circuits used by
// the evaluation: the synthetic equivalents of the analog and digital IC
// testcases the WavePipe paper reports on (power-distribution meshes,
// interconnect lines and trees, rectifiers, amplifiers, CMOS ring
// oscillators and logic chains). Every generator returns an un-built
// Circuit so callers can add probes before Build.
package circuits

import (
	"fmt"

	"wavepipe/internal/circuit"
	"wavepipe/internal/device"
)

// PowerGridMesh builds an n×n RC mesh: every node has a resistor to its
// right and lower neighbour, a decoupling capacitor to ground, and the four
// corners tie to VDD through package resistors. A grid of pulsed current
// sinks models switching logic blocks drawing current from the grid — the
// classic power-integrity transient workload.
func PowerGridMesh(n int, vdd float64) *circuit.Circuit {
	ckt := circuit.New(fmt.Sprintf("powergrid-%dx%d", n, n))
	name := func(i, j int) string { return fmt.Sprintf("n%d_%d", i, j) }
	supply := ckt.Node("vdd")
	ckt.Add(device.NewVSource("VDD", supply, circuit.Ground, device.DC(vdd)))
	rSeg := 0.5    // mesh segment resistance
	cNode := 1e-12 // per-node decap
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			nd := ckt.Node(name(i, j))
			ckt.Add(device.NewCapacitor(fmt.Sprintf("C%d_%d", i, j), nd, circuit.Ground, cNode))
			if j+1 < n {
				ckt.Add(device.NewResistor(fmt.Sprintf("Rh%d_%d", i, j), nd, ckt.Node(name(i, j+1)), rSeg))
			}
			if i+1 < n {
				ckt.Add(device.NewResistor(fmt.Sprintf("Rv%d_%d", i, j), nd, ckt.Node(name(i+1, j)), rSeg))
			}
		}
	}
	for k, corner := range []string{name(0, 0), name(0, n-1), name(n-1, 0), name(n-1, n-1)} {
		nd, _ := ckt.FindNode(corner)
		ckt.Add(device.NewResistor(fmt.Sprintf("Rpkg%d", k), supply, nd, 0.05))
	}
	// Switching current sinks on a sparse sub-grid. All sinks share one
	// clock phase (one breakpoint set): the interesting transient content
	// is the grid's multi-time-constant recovery between switching events,
	// which is the LTE-limited tracking regime the paper's circuits live in.
	stride := n / 4
	if stride < 1 {
		stride = 1
	}
	k := 0
	for i := stride / 2; i < n; i += stride {
		for j := stride / 2; j < n; j += stride {
			nd, _ := ckt.FindNode(name(i, j))
			ckt.Add(device.NewISource(fmt.Sprintf("Isw%d", k), nd, circuit.Ground, device.Pulse{
				V1: 0, V2: 5e-3, Delay: 1e-9,
				Rise: 0.5e-9, Fall: 0.5e-9, Width: 2e-9, Period: 8e-9,
			}))
			k++
		}
	}
	return ckt
}

// RCLadder builds an N-segment RC transmission-line model driven by a ramp
// source — the standard on-chip interconnect delay workload.
func RCLadder(segments int) *circuit.Circuit {
	ckt := circuit.New(fmt.Sprintf("rcladder-%d", segments))
	in := ckt.Node("in")
	ckt.Add(device.NewVSource("Vin", in, circuit.Ground, device.Pulse{
		V1: 0, V2: 1, Delay: 0.5e-9, Rise: 0.5e-9, Fall: 0.5e-9, Width: 4e-9, Period: 10e-9,
	}))
	prev := in
	for i := 1; i <= segments; i++ {
		nd := ckt.Node(fmt.Sprintf("n%d", i))
		ckt.Add(device.NewResistor(fmt.Sprintf("R%d", i), prev, nd, 10))
		ckt.Add(device.NewCapacitor(fmt.Sprintf("C%d", i), nd, circuit.Ground, 20e-15))
		prev = nd
	}
	// The far end is the observation node "out".
	out := ckt.Node("out")
	ckt.Add(device.NewResistor("Rout", prev, out, 10))
	ckt.Add(device.NewCapacitor("Cout", out, circuit.Ground, 50e-15))
	return ckt
}

// RLCTree builds a depth-level binary RLC clock-tree with matched segments,
// driven by a pulsed source at the root. Inductance makes the response
// ringy — a stiff oscillatory workload.
func RLCTree(depth int) *circuit.Circuit {
	ckt := circuit.New(fmt.Sprintf("rlctree-depth%d", depth))
	root := ckt.Node("in")
	ckt.Add(device.NewVSource("Vin", root, circuit.Ground, device.Pulse{
		V1: 0, V2: 1, Delay: 0.3e-9, Rise: 0.2e-9, Fall: 0.2e-9, Width: 1.8e-9, Period: 4e-9,
	}))
	k := 0
	var grow func(parent int, level int)
	grow = func(parent int, level int) {
		if level > depth {
			return
		}
		for b := 0; b < 2; b++ {
			k++
			mid := ckt.Node(fmt.Sprintf("m%d", k))
			leaf := ckt.Node(fmt.Sprintf("t%d", k))
			ckt.Add(device.NewResistor(fmt.Sprintf("R%d", k), parent, mid, 5))
			ckt.Add(device.NewInductor(fmt.Sprintf("L%d", k), mid, leaf, 0.5e-9))
			ckt.Add(device.NewCapacitor(fmt.Sprintf("C%d", k), leaf, circuit.Ground, 10e-15))
			grow(leaf, level+1)
		}
	}
	grow(root, 1)
	// Name one deepest leaf "out" for probing.
	out := ckt.Node("out")
	last, _ := ckt.FindNode(fmt.Sprintf("t%d", k))
	ckt.Add(device.NewResistor("Rprobe", last, out, 1))
	ckt.Add(device.NewCapacitor("Cprobe", out, circuit.Ground, 5e-15))
	return ckt
}

// mosLib returns the NMOS/PMOS model pair used by the CMOS generators.
func mosLib() (device.MOSModel, device.MOSModel) {
	nm := device.DefaultMOSModel(device.NMOS)
	pm := device.DefaultMOSModel(device.PMOS)
	pm.KP = 45e-6 // hole mobility
	return nm, pm
}

// addInverter wires a CMOS inverter (PMOS to vdd, NMOS to gnd) plus an
// output load capacitor, returning nothing; nodes are passed in.
func addInverter(ckt *circuit.Circuit, tag string, vdd, in, out int, load float64) {
	nm, pm := mosLib()
	ckt.Add(device.NewMOSFET("MP"+tag, out, in, vdd, vdd, pm, 2e-6, 0.5e-6))
	ckt.Add(device.NewMOSFET("MN"+tag, out, in, circuit.Ground, circuit.Ground, nm, 1e-6, 0.5e-6))
	ckt.Add(device.NewCapacitor("CL"+tag, out, circuit.Ground, load))
}

// RingOscillator builds a CMOS ring oscillator with the given odd number of
// stages. A small current kick at stage 0 breaks the metastable operating
// point so oscillation starts deterministically. Output node: "s0".
func RingOscillator(stages int, vdd float64) *circuit.Circuit {
	if stages%2 == 0 {
		stages++
	}
	ckt := circuit.New(fmt.Sprintf("ringosc-%d", stages))
	supply := ckt.Node("vdd")
	ckt.Add(device.NewVSource("VDD", supply, circuit.Ground, device.DC(vdd)))
	nodes := make([]int, stages)
	for i := range nodes {
		nodes[i] = ckt.Node(fmt.Sprintf("s%d", i))
	}
	for i := 0; i < stages; i++ {
		addInverter(ckt, fmt.Sprintf("%d", i), supply, nodes[i], nodes[(i+1)%stages], 5e-15)
	}
	ckt.Add(device.NewISource("Ikick", nodes[0], circuit.Ground, device.Pulse{
		V1: 0, V2: 50e-6, Delay: 0.05e-9, Rise: 0.05e-9, Width: 0.3e-9,
	}))
	return ckt
}

// InverterChain builds a pulsed driver feeding a chain of CMOS inverters —
// the canonical digital switching workload. Output node: "out".
func InverterChain(stages int, vdd float64) *circuit.Circuit {
	ckt := circuit.New(fmt.Sprintf("invchain-%d", stages))
	supply := ckt.Node("vdd")
	ckt.Add(device.NewVSource("VDD", supply, circuit.Ground, device.DC(vdd)))
	in := ckt.Node("in")
	ckt.Add(device.NewVSource("Vin", in, circuit.Ground, device.Pulse{
		V1: 0, V2: vdd, Delay: 0.2e-9, Rise: 0.1e-9, Fall: 0.1e-9, Width: 2e-9, Period: 5e-9,
	}))
	prev := in
	for i := 1; i <= stages; i++ {
		var out int
		if i == stages {
			out = ckt.Node("out")
		} else {
			out = ckt.Node(fmt.Sprintf("c%d", i))
		}
		addInverter(ckt, fmt.Sprintf("%d", i), supply, prev, out, 8e-15)
		prev = out
	}
	return ckt
}

// InverterChainEKV is InverterChain built from EKV-model devices: the
// smooth exponential model needs visibly more Newton iterations per time
// point than Level-1 — the regime (BSIM-class models in the paper) where
// forward pipelining's speculative overlap pays. Output node: "out".
func InverterChainEKV(stages int, vdd float64) *circuit.Circuit {
	ckt := circuit.New(fmt.Sprintf("invchain-ekv-%d", stages))
	supply := ckt.Node("vdd")
	ckt.Add(device.NewVSource("VDD", supply, circuit.Ground, device.DC(vdd)))
	in := ckt.Node("in")
	ckt.Add(device.NewVSource("Vin", in, circuit.Ground, device.Pulse{
		V1: 0, V2: vdd, Delay: 0.2e-9, Rise: 0.1e-9, Fall: 0.1e-9, Width: 2e-9, Period: 5e-9,
	}))
	nm := device.DefaultEKVModel(device.NMOS)
	pm := device.DefaultEKVModel(device.PMOS)
	pm.KP = 45e-6
	prev := in
	for i := 1; i <= stages; i++ {
		var out int
		if i == stages {
			out = ckt.Node("out")
		} else {
			out = ckt.Node(fmt.Sprintf("c%d", i))
		}
		tag := fmt.Sprintf("%d", i)
		ckt.Add(device.NewMOSFETEKV("MP"+tag, out, prev, supply, supply, pm, 2e-6, 0.5e-6))
		ckt.Add(device.NewMOSFETEKV("MN"+tag, out, prev, circuit.Ground, circuit.Ground, nm, 1e-6, 0.5e-6))
		ckt.Add(device.NewCapacitor("CL"+tag, out, circuit.Ground, 8e-15))
		prev = out
	}
	return ckt
}

// NANDTree builds `levels` levels of two-input CMOS NAND gates reducing 2^levels
// pulsed inputs to one output ("out") — a wider digital workload with
// reconvergent switching.
func NANDTree(levels int, vdd float64) *circuit.Circuit {
	ckt := circuit.New(fmt.Sprintf("nandtree-%d", levels))
	supply := ckt.Node("vdd")
	ckt.Add(device.NewVSource("VDD", supply, circuit.Ground, device.DC(vdd)))
	nm, pm := mosLib()
	gate := 0
	nand := func(a, b, y int) {
		g := fmt.Sprintf("g%d", gate)
		gate++
		mid := ckt.Node("x" + g)
		// Pull-down stack.
		ckt.Add(device.NewMOSFET("MNA"+g, y, a, mid, circuit.Ground, nm, 2e-6, 0.5e-6))
		ckt.Add(device.NewMOSFET("MNB"+g, mid, b, circuit.Ground, circuit.Ground, nm, 2e-6, 0.5e-6))
		// Parallel pull-ups.
		ckt.Add(device.NewMOSFET("MPA"+g, y, a, supply, supply, pm, 3e-6, 0.5e-6))
		ckt.Add(device.NewMOSFET("MPB"+g, y, b, supply, supply, pm, 3e-6, 0.5e-6))
		ckt.Add(device.NewCapacitor("CL"+g, y, circuit.Ground, 6e-15))
	}
	// Pulsed primary inputs with staggered phases.
	inputs := make([]int, 1<<levels)
	for i := range inputs {
		inputs[i] = ckt.Node(fmt.Sprintf("in%d", i))
		phase := 0.0
		if i%2 == 1 {
			phase = 2e-9 // odd inputs toggle half a period later
		}
		ckt.Add(device.NewVSource(fmt.Sprintf("Vin%d", i), inputs[i], circuit.Ground, device.Pulse{
			V1: vdd, V2: 0, Delay: 0.2e-9 + phase,
			Rise: 0.1e-9, Fall: 0.1e-9, Width: 1.5e-9, Period: 4e-9,
		}))
	}
	level := inputs
	for len(level) > 1 {
		next := make([]int, len(level)/2)
		for i := range next {
			var y int
			if len(level) == 2 {
				y = ckt.Node("out")
			} else {
				y = ckt.Node(fmt.Sprintf("l%d_%d", len(level), i))
			}
			nand(level[2*i], level[2*i+1], y)
			next[i] = y
		}
		level = next
	}
	return ckt
}

// ECLChain builds a chain of emitter-coupled-logic buffers: each stage is a
// BJT differential pair with an emitter-follower output. The pn-junction
// limiting of the six transistor junctions per stage makes every time point
// cost noticeably more Newton iterations than the MOS circuits — the
// iteration-rich regime (BSIM-class models in the paper) where forward
// pipelining's speculative overlap pays. Output node: "out".
func ECLChain(stages int) *circuit.Circuit {
	ckt := circuit.New(fmt.Sprintf("ecl-%d", stages))
	vee := ckt.Node("vee")
	vref := ckt.Node("vref")
	ckt.Add(device.NewVSource("VEE", vee, circuit.Ground, device.DC(-5.2)))
	ckt.Add(device.NewVSource("VREF", vref, circuit.Ground, device.DC(-1.3)))
	in := ckt.Node("in")
	ckt.Add(device.NewVSource("Vin", in, circuit.Ground, device.Pulse{
		V1: -1.7, V2: -0.9, Delay: 0.5e-9, Rise: 0.3e-9, Fall: 0.3e-9, Width: 3.5e-9, Period: 8e-9,
	}))
	qm := DefaultECLBJT()
	prev := in
	for i := 1; i <= stages; i++ {
		tag := fmt.Sprintf("%d", i)
		c2 := ckt.Node("c2_" + tag)
		e := ckt.Node("e_" + tag)
		var out int
		if i == stages {
			out = ckt.Node("out")
		} else {
			out = ckt.Node("o" + tag)
		}
		// Differential pair: Q1 steered by the input, Q2 by the reference;
		// only Q2's collector drives the follower (non-inverting buffer).
		c1 := ckt.Node("c1_" + tag)
		ckt.Add(device.NewBJT("Q1"+tag, c1, prev, e, qm, 1))
		ckt.Add(device.NewBJT("Q2"+tag, c2, vref, e, qm, 1))
		ckt.Add(device.NewResistor("RC1"+tag, circuit.Ground, c1, 220))
		ckt.Add(device.NewResistor("RC2"+tag, circuit.Ground, c2, 220))
		ckt.Add(device.NewResistor("RT"+tag, e, vee, 780))
		// Emitter follower level shifter.
		ckt.Add(device.NewBJT("QF"+tag, circuit.Ground, c2, out, qm, 1))
		ckt.Add(device.NewResistor("RF"+tag, out, vee, 2e3))
		ckt.Add(device.NewCapacitor("CL"+tag, out, circuit.Ground, 50e-15))
		prev = out
	}
	return ckt
}

// DefaultECLBJT returns the switching BJT card the ECL chain uses.
func DefaultECLBJT() device.BJTModel {
	m := device.DefaultBJTModel(device.NPN)
	m.IS = 1e-16
	m.BF = 100
	m.TF = 0.1e-9
	m.CJE = 0.5e-12
	m.CJC = 0.3e-12
	m.VAF = 60
	return m
}

// BridgeRectifier builds a full-wave diode bridge with an RC smoothing load
// driven by a sine source — the analog rectification workload. Output nodes
// "outp"/"outn"; probe the differential via "outp".
func BridgeRectifier(freq float64) *circuit.Circuit {
	ckt := circuit.New("bridge-rectifier")
	acp := ckt.Node("acp")
	acn := ckt.Node("acn")
	outp := ckt.Node("outp")
	outn := ckt.Node("outn")
	ckt.Add(device.NewVSource("Vac", acp, acn, device.Sin{Amplitude: 10, Freq: freq}))
	// Reference the floating secondary to ground.
	ckt.Add(device.NewResistor("Rref", acn, circuit.Ground, 1e6))
	m := device.DiodeModel{IS: 1e-12, N: 1.05, TT: 10e-9, CJ0: 10e-12, VJ: 0.8, M: 0.45}
	ckt.Add(device.NewDiode("D1", acp, outp, m, 1))
	ckt.Add(device.NewDiode("D2", acn, outp, m, 1))
	ckt.Add(device.NewDiode("D3", outn, acp, m, 1))
	ckt.Add(device.NewDiode("D4", outn, acn, m, 1))
	ckt.Add(device.NewCapacitor("Cf", outp, outn, 2e-6))
	ckt.Add(device.NewResistor("RL", outp, outn, 2e3))
	ckt.Add(device.NewResistor("Rgnd", outn, circuit.Ground, 10))
	return ckt
}

// CSAmplifier builds a resistively loaded common-source NMOS amplifier with
// source degeneration, driven by a small sine on top of a bias — the
// small-signal analog workload. Output node: "out".
func CSAmplifier(freq float64) *circuit.Circuit {
	ckt := circuit.New("cs-amplifier")
	supply := ckt.Node("vdd")
	ckt.Add(device.NewVSource("VDD", supply, circuit.Ground, device.DC(3.3)))
	in := ckt.Node("in")
	ckt.Add(device.NewVSource("Vin", in, circuit.Ground, device.Sin{
		Offset: 1.2, Amplitude: 0.05, Freq: freq,
	}))
	gate := ckt.Node("gate")
	out := ckt.Node("out")
	src := ckt.Node("src")
	nm, _ := mosLib()
	ckt.Add(device.NewResistor("Rg", in, gate, 1e3))
	ckt.Add(device.NewCapacitor("Cg", gate, circuit.Ground, 1e-13))
	ckt.Add(device.NewMOSFET("M1", out, gate, src, circuit.Ground, nm, 20e-6, 1e-6))
	ckt.Add(device.NewResistor("Rd", supply, out, 10e3))
	ckt.Add(device.NewResistor("Rs", src, circuit.Ground, 1e3))
	ckt.Add(device.NewCapacitor("Cs", src, circuit.Ground, 1e-12))
	ckt.Add(device.NewCapacitor("CLoad", out, circuit.Ground, 2e-13))
	return ckt
}

// Benchmark describes one evaluation circuit: its generator plus the
// transient window and probe node the experiments use.
type Benchmark struct {
	Name  string
	Kind  string // "analog" or "digital"
	Make  func() *circuit.Circuit
	TStop float64
	Probe string // node to compare/plot
}

// Suite returns the benchmark set used by the tables (Table 1 defines it).
// Sizes are chosen so the serial runtimes sit in the tens-of-milliseconds
// to seconds range on a laptop, matching the paper's relative regime.
func Suite() []Benchmark {
	return []Benchmark{
		{Name: "grid16", Kind: "analog", Make: func() *circuit.Circuit { return PowerGridMesh(16, 1.8) }, TStop: 80e-9, Probe: "n8_8"},
		{Name: "grid24", Kind: "analog", Make: func() *circuit.Circuit { return PowerGridMesh(24, 1.8) }, TStop: 80e-9, Probe: "n12_12"},
		{Name: "grid32", Kind: "analog", Make: func() *circuit.Circuit { return PowerGridMesh(32, 1.8) }, TStop: 80e-9, Probe: "n16_16"},
		{Name: "ladder400", Kind: "analog", Make: func() *circuit.Circuit { return RCLadder(400) }, TStop: 100e-9, Probe: "out"},
		{Name: "rlctree8", Kind: "analog", Make: func() *circuit.Circuit { return RLCTree(8) }, TStop: 40e-9, Probe: "out"},
		{Name: "rect1k", Kind: "analog", Make: func() *circuit.Circuit { return BridgeRectifier(1e3) }, TStop: 6e-3, Probe: "outp"},
		{Name: "amp10M", Kind: "analog", Make: func() *circuit.Circuit { return CSAmplifier(10e6) }, TStop: 2e-6, Probe: "out"},
		{Name: "ring9", Kind: "digital", Make: func() *circuit.Circuit { return RingOscillator(9, 1.8) }, TStop: 20e-9, Probe: "s0"},
		{Name: "inv50", Kind: "digital", Make: func() *circuit.Circuit { return InverterChain(50, 1.8) }, TStop: 25e-9, Probe: "out"},
		{Name: "nand5", Kind: "digital", Make: func() *circuit.Circuit { return NANDTree(5, 1.8) }, TStop: 16e-9, Probe: "out"},
		{Name: "ekv30", Kind: "digital", Make: func() *circuit.Circuit { return InverterChainEKV(30, 1.2) }, TStop: 25e-9, Probe: "out"},
		{Name: "ecl8", Kind: "digital", Make: func() *circuit.Circuit { return ECLChain(8) }, TStop: 32e-9, Probe: "out"},
	}
}

// Stats summarizes a generated circuit for Table 1.
type Stats struct {
	Nodes    int
	Devices  int
	Unknowns int
}

// Describe builds the circuit and reports its size.
func (b Benchmark) Describe() (Stats, error) {
	ckt := b.Make()
	sys, err := ckt.Build()
	if err != nil {
		return Stats{}, err
	}
	return Stats{Nodes: sys.NumNodes, Devices: len(ckt.Devices()), Unknowns: sys.N}, nil
}

// Period returns the fundamental drive period of a frequency, for window
// sizing in examples.
func Period(freq float64) float64 { return 1 / freq }
