package newton

import (
	"fmt"

	"wavepipe/internal/circuit"
	"wavepipe/internal/faults"
	"wavepipe/internal/num"
)

// Lockstep support: the ensemble engine batches the device-load phase of
// one Newton iteration across K lanes (circuit.BatchLoad) and then runs the
// per-lane remainder of the iteration through StepLoaded. The split only
// exists for workspaces with every bypass path disabled (BypassTol = 0, no
// device bypass): that collapses Solve's body to a single sequence whose
// per-lane floating-point operations StepLoaded reproduces exactly, so a
// lane's lockstep iterate is bit-identical to its own serial Solve.

// DefaultMaxIter is the iteration limit Solve applies when Options.MaxIter
// is unset.
const DefaultMaxIter = 50

// EntryFault replicates Solve's entry fault-injection check: the error it
// returns (nil in production, where ws.Faults is nil) is what Solve would
// have failed with before its first iteration.
func EntryFault(ws *circuit.Workspace, t float64) error {
	if cls, ok := ws.Faults.At(faults.SiteNewton, t); ok && cls == faults.NoConvergence {
		return faults.Wrap("newton", t, -1, fmt.Errorf("%w (injected)", ErrNoConvergence))
	}
	return nil
}

// NoConvergenceErr is the error Solve reports when the iteration budget is
// exhausted; the lockstep driver raises it itself because it owns the loop.
func NoConvergenceErr(t float64, maxIter int) error {
	return faults.Wrap("newton", t, -1,
		fmt.Errorf("%w after %d iterations", ErrNoConvergence, maxIter))
}

// StepLoaded runs the post-assembly remainder of Newton iteration iter —
// residual, factorize + solve, damped update, limiting-state flip and the
// convergence test — on a workspace whose Load at x (with p.FirstIter set
// for this iteration) was already performed by the caller's batched
// assembly. It mirrors Solve's loop body with factorization bypass
// structurally absent; using it on a workspace with BypassTol > 0 or device
// bypass enabled is a programming error. done reports convergence; a
// non-nil err is terminal for this point.
func StepLoaded(ws *circuit.Workspace, x []float64, p circuit.LoadParams, qhist []float64, opts Options, r, dx []float64, iter int) (done bool, err error) {
	if err := ws.Abort.Err(); err != nil {
		return false, faults.Wrap("newton", p.Time, -1, err)
	}
	limited := ws.Limited
	ws.Residual(p.Alpha0, qhist, r)
	if err := factorAndSolve(ws, p.Time, r, dx, false); err != nil {
		return false, faults.Wrap("newton", p.Time, -1, fmt.Errorf("iteration %d: %w", iter, err))
	}
	maxRatio := applyUpdate(x, dx, opts)
	ws.FlipState()
	if i := num.NonFiniteIndex(x); i >= 0 {
		return false, faults.Wrap("newton", p.Time, i,
			fmt.Errorf("%w in iterate after %d iterations", faults.ErrNonFinite, iter+1))
	}
	if maxRatio <= 1 && !limited {
		if opts.ResidualTol > 0 {
			// Rare certification path: the residual must come from a fresh
			// assembly at the candidate iterate. This lane falls out of the
			// batched cadence for one serial load, exactly as Solve does.
			ws.Load(x, p)
			ws.Residual(p.Alpha0, qhist, r)
			if num.MaxAbs(r) > opts.ResidualTol {
				return false, nil
			}
		}
		return true, nil
	}
	return false, nil
}
