package newton

import (
	"errors"
	"math"
	"testing"

	"wavepipe/internal/circuit"
	"wavepipe/internal/device"
	"wavepipe/internal/num"
)

func build(t *testing.T, add func(*circuit.Circuit)) *circuit.Workspace {
	t.Helper()
	c := circuit.New("t")
	add(c)
	sys, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	return sys.NewWorkspace()
}

func TestLinearConvergesInTwoIterations(t *testing.T) {
	ws := build(t, func(c *circuit.Circuit) {
		in := c.Node("in")
		mid := c.Node("mid")
		c.Add(device.NewVSource("V1", in, circuit.Ground, device.DC(6)))
		c.Add(device.NewResistor("R1", in, mid, 1e3))
		c.Add(device.NewResistor("R2", mid, circuit.Ground, 2e3))
	})
	x := make([]float64, ws.Sys.N)
	r := make([]float64, ws.Sys.N)
	dx := make([]float64, ws.Sys.N)
	opts := DefaultOptions()
	opts.Damping = 0 // the 6 V jump would otherwise be clamped over 2 iters
	res, err := Solve(ws, x, circuit.LoadParams{SrcScale: 1}, nil, opts, r, dx)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Iters > 2 {
		t.Fatalf("result %+v", res)
	}
	if math.Abs(x[1]-4) > 1e-9 {
		t.Fatalf("v(mid) = %g, want 4", x[1])
	}
}

func TestWarmStartConvergesInOneIteration(t *testing.T) {
	ws := build(t, func(c *circuit.Circuit) {
		in := c.Node("in")
		c.Add(device.NewVSource("V1", in, circuit.Ground, device.DC(2)))
		c.Add(device.NewResistor("R1", in, circuit.Ground, 1e3))
	})
	// Exact solution as the starting iterate: one confirming iteration.
	x := []float64{2, -2e-3}
	r := make([]float64, 2)
	dx := make([]float64, 2)
	res, err := Solve(ws, x, circuit.LoadParams{SrcScale: 1}, nil, DefaultOptions(), r, dx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters != 1 {
		t.Fatalf("warm start took %d iterations", res.Iters)
	}
}

func TestNonlinearDiodeConvergence(t *testing.T) {
	ws := build(t, func(c *circuit.Circuit) {
		in := c.Node("in")
		a := c.Node("a")
		c.Add(device.NewVSource("V1", in, circuit.Ground, device.DC(5)))
		c.Add(device.NewResistor("R1", in, a, 1e3))
		c.Add(device.NewDiode("D1", a, circuit.Ground, device.DefaultDiodeModel(), 1))
	})
	x := make([]float64, ws.Sys.N)
	r := make([]float64, ws.Sys.N)
	dx := make([]float64, ws.Sys.N)
	res, err := Solve(ws, x, circuit.LoadParams{SrcScale: 1, Gmin: 1e-12}, nil, DefaultOptions(), r, dx)
	if err != nil {
		t.Fatal(err)
	}
	// Diode drop ≈ 0.65–0.75 V with ≈4.3 mA through 1 kΩ.
	if x[1] < 0.6 || x[1] > 0.8 {
		t.Fatalf("diode voltage = %g", x[1])
	}
	// KVL: the solved point must satisfy the full circuit equation.
	if math.Abs((5-x[1])/1e3-1e-14*(math.Exp(x[1]/device.VThermal)-1)) > 1e-6 {
		t.Fatalf("current mismatch at v=%g", x[1])
	}
	if res.Iters < 3 {
		t.Fatalf("suspiciously fast for an exponential: %d iters", res.Iters)
	}
}

func TestIterationLimit(t *testing.T) {
	ws := build(t, func(c *circuit.Circuit) {
		in := c.Node("in")
		a := c.Node("a")
		c.Add(device.NewVSource("V1", in, circuit.Ground, device.DC(5)))
		c.Add(device.NewResistor("R1", in, a, 1))
		c.Add(device.NewDiode("D1", a, circuit.Ground, device.DefaultDiodeModel(), 1))
	})
	x := make([]float64, ws.Sys.N)
	r := make([]float64, ws.Sys.N)
	dx := make([]float64, ws.Sys.N)
	opts := DefaultOptions()
	opts.MaxIter = 2 // hopeless for a hard diode
	_, err := Solve(ws, x, circuit.LoadParams{SrcScale: 1, Gmin: 1e-12}, nil, opts, r, dx)
	if !errors.Is(err, ErrNoConvergence) {
		t.Fatalf("err = %v, want ErrNoConvergence", err)
	}
}

func TestSingularMatrixError(t *testing.T) {
	ws := build(t, func(c *circuit.Circuit) {
		a := c.Node("a")
		// Current source into a node with only a capacitor: DC-singular.
		c.Add(device.NewISource("I1", circuit.Ground, a, device.DC(1e-3)))
		c.Add(device.NewCapacitor("C1", a, circuit.Ground, 1e-9))
	})
	x := make([]float64, ws.Sys.N)
	r := make([]float64, ws.Sys.N)
	dx := make([]float64, ws.Sys.N)
	if _, err := Solve(ws, x, circuit.LoadParams{SrcScale: 1}, nil, DefaultOptions(), r, dx); err == nil {
		t.Fatal("singular DC system must fail")
	}
}

func TestDampingLimitsUpdates(t *testing.T) {
	ws := build(t, func(c *circuit.Circuit) {
		in := c.Node("in")
		c.Add(device.NewVSource("V1", in, circuit.Ground, device.DC(100)))
		c.Add(device.NewResistor("R1", in, circuit.Ground, 1))
	})
	x := make([]float64, ws.Sys.N)
	r := make([]float64, ws.Sys.N)
	dx := make([]float64, ws.Sys.N)
	opts := DefaultOptions()
	opts.Damping = 1 // at most 1 V/A per component per iteration
	opts.MaxIter = 500
	res, err := Solve(ws, x, circuit.LoadParams{SrcScale: 1}, nil, opts, r, dx)
	if err != nil {
		t.Fatal(err)
	}
	// 100 V target at 1 V per iteration: needs ≈100 clamped updates.
	if res.Iters < 100 {
		t.Fatalf("damping not applied: %d iters", res.Iters)
	}
	if math.Abs(x[0]-100) > 1e-6 {
		t.Fatalf("v = %g", x[0])
	}
}

func TestResidualCheckOption(t *testing.T) {
	ws := build(t, func(c *circuit.Circuit) {
		in := c.Node("in")
		c.Add(device.NewVSource("V1", in, circuit.Ground, device.DC(1)))
		c.Add(device.NewResistor("R1", in, circuit.Ground, 1e3))
	})
	x := make([]float64, ws.Sys.N)
	r := make([]float64, ws.Sys.N)
	dx := make([]float64, ws.Sys.N)
	opts := DefaultOptions()
	opts.ResidualTol = 1e-9
	res, err := Solve(ws, x, circuit.LoadParams{SrcScale: 1}, nil, opts, r, dx)
	if err != nil || !res.Converged {
		t.Fatalf("res=%+v err=%v", res, err)
	}
}

func TestQhistEntersResidual(t *testing.T) {
	// A capacitor integrated with Alpha0 and a qhist vector reproduces the
	// backward-Euler update of an RC discharge step by step.
	ws := build(t, func(c *circuit.Circuit) {
		a := c.Node("a")
		c.Add(device.NewResistor("R1", a, circuit.Ground, 1e3))
		c.Add(device.NewCapacitor("C1", a, circuit.Ground, 1e-6))
	})
	v0 := 2.0
	h := 1e-4
	alpha0 := 1 / h
	qhist := []float64{-v0 * 1e-6 / h} // −q(t0)/h
	x := []float64{v0}
	r := make([]float64, 1)
	dx := make([]float64, 1)
	_, err := Solve(ws, x, circuit.LoadParams{Alpha0: alpha0, SrcScale: 1}, qhist, DefaultOptions(), r, dx)
	if err != nil {
		t.Fatal(err)
	}
	// BE: v1 = v0/(1 + h/RC) = 2/(1.1).
	want := v0 / (1 + h/(1e3*1e-6))
	if !num.EqualWithin(x[0], want, 1e-9) {
		t.Fatalf("v1 = %g, want %g", x[0], want)
	}
}
