// Package newton implements the damped Newton–Raphson loop used by the DC
// operating-point and transient engines. One call solves the assembled
// circuit equations F(x) + Alpha0·Q(x) + qhist − B(t) = 0 at a single time
// point, reusing the workspace's sparse factorization across iterations.
package newton

import (
	"fmt"
	"math"
	"time"

	"wavepipe/internal/circuit"
	"wavepipe/internal/faults"
	"wavepipe/internal/num"
	"wavepipe/internal/trace"
)

// ErrNoConvergence is wrapped by Solve when the iteration limit is reached.
// It aliases the shared taxonomy sentinel so callers can branch through
// either name with errors.Is.
var ErrNoConvergence = faults.ErrNoConvergence

// Options controls the Newton iteration.
type Options struct {
	MaxIter int            // iteration limit (default 50)
	Tol     num.Tolerances // per-unknown update tolerance
	// Damping clamps each solution update component to ±Damping
	// (0 disables). Useful for MOS circuits without junction limiting.
	Damping float64
	// ResidualCheck additionally requires the weighted residual norm to
	// drop below ResidualTol (skipped when 0).
	ResidualTol float64
}

// DefaultOptions returns the options used across the repository.
func DefaultOptions() Options {
	return Options{MaxIter: 50, Tol: num.DefaultTolerances(), Damping: 5}
}

// Result reports what one Newton solve did.
type Result struct {
	Iters     int
	Converged bool
}

// Solve runs Newton–Raphson on workspace ws starting from (and updating) x.
// p carries the assembly parameters (time, Alpha0, gmin, source scale);
// qhist is the integration history vector (nil for DC). Scratch vectors r
// and dx must have length ws.Sys.N and are overwritten.
//
// On success x holds the converged solution and ws.F/Q/B the assembly at a
// point no further than one converged update from x (the standard SPICE
// convention: the last Load happened at the previous iterate).
func Solve(ws *circuit.Workspace, x []float64, p circuit.LoadParams, qhist []float64, opts Options, r, dx []float64) (Result, error) {
	if opts.MaxIter <= 0 {
		opts.MaxIter = 50
	}
	res := Result{}
	if cls, ok := ws.Faults.At(faults.SiteNewton, p.Time); ok && cls == faults.NoConvergence {
		return res, faults.Wrap("newton", p.Time, -1, fmt.Errorf("%w (injected)", ErrNoConvergence))
	}
	// forceFresh suppresses factorization bypass for one iteration: set after
	// a bypassed (stale-LU, quasi-Newton) step failed the convergence test,
	// so a wildly off LU cannot stall the whole iteration budget.
	forceFresh := false
	for iter := 0; iter < opts.MaxIter; iter++ {
		// Cooperative abort: a tripped deadline or watchdog interrupts even
		// a hung iteration at the next iteration boundary.
		if err := ws.Abort.Err(); err != nil {
			return res, faults.Wrap("newton", p.Time, -1, err)
		}
		p.FirstIter = iter == 0
		loadTraced(ws, x, p)
		limited := ws.Limited
		ws.Residual(p.Alpha0, qhist, r)
		if err := factorAndSolve(ws, p.Time, r, dx, forceFresh); err != nil {
			return res, faults.Wrap("newton", p.Time, -1, fmt.Errorf("iteration %d: %w", iter, err))
		}
		forceFresh = false
		// A bypassed factorization makes this a quasi-Newton step: keep the
		// pre-update iterate around so the convergence guard below can redo
		// the step exactly.
		bypassed := ws.Solver.LastBypassed
		if bypassed {
			ws.SaveIterate(x)
		}
		// x_{k+1} = x_k − J⁻¹·R, with optional per-component damping.
		maxRatio := applyUpdate(x, dx, opts)
		ws.FlipState()
		res.Iters = iter + 1
		// A NaN/Inf iterate can never converge — every later update test
		// compares against NaN — so abort at once instead of burning the
		// whole iteration budget, and name the unknown that went bad.
		if i := num.NonFiniteIndex(x); i >= 0 {
			return res, faults.Wrap("newton", p.Time, i,
				fmt.Errorf("%w in iterate after %d iterations", faults.ErrNonFinite, res.Iters))
		}
		// SPICE's convergence rule: accept as soon as the Newton update is
		// inside the tolerance band, on any iteration — the update was
		// computed from an exact Jacobian/residual at the previous iterate,
		// so a small step certifies the iterate. The guard against the
		// pn-junction false-convergence trap (an iterate assembled under
		// active device limiting may pass the update test while grossly
		// violating the true residual) is the limiting flag.
		if maxRatio <= 1 && !limited {
			if ws.LastLoadBypassed() > 0 {
				// A load with bypassed device evaluations is never allowed to
				// be the iteration that declares convergence: the replayed
				// stamps are within tolerance but not exact.
				if bypassed {
					// The step also came from a reused LU — two staleness
					// sources stack, so certify nothing in place: force a
					// fully evaluated iteration and re-test.
					ws.DisableBypassOnce()
					continue
				}
				// In-place certification: reload with every device fully
				// evaluated at the candidate iterate, then take one exact-
				// residual step through the current factorization. Accepting
				// only when that step also lands inside the band gives the
				// declaring iteration an exact assembly at a fraction of a
				// full iteration (no refactorization).
				ws.DisableBypassOnce()
				loadTraced(ws, x, p)
				if ws.Limited {
					continue
				}
				ws.Residual(p.Alpha0, qhist, r)
				if err := ws.Solver.Solve(r, dx); err != nil {
					return res, faults.Wrap("newton", p.Time, -1, fmt.Errorf("iteration %d: %w", iter, err))
				}
				maxRatio = applyUpdate(x, dx, opts)
				ws.FlipState()
				if i := num.NonFiniteIndex(x); i >= 0 {
					return res, faults.Wrap("newton", p.Time, i,
						fmt.Errorf("%w in iterate after %d iterations", faults.ErrNonFinite, res.Iters))
				}
				if maxRatio > 1 {
					// The exact assembly disagreed: keep iterating from the
					// genuine Newton step it produced.
					continue
				}
			}
			if bypassed {
				// Never accept an iterate produced under factorization
				// bypass: rewind to the pre-update iterate (whose assembly
				// and residual are still in the workspace), refactorize for
				// real, and take the exact Newton step instead.
				ws.RestoreIterate(x)
				if err := ws.Solver.FactorizeFresh(); err != nil {
					return res, faults.Wrap("newton", p.Time, -1, fmt.Errorf("iteration %d: %w", iter, err))
				}
				if err := ws.Solver.Solve(r, dx); err != nil {
					return res, faults.Wrap("newton", p.Time, -1, fmt.Errorf("iteration %d: %w", iter, err))
				}
				maxRatio = applyUpdate(x, dx, opts)
				if i := num.NonFiniteIndex(x); i >= 0 {
					return res, faults.Wrap("newton", p.Time, i,
						fmt.Errorf("%w in iterate after %d iterations", faults.ErrNonFinite, res.Iters))
				}
				if maxRatio > 1 {
					// The exact step disagreed with the bypassed one by more
					// than the tolerance band; keep iterating from it.
					continue
				}
			}
			if opts.ResidualTol > 0 {
				// The residual that certifies convergence must come from a
				// fully evaluated assembly, never from replayed stamps.
				ws.DisableBypassOnce()
				loadTraced(ws, x, p)
				ws.Residual(p.Alpha0, qhist, r)
				if num.MaxAbs(r) > opts.ResidualTol {
					continue
				}
			}
			res.Converged = true
			return res, nil
		}
		// The step missed the convergence band. If it was computed from a
		// reused (bypassed) factorization the quasi-Newton direction may be
		// arbitrarily wrong — a stale LU can even diverge on a linear
		// circuit — so insist on a real factorization next iteration.
		// Genuine Newton steps that miss the band keep iterating normally.
		forceFresh = bypassed
	}
	return res, faults.Wrap("newton", p.Time, -1,
		fmt.Errorf("%w after %d iterations", ErrNoConvergence, opts.MaxIter))
}

// loadTraced assembles the system, pairing each Load with exactly one
// PhaseDeviceLoad event when tracing is active. The event carries the
// incremental-assembly outcome — Iters holds the bypassed-eval count and
// FlagLinearHit marks a linear-template hit — so trace replay reconciles
// 1:1 with the workspace's DeviceBypassCounters.
func loadTraced(ws *circuit.Workspace, x []float64, p circuit.LoadParams) {
	if !ws.Trace.Active() {
		ws.Load(x, p)
		return
	}
	t0 := time.Now()
	ws.Load(x, p)
	ev := trace.Event{
		Kind: trace.KindPhase, Phase: trace.PhaseDeviceLoad,
		Dur: time.Since(t0).Nanoseconds(), T: p.Time, Worker: ws.Worker,
		Iters: int32(ws.LastLoadBypassed()),
	}
	if ws.LastLoadLinearHit() {
		ev.Flags |= trace.FlagLinearHit
	}
	ws.Trace.Emit(ev)
}

func factorAndSolve(ws *circuit.Workspace, at float64, r, dx []float64, forceFresh bool) error {
	if cls, ok := ws.Faults.At(faults.SiteFactor, at); ok && cls == faults.Singular {
		return fmt.Errorf("%w (injected)", faults.ErrSingular)
	}
	if ws.Trace.Active() {
		return factorAndSolveTraced(ws, at, r, dx, forceFresh)
	}
	var err error
	if forceFresh {
		err = ws.Solver.FactorizeFresh()
	} else {
		err = ws.Solver.Factorize()
	}
	if err != nil {
		return err
	}
	return ws.Solver.Solve(r, dx)
}

// factorAndSolveTraced is the observed twin of factorAndSolve: it splits the
// linear-solve work into a factorization span (flagged when the bypass
// policy reused the previous LU) and a triangular-solve span.
func factorAndSolveTraced(ws *circuit.Workspace, at float64, r, dx []float64, forceFresh bool) error {
	t0 := time.Now()
	var err error
	if forceFresh {
		err = ws.Solver.FactorizeFresh()
	} else {
		err = ws.Solver.Factorize()
	}
	ev := trace.Event{
		Kind: trace.KindPhase, Phase: trace.PhaseFactor,
		Dur: time.Since(t0).Nanoseconds(), T: at, Worker: ws.Worker,
	}
	if ws.Solver.LastBypassed {
		ev.Flags |= trace.FlagBypassed
	}
	if err != nil {
		ev.Flags |= trace.FlagFailed
		ws.Trace.Emit(ev)
		return err
	}
	ws.Trace.Emit(ev)
	t0 = time.Now()
	err = ws.Solver.Solve(r, dx)
	ev = trace.Event{
		Kind: trace.KindPhase, Phase: trace.PhaseTriSolve,
		Dur: time.Since(t0).Nanoseconds(), T: at, Worker: ws.Worker,
	}
	if err != nil {
		ev.Flags |= trace.FlagFailed
	}
	ws.Trace.Emit(ev)
	return err
}

// ResumeSolve continues a Newton iteration whose assembly already exists:
// the workspace must hold a Load taken at x (same time point and Alpha0)
// with a valid factorization — the state a speculative warm start leaves
// behind. Because the device assembly does not depend on the integration
// history, only the residual changes when the true history replaces the
// predicted one: iteration 0 therefore costs one residual rebuild and one
// triangular solve, and the loop then continues with full iterations. This
// is what makes forward pipelining pay: most of the forward point's
// computation happened speculatively, off the critical path.
func ResumeSolve(ws *circuit.Workspace, x []float64, p circuit.LoadParams, qhist []float64, opts Options, r, dx []float64) (Result, error) {
	if opts.MaxIter <= 0 {
		opts.MaxIter = 50
	}
	res := Result{}
	ws.Residual(p.Alpha0, qhist, r)
	if err := ws.Solver.Solve(r, dx); err != nil {
		return res, faults.Wrap("newton", p.Time, -1, fmt.Errorf("resume: %w", err))
	}
	maxRatio := applyUpdate(x, dx, opts)
	res.Iters = 1
	// Same non-finite guard as Solve: a poisoned warm iterate must fail
	// fast, not spin through the full continuation below.
	if i := num.NonFiniteIndex(x); i >= 0 {
		return res, faults.Wrap("newton", p.Time, i,
			fmt.Errorf("%w in resumed iterate", faults.ErrNonFinite))
	}
	// The assembly and factorization are exact for the warm iterate (only
	// the history vector changed), so this is a true Newton step and the
	// standard acceptance rule applies.
	if maxRatio <= 1 && !ws.Limited {
		res.Converged = true
		return res, nil
	}
	inner, err := Solve(ws, x, p, qhist, opts, r, dx)
	res.Iters += inner.Iters
	res.Converged = inner.Converged
	return res, err
}

// applyUpdate performs x -= clamp(dx) and returns the weighted update norm.
func applyUpdate(x, dx []float64, opts Options) float64 {
	maxRatio := 0.0
	for i := range x {
		d := dx[i]
		if opts.Damping > 0 {
			d = num.Clamp(d, -opts.Damping, opts.Damping)
		}
		xOld := x[i]
		x[i] -= d
		w := opts.Tol.Weight(math.Max(math.Abs(xOld), math.Abs(x[i])))
		if ratio := math.Abs(d) / w; ratio > maxRatio {
			maxRatio = ratio
		}
	}
	return maxRatio
}
