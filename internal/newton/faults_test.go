package newton

import (
	"errors"
	"testing"

	"wavepipe/internal/circuit"
	"wavepipe/internal/device"
	"wavepipe/internal/faults"
)

// scratch allocates the solve scratch vectors for ws.
func scratch(ws *circuit.Workspace) (x, r, dx []float64) {
	return make([]float64, ws.Sys.N), make([]float64, ws.Sys.N), make([]float64, ws.Sys.N)
}

func linearWS(t *testing.T) *circuit.Workspace {
	return build(t, func(c *circuit.Circuit) {
		in := c.Node("in")
		mid := c.Node("mid")
		c.Add(device.NewVSource("V1", in, circuit.Ground, device.DC(6)))
		c.Add(device.NewResistor("R1", in, mid, 1e3))
		c.Add(device.NewResistor("R2", mid, circuit.Ground, 2e3))
	})
}

// A poisoned device stamp (NaN injected during assembly) must abort the
// iteration immediately with ErrNonFinite instead of spinning through the
// whole 50-iteration budget comparing against NaN.
func TestNonFiniteIterateAbortsImmediately(t *testing.T) {
	ws := linearWS(t)
	ws.Faults = faults.NewInjector(faults.Rule{Class: faults.NonFinite})
	x, r, dx := scratch(ws)
	res, err := Solve(ws, x, circuit.LoadParams{SrcScale: 1}, nil, DefaultOptions(), r, dx)
	if !errors.Is(err, faults.ErrNonFinite) {
		t.Fatalf("err = %v, want ErrNonFinite", err)
	}
	if res.Iters > 2 {
		t.Fatalf("burned %d iterations on a NaN iterate", res.Iters)
	}
	var se *faults.SimError
	if !errors.As(err, &se) || se.Phase != "newton" || se.Node < 0 {
		t.Fatalf("missing context: %+v", se)
	}
}

// ResumeSolve must carry the same guard: a NaN warm iterate fails fast.
func TestResumeSolveGuardsNonFinite(t *testing.T) {
	ws := linearWS(t)
	x, r, dx := scratch(ws)
	p := circuit.LoadParams{SrcScale: 1}
	// Prepare a valid assembly + factorization at x, as a warm start would.
	ws.Load(x, p)
	if err := ws.Solver.Factorize(); err != nil {
		t.Fatal(err)
	}
	// Poison the next assembly (ResumeSolve's continuation path reloads).
	ws.Faults = faults.NewInjector(faults.Rule{Class: faults.NonFinite})
	res, err := ResumeSolve(ws, x, p, nil, DefaultOptions(), r, dx)
	if err == nil {
		t.Fatalf("poisoned resume converged: %+v", res)
	}
	if !errors.Is(err, faults.ErrNonFinite) {
		t.Fatalf("err = %v, want ErrNonFinite", err)
	}
}

func TestInjectedNoConvergence(t *testing.T) {
	ws := linearWS(t)
	ws.Faults = faults.NewInjector(faults.Rule{Class: faults.NoConvergence})
	x, r, dx := scratch(ws)
	_, err := Solve(ws, x, circuit.LoadParams{SrcScale: 1}, nil, DefaultOptions(), r, dx)
	if !errors.Is(err, ErrNoConvergence) {
		t.Fatalf("err = %v, want ErrNoConvergence", err)
	}
	// The budget is spent: the same workspace solves cleanly afterwards.
	x2, r2, dx2 := scratch(ws)
	if _, err := Solve(ws, x2, circuit.LoadParams{SrcScale: 1}, nil, DefaultOptions(), r2, dx2); err != nil {
		t.Fatalf("after budget exhausted: %v", err)
	}
}

func TestInjectedSingularFactorization(t *testing.T) {
	ws := linearWS(t)
	ws.Faults = faults.NewInjector(faults.Rule{Class: faults.Singular})
	x, r, dx := scratch(ws)
	_, err := Solve(ws, x, circuit.LoadParams{SrcScale: 1}, nil, DefaultOptions(), r, dx)
	if !errors.Is(err, faults.ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

// A genuinely singular matrix (two ideal sources fighting over one node)
// must surface the same ErrSingular sentinel from the sparse layer.
func TestRealSingularMatrixIsTyped(t *testing.T) {
	ws := build(t, func(c *circuit.Circuit) {
		a := c.Node("a")
		c.Add(device.NewVSource("V1", a, circuit.Ground, device.DC(1)))
		c.Add(device.NewVSource("V2", a, circuit.Ground, device.DC(2)))
	})
	x, r, dx := scratch(ws)
	_, err := Solve(ws, x, circuit.LoadParams{SrcScale: 1}, nil, DefaultOptions(), r, dx)
	if !errors.Is(err, faults.ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}
