// Package faults provides the robustness layer's two shared pieces: the
// typed simulation-error taxonomy (errors.go) and a deterministic,
// test-injectable fault harness.
//
// The injector is threaded through circuit.Workspace and checked at a small
// set of named sites in the solver stack (device assembly, the Newton loop,
// the sparse factorization, the wavepipe stage workers). A nil *Injector is
// fully functional and fires nothing, so production runs pay only a nil
// check. Rules trigger deterministically — by site, time window and check
// count, never randomness — which lets tests force a specific failure at a
// specific point and assert the exact recovery path taken.
package faults

import "sync"

// Class enumerates the injectable fault classes.
type Class int

const (
	// NoConvergence forces newton.Solve to fail with ErrNoConvergence.
	NoConvergence Class = iota
	// Singular forces the factorization step to fail with ErrSingular.
	Singular
	// NonFinite poisons a device stamp with NaN during assembly, the way
	// a misbehaving device model would.
	NonFinite
	// WorkerPanic panics inside a wavepipe stage worker.
	WorkerPanic
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case NoConvergence:
		return "no-convergence"
	case Singular:
		return "singular"
	case NonFinite:
		return "non-finite"
	case WorkerPanic:
		return "worker-panic"
	default:
		return "unknown"
	}
}

// Site identifies an instrumented code site.
type Site string

// Instrumented sites.
const (
	SiteLoad   Site = "circuit.load"     // device assembly (NonFinite)
	SiteNewton Site = "newton.solve"     // Newton loop entry (NoConvergence)
	SiteFactor Site = "sparse.factorize" // LU factorization (Singular)
	SiteWorker Site = "wavepipe.worker"  // pipeline stage worker (WorkerPanic)
)

// defaultSite is where a class naturally strikes when the rule names none.
func (c Class) defaultSite() Site {
	switch c {
	case Singular:
		return SiteFactor
	case NonFinite:
		return SiteLoad
	case WorkerPanic:
		return SiteWorker
	default:
		return SiteNewton
	}
}

// Stage describes what kind of solve is running when a check fires. The
// recovery ladders mark their rungs on the injector (SetStage), and a rule
// can spare solves from a chosen rung up — so a test can defeat plain
// Newton while letting exactly one rung of the ladder succeed, making the
// recovery path deterministic.
type Stage int

// Solve stages, ordered by ladder depth.
const (
	StageNormal  Stage = iota // regular solve
	StageDamping              // transient recovery: escalated-damping rung
	StageGmin                 // transient recovery gmin ramp / dcop gmin stepping
	StageSource               // dcop source stepping
)

// Rule schedules firings of one fault class. The zero value of every
// optional field means "no constraint" (Count defaults to one firing).
type Rule struct {
	Class Class
	// Site restricts the rule to one instrumented site; empty selects the
	// class's natural site.
	Site Site
	// After / Until bound the simulation-time window the rule is armed in
	// (Until == 0 leaves the window open-ended).
	After, Until float64
	// Skip ignores the first Skip matching checks before firing begins.
	Skip int
	// Count is the firing budget (default 1).
	Count int
	// SpareFrom, when > 0, spares solves running at recovery stage >=
	// SpareFrom, letting that rung of a recovery ladder succeed.
	SpareFrom Stage
}

// Firing records one injected fault.
type Firing struct {
	Rule  int // index of the rule that fired
	Class Class
	Site  Site
	T     float64
	Stage Stage
}

// Injector evaluates fault rules at instrumented sites. All methods are
// safe for concurrent use and safe on a nil receiver (no-ops).
type Injector struct {
	mu    sync.Mutex
	rules []Rule
	seen  []int // matching checks per rule
	fired []int // firings per rule
	stage Stage
	log   []Firing
}

// NewInjector builds an injector from the given rules, filling defaults.
func NewInjector(rules ...Rule) *Injector {
	in := &Injector{
		rules: make([]Rule, len(rules)),
		seen:  make([]int, len(rules)),
		fired: make([]int, len(rules)),
	}
	for i, r := range rules {
		if r.Site == "" {
			r.Site = r.Class.defaultSite()
		}
		if r.Count <= 0 {
			r.Count = 1
		}
		in.rules[i] = r
	}
	return in
}

// SetStage marks subsequent checks as running at the given recovery stage.
// The recovery ladders bracket each rung with SetStage/StageNormal.
func (in *Injector) SetStage(s Stage) {
	if in == nil {
		return
	}
	in.mu.Lock()
	in.stage = s
	in.mu.Unlock()
}

// At evaluates the rules for a check at the given site and simulation time,
// returning the class of the fault to apply, if any. Each firing is
// recorded and debited against its rule's budget.
func (in *Injector) At(site Site, t float64) (Class, bool) {
	if in == nil {
		return 0, false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for i := range in.rules {
		r := &in.rules[i]
		if r.Site != site || t < r.After || (r.Until > 0 && t > r.Until) {
			continue
		}
		if r.SpareFrom > 0 && in.stage >= r.SpareFrom {
			continue
		}
		in.seen[i]++
		if in.seen[i] <= r.Skip || in.fired[i] >= r.Count {
			continue
		}
		in.fired[i]++
		in.log = append(in.log, Firing{Rule: i, Class: r.Class, Site: site, T: t, Stage: in.stage})
		return r.Class, true
	}
	return 0, false
}

// Firings returns a copy of the firing log.
func (in *Injector) Firings() []Firing {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]Firing, len(in.log))
	copy(out, in.log)
	return out
}

// Fired returns the total number of injected faults so far.
func (in *Injector) Fired() int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return len(in.log)
}
