package faults

import "sync/atomic"

// Abort is a first-wins cooperative stop flag shared between a run's watchdog
// and its solver stack. The watchdog (or deadline timer) trips it once with a
// typed cause; the Newton loop polls it every iteration and the engines poll
// it at step boundaries, so even a hung solve is interrupted within one
// iteration. All methods are safe for concurrent use and on a nil receiver,
// so unguarded runs pay only a nil check.
type Abort struct {
	cause atomic.Pointer[abortCause]
}

type abortCause struct{ err error }

// Trip records err as the abort cause if no cause is set yet. It reports
// whether this call won the race. Tripping with nil is a no-op.
func (a *Abort) Trip(err error) bool {
	if a == nil || err == nil {
		return false
	}
	return a.cause.CompareAndSwap(nil, &abortCause{err: err})
}

// Err returns the abort cause, or nil when the flag has not been tripped.
func (a *Abort) Err() error {
	if a == nil {
		return nil
	}
	c := a.cause.Load()
	if c == nil {
		return nil
	}
	return c.err
}
