package faults

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if _, ok := in.At(SiteNewton, 1); ok {
		t.Fatal("nil injector fired")
	}
	in.SetStage(StageGmin) // must not panic
	if in.Fired() != 0 || in.Firings() != nil {
		t.Fatal("nil injector has firings")
	}
}

func TestDefaultSiteAndSingleFiring(t *testing.T) {
	in := NewInjector(Rule{Class: Singular})
	if _, ok := in.At(SiteNewton, 0); ok {
		t.Fatal("fired at the wrong site")
	}
	cls, ok := in.At(SiteFactor, 0)
	if !ok || cls != Singular {
		t.Fatalf("At = %v,%v, want Singular firing", cls, ok)
	}
	if _, ok := in.At(SiteFactor, 0); ok {
		t.Fatal("default Count=1 rule fired twice")
	}
	if in.Fired() != 1 {
		t.Fatalf("Fired = %d", in.Fired())
	}
}

func TestTimeWindowSkipAndCount(t *testing.T) {
	in := NewInjector(Rule{Class: NoConvergence, After: 1, Until: 2, Skip: 1, Count: 2})
	if _, ok := in.At(SiteNewton, 0.5); ok {
		t.Fatal("fired before the window")
	}
	if _, ok := in.At(SiteNewton, 1.5); ok {
		t.Fatal("fired on the skipped check")
	}
	for i := 0; i < 2; i++ {
		if _, ok := in.At(SiteNewton, 1.5); !ok {
			t.Fatalf("firing %d missing", i)
		}
	}
	if _, ok := in.At(SiteNewton, 1.5); ok {
		t.Fatal("fired past the budget")
	}
	if _, ok := in.At(SiteNewton, 2.5); ok {
		t.Fatal("fired after the window")
	}
}

func TestSpareFromStage(t *testing.T) {
	in := NewInjector(Rule{Class: NoConvergence, Count: 100, SpareFrom: StageGmin})
	if _, ok := in.At(SiteNewton, 0); !ok {
		t.Fatal("normal solve not fired")
	}
	in.SetStage(StageDamping)
	if _, ok := in.At(SiteNewton, 0); !ok {
		t.Fatal("damping rung should still be fired (below SpareFrom)")
	}
	in.SetStage(StageGmin)
	if _, ok := in.At(SiteNewton, 0); ok {
		t.Fatal("gmin rung must be spared")
	}
	in.SetStage(StageSource)
	if _, ok := in.At(SiteNewton, 0); ok {
		t.Fatal("source rung must be spared")
	}
	in.SetStage(StageNormal)
	if _, ok := in.At(SiteNewton, 0); !ok {
		t.Fatal("back to normal must fire again")
	}
	fs := in.Firings()
	if len(fs) != 3 || fs[1].Stage != StageDamping {
		t.Fatalf("firing log = %+v", fs)
	}
}

func TestConcurrentChecksAreSafe(t *testing.T) {
	in := NewInjector(Rule{Class: WorkerPanic, Count: 50})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				in.At(SiteWorker, float64(i))
			}
		}()
	}
	wg.Wait()
	if in.Fired() != 50 {
		t.Fatalf("Fired = %d, want exactly the budget", in.Fired())
	}
}

func TestSimErrorContextAndUnwrap(t *testing.T) {
	err := Wrap("newton", 1e-9, 3, fmt.Errorf("%w after 50 iterations", ErrNoConvergence))
	if !errors.Is(err, ErrNoConvergence) {
		t.Fatal("sentinel lost through Wrap")
	}
	var se *SimError
	if !errors.As(err, &se) || se.Phase != "newton" || se.Node != 3 || se.Time != 1e-9 {
		t.Fatalf("context lost: %+v", se)
	}
	if Wrap("x", 0, -1, nil) != nil {
		t.Fatal("Wrap(nil) must be nil")
	}
	outer := Wrap("transient", 2e-9, -1, fmt.Errorf("%w: %w", ErrStepTooSmall, err))
	if !errors.Is(outer, ErrStepTooSmall) || !errors.Is(outer, ErrNoConvergence) {
		t.Fatal("nested sentinels must both be visible")
	}
}

func TestClassStrings(t *testing.T) {
	for cls, want := range map[Class]string{
		NoConvergence: "no-convergence", Singular: "singular",
		NonFinite: "non-finite", WorkerPanic: "worker-panic", Class(99): "unknown",
	} {
		if got := cls.String(); got != want {
			t.Fatalf("Class(%d).String() = %q, want %q", cls, got, want)
		}
	}
}
