package faults

import (
	"errors"
	"fmt"
)

// Sentinel errors — the failure classes callers branch on with errors.Is.
// Every solver-stack failure wraps exactly one of these, replacing the old
// opaque fmt.Errorf strings so engines, tests and the CLI can react to the
// failure class instead of parsing messages.
var (
	// ErrNoConvergence: a Newton iteration exhausted its budget.
	ErrNoConvergence = errors.New("newton: no convergence")
	// ErrSingular: the sparse LU factorization met a structurally or
	// numerically singular matrix.
	ErrSingular = errors.New("sparse: singular matrix")
	// ErrNonFinite: a NaN or Inf appeared in an iterate, residual or
	// device stamp.
	ErrNonFinite = errors.New("solver: non-finite value")
	// ErrStepTooSmall: adaptive step control shrank the time step to the
	// floor and the recovery ladder could not rescue the point.
	ErrStepTooSmall = errors.New("transient: time step too small")
	// ErrWorkerPanic: a pipeline stage worker panicked; the panic was
	// recovered and converted to this error.
	ErrWorkerPanic = errors.New("wavepipe: worker panic")
	// ErrCanceled: the run observed context cancellation and stopped at a
	// time-point boundary; the partial result up to that point is valid.
	ErrCanceled = errors.New("transient: run canceled")
	// ErrDeadlineExceeded: the run's wall-clock budget expired; the partial
	// result and the final checkpoint up to the last accepted point are valid.
	ErrDeadlineExceeded = errors.New("transient: wall-clock deadline exceeded")
	// ErrStalled: the watchdog observed no accepted step within its multiple
	// of the trailing step-time average and aborted the run.
	ErrStalled = errors.New("transient: run stalled")
	// ErrBadCheckpoint: a checkpoint file is truncated, corrupted, of an
	// unsupported version, or belongs to a different circuit.
	ErrBadCheckpoint = errors.New("checkpoint: invalid checkpoint")
)

// SimError attaches simulation context — which phase, at what time, on which
// unknown — to a failure cause. The cause chain always reaches one of the
// sentinel errors above, so errors.Is classifies a SimError by failure class
// and errors.As recovers the context.
type SimError struct {
	Phase string  // "dcop", "newton", "transient", "wavepipe"
	Time  float64 // simulation time of the failing solve (0 for DC)
	Node  int     // offending unknown index, -1 when not attributable
	Cause error
}

// Error renders the context followed by the cause.
func (e *SimError) Error() string {
	if e.Node >= 0 {
		return fmt.Sprintf("%s: t=%g: unknown %d: %v", e.Phase, e.Time, e.Node, e.Cause)
	}
	return fmt.Sprintf("%s: t=%g: %v", e.Phase, e.Time, e.Cause)
}

// Unwrap exposes the cause chain to errors.Is / errors.As.
func (e *SimError) Unwrap() error { return e.Cause }

// Wrap attaches phase/time/node context to err (nil stays nil).
func Wrap(phase string, t float64, node int, err error) error {
	if err == nil {
		return nil
	}
	return &SimError{Phase: phase, Time: t, Node: node, Cause: err}
}
