package device

import "wavepipe/internal/circuit"

// Renoded implementations: each clonable device rebuilds itself through its
// own constructor with remapped terminal indices, so value-derived internals
// (conductance, vcrit, oxide capacitances) are recomputed exactly as a fresh
// elaboration would. Devices holding cross-device references (CCCS, CCVS,
// Mutual) and the time-varying-topology Switch deliberately do not implement
// circuit.Renoder: their presence disables the reduction pass for the whole
// circuit (see internal/reduce).

// Renoded implements circuit.Renoder.
func (d *Resistor) Renoded(remap func(int) int) circuit.Device {
	return NewResistor(d.Inst, remap(d.P), remap(d.N), d.R)
}

// Renoded implements circuit.Renoder.
func (d *Capacitor) Renoded(remap func(int) int) circuit.Device {
	return NewCapacitor(d.Inst, remap(d.P), remap(d.N), d.C)
}

// Renoded implements circuit.Renoder.
func (d *Inductor) Renoded(remap func(int) int) circuit.Device {
	return NewInductor(d.Inst, remap(d.P), remap(d.N), d.L)
}

// Renoded implements circuit.Renoder.
func (d *VSource) Renoded(remap func(int) int) circuit.Device {
	nd := NewVSource(d.Inst, remap(d.P), remap(d.N), d.W)
	nd.ACMag, nd.ACPhase = d.ACMag, d.ACPhase
	return nd
}

// Renoded implements circuit.Renoder.
func (d *ISource) Renoded(remap func(int) int) circuit.Device {
	nd := NewISource(d.Inst, remap(d.P), remap(d.N), d.W)
	nd.ACMag, nd.ACPhase = d.ACMag, d.ACPhase
	return nd
}

// Renoded implements circuit.Renoder.
func (d *VCVS) Renoded(remap func(int) int) circuit.Device {
	return NewVCVS(d.Inst, remap(d.P), remap(d.N), remap(d.CP), remap(d.CN), d.Gain)
}

// Renoded implements circuit.Renoder.
func (d *VCCS) Renoded(remap func(int) int) circuit.Device {
	return NewVCCS(d.Inst, remap(d.P), remap(d.N), remap(d.CP), remap(d.CN), d.Gm)
}

// Renoded implements circuit.Renoder.
func (d *Diode) Renoded(remap func(int) int) circuit.Device {
	return NewDiode(d.Inst, remap(d.P), remap(d.N), d.Model, d.Area)
}

// Renoded implements circuit.Renoder.
func (d *MOSFET) Renoded(remap func(int) int) circuit.Device {
	return NewMOSFET(d.Inst, remap(d.D), remap(d.G), remap(d.S), remap(d.B), d.Model, d.W, d.L)
}

// Renoded implements circuit.Renoder.
func (d *MOSFETEKV) Renoded(remap func(int) int) circuit.Device {
	return NewMOSFETEKV(d.Inst, remap(d.D), remap(d.G), remap(d.S), remap(d.B), d.Model, d.W, d.L)
}

// Renoded implements circuit.Renoder.
func (d *BJT) Renoded(remap func(int) int) circuit.Device {
	return NewBJT(d.Inst, remap(d.C), remap(d.B), remap(d.E), d.Model, d.Area)
}
