package device

import (
	"math"

	"wavepipe/internal/circuit"
)

// MOSType distinguishes n-channel from p-channel devices.
type MOSType int

// MOS channel polarities.
const (
	NMOS MOSType = iota
	PMOS
)

// MOSModel is a Level-1 (Shichman–Hodges) MOSFET model card.
type MOSModel struct {
	Type   MOSType
	VTO    float64 // zero-bias threshold voltage [V] (positive for both types)
	KP     float64 // transconductance parameter [A/V²]
	GAMMA  float64 // body-effect coefficient [√V]
	PHI    float64 // surface potential [V]
	LAMBDA float64 // channel-length modulation [1/V]
	COX    float64 // gate oxide capacitance per area [F/m²]
	CGSO   float64 // gate-source overlap capacitance per width [F/m]
	CGDO   float64 // gate-drain overlap capacitance per width [F/m]
	CGBO   float64 // gate-bulk overlap capacitance per length [F/m]
	CBD    float64 // bulk-drain junction capacitance [F]
	CBS    float64 // bulk-source junction capacitance [F]
}

// DefaultMOSModel returns a usable generic model for the given polarity.
func DefaultMOSModel(t MOSType) MOSModel {
	return MOSModel{
		Type: t, VTO: 0.7, KP: 110e-6, GAMMA: 0.4, PHI: 0.65,
		LAMBDA: 0.05, COX: 3.45e-3, CGSO: 2e-10, CGDO: 2e-10, CGBO: 1e-10,
	}
}

// MOSFET is a four-terminal Level-1 MOSFET. The drain current uses the
// Shichman–Hodges equations with channel-length modulation and body effect;
// the gate capacitances use the linear Cox·W·L split plus overlaps
// (substitution for Meyer/BSIM charge models documented in DESIGN.md).
type MOSFET struct {
	Inst       string
	D, G, S, B int
	Model      MOSModel
	W, L       float64

	beta          float64
	cgs, cgd, cgb float64
	// Jacobian slots: rows D and S against columns D, G, S, B; gate and
	// bulk capacitive rows against their coupled columns.
	sdd, sdg, sds, sdb int
	ssd, ssg, sss, ssb int
	sgg, sgd, sgs, sgb int
	sbg, sbb           int
	sbdD, sbdB, sdbB2  int
	sbsS, sbsB, ssbB2  int
}

// NewMOSFET returns a MOSFET instance with the given geometry (meters).
func NewMOSFET(name string, d, g, s, b int, model MOSModel, w, l float64) *MOSFET {
	if w <= 0 {
		w = 1e-6
	}
	if l <= 0 {
		l = 1e-6
	}
	m := &MOSFET{Inst: name, D: d, G: g, S: s, B: b, Model: model, W: w, L: l}
	m.beta = model.KP * w / l
	half := 0.5 * model.COX * w * l
	m.cgs = half + model.CGSO*w
	m.cgd = half + model.CGDO*w
	m.cgb = model.CGBO * l
	return m
}

// Name implements circuit.Device.
func (m *MOSFET) Name() string { return m.Inst }

// Branches implements circuit.Device.
func (m *MOSFET) Branches() int { return 0 }

// States implements circuit.Device.
func (m *MOSFET) States() int { return 0 }

// Bind implements circuit.Device.
func (m *MOSFET) Bind(int, int) {}

// Reserve implements circuit.Device.
func (m *MOSFET) Reserve(r *circuit.Reserver) {
	m.sdd = r.J(m.D, m.D)
	m.sdg = r.J(m.D, m.G)
	m.sds = r.J(m.D, m.S)
	m.sdb = r.J(m.D, m.B)
	m.ssd = r.J(m.S, m.D)
	m.ssg = r.J(m.S, m.G)
	m.sss = r.J(m.S, m.S)
	m.ssb = r.J(m.S, m.B)
	// Capacitive couplings.
	m.sgg = r.J(m.G, m.G)
	m.sgd = r.J(m.G, m.D)
	m.sgs = r.J(m.G, m.S)
	m.sgb = r.J(m.G, m.B)
	m.sbg = r.J(m.B, m.G)
	m.sbb = r.J(m.B, m.B)
	m.sbdD = r.J(m.B, m.D)
	m.sbdB = r.J(m.D, m.B) // shared with sdb; Reserve dedups
	m.sdbB2 = r.J(m.D, m.D)
	m.sbsS = r.J(m.B, m.S)
	m.sbsB = r.J(m.S, m.B)
	m.ssbB2 = r.J(m.S, m.S)
}

// ids computes the normalized (NMOS-convention) channel current and its
// derivatives at the given vgs, vds (>= 0), vbs.
func (m *MOSFET) ids(vgs, vds, vbs float64) (id, gm, gds, gmbs float64) {
	md := m.Model
	vth := md.VTO
	dvth := 0.0
	if md.GAMMA != 0 {
		// SPICE3 mos1 body effect: square root for reverse bias, linear
		// extension (C1 at vbs = 0) for forward bias, clamped at zero.
		sphi := math.Sqrt(md.PHI)
		var sarg, dsarg float64
		if vbs <= 0 {
			sarg = math.Sqrt(md.PHI - vbs)
			dsarg = -1 / (2 * sarg)
		} else {
			sarg = sphi - vbs/(2*sphi)
			dsarg = -1 / (2 * sphi)
			if sarg < 0 {
				sarg, dsarg = 0, 0
			}
		}
		vth += md.GAMMA * (sarg - sphi)
		dvth = md.GAMMA * dsarg // dVth/dvbs
	}
	vgst := vgs - vth
	if vgst <= 0 {
		return 0, 0, 0, 0
	}
	cl := 1 + md.LAMBDA*vds
	if vds < vgst {
		// Linear (triode) region.
		id = m.beta * (vgst - vds/2) * vds * cl
		gm = m.beta * vds * cl
		gds = m.beta*(vgst-vds)*cl + m.beta*(vgst-vds/2)*vds*md.LAMBDA
	} else {
		// Saturation.
		id = 0.5 * m.beta * vgst * vgst * cl
		gm = m.beta * vgst * cl
		gds = 0.5 * m.beta * vgst * vgst * md.LAMBDA
	}
	gmbs = -gm * dvth
	return id, gm, gds, gmbs
}

// Eval implements circuit.Device.
func (m *MOSFET) Eval(e *circuit.EvalCtx) {
	pol := 1.0
	if m.Model.Type == PMOS {
		pol = -1
	}
	// u-space voltages (sign-normalized so the equations see an NMOS).
	ud := pol * e.V(m.D)
	ug := pol * e.V(m.G)
	us := pol * e.V(m.S)
	ub := pol * e.V(m.B)

	// Source/drain symmetry: operate on the terminal pair so uds >= 0.
	effD, effS := m.D, m.S
	uD, uS := ud, us
	if ud < us {
		effD, effS = m.S, m.D
		uD, uS = us, ud
	}
	vgs := ug - uS
	vds := uD - uS
	vbs := ub - uS

	id, gm, gds, gmbs := m.ids(vgs, vds, vbs)
	gds += e.Gmin // drain-source shunt keeps the matrix nonsingular in cutoff
	id += e.Gmin * vds
	iDS := pol * id // actual current flowing effD -> effS

	e.AddF(effD, iDS)
	e.AddF(effS, -iDS)

	// Conductance stamps are polarity-independent (the two sign flips
	// cancel). Map the effective-terminal derivatives onto instance slots.
	gss := gm + gds + gmbs
	if effD == m.D {
		e.AddJ(m.sdg, gm)
		e.AddJ(m.sdd, gds)
		e.AddJ(m.sdb, gmbs)
		e.AddJ(m.sds, -gss)
		e.AddJ(m.ssg, -gm)
		e.AddJ(m.ssd, -gds)
		e.AddJ(m.ssb, -gmbs)
		e.AddJ(m.sss, gss)
	} else {
		// Swapped: effD is the S terminal, effS is the D terminal.
		e.AddJ(m.ssg, gm)
		e.AddJ(m.sss, gds)
		e.AddJ(m.ssb, gmbs)
		e.AddJ(m.ssd, -gss)
		e.AddJ(m.sdg, -gm)
		e.AddJ(m.sds, -gds)
		e.AddJ(m.sdb, -gmbs)
		e.AddJ(m.sdd, gss)
	}

	// Linear gate and junction capacitances.
	m.stampCap(e, m.cgs, m.G, m.S, m.sgg, m.sgs, m.sgsT(), m.sss)
	m.stampCap(e, m.cgd, m.G, m.D, m.sgg, m.sgd, m.sgdT(), m.sdd)
	m.stampCap(e, m.cgb, m.G, m.B, m.sgg, m.sgb, m.sbg, m.sbb)
	if m.Model.CBD > 0 {
		m.stampCap(e, m.Model.CBD, m.B, m.D, m.sbb, m.sbdD, m.sbdB, m.sdbB2)
	}
	if m.Model.CBS > 0 {
		m.stampCap(e, m.Model.CBS, m.B, m.S, m.sbb, m.sbsS, m.sbsB, m.ssbB2)
	}
}

// sgsT and sgdT return the transposed gate-coupling slots, which coincide
// with rows S and D against column G.
func (m *MOSFET) sgsT() int { return m.ssg }
func (m *MOSFET) sgdT() int { return m.sdg }

// stampCap stamps a linear capacitor c between nodes p and n using the
// provided (p,p), (p,n), (n,p), (n,n) slots.
func (m *MOSFET) stampCap(e *circuit.EvalCtx, c float64, p, n int, spp, spn, snp, snn int) {
	if c == 0 {
		return
	}
	q := c * (e.V(p) - e.V(n))
	e.AddQ(p, q)
	e.AddQ(n, -q)
	e.AddJQ(spp, c)
	e.AddJQ(spn, -c)
	e.AddJQ(snp, -c)
	e.AddJQ(snn, c)
}
