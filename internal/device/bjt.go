package device

import (
	"math"

	"wavepipe/internal/circuit"
)

// BJTModel is a bipolar-junction-transistor model card: Ebers–Moll
// transport formulation with forward/reverse beta, Early effect and
// junction/diffusion charge storage (the Gummel–Poon subset SPICE calls
// level 1 without high-injection effects).
type BJTModel struct {
	Type BJTType
	IS   float64 // transport saturation current [A]
	BF   float64 // forward beta
	BR   float64 // reverse beta
	NF   float64 // forward emission coefficient
	NR   float64 // reverse emission coefficient
	VAF  float64 // forward Early voltage [V] (0 disables)
	TF   float64 // forward transit time [s]
	TR   float64 // reverse transit time [s]
	CJE  float64 // zero-bias B-E depletion capacitance [F]
	VJE  float64 // B-E junction potential [V]
	MJE  float64 // B-E grading coefficient
	CJC  float64 // zero-bias B-C depletion capacitance [F]
	VJC  float64 // B-C junction potential [V]
	MJC  float64 // B-C grading coefficient
	FC   float64 // forward-bias depletion coefficient
}

// BJTType distinguishes NPN from PNP devices.
type BJTType int

// BJT polarities.
const (
	NPN BJTType = iota
	PNP
)

// DefaultBJTModel returns SPICE default BJT parameters for the polarity.
func DefaultBJTModel(t BJTType) BJTModel {
	return BJTModel{
		Type: t, IS: 1e-16, BF: 100, BR: 1, NF: 1, NR: 1,
		VJE: 0.75, MJE: 0.33, VJC: 0.75, MJC: 0.33, FC: 0.5,
	}
}

func (m BJTModel) normalize() BJTModel {
	d := DefaultBJTModel(m.Type)
	if m.IS > 0 {
		d.IS = m.IS
	}
	if m.BF > 0 {
		d.BF = m.BF
	}
	if m.BR > 0 {
		d.BR = m.BR
	}
	if m.NF > 0 {
		d.NF = m.NF
	}
	if m.NR > 0 {
		d.NR = m.NR
	}
	d.VAF = m.VAF
	d.TF = m.TF
	d.TR = m.TR
	d.CJE = m.CJE
	d.CJC = m.CJC
	if m.VJE > 0 {
		d.VJE = m.VJE
	}
	if m.MJE > 0 {
		d.MJE = m.MJE
	}
	if m.VJC > 0 {
		d.VJC = m.VJC
	}
	if m.MJC > 0 {
		d.MJC = m.MJC
	}
	if m.FC > 0 {
		d.FC = m.FC
	}
	return d
}

// BJT is a three-terminal bipolar transistor (collector, base, emitter).
type BJT struct {
	Inst    string
	C, B, E int
	Model   BJTModel
	Area    float64

	vcrit float64
	state int // two slots: limited vbe, limited vbc

	scc, scb, sce int
	sbc, sbb, sbe int
	sec, seb, see int
}

// NewBJT returns a BJT instance; area scales IS and the junction caps.
func NewBJT(name string, c, b, e int, model BJTModel, area float64) *BJT {
	if area <= 0 {
		area = 1
	}
	m := model.normalize()
	nvt := m.NF * VThermal
	return &BJT{
		Inst: name, C: c, B: b, E: e, Model: m, Area: area,
		vcrit: nvt * math.Log(nvt/(math.Sqrt2*m.IS*area)),
	}
}

// Name implements circuit.Device.
func (d *BJT) Name() string { return d.Inst }

// Branches implements circuit.Device.
func (d *BJT) Branches() int { return 0 }

// States implements circuit.Device.
func (d *BJT) States() int { return 2 }

// Bind implements circuit.Device.
func (d *BJT) Bind(_, state0 int) { d.state = state0 }

// Reserve implements circuit.Device.
func (d *BJT) Reserve(r *circuit.Reserver) {
	d.scc = r.J(d.C, d.C)
	d.scb = r.J(d.C, d.B)
	d.sce = r.J(d.C, d.E)
	d.sbc = r.J(d.B, d.C)
	d.sbb = r.J(d.B, d.B)
	d.sbe = r.J(d.B, d.E)
	d.sec = r.J(d.E, d.C)
	d.seb = r.J(d.E, d.B)
	d.see = r.J(d.E, d.E)
}

// junction returns the diode current and conductance of one junction with
// the device's gmin folded in.
func junction(v, is, nvt, gmin float64) (i, g float64) {
	if v >= -5*nvt {
		ev := math.Exp(v / nvt)
		i = is * (ev - 1)
		g = is * ev / nvt
	} else {
		i = -is
		g = is / nvt * math.Exp(-5)
	}
	return i + gmin*v, g + gmin
}

// depletion returns the standard SPICE depletion charge and capacitance.
func depletion(v, cj0, vj, mj, fc float64) (q, c float64) {
	if cj0 == 0 {
		return 0, 0
	}
	fcv := fc * vj
	if v < fcv {
		arg := 1 - v/vj
		s := math.Pow(arg, -mj)
		return cj0 * vj / (1 - mj) * (1 - arg*s), cj0 * s
	}
	f1 := vj / (1 - mj) * (1 - math.Pow(1-fc, 1-mj))
	f2 := math.Pow(1-fc, 1+mj)
	f3 := 1 - fc*(1+mj)
	q = cj0 * (f1 + (f3*(v-fcv)+mj/(2*vj)*(v*v-fcv*fcv))/f2)
	c = cj0 / f2 * (f3 + mj*v/vj)
	return q, c
}

// Eval implements circuit.Device.
func (d *BJT) Eval(e *circuit.EvalCtx) {
	m := d.Model
	pol := 1.0
	if m.Type == PNP {
		pol = -1
	}
	is := m.IS * d.Area
	nvtF := m.NF * VThermal
	nvtR := m.NR * VThermal

	// Junction voltages in polarity-normalized space, limited per junction.
	vbeAct := pol * (e.V(d.B) - e.V(d.E))
	vbcAct := pol * (e.V(d.B) - e.V(d.C))
	vbe, vbc := vbeAct, vbcAct
	if !e.NoLimit {
		vbe = pnjlim(vbeAct, e.SPrev[d.state], nvtF, d.vcrit)
		vbc = pnjlim(vbcAct, e.SPrev[d.state+1], nvtR, d.vcrit)
		if vbe != vbeAct || vbc != vbcAct {
			e.Limited = true
		}
	}
	e.SNext[d.state] = vbe
	e.SNext[d.state+1] = vbc

	// Transport current and the two base junction currents.
	icc, gif := junction(vbe, is, nvtF, e.Gmin)
	iec, gir := junction(vbc, is, nvtR, e.Gmin)
	ibe := icc / m.BF
	gbe := gif / m.BF
	ibc := iec / m.BR
	gbc := gir / m.BR

	// Early effect scales the transport term with the B-C reverse bias.
	early := 1.0
	dEarly := 0.0 // d(early)/dvbc
	if m.VAF > 0 {
		early = 1 - vbc/m.VAF
		if early < 0.1 {
			early = 0.1
		} else {
			dEarly = -1 / m.VAF
		}
	}
	it := (icc - iec) * early
	gmf := gif * early                  // dIt/dvbe
	gmr := gir*early - (icc-iec)*dEarly // -dIt/dvbc (note the sign below)

	ic := it - ibc
	ib := ibe + ibc

	// Consistent linearization around the limited junction voltages.
	dbe := vbeAct - vbe
	dbc := vbcAct - vbc
	icEff := ic + gmf*dbe - (gmr+gbc)*dbc
	ibEff := ib + gbe*dbe + gbc*dbc
	ieEff := -(icEff + ibEff)

	e.AddF(d.C, pol*icEff)
	e.AddF(d.B, pol*ibEff)
	e.AddF(d.E, pol*ieEff)

	// Jacobian in actual node space (polarity factors cancel):
	// Ic = It(vbe,vbc) − Ibc(vbc); Ib = Ibe(vbe) + Ibc(vbc);
	// vbe = vb−ve, vbc = vb−vc.
	e.AddJ(d.scc, gmr+gbc)
	e.AddJ(d.scb, gmf-gmr-gbc)
	e.AddJ(d.sce, -gmf)
	e.AddJ(d.sbc, -gbc)
	e.AddJ(d.sbb, gbe+gbc)
	e.AddJ(d.sbe, -gbe)
	e.AddJ(d.sec, -gmr)
	e.AddJ(d.seb, -(gbe + gmf - gmr))
	e.AddJ(d.see, gbe+gmf)

	// Charge storage: diffusion (TF·icc, TR·iec) plus depletion, stamped
	// as capacitors B-E and B-C in actual node space (q flips with pol,
	// matching the flipped junction voltages; capacitances stay positive).
	qje, cje := depletion(vbe, m.CJE*d.Area, m.VJE, m.MJE, m.FC)
	qjc, cjc := depletion(vbc, m.CJC*d.Area, m.VJC, m.MJC, m.FC)
	qbe := m.TF*icc + qje
	cbe := m.TF*gif + cje
	qbc := m.TR*iec + qjc
	cbc := m.TR*gir + cjc

	e.AddQ(d.B, pol*(qbe+qbc))
	e.AddQ(d.E, -pol*qbe)
	e.AddQ(d.C, -pol*qbc)
	e.AddJQ(d.sbb, cbe+cbc)
	e.AddJQ(d.sbe, -cbe)
	e.AddJQ(d.sbc, -cbc)
	e.AddJQ(d.seb, -cbe)
	e.AddJQ(d.see, cbe)
	e.AddJQ(d.scb, -cbc)
	e.AddJQ(d.scc, cbc)
}
