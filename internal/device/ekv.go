package device

import (
	"math"

	"wavepipe/internal/circuit"
)

// EKVModel is a simplified EKV (Enz–Krummenacher–Vittoz) MOSFET model: a
// single smooth charge-sheet expression valid from subthreshold through
// strong inversion, symmetric in drain and source. Compared with Level-1 it
// is continuously differentiable everywhere and — like the BSIM-class
// models the WavePipe paper used — typically needs more Newton iterations
// per time point, which is the regime where forward pipelining pays.
type EKVModel struct {
	Type   MOSType
	VTO    float64 // threshold voltage [V]
	KP     float64 // transconductance parameter [A/V²]
	N      float64 // subthreshold slope factor (typ. 1.2–1.6)
	LAMBDA float64 // channel-length modulation [1/V]
	COX    float64 // gate capacitance per area [F/m²]
	CGSO   float64 // gate-source overlap [F/m]
	CGDO   float64 // gate-drain overlap [F/m]
}

// DefaultEKVModel returns a usable generic EKV card for the polarity.
func DefaultEKVModel(t MOSType) EKVModel {
	return EKVModel{
		Type: t, VTO: 0.5, KP: 110e-6, N: 1.35, LAMBDA: 0.05,
		COX: 3.45e-3, CGSO: 2e-10, CGDO: 2e-10,
	}
}

// MOSFETEKV is a four-terminal MOSFET using the EKV interpolation
//
//	Id = 2·n·β·Vt² · (F((Vp−Vs)/Vt) − F((Vp−Vd)/Vt)) · (1 + λ·Vds)
//	F(u) = ln²(1 + e^(u/2)),  Vp = (Vg − VTO)/n
//
// with all voltages bulk-referenced.
type MOSFETEKV struct {
	Inst       string
	D, G, S, B int
	Model      EKVModel
	W, L       float64

	beta     float64
	cgs, cgd float64

	sdd, sdg, sds, sdb int
	ssd, ssg, sss, ssb int
	sgg, sgd, sgs      int
}

// NewMOSFETEKV returns an EKV MOSFET with geometry in meters.
func NewMOSFETEKV(name string, d, g, s, b int, model EKVModel, w, l float64) *MOSFETEKV {
	if w <= 0 {
		w = 1e-6
	}
	if l <= 0 {
		l = 1e-6
	}
	m := &MOSFETEKV{Inst: name, D: d, G: g, S: s, B: b, Model: model, W: w, L: l}
	m.beta = model.KP * w / l
	half := 0.5 * model.COX * w * l
	m.cgs = half + model.CGSO*w
	m.cgd = half + model.CGDO*w
	return m
}

// Name implements circuit.Device.
func (m *MOSFETEKV) Name() string { return m.Inst }

// Branches implements circuit.Device.
func (m *MOSFETEKV) Branches() int { return 0 }

// States implements circuit.Device.
func (m *MOSFETEKV) States() int { return 0 }

// Bind implements circuit.Device.
func (m *MOSFETEKV) Bind(int, int) {}

// Reserve implements circuit.Device.
func (m *MOSFETEKV) Reserve(r *circuit.Reserver) {
	m.sdd = r.J(m.D, m.D)
	m.sdg = r.J(m.D, m.G)
	m.sds = r.J(m.D, m.S)
	m.sdb = r.J(m.D, m.B)
	m.ssd = r.J(m.S, m.D)
	m.ssg = r.J(m.S, m.G)
	m.sss = r.J(m.S, m.S)
	m.ssb = r.J(m.S, m.B)
	m.sgg = r.J(m.G, m.G)
	m.sgd = r.J(m.G, m.D)
	m.sgs = r.J(m.G, m.S)
}

// softplusSq returns F(u) = ln²(1+e^(u/2)) and its derivative dF/du,
// numerically stable for all u.
func softplusSq(u float64) (f, df float64) {
	half := u / 2
	var sp, sig float64
	switch {
	case half > 40:
		sp = half
		sig = 1
	case half < -40:
		sp = math.Exp(half)
		sig = sp
	default:
		e := math.Exp(half)
		sp = math.Log1p(e)
		sig = e / (1 + e)
	}
	return sp * sp, sp * sig
}

// Eval implements circuit.Device.
func (m *MOSFETEKV) Eval(e *circuit.EvalCtx) {
	md := m.Model
	pol := 1.0
	if md.Type == PMOS {
		pol = -1
	}
	vt := VThermal
	// Bulk-referenced, polarity-normalized voltages.
	vg := pol * (e.V(m.G) - e.V(m.B))
	vs := pol * (e.V(m.S) - e.V(m.B))
	vd := pol * (e.V(m.D) - e.V(m.B))

	vp := (vg - md.VTO) / md.N
	fF, dfF := softplusSq((vp - vs) / vt)
	fR, dfR := softplusSq((vp - vd) / vt)

	i0 := 2 * md.N * m.beta * vt * vt
	vds := vd - vs
	cl := 1 + md.LAMBDA*math.Abs(vds)
	dclDvd := md.LAMBDA
	if vds < 0 {
		dclDvd = -md.LAMBDA
	}

	base := fF - fR
	id := i0 * base * cl // normalized current, flows D→S for positive vds

	// Partials in normalized bulk-referenced space; cl depends on
	// vds = vd − vs, giving the ± i0·base·dcl terms.
	dBaseDvg := (dfF - dfR) / (md.N * vt)
	dBaseDvs := -dfF / vt
	dBaseDvd := dfR / vt
	gm := i0 * dBaseDvg * cl
	gd := i0*dBaseDvd*cl + i0*base*dclDvd
	gs := i0*dBaseDvs*cl - i0*base*dclDvd

	gmin := e.Gmin
	id += gmin * vds
	gd += gmin
	gs -= gmin

	iDS := pol * id
	e.AddF(m.D, iDS)
	e.AddF(m.S, -iDS)

	// dI/dv(bulk) closes the chain rule: all normalized voltages are
	// referenced to the bulk, so the bulk column is −(gm+gd+gs)… with
	// gs defined as dI/dvs. Conductance stamps are polarity-invariant.
	gb := -(gm + gd + gs)
	e.AddJ(m.sdg, gm)
	e.AddJ(m.sdd, gd)
	e.AddJ(m.sds, gs)
	e.AddJ(m.sdb, gb)
	e.AddJ(m.ssg, -gm)
	e.AddJ(m.ssd, -gd)
	e.AddJ(m.sss, -gs)
	e.AddJ(m.ssb, -gb)

	// Linear gate capacitances (shared helper from the Level-1 model).
	stampTwoNodeCap(e, m.cgs, m.G, m.S, m.sgg, m.sgs, m.ssg, m.sss)
	stampTwoNodeCap(e, m.cgd, m.G, m.D, m.sgg, m.sgd, m.sdg, m.sdd)
}

// stampTwoNodeCap stamps a linear capacitor c between nodes p and n using
// the provided (p,p), (p,n), (n,p), (n,n) slots.
func stampTwoNodeCap(e *circuit.EvalCtx, c float64, p, n int, spp, spn, snp, snn int) {
	if c == 0 {
		return
	}
	q := c * (e.V(p) - e.V(n))
	e.AddQ(p, q)
	e.AddQ(n, -q)
	e.AddJQ(spp, c)
	e.AddJQ(spn, -c)
	e.AddJQ(snp, -c)
	e.AddJQ(snn, c)
}
