package device

import (
	"testing"

	"wavepipe/internal/circuit"
)

// Consolidated finite-difference Jacobian sweep: one table covering every
// nonlinear device model plus the branch-coupled Mutual, each checked at a
// grid of deterministic operating points and at several Alpha0 blends
// (Alpha0 = 0 isolates dF/dx; the large values fold dQ/dx in).
//
// The incremental assembly engine (internal/circuit) replays journaled stamp
// deltas and applies a first-order Σ J·Δv correction on bypassed loads, so an
// analytic Jacobian that disagrees with the residual would not just slow
// Newton down — it would silently corrupt bypassed assemblies. This sweep is
// the safety net named in that engine's package contract.
func TestJacobianFDSweep(t *testing.T) {
	alphas := []float64{0, 1e6, 1e8}
	cases := []struct {
		name   string
		build  func() *circuit.Circuit
		points [][]float64
	}{
		{
			// Forward conduction, reverse, and forward-depletion (v > FC·VJ).
			name: "diode",
			build: func() *circuit.Circuit {
				c := circuit.New("jac-diode")
				a := c.Node("a")
				b := c.Node("b")
				c.Add(NewISource("I1", circuit.Ground, a, DC(1e-3)))
				c.Add(NewResistor("R1", a, b, 50))
				c.Add(NewDiode("D1", b, circuit.Ground,
					DiodeModel{IS: 1e-14, N: 1.2, TT: 5e-9, CJ0: 2e-12, VJ: 0.8, M: 0.4}, 2))
				return c
			},
			points: [][]float64{{0.67, 0.62}, {-1.9, -2.0}, {0.5, 0.45}, {0.75, 0.71}},
		},
		{
			// Forward active, saturation, reverse active, cutoff (x = c, b, e).
			name: "bjt-npn",
			build: func() *circuit.Circuit {
				m := DefaultBJTModel(NPN)
				m.VAF = 80
				m.TF = 1e-10
				m.CJE = 1e-12
				m.CJC = 0.5e-12
				return bjtJacCircuit(m)
			},
			points: [][]float64{{2, 0.7, 0}, {0.05, 0.72, 0}, {0.1, 0.4, 0.9}, {1, -0.5, 0}},
		},
		{
			name: "bjt-pnp",
			build: func() *circuit.Circuit {
				m := DefaultBJTModel(PNP)
				m.VAF = 80
				m.TF = 1e-10
				m.CJE = 1e-12
				m.CJC = 0.5e-12
				return bjtJacCircuit(m)
			},
			points: [][]float64{{-2, -0.7, 0}, {-0.05, -0.72, 0}, {-0.1, -0.4, -0.9}, {-1, 0.5, 0}},
		},
		{
			// Saturation, triode, cutoff, and reversed drain/source
			// (x = d, g, s + the two source branch currents).
			name: "mosfet-nmos",
			build: func() *circuit.Circuit {
				m := DefaultMOSModel(NMOS)
				m.CBD = 1e-14
				m.CBS = 1e-14
				c, _ := mosTestCircuit(m)
				return c
			},
			points: [][]float64{
				{2, 1.5, 0.1, -1e-3, -1e-4},
				{0.3, 1.8, 0, -2e-3, -1e-4},
				{2, 0.3, 0, 0, 0},
				{0.1, 1.5, 1.9, 1e-3, 1e-4},
			},
		},
		{
			name: "mosfet-pmos",
			build: func() *circuit.Circuit {
				m := DefaultMOSModel(PMOS)
				m.CBD = 1e-14
				m.CBS = 1e-14
				c, _ := mosTestCircuit(m)
				return c
			},
			points: [][]float64{
				{-2, -1.5, -0.1, 1e-3, 1e-4},
				{-0.3, -1.8, 0, 2e-3, 1e-4},
				{-2, -0.3, 0, 0, 0},
				{-0.1, -1.5, -1.9, -1e-3, -1e-4},
			},
		},
		{
			// Strong inversion, subthreshold, triode, body bias (x = d, g, s, b).
			name: "ekv-nmos",
			build: func() *circuit.Circuit {
				return ekvJacCircuit(DefaultEKVModel(NMOS))
			},
			points: [][]float64{
				{1.5, 2, 0, 0},
				{0.25, 0.2, 0, 0},
				{0.2, 1.8, 0, -0.3},
				{1, 1.2, 0.4, 0.1},
			},
		},
		{
			name: "ekv-pmos",
			build: func() *circuit.Circuit {
				return ekvJacCircuit(DefaultEKVModel(PMOS))
			},
			points: [][]float64{
				{-1.5, -2, 0, 0},
				{-0.25, -0.2, 0, 0},
				{-0.2, -1.8, 0, 0.3},
				{-1, -1.2, -0.4, -0.1},
			},
		},
		{
			// Off, mid-transition (the steep smoothstep region), and on
			// (x = a, b, ctl).
			name: "switch",
			build: func() *circuit.Circuit {
				c := circuit.New("jac-sw")
				a := c.Node("a")
				b := c.Node("b")
				ctl := c.Node("ctl")
				c.Add(NewISource("I1", circuit.Ground, a, DC(1e-3)))
				c.Add(NewResistor("R1", a, circuit.Ground, 1e4))
				c.Add(NewResistor("R2", b, circuit.Ground, 1e3))
				c.Add(NewResistor("R3", ctl, circuit.Ground, 1e3))
				m := DefaultSwitchModel()
				m.VT = 0.5
				m.DV = 0.2
				c.Add(NewSwitch("S1", a, b, ctl, circuit.Ground, m))
				return c
			},
			points: [][]float64{{0.8, 0.1, 0.1}, {0.6, 0.3, 0.45}, {0.5, 0.4, 0.55}, {0.3, 0.28, 0.9}},
		},
		{
			// Coupled inductors: linear but branch-coupled through the mutual
			// flux, so the FD sweep certifies the off-diagonal JQ entries the
			// linear-stamp template freezes (x = p, s + the two branch
			// currents).
			name: "mutual",
			build: func() *circuit.Circuit {
				c := circuit.New("jac-xfmr")
				p := c.Node("p")
				s := c.Node("s")
				l1 := NewInductor("L1", p, circuit.Ground, 1e-3)
				l2 := NewInductor("L2", s, circuit.Ground, 4e-3)
				c.Add(NewResistor("Rp", p, circuit.Ground, 1e3))
				c.Add(l1)
				c.Add(l2)
				c.Add(NewResistor("RL", s, circuit.Ground, 50))
				c.Add(NewMutual("K1", l1, l2, 0.9))
				return c
			},
			points: [][]float64{{1, -0.5, 2e-3, -1e-3}, {0.2, 0.1, -5e-4, 3e-4}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := tc.build()
			for _, x := range tc.points {
				for _, a0 := range alphas {
					fdJacobianCheck(t, c, x, a0)
				}
			}
		})
	}
}

func bjtJacCircuit(m BJTModel) *circuit.Circuit {
	c := circuit.New("jac-bjt")
	col := c.Node("c")
	base := c.Node("b")
	em := c.Node("e")
	c.Add(NewResistor("R1", col, circuit.Ground, 1e4))
	c.Add(NewResistor("R2", base, circuit.Ground, 1e4))
	c.Add(NewResistor("R3", em, circuit.Ground, 1e4))
	c.Add(NewBJT("Q1", col, base, em, m, 2))
	return c
}

func ekvJacCircuit(m EKVModel) *circuit.Circuit {
	c := circuit.New("jac-ekv")
	dN := c.Node("d")
	gN := c.Node("g")
	sN := c.Node("s")
	bN := c.Node("b")
	c.Add(NewResistor("Rd", dN, circuit.Ground, 1e4))
	c.Add(NewResistor("Rg", gN, circuit.Ground, 1e4))
	c.Add(NewResistor("Rs", sN, circuit.Ground, 1e4))
	c.Add(NewResistor("Rb", bN, circuit.Ground, 1e4))
	c.Add(NewMOSFETEKV("M1", dN, gN, sN, bN, m, 4e-6, 1e-6))
	return c
}
