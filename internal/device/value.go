package device

// SingleValued is implemented by devices characterized by one principal
// value — R, C, L, or a DC source level. Parameter sweeps and ensemble
// variants use it to perturb an instance without re-parsing a netlist.
// SetValue must be called only while the device is not being evaluated
// (between runs, or on a variant circuit before it is handed to an engine).
type SingleValued interface {
	// Value returns the principal value. For sources driving a
	// time-varying waveform it reports the t = 0 level.
	Value() float64
	// SetValue replaces the principal value, recomputing any derived
	// internal state. For sources it installs a DC waveform at v.
	SetValue(v float64)
}

// Value returns the resistance.
func (d *Resistor) Value() float64 { return d.R }

// SetValue replaces the resistance, recomputing the cached conductance.
func (d *Resistor) SetValue(v float64) {
	d.R = v
	d.g = 1 / v
}

// Value returns the capacitance.
func (d *Capacitor) Value() float64 { return d.C }

// SetValue replaces the capacitance.
func (d *Capacitor) SetValue(v float64) { d.C = v }

// Value returns the inductance.
func (d *Inductor) Value() float64 { return d.L }

// SetValue replaces the inductance.
func (d *Inductor) SetValue(v float64) { d.L = v }

// Value returns the source level at t = 0.
func (d *VSource) Value() float64 { return d.W.At(0) }

// SetValue replaces the waveform with a constant (alias of SetDC).
func (d *VSource) SetValue(v float64) { d.SetDC(v) }

// Value returns the source level at t = 0.
func (d *ISource) Value() float64 { return d.W.At(0) }

// SetValue replaces the waveform with a constant (alias of SetDC).
func (d *ISource) SetValue(v float64) { d.SetDC(v) }
