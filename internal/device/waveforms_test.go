package device

import (
	"math"
	"testing"
)

func TestDC(t *testing.T) {
	w := DC(5)
	if w.At(0) != 5 || w.At(1e9) != 5 {
		t.Fatal("DC not constant")
	}
	if w.Breakpoints(1) != nil {
		t.Fatal("DC has no breakpoints")
	}
}

func TestPulseShape(t *testing.T) {
	p := Pulse{V1: 0, V2: 1, Delay: 1, Rise: 1, Fall: 2, Width: 3, Period: 10}
	cases := []struct{ t, want float64 }{
		{0, 0},      // before delay
		{1, 0},      // at delay
		{1.5, 0.5},  // mid rise
		{2, 1},      // top start
		{4.9, 1},    // top end
		{6, 0.5},    // mid fall
		{7, 0},      // back to v1
		{11.5, 0.5}, // second period mid rise
	}
	for _, c := range cases {
		if got := p.At(c.t); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("Pulse.At(%g) = %g, want %g", c.t, got, c.want)
		}
	}
}

func TestPulseZeroEdges(t *testing.T) {
	p := Pulse{V1: 0, V2: 1, Delay: 0, Rise: 0, Fall: 0, Width: 1, Period: 0}
	if p.At(0.5) != 1 {
		t.Fatal("instant rise failed")
	}
	if p.At(1.5) != 0 {
		t.Fatal("instant fall failed")
	}
}

func TestPulseBreakpoints(t *testing.T) {
	p := Pulse{V1: 0, V2: 1, Delay: 1, Rise: 1, Fall: 1, Width: 1, Period: 10}
	bps := p.Breakpoints(12)
	// Period 1: 1,2,3,4; period 2: 11 (12 excluded by stop).
	want := []float64{1, 2, 3, 4, 11}
	if len(bps) != len(want) {
		t.Fatalf("breakpoints = %v, want %v", bps, want)
	}
	for i := range want {
		if math.Abs(bps[i]-want[i]) > 1e-12 {
			t.Fatalf("breakpoints = %v, want %v", bps, want)
		}
	}
	// Non-periodic pulse emits a single set.
	p.Period = 0
	if got := p.Breakpoints(100); len(got) != 4 {
		t.Fatalf("non-periodic breakpoints = %v", got)
	}
}

func TestSin(t *testing.T) {
	s := Sin{Offset: 1, Amplitude: 2, Freq: 1, Delay: 0.5}
	if s.At(0.2) != 1 {
		t.Fatal("before delay should be offset")
	}
	if got := s.At(0.5 + 0.25); math.Abs(got-3) > 1e-12 { // quarter period
		t.Fatalf("peak = %g, want 3", got)
	}
	bps := s.Breakpoints(1)
	if len(bps) != 1 || bps[0] != 0.5 {
		t.Fatalf("breakpoints = %v", bps)
	}
	if got := (Sin{Offset: 0, Amplitude: 1, Freq: 1, Damping: math.Log(2)}).At(1); math.Abs(got) > 1e-12 {
		t.Fatalf("sin at integer period = %g, want 0", got)
	}
}

func TestPWL(t *testing.T) {
	w := PWL{Times: []float64{0, 1, 3}, Values: []float64{0, 2, -2}}
	cases := []struct{ t, want float64 }{
		{-1, 0}, {0, 0}, {0.5, 1}, {1, 2}, {2, 0}, {3, -2}, {4, -2},
	}
	for _, c := range cases {
		if got := w.At(c.t); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("PWL.At(%g) = %g, want %g", c.t, got, c.want)
		}
	}
	if got := (PWL{}).At(5); got != 0 {
		t.Fatalf("empty PWL = %g", got)
	}
	bps := w.Breakpoints(2.5)
	if len(bps) != 1 || bps[0] != 1 {
		t.Fatalf("PWL breakpoints = %v", bps)
	}
}

func TestExp(t *testing.T) {
	w := Exp{V1: 0, V2: 1, TD1: 0, Tau1: 1, TD2: 5, Tau2: 1}
	if got := w.At(1); math.Abs(got-(1-math.Exp(-1))) > 1e-12 {
		t.Fatalf("Exp.At(1) = %g", got)
	}
	// After the second edge the value decays back toward V1.
	if w.At(20) > 0.01 {
		t.Fatalf("Exp should decay back, got %g", w.At(20))
	}
	bps := w.Breakpoints(10)
	if len(bps) != 1 || bps[0] != 5 {
		t.Fatalf("Exp breakpoints = %v", bps)
	}
}
