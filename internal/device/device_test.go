package device

import (
	"math"
	"math/rand"
	"testing"

	"wavepipe/internal/circuit"
)

// loadAt builds a workspace for the circuit, seeds the limiting state by a
// warm-up pass at x, then assembles at x and returns the workspace and the
// residual R = F + alpha0·Q − B.
func loadAt(t *testing.T, c *circuit.Circuit, x []float64, alpha0 float64) (*circuit.Workspace, []float64) {
	t.Helper()
	sys, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(x) != sys.N {
		t.Fatalf("x has length %d, system has %d unknowns", len(x), sys.N)
	}
	ws := sys.NewWorkspace()
	p := circuit.LoadParams{Alpha0: alpha0, SrcScale: 1, Gmin: 1e-12}
	ws.Load(x, p) // warm-up: seeds limiting state
	ws.FlipState()
	ws.Load(x, p)
	r := make([]float64, sys.N)
	ws.Residual(alpha0, nil, r)
	return ws, r
}

// fdJacobianCheck verifies every Jacobian column against a central finite
// difference of the residual.
func fdJacobianCheck(t *testing.T, c *circuit.Circuit, x []float64, alpha0 float64) {
	t.Helper()
	sys, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	ws := sys.NewWorkspace()
	p := circuit.LoadParams{Alpha0: alpha0, SrcScale: 1, Gmin: 1e-12}
	ws.Load(x, p)
	ws.FlipState()
	ws.Load(x, p)
	n := sys.N
	jac := make([][]float64, n)
	for i := range jac {
		jac[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			jac[i][j] = ws.M.At(i, j)
		}
	}
	rp := make([]float64, n)
	rm := make([]float64, n)
	xp := make([]float64, n)
	for j := 0; j < n; j++ {
		h := 1e-7 * (1 + math.Abs(x[j]))
		copy(xp, x)
		xp[j] = x[j] + h
		ws.Load(xp, p)
		ws.Residual(alpha0, nil, rp)
		xp[j] = x[j] - h
		ws.Load(xp, p)
		ws.Residual(alpha0, nil, rm)
		for i := 0; i < n; i++ {
			fd := (rp[i] - rm[i]) / (2 * h)
			scale := 1 + math.Abs(fd) + math.Abs(jac[i][j])
			if math.Abs(fd-jac[i][j]) > 2e-3*scale {
				t.Fatalf("Jacobian (%d,%d): stamped %g, finite-diff %g", i, j, jac[i][j], fd)
			}
		}
	}
}

func TestResistorDividerResidual(t *testing.T) {
	// v1 --R1-- mid --R2-- gnd driven by 10 V: exact mid voltage 5 V.
	c := circuit.New("divider")
	in := c.Node("in")
	mid := c.Node("mid")
	c.Add(NewVSource("V1", in, circuit.Ground, DC(10)))
	c.Add(NewResistor("R1", in, mid, 1e3))
	c.Add(NewResistor("R2", mid, circuit.Ground, 1e3))
	// Unknowns: in, mid, branch current of V1 (= -10/2k flowing P->N? the
	// source supplies 5 mA out of node in, so the branch current is -5 mA
	// following the P->N convention... verify via residual = 0 instead).
	x := []float64{10, 5, -5e-3}
	_, r := loadAt(t, c, x, 0)
	for i, v := range r {
		if math.Abs(v) > 1e-9 {
			t.Fatalf("residual[%d] = %g at exact solution (r=%v)", i, v, r)
		}
	}
}

func TestVSourceBranchCurrentSign(t *testing.T) {
	// 10 V across a single 1 kΩ resistor: i(R) = 10 mA from in to gnd, so
	// the source branch current (flowing P->N inside the source) is -10 mA.
	c := circuit.New("vr")
	in := c.Node("in")
	c.Add(NewVSource("V1", in, circuit.Ground, DC(10)))
	c.Add(NewResistor("R1", in, circuit.Ground, 1e3))
	x := []float64{10, -10e-3}
	_, r := loadAt(t, c, x, 0)
	for i, v := range r {
		if math.Abs(v) > 1e-12 {
			t.Fatalf("residual[%d] = %g", i, v)
		}
	}
}

func TestCapacitorChargeAndJacobian(t *testing.T) {
	c := circuit.New("rc")
	n1 := c.Node("1")
	c.Add(NewISource("I1", circuit.Ground, n1, DC(1e-3)))
	c.Add(NewCapacitor("C1", n1, circuit.Ground, 1e-6))
	c.Add(NewResistor("R1", n1, circuit.Ground, 1e3))
	x := []float64{0.42}
	ws, _ := loadAt(t, c, x, 1e6)
	if got := ws.Q[0]; math.Abs(got-0.42e-6) > 1e-15 {
		t.Fatalf("Q = %g, want 4.2e-7", got)
	}
	// J = g + alpha0*C = 1e-3 + 1e6*1e-6 = 1.001.
	if got := ws.M.At(0, 0); math.Abs(got-1.001) > 1e-12 {
		t.Fatalf("J(0,0) = %g, want 1.001", got)
	}
	if got := ws.B[0]; math.Abs(got-1e-3) > 1e-18 {
		t.Fatalf("B = %g, want 1e-3", got)
	}
}

func TestInductorDCShort(t *testing.T) {
	// V --L-- R to ground. In DC (alpha0=0) the inductor is a short: the
	// exact solution has v(mid) = v(in), i = v/R.
	c := circuit.New("lr")
	in := c.Node("in")
	mid := c.Node("mid")
	c.Add(NewVSource("V1", in, circuit.Ground, DC(2)))
	c.Add(NewInductor("L1", in, mid, 1e-3))
	c.Add(NewResistor("R1", mid, circuit.Ground, 100))
	// x = [v_in, v_mid, iV, iL]  (branches in device order: V then L)
	x := []float64{2, 2, -0.02, 0.02}
	_, r := loadAt(t, c, x, 0)
	for i, v := range r {
		if math.Abs(v) > 1e-12 {
			t.Fatalf("residual[%d] = %g (r=%v)", i, v, r)
		}
	}
}

func TestInductorFluxStamp(t *testing.T) {
	c := circuit.New("l")
	in := c.Node("in")
	c.Add(NewISource("I1", circuit.Ground, in, DC(1)))
	l := NewInductor("L1", in, circuit.Ground, 2e-3)
	c.Add(l)
	sys, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	ws := sys.NewWorkspace()
	x := []float64{1.5, 0.25}
	ws.Load(x, circuit.LoadParams{Alpha0: 1000, SrcScale: 1})
	// Q on the branch row is −L·i = −2e-3·0.25.
	if got := ws.Q[l.BranchIndex()]; math.Abs(got-(-5e-4)) > 1e-15 {
		t.Fatalf("flux Q = %g, want -5e-4", got)
	}
	// Branch Jacobian diagonal gets alpha0·(−L).
	if got := ws.M.At(l.BranchIndex(), l.BranchIndex()); math.Abs(got-(-2)) > 1e-12 {
		t.Fatalf("J(br,br) = %g, want -2", got)
	}
}

func TestVCVSAndVCCS(t *testing.T) {
	// VCVS with gain 3 amplifying a 1 V source across a load; VCCS feeding
	// a resistor. Verify residual at the analytic solution.
	c := circuit.New("ctrl")
	inp := c.Node("in")
	out := c.Node("out")
	oi := c.Node("oi")
	c.Add(NewVSource("V1", inp, circuit.Ground, DC(1)))
	c.Add(NewVCVS("E1", out, circuit.Ground, inp, circuit.Ground, 3))
	c.Add(NewResistor("RL", out, circuit.Ground, 1e3))
	c.Add(NewVCCS("G1", circuit.Ground, oi, inp, circuit.Ground, 2e-3))
	c.Add(NewResistor("RG", oi, circuit.Ground, 1e3))
	// v(out) = 3, iE = -3 mA; VCCS pushes 2 mA from gnd to oi => v(oi) = 2.
	// x = [in, out, oi, iV1, iE1]
	x := []float64{1, 3, 2, 0, -3e-3}
	_, r := loadAt(t, c, x, 0)
	for i, v := range r {
		if math.Abs(v) > 1e-12 {
			t.Fatalf("residual[%d] = %g (r=%v)", i, v, r)
		}
	}
}

func TestDiodeForwardCurrent(t *testing.T) {
	c := circuit.New("d")
	a := c.Node("a")
	c.Add(NewISource("I1", circuit.Ground, a, DC(1e-3)))
	c.Add(NewDiode("D1", a, circuit.Ground, DefaultDiodeModel(), 1))
	sys, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	ws := sys.NewWorkspace()
	v := 0.6
	x := []float64{v}
	p := circuit.LoadParams{SrcScale: 1, Gmin: 1e-12}
	ws.Load(x, p)
	ws.FlipState()
	ws.Load(x, p)
	want := 1e-14 * (math.Exp(v/VThermal) - 1)
	if got := ws.F[0]; math.Abs(got-want) > 1e-6*want {
		t.Fatalf("diode current = %g, want %g", got, want)
	}
	// Conductance must be I'/V' = IS/VT·exp(v/VT).
	wantG := 1e-14 / VThermal * math.Exp(v/VThermal)
	if got := ws.M.At(0, 0); math.Abs(got-wantG) > 1e-5*wantG {
		t.Fatalf("diode conductance = %g, want %g", got, wantG)
	}
}

func TestDiodeReverseSaturation(t *testing.T) {
	c := circuit.New("d")
	a := c.Node("a")
	c.Add(NewResistor("R1", a, circuit.Ground, 1e6))
	c.Add(NewDiode("D1", a, circuit.Ground, DefaultDiodeModel(), 1))
	sys, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	ws := sys.NewWorkspace()
	ws.Load([]float64{-5}, circuit.LoadParams{SrcScale: 1})
	// Reverse current ≈ −IS plus the R current −5 µA.
	if got := ws.F[0]; math.Abs(got-(-5e-6-1e-14)) > 1e-9 {
		t.Fatalf("reverse F = %g", got)
	}
}

func TestPnjlim(t *testing.T) {
	vt, vcrit := VThermal, 0.7
	// Below vcrit: untouched.
	if got := pnjlim(0.5, 0.1, vt, vcrit); got != 0.5 {
		t.Fatalf("pnjlim below vcrit = %g", got)
	}
	// Big overshoot from a positive vold: logarithmic damping.
	got := pnjlim(5, 0.6, vt, vcrit)
	if got >= 5 || got < 0.6 {
		t.Fatalf("pnjlim(5, 0.6) = %g, want damped into (0.6, 5)", got)
	}
	// Small change: untouched even above vcrit.
	if got := pnjlim(0.75, 0.74, vt, vcrit); got != 0.75 {
		t.Fatalf("small change limited: %g", got)
	}
}

func TestDiodeJacobianFD(t *testing.T) {
	c := circuit.New("dj")
	a := c.Node("a")
	b := c.Node("b")
	c.Add(NewISource("I1", circuit.Ground, a, DC(1e-3)))
	c.Add(NewResistor("R1", a, b, 50))
	model := DiodeModel{IS: 1e-14, N: 1.2, TT: 5e-9, CJ0: 2e-12, VJ: 0.8, M: 0.4}
	c.Add(NewDiode("D1", b, circuit.Ground, model, 2))
	fdJacobianCheck(t, c, []float64{0.67, 0.62}, 1e8)
	// Reverse region and forward-depletion region (v > FC·VJ) as well.
	fdJacobianCheck(t, c, []float64{-1.9, -2.0}, 1e8)
	fdJacobianCheck(t, c, []float64{0.5, 0.45}, 1e8)
}

func TestMOSFETRegions(t *testing.T) {
	model := DefaultMOSModel(NMOS)
	model.GAMMA = 0
	model.LAMBDA = 0
	m := NewMOSFET("M1", 0, 1, 2, 3, model, 10e-6, 1e-6)
	// Cutoff.
	if id, _, _, _ := m.ids(0.3, 1, 0); id != 0 {
		t.Fatalf("cutoff id = %g", id)
	}
	// Saturation: id = KP/2·W/L·vgst².
	id, gm, gds, _ := m.ids(1.7, 2.0, 0)
	wantID := 0.5 * 110e-6 * 10 * (1.7 - 0.7) * (1.7 - 0.7)
	if math.Abs(id-wantID) > 1e-12 {
		t.Fatalf("sat id = %g, want %g", id, wantID)
	}
	if gds != 0 {
		t.Fatalf("sat gds = %g, want 0 (lambda=0)", gds)
	}
	if wantGM := 110e-6 * 10 * 1.0; math.Abs(gm-wantGM) > 1e-12 {
		t.Fatalf("sat gm = %g, want %g", gm, wantGM)
	}
	// Triode: id = KP·W/L·(vgst − vds/2)·vds.
	id, _, gds, _ = m.ids(1.7, 0.4, 0)
	wantID = 110e-6 * 10 * (1.0 - 0.2) * 0.4
	if math.Abs(id-wantID) > 1e-12 {
		t.Fatalf("triode id = %g, want %g", id, wantID)
	}
	if gds <= 0 {
		t.Fatalf("triode gds = %g, want > 0", gds)
	}
	// Continuity at the saturation boundary.
	idLin, _, _, _ := m.ids(1.7, 1.0-1e-9, 0)
	idSat, _, _, _ := m.ids(1.7, 1.0+1e-9, 0)
	if math.Abs(idLin-idSat) > 1e-12 {
		t.Fatalf("discontinuous at vds=vgst: %g vs %g", idLin, idSat)
	}
}

func TestMOSFETBodyEffect(t *testing.T) {
	model := DefaultMOSModel(NMOS)
	m := NewMOSFET("M1", 0, 1, 2, 3, model, 1e-6, 1e-6)
	id0, _, _, _ := m.ids(1.5, 2, 0)
	idRev, _, _, gmbs := m.ids(1.5, 2, -1) // reverse body bias raises vth
	if idRev >= id0 {
		t.Fatalf("reverse body bias should reduce current: %g vs %g", idRev, id0)
	}
	if gmbs <= 0 {
		t.Fatalf("gmbs = %g, want > 0", gmbs)
	}
}

func mosTestCircuit(model MOSModel) (*circuit.Circuit, int) {
	c := circuit.New("mos")
	d := c.Node("d")
	g := c.Node("g")
	s := c.Node("s")
	c.Add(NewVSource("VD", d, circuit.Ground, DC(2)))
	c.Add(NewVSource("VG", g, circuit.Ground, DC(1.5)))
	c.Add(NewResistor("RS", s, circuit.Ground, 100))
	c.Add(NewMOSFET("M1", d, g, s, circuit.Ground, model, 4e-6, 1e-6))
	return c, 5 // d, g, s + 2 branch currents
}

func TestMOSFETJacobianFD(t *testing.T) {
	for _, typ := range []MOSType{NMOS, PMOS} {
		model := DefaultMOSModel(typ)
		model.CBD = 1e-14
		model.CBS = 1e-14
		c, n := mosTestCircuit(model)
		rng := rand.New(rand.NewSource(5))
		for trial := 0; trial < 8; trial++ {
			x := make([]float64, n)
			for i := range x {
				x[i] = rng.NormFloat64() * 1.5
			}
			fdJacobianCheck(t, c, x, 1e7)
		}
	}
}

// Property: the MOSFET channel current is antisymmetric under drain/source
// exchange (our eff-node swap implements the symmetric model).
func TestMOSFETSourceDrainSymmetry(t *testing.T) {
	model := DefaultMOSModel(NMOS)
	c := circuit.New("sym")
	d := c.Node("d")
	g := c.Node("g")
	s := c.Node("s")
	c.Add(NewISource("ID", circuit.Ground, d, DC(0)))
	c.Add(NewISource("IG", circuit.Ground, g, DC(0)))
	c.Add(NewISource("IS", circuit.Ground, s, DC(0)))
	c.Add(NewResistor("Rd", d, circuit.Ground, 1e6))
	c.Add(NewResistor("Rg", g, circuit.Ground, 1e6))
	c.Add(NewResistor("Rs", s, circuit.Ground, 1e6))
	c.Add(NewMOSFET("M1", d, g, s, circuit.Ground, model, 2e-6, 1e-6))
	sys, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	ws := sys.NewWorkspace()
	p := circuit.LoadParams{SrcScale: 1}
	rsub := func(vd, vg, vs float64) float64 {
		ws.Load([]float64{vd, vg, vs}, p)
		// Subtract the resistor's own current to isolate the channel.
		return ws.F[0] - vd/1e6
	}
	fwd := rsub(1.2, 2.0, 0.2) // drain current, vds > 0
	rev := rsub(0.2, 2.0, 1.2) // swapped terminals
	back := func(vd, vg, vs float64) float64 {
		ws.Load([]float64{vd, vg, vs}, p)
		return ws.F[2] - vs/1e6
	}(0.2, 2.0, 1.2)
	_ = rev
	if math.Abs(fwd+(-back)) > 1e-12+1e-9*math.Abs(fwd) {
		t.Fatalf("source/drain symmetry violated: fwd %g, swapped source current %g", fwd, back)
	}
}

func TestPMOSPolarity(t *testing.T) {
	model := DefaultMOSModel(PMOS)
	c := circuit.New("pmos")
	d := c.Node("d")
	g := c.Node("g")
	s := c.Node("s")
	c.Add(NewResistor("Rd", d, circuit.Ground, 1e6))
	c.Add(NewResistor("Rg", g, circuit.Ground, 1e6))
	c.Add(NewResistor("Rs", s, circuit.Ground, 1e6))
	c.Add(NewMOSFET("M1", d, g, s, s, model, 2e-6, 1e-6))
	sys, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	ws := sys.NewWorkspace()
	// PMOS on: source at 3 V, gate at 1 V (vsg = 2 > |vto|), drain at 1 V.
	ws.Load([]float64{1, 1, 3}, circuit.LoadParams{SrcScale: 1})
	chan0 := ws.F[0] - 1.0/1e6
	if chan0 >= 0 {
		t.Fatalf("PMOS drain current should flow into the drain node (negative F), got %g", chan0)
	}
	// PMOS off: gate at source potential.
	ws.Load([]float64{1, 3, 3}, circuit.LoadParams{SrcScale: 1})
	if got := ws.F[0] - 1.0/1e6; math.Abs(got) > 1e-12 {
		t.Fatalf("PMOS should be off, channel current %g", got)
	}
}

func TestModelNormalization(t *testing.T) {
	m := DiodeModel{IS: 2e-15}.normalize()
	if m.N != 1 || m.VJ != 1 || m.M != 0.5 || m.FC != 0.5 {
		t.Fatalf("normalize fills defaults: %+v", m)
	}
	if m.IS != 2e-15 {
		t.Fatalf("normalize keeps explicit values: %+v", m)
	}
}

func TestDeviceInterfaceBasics(t *testing.T) {
	r := NewResistor("R1", 0, 1, 50)
	if r.Name() != "R1" || r.Branches() != 0 || r.States() != 0 {
		t.Fatal("resistor metadata")
	}
	v := NewVSource("V1", 0, 1, DC(1))
	if v.Branches() != 1 {
		t.Fatal("vsource branch count")
	}
	l := NewInductor("L1", 0, 1, 1e-9)
	if l.Branches() != 1 {
		t.Fatal("inductor branch count")
	}
	dd := NewDiode("D1", 0, 1, DefaultDiodeModel(), 0)
	if dd.Area != 1 {
		t.Fatal("diode default area")
	}
	if dd.States() != 1 {
		t.Fatal("diode state count")
	}
	m := NewMOSFET("M1", 0, 1, 2, 3, DefaultMOSModel(NMOS), 0, 0)
	if m.W != 1e-6 || m.L != 1e-6 {
		t.Fatal("MOSFET default geometry")
	}
}
