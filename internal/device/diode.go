package device

import (
	"math"

	"wavepipe/internal/circuit"
)

// Thermal voltage kT/q at 300 K.
const VThermal = 0.025852

// DiodeModel is a pn-junction diode model card (SPICE .MODEL D).
type DiodeModel struct {
	IS  float64 // saturation current [A]
	N   float64 // emission coefficient
	TT  float64 // transit time [s] (diffusion charge)
	CJ0 float64 // zero-bias junction capacitance [F]
	VJ  float64 // junction potential [V]
	M   float64 // grading coefficient
	FC  float64 // forward-bias depletion capacitance coefficient
}

// DefaultDiodeModel returns SPICE default diode parameters.
func DefaultDiodeModel() DiodeModel {
	return DiodeModel{IS: 1e-14, N: 1, TT: 0, CJ0: 0, VJ: 1, M: 0.5, FC: 0.5}
}

// normalize fills zero fields with defaults so partially specified model
// cards behave like SPICE.
func (m DiodeModel) normalize() DiodeModel {
	d := DefaultDiodeModel()
	if m.IS > 0 {
		d.IS = m.IS
	}
	if m.N > 0 {
		d.N = m.N
	}
	if m.TT > 0 {
		d.TT = m.TT
	}
	if m.CJ0 > 0 {
		d.CJ0 = m.CJ0
	}
	if m.VJ > 0 {
		d.VJ = m.VJ
	}
	if m.M > 0 {
		d.M = m.M
	}
	if m.FC > 0 {
		d.FC = m.FC
	}
	return d
}

// Diode is a pn-junction diode from P (anode) to N (cathode).
type Diode struct {
	Inst  string
	P, N  int
	Model DiodeModel
	Area  float64

	vcrit              float64
	state              int // state slot: limited junction voltage of the previous iterate
	spp, spn, snp, snn int
}

// NewDiode returns a diode instance; area scales IS, CJ0 (1 when zero).
func NewDiode(name string, p, n int, model DiodeModel, area float64) *Diode {
	if area <= 0 {
		area = 1
	}
	m := model.normalize()
	nvt := m.N * VThermal
	return &Diode{
		Inst: name, P: p, N: n, Model: m, Area: area,
		vcrit: nvt * math.Log(nvt/(math.Sqrt2*m.IS*area)),
	}
}

// Name implements circuit.Device.
func (d *Diode) Name() string { return d.Inst }

// Branches implements circuit.Device.
func (d *Diode) Branches() int { return 0 }

// States implements circuit.Device.
func (d *Diode) States() int { return 1 }

// Bind implements circuit.Device.
func (d *Diode) Bind(_, state0 int) { d.state = state0 }

// Reserve implements circuit.Device.
func (d *Diode) Reserve(r *circuit.Reserver) {
	d.spp = r.J(d.P, d.P)
	d.spn = r.J(d.P, d.N)
	d.snp = r.J(d.N, d.P)
	d.snn = r.J(d.N, d.N)
}

// pnjlim is the classic SPICE junction-voltage limiter: it prevents the
// Newton iterate from overshooting on the exponential characteristic.
func pnjlim(vnew, vold, vt, vcrit float64) float64 {
	if vnew <= vcrit || math.Abs(vnew-vold) <= 2*vt {
		return vnew
	}
	if vold > 0 {
		arg := 1 + (vnew-vold)/vt
		if arg > 0 {
			return vold + vt*math.Log(arg)
		}
		return vcrit
	}
	return vt * math.Log(vnew/vt)
}

// Eval implements circuit.Device.
func (d *Diode) Eval(e *circuit.EvalCtx) {
	m := d.Model
	nvt := m.N * VThermal
	vact := e.V(d.P) - e.V(d.N)
	v := vact
	if !e.NoLimit {
		v = pnjlim(vact, e.SPrev[d.state], nvt, d.vcrit)
		if v != vact {
			e.Limited = true
		}
	}
	e.SNext[d.state] = v

	is := m.IS * d.Area
	var id, gd float64
	if v >= -5*nvt {
		ev := math.Exp(v / nvt)
		id = is * (ev - 1)
		gd = is * ev / nvt
	} else {
		id = -is
		gd = is / nvt * math.Exp(-5)
	}
	gd += e.Gmin
	id += e.Gmin * v
	// Linearized around the limited voltage: the residual uses
	// i(v_lim) + g·(v_actual − v_lim) so F and J stay consistent.
	ieff := id + gd*(vact-v)

	e.AddF(d.P, ieff)
	e.AddF(d.N, -ieff)
	e.AddJ(d.spp, gd)
	e.AddJ(d.spn, -gd)
	e.AddJ(d.snp, -gd)
	e.AddJ(d.snn, gd)

	// Charge: depletion (with the standard forward-bias linearization
	// above FC·VJ) plus diffusion TT·id.
	if m.CJ0 > 0 || m.TT > 0 {
		cj0 := m.CJ0 * d.Area
		var qj, cj float64
		fcv := m.FC * m.VJ
		if v < fcv {
			arg := 1 - v/m.VJ
			s := math.Pow(arg, -m.M)
			qj = cj0 * m.VJ / (1 - m.M) * (1 - arg*s) // VJ/(1−M)·(1−(1−v/VJ)^{1−M})
			cj = cj0 * s
		} else {
			f1 := m.VJ / (1 - m.M) * (1 - math.Pow(1-m.FC, 1-m.M))
			f2 := math.Pow(1-m.FC, 1+m.M)
			f3 := 1 - m.FC*(1+m.M)
			qj = cj0 * (f1 + (f3*(v-fcv)+m.M/(2*m.VJ)*(v*v-fcv*fcv))/f2)
			cj = cj0 / f2 * (f3 + m.M*v/m.VJ)
		}
		qd := m.TT * id
		cd := m.TT * gd
		q := qj + qd
		c := cj + cd
		e.AddQ(d.P, q)
		e.AddQ(d.N, -q)
		e.AddJQ(d.spp, c)
		e.AddJQ(d.spn, -c)
		e.AddJQ(d.snp, -c)
		e.AddJQ(d.snn, c)
	}
}
