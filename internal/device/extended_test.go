package device

import (
	"math"
	"math/rand"
	"testing"

	"wavepipe/internal/circuit"
)

func TestBJTForwardActive(t *testing.T) {
	// NPN with base drive through a resistor: Ic ≈ BF·Ib in forward active.
	c := circuit.New("bjt")
	vcc := c.Node("vcc")
	vb := c.Node("vb")
	col := c.Node("col")
	base := c.Node("base")
	c.Add(NewVSource("VCC", vcc, circuit.Ground, DC(5)))
	c.Add(NewVSource("VB", vb, circuit.Ground, DC(1)))
	c.Add(NewResistor("RC", vcc, col, 1e3))
	c.Add(NewResistor("RB", vb, base, 10e3))
	c.Add(NewBJT("Q1", col, base, circuit.Ground, DefaultBJTModel(NPN), 1))
	sys, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	ws := sys.NewWorkspace()
	// Converge by brute force: simple damped fixed-point via the dcop path
	// would be cleaner but this package cannot import dcop; iterate Newton
	// manually through the workspace.
	x := make([]float64, sys.N)
	r := make([]float64, sys.N)
	dx := make([]float64, sys.N)
	p := circuit.LoadParams{SrcScale: 1, Gmin: 1e-12}
	for iter := 0; iter < 200; iter++ {
		p.FirstIter = iter == 0
		ws.Load(x, p)
		ws.Residual(0, nil, r)
		if err := ws.Solver.Factorize(); err != nil {
			t.Fatal(err)
		}
		if err := ws.Solver.Solve(r, dx); err != nil {
			t.Fatal(err)
		}
		done := true
		for i := range x {
			d := math.Max(-0.3, math.Min(0.3, dx[i]))
			x[i] -= d
			if math.Abs(d) > 1e-9 {
				done = false
			}
		}
		ws.FlipState()
		if done && !ws.Limited {
			break
		}
	}
	vbe := x[base]
	if vbe < 0.55 || vbe > 0.85 {
		t.Fatalf("vbe = %g", vbe)
	}
	ib := (1 - vbe) / 10e3
	ic := (5 - x[col]) / 1e3
	if beta := ic / ib; beta < 80 || beta > 120 {
		t.Fatalf("measured beta = %g, want ≈100 (ib=%g ic=%g)", beta, ib, ic)
	}
	// Forward active: collector well above saturation.
	if x[col] < 0.5 {
		t.Fatalf("v(col) = %g: saturated", x[col])
	}
}

func TestBJTJacobianFD(t *testing.T) {
	for _, typ := range []BJTType{NPN, PNP} {
		model := DefaultBJTModel(typ)
		model.VAF = 80
		model.TF = 1e-10
		model.CJE = 1e-12
		model.CJC = 0.5e-12
		c := circuit.New("bjtfd")
		col := c.Node("c")
		base := c.Node("b")
		em := c.Node("e")
		c.Add(NewResistor("R1", col, circuit.Ground, 1e4))
		c.Add(NewResistor("R2", base, circuit.Ground, 1e4))
		c.Add(NewResistor("R3", em, circuit.Ground, 1e4))
		c.Add(NewBJT("Q1", col, base, em, model, 2))
		rng := rand.New(rand.NewSource(11))
		for trial := 0; trial < 6; trial++ {
			x := []float64{rng.NormFloat64(), 0.4 * rng.NormFloat64(), 0.4 * rng.NormFloat64()}
			fdJacobianCheck(t, c, x, 1e8)
		}
	}
}

func TestCCCSAndCCVS(t *testing.T) {
	// V1 pushes 1 mA through R1; F1 mirrors 2× that current into R2;
	// H1 produces 500·i(V1) volts across R3.
	c := circuit.New("ctrl")
	a := c.Node("a")
	o1 := c.Node("o1")
	o2 := c.Node("o2")
	v1 := NewVSource("V1", a, circuit.Ground, DC(1))
	c.Add(v1)
	c.Add(NewResistor("R1", a, circuit.Ground, 1e3))
	c.Add(NewCCCS("F1", circuit.Ground, o1, v1, 2))
	c.Add(NewResistor("R2", o1, circuit.Ground, 1e3))
	c.Add(NewCCVS("H1", o2, circuit.Ground, v1, 500))
	c.Add(NewResistor("R3", o2, circuit.Ground, 1e3))
	// i(V1) = −1 mA (P→N convention). F1 pushes 2·i from gnd to o1:
	// v(o1) = −2·(−1e−3)·1e3... work it out via the residual at the
	// analytic solution instead.
	// x = [a, o1, o2, iV1, iH1]
	x := []float64{1, 2e-3 * 1e3 * -1 * -1, 500 * -1e-3, -1e-3, 0.5 / 1e3}
	// v(o1): current 2·iV1 = −2 mA flows gnd→o1 through the source, i.e.
	// −2 mA is injected into o1 ⇒ v(o1) = −2 V... recompute:
	x[1] = -2
	// H1: v(o2) = 500·(−1e−3) = −0.5 V; its branch current through R3 is
	// v/R = −0.5 mA flowing out of o2 ⇒ iH1 = +0.5 mA (P→N).
	x[2] = -0.5
	x[4] = 0.5e-3
	_, r := loadAt(t, c, x, 0)
	for i, v := range r {
		if math.Abs(v) > 1e-9 {
			t.Fatalf("residual[%d] = %g (r=%v)", i, v, r)
		}
	}
}

func TestSwitchTransitions(t *testing.T) {
	m := DefaultSwitchModel()
	m.VT = 1
	m.DV = 0.05
	sw := NewSwitch("S1", 0, 1, 2, 3, m)
	gOff, _ := sw.conductance(0)
	gOn, _ := sw.conductance(2)
	if math.Abs(gOff-1e-9) > 1e-12 {
		t.Fatalf("off conductance = %g", gOff)
	}
	if math.Abs(gOn-1) > 1e-9 {
		t.Fatalf("on conductance = %g", gOn)
	}
	// Monotone and smooth through the transition.
	prev := 0.0
	for vc := 0.9; vc <= 1.1; vc += 0.005 {
		g, dg := sw.conductance(vc)
		if g < prev {
			t.Fatalf("conductance not monotone at vc=%g", vc)
		}
		if dg < 0 {
			t.Fatalf("negative slope at vc=%g", vc)
		}
		prev = g
	}
}

func TestSwitchJacobianFD(t *testing.T) {
	c := circuit.New("sw")
	a := c.Node("a")
	b := c.Node("b")
	ctl := c.Node("ctl")
	c.Add(NewISource("I1", circuit.Ground, a, DC(1e-3)))
	c.Add(NewResistor("R1", a, circuit.Ground, 1e4))
	c.Add(NewResistor("R2", b, circuit.Ground, 1e3))
	c.Add(NewResistor("R3", ctl, circuit.Ground, 1e3))
	m := DefaultSwitchModel()
	m.VT = 0.5
	m.DV = 0.2
	c.Add(NewSwitch("S1", a, b, ctl, circuit.Ground, m))
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 8; trial++ {
		x := []float64{rng.NormFloat64(), rng.NormFloat64(), 0.5 + 0.3*rng.NormFloat64()}
		fdJacobianCheck(t, c, x, 1e6)
	}
}

func TestMutualInductanceCoupling(t *testing.T) {
	// Ideal-ish transformer: drive L1 with a sine; k=0.99 coupling into L2
	// loaded by a resistor. Check the flux stamps directly.
	c := circuit.New("xfmr")
	p := c.Node("p")
	s := c.Node("s")
	l1 := NewInductor("L1", p, circuit.Ground, 1e-3)
	l2 := NewInductor("L2", s, circuit.Ground, 4e-3) // 2:1 turns ratio
	c.Add(NewISource("I1", circuit.Ground, p, DC(0)))
	c.Add(NewResistor("Rp", p, circuit.Ground, 1e3))
	c.Add(l1)
	c.Add(l2)
	c.Add(NewResistor("RL", s, circuit.Ground, 50))
	k := 0.9
	c.Add(NewMutual("K1", l1, l2, k))
	sys, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	ws := sys.NewWorkspace()
	x := make([]float64, sys.N)
	x[l1.BranchIndex()] = 2e-3
	x[l2.BranchIndex()] = -1e-3
	ws.Load(x, circuit.LoadParams{Alpha0: 1e6, SrcScale: 1})
	m := k * math.Sqrt(1e-3*4e-3)
	wantQ1 := -1e-3*2e-3 - m*(-1e-3)
	wantQ2 := -4e-3*(-1e-3) - m*2e-3
	if math.Abs(ws.Q[l1.BranchIndex()]-wantQ1) > 1e-12 {
		t.Fatalf("flux1 = %g, want %g", ws.Q[l1.BranchIndex()], wantQ1)
	}
	if math.Abs(ws.Q[l2.BranchIndex()]-wantQ2) > 1e-12 {
		t.Fatalf("flux2 = %g, want %g", ws.Q[l2.BranchIndex()], wantQ2)
	}
	// Off-diagonal JQ entries = alpha0·(−M).
	if got := ws.M.At(l1.BranchIndex(), l2.BranchIndex()); math.Abs(got-(-1e6*m)) > 1e-3 {
		t.Fatalf("J12 = %g, want %g", got, -1e6*m)
	}
}

func TestEKVRegions(t *testing.T) {
	model := DefaultEKVModel(NMOS)
	model.LAMBDA = 0
	m := NewMOSFETEKV("M1", 0, 1, 2, 3, model, 10e-6, 1e-6)
	_ = m
	// Strong inversion saturation: Id ≈ n·β/2 · (Vp−Vs)²·(2/(n... use the
	// asymptotic form F(u) → (u/2)² for large u:
	// Id → 2nβVt²·((vp−vs)/2Vt)² = nβ(vp−vs)²/2.
	eval := func(vg, vd, vs float64) float64 {
		c := circuit.New("ekv")
		dN := c.Node("d")
		gN := c.Node("g")
		sN := c.Node("s")
		c.Add(NewResistor("Rd", dN, circuit.Ground, 1e6))
		c.Add(NewResistor("Rg", gN, circuit.Ground, 1e6))
		c.Add(NewResistor("Rs", sN, circuit.Ground, 1e6))
		c.Add(NewMOSFETEKV("M1", dN, gN, sN, circuit.Ground, model, 10e-6, 1e-6))
		sys, err := c.Build()
		if err != nil {
			t.Fatal(err)
		}
		ws := sys.NewWorkspace()
		ws.Load([]float64{vd, vg, vs}, circuit.LoadParams{SrcScale: 1})
		return ws.F[0] - vd/1e6
	}
	idSat := eval(1.5, 2.0, 0)
	vp := (1.5 - 0.5) / 1.35
	want := 1.35 * 110e-6 * 10 * vp * vp / 2
	if math.Abs(idSat-want) > 0.1*want {
		t.Fatalf("EKV saturation current = %g, want ≈%g", idSat, want)
	}
	// Deep subthreshold: exponential in vg with slope n·Vt per e-fold.
	i1 := eval(0.25, 0.2, 0)
	i2 := eval(0.25+1.35*VThermal, 0.2, 0)
	if ratio := i2 / i1; ratio < 2.2 || ratio > 3.2 {
		t.Fatalf("subthreshold slope ratio = %g, want ≈e", ratio)
	}
	// Symmetry: swapping drain and source negates the current.
	fwd := eval(2.0, 1.0, 0.2)
	rev := eval(2.0, 0.2, 1.0)
	if math.Abs(fwd+rev) > 1e-9*math.Abs(fwd) {
		t.Fatalf("EKV not symmetric: %g vs %g", fwd, rev)
	}
}

func TestEKVJacobianFD(t *testing.T) {
	for _, typ := range []MOSType{NMOS, PMOS} {
		model := DefaultEKVModel(typ)
		c := circuit.New("ekvfd")
		dN := c.Node("d")
		gN := c.Node("g")
		sN := c.Node("s")
		bN := c.Node("b")
		c.Add(NewResistor("Rd", dN, circuit.Ground, 1e4))
		c.Add(NewResistor("Rg", gN, circuit.Ground, 1e4))
		c.Add(NewResistor("Rs", sN, circuit.Ground, 1e4))
		c.Add(NewResistor("Rb", bN, circuit.Ground, 1e4))
		c.Add(NewMOSFETEKV("M1", dN, gN, sN, bN, model, 4e-6, 1e-6))
		rng := rand.New(rand.NewSource(21))
		for trial := 0; trial < 8; trial++ {
			x := make([]float64, 4)
			for i := range x {
				x[i] = rng.NormFloat64()
			}
			fdJacobianCheck(t, c, x, 1e7)
		}
	}
}

func TestSoftplusSqStability(t *testing.T) {
	for _, u := range []float64{-500, -100, -10, 0, 10, 100, 500} {
		f, df := softplusSq(u)
		if math.IsNaN(f) || math.IsInf(f, 0) || math.IsNaN(df) || math.IsInf(df, 0) {
			t.Fatalf("softplusSq(%g) = %g, %g", u, f, df)
		}
		if f < 0 || df < 0 {
			t.Fatalf("softplusSq(%g) negative: %g, %g", u, f, df)
		}
	}
	// Asymptotics: F(u) → (u/2)² for large u.
	f, _ := softplusSq(100)
	if math.Abs(f-2500) > 1 {
		t.Fatalf("large-u asymptote: %g", f)
	}
}
