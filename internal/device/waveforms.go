// Package device implements the circuit element models: passive elements,
// independent and controlled sources, the pn-junction diode and the Level-1
// MOSFET. Models are stateless with respect to evaluation — all mutable
// per-instance state (junction limiting history) lives in per-worker state
// vectors supplied through the evaluation context — so the same device
// instances can be evaluated concurrently at different time points, which is
// what WavePipe does.
package device

import "math"

// Waveform describes the time dependence of an independent source.
type Waveform interface {
	// At returns the source value at time t (t >= 0; DC analyses use t = 0).
	At(t float64) float64
	// Breakpoints returns times at which the waveform has slope
	// discontinuities inside [0, stop); the transient engines cut time
	// steps at breakpoints so sharp edges are never stepped over.
	Breakpoints(stop float64) []float64
}

// DC is a constant waveform.
type DC float64

// At implements Waveform.
func (d DC) At(float64) float64 { return float64(d) }

// Breakpoints implements Waveform.
func (d DC) Breakpoints(float64) []float64 { return nil }

// Pulse is the SPICE PULSE(v1 v2 td tr tf pw per) waveform.
type Pulse struct {
	V1, V2 float64 // initial and pulsed value
	Delay  float64 // td
	Rise   float64 // tr
	Fall   float64 // tf
	Width  float64 // pw
	Period float64 // per (0 disables repetition)
}

// At implements Waveform.
func (p Pulse) At(t float64) float64 {
	if t < p.Delay {
		return p.V1
	}
	tl := t - p.Delay
	if p.Period > 0 {
		tl = math.Mod(tl, p.Period)
	}
	// Left-continuous at instantaneous edges: the sample landing exactly on
	// a zero-width edge's breakpoint belongs to the segment before the jump
	// (the transient engines step TO breakpoints to finish the old segment).
	switch {
	case tl < p.Rise || (tl == p.Rise && p.Rise == 0 && tl == 0):
		if p.Rise == 0 {
			return p.V1
		}
		return p.V1 + (p.V2-p.V1)*tl/p.Rise
	case tl <= p.Rise+p.Width:
		return p.V2
	case tl < p.Rise+p.Width+p.Fall || (p.Fall == 0 && tl == p.Rise+p.Width):
		if p.Fall == 0 {
			return p.V1
		}
		return p.V2 + (p.V1-p.V2)*(tl-p.Rise-p.Width)/p.Fall
	default:
		return p.V1
	}
}

// Breakpoints implements Waveform.
func (p Pulse) Breakpoints(stop float64) []float64 {
	var bps []float64
	period := p.Period
	edges := []float64{0, p.Rise, p.Rise + p.Width, p.Rise + p.Width + p.Fall}
	for start := p.Delay; start < stop; start += period {
		for _, e := range edges {
			if bt := start + e; bt > 0 && bt < stop {
				bps = append(bps, bt)
			}
		}
		if period <= 0 {
			break
		}
	}
	return bps
}

// Sin is the SPICE SIN(vo va freq td theta) waveform.
type Sin struct {
	Offset, Amplitude, Freq float64
	Delay, Damping          float64
}

// At implements Waveform.
func (s Sin) At(t float64) float64 {
	if t < s.Delay {
		return s.Offset
	}
	tl := t - s.Delay
	return s.Offset + s.Amplitude*math.Exp(-tl*s.Damping)*math.Sin(2*math.Pi*s.Freq*tl)
}

// Breakpoints implements Waveform.
func (s Sin) Breakpoints(stop float64) []float64 {
	if s.Delay > 0 && s.Delay < stop {
		return []float64{s.Delay}
	}
	return nil
}

// PWL is the SPICE piecewise-linear waveform: value linearly interpolated
// between (Times[i], Values[i]) samples, clamped at the ends.
type PWL struct {
	Times  []float64
	Values []float64
}

// At implements Waveform.
func (p PWL) At(t float64) float64 {
	n := len(p.Times)
	if n == 0 {
		return 0
	}
	if t <= p.Times[0] {
		return p.Values[0]
	}
	if t >= p.Times[n-1] {
		return p.Values[n-1]
	}
	// Linear scan: PWL sources in decks are short.
	for i := 1; i < n; i++ {
		if t <= p.Times[i] {
			f := (t - p.Times[i-1]) / (p.Times[i] - p.Times[i-1])
			return p.Values[i-1] + f*(p.Values[i]-p.Values[i-1])
		}
	}
	return p.Values[n-1]
}

// Breakpoints implements Waveform.
func (p PWL) Breakpoints(stop float64) []float64 {
	var bps []float64
	for _, t := range p.Times {
		if t > 0 && t < stop {
			bps = append(bps, t)
		}
	}
	return bps
}

// Exp is the SPICE EXP(v1 v2 td1 tau1 td2 tau2) waveform.
type Exp struct {
	V1, V2    float64
	TD1, Tau1 float64
	TD2, Tau2 float64
}

// At implements Waveform.
func (e Exp) At(t float64) float64 {
	v := e.V1
	if t >= e.TD1 && e.Tau1 > 0 {
		v += (e.V2 - e.V1) * (1 - math.Exp(-(t-e.TD1)/e.Tau1))
	} else if t >= e.TD1 {
		v = e.V2
	}
	if t >= e.TD2 && e.Tau2 > 0 {
		v += (e.V1 - e.V2) * (1 - math.Exp(-(t-e.TD2)/e.Tau2))
	} else if t >= e.TD2 {
		v += e.V1 - e.V2
	}
	return v
}

// Breakpoints implements Waveform.
func (e Exp) Breakpoints(stop float64) []float64 {
	var bps []float64
	for _, td := range []float64{e.TD1, e.TD2} {
		if td > 0 && td < stop {
			bps = append(bps, td)
		}
	}
	return bps
}
