package device

import (
	"math"

	"wavepipe/internal/circuit"
)

// CCCS is a current-controlled current source (SPICE F element): a current
// Gain·i(Ctrl) flows from P to N, where Ctrl is the controlling voltage
// source. The branch index is resolved at Reserve time, after Build has
// assigned it.
type CCCS struct {
	Inst string
	P, N int
	Ctrl *VSource
	Gain float64

	ctrlBr   int
	spc, snc int
}

// NewCCCS returns a CCCS controlled by the given voltage source's current.
func NewCCCS(name string, p, n int, ctrl *VSource, gain float64) *CCCS {
	return &CCCS{Inst: name, P: p, N: n, Ctrl: ctrl, Gain: gain}
}

// Name implements circuit.Device.
func (d *CCCS) Name() string { return d.Inst }

// Branches implements circuit.Device.
func (d *CCCS) Branches() int { return 0 }

// States implements circuit.Device.
func (d *CCCS) States() int { return 0 }

// Bind implements circuit.Device.
func (d *CCCS) Bind(int, int) {}

// Reserve implements circuit.Device.
func (d *CCCS) Reserve(r *circuit.Reserver) {
	d.ctrlBr = d.Ctrl.BranchIndex()
	d.spc = r.J(d.P, d.ctrlBr)
	d.snc = r.J(d.N, d.ctrlBr)
}

// Eval implements circuit.Device.
func (d *CCCS) Eval(e *circuit.EvalCtx) {
	i := d.Gain * e.X[d.ctrlBr]
	e.AddF(d.P, i)
	e.AddF(d.N, -i)
	e.AddJ(d.spc, d.Gain)
	e.AddJ(d.snc, -d.Gain)
}

// CCVS is a current-controlled voltage source (SPICE H element):
// v(P) − v(N) = Gain · i(Ctrl), with its own branch current unknown.
type CCVS struct {
	Inst string
	P, N int
	Ctrl *VSource
	Gain float64

	br, ctrlBr              int
	spb, snb, sbp, sbn, sbc int
}

// NewCCVS returns a CCVS controlled by the given voltage source's current.
func NewCCVS(name string, p, n int, ctrl *VSource, gain float64) *CCVS {
	return &CCVS{Inst: name, P: p, N: n, Ctrl: ctrl, Gain: gain}
}

// Name implements circuit.Device.
func (d *CCVS) Name() string { return d.Inst }

// Branches implements circuit.Device.
func (d *CCVS) Branches() int { return 1 }

// States implements circuit.Device.
func (d *CCVS) States() int { return 0 }

// Bind implements circuit.Device.
func (d *CCVS) Bind(branch0, _ int) { d.br = branch0 }

// BranchIndex returns the solution-vector index of the source current.
func (d *CCVS) BranchIndex() int { return d.br }

// Reserve implements circuit.Device.
func (d *CCVS) Reserve(r *circuit.Reserver) {
	d.ctrlBr = d.Ctrl.BranchIndex()
	d.spb = r.J(d.P, d.br)
	d.snb = r.J(d.N, d.br)
	d.sbp = r.J(d.br, d.P)
	d.sbn = r.J(d.br, d.N)
	d.sbc = r.J(d.br, d.ctrlBr)
}

// Eval implements circuit.Device.
func (d *CCVS) Eval(e *circuit.EvalCtx) {
	i := e.X[d.br]
	e.AddF(d.P, i)
	e.AddF(d.N, -i)
	e.AddJ(d.spb, 1)
	e.AddJ(d.snb, -1)
	e.AddF(d.br, e.V(d.P)-e.V(d.N)-d.Gain*e.X[d.ctrlBr])
	e.AddJ(d.sbp, 1)
	e.AddJ(d.sbn, -1)
	e.AddJ(d.sbc, -d.Gain)
}

// SwitchModel parameterizes a voltage-controlled switch.
type SwitchModel struct {
	RON  float64 // on resistance [Ω]
	ROFF float64 // off resistance [Ω]
	VT   float64 // threshold control voltage [V]
	DV   float64 // transition half-width [V]
}

// DefaultSwitchModel returns SPICE-like switch defaults with a smooth
// transition (the hysteretic SPICE switch is replaced by a continuously
// differentiable log-resistance interpolation — state-free, so it is safe
// under WavePipe's concurrent evaluation).
func DefaultSwitchModel() SwitchModel {
	return SwitchModel{RON: 1, ROFF: 1e9, VT: 0, DV: 0.1}
}

// Switch is a voltage-controlled smooth switch between P and N, controlled
// by v(CP) − v(CN).
type Switch struct {
	Inst         string
	P, N, CP, CN int
	Model        SwitchModel

	lnGon, lnGoff          float64
	spp, spn, snp, snn     int
	spcp, spcn, sncp, sncn int
}

// NewSwitch returns a switch instance.
func NewSwitch(name string, p, n, cp, cn int, m SwitchModel) *Switch {
	if m.RON <= 0 {
		m.RON = 1
	}
	if m.ROFF <= 0 {
		m.ROFF = 1e9
	}
	if m.DV <= 0 {
		m.DV = 0.1
	}
	return &Switch{
		Inst: name, P: p, N: n, CP: cp, CN: cn, Model: m,
		lnGon: math.Log(1 / m.RON), lnGoff: math.Log(1 / m.ROFF),
	}
}

// Name implements circuit.Device.
func (d *Switch) Name() string { return d.Inst }

// Branches implements circuit.Device.
func (d *Switch) Branches() int { return 0 }

// States implements circuit.Device.
func (d *Switch) States() int { return 0 }

// Bind implements circuit.Device.
func (d *Switch) Bind(int, int) {}

// Reserve implements circuit.Device.
func (d *Switch) Reserve(r *circuit.Reserver) {
	d.spp = r.J(d.P, d.P)
	d.spn = r.J(d.P, d.N)
	d.snp = r.J(d.N, d.P)
	d.snn = r.J(d.N, d.N)
	d.spcp = r.J(d.P, d.CP)
	d.spcn = r.J(d.P, d.CN)
	d.sncp = r.J(d.N, d.CP)
	d.sncn = r.J(d.N, d.CN)
}

// conductance returns g(vc) and dg/dvc: a smoothstep between ln(1/ROFF)
// and ln(1/RON) centred on VT with half-width DV.
func (d *Switch) conductance(vc float64) (g, dg float64) {
	m := d.Model
	u := (vc - m.VT + m.DV) / (2 * m.DV)
	var s, ds float64
	switch {
	case u <= 0:
		s, ds = 0, 0
	case u >= 1:
		s, ds = 1, 0
	default:
		s = u * u * (3 - 2*u)
		ds = 6 * u * (1 - u) / (2 * m.DV)
	}
	lng := d.lnGoff + s*(d.lnGon-d.lnGoff)
	g = math.Exp(lng)
	dg = g * ds * (d.lnGon - d.lnGoff)
	return g, dg
}

// Eval implements circuit.Device.
func (d *Switch) Eval(e *circuit.EvalCtx) {
	vc := e.V(d.CP) - e.V(d.CN)
	v := e.V(d.P) - e.V(d.N)
	g, dg := d.conductance(vc)
	i := g * v
	e.AddF(d.P, i)
	e.AddF(d.N, -i)
	e.AddJ(d.spp, g)
	e.AddJ(d.spn, -g)
	e.AddJ(d.snp, -g)
	e.AddJ(d.snn, g)
	// di/dvc = dg·v couples the channel to the control nodes.
	e.AddJ(d.spcp, dg*v)
	e.AddJ(d.spcn, -dg*v)
	e.AddJ(d.sncp, -dg*v)
	e.AddJ(d.sncn, dg*v)
}

// Mutual couples two inductors with mutual inductance M = K·sqrt(L1·L2)
// (SPICE K element). It must be added to the circuit after both inductors.
type Mutual struct {
	Inst   string
	L1, L2 *Inductor
	K      float64

	m        float64
	s12, s21 int
}

// NewMutual returns a mutual-inductance coupling with coefficient k ∈ (0,1].
func NewMutual(name string, l1, l2 *Inductor, k float64) *Mutual {
	return &Mutual{Inst: name, L1: l1, L2: l2, K: k}
}

// Name implements circuit.Device.
func (d *Mutual) Name() string { return d.Inst }

// Branches implements circuit.Device.
func (d *Mutual) Branches() int { return 0 }

// States implements circuit.Device.
func (d *Mutual) States() int { return 0 }

// Bind implements circuit.Device.
func (d *Mutual) Bind(int, int) {
	d.m = d.K * math.Sqrt(d.L1.L*d.L2.L)
}

// Reserve implements circuit.Device.
func (d *Mutual) Reserve(r *circuit.Reserver) {
	d.s12 = r.J(d.L1.BranchIndex(), d.L2.BranchIndex())
	d.s21 = r.J(d.L2.BranchIndex(), d.L1.BranchIndex())
}

// Eval implements circuit.Device.
func (d *Mutual) Eval(e *circuit.EvalCtx) {
	// Each inductor's branch equation already carries Q = −L·i_self; the
	// coupling adds −M·i_other to each flux.
	i1 := e.X[d.L1.BranchIndex()]
	i2 := e.X[d.L2.BranchIndex()]
	e.AddQ(d.L1.BranchIndex(), -d.m*i2)
	e.AddQ(d.L2.BranchIndex(), -d.m*i1)
	e.AddJQ(d.s12, -d.m)
	e.AddJQ(d.s21, -d.m)
}
