package device

import "wavepipe/internal/circuit"

// LinearStamps implementations: these devices promise the incremental
// assembly engine (internal/circuit/incremental.go) that their F and Q
// stamps are exactly linear in the iterate with constant Jacobians, so their
// contribution can live in the cached linear template. The returned flag
// reports whether the device stamps the source vector B: independent
// sources do (their B is time-varying and re-stamped every load); pure
// passives and controlled sources never touch B.
//
// This is a correctness promise. The finite-difference Jacobian checker in
// jacobian_test.go and the bypass equivalence suite are the safety net; a
// device whose stamps depend nonlinearly on x (or on time outside B) must
// not implement this interface.

// LinearStamps implements circuit.LinearStamper.
func (d *Resistor) LinearStamps() bool { return false }

// LinearStamps implements circuit.LinearStamper.
func (d *Capacitor) LinearStamps() bool { return false }

// LinearStamps implements circuit.LinearStamper.
func (d *Inductor) LinearStamps() bool { return false }

// LinearStamps implements circuit.LinearStamper.
func (d *VSource) LinearStamps() bool { return true }

// LinearStamps implements circuit.LinearStamper.
func (d *ISource) LinearStamps() bool { return true }

// LinearStamps implements circuit.LinearStamper.
func (d *VCVS) LinearStamps() bool { return false }

// LinearStamps implements circuit.LinearStamper.
func (d *VCCS) LinearStamps() bool { return false }

// LinearStamps implements circuit.LinearStamper.
func (d *CCCS) LinearStamps() bool { return false }

// LinearStamps implements circuit.LinearStamper.
func (d *CCVS) LinearStamps() bool { return false }

// LinearStamps implements circuit.LinearStamper.
func (d *Mutual) LinearStamps() bool { return false }

// Compile-time interface conformance checks. The Switch is deliberately
// absent: its conductance is a nonlinear function of the control voltage.
var (
	_ circuit.LinearStamper = (*Resistor)(nil)
	_ circuit.LinearStamper = (*Capacitor)(nil)
	_ circuit.LinearStamper = (*Inductor)(nil)
	_ circuit.LinearStamper = (*VSource)(nil)
	_ circuit.LinearStamper = (*ISource)(nil)
	_ circuit.LinearStamper = (*VCVS)(nil)
	_ circuit.LinearStamper = (*VCCS)(nil)
	_ circuit.LinearStamper = (*CCCS)(nil)
	_ circuit.LinearStamper = (*CCVS)(nil)
	_ circuit.LinearStamper = (*Mutual)(nil)
)
