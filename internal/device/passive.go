package device

import (
	"math"
	"math/cmplx"

	"wavepipe/internal/circuit"
)

// Resistor is a linear two-terminal resistor between nodes P and N.
type Resistor struct {
	Inst string
	P, N int
	R    float64

	g                  float64
	spp, spn, snp, snn int
}

// NewResistor returns a resistor instance. R must be nonzero.
func NewResistor(name string, p, n int, r float64) *Resistor {
	return &Resistor{Inst: name, P: p, N: n, R: r, g: 1 / r}
}

// Name implements circuit.Device.
func (d *Resistor) Name() string { return d.Inst }

// Branches implements circuit.Device.
func (d *Resistor) Branches() int { return 0 }

// States implements circuit.Device.
func (d *Resistor) States() int { return 0 }

// Bind implements circuit.Device.
func (d *Resistor) Bind(int, int) {}

// Reserve implements circuit.Device.
func (d *Resistor) Reserve(r *circuit.Reserver) {
	d.spp = r.J(d.P, d.P)
	d.spn = r.J(d.P, d.N)
	d.snp = r.J(d.N, d.P)
	d.snn = r.J(d.N, d.N)
}

// SensParams exposes the resistance for DC sensitivity analysis.
func (d *Resistor) SensParams() ([]string, []float64) {
	return []string{"r"}, []float64{d.R}
}

// AddDResidual accumulates ∂R/∂r: the resistor current g·(vp−vn) has
// ∂/∂r = −(vp−vn)/r².
func (d *Resistor) AddDResidual(param string, x, out []float64) {
	if param != "r" {
		return
	}
	vp, vn := 0.0, 0.0
	if d.P != circuit.Ground {
		vp = x[d.P]
	}
	if d.N != circuit.Ground {
		vn = x[d.N]
	}
	di := -(vp - vn) / (d.R * d.R)
	if d.P != circuit.Ground {
		out[d.P] += di
	}
	if d.N != circuit.Ground {
		out[d.N] -= di
	}
}

// Eval implements circuit.Device.
func (d *Resistor) Eval(e *circuit.EvalCtx) {
	v := e.V(d.P) - e.V(d.N)
	i := d.g * v
	e.AddF(d.P, i)
	e.AddF(d.N, -i)
	e.AddJ(d.spp, d.g)
	e.AddJ(d.spn, -d.g)
	e.AddJ(d.snp, -d.g)
	e.AddJ(d.snn, d.g)
}

// Capacitor is a linear two-terminal capacitor.
type Capacitor struct {
	Inst string
	P, N int
	C    float64

	spp, spn, snp, snn int
}

// NewCapacitor returns a capacitor instance.
func NewCapacitor(name string, p, n int, c float64) *Capacitor {
	return &Capacitor{Inst: name, P: p, N: n, C: c}
}

// Name implements circuit.Device.
func (d *Capacitor) Name() string { return d.Inst }

// Branches implements circuit.Device.
func (d *Capacitor) Branches() int { return 0 }

// States implements circuit.Device.
func (d *Capacitor) States() int { return 0 }

// Bind implements circuit.Device.
func (d *Capacitor) Bind(int, int) {}

// Reserve implements circuit.Device.
func (d *Capacitor) Reserve(r *circuit.Reserver) {
	d.spp = r.J(d.P, d.P)
	d.spn = r.J(d.P, d.N)
	d.snp = r.J(d.N, d.P)
	d.snn = r.J(d.N, d.N)
}

// Eval implements circuit.Device.
func (d *Capacitor) Eval(e *circuit.EvalCtx) {
	q := d.C * (e.V(d.P) - e.V(d.N))
	e.AddQ(d.P, q)
	e.AddQ(d.N, -q)
	e.AddJQ(d.spp, d.C)
	e.AddJQ(d.spn, -d.C)
	e.AddJQ(d.snp, -d.C)
	e.AddJQ(d.snn, d.C)
}

// Inductor is a linear inductor with a branch current unknown. The branch
// equation is v_p − v_n − dφ/dt = 0 with φ = L·i.
type Inductor struct {
	Inst string
	P, N int
	L    float64

	br                 int
	spb, snb, sbp, sbn int
	sbb                int
}

// NewInductor returns an inductor instance.
func NewInductor(name string, p, n int, l float64) *Inductor {
	return &Inductor{Inst: name, P: p, N: n, L: l}
}

// Name implements circuit.Device.
func (d *Inductor) Name() string { return d.Inst }

// Branches implements circuit.Device.
func (d *Inductor) Branches() int { return 1 }

// States implements circuit.Device.
func (d *Inductor) States() int { return 0 }

// Bind implements circuit.Device.
func (d *Inductor) Bind(branch0, _ int) { d.br = branch0 }

// BranchIndex returns the solution-vector index of the inductor current.
func (d *Inductor) BranchIndex() int { return d.br }

// Reserve implements circuit.Device.
func (d *Inductor) Reserve(r *circuit.Reserver) {
	d.spb = r.J(d.P, d.br)
	d.snb = r.J(d.N, d.br)
	d.sbp = r.J(d.br, d.P)
	d.sbn = r.J(d.br, d.N)
	d.sbb = r.J(d.br, d.br)
}

// Eval implements circuit.Device.
func (d *Inductor) Eval(e *circuit.EvalCtx) {
	i := e.X[d.br]
	// KCL: current i leaves P, enters N.
	e.AddF(d.P, i)
	e.AddF(d.N, -i)
	e.AddJ(d.spb, 1)
	e.AddJ(d.snb, -1)
	// Branch: (v_p − v_n) − dφ/dt = 0 → F = v_p − v_n, Q = −L·i.
	e.AddF(d.br, e.V(d.P)-e.V(d.N))
	e.AddQ(d.br, -d.L*i)
	e.AddJ(d.sbp, 1)
	e.AddJ(d.sbn, -1)
	e.AddJQ(d.sbb, -d.L)
}

// VSource is an independent voltage source with a branch current unknown.
// ACMag/ACPhase carry the small-signal stimulus for AC analysis (SPICE
// "AC mag phase" specification; phase in degrees).
type VSource struct {
	Inst    string
	P, N    int
	W       Waveform
	ACMag   float64
	ACPhase float64

	br                 int
	spb, snb, sbp, sbn int
}

// NewVSource returns a voltage source driving the given waveform.
func NewVSource(name string, p, n int, w Waveform) *VSource {
	return &VSource{Inst: name, P: p, N: n, W: w}
}

// Name implements circuit.Device.
func (d *VSource) Name() string { return d.Inst }

// Branches implements circuit.Device.
func (d *VSource) Branches() int { return 1 }

// States implements circuit.Device.
func (d *VSource) States() int { return 0 }

// Bind implements circuit.Device.
func (d *VSource) Bind(branch0, _ int) { d.br = branch0 }

// BranchIndex returns the solution-vector index of the source current.
func (d *VSource) BranchIndex() int { return d.br }

// SetDC replaces the waveform with a constant (DC sweep support). Not safe
// while a simulation of the same circuit runs concurrently.
func (d *VSource) SetDC(v float64) { d.W = DC(v) }

// Breakpoints exposes the waveform's slope discontinuities to the transient
// engines.
func (d *VSource) Breakpoints(stop float64) []float64 { return d.W.Breakpoints(stop) }

// SensParams exposes the DC source value for sensitivity analysis (only
// meaningful for DC-valued waveforms; time-varying sources report their
// t = 0 value).
func (d *VSource) SensParams() ([]string, []float64) {
	return []string{"dc"}, []float64{d.W.At(0)}
}

// AddDResidual accumulates ∂R/∂V: the branch equation v_p − v_n − V has
// derivative −1 in its own row.
func (d *VSource) AddDResidual(param string, _, out []float64) {
	if param == "dc" {
		out[d.br] -= 1
	}
}

// StampAC implements circuit.ACSource: the branch equation's right-hand
// side receives the phasor stimulus.
func (d *VSource) StampAC(b []complex128) {
	if d.ACMag == 0 {
		return
	}
	b[d.br] += cmplx.Rect(d.ACMag, d.ACPhase*math.Pi/180)
}

// Reserve implements circuit.Device.
func (d *VSource) Reserve(r *circuit.Reserver) {
	d.spb = r.J(d.P, d.br)
	d.snb = r.J(d.N, d.br)
	d.sbp = r.J(d.br, d.P)
	d.sbn = r.J(d.br, d.N)
}

// Eval implements circuit.Device.
func (d *VSource) Eval(e *circuit.EvalCtx) {
	i := e.X[d.br]
	e.AddF(d.P, i)
	e.AddF(d.N, -i)
	e.AddJ(d.spb, 1)
	e.AddJ(d.snb, -1)
	// Branch: v_p − v_n = V(t).
	e.AddF(d.br, e.V(d.P)-e.V(d.N))
	e.AddB(d.br, d.W.At(e.T))
	e.AddJ(d.sbp, 1)
	e.AddJ(d.sbn, -1)
}

// ISource is an independent current source pushing current from P to N
// through itself (SPICE convention). ACMag/ACPhase carry the small-signal
// stimulus for AC analysis.
type ISource struct {
	Inst    string
	P, N    int
	W       Waveform
	ACMag   float64
	ACPhase float64
}

// NewISource returns a current source driving the given waveform.
func NewISource(name string, p, n int, w Waveform) *ISource {
	return &ISource{Inst: name, P: p, N: n, W: w}
}

// Name implements circuit.Device.
func (d *ISource) Name() string { return d.Inst }

// Branches implements circuit.Device.
func (d *ISource) Branches() int { return 0 }

// States implements circuit.Device.
func (d *ISource) States() int { return 0 }

// Bind implements circuit.Device.
func (d *ISource) Bind(int, int) {}

// Reserve implements circuit.Device.
func (d *ISource) Reserve(*circuit.Reserver) {}

// SetDC replaces the waveform with a constant (DC sweep support). Not safe
// while a simulation of the same circuit runs concurrently.
func (d *ISource) SetDC(v float64) { d.W = DC(v) }

// Breakpoints exposes the waveform's slope discontinuities to the transient
// engines.
func (d *ISource) Breakpoints(stop float64) []float64 { return d.W.Breakpoints(stop) }

// SensParams exposes the DC source value for sensitivity analysis.
func (d *ISource) SensParams() ([]string, []float64) {
	return []string{"dc"}, []float64{d.W.At(0)}
}

// AddDResidual accumulates ∂R/∂I for the injected current.
func (d *ISource) AddDResidual(param string, _, out []float64) {
	if param != "dc" {
		return
	}
	if d.P != circuit.Ground {
		out[d.P] += 1
	}
	if d.N != circuit.Ground {
		out[d.N] -= 1
	}
}

// StampAC implements circuit.ACSource.
func (d *ISource) StampAC(b []complex128) {
	if d.ACMag == 0 {
		return
	}
	i := cmplx.Rect(d.ACMag, d.ACPhase*math.Pi/180)
	if d.P != circuit.Ground {
		b[d.P] -= i
	}
	if d.N != circuit.Ground {
		b[d.N] += i
	}
}

// Eval implements circuit.Device.
func (d *ISource) Eval(e *circuit.EvalCtx) {
	i := d.W.At(e.T)
	e.AddB(d.P, -i)
	e.AddB(d.N, i)
}

// VCVS is a voltage-controlled voltage source (SPICE E element):
// v(P) − v(N) = Gain · (v(CP) − v(CN)), with a branch current unknown.
type VCVS struct {
	Inst         string
	P, N, CP, CN int
	Gain         float64

	br                             int
	spb, snb, sbp, sbn, sbcp, sbcn int
}

// NewVCVS returns a VCVS instance.
func NewVCVS(name string, p, n, cp, cn int, gain float64) *VCVS {
	return &VCVS{Inst: name, P: p, N: n, CP: cp, CN: cn, Gain: gain}
}

// Name implements circuit.Device.
func (d *VCVS) Name() string { return d.Inst }

// Branches implements circuit.Device.
func (d *VCVS) Branches() int { return 1 }

// States implements circuit.Device.
func (d *VCVS) States() int { return 0 }

// Bind implements circuit.Device.
func (d *VCVS) Bind(branch0, _ int) { d.br = branch0 }

// Reserve implements circuit.Device.
func (d *VCVS) Reserve(r *circuit.Reserver) {
	d.spb = r.J(d.P, d.br)
	d.snb = r.J(d.N, d.br)
	d.sbp = r.J(d.br, d.P)
	d.sbn = r.J(d.br, d.N)
	d.sbcp = r.J(d.br, d.CP)
	d.sbcn = r.J(d.br, d.CN)
}

// Eval implements circuit.Device.
func (d *VCVS) Eval(e *circuit.EvalCtx) {
	i := e.X[d.br]
	e.AddF(d.P, i)
	e.AddF(d.N, -i)
	e.AddJ(d.spb, 1)
	e.AddJ(d.snb, -1)
	e.AddF(d.br, e.V(d.P)-e.V(d.N)-d.Gain*(e.V(d.CP)-e.V(d.CN)))
	e.AddJ(d.sbp, 1)
	e.AddJ(d.sbn, -1)
	e.AddJ(d.sbcp, -d.Gain)
	e.AddJ(d.sbcn, d.Gain)
}

// VCCS is a voltage-controlled current source (SPICE G element): a current
// Gm · (v(CP) − v(CN)) flows from P to N.
type VCCS struct {
	Inst         string
	P, N, CP, CN int
	Gm           float64

	spcp, spcn, sncp, sncn int
}

// NewVCCS returns a VCCS instance.
func NewVCCS(name string, p, n, cp, cn int, gm float64) *VCCS {
	return &VCCS{Inst: name, P: p, N: n, CP: cp, CN: cn, Gm: gm}
}

// Name implements circuit.Device.
func (d *VCCS) Name() string { return d.Inst }

// Branches implements circuit.Device.
func (d *VCCS) Branches() int { return 0 }

// States implements circuit.Device.
func (d *VCCS) States() int { return 0 }

// Bind implements circuit.Device.
func (d *VCCS) Bind(int, int) {}

// Reserve implements circuit.Device.
func (d *VCCS) Reserve(r *circuit.Reserver) {
	d.spcp = r.J(d.P, d.CP)
	d.spcn = r.J(d.P, d.CN)
	d.sncp = r.J(d.N, d.CP)
	d.sncn = r.J(d.N, d.CN)
}

// Eval implements circuit.Device.
func (d *VCCS) Eval(e *circuit.EvalCtx) {
	i := d.Gm * (e.V(d.CP) - e.V(d.CN))
	e.AddF(d.P, i)
	e.AddF(d.N, -i)
	e.AddJ(d.spcp, d.Gm)
	e.AddJ(d.spcn, -d.Gm)
	e.AddJ(d.sncp, -d.Gm)
	e.AddJ(d.sncn, d.Gm)
}
