package circuit

import (
	"math"
	"sync"
	"testing"
)

// buildStubChain makes a chain of n stub conductances: device i bridges
// node i and node i+1, so adjacent devices conflict (shared node row) and
// non-adjacent ones do not — a circuit with a known two-colorable core.
func buildStubChain(t *testing.T, n int) (*Circuit, *System) {
	t.Helper()
	c := New("chain")
	nodes := make([]int, n+1)
	nodes[0] = Ground
	for i := 1; i <= n; i++ {
		nodes[i] = c.Node(string(rune('a' + i - 1)))
	}
	for i := 0; i < n; i++ {
		c.Add(&stubDevice{name: "S", p: nodes[i+1], n: nodes[i], g: float64(i%5) + 0.5})
	}
	sys, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c, sys
}

// TestColoringPartitionsDevices checks the structural invariants of the
// Build-time coloring: every device lands in exactly one class, and no two
// devices of a class share a node (the chain's only conflict source).
func TestColoringPartitionsDevices(t *testing.T) {
	c, sys := buildStubChain(t, 17)
	classes := sys.ColorClasses()
	if len(classes) < 2 {
		t.Fatalf("chain coloring produced %d classes", len(classes))
	}
	seen := make(map[int]bool)
	for _, class := range classes {
		for _, di := range class {
			if seen[di] {
				t.Fatalf("device %d in two classes", di)
			}
			seen[di] = true
		}
	}
	if len(seen) != len(c.devices) {
		t.Fatalf("coloring covers %d of %d devices", len(seen), len(c.devices))
	}
	// Adjacent chain devices conflict on the shared node and must be split.
	color := make([]int, len(c.devices))
	for cc, class := range classes {
		for _, di := range class {
			color[di] = cc
		}
	}
	for di := 1; di < len(c.devices); di++ {
		if color[di] == color[di-1] {
			t.Fatalf("adjacent devices %d and %d share color %d", di-1, di, color[di])
		}
	}
}

// loadInto runs one Load with the given configuration on a fresh workspace
// and returns it.
func loadInto(sys *System, mode LoadMode, workers int, force bool, x []float64, p LoadParams) *Workspace {
	ws := sys.NewWorkspace()
	if workers > 1 {
		ws.SetLoadWorkers(workers)
		ws.SetLoadMode(mode)
	}
	ws.ForceParallelLoad = force
	ws.Load(x, p)
	return ws
}

func assertStampsEqual(t *testing.T, a, b *Workspace, tol float64, what string) {
	t.Helper()
	diff := func(u, v float64) bool {
		scale := math.Max(1, math.Max(math.Abs(u), math.Abs(v)))
		return math.Abs(u-v) > tol*scale
	}
	for i := range a.F {
		if diff(a.F[i], b.F[i]) || diff(a.Q[i], b.Q[i]) || diff(a.B[i], b.B[i]) {
			t.Fatalf("%s: vector mismatch at row %d", what, i)
		}
	}
	for i := range a.M.Values {
		if diff(a.M.Values[i], b.M.Values[i]) {
			t.Fatalf("%s: matrix mismatch at slot %d: %g vs %g", what, i, a.M.Values[i], b.M.Values[i])
		}
	}
	if a.Limited != b.Limited {
		t.Fatalf("%s: limited flag mismatch", what)
	}
}

// TestColoredLoadMatchesSerial compares the colored direct-stamp assembly
// (both the degraded serial-class-order path and the true parallel path)
// against the plain serial load.
func TestColoredLoadMatchesSerial(t *testing.T) {
	_, sys := buildStubChain(t, 37)
	x := make([]float64, sys.N)
	for i := range x {
		x[i] = 0.1 * float64(i%7)
	}
	p := LoadParams{Alpha0: 1e3, SrcScale: 0.7, NodeGmin: 1e-6}

	serial := loadInto(sys, LoadAuto, 1, false, x, p)
	colored := loadInto(sys, LoadColored, 4, false, x, p)
	parallel := loadInto(sys, LoadColored, 4, true, x, p)
	assertStampsEqual(t, serial, colored, 1e-12, "colored vs serial")
	assertStampsEqual(t, serial, parallel, 1e-12, "parallel colored vs serial")

	// The degraded serial-class-order path and the parallel path accumulate
	// each row in the same class order: bit-identical, not just close.
	for i := range colored.M.Values {
		if colored.M.Values[i] != parallel.M.Values[i] {
			t.Fatalf("colored serial/parallel differ at slot %d", i)
		}
	}
	for i := range colored.F {
		if colored.F[i] != parallel.F[i] || colored.Q[i] != parallel.Q[i] || colored.B[i] != parallel.B[i] {
			t.Fatalf("colored serial/parallel vectors differ at row %d", i)
		}
	}
}

// TestColoredDegenerateFallsBackToSharded builds a star: every device ties
// its own node to the shared hub, so all devices conflict, every class is a
// singleton and the estimated class-parallel speedup is 1 — LoadAuto must
// prefer the sharded path, while forcing LoadColored stays correct.
func TestColoredDegenerateFallsBackToSharded(t *testing.T) {
	c := New("star")
	hub := c.Node("hub")
	for i := 0; i < 12; i++ {
		leaf := c.Node(string(rune('a' + i)))
		c.Add(&stubDevice{name: "S", p: leaf, n: hub, g: 1})
	}
	sys, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	if est := sys.ColoredSpeedupEstimate(4); est > 1.01 {
		t.Fatalf("star speedup estimate = %g, want ~1", est)
	}
	auto := sys.NewWorkspace()
	auto.SetLoadWorkers(4)
	if auto.useColored() {
		t.Fatal("LoadAuto chose colored for a degenerate star coloring")
	}
	x := make([]float64, sys.N)
	for i := range x {
		x[i] = 0.05 * float64(i)
	}
	p := LoadParams{Alpha0: 10, SrcScale: 1}
	serial := loadInto(sys, LoadAuto, 1, false, x, p)
	forced := loadInto(sys, LoadColored, 4, true, x, p)
	assertStampsEqual(t, serial, forced, 1e-12, "forced colored star")
}

// TestColoredLoadConcurrentWorkspaces drives several workspaces through the
// parallel colored path at once, the sharing pattern of the pipeline
// engines; run under -race this checks the barrier discipline.
func TestColoredLoadConcurrentWorkspaces(t *testing.T) {
	_, sys := buildStubChain(t, 24)
	x := make([]float64, sys.N)
	for i := range x {
		x[i] = 0.02 * float64(i%11)
	}
	p := LoadParams{Alpha0: 1e6, SrcScale: 1}
	ref := loadInto(sys, LoadAuto, 1, false, x, p)

	var wg sync.WaitGroup
	results := make([]*Workspace, 6)
	for w := range results {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ws := sys.NewWorkspace()
			ws.SetLoadWorkers(3)
			ws.SetLoadMode(LoadColored)
			ws.ForceParallelLoad = true
			for rep := 0; rep < 25; rep++ {
				ws.Load(x, p)
			}
			results[w] = ws
		}(w)
	}
	wg.Wait()
	for w, ws := range results {
		if ws == nil {
			t.Fatalf("worker %d produced no workspace", w)
		}
		assertStampsEqual(t, ref, ws, 1e-12, "concurrent colored load")
	}
}

// TestColoredSpeedupEstimateChain sanity-checks the profitability estimate
// the LoadAuto policy ranks colorings with: a long two-colorable chain
// should parallelize nearly ideally.
func TestColoredSpeedupEstimateChain(t *testing.T) {
	_, sys := buildStubChain(t, 64)
	if est := sys.ColoredSpeedupEstimate(4); est < 2.5 {
		t.Fatalf("chain estimate at 4 workers = %g, want near 4", est)
	}
	if est := sys.ColoredSpeedupEstimate(1); math.Abs(est-1) > 1e-9 {
		t.Fatalf("single-worker estimate = %g, want 1", est)
	}
}
