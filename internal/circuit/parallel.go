package circuit

import (
	"sync"
	"time"

	"wavepipe/internal/sparse"
)

// shard holds one goroutine's private accumulation buffers for the
// fine-grained parallel device load.
type shard struct {
	m       *sparse.Matrix
	f       []float64
	q       []float64
	b       []float64
	limited bool
	nanos   int64
}

// LoadWorkers > 1 routes Load through the fine-grained parallel path: the
// device list is split across that many goroutines, each accumulating into
// private buffers that are then reduced. This is the "conventional
// finer-grained parallel device model evaluation" baseline the WavePipe
// paper positions itself against.
//
// The reduction cost (nnz + 3·N per worker) is intrinsic to the approach
// and part of what limits its scaling.
func (ws *Workspace) SetLoadWorkers(n int) {
	ws.loadWorkers = n
	if n > 1 && len(ws.shards) < n {
		for len(ws.shards) < n {
			ws.shards = append(ws.shards, &shard{
				m: ws.M.Clone(),
				f: make([]float64, ws.Sys.N),
				q: make([]float64, ws.Sys.N),
				b: make([]float64, ws.Sys.N),
			})
		}
	}
}

// loadParallel performs the sharded assembly. Device state slots are
// disjoint per device, so SNext can be shared across shards.
func (ws *Workspace) loadParallel(x []float64, p LoadParams) {
	start := time.Now()
	ws.M.Zero()
	for i := range ws.F {
		ws.F[i] = 0
		ws.Q[i] = 0
		ws.B[i] = 0
	}
	devices := ws.Sys.Circuit.devices
	nw := ws.loadWorkers
	if nw > len(devices) {
		nw = len(devices)
	}
	var wg sync.WaitGroup
	for s := 0; s < nw; s++ {
		sh := ws.shards[s]
		lo := s * len(devices) / nw
		hi := (s + 1) * len(devices) / nw
		wg.Add(1)
		go func() {
			defer wg.Done()
			shStart := time.Now()
			defer func() { sh.nanos = time.Since(shStart).Nanoseconds() }()
			sh.m.Zero()
			for i := range sh.f {
				sh.f[i] = 0
				sh.q[i] = 0
				sh.b[i] = 0
			}
			ctx := EvalCtx{
				X:         x,
				T:         p.Time,
				Alpha0:    p.Alpha0,
				Gmin:      p.Gmin,
				SrcScale:  p.SrcScale,
				FirstIter: p.FirstIter,
				NoLimit:   p.NoLimit,
				SPrev:     ws.SPrev,
				SNext:     ws.SNext,
				m:         sh.m,
				F:         sh.f,
				Q:         sh.q,
				B:         sh.b,
			}
			for _, d := range devices[lo:hi] {
				d.Eval(&ctx)
			}
			sh.limited = ctx.Limited
		}()
	}
	wg.Wait()
	reduceStart := time.Now()
	var maxShard int64
	for s := 0; s < nw; s++ {
		if ws.shards[s].nanos > maxShard {
			maxShard = ws.shards[s].nanos
		}
	}
	// Reduce.
	ws.Limited = false
	for s := 0; s < nw; s++ {
		sh := ws.shards[s]
		ws.Limited = ws.Limited || sh.limited
		for i, v := range sh.m.Values {
			ws.M.Values[i] += v
		}
		for i := range ws.F {
			ws.F[i] += sh.f[i]
			ws.Q[i] += sh.q[i]
			ws.B[i] += sh.b[i]
		}
	}
	if p.NodeGmin > 0 {
		for i, slot := range ws.Sys.diagSlots {
			ws.M.Add(slot, p.NodeGmin)
			ws.F[i] += p.NodeGmin * x[i]
		}
	}
	ws.applyClamps(x, p)
	ws.injectLoadFault(p)
	ws.LoadWallNanos += time.Since(start).Nanoseconds()
	ws.LoadCritNanos += maxShard + time.Since(reduceStart).Nanoseconds()
}
