// Package circuit provides the modified-nodal-analysis (MNA) backbone: node
// and branch bookkeeping, the Device stamping contract, and compiled Systems
// with per-worker evaluation Workspaces.
//
// The circuit DAE is kept in the residual form
//
//	R(x, t) = F(x) + d/dt Q(x) − B(t) = 0
//
// where x stacks node voltages and branch currents, F collects static
// (resistive) currents, Q collects charges and fluxes, and B collects
// source terms. Devices stamp F, Q, B and the Jacobians dF/dx and dQ/dx;
// the integration engines replace d/dt Q by a discretization
// Alpha0·Q(x) + (history terms) and solve with Newton's method.
package circuit

import (
	"fmt"
	"math"
	"sync"
	"time"

	"wavepipe/internal/faults"
	"wavepipe/internal/sched"
	"wavepipe/internal/sparse"
	"wavepipe/internal/trace"
)

// Ground is the node index of the reference node. Stamps addressed to
// Ground are discarded.
const Ground = -1

// Device is the contract every circuit element implements. Devices must be
// stateless with respect to Eval: per-instance mutable state (junction
// limiting history) lives in the per-worker state slices of the EvalCtx, at
// offsets assigned through Bind. This is what makes concurrent evaluation
// of the same circuit at different time points safe.
type Device interface {
	// Name returns the instance name (for example "R12" or "M3").
	Name() string
	// Branches returns how many extra current unknowns the device needs.
	Branches() int
	// States returns how many per-worker state slots the device needs.
	States() int
	// Bind tells the device the base index of its branch unknowns (an
	// absolute index into the solution vector) and of its state slots.
	Bind(branch0, state0 int)
	// Reserve registers all Jacobian pattern slots the device will write.
	Reserve(r *Reserver)
	// Eval accumulates the device contribution at the iterate in ctx.
	Eval(ctx *EvalCtx)
}

// Circuit is a netlist under construction: a set of named nodes and device
// instances. Build compiles it into a System.
type Circuit struct {
	Title     string
	nodeNames []string
	nodeIndex map[string]int
	devices   []Device
}

// New returns an empty circuit.
func New(title string) *Circuit {
	return &Circuit{Title: title, nodeIndex: make(map[string]int)}
}

// Node returns the index for the named node, creating it on first use.
// The names "0", "gnd" and "GND" denote the ground node.
func (c *Circuit) Node(name string) int {
	if name == "0" || name == "gnd" || name == "GND" {
		return Ground
	}
	if i, ok := c.nodeIndex[name]; ok {
		return i
	}
	i := len(c.nodeNames)
	c.nodeNames = append(c.nodeNames, name)
	c.nodeIndex[name] = i
	return i
}

// FindNode returns the index of a previously created node.
func (c *Circuit) FindNode(name string) (int, bool) {
	if name == "0" || name == "gnd" || name == "GND" {
		return Ground, true
	}
	i, ok := c.nodeIndex[name]
	return i, ok
}

// NodeName returns the name of node i (or "0" for Ground).
func (c *Circuit) NodeName(i int) string {
	if i == Ground {
		return "0"
	}
	return c.nodeNames[i]
}

// NumNodes returns the number of non-ground nodes created so far.
func (c *Circuit) NumNodes() int { return len(c.nodeNames) }

// Add appends a device instance.
func (c *Circuit) Add(d Device) { c.devices = append(c.devices, d) }

// Devices returns the device instances (shared slice; do not mutate).
func (c *Circuit) Devices() []Device { return c.devices }

// Build compiles the circuit: assigns branch and state indices, reserves
// the Jacobian pattern and freezes it into a System.
func (c *Circuit) Build() (*System, error) {
	if len(c.devices) == 0 {
		return nil, fmt.Errorf("circuit %q: no devices", c.Title)
	}
	numNodes := len(c.nodeNames)
	branch := numNodes
	state := 0
	for _, d := range c.devices {
		d.Bind(branch, state)
		branch += d.Branches()
		state += d.States()
	}
	n := branch
	b := sparse.NewBuilder(n)
	r := &Reserver{
		b:           b,
		devRows:     make([][]int, len(c.devices)),
		devSlots:    make([][]int, len(c.devices)),
		devCols:     make([][]int, len(c.devices)),
		devSlotRows: make([][]int, len(c.devices)),
		devSlotCols: make([][]int, len(c.devices)),
	}
	for i, d := range c.devices {
		r.current, r.devIdx = d, i
		d.Reserve(r)
	}
	// Reserve every diagonal so gmin continuation can always shunt node
	// rows, and so the structural pattern never loses diagonals.
	diag := make([]int, numNodes)
	for i := 0; i < numNodes; i++ {
		diag[i] = b.Reserve(i, i)
	}
	m := b.Compile()
	// Detect completely floating nodes: a node row with only its reserved
	// diagonal and no device stamp is almost certainly a netlist error.
	touched := make([]bool, n)
	for _, rc := range r.touchedRows {
		if rc >= 0 {
			touched[rc] = true
		}
	}
	for i := 0; i < numNodes; i++ {
		if !touched[i] {
			return nil, fmt.Errorf("circuit %q: node %q has no device connected", c.Title, c.nodeNames[i])
		}
	}
	return &System{
		Circuit:      c,
		N:            n,
		NumNodes:     numNodes,
		NumBranches:  n - numNodes,
		NumStates:    state,
		pattern:      m,
		diagSlots:    diag,
		colorClasses: buildColoring(c, m, n, state, r.devRows),
		devSlots:     r.devSlots,
		devCols:      r.devCols,
		devRows:      r.devRows,
		devSlotRows:  r.devSlotRows,
		devSlotCols:  r.devSlotCols,
	}, nil
}

// Reserver hands out Jacobian pattern slots during Build. In lookup mode
// (BindLanes) it resolves slots against a frozen host pattern instead of a
// Builder, recording the first miss as a structural-mismatch error.
type Reserver struct {
	b           *sparse.Builder
	lookup      *sparse.Matrix
	lookupErr   error
	current     Device
	devIdx      int
	devRows     [][]int // per-device rows named in J calls (coloring footprint)
	devSlots    [][]int // per-device Jacobian slots (incremental-assembly footprint)
	devCols     [][]int // per-device columns named in J calls (bypass read set)
	devSlotRows [][]int // row index per devSlots entry (aligned 1:1 with devSlots)
	devSlotCols [][]int // column index per devSlots entry (aligned 1:1 with devSlots)
	touchedRows []int
}

// J reserves the Jacobian slot (row, col) and returns its id, or -1 when
// either index is Ground (stamps to -1 are discarded at Eval time).
func (r *Reserver) J(row, col int) int {
	if row != Ground {
		r.devRows[r.devIdx] = append(r.devRows[r.devIdx], row)
	}
	if col != Ground {
		r.devCols[r.devIdx] = append(r.devCols[r.devIdx], col)
	}
	if row == Ground || col == Ground {
		return -1
	}
	r.touchedRows = append(r.touchedRows, row)
	if r.lookup != nil {
		slot := r.lookup.SlotAt(row, col)
		if slot < 0 && r.lookupErr == nil {
			r.lookupErr = fmt.Errorf("stamp (%d,%d) not in host pattern", row, col)
		}
		r.devSlots[r.devIdx] = append(r.devSlots[r.devIdx], slot)
		r.devSlotRows[r.devIdx] = append(r.devSlotRows[r.devIdx], row)
		r.devSlotCols[r.devIdx] = append(r.devSlotCols[r.devIdx], col)
		return slot
	}
	slot := r.b.Reserve(row, col)
	r.devSlots[r.devIdx] = append(r.devSlots[r.devIdx], slot)
	r.devSlotRows[r.devIdx] = append(r.devSlotRows[r.devIdx], row)
	r.devSlotCols[r.devIdx] = append(r.devSlotCols[r.devIdx], col)
	return slot
}

// System is a compiled circuit: a frozen Jacobian pattern plus the device
// list. A System is immutable and safe to share across workers; all mutable
// evaluation state lives in Workspaces.
type System struct {
	Circuit     *Circuit
	N           int // total unknowns (nodes + branches)
	NumNodes    int
	NumBranches int
	NumStates   int

	pattern   *sparse.Matrix
	diagSlots []int

	// colorClasses partitions the device indices into write-conflict-free
	// classes (see colored.go); nil when Build could not produce a coloring
	// (a device probe panicked) and the colored load path is unavailable.
	colorClasses [][]int

	// colPerm caches the fill-reducing column ordering of the Jacobian
	// pattern. The pattern never changes after Build, so every workspace's
	// solver shares one ordering instead of recomputing it — the ordering
	// is by far the most allocation-heavy step of a full factorization.
	colPermOnce sync.Once
	colPerm     []int

	// devSlots/devCols/devRows record, per device, the Jacobian slots, the
	// columns (controlling unknowns), and the rows it named in Reserve. The
	// incremental assembly engine turns them into the dedup'd stamp
	// footprints it journals and replays (see incremental.go).
	devSlots [][]int
	devCols  [][]int
	devRows  [][]int
	// devSlotRows/devSlotCols give the (row, col) coordinates of each
	// devSlots entry, aligned index-for-index. The bypass engine's
	// predicted-residual guard needs them to map a Jacobian slot back to
	// the equation row it perturbs and the unknown it is controlled by.
	devSlotRows [][]int
	devSlotCols [][]int

	// inc caches the Build-time incremental-assembly basis (linear stamp
	// template + per-device footprints); built lazily on the first workspace
	// that enables device bypass, nil when the circuit does not support it.
	incOnce sync.Once
	inc     *incBasis

	// reduced records how this System was derived from a larger circuit by
	// the parasitic-reduction pass (nil when built directly); see reduced.go.
	reduced *ReducedInfo
}

// fillOrdering returns the shared fill-reducing ordering, computing it on
// first use. Safe for concurrent callers. The computation goes through the
// sparse-level ordering cache, so sequential Builds of an identical deck
// (and the lanes of an ensemble) reuse one minimum-degree analysis instead
// of recomputing it per System.
func (s *System) fillOrdering() []int {
	s.colPermOnce.Do(func() {
		s.colPerm = sparse.SharedOrdering(s.pattern, sparse.OrderMinDegree)
	})
	return s.colPerm
}

// Prewarm eagerly computes the lazily derived artifacts that every run of
// this System shares — today the fill-reducing column ordering (the coloring
// and device footprints are already fixed at Build). The artifact cache
// calls it on insert so a cache hit skips straight to timestepping without
// paying the symbolic analysis on its first factorization.
func (s *System) Prewarm() { s.fillOrdering() }

// ColorClasses returns the conflict-free device classes computed at Build
// time (nil when unavailable). The outer slice is indexed by color; do not
// mutate.
func (s *System) ColorClasses() [][]int { return s.colorClasses }

// PatternNNZ returns the structural nonzero count of the MNA pattern. It is
// part of the circuit fingerprint durable checkpoints validate on resume.
func (s *System) PatternNNZ() int { return s.pattern.NNZ() }

// Workspace owns the mutable buffers one worker needs to assemble and solve
// the circuit equations: a value clone of the Jacobian, the F/Q/B vectors,
// the nonlinear limiting state, and a sparse solver with its reusable
// factorization.
type Workspace struct {
	Sys    *System
	M      *sparse.Matrix
	Solver *sparse.Solver
	F      []float64 // static currents
	Q      []float64 // charges / fluxes
	B      []float64 // source terms
	SPrev  []float64 // limiting state: previous Newton iterate
	SNext  []float64 // limiting state: current Newton iterate
	// Limited reports whether any device clamped its controlling voltage
	// during the last Load. An iterate produced under active limiting must
	// not be declared converged (the linearization is not the true model).
	Limited bool

	// LoadWallNanos and LoadCritNanos accumulate the measured wall-clock
	// time of Load calls and the corresponding critical-path time (for the
	// sharded parallel load the slowest shard plus the reduction). The
	// difference feeds the multi-core pipeline timing model used when the
	// host machine has fewer cores than the requested thread count.
	LoadWallNanos int64
	LoadCritNanos int64

	// MC holds dQ/dx after LoadSplit (AC analysis); nil until first use.
	MC *sparse.Matrix

	// Faults is the per-run fault-injection harness (nil in production
	// runs — every check site is nil-safe). It is shared by all solver
	// layers operating on this workspace.
	Faults *faults.Injector

	// Abort is the run's cooperative stop flag (nil in unguarded runs —
	// every poll site is nil-safe). The Newton loop polls it once per
	// iteration so a tripped deadline or watchdog interrupts even a hung
	// solve at the next iteration boundary.
	Abort *faults.Abort

	// Trace is the run's event stream (nil when no observer is attached —
	// every emission site is nil-safe, costing one pointer test). Worker
	// identifies this workspace's lane in the trace (-1 when the run is
	// serial / unattributed).
	Trace  *trace.Tracer
	Worker int16

	// ForceParallelLoad makes the colored load spawn real worker goroutines
	// even on a single-CPU host, where it would otherwise run the color
	// classes serially (identical results, no spinning). Race tests use it to
	// exercise the concurrent path regardless of GOMAXPROCS.
	ForceParallelLoad bool

	// devs, when non-nil, overrides the device list the serial assembly
	// paths evaluate (see SetDevices in lanes.go — ensemble lane variants).
	devs []Device

	loadWorkers int
	loadMode    LoadMode
	shards      []*shard
	pool        *sched.Pool
	evalCtx     EvalCtx   // pooled context for the serial load path
	wctx        []EvalCtx // pooled per-worker contexts for the colored path
	colorBar    sched.Barrier
	iterSave    []float64 // pooled copy of the Newton iterate (bypass guard)

	// inc holds the per-workspace incremental-assembly state (linear stamp
	// template LRU + per-device bypass journals); nil unless SetDeviceBypass
	// enabled it. Each workspace owns an independent copy, so concurrent
	// pipeline points never share mutable device-bypass state.
	inc *incState
}

// SetPool attaches a gang pool (see internal/sched) to the workspace: device
// loads run across the pool's workers using the Build-time color classes,
// and the sparse solver executes its level-scheduled LU kernels on the same
// gang. The pool's width becomes the load worker count. The caller keeps
// ownership and must Close the pool when the run ends; a nil pool detaches.
//
// Unlike SetLoadWorkers, attaching a pool never allocates the sharded
// matrix clones: when the coloring is unprofitable the load simply stays
// serial, which keeps results independent of the gang width (colored stamps
// are bit-identical across worker counts; sharded reductions are not).
func (ws *Workspace) SetPool(p *sched.Pool) {
	ws.pool = p
	ws.Solver.Sched = p
	if p.Workers() > 1 {
		ws.loadWorkers = p.Workers()
	} else if ws.shards == nil {
		ws.loadWorkers = 1
	}
}

// Pool returns the attached gang pool (nil when serial).
func (ws *Workspace) Pool() *sched.Pool { return ws.pool }

// SaveIterate stashes a copy of the iterate in a pooled workspace buffer.
// The Newton factorization-bypass guard uses it to rewind a quasi-Newton
// step and redo it against a fresh factorization before accepting.
func (ws *Workspace) SaveIterate(x []float64) {
	if ws.iterSave == nil {
		ws.iterSave = make([]float64, ws.Sys.N)
	}
	copy(ws.iterSave, x)
}

// RestoreIterate copies the last SaveIterate snapshot back into x.
func (ws *Workspace) RestoreIterate(x []float64) {
	copy(x, ws.iterSave)
}

// NewWorkspace allocates a workspace (one per concurrent worker).
func (s *System) NewWorkspace() *Workspace {
	m := s.pattern.Clone()
	sol := sparse.NewSolver(m, sparse.OrderMinDegree)
	sol.ColPerm = s.fillOrdering()
	return &Workspace{
		Sys:    s,
		M:      m,
		Solver: sol,
		F:      make([]float64, s.N),
		Q:      make([]float64, s.N),
		B:      make([]float64, s.N),
		SPrev:  make([]float64, s.NumStates),
		SNext:  make([]float64, s.NumStates),
		Worker: -1,
	}
}

// LoadParams bundles the knobs of one assembly pass.
type LoadParams struct {
	Time      float64 // waveform evaluation time
	Alpha0    float64 // d/dt Q ≈ Alpha0·Q(x) + history (0 for DC)
	Gmin      float64 // junction + node-diagonal shunt conductance
	NodeGmin  float64 // extra conductance added on every node diagonal (gmin stepping)
	SrcScale  float64 // source scaling in [0,1] (source stepping); 1 = full
	FirstIter bool    // first Newton iteration at this point (limiting seed)
	// NoLimit disables junction-voltage limiting: post-convergence
	// bookkeeping loads must evaluate charges at the exact solution, not a
	// clamped voltage (the per-worker limiting state may be stale there).
	NoLimit bool
	// ClampIdx/ClampV/ClampG pull the listed node unknowns toward target
	// voltages through a conductance ClampG — the mechanism behind
	// .NODESET's first operating-point pass.
	ClampIdx []int
	ClampV   []float64
	ClampG   float64
}

// Load assembles the Jacobian (dF/dx + Alpha0·dQ/dx) and the F, Q, B
// vectors at iterate x.
func (ws *Workspace) Load(x []float64, p LoadParams) {
	if inc := ws.inc; inc != nil {
		// Incremental assembly covers the serial path only (the profitability
		// policy in incremental.go); each WavePipe lane loads serially inside
		// its own workspace, so this is the common pipeline configuration.
		if ws.loadWorkers <= 1 && ws.loadIncremental(x, p) {
			return
		}
		inc.lastBypassed, inc.lastLinear = 0, false
	}
	if ws.loadWorkers > 1 {
		if ws.useColored() {
			ws.loadColored(x, p)
			return
		}
		if len(ws.shards) > 0 {
			ws.loadParallel(x, p)
			return
		}
		// Pool-attached workspace whose coloring is unprofitable: the sharded
		// clones were never allocated, so assemble serially below.
	}
	start := time.Now()
	defer func() {
		d := time.Since(start).Nanoseconds()
		ws.LoadWallNanos += d
		ws.LoadCritNanos += d
	}()
	ws.M.Zero()
	for i := range ws.F {
		ws.F[i] = 0
		ws.Q[i] = 0
		ws.B[i] = 0
	}
	ctx := &ws.evalCtx
	*ctx = EvalCtx{
		X:         x,
		T:         p.Time,
		Alpha0:    p.Alpha0,
		Gmin:      p.Gmin,
		SrcScale:  p.SrcScale,
		FirstIter: p.FirstIter,
		NoLimit:   p.NoLimit,
		SPrev:     ws.SPrev,
		SNext:     ws.SNext,
		m:         ws.M,
		F:         ws.F,
		Q:         ws.Q,
		B:         ws.B,
	}
	for _, d := range ws.deviceList() {
		d.Eval(ctx)
	}
	ws.Limited = ctx.Limited
	if p.NodeGmin > 0 {
		for i, slot := range ws.Sys.diagSlots {
			ws.M.Add(slot, p.NodeGmin)
			ws.F[i] += p.NodeGmin * x[i]
		}
	}
	ws.applyClamps(x, p)
	ws.injectLoadFault(p)
}

// injectLoadFault applies a scheduled assembly fault (tests only; Faults is
// nil otherwise). Bookkeeping loads (NoLimit) are spared: poisoning the
// post-convergence charge load would corrupt the integration history behind
// the recovery machinery's back instead of failing the solve in front of it.
func (ws *Workspace) injectLoadFault(p LoadParams) {
	if ws.Faults == nil || p.NoLimit {
		return
	}
	if cls, ok := ws.Faults.At(faults.SiteLoad, p.Time); ok && cls == faults.NonFinite {
		ws.F[0] = math.NaN()
	}
}

// applyClamps adds the .NODESET clamp conductances.
func (ws *Workspace) applyClamps(x []float64, p LoadParams) {
	if p.ClampG <= 0 {
		return
	}
	for k, i := range p.ClampIdx {
		if i < 0 || i >= ws.Sys.NumNodes {
			continue
		}
		ws.M.Add(ws.Sys.diagSlots[i], p.ClampG)
		ws.F[i] += p.ClampG * (x[i] - p.ClampV[k])
	}
}

// LoadSplit assembles dF/dx into M and dQ/dx into MC separately at the
// iterate x — the small-signal linearization AC analysis needs. Unlike
// Load it never folds Alpha0 into the Jacobian.
func (ws *Workspace) LoadSplit(x []float64, p LoadParams) {
	if ws.MC == nil {
		ws.MC = ws.M.Clone()
	}
	start := time.Now()
	ws.M.Zero()
	ws.MC.Zero()
	for i := range ws.F {
		ws.F[i] = 0
		ws.Q[i] = 0
		ws.B[i] = 0
	}
	ctx := &ws.evalCtx
	*ctx = EvalCtx{
		X:         x,
		T:         p.Time,
		Alpha0:    0,
		Gmin:      p.Gmin,
		SrcScale:  p.SrcScale,
		FirstIter: p.FirstIter,
		SPrev:     ws.SPrev,
		SNext:     ws.SNext,
		m:         ws.M,
		mq:        ws.MC,
		F:         ws.F,
		Q:         ws.Q,
		B:         ws.B,
	}
	for _, d := range ws.deviceList() {
		d.Eval(ctx)
	}
	ws.Limited = ctx.Limited
	if p.NodeGmin > 0 {
		for i, slot := range ws.Sys.diagSlots {
			ws.M.Add(slot, p.NodeGmin)
			ws.F[i] += p.NodeGmin * x[i]
		}
	}
	d := time.Since(start).Nanoseconds()
	ws.LoadWallNanos += d
	ws.LoadCritNanos += d
}

// ACSource is implemented by independent sources that carry a small-signal
// (AC) stimulus specification.
type ACSource interface {
	// StampAC accumulates the complex stimulus into the AC right-hand side.
	StampAC(b []complex128)
}

// Residual writes R = F + Alpha0·Q + qhist − B into r. qhist may be nil
// (DC analyses). r must have length N.
func (ws *Workspace) Residual(alpha0 float64, qhist, r []float64) {
	for i := range r {
		r[i] = ws.F[i] + alpha0*ws.Q[i] - ws.B[i]
	}
	if qhist != nil {
		for i := range r {
			r[i] += qhist[i]
		}
	}
}

// FlipState makes the state written by the last Eval pass the "previous"
// state for the next Newton iteration.
func (ws *Workspace) FlipState() {
	ws.SPrev, ws.SNext = ws.SNext, ws.SPrev
}

// CopyStateFrom copies the limiting state of another workspace (used when a
// speculative worker adopts the state of the worker whose point it follows).
// Adopting foreign state invalidates any device-bypass journals recorded
// against this workspace's own history.
func (ws *Workspace) CopyStateFrom(other *Workspace) {
	copy(ws.SPrev, other.SPrev)
	copy(ws.SNext, other.SNext)
	ws.InvalidateDeviceBypass()
}

// EvalCtx is the device evaluation context for one assembly pass.
type EvalCtx struct {
	X         []float64
	T         float64
	Alpha0    float64
	Gmin      float64
	SrcScale  float64
	FirstIter bool
	NoLimit   bool
	SPrev     []float64
	SNext     []float64

	m  *sparse.Matrix
	mq *sparse.Matrix // non-nil during split (G/C) assembly
	F  []float64
	Q  []float64
	B  []float64

	// rec is non-nil only during the Build-time coloring probe; it records
	// every F/Q/B row a device writes so rows that were never named in
	// Reserve (current sources stamp B without reserving Jacobian slots)
	// still enter the device's conflict footprint.
	rec *probeRecorder

	// Limited is set by devices that clamp a controlling voltage (for
	// example pn-junction limiting); it blocks convergence this iteration.
	Limited bool
}

// V returns the voltage of node i (0 for Ground). For branch unknowns it
// returns the branch current.
func (e *EvalCtx) V(i int) float64 {
	if i == Ground {
		return 0
	}
	return e.X[i]
}

// AddJ accumulates a static-Jacobian (dF/dx) entry. slot -1 is discarded.
func (e *EvalCtx) AddJ(slot int, v float64) {
	if slot >= 0 {
		e.m.Add(slot, v)
	}
}

// AddJQ accumulates a reactive-Jacobian (dQ/dx) entry, scaled by Alpha0 —
// or routed unscaled into the separate C matrix during a split assembly
// (AC analysis).
func (e *EvalCtx) AddJQ(slot int, v float64) {
	if slot < 0 {
		return
	}
	if e.mq != nil {
		e.mq.Add(slot, v)
		return
	}
	e.m.Add(slot, e.Alpha0*v)
}

// AddF accumulates a static current into row i. Ground rows are discarded.
func (e *EvalCtx) AddF(i int, v float64) {
	if i != Ground {
		if e.rec != nil {
			e.rec.note(i)
		}
		e.F[i] += v
	}
}

// AddQ accumulates a charge/flux into row i.
func (e *EvalCtx) AddQ(i int, v float64) {
	if i != Ground {
		if e.rec != nil {
			e.rec.note(i)
		}
		e.Q[i] += v
	}
}

// AddB accumulates a source term into row i, scaled by SrcScale.
func (e *EvalCtx) AddB(i int, v float64) {
	if i != Ground {
		if e.rec != nil {
			e.rec.noteB(i)
		}
		e.B[i] += e.SrcScale * v
	}
}
