package circuit

import (
	"math"
	"testing"
)

// TestParallelLoadMatchesSerial shards the device evaluation across
// goroutines and verifies the reduced assembly is identical to the serial
// one (the race detector inspects the sharing discipline when tests run
// with -race).
func TestParallelLoadMatchesSerial(t *testing.T) {
	c := New("par")
	a := c.Node("a")
	b := c.Node("b")
	// Enough stub devices that every shard gets a few; overlapping stamps
	// exercise the reduction.
	for i := 0; i < 37; i++ {
		c.Add(&stubDevice{name: "S", p: a, n: b, g: float64(i%5) + 0.5})
	}
	sys, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	serial := sys.NewWorkspace()
	parallel := sys.NewWorkspace()
	parallel.SetLoadWorkers(4)

	x := make([]float64, sys.N)
	for i := range x {
		x[i] = float64(i) * 0.1
	}
	p := LoadParams{Alpha0: 1e3, SrcScale: 0.7, NodeGmin: 1e-6}
	serial.Load(x, p)
	parallel.Load(x, p)

	for i := range serial.F {
		if math.Abs(serial.F[i]-parallel.F[i]) > 1e-12 ||
			math.Abs(serial.Q[i]-parallel.Q[i]) > 1e-18 ||
			math.Abs(serial.B[i]-parallel.B[i]) > 1e-12 {
			t.Fatalf("vector mismatch at %d", i)
		}
	}
	for i := range serial.M.Values {
		if math.Abs(serial.M.Values[i]-parallel.M.Values[i]) > 1e-12 {
			t.Fatalf("matrix mismatch at slot %d: %g vs %g",
				i, serial.M.Values[i], parallel.M.Values[i])
		}
	}
	if serial.Limited != parallel.Limited {
		t.Fatal("limited flag mismatch")
	}
	// More workers than devices degrades gracefully.
	tiny := sys.NewWorkspace()
	tiny.SetLoadWorkers(100)
	tiny.Load(x, p)
	if math.Abs(tiny.F[0]-serial.F[0]) > 1e-12 {
		t.Fatal("over-sharded load mismatch")
	}
}
