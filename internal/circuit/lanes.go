package circuit

import (
	"fmt"

	"wavepipe/internal/sparse"
)

// Lane support: the ensemble engine runs K parameter-variants of one
// topology in lockstep. All lanes share the host System's symbolic work —
// the compiled Jacobian pattern, the fill-reducing ordering, and the LU
// level schedules keyed by that pattern — while each lane owns a value
// clone of the matrix and its own F/Q/B/limiting buffers, all carved from
// contiguous struct-of-arrays blocks strided by lane.
//
// The invariants that make sharing sound:
//   - BindLanes only succeeds for circuits structurally identical to the
//     host (same node names in order, same device sequence with the same
//     branch/state arity, same Reserve footprint), so every lane device
//     holds slot ids valid on any clone of the host pattern.
//   - Lane workspaces assemble serially (no pool, no sharded clones, no
//     device bypass), so per-lane results are bit-identical to a serial
//     run of the same variant.

// SetDevices overrides the device list this workspace's serial assembly
// paths evaluate, so a lane workspace compiled against the host pattern
// stamps its own variant's device instances. Only the serial Load/LoadSplit
// paths honor the override; parallel loads and the incremental engine index
// the host System's devices and must not be combined with it (NewLaneWorkspaces
// never enables them). A nil devs restores the host circuit's devices.
func (ws *Workspace) SetDevices(devs []Device) { ws.devs = devs }

// deviceList returns the devices the serial assembly paths iterate.
func (ws *Workspace) deviceList() []Device {
	if ws.devs != nil {
		return ws.devs
	}
	return ws.Sys.Circuit.devices
}

// BindLanes binds a structurally identical variant circuit against this
// System's frozen Jacobian pattern: devices receive the same branch/state
// bases the host's Build assigned, and their Reserve calls are replayed
// through a slot lookup on the host pattern instead of a fresh Builder. On
// success every device in c holds slot ids valid on any clone of the host
// pattern; on mismatch (different nodes, device sequence, arity, or stamp
// footprint) an error identifies the first divergence and c's devices are
// left bound to possibly inconsistent indices — discard the circuit.
func (s *System) BindLanes(c *Circuit) error {
	host := s.Circuit
	if len(c.devices) != len(host.devices) {
		return fmt.Errorf("circuit %q: lane has %d devices, host %q has %d",
			c.Title, len(c.devices), host.Title, len(host.devices))
	}
	if len(c.nodeNames) != s.NumNodes {
		return fmt.Errorf("circuit %q: lane has %d nodes, host has %d",
			c.Title, len(c.nodeNames), s.NumNodes)
	}
	for i, name := range c.nodeNames {
		if host.nodeNames[i] != name {
			return fmt.Errorf("circuit %q: node %d is %q, host has %q",
				c.Title, i, name, host.nodeNames[i])
		}
	}
	branch := s.NumNodes
	state := 0
	for i, d := range c.devices {
		h := host.devices[i]
		if d.Name() != h.Name() || d.Branches() != h.Branches() || d.States() != h.States() {
			return fmt.Errorf("circuit %q: device %d is %s(br=%d,st=%d), host has %s(br=%d,st=%d)",
				c.Title, i, d.Name(), d.Branches(), d.States(), h.Name(), h.Branches(), h.States())
		}
		d.Bind(branch, state)
		branch += d.Branches()
		state += d.States()
	}
	if branch != s.N || state != s.NumStates {
		return fmt.Errorf("circuit %q: lane binds %d unknowns/%d states, host has %d/%d",
			c.Title, branch, state, s.N, s.NumStates)
	}
	r := &Reserver{
		lookup:      s.pattern,
		devRows:     make([][]int, len(c.devices)),
		devSlots:    make([][]int, len(c.devices)),
		devCols:     make([][]int, len(c.devices)),
		devSlotRows: make([][]int, len(c.devices)),
		devSlotCols: make([][]int, len(c.devices)),
	}
	for i, d := range c.devices {
		r.current, r.devIdx = d, i
		d.Reserve(r)
		if r.lookupErr != nil {
			return fmt.Errorf("circuit %q: device %s: %w", c.Title, d.Name(), r.lookupErr)
		}
	}
	return nil
}

// NewLaneWorkspaces allocates k workspaces whose mutable buffers stride
// contiguous struct-of-arrays blocks: one K·nnz value block behind the K
// matrix clones, one K·3N block behind F/Q/B, and one K·2·NumStates block
// behind the limiting state. Lane i's slices are adjacent in memory so
// lockstep assembly stays cache-friendly across lanes. Each workspace's
// solver shares the System's fill ordering; Worker is set to the lane index
// for trace attribution. The caller typically follows up with SetDevices to
// point each lane at its variant's device instances.
func (s *System) NewLaneWorkspaces(k int) []*Workspace {
	nnz := s.pattern.NNZ()
	n := s.N
	ns := s.NumStates
	vals := make([]float64, k*nnz)
	vecs := make([]float64, k*3*n)
	states := make([]float64, k*2*ns)
	lanes := make([]*Workspace, k)
	for i := 0; i < k; i++ {
		m := s.pattern.CloneWithValues(vals[i*nnz : (i+1)*nnz : (i+1)*nnz])
		sol := sparse.NewSolver(m, sparse.OrderMinDegree)
		sol.ColPerm = s.fillOrdering()
		vb := vecs[i*3*n : (i+1)*3*n]
		sb := states[i*2*ns : (i+1)*2*ns]
		lanes[i] = &Workspace{
			Sys:    s,
			M:      m,
			Solver: sol,
			F:      vb[0:n:n],
			Q:      vb[n : 2*n : 2*n],
			B:      vb[2*n : 3*n : 3*n],
			SPrev:  sb[0:ns:ns],
			SNext:  sb[ns : 2*ns : 2*ns],
			Worker: int16(i),
		}
	}
	return lanes
}

// BatchLoad assembles several lane workspaces at one Newton iteration in
// lockstep: device-outer, lane-inner, so the model dispatch for device d is
// amortized over all lanes and the lanes' stamps land in their adjacent
// struct-of-arrays blocks. Nil entries in lanes are skipped (retired or
// already-converged lanes). Per lane the operation sequence — zeroing,
// evaluation order, limiting capture, NodeGmin, clamps, fault injection —
// is exactly that of the serial Load, so each lane's assembled system is
// bit-identical to what its own Load(xs[i], ps[i]) would produce.
func BatchLoad(lanes []*Workspace, xs [][]float64, ps []LoadParams) {
	nd := 0
	for li, ws := range lanes {
		if ws == nil {
			continue
		}
		ws.M.Zero()
		for i := range ws.F {
			ws.F[i] = 0
			ws.Q[i] = 0
			ws.B[i] = 0
		}
		p := ps[li]
		ctx := &ws.evalCtx
		*ctx = EvalCtx{
			X:         xs[li],
			T:         p.Time,
			Alpha0:    p.Alpha0,
			Gmin:      p.Gmin,
			SrcScale:  p.SrcScale,
			FirstIter: p.FirstIter,
			NoLimit:   p.NoLimit,
			SPrev:     ws.SPrev,
			SNext:     ws.SNext,
			m:         ws.M,
			F:         ws.F,
			Q:         ws.Q,
			B:         ws.B,
		}
		if l := len(ws.deviceList()); l > nd {
			nd = l
		}
	}
	for di := 0; di < nd; di++ {
		for _, ws := range lanes {
			if ws == nil {
				continue
			}
			if dl := ws.deviceList(); di < len(dl) {
				dl[di].Eval(&ws.evalCtx)
			}
		}
	}
	for li, ws := range lanes {
		if ws == nil {
			continue
		}
		p := ps[li]
		ws.Limited = ws.evalCtx.Limited
		if p.NodeGmin > 0 {
			x := xs[li]
			for i, slot := range ws.Sys.diagSlots {
				ws.M.Add(slot, p.NodeGmin)
				ws.F[i] += p.NodeGmin * x[i]
			}
		}
		ws.applyClamps(xs[li], p)
		ws.injectLoadFault(p)
	}
}
