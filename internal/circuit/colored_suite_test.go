package circuit_test

// Suite-wide equivalence: on every benchmark circuit of the evaluation
// suite, the colored direct-stamp assembly must reproduce the serial Load's
// stamps to floating-point reassociation accuracy (rows with three or more
// contributing devices may differ by ~1 ulp), under both the degraded
// serial-class-order path and the genuinely parallel path.

import (
	"math"
	"testing"

	"wavepipe/internal/circuit"
	"wavepipe/internal/circuits"
)

func equalUlpScale(a, b, tol float64) bool {
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= tol*scale
}

func TestColoredLoadMatchesSerialOnSuite(t *testing.T) {
	const tol = 1e-12
	for _, b := range circuits.Suite() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			sys, err := b.Make().Build()
			if err != nil {
				t.Fatal(err)
			}
			x := make([]float64, sys.N)
			for i := range x {
				// Small, mixed-sign iterate: keeps exponential device models in
				// range while exercising nonlinear stamps.
				x[i] = 0.05 * float64(i%7-3)
			}
			p := circuit.LoadParams{Time: 1e-9, Alpha0: 1e9, Gmin: 1e-12, SrcScale: 1, FirstIter: true}

			serial := sys.NewWorkspace()
			serial.Load(x, p)

			for name, force := range map[string]bool{"classorder": false, "parallel": true} {
				ws := sys.NewWorkspace()
				ws.SetLoadWorkers(4)
				ws.SetLoadMode(circuit.LoadColored)
				ws.ForceParallelLoad = force
				ws.Load(x, p)
				for i := range serial.F {
					if !equalUlpScale(serial.F[i], ws.F[i], tol) ||
						!equalUlpScale(serial.Q[i], ws.Q[i], tol) ||
						!equalUlpScale(serial.B[i], ws.B[i], tol) {
						t.Fatalf("%s: F/Q/B mismatch at row %d", name, i)
					}
				}
				for i := range serial.M.Values {
					if !equalUlpScale(serial.M.Values[i], ws.M.Values[i], tol) {
						t.Fatalf("%s: Jacobian mismatch at slot %d: %g vs %g",
							name, i, serial.M.Values[i], ws.M.Values[i])
					}
				}
				if serial.Limited != ws.Limited {
					t.Fatalf("%s: limited flag mismatch", name)
				}
			}
		})
	}
}
