package circuit

// Renoder is implemented by devices that can clone themselves onto a new
// node numbering. The reduction pass (internal/reduce) compacts node
// indices when it suppresses internal nodes, so every surviving device must
// be re-instantiated against the reduced numbering. remap receives an
// original node index (or Ground) and returns the reduced index; it must be
// applied to every terminal. Devices holding cross-device references
// (current-controlled sources, mutual inductors) do not implement Renoder,
// which makes circuits containing them ineligible for reduction as a whole.
type Renoder interface {
	Device
	// Renoded returns a fresh, unbound instance of the device with every
	// terminal index passed through remap. The clone must re-derive any
	// value-dependent internals exactly as the constructor would.
	Renoded(remap func(int) int) Device
}

// ExpandTerm is one weighted contribution to a suppressed node's voltage:
// W times the voltage of reduced node Node (Ground contributes zero and is
// never stored).
type ExpandTerm struct {
	Node int
	W    float64
}

// ReducedInfo describes how a reduced System relates to the circuit it was
// derived from: which original nodes survived, how suppressed node
// waveforms are reconstructed, and the reduction counters the facade
// surfaces as Stats.ReducedNodes/ReducedDevices. It is immutable after
// construction and shared freely across runs.
type ReducedInfo struct {
	// OrigNodes holds the original circuit's node names in original order.
	OrigNodes []string
	// NodeMap maps each original node index to its reduced index, or -1 for
	// a suppressed node.
	NodeMap []int
	// Expansion holds, for each suppressed original node, the affine
	// combination of reduced node voltages that reconstructs it (series
	// interior nodes exactly, lumped ladder interiors within the error
	// budget). Entries for retained nodes are nil.
	Expansion [][]ExpandTerm
	// RemovedNodes and RemovedDevices count what the pass suppressed.
	RemovedNodes   int
	RemovedDevices int
	// Tol is the error budget the plan was built under (0 = exact mode).
	Tol float64
}

// ExpandValue reconstructs one original node's voltage from a row of
// reduced node voltages (indexed by reduced node number).
func (ri *ReducedInfo) ExpandValue(orig int, reduced []float64) float64 {
	if j := ri.NodeMap[orig]; j >= 0 {
		return reduced[j]
	}
	v := 0.0
	for _, t := range ri.Expansion[orig] {
		v += t.W * reduced[t.Node]
	}
	return v
}

// SetReduction attaches the reduction record to a compiled System. The
// facade and the artifact cache use a non-nil record to recognize a System
// that has already been through the pass (including a no-op pass) and must
// not be reduced again.
func (s *System) SetReduction(ri *ReducedInfo) { s.reduced = ri }

// Reduction returns the reduction record attached via SetReduction, or nil
// for a System built directly from an unreduced circuit.
func (s *System) Reduction() *ReducedInfo { return s.reduced }
