package circuit

import (
	"math"
	"testing"
)

// linStub is an exactly linear conductance + capacitance with a marker, so
// incremental tests exercise the template layer.
type linStub struct {
	name               string
	p, n               int
	g, c               float64
	spp, spn, snp, snn int
}

func (d *linStub) Name() string       { return d.name }
func (d *linStub) Branches() int      { return 0 }
func (d *linStub) States() int        { return 0 }
func (d *linStub) Bind(int, int)      {}
func (d *linStub) LinearStamps() bool { return false }
func (d *linStub) Reserve(r *Reserver) {
	d.spp = r.J(d.p, d.p)
	d.spn = r.J(d.p, d.n)
	d.snp = r.J(d.n, d.p)
	d.snn = r.J(d.n, d.n)
}
func (d *linStub) Eval(e *EvalCtx) {
	v := e.V(d.p) - e.V(d.n)
	e.AddF(d.p, d.g*v)
	e.AddF(d.n, -d.g*v)
	e.AddJ(d.spp, d.g)
	e.AddJ(d.spn, -d.g)
	e.AddJ(d.snp, -d.g)
	e.AddJ(d.snn, d.g)
	e.AddQ(d.p, d.c*v)
	e.AddQ(d.n, -d.c*v)
	e.AddJQ(d.spp, d.c)
	e.AddJQ(d.spn, -d.c)
	e.AddJQ(d.snp, -d.c)
	e.AddJQ(d.snn, d.c)
}

// srcStub is a linear source: constant conductance plus a time-varying B
// stamp, so incremental tests exercise the per-load source re-evaluation.
type srcStub struct {
	name   string
	p      int
	g, amp float64
	spp    int
}

func (d *srcStub) Name() string       { return d.name }
func (d *srcStub) Branches() int      { return 0 }
func (d *srcStub) States() int        { return 0 }
func (d *srcStub) Bind(int, int)      {}
func (d *srcStub) LinearStamps() bool { return true }
func (d *srcStub) Reserve(r *Reserver) {
	d.spp = r.J(d.p, d.p)
}
func (d *srcStub) Eval(e *EvalCtx) {
	e.AddF(d.p, d.g*e.V(d.p))
	e.AddJ(d.spp, d.g)
	e.AddB(d.p, d.amp*(1+e.T))
}

// nlStub is a smooth nonlinear conductance i = g·v³ with one state slot and
// tanh-style soft limiting, so incremental tests exercise capture/replay,
// the state window, and the limited-journal guard.
type nlStub struct {
	name               string
	p, n               int
	g                  float64
	limitAt            float64 // |v| beyond which the device reports limiting (0 = never)
	state0             int
	spp, spn, snp, snn int
	evals              int // direct Eval count (not bypassed)
}

func (d *nlStub) Name() string  { return d.name }
func (d *nlStub) Branches() int { return 0 }
func (d *nlStub) States() int   { return 1 }
func (d *nlStub) Bind(_, s int) { d.state0 = s }
func (d *nlStub) Reserve(r *Reserver) {
	d.spp = r.J(d.p, d.p)
	d.spn = r.J(d.p, d.n)
	d.snp = r.J(d.n, d.p)
	d.snn = r.J(d.n, d.n)
}
func (d *nlStub) Eval(e *EvalCtx) {
	d.evals++
	v := e.V(d.p) - e.V(d.n)
	if d.limitAt > 0 && math.Abs(v) > d.limitAt && !e.NoLimit {
		e.Limited = true
	}
	i := d.g * v * v * v
	gd := 3 * d.g * v * v
	e.AddF(d.p, i)
	e.AddF(d.n, -i)
	e.AddJ(d.spp, gd)
	e.AddJ(d.spn, -gd)
	e.AddJ(d.snp, -gd)
	e.AddJ(d.snn, gd)
	e.SNext[d.state0] = v
}

// buildIncMix builds a mixed linear/source/nonlinear circuit and returns the
// compiled system plus the nonlinear devices for eval counting.
func buildIncMix(t *testing.T, nodes int) (*System, []*nlStub) {
	t.Helper()
	c := New("incmix")
	ids := make([]int, nodes+1)
	ids[0] = Ground
	for i := 1; i <= nodes; i++ {
		ids[i] = c.Node(string(rune('a' + i - 1)))
	}
	var nls []*nlStub
	for i := 0; i < nodes; i++ {
		c.Add(&linStub{name: "L", p: ids[i+1], n: ids[i], g: 1e-3 * float64(i+1), c: 1e-9})
		if i%2 == 0 {
			nl := &nlStub{name: "N", p: ids[i+1], n: ids[i], g: 1e-4}
			nls = append(nls, nl)
			c.Add(nl)
		}
	}
	c.Add(&srcStub{name: "I", p: ids[1], g: 1e-6, amp: 1e-3})
	sys, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	return sys, nls
}

// TestIncrementalLoadMatchesPlain drives the incremental path through the
// template-build, capture, and replay regimes and checks the assembled
// system against the plain serial load each time.
func TestIncrementalLoadMatchesPlain(t *testing.T) {
	sys, _ := buildIncMix(t, 9)
	inc := sys.NewWorkspace()
	inc.SetDeviceBypass(1e-3, 1e-6)
	if !inc.DeviceBypassEnabled() {
		t.Fatal("device bypass did not enable")
	}
	inc.inc.doBypass = true // fixture sits below the profitability gate
	ref := sys.NewWorkspace()

	x := make([]float64, sys.N)
	for i := range x {
		x[i] = 0.3 * math.Sin(float64(i+1))
	}
	p := LoadParams{Time: 1e-6, Alpha0: 2e6, Gmin: 1e-12, SrcScale: 1, FirstIter: true, NodeGmin: 1e-9}

	step := func(what string) {
		inc.Load(x, p)
		ref.Load(x, p)
		assertStampsEqual(t, inc, ref, 1e-12, what)
	}
	step("first iteration (template build + capture)")

	// Second iteration at a barely moved iterate: replay regime.
	p.FirstIter = false
	for i := range x {
		x[i] += 1e-9
	}
	step("bypassed iteration (replay)")
	if inc.LastLoadBypassed() == 0 {
		t.Fatal("no devices bypassed at an unchanged iterate")
	}
	if !inc.LastLoadLinearHit() {
		t.Fatal("second load missed the linear template")
	}

	// Big move: every journal must miss and recapture.
	for i := range x {
		x[i] += 0.1
	}
	step("recapture after a large move")
	if inc.LastLoadBypassed() != 0 {
		t.Fatal("bypass fired across a large iterate move")
	}

	// New Alpha0 (step-size change): template rebuild, journals keyed out.
	p.Alpha0 = 3.7e6
	step("alpha0 change (template rebuild)")
	if inc.LastLoadLinearHit() {
		t.Fatal("template hit reported for an unseen alpha0")
	}
	if inc.LastLoadBypassed() != 0 {
		t.Fatal("bypass fired across an alpha0 change")
	}
	step("steady state at new alpha0")
	if !inc.LastLoadLinearHit() || inc.LastLoadBypassed() == 0 {
		t.Fatal("steady state did not hit template + bypass")
	}
}

// TestIncrementalBypassGuards checks the one-shot suppression, the
// generation invalidation, and the NoLimit decline.
func TestIncrementalBypassGuards(t *testing.T) {
	sys, nls := buildIncMix(t, 7)
	ws := sys.NewWorkspace()
	ws.SetDeviceBypass(1e-3, 1e-6)
	ws.inc.doBypass = true // fixture sits below the profitability gate
	x := make([]float64, sys.N)
	p := LoadParams{Alpha0: 1e6, SrcScale: 1, FirstIter: true}

	ws.Load(x, p)
	p.FirstIter = false
	ws.Load(x, p)
	if got := ws.LastLoadBypassed(); got != len(nls) {
		t.Fatalf("expected %d bypassed evals, got %d", len(nls), got)
	}

	// Generation bump invalidates every journal.
	ws.InvalidateDeviceBypass()
	ws.Load(x, p)
	if ws.LastLoadBypassed() != 0 {
		t.Fatal("bypass fired across a generation bump")
	}

	// One-shot suppression blocks replay exactly once: every nonlinear
	// device is fully evaluated, while the assembly stays incremental
	// (the linear template is still in play).
	ws.DisableBypassOnce()
	evals := nls[0].evals
	ws.Load(x, p)
	if ws.LastLoadBypassed() != 0 {
		t.Fatal("DisableBypassOnce did not suppress replay")
	}
	if nls[0].evals != evals+1 {
		t.Fatal("suppressed-replay load did not evaluate the nonlinear device")
	}
	ws.Load(x, p)
	if ws.LastLoadBypassed() != len(nls) {
		t.Fatal("bypass did not resume after the one-shot suppression")
	}

	// NoLimit bookkeeping loads always take the plain path and reset the
	// per-load counters.
	evalsBefore := nls[0].evals
	ws.Load(x, LoadParams{Alpha0: 1e6, SrcScale: 1, NoLimit: true})
	if ws.LastLoadBypassed() != 0 || ws.LastLoadLinearHit() {
		t.Fatal("NoLimit load went through the incremental path")
	}
	if nls[0].evals != evalsBefore+1 {
		t.Fatal("NoLimit load did not evaluate the nonlinear device")
	}

	// CopyStateFrom adopts foreign state and must invalidate journals.
	ws.Load(x, p)
	other := sys.NewWorkspace()
	ws.CopyStateFrom(other)
	ws.Load(x, p)
	if ws.LastLoadBypassed() != 0 {
		t.Fatal("bypass fired after adopting foreign state")
	}
}

// TestIncrementalLimitedJournalNotReplayed ensures a journal recorded under
// active limiting is never replayed, and that the Limited flag is reported
// exactly like the plain path reports it.
func TestIncrementalLimitedJournalNotReplayed(t *testing.T) {
	c := New("limited")
	a := c.Node("a")
	nl := &nlStub{name: "N", p: a, n: Ground, g: 1e-3, limitAt: 0.5}
	c.Add(&linStub{name: "L", p: a, n: Ground, g: 1e-3, c: 1e-9})
	c.Add(nl)
	sys, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	ws := sys.NewWorkspace()
	ws.SetDeviceBypass(1e-3, 1e-6)
	ws.inc.doBypass = true // fixture sits below the profitability gate
	x := make([]float64, sys.N)
	x[a] = 1.0 // beyond limitAt: the capture happens under limiting
	p := LoadParams{Alpha0: 1e6, SrcScale: 1, FirstIter: true}
	ws.Load(x, p)
	if !ws.Limited {
		t.Fatal("expected a limited load")
	}
	p.FirstIter = false
	ws.Load(x, p)
	if ws.LastLoadBypassed() != 0 {
		t.Fatal("replayed a journal recorded under active limiting")
	}

	// Below the limiting threshold the journal becomes replayable.
	x[a] = 0.1
	ws.Load(x, p)
	if ws.Limited {
		t.Fatal("limited flag stuck")
	}
	ws.Load(x, p)
	if ws.LastLoadBypassed() != 1 {
		t.Fatal("bypass did not fire on a clean journal")
	}
}

// TestIncrementalTemplateLRU exercises the Alpha0-keyed template cache:
// revisited step sizes hit, a fifth distinct Alpha0 evicts the least
// recently used way.
func TestIncrementalTemplateLRU(t *testing.T) {
	sys, _ := buildIncMix(t, 5)
	ws := sys.NewWorkspace()
	ws.SetDeviceBypass(1e-3, 1e-6)
	x := make([]float64, sys.N)
	load := func(alpha0 float64) bool {
		ws.Load(x, LoadParams{Alpha0: alpha0, SrcScale: 1})
		return ws.LastLoadLinearHit()
	}
	alphas := []float64{1e6, 2e6, 3e6, 4e6}
	for _, a := range alphas {
		if load(a) {
			t.Fatalf("alpha0=%g hit on first sight", a)
		}
	}
	for _, a := range alphas {
		if !load(a) {
			t.Fatalf("alpha0=%g missed on revisit", a)
		}
	}
	if load(5e6) {
		t.Fatal("fifth alpha0 hit a four-way cache")
	}
	// 1e6 was the least recently used way and must have been evicted.
	if load(1e6) {
		t.Fatal("evicted alpha0 still resident")
	}
	_, hits := ws.DeviceBypassCounters()
	if hits != 4 {
		t.Fatalf("expected 4 linear hits, got %d", hits)
	}
}
