package circuit

import (
	"runtime"
	"sync"
	"time"

	"wavepipe/internal/sparse"
)

// This file implements colored direct-stamp parallel assembly: at Build time
// the devices are partitioned into classes whose members never write the
// same Jacobian row or F/Q/B row, so each class can be evaluated by several
// workers stamping directly into the shared Workspace buffers — no private
// matrix clones to zero, no O(nnz + 3·N)·workers reduction. Classes are
// separated by a barrier, which makes the per-row accumulation order a pure
// function of the coloring: results are bit-identical across worker counts
// (they can differ from the serial device-order load by float addition
// reassociation, on rows three or more devices share).
//
// The footprint of a device is the union of the rows it named in Reserve and
// the F/Q/B rows it wrote during a one-shot recording probe at x = 0. The
// contract this relies on: a device's row footprint must not depend on the
// iterate. Every in-tree device satisfies it (MOSFET drain/source swap
// permutes values among reserved slots, never outside them). A device that
// panics during the probe disables coloring for the whole system, and Load
// falls back to the sharded path.

// LoadMode selects the parallel assembly strategy used when a workspace has
// more than one load worker.
type LoadMode int

const (
	// LoadAuto picks colored direct stamping when the Build-time coloring
	// looks profitable at the configured worker count, else sharded.
	LoadAuto LoadMode = iota
	// LoadSharded forces the shard-and-reduce baseline path.
	LoadSharded
	// LoadColored forces colored direct stamping whenever a coloring exists
	// (sharded remains the fallback when Build could not produce one).
	LoadColored
)

// SetLoadMode selects the parallel assembly strategy; it has no effect until
// SetLoadWorkers enables parallel loading.
func (ws *Workspace) SetLoadMode(m LoadMode) { ws.loadMode = m }

// autoColoredThreshold is the minimum estimated class-parallel speedup at
// which LoadAuto prefers the colored path; below it the coloring is
// considered degenerate (for example a dense supply node forcing most
// devices into singleton classes) and the sharded path wins.
func autoColoredThreshold(nw int) float64 {
	if t := 0.65 * float64(nw); t > 1.3 {
		return t
	}
	return 1.3
}

// ColoredSpeedupEstimate returns the idealized speedup of evaluating the
// color classes with nw workers: total devices over the summed per-class
// chunk counts. It ignores zeroing and per-device cost variation; it exists
// to detect degenerate colorings, not to predict wall-clock.
func (s *System) ColoredSpeedupEstimate(nw int) float64 {
	if len(s.colorClasses) == 0 || nw < 1 {
		return 0
	}
	devs, chunks := 0, 0
	for _, class := range s.colorClasses {
		devs += len(class)
		chunks += (len(class) + nw - 1) / nw
	}
	if chunks == 0 {
		return 0
	}
	return float64(devs) / float64(chunks)
}

func (ws *Workspace) useColored() bool {
	if len(ws.Sys.colorClasses) == 0 {
		return false
	}
	switch ws.loadMode {
	case LoadSharded:
		return false
	case LoadColored:
		return true
	default:
		return ws.Sys.ColoredSpeedupEstimate(ws.loadWorkers) >= autoColoredThreshold(ws.loadWorkers)
	}
}

// probeRecorder collects the rows a device writes during the Build-time
// recording probe. bRows separately tracks the rows written through AddB:
// a device that stamps the source vector is time-varying and can never be
// bypassed (its contribution changes even at a frozen iterate).
type probeRecorder struct {
	rows  []int
	bRows []int
}

func (r *probeRecorder) note(i int) { r.rows = append(r.rows, i) }

func (r *probeRecorder) noteB(i int) {
	r.rows = append(r.rows, i)
	r.bRows = append(r.bRows, i)
}

// buildColoring computes the conflict-free device classes for a compiled
// circuit. It returns nil — disabling the colored path — if any device
// panics during the recording probe.
func buildColoring(c *Circuit, pattern *sparse.Matrix, n, numStates int, devRows [][]int) (classes [][]int) {
	defer func() {
		if recover() != nil {
			classes = nil
		}
	}()
	devices := c.devices
	nd := len(devices)
	if nd == 0 {
		return nil
	}

	// Recording probe: evaluate every device once at x = 0 into throwaway
	// buffers, capturing its F/Q/B rows.
	rec := &probeRecorder{}
	ctx := EvalCtx{
		X:         make([]float64, n),
		SrcScale:  1,
		FirstIter: true,
		NoLimit:   true,
		SPrev:     make([]float64, numStates),
		SNext:     make([]float64, numStates),
		m:         pattern.Clone(),
		F:         make([]float64, n),
		Q:         make([]float64, n),
		B:         make([]float64, n),
		rec:       rec,
	}

	// footprint[d]: deduplicated union of Reserve rows and probe rows.
	footprint := make([][]int, nd)
	seen := make([]int, n) // row -> device index + 1 (dedup stamp)
	for di, d := range devices {
		rec.rows, rec.bRows = rec.rows[:0], rec.bRows[:0]
		d.Eval(&ctx)
		var rows []int
		for _, r := range devRows[di] {
			if seen[r] != di+1 {
				seen[r] = di + 1
				rows = append(rows, r)
			}
		}
		for _, r := range rec.rows {
			if seen[r] != di+1 {
				seen[r] = di + 1
				rows = append(rows, r)
			}
		}
		footprint[di] = rows
	}

	// Greedy coloring in device order: forbid the colors of every
	// already-colored device sharing a row, take the smallest free color.
	color := make([]int, nd)
	mark := make([]int, nd+1)   // color -> device index + 1 (forbidden stamp)
	rowDevs := make([][]int, n) // row -> colored devices writing it
	maxColor := 0
	for di := range devices {
		for _, r := range footprint[di] {
			for _, e := range rowDevs[r] {
				mark[color[e]] = di + 1
			}
		}
		cc := 0
		for mark[cc] == di+1 {
			cc++
		}
		color[di] = cc
		if cc > maxColor {
			maxColor = cc
		}
		for _, r := range footprint[di] {
			rowDevs[r] = append(rowDevs[r], di)
		}
	}
	classes = make([][]int, maxColor+1)
	for di, cc := range color {
		classes[cc] = append(classes[cc], di)
	}
	return classes
}

// zeroChunk zeroes worker w's contiguous share of v.
func zeroChunk(v []float64, w, nw int) {
	s := v[w*len(v)/nw : (w+1)*len(v)/nw]
	for i := range s {
		s[i] = 0
	}
}

// colorWorker is the per-gang-member body of the colored direct-stamp
// assembly: zero a share of the shared buffers, then stamp a chunk of every
// color class, with a barrier between phases. It is shared by the pooled
// path (persistent sched.Pool workers) and the legacy spawn path.
func (ws *Workspace) colorWorker(w, nw int, x []float64, p LoadParams) {
	var sense uint32
	ctx := &ws.wctx[w]
	*ctx = EvalCtx{
		X:         x,
		T:         p.Time,
		Alpha0:    p.Alpha0,
		Gmin:      p.Gmin,
		SrcScale:  p.SrcScale,
		FirstIter: p.FirstIter,
		NoLimit:   p.NoLimit,
		SPrev:     ws.SPrev,
		SNext:     ws.SNext,
		m:         ws.M,
		F:         ws.F,
		Q:         ws.Q,
		B:         ws.B,
	}
	classes := ws.Sys.colorClasses
	devices := ws.Sys.Circuit.devices
	// Phase 0: each worker zeroes its share of the shared buffers.
	zeroChunk(ws.M.Values, w, nw)
	zeroChunk(ws.F, w, nw)
	zeroChunk(ws.Q, w, nw)
	zeroChunk(ws.B, w, nw)
	ws.colorBar.Wait(&sense)
	// One phase per color class: rows are disjoint within the class, so
	// workers stamp into the shared buffers without synchronization.
	for _, class := range classes {
		lo := w * len(class) / nw
		hi := (w + 1) * len(class) / nw
		for _, di := range class[lo:hi] {
			devices[di].Eval(ctx)
		}
		ws.colorBar.Wait(&sense)
		if ws.colorBar.Poisoned() {
			return
		}
	}
}

// loadColored performs the colored direct-stamp assembly. With an attached
// gang pool the phases run on the pool's persistent workers; otherwise, on a
// single-CPU host it degrades to evaluating the classes serially (same
// accumulation order, so bit-identical results) unless ForceParallelLoad is
// set, in which case — and on genuinely multi-core hosts without a pool —
// it spawns transient worker goroutines per load.
func (ws *Workspace) loadColored(x []float64, p LoadParams) {
	if ws.pool.Gang() {
		ws.loadColoredPooled(x, p)
		return
	}
	if runtime.GOMAXPROCS(0) == 1 && !ws.ForceParallelLoad {
		ws.loadColoredSerial(x, p)
		return
	}
	start := time.Now()
	nw := ws.loadWorkers
	for len(ws.wctx) < nw {
		ws.wctx = append(ws.wctx, EvalCtx{})
	}
	ws.colorBar.Reset(int32(nw))
	var wg sync.WaitGroup
	for w := 1; w < nw; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ws.colorWorker(w, nw, x, p)
		}(w)
	}
	ws.colorWorker(0, nw, x, p)
	wg.Wait()
	ws.finishColoredParallel(x, p, nw, start)
}

// loadColoredPooled runs the colored assembly on the attached gang pool's
// persistent workers: no goroutine spawn per load, and a panicking device
// poisons the barrier (freeing the gang) before the pool re-raises the panic
// on the caller, where the engine's panic fences handle it like any serial
// device panic.
func (ws *Workspace) loadColoredPooled(x []float64, p LoadParams) {
	start := time.Now()
	pool := ws.pool
	nw := pool.Workers()
	for len(ws.wctx) < nw {
		ws.wctx = append(ws.wctx, EvalCtx{})
	}
	ws.colorBar.Reset(int32(nw))
	pool.Run(func(w int) {
		defer func() {
			if r := recover(); r != nil {
				ws.colorBar.Poison()
				panic(r)
			}
		}()
		ws.colorWorker(w, nw, x, p)
	})
	ws.finishColoredParallel(x, p, nw, start)
}

// finishColoredParallel folds the per-worker limiting flags, applies the
// coordinator tail and books the timing for a genuinely parallel colored
// load (wall time is the critical path).
func (ws *Workspace) finishColoredParallel(x []float64, p LoadParams, nw int, start time.Time) {
	ws.Limited = false
	for w := 0; w < nw; w++ {
		ws.Limited = ws.Limited || ws.wctx[w].Limited
	}
	ws.finishColored(x, p)
	d := time.Since(start).Nanoseconds()
	ws.LoadWallNanos += d
	ws.LoadCritNanos += d
}

// loadColoredSerial evaluates the color classes in class order on the
// calling goroutine. The accumulation order matches the parallel path
// exactly (within a class every row has a single writer), so the stamps are
// bit-identical; the critical-path accounting models what nw workers would
// have achieved, mirroring how the sharded path reports its shard maximum on
// under-provisioned hosts.
func (ws *Workspace) loadColoredSerial(x []float64, p LoadParams) {
	start := time.Now()
	classes := ws.Sys.colorClasses
	devices := ws.Sys.Circuit.devices
	nw := ws.loadWorkers
	ws.M.Zero()
	for i := range ws.F {
		ws.F[i] = 0
		ws.Q[i] = 0
		ws.B[i] = 0
	}
	zeroNanos := time.Since(start).Nanoseconds()
	ctx := &ws.evalCtx
	*ctx = EvalCtx{
		X:         x,
		T:         p.Time,
		Alpha0:    p.Alpha0,
		Gmin:      p.Gmin,
		SrcScale:  p.SrcScale,
		FirstIter: p.FirstIter,
		NoLimit:   p.NoLimit,
		SPrev:     ws.SPrev,
		SNext:     ws.SNext,
		m:         ws.M,
		F:         ws.F,
		Q:         ws.Q,
		B:         ws.B,
	}
	var modeledEval int64
	for _, class := range classes {
		cs := time.Now()
		for _, di := range class {
			devices[di].Eval(ctx)
		}
		cn := time.Since(cs).Nanoseconds()
		chunks := int64((len(class) + nw - 1) / nw)
		modeledEval += cn * chunks / int64(len(class))
	}
	ws.Limited = ctx.Limited
	tailStart := time.Now()
	ws.finishColored(x, p)
	tail := time.Since(tailStart).Nanoseconds()
	ws.LoadWallNanos += time.Since(start).Nanoseconds()
	ws.LoadCritNanos += zeroNanos/int64(nw) + modeledEval + tail
}

// finishColored applies the coordinator-side tail shared by both colored
// paths: gmin stepping, nodeset clamps and fault injection.
func (ws *Workspace) finishColored(x []float64, p LoadParams) {
	if p.NodeGmin > 0 {
		for i, slot := range ws.Sys.diagSlots {
			ws.M.Add(slot, p.NodeGmin)
			ws.F[i] += p.NodeGmin * x[i]
		}
	}
	ws.applyClamps(x, p)
	ws.injectLoadFault(p)
}
