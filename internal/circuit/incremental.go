// Incremental MNA assembly: linear-stamp caching and SPICE3-style device
// bypass.
//
// Every Newton iteration at every (speculative or committed) time point
// normally re-evaluates all devices through per-device Eval interface calls.
// Two observations make most of that work redundant:
//
//  1. Linear devices (R, C, L, sources, controlled sources) contribute
//     Jacobian stamps that are constant and F/Q vectors that are exactly
//     J_F·x and J_Q·x. For a fixed Alpha0 their Jacobian contribution is a
//     constant template that can be copied instead of re-stamped.
//  2. Nonlinear devices frequently sit at unchanged operating points between
//     iterations and between adjacent pipeline points. When every
//     controlling voltage moved less than reltol·|v|+abstol since the last
//     evaluation, replaying the journaled stamp deltas is indistinguishable
//     from re-evaluating (the classic SPICE3 bypass).
//
// The engine has two halves. The per-System incBasis (built once, immutable,
// shared by all workspaces) holds the exact linear Jacobian split and the
// per-device stamp footprints. The per-Workspace incState holds the mutable
// template LRU and bypass journals, so concurrent WavePipe points never
// share device state: each pipeline lane owns an independent bypass/cache
// generation.
//
// Safety policy (see DESIGN.md):
//   - bypass is a two-stage test: the voltage tolerance AND the linearized
//     predicted-residual check (replayable) must both pass — voltage alone is
//     unsafe for exponential devices,
//   - a journal recorded under active junction limiting is not replayed,
//   - journals are keyed by (Alpha0 bits, Gmin bits, generation); any
//     step-size change or gmin ramp misses the key, and LTE rejections,
//     recovery actions, and adopted foreign state bump the generation,
//   - NoLimit bookkeeping loads and source-stepping loads always take the
//     plain path,
//   - a load with bypassed evaluations is never allowed to be the iteration
//     that declares convergence (enforced in internal/newton),
//   - the engine covers the serial load path only; parallel colored/sharded
//     loads are left untouched.
package circuit

import (
	"math"
	"time"

	"wavepipe/internal/sparse"
)

// LinearStamper marks a device whose F and Q stamps are exactly linear in
// the iterate (F = J_F·x, Q = J_Q·x with constant Jacobians) and whose only
// time dependence, if any, lives in the source vector B. The returned flag
// reports whether the device stamps B at all: such devices (independent
// sources) are re-evaluated every load for their B contribution, while their
// constant Jacobian lives in the cached template.
//
// Implementing this interface is a correctness promise, not a hint: the
// finite-difference Jacobian tests in internal/device are the safety net.
type LinearStamper interface {
	LinearStamps() (timeVaryingB bool)
}

// DefaultBypassAbsTol is the absolute term of the bypass voltage test when
// the caller does not supply one (1 µV, the SPICE3 vntol default).
const DefaultBypassAbsTol = 1e-6

// DefaultBypassAbsCurrent is the absolute floor of the predicted-residual
// bypass guard (1 pA, the SPICE3 abstol default). The voltage test alone is
// unsafe for exponential devices — a 0.7 mV move on a conducting junction is
// a ~3% current change, enough to make Newton limit-cycle near convergence —
// so bypass additionally requires the linearized residual change to be
// negligible (the SPICE3 cdhat-vs-cd test).
const DefaultBypassAbsCurrent = 1e-12

// bypassMinNonlinear is the profitability gate of the device-bypass stage.
// A load whose converging iteration bypassed anything must be followed by a
// plain certification iteration (see internal/newton), which costs one full
// load+factor+solve per time point. Bypassing a handful of cheap device
// evaluations can never pay for that, so circuits with fewer nonlinear
// devices than this keep the linear-template layer but evaluate nonlinear
// devices plainly. Latency-rich digital circuits (tens to hundreds of
// mostly-quiescent transistors) clear the gate easily.
const bypassMinNonlinear = 16

// Dynamic profitability gate. The static device-count gate cannot see whether
// a circuit actually sits still: a busy circuit clears it yet bypasses so few
// evaluations per load that the certification loads dominate. The engine
// therefore accounts the realized bypass fraction over windows of
// bypassWindow loads (certification loads count against it — they are real
// cost); a window below bypassMinHitRate sends the workspace to the
// template-only path for bypassCooldown loads before probing again, so a
// circuit that quiets down later still gets its bypass wins.
const (
	bypassWindow     = 128
	bypassMinHitRate = 0.5
	bypassCooldown   = 2048
)

// templateWays is the associativity of the per-workspace linear template
// LRU. Variable-step runs revisit a handful of step sizes (and therefore
// Alpha0 values); four ways cover the trap/Gear alternation plus the halved
// and doubled neighbors without thrashing.
const templateWays = 4

// incBasis is the immutable Build-time half of the incremental engine,
// shared by every workspace of a System.
type incBasis struct {
	// jf and jq hold the exact linear dF/dx and dQ/dx: the split-assembly
	// probe routes AddJ into jf and AddJQ raw into jq, so the separation has
	// no finite-difference error. The Alpha0-blended template jf + α0·jq is
	// cached per workspace.
	jf, jq *sparse.Matrix

	// Compact forms of jf/jq: the full pattern is dominated by nonlinear
	// slots that are zero in both, so the template blend and the linear
	// F/Q rebuild iterate only the entries that exist. linPos/linJF/linJQ
	// drive the blend (tv[linPos[t]] = linJF[t] + α0·linJQ[t]); the
	// (row, col, value) triples drive the two matrix-vector products.
	linPos       []int
	linJF, linJQ []float64
	jfR, jfC     []int
	jfV          []float64
	jqR, jqC     []int
	jqV          []float64

	// sources lists linear devices with time-varying B (independent
	// sources); they are re-evaluated each load with their J/F/Q writes
	// routed into dump buffers so only B lands in the workspace.
	sources []int

	// nonlinear lists the device indices evaluated (or bypassed) each load.
	nonlinear []int

	// The remaining slices are indexed by global device index.
	canBypass []bool  // false when the device stamps B (time-varying)
	devSlots  [][]int // dedup'd Jacobian slots (journal footprint)
	devPos    [][]int // CSC position per devSlots entry (direct Values index)
	devRows   [][]int // dedup'd F/Q rows (journal footprint)
	devCols   [][]int // dedup'd controlling unknowns (bypass read set)
	devState0 []int   // first per-worker state slot
	devStates []int   // number of per-worker state slots

	// devSlotRow/devSlotCol map each dedup'd slot to the index of its
	// equation row within devRows and of its controlling unknown within
	// devCols; the predicted-residual bypass guard uses them to accumulate
	// Σ J[k]·Δv per row without touching global-sized scratch.
	devSlotRow [][]int
	devSlotCol [][]int

	// maxRows is the largest per-device row footprint, sizing the guard's
	// per-workspace accumulator.
	maxRows int
}

// incrementalBasis returns the System's incremental-assembly basis, building
// it on first use. Returns nil when the circuit does not support the engine
// (a device probe panicked). Safe for concurrent callers.
func (s *System) incrementalBasis() *incBasis {
	s.incOnce.Do(func() { s.inc = buildIncBasis(s) })
	return s.inc
}

// buildIncBasis probes the compiled circuit once and constructs the shared
// basis. Like buildColoring it bails out (returning nil) if any device
// panics during the probe, which simply disables the incremental engine.
func buildIncBasis(s *System) (basis *incBasis) {
	defer func() {
		if recover() != nil {
			basis = nil
		}
	}()
	devices := s.Circuit.devices
	nd := len(devices)
	if nd == 0 {
		return nil
	}
	// Mirror Build's Bind assignment to recover each device's state window.
	devState0 := make([]int, nd)
	devStates := make([]int, nd)
	st := 0
	for i, d := range devices {
		devState0[i] = st
		devStates[i] = d.States()
		st += devStates[i]
	}
	b := &incBasis{
		jf:         s.pattern.Clone(),
		jq:         s.pattern.Clone(),
		canBypass:  make([]bool, nd),
		devSlots:   make([][]int, nd),
		devPos:     make([][]int, nd),
		devRows:    make([][]int, nd),
		devCols:    make([][]int, nd),
		devSlotRow: make([][]int, nd),
		devSlotCol: make([][]int, nd),
		devState0:  devState0,
		devStates:  devStates,
	}
	n := s.N
	dumpF := make([]float64, n)
	dumpQ := make([]float64, n)
	dumpB := make([]float64, n)
	// Split probe at x = 0 for the linear devices: AddJ routes into jf and
	// AddJQ raw into jq (the mq routing used by AC assembly), giving an
	// exact J_F / J_Q separation with no finite-difference error. F, Q and
	// B writes are discarded — for a linear device F(0) = Q(0) = 0 and its
	// B contribution, if any, is re-stamped every load.
	linCtx := EvalCtx{
		X:         make([]float64, n),
		SrcScale:  1,
		FirstIter: true,
		NoLimit:   true,
		SPrev:     make([]float64, s.NumStates),
		SNext:     make([]float64, s.NumStates),
		m:         b.jf,
		mq:        b.jq,
		F:         dumpF,
		Q:         dumpQ,
		B:         dumpB,
	}
	// Recording probe for the nonlinear devices: capture the F/Q/B rows each
	// one writes, so rows never named in Reserve still enter its journal
	// footprint, and so B-stamping devices are barred from bypass.
	rec := &probeRecorder{}
	probeCtx := EvalCtx{
		X:         make([]float64, n),
		SrcScale:  1,
		FirstIter: true,
		NoLimit:   true,
		SPrev:     make([]float64, s.NumStates),
		SNext:     make([]float64, s.NumStates),
		m:         s.pattern.Clone(),
		F:         dumpF,
		Q:         dumpQ,
		B:         dumpB,
		rec:       rec,
	}
	seenRow := make([]int, n)
	seenCol := make([]int, n)
	seenSlot := make([]int, s.pattern.NNZ())
	var keptRows, keptCols []int
	for di, d := range devices {
		if ls, ok := d.(LinearStamper); ok && devStates[di] == 0 {
			d.Eval(&linCtx)
			if ls.LinearStamps() {
				b.sources = append(b.sources, di)
			}
			continue
		}
		// Nonlinear (or stateful) device: record its replay footprint.
		b.nonlinear = append(b.nonlinear, di)
		rec.rows, rec.bRows = rec.rows[:0], rec.bRows[:0]
		d.Eval(&probeCtx)
		b.canBypass[di] = len(rec.bRows) == 0
		// Dedup the Jacobian slots: devices may legitimately reserve the
		// same slot twice (the MOSFET's shared bulk-junction entries), and a
		// journal replay must add each delta exactly once.
		keptRows, keptCols = keptRows[:0], keptCols[:0]
		for k, slot := range s.devSlots[di] {
			if seenSlot[slot] != di+1 {
				seenSlot[slot] = di + 1
				b.devSlots[di] = append(b.devSlots[di], slot)
				b.devPos[di] = append(b.devPos[di], s.pattern.SlotPos(slot))
				keptRows = append(keptRows, s.devSlotRows[di][k])
				keptCols = append(keptCols, s.devSlotCols[di][k])
			}
		}
		for _, r := range append(s.devRows[di], rec.rows...) {
			if seenRow[r] != di+1 {
				seenRow[r] = di + 1
				b.devRows[di] = append(b.devRows[di], r)
			}
		}
		for _, c := range s.devCols[di] {
			if seenCol[c] != di+1 {
				seenCol[c] = di + 1
				b.devCols[di] = append(b.devCols[di], c)
			}
		}
		// Map each kept slot's (row, col) onto its index in the dedup'd
		// footprint; both are guaranteed present (a slot only exists when
		// row and col are non-Ground, and Reserve named both).
		b.devSlotRow[di] = make([]int, len(keptRows))
		b.devSlotCol[di] = make([]int, len(keptCols))
		for k, r := range keptRows {
			b.devSlotRow[di][k] = indexOf(b.devRows[di], r)
		}
		for k, c := range keptCols {
			b.devSlotCol[di][k] = indexOf(b.devCols[di], c)
		}
		if len(b.devRows[di]) > b.maxRows {
			b.maxRows = len(b.devRows[di])
		}
	}
	// Compress the linear split: record only the pattern entries where jf or
	// jq is nonzero, with (row, col, value) triples for the mat-vec products.
	for col := 0; col < n; col++ {
		m := b.jf
		for p := m.ColPtr[col]; p < m.ColPtr[col+1]; p++ {
			fv, qv := b.jf.Values[p], b.jq.Values[p]
			if fv == 0 && qv == 0 {
				continue
			}
			b.linPos = append(b.linPos, p)
			b.linJF = append(b.linJF, fv)
			b.linJQ = append(b.linJQ, qv)
			if fv != 0 {
				b.jfR = append(b.jfR, m.RowIdx[p])
				b.jfC = append(b.jfC, col)
				b.jfV = append(b.jfV, fv)
			}
			if qv != 0 {
				b.jqR = append(b.jqR, m.RowIdx[p])
				b.jqC = append(b.jqC, col)
				b.jqV = append(b.jqV, qv)
			}
		}
	}
	return b
}

// indexOf returns the position of v in xs. The footprints it searches are a
// handful of entries long, so a linear scan beats any map.
func indexOf(xs []int, v int) int {
	for i, x := range xs {
		if x == v {
			return i
		}
	}
	return -1
}

// devJournal is one nonlinear device's bypass cache: the controlling
// voltages at its last evaluation and the stamp deltas it wrote, replayable
// onto a freshly templated workspace.
type devJournal struct {
	valid               bool
	limited             bool // recorded under active junction limiting — never replayed
	gen                 uint64
	alphaBits, gminBits uint64
	v                   []float64 // controlling unknowns at capture (read set)
	jd                  []float64 // Jacobian slot deltas
	fd                  []float64 // F row deltas
	qd                  []float64 // Q row deltas
	st                  []float64 // per-worker state window written at capture
}

// tmplWay is one way of the linear-template LRU.
type tmplWay struct {
	valid     bool
	alphaBits uint64
	used      uint64
	values    []float64
}

// incState is the mutable per-workspace half of the incremental engine.
type incState struct {
	basis    *incBasis
	rel, abs float64

	// doBypass gates the device-bypass stage (journaling + replay); false
	// when the circuit has too few nonlinear devices for bypass to pay for
	// the plain certification iteration it forces at convergence. The
	// linear-template layer is unaffected.
	doBypass bool

	// gen is this workspace's bypass generation; bumping it invalidates
	// every journal at once (step rejections, recovery actions, adopted
	// foreign state).
	gen      uint64
	skipOnce bool // next eligible load takes the plain path (one-shot)

	stamp uint64 // LRU clock
	ways  [templateWays]tmplWay

	journals []devJournal

	// dump buffers absorb the J/F/Q writes of per-load source evaluations
	// (their constant stamps already live in the template); lazily
	// allocated, reused for the life of the workspace.
	dumpM        *sparse.Matrix
	dumpF, dumpQ []float64

	// pred accumulates the predicted per-row residual change during the
	// bypass guard; sized to the largest device footprint at enable time.
	pred []float64

	// Dynamic profitability accounting: bypassed evaluations within the
	// current window of loads, and the remaining plain-path loads of an
	// unprofitable window's cooldown.
	winLoads    int
	winBypassed int64
	coolLoads   int

	lastBypassed int
	lastLinear   bool

	bypassedEvals int64
	linearHits    int64
}

// SetDeviceBypass enables the incremental assembly engine on this workspace
// with the given relative voltage tolerance (typically the solver reltol).
// abs ≤ 0 selects DefaultBypassAbsTol; rel ≤ 0 disables the engine. Enabling
// is a no-op when the circuit does not support it (a Build-time probe
// failed), keeping the plain path in charge.
func (ws *Workspace) SetDeviceBypass(rel, abs float64) {
	if rel <= 0 {
		ws.inc = nil
		return
	}
	basis := ws.Sys.incrementalBasis()
	if basis == nil {
		ws.inc = nil
		return
	}
	if abs <= 0 {
		abs = DefaultBypassAbsTol
	}
	ws.inc = &incState{
		basis:    basis,
		rel:      rel,
		abs:      abs,
		doBypass: len(basis.nonlinear) >= bypassMinNonlinear,
		journals: make([]devJournal, len(ws.Sys.Circuit.devices)),
		pred:     make([]float64, basis.maxRows),
	}
}

// DeviceBypassEnabled reports whether the incremental engine is active.
func (ws *Workspace) DeviceBypassEnabled() bool { return ws.inc != nil }

// InvalidateDeviceBypass discards every device-bypass journal (the linear
// template survives — it depends only on Alpha0). Called after LTE
// rejections, recovery-ladder actions, history truncations, and whenever the
// workspace adopts foreign limiting state.
func (ws *Workspace) InvalidateDeviceBypass() {
	if ws.inc != nil {
		ws.inc.gen++
	}
}

// BypassGeneration returns the incremental engine's current generation
// counter (0 when device bypass is disabled). Checkpoints record it and
// regression tests assert that recovery-ladder escalations advance it.
func (ws *Workspace) BypassGeneration() uint64 {
	if ws.inc == nil {
		return 0
	}
	return ws.inc.gen
}

// RestoreBypassGeneration continues the generation counter from a
// checkpointed value. Journals are never serialized, so nothing can replay
// across a resume; restoring the counter only preserves its monotonicity
// for observability. Values at or below the current counter are ignored.
func (ws *Workspace) RestoreBypassGeneration(gen uint64) {
	if ws.inc != nil && gen > ws.inc.gen {
		ws.inc.gen = gen
	}
}

// DisableBypassOnce suppresses journal replay for the next eligible load:
// the assembly stays incremental (the linear template is exact) but every
// nonlinear device is fully evaluated and re-journaled. The Newton
// convergence guard uses it so a load with bypassed evaluations is never the
// iteration that declares convergence, and warm-start bookkeeping uses it to
// leave behind an exact full assembly.
func (ws *Workspace) DisableBypassOnce() {
	if ws.inc != nil {
		ws.inc.skipOnce = true
	}
}

// LastLoadBypassed returns how many device evaluations the most recent Load
// bypassed (0 when the engine is off or the load took the plain path).
func (ws *Workspace) LastLoadBypassed() int {
	if ws.inc == nil {
		return 0
	}
	return ws.inc.lastBypassed
}

// LastLoadLinearHit reports whether the most recent Load started from a
// cached linear template (an LRU hit).
func (ws *Workspace) LastLoadLinearHit() bool {
	if ws.inc == nil {
		return false
	}
	return ws.inc.lastLinear
}

// DeviceBypassCounters returns the cumulative incremental-assembly counters:
// bypassed device evaluations and linear-template LRU hits.
func (ws *Workspace) DeviceBypassCounters() (bypassedEvals, linearHits int64) {
	if ws.inc == nil {
		return 0, 0
	}
	return ws.inc.bypassedEvals, ws.inc.linearHits
}

// replayable runs the two-stage bypass test.
//
// Stage one is the classic SPICE3 voltage test: every controlling unknown
// must sit within rel·max(|v|,|v_journal|)+abs of its journaled value.
//
// Stage two mirrors SPICE3's cdhat-vs-cd check: even when every voltage
// passed, the *linearized* residual change Σ J[k]·Δv must be negligible
// against the device's journaled contribution on every row it stamps.
// Without it, a conducting junction (I ∝ e^(v/vt)) tolerates millivolt moves
// whose replayed-stamp error rivals the Newton convergence band, and the
// iteration limit-cycles.
//
// On success inc.pred holds the per-row predicted change (indexed like
// devRows[di]); the replay applies it as a first-order correction to the
// journaled F.
func (inc *incState) replayable(di int, j *devJournal, x []float64, alpha0 float64) bool {
	basis := inc.basis
	cols := basis.devCols[di]
	moved := false
	for k, c := range cols {
		r := j.v[k]
		v := x[c]
		d := v - r
		if d != 0 {
			moved = true
		}
		if d < 0 {
			d = -d
		}
		ar := r
		if ar < 0 {
			ar = -ar
		}
		av := v
		if av < 0 {
			av = -av
		}
		if ar > av {
			av = ar
		}
		if d > inc.rel*av+inc.abs {
			return false
		}
	}
	rows := basis.devRows[di]
	pred := inc.pred[:len(rows)]
	for i := range pred {
		pred[i] = 0
	}
	if !moved {
		// Exactly the journaled operating point: the prediction is zero and
		// the replay is exact.
		return true
	}
	slotRow, slotCol := basis.devSlotRow[di], basis.devSlotCol[di]
	for k := range basis.devSlots[di] {
		ci := slotCol[k]
		pred[slotRow[k]] += j.jd[k] * (x[cols[ci]] - j.v[ci])
	}
	for i, d := range pred {
		if d < 0 {
			d = -d
		}
		// jd was captured at the same Alpha0 (keyed by alphaBits), so the
		// blended reference fd + α0·qd is the residual contribution the
		// journal replays into row i.
		ref := j.fd[i] + alpha0*j.qd[i]
		if ref < 0 {
			ref = -ref
		}
		if d > inc.rel*ref+DefaultBypassAbsCurrent {
			return false
		}
	}
	return true
}

// template returns the Alpha0-blended linear template values, serving from
// the LRU when this Alpha0 was seen recently and otherwise evicting the
// least recently used way. Way buffers are allocated once and reused across
// evictions, so steady-state loads allocate nothing.
func (inc *incState) template(alpha0 float64) []float64 {
	bits := math.Float64bits(alpha0)
	inc.stamp++
	for w := range inc.ways {
		way := &inc.ways[w]
		if way.valid && way.alphaBits == bits {
			way.used = inc.stamp
			inc.lastLinear = true
			inc.linearHits++
			return way.values
		}
	}
	victim := &inc.ways[0]
	for w := 1; w < templateWays; w++ {
		if inc.ways[w].used < victim.used {
			victim = &inc.ways[w]
		}
	}
	basis := inc.basis
	if victim.values == nil {
		victim.values = make([]float64, basis.jf.NNZ())
	}
	tv := victim.values
	// Only entries with a linear contribution ever change; positions outside
	// linPos stay zero for the life of the way buffer.
	for t, p := range basis.linPos {
		tv[p] = basis.linJF[t] + alpha0*basis.linJQ[t]
	}
	victim.valid = true
	victim.alphaBits = bits
	victim.used = inc.stamp
	inc.lastLinear = false
	return tv
}

// loadIncremental assembles the system through the incremental engine.
// Returns false when this load must take the plain path (bookkeeping loads,
// source stepping, or a one-shot bypass suppression), leaving the workspace
// untouched.
func (ws *Workspace) loadIncremental(x []float64, p LoadParams) bool {
	inc := ws.inc
	// NoLimit bookkeeping loads must evaluate charges exactly at the
	// converged solution; source-stepping loads rescale B under the
	// template's feet. Both take the plain path.
	if p.NoLimit || p.SrcScale != 1 {
		return false
	}
	// A one-shot replay suppression still assembles incrementally — the
	// template and MulVec products are exact — but every nonlinear device is
	// fully evaluated (and journaled, so a certification load doubles as the
	// journal refresh at the converged point).
	replay := !inc.skipOnce
	inc.skipOnce = false
	start := time.Now()
	defer func() {
		d := time.Since(start).Nanoseconds()
		ws.LoadWallNanos += d
		ws.LoadCritNanos += d
	}()
	basis := inc.basis
	// Linear layer: one memcpy of the blended template replaces re-stamping
	// every linear device, and the compact split triples rebuild the linear
	// part of F and Q without touching the nonlinear-dominated pattern.
	copy(ws.M.Values, inc.template(p.Alpha0))
	for i := range ws.F {
		ws.F[i] = 0
	}
	for t, r := range basis.jfR {
		ws.F[r] += basis.jfV[t] * x[basis.jfC[t]]
	}
	for i := range ws.Q {
		ws.Q[i] = 0
	}
	for t, r := range basis.jqR {
		ws.Q[r] += basis.jqV[t] * x[basis.jqC[t]]
	}
	for i := range ws.B {
		ws.B[i] = 0
	}
	devices := ws.Sys.Circuit.devices
	ctx := &ws.evalCtx
	*ctx = EvalCtx{
		X:         x,
		T:         p.Time,
		Alpha0:    p.Alpha0,
		Gmin:      p.Gmin,
		SrcScale:  p.SrcScale,
		FirstIter: p.FirstIter,
		NoLimit:   p.NoLimit,
		SPrev:     ws.SPrev,
		SNext:     ws.SNext,
		m:         ws.M,
		F:         ws.F,
		Q:         ws.Q,
		B:         ws.B,
	}
	if len(basis.sources) > 0 {
		// Independent sources re-stamp only B each load; their constant
		// Jacobian and F/Q contributions are already in the template and the
		// MulVec products, so those writes drain into dump buffers.
		if inc.dumpM == nil {
			inc.dumpM = ws.M.Clone()
			inc.dumpF = make([]float64, ws.Sys.N)
			inc.dumpQ = make([]float64, ws.Sys.N)
		}
		ctx.m, ctx.F, ctx.Q = inc.dumpM, inc.dumpF, inc.dumpQ
		for _, di := range basis.sources {
			devices[di].Eval(ctx)
		}
		ctx.m, ctx.F, ctx.Q = ws.M, ws.F, ws.Q
	}
	alphaBits := math.Float64bits(p.Alpha0)
	gminBits := math.Float64bits(p.Gmin)
	bypassed := 0
	limited := false
	if !inc.doBypass || inc.coolLoads > 0 {
		// Below the profitability gate, or cooling down after an unprofitable
		// accounting window: evaluate nonlinear devices plainly (no
		// journaling, no replay) on top of the templated linear layer.
		if inc.coolLoads > 0 {
			inc.coolLoads--
		}
		for _, di := range basis.nonlinear {
			devices[di].Eval(ctx)
		}
		ws.Limited = ctx.Limited
		inc.lastBypassed = 0
		if p.NodeGmin > 0 {
			for i, slot := range ws.Sys.diagSlots {
				ws.M.Add(slot, p.NodeGmin)
				ws.F[i] += p.NodeGmin * x[i]
			}
		}
		ws.applyClamps(x, p)
		ws.injectLoadFault(p)
		return true
	}
	for _, di := range basis.nonlinear {
		j := &inc.journals[di]
		cols := basis.devCols[di]
		if replay && basis.canBypass[di] && j.valid && !j.limited &&
			j.gen == inc.gen && j.alphaBits == alphaBits && j.gminBits == gminBits &&
			inc.replayable(di, j, x, p.Alpha0) {
			// Bypass: replay the journaled stamp deltas and state. The F
			// replay is corrected to first order with the Σ J[k]·Δv terms
			// replayable just accumulated in inc.pred — a frozen residual
			// would stall Newton inside the tolerance ball (Δx stops
			// shrinking once the residual stops responding to x), while the
			// linearized replay is a consistent model Newton contracts on.
			mv := ws.M.Values
			for k, pos := range basis.devPos[di] {
				mv[pos] += j.jd[k]
			}
			for k, r := range basis.devRows[di] {
				ws.F[r] += j.fd[k] + inc.pred[k]
				ws.Q[r] += j.qd[k]
			}
			s0 := basis.devState0[di]
			for k, v := range j.st {
				ws.SNext[s0+k] = v
			}
			bypassed++
			continue
		}
		// Capture: snapshot the device's footprint, evaluate, journal the
		// deltas for later replay.
		pos := basis.devPos[di]
		rows := basis.devRows[di]
		if j.jd == nil {
			j.jd = make([]float64, len(pos))
			j.fd = make([]float64, len(rows))
			j.qd = make([]float64, len(rows))
			j.st = make([]float64, basis.devStates[di])
			j.v = make([]float64, len(cols))
		}
		mv := ws.M.Values
		for k, pp := range pos {
			j.jd[k] = mv[pp]
		}
		for k, r := range rows {
			j.fd[k] = ws.F[r]
			j.qd[k] = ws.Q[r]
		}
		ctx.Limited = false
		devices[di].Eval(ctx)
		j.limited = ctx.Limited
		limited = limited || ctx.Limited
		for k, pp := range pos {
			j.jd[k] = mv[pp] - j.jd[k]
		}
		for k, r := range rows {
			j.fd[k] = ws.F[r] - j.fd[k]
			j.qd[k] = ws.Q[r] - j.qd[k]
		}
		s0 := basis.devState0[di]
		for k := range j.st {
			j.st[k] = ws.SNext[s0+k]
		}
		for k, c := range cols {
			j.v[k] = x[c]
		}
		j.alphaBits, j.gminBits, j.gen = alphaBits, gminBits, inc.gen
		j.valid = true
	}
	ws.Limited = limited
	inc.lastBypassed = bypassed
	inc.bypassedEvals += int64(bypassed)
	inc.winBypassed += int64(bypassed)
	if inc.winLoads++; inc.winLoads >= bypassWindow {
		if float64(inc.winBypassed) < bypassMinHitRate*float64(bypassWindow)*float64(len(basis.nonlinear)) {
			inc.coolLoads = bypassCooldown
		}
		inc.winLoads, inc.winBypassed = 0, 0
	}
	if p.NodeGmin > 0 {
		for i, slot := range ws.Sys.diagSlots {
			ws.M.Add(slot, p.NodeGmin)
			ws.F[i] += p.NodeGmin * x[i]
		}
	}
	ws.applyClamps(x, p)
	ws.injectLoadFault(p)
	return true
}
