package circuit

import (
	"math"
	"testing"
)

// stubDevice is a minimal device for exercising the circuit plumbing: a
// conductance g between P and N with one branch and one state slot.
type stubDevice struct {
	name               string
	p, n               int
	g                  float64
	branch0            int
	state0             int
	spp, spn, snp, snn int
}

func (d *stubDevice) Name() string  { return d.name }
func (d *stubDevice) Branches() int { return 1 }
func (d *stubDevice) States() int   { return 2 }
func (d *stubDevice) Bind(b, s int) { d.branch0, d.state0 = b, s }
func (d *stubDevice) Reserve(r *Reserver) {
	d.spp = r.J(d.p, d.p)
	d.spn = r.J(d.p, d.n)
	d.snp = r.J(d.n, d.p)
	d.snn = r.J(d.n, d.n)
	r.J(d.branch0, d.branch0)
}
func (d *stubDevice) Eval(e *EvalCtx) {
	v := e.V(d.p) - e.V(d.n)
	e.AddF(d.p, d.g*v)
	e.AddF(d.n, -d.g*v)
	e.AddJ(d.spp, d.g)
	e.AddJ(d.spn, -d.g)
	e.AddJ(d.snp, -d.g)
	e.AddJ(d.snn, d.g)
	// Branch row: i = 0.
	e.AddF(d.branch0, e.X[d.branch0])
	e.AddJ(-1, 123) // ground stamp must be discarded
	e.SNext[d.state0] = 42
	e.AddQ(d.p, 1e-9*v)
	e.AddB(d.p, 2)
}

func TestNodeManagement(t *testing.T) {
	c := New("t")
	if c.Node("0") != Ground || c.Node("gnd") != Ground || c.Node("GND") != Ground {
		t.Fatal("ground aliases")
	}
	a := c.Node("a")
	b := c.Node("b")
	if a == b {
		t.Fatal("distinct nodes collide")
	}
	if got := c.Node("a"); got != a {
		t.Fatal("Node not idempotent")
	}
	if got, ok := c.FindNode("a"); !ok || got != a {
		t.Fatal("FindNode")
	}
	if _, ok := c.FindNode("zzz"); ok {
		t.Fatal("FindNode invented a node")
	}
	if g, ok := c.FindNode("0"); !ok || g != Ground {
		t.Fatal("FindNode ground")
	}
	if c.NodeName(a) != "a" || c.NodeName(Ground) != "0" {
		t.Fatal("NodeName")
	}
	if c.NumNodes() != 2 {
		t.Fatalf("NumNodes = %d", c.NumNodes())
	}
}

func TestBuildEmptyCircuitFails(t *testing.T) {
	if _, err := New("empty").Build(); err == nil {
		t.Fatal("expected error")
	}
}

func TestBuildFloatingNodeFails(t *testing.T) {
	c := New("float")
	a := c.Node("a")
	c.Node("orphan") // never connected
	c.Add(&stubDevice{name: "S1", p: a, n: Ground, g: 1})
	if _, err := c.Build(); err == nil {
		t.Fatal("expected floating-node error")
	}
}

func TestBuildAssignsBranchesAndStates(t *testing.T) {
	c := New("t")
	a := c.Node("a")
	d1 := &stubDevice{name: "S1", p: a, n: Ground, g: 1}
	d2 := &stubDevice{name: "S2", p: a, n: Ground, g: 2}
	c.Add(d1)
	c.Add(d2)
	sys, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	if sys.NumNodes != 1 || sys.NumBranches != 2 || sys.N != 3 {
		t.Fatalf("sizes: %d nodes, %d branches, %d unknowns", sys.NumNodes, sys.NumBranches, sys.N)
	}
	if d1.branch0 != 1 || d2.branch0 != 2 {
		t.Fatalf("branch bases: %d, %d", d1.branch0, d2.branch0)
	}
	if d1.state0 != 0 || d2.state0 != 2 || sys.NumStates != 4 {
		t.Fatalf("state bases: %d, %d, total %d", d1.state0, d2.state0, sys.NumStates)
	}
}

func TestWorkspaceLoadAndResidual(t *testing.T) {
	c := New("t")
	a := c.Node("a")
	c.Add(&stubDevice{name: "S1", p: a, n: Ground, g: 0.5})
	sys, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	ws := sys.NewWorkspace()
	x := []float64{2, 0.1}
	ws.Load(x, LoadParams{Alpha0: 100, SrcScale: 0.5, NodeGmin: 1e-3})
	// F[a] = 0.5*2 + NodeGmin*2, Q[a] = 2e-9, B[a] = 0.5*2 (SrcScale).
	if got := ws.F[0]; math.Abs(got-(1+2e-3)) > 1e-15 {
		t.Fatalf("F = %g", got)
	}
	if got := ws.Q[0]; math.Abs(got-2e-9) > 1e-24 {
		t.Fatalf("Q = %g", got)
	}
	if got := ws.B[0]; math.Abs(got-1) > 1e-15 {
		t.Fatalf("B = %g", got)
	}
	// Jacobian diagonal: g + NodeGmin (AddJQ unused by the stub on diag).
	if got := ws.M.At(0, 0); math.Abs(got-0.501) > 1e-15 {
		t.Fatalf("J = %g", got)
	}
	// Residual with history vector.
	r := make([]float64, 2)
	qh := []float64{7, 0}
	ws.Residual(100, qh, r)
	want := (1 + 2e-3) + 100*2e-9 + 7 - 1
	if math.Abs(r[0]-want) > 1e-12 {
		t.Fatalf("R = %g, want %g", r[0], want)
	}
	ws.Residual(100, nil, r)
	if math.Abs(r[0]-(want-7)) > 1e-12 {
		t.Fatalf("R without hist = %g", r[0])
	}
	// State plumbing.
	if ws.SNext[0] != 42 {
		t.Fatal("device state not written")
	}
	ws.FlipState()
	if ws.SPrev[0] != 42 {
		t.Fatal("FlipState")
	}
	ws2 := sys.NewWorkspace()
	ws2.CopyStateFrom(ws)
	if ws2.SPrev[0] != 42 {
		t.Fatal("CopyStateFrom")
	}
}

func TestEvalCtxGroundHandling(t *testing.T) {
	e := EvalCtx{X: []float64{3}}
	if e.V(Ground) != 0 || e.V(0) != 3 {
		t.Fatal("V")
	}
	// Adds to ground rows must be ignored without panicking.
	e.F = []float64{0}
	e.Q = []float64{0}
	e.B = []float64{0}
	e.SrcScale = 1
	e.AddF(Ground, 5)
	e.AddQ(Ground, 5)
	e.AddB(Ground, 5)
	if e.F[0] != 0 || e.Q[0] != 0 || e.B[0] != 0 {
		t.Fatal("ground adds leaked")
	}
}

func TestLoadSplitSeparatesGAndC(t *testing.T) {
	c := New("split")
	a := c.Node("a")
	c.Add(&stubDevice{name: "S1", p: a, n: Ground, g: 0.25})
	sys, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	ws := sys.NewWorkspace()
	x := []float64{2, 0}
	ws.LoadSplit(x, LoadParams{SrcScale: 1})
	// The stub stamps only static conductance; MC must stay zero and M must
	// carry g regardless of Alpha0 (which LoadSplit ignores).
	if got := ws.M.At(0, 0); math.Abs(got-0.25) > 1e-15 {
		t.Fatalf("G(0,0) = %g", got)
	}
	if ws.MC == nil {
		t.Fatal("MC not allocated")
	}
	if got := ws.MC.At(0, 0); got != 0 {
		t.Fatalf("C(0,0) = %g, want 0", got)
	}
	// A second split load reuses MC and re-zeros it.
	ws.LoadSplit(x, LoadParams{SrcScale: 1})
	if got := ws.M.At(0, 0); math.Abs(got-0.25) > 1e-15 {
		t.Fatalf("second split G = %g", got)
	}
}
