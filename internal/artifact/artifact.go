// Package artifact is the process-wide compiled-artifact cache behind the
// simulation service: repeat submissions of the same netlist skip straight
// to timestepping instead of re-running symbolic analysis.
//
// A deck's expensive derived artifacts all hang off its compiled
// circuit.System: the frozen Jacobian pattern, the Build-time conflict
// coloring, the fill-reducing column ordering (computed once per System and
// shared by every workspace via FactorizeWithPerm), the level schedules the
// parallel LU caches per pattern, and the incremental-assembly basis
// (linear-stamp templates + per-device footprints). A System is immutable
// and safe to share across concurrent runs — per-run numerics live in
// Workspaces — so caching the System *is* caching every artifact at once.
//
// Entries are keyed by a canonical netlist hash: the parsed deck is
// re-rendered through the netlist writer, so two texts that differ only in
// formatting, comments or card order produced by equivalent front-ends map
// to one key. The cache is bounded and evicts least-recently-used.
package artifact

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"wavepipe/internal/circuit"
	"wavepipe/internal/netlist"
	"wavepipe/internal/reduce"
)

// Entry is one cached compilation: the parsed deck and its compiled,
// prewarmed System. Entries are immutable once inserted; concurrent jobs
// share them freely.
type Entry struct {
	// Key is the canonical netlist hash (hex SHA-256).
	Key string
	// Deck is the parsed netlist (analysis cards, ICs, options).
	Deck *netlist.Deck
	// Sys is the compiled system: pattern, coloring, shared fill ordering.
	Sys *circuit.System
}

// Cache is a bounded, LRU-evicting map from canonical netlist hash to
// compiled Entry. The zero value is not usable; call New.
type Cache struct {
	mu      sync.Mutex
	max     int
	tick    uint64
	entries map[string]*slot

	hits   atomic.Int64
	misses atomic.Int64
	builds atomic.Int64
}

type slot struct {
	e    *Entry
	tick uint64
}

// New returns a cache bounded to max entries (<= 0 selects a default of 16).
func New(max int) *Cache {
	if max <= 0 {
		max = 16
	}
	return &Cache{max: max, entries: make(map[string]*slot)}
}

// Canonical renders a parsed deck in the writer's canonical form. Decks the
// writer cannot serialize (exotic programmatic devices) fall back to the
// whitespace-normalized source text, so they still cache — just without
// formatting invariance.
func Canonical(d *netlist.Deck) string {
	var b strings.Builder
	// The title card is a comment — it never reaches the compiled System —
	// so strip it before rendering: decks differing only in title share one
	// artifact.
	titled := *d
	titled.Title = "canonical"
	if titled.Circuit != nil {
		c := *titled.Circuit
		c.Title = ""
		titled.Circuit = &c
	}
	if err := netlist.Write(&b, &titled); err == nil {
		// Parsing is fully case-insensitive (node names are folded, every
		// name lookup compares lower-cased), so case is formatting too.
		return strings.ToLower(b.String())
	}
	var n strings.Builder
	for _, line := range strings.Split(d.Src, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "*") {
			continue
		}
		n.WriteString(strings.ToLower(strings.Join(strings.Fields(line), " ")))
		n.WriteByte('\n')
	}
	return n.String()
}

// Key hashes a canonical deck rendering into the cache key.
func Key(canonical string) string {
	sum := sha256.Sum256([]byte(canonical))
	return hex.EncodeToString(sum[:])
}

// BuildOptions carries every option that shapes the compiled System beyond
// the netlist itself. Anything here MUST be folded into the cache key: a
// System built under one reduction configuration is a different artifact
// from the same deck built under another, and serving a reduced System to
// an unreduced job (or vice versa) would silently change its results.
type BuildOptions struct {
	// Reduce enables the parasitic-reduction pass at build time.
	Reduce bool
	// ReduceTol is the ladder-lumping error budget (0 = exact mode).
	ReduceTol float64
	// ReduceKeep lists node names the pass must preserve (the caller's
	// record/keep/IC/NODESET names; the deck's own .PRINT, .IC and
	// .NODESET references are added automatically).
	ReduceKeep []string
}

// keySuffix renders the build-shaping options into the hashed key material.
// keep must already be the full resolved keep list.
func (bo BuildOptions) keySuffix(keep []string) string {
	if !bo.Reduce {
		return ""
	}
	norm := make([]string, 0, len(keep))
	seen := map[string]bool{}
	for _, n := range keep {
		n = strings.ToLower(strings.TrimSpace(n))
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		norm = append(norm, n)
	}
	sort.Strings(norm)
	return fmt.Sprintf("\n.reduce tol=%.17g keep=%s\n", bo.ReduceTol, strings.Join(norm, ","))
}

// Compile parses src and returns its compiled entry, reusing a cached
// System when an equivalent netlist was compiled before under the same
// build-shaping options. hit reports whether the symbolic analysis was
// skipped. Parse, reduction and build errors are returned unchanged (and
// never cached).
func (c *Cache) Compile(src string, bo BuildOptions) (e *Entry, hit bool, err error) {
	deck, err := netlist.Parse(src)
	if err != nil {
		return nil, false, err
	}
	var keep []string
	if bo.Reduce {
		keep = append(keep, bo.ReduceKeep...)
		keep = append(keep, deck.Prints...)
		for name := range deck.ICs {
			keep = append(keep, name)
		}
		for name := range deck.NodeSets {
			keep = append(keep, name)
		}
	}
	key := Key(Canonical(deck) + bo.keySuffix(keep))

	c.mu.Lock()
	if s, ok := c.entries[key]; ok {
		c.tick++
		s.tick = c.tick
		c.hits.Add(1)
		c.mu.Unlock()
		return s.e, true, nil
	}
	c.mu.Unlock()

	// Build outside the lock: a slow compile must not serialize hits on
	// other decks. A concurrent duplicate build of the same deck is
	// harmless — last insert wins and the loser is garbage collected.
	c.misses.Add(1)
	c.builds.Add(1)
	circ := deck.Circuit
	var info *circuit.ReducedInfo
	if bo.Reduce {
		rc, ri, rerr := reduce.Reduce(circ, reduce.Options{Tol: bo.ReduceTol, Keep: keep})
		if rerr != nil {
			return nil, false, rerr
		}
		circ = rc
		if ri == nil {
			// No-op pass: attach an identity marker so the facade never
			// re-runs reduction on a System the cache already vetted.
			ri = identityReduction(circ)
		}
		info = ri
	}
	sys, err := circ.Build()
	if err != nil {
		return nil, false, err
	}
	if info != nil {
		sys.SetReduction(info)
	}
	sys.Prewarm()
	e = &Entry{Key: key, Deck: deck, Sys: sys}

	c.mu.Lock()
	c.tick++
	c.entries[key] = &slot{e: e, tick: c.tick}
	for len(c.entries) > c.max {
		var oldest string
		var oldestTick uint64
		for k, s := range c.entries {
			if oldest == "" || s.tick < oldestTick {
				oldest, oldestTick = k, s.tick
			}
		}
		delete(c.entries, oldest)
	}
	c.mu.Unlock()
	return e, false, nil
}

// identityReduction builds the no-op marker record: every node retained,
// nothing suppressed. Its presence on a System means "the reduction pass
// already ran here" without changing any result.
func identityReduction(c *circuit.Circuit) *circuit.ReducedInfo {
	n := c.NumNodes()
	ri := &circuit.ReducedInfo{
		OrigNodes: make([]string, n),
		NodeMap:   make([]int, n),
		Expansion: make([][]circuit.ExpandTerm, n),
	}
	for i := 0; i < n; i++ {
		ri.OrigNodes[i] = c.NodeName(i)
		ri.NodeMap[i] = i
	}
	return ri
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Counters reports cumulative lookups answered from the cache (hits),
// lookups that compiled (misses), and the number of System builds
// performed. builds == misses unless a build failed.
func (c *Cache) Counters() (hits, misses, builds int64) {
	return c.hits.Load(), c.misses.Load(), c.builds.Load()
}
