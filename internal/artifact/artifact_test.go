package artifact

import (
	"fmt"
	"sync"
	"testing"
)

const rcDeck = `* rc lowpass
V1 in 0 1
R1 in out 1k
C1 out 0 1n
.tran 1n 10n
.end
`

// Same deck, different formatting: extra whitespace, comments, lower case.
const rcDeckReformatted = `* rc lowpass, reformatted
v1   in 0   1
* a comment between cards
r1 in out 1k
c1 out 0 1n
.tran 1n 10n
.end
`

func TestCompileHitSharesSystem(t *testing.T) {
	c := New(4)
	e1, hit, err := c.Compile(rcDeck)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("first compile reported a cache hit")
	}
	e2, hit, err := c.Compile(rcDeck)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("second compile of the same deck missed the cache")
	}
	if e1.Sys != e2.Sys {
		t.Fatal("cache hit did not reuse the compiled System")
	}
	if hits, misses, builds := c.Counters(); hits != 1 || misses != 1 || builds != 1 {
		t.Fatalf("counters = (hits %d, misses %d, builds %d), want (1, 1, 1)", hits, misses, builds)
	}
}

func TestCanonicalizationIgnoresFormatting(t *testing.T) {
	c := New(4)
	e1, _, err := c.Compile(rcDeck)
	if err != nil {
		t.Fatal(err)
	}
	e2, hit, err := c.Compile(rcDeckReformatted)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("reformatted deck missed the cache: canonicalization is format-sensitive")
	}
	if e1.Sys != e2.Sys {
		t.Fatal("reformatted deck built a second System")
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(2)
	deck := func(i int) string {
		return fmt.Sprintf("* d%d\nV1 in 0 1\nR1 in 0 %dk\n.tran 1n 10n\n.end\n", i, i+1)
	}
	for i := 0; i < 3; i++ {
		if _, hit, err := c.Compile(deck(i)); err != nil || hit {
			t.Fatalf("deck %d: hit=%v err=%v", i, hit, err)
		}
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d, want bound 2", c.Len())
	}
	// Deck 0 was the least recently used and must have been evicted.
	if _, hit, _ := c.Compile(deck(0)); hit {
		t.Fatal("evicted entry still answered a hit")
	}
	// Deck 2 is still resident.
	if _, hit, _ := c.Compile(deck(2)); !hit {
		t.Fatal("recent entry was evicted")
	}
}

func TestCountersReconcileWithBuilds(t *testing.T) {
	c := New(8)
	const goroutines, rounds = 8, 10
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if _, _, err := c.Compile(rcDeck); err != nil {
					t.Errorf("compile: %v", err)
				}
			}
		}()
	}
	wg.Wait()
	hits, misses, builds := c.Counters()
	if hits+misses != goroutines*rounds {
		t.Fatalf("hits %d + misses %d != lookups %d", hits, misses, goroutines*rounds)
	}
	if builds != misses {
		t.Fatalf("builds %d != misses %d (all builds succeed in this test)", builds, misses)
	}
	if hits == 0 {
		t.Fatal("no hits across identical concurrent submissions")
	}
}

func TestParseErrorNotCached(t *testing.T) {
	c := New(4)
	if _, _, err := c.Compile("R1 in out\n.end\n"); err == nil {
		t.Fatal("malformed deck compiled")
	}
	if c.Len() != 0 {
		t.Fatal("error result was cached")
	}
}
