package artifact

import (
	"errors"
	"strings"

	"fmt"
	"sync"
	"testing"
	"wavepipe/internal/reduce"
)

const rcDeck = `* rc lowpass
V1 in 0 1
R1 in out 1k
C1 out 0 1n
.tran 1n 10n
.end
`

// Same deck, different formatting: extra whitespace, comments, lower case.
const rcDeckReformatted = `* rc lowpass, reformatted
v1   in 0   1
* a comment between cards
r1 in out 1k
c1 out 0 1n
.tran 1n 10n
.end
`

func TestCompileHitSharesSystem(t *testing.T) {
	c := New(4)
	e1, hit, err := c.Compile(rcDeck, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("first compile reported a cache hit")
	}
	e2, hit, err := c.Compile(rcDeck, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("second compile of the same deck missed the cache")
	}
	if e1.Sys != e2.Sys {
		t.Fatal("cache hit did not reuse the compiled System")
	}
	if hits, misses, builds := c.Counters(); hits != 1 || misses != 1 || builds != 1 {
		t.Fatalf("counters = (hits %d, misses %d, builds %d), want (1, 1, 1)", hits, misses, builds)
	}
}

func TestCanonicalizationIgnoresFormatting(t *testing.T) {
	c := New(4)
	e1, _, err := c.Compile(rcDeck, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	e2, hit, err := c.Compile(rcDeckReformatted, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("reformatted deck missed the cache: canonicalization is format-sensitive")
	}
	if e1.Sys != e2.Sys {
		t.Fatal("reformatted deck built a second System")
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(2)
	deck := func(i int) string {
		return fmt.Sprintf("* d%d\nV1 in 0 1\nR1 in 0 %dk\n.tran 1n 10n\n.end\n", i, i+1)
	}
	for i := 0; i < 3; i++ {
		if _, hit, err := c.Compile(deck(i), BuildOptions{}); err != nil || hit {
			t.Fatalf("deck %d: hit=%v err=%v", i, hit, err)
		}
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d, want bound 2", c.Len())
	}
	// Deck 0 was the least recently used and must have been evicted.
	if _, hit, _ := c.Compile(deck(0), BuildOptions{}); hit {
		t.Fatal("evicted entry still answered a hit")
	}
	// Deck 2 is still resident.
	if _, hit, _ := c.Compile(deck(2), BuildOptions{}); !hit {
		t.Fatal("recent entry was evicted")
	}
}

func TestCountersReconcileWithBuilds(t *testing.T) {
	c := New(8)
	const goroutines, rounds = 8, 10
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if _, _, err := c.Compile(rcDeck, BuildOptions{}); err != nil {
					t.Errorf("compile: %v", err)
				}
			}
		}()
	}
	wg.Wait()
	hits, misses, builds := c.Counters()
	if hits+misses != goroutines*rounds {
		t.Fatalf("hits %d + misses %d != lookups %d", hits, misses, goroutines*rounds)
	}
	if builds != misses {
		t.Fatalf("builds %d != misses %d (all builds succeed in this test)", builds, misses)
	}
	if hits == 0 {
		t.Fatal("no hits across identical concurrent submissions")
	}
}

func TestParseErrorNotCached(t *testing.T) {
	c := New(4)
	if _, _, err := c.Compile("R1 in out\n.end\n", BuildOptions{}); err == nil {
		t.Fatal("malformed deck compiled")
	}
	if c.Len() != 0 {
		t.Fatal("error result was cached")
	}
}

// ladderDeck renders an n-segment RC ladder netlist with a printed output
// node — reducible structure for the build-option keying tests.
func ladderDeck(n int, print string) string {
	var b strings.Builder
	b.WriteString("* ladder\nVin in 0 1\n")
	prev := "in"
	for i := 1; i <= n; i++ {
		nd := fmt.Sprintf("n%d", i)
		fmt.Fprintf(&b, "R%d %s %s 10\nC%d %s 0 20f\n", i, prev, nd, i, nd)
		prev = nd
	}
	fmt.Fprintf(&b, "Rout %s out 10\nCout out 0 50f\n", prev)
	fmt.Fprintf(&b, ".tran 0.1n 10n\n.print tran v(%s)\n.end\n", print)
	return b.String()
}

func TestReduceOptionsShapeKey(t *testing.T) {
	c := New(16)
	deck := ladderDeck(40, "out")

	plain, hit, err := c.Compile(deck, BuildOptions{})
	if err != nil || hit {
		t.Fatalf("plain compile: hit=%v err=%v", hit, err)
	}
	if plain.Sys.Reduction() != nil {
		t.Fatal("unreduced compile carries a reduction record")
	}

	red, hit, err := c.Compile(deck, BuildOptions{Reduce: true, ReduceTol: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("reduced compile of a deck cached unreduced answered a hit: reduction options are not in the key")
	}
	if red.Key == plain.Key || red.Sys == plain.Sys {
		t.Fatal("reduced and unreduced jobs share one artifact")
	}
	ri := red.Sys.Reduction()
	if ri == nil || ri.RemovedNodes == 0 {
		t.Fatalf("reduced compile did not reduce (info=%+v)", ri)
	}
	if red.Sys.NumNodes >= plain.Sys.NumNodes {
		t.Fatalf("reduced system is not smaller: %d vs %d nodes", red.Sys.NumNodes, plain.Sys.NumNodes)
	}
	// The deck's printed node must have survived the pass.
	if _, ok := red.Sys.Circuit.FindNode("out"); !ok {
		t.Fatal("printed node was collapsed")
	}

	// Same reduction options hit; different tolerance or keep list miss.
	if _, hit, _ = c.Compile(deck, BuildOptions{Reduce: true, ReduceTol: 0.02}); !hit {
		t.Fatal("identical reduced compile missed the cache")
	}
	if _, hit, _ = c.Compile(deck, BuildOptions{Reduce: true, ReduceTol: 0.1}); hit {
		t.Fatal("different ReduceTol answered a hit")
	}
	if _, hit, _ = c.Compile(deck, BuildOptions{Reduce: true, ReduceTol: 0.02, ReduceKeep: []string{"n20"}}); hit {
		t.Fatal("different keep list answered a hit")
	}
	// A deck differing only in its .PRINT card protects different nodes, so
	// it must not share the reduced artifact either.
	if _, hit, _ = c.Compile(ladderDeck(40, "n20"), BuildOptions{Reduce: true, ReduceTol: 0.02}); hit {
		t.Fatal("deck with a different .print card answered a hit under reduction")
	}

	// Exact mode on this all-ladder deck is a no-op: the entry must carry
	// the identity marker so the facade never re-reduces a cached System.
	exact, _, err := c.Compile(deck, BuildOptions{Reduce: true, ReduceTol: 0})
	if err != nil {
		t.Fatal(err)
	}
	eri := exact.Sys.Reduction()
	if eri == nil || eri.RemovedNodes != 0 || eri.RemovedDevices != 0 {
		t.Fatalf("exact-mode no-op must attach an identity marker (got %+v)", eri)
	}

	// Counter reconciliation: every lookup is a hit or a miss, and every
	// miss built exactly one System.
	hits, misses, builds := c.Counters()
	if hits+misses != 7 {
		t.Fatalf("hits+misses = %d, want 7 lookups", hits+misses)
	}
	if builds != misses {
		t.Fatalf("builds %d != misses %d", builds, misses)
	}
}

func TestReduceUnknownKeepFailsCompile(t *testing.T) {
	c := New(4)
	_, _, err := c.Compile(ladderDeck(10, "out"), BuildOptions{Reduce: true, ReduceKeep: []string{"ghost"}})
	var une *reduce.UnknownNodeError
	if !errors.As(err, &une) {
		t.Fatalf("err = %v, want *reduce.UnknownNodeError", err)
	}
	if c.Len() != 0 {
		t.Fatal("failed reduction was cached")
	}
}
