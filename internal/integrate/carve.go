package integrate

// CarvePoints carves count points of system size n out of one contiguous
// backing buffer: point i's X, Q and Qdot occupy adjacent n-slices of
// buf[i·3n : (i+1)·3n]. The ensemble engine uses it to lay each lane's
// history ring and candidate points into a struct-of-arrays block strided
// by lane. buf must have length ≥ count·3·n; slices are capacity-capped so
// appends never bleed across points.
func CarvePoints(buf []float64, count, n int) []*Point {
	pts := make([]*Point, count)
	for i := range pts {
		b := buf[i*3*n : (i+1)*3*n]
		pts[i] = &Point{
			X:    b[0:n:n],
			Q:    b[n : 2*n : 2*n],
			Qdot: b[2*n : 3*n : 3*n],
		}
	}
	return pts
}
