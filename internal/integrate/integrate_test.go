package integrate

import (
	"math"
	"testing"

	"wavepipe/internal/num"
)

func pt(t float64, x, q, qdot float64) *Point {
	return &Point{T: t, X: []float64{x}, Q: []float64{q}, Qdot: []float64{qdot}}
}

func TestMethodMetadata(t *testing.T) {
	if BackwardEuler.Order() != 1 || Trapezoidal.Order() != 2 || Gear2.Order() != 2 {
		t.Fatal("orders")
	}
	if BackwardEuler.String() != "be" || Trapezoidal.String() != "trap" ||
		Gear2.String() != "gear2" || Method(9).String() != "unknown" {
		t.Fatal("names")
	}
}

func TestHistoryBasics(t *testing.T) {
	h := &History{}
	if h.Last() != nil || h.Len() != 0 {
		t.Fatal("empty history")
	}
	h.Add(pt(0, 1, 0, 0))
	h.Add(pt(1, 2, 0, 0))
	if h.Len() != 2 || h.Last().T != 1 || h.At(0).T != 0 {
		t.Fatal("add/last/at")
	}
	tail := h.Tail(5)
	if len(tail) != 2 {
		t.Fatalf("Tail = %d points", len(tail))
	}
	c := h.Clone()
	c.Add(pt(2, 3, 0, 0))
	if h.Len() != 2 || c.Len() != 3 {
		t.Fatal("Clone must not alias growth")
	}
	h.Truncate()
	if h.Len() != 1 || h.Last().T != 1 {
		t.Fatal("Truncate")
	}
	// Window trimming.
	h2 := &History{}
	for i := 0; i < HistoryDepth+5; i++ {
		h2.Add(pt(float64(i), 0, 0, 0))
	}
	if h2.Len() != HistoryDepth {
		t.Fatalf("window = %d", h2.Len())
	}
}

func TestHistoryAddOutOfOrderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	h := &History{}
	h.Add(pt(1, 0, 0, 0))
	h.Add(pt(0.5, 0, 0, 0))
}

func TestComputeBackwardEuler(t *testing.T) {
	h := &History{}
	h.Add(pt(0, 1, 3, 0))
	qh := make([]float64, 1)
	c, err := Compute(BackwardEuler, h, 0.5, qh)
	if err != nil {
		t.Fatal(err)
	}
	if c.Order != 1 || math.Abs(c.Alpha0-2) > 1e-15 {
		t.Fatalf("coeffs %+v", c)
	}
	if math.Abs(qh[0]-(-6)) > 1e-15 { // -q/h = -3/0.5
		t.Fatalf("qhist = %v", qh)
	}
	// Gear2 with a single history point degrades to BE.
	c, err = Compute(Gear2, h, 0.5, qh)
	if err != nil || c.Order != 1 {
		t.Fatalf("startup degradation: %+v, %v", c, err)
	}
}

func TestComputeTrapezoidal(t *testing.T) {
	h := &History{}
	h.Add(pt(0, 0, 0, 0))
	h.Add(pt(1, 1, 2, 0.5))
	qh := make([]float64, 1)
	c, err := Compute(Trapezoidal, h, 1.5, qh)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.Alpha0-4) > 1e-15 { // 2/h = 2/0.5
		t.Fatalf("alpha0 = %g", c.Alpha0)
	}
	// qhist = -a0·q_n − qdot_n = -4·2 − 0.5.
	if math.Abs(qh[0]-(-8.5)) > 1e-15 {
		t.Fatalf("qhist = %v", qh)
	}
}

// The Gear2 variable-step coefficients must differentiate quadratics
// exactly: qdot(t) = a0·q(t) + a1·q(t−h0) + a2·q(t−h0−h1).
func TestGear2CoefficientsExactOnQuadratics(t *testing.T) {
	q := func(x float64) float64 { return 3*x*x - 2*x + 1 }
	dq := func(x float64) float64 { return 6*x - 2 }
	t0, t1, t2 := 0.3, 1.1, 1.7 // uneven spacing
	h := &History{}
	h.Add(pt(t0, 0, q(t0), 0))
	h.Add(pt(t1, 0, q(t1), 0))
	qh := make([]float64, 1)
	c, err := Compute(Gear2, h, t2, qh)
	if err != nil {
		t.Fatal(err)
	}
	got := c.Alpha0*q(t2) + qh[0]
	if math.Abs(got-dq(t2)) > 1e-10 {
		t.Fatalf("BDF2 derivative = %g, want %g", got, dq(t2))
	}
}

func TestComputeErrors(t *testing.T) {
	h := &History{}
	if _, err := Compute(Gear2, h, 1, nil); err == nil {
		t.Fatal("empty history must error")
	}
	h.Add(pt(1, 0, 0, 0))
	if _, err := Compute(Gear2, h, 1, nil); err == nil {
		t.Fatal("zero step must error")
	}
}

func TestErrorCoefficientLimits(t *testing.T) {
	// Uniform spacing: Gear2 constant = 2h³/9.
	h := 0.01
	if got, want := ErrorCoefficient(Gear2, 2, h, h), 2*h*h*h/9; math.Abs(got-want) > 1e-18 {
		t.Fatalf("uniform Gear2 coeff = %g, want %g", got, want)
	}
	// δ → 0 limit: h³/12 — the backward-pipelining gain.
	if got, want := ErrorCoefficient(Gear2, 2, h, 1e-12), h*h*h/12; math.Abs(got-want) > 1e-9*want {
		t.Fatalf("clustered Gear2 coeff = %g, want %g", got, want)
	}
	// The clustered constant is strictly smaller: that is the whole point.
	if ErrorCoefficient(Gear2, 2, h, h/10) >= ErrorCoefficient(Gear2, 2, h, h) {
		t.Fatal("backward point must reduce the error constant")
	}
	// Trapezoidal and BE.
	if got := ErrorCoefficient(Trapezoidal, 2, h, 0); math.Abs(got-h*h*h/12) > 1e-18 {
		t.Fatalf("TR coeff = %g", got)
	}
	if got := ErrorCoefficient(BackwardEuler, 1, h, 0); math.Abs(got-h*h/2) > 1e-18 {
		t.Fatalf("BE coeff = %g", got)
	}
	// h1 = 0 guard falls back to uniform.
	if got, want := ErrorCoefficient(Gear2, 2, h, 0), 2*h*h*h/9; math.Abs(got-want) > 1e-18 {
		t.Fatalf("h1=0 fallback = %g, want %g", got, want)
	}
}

func TestDerivNormOnCubic(t *testing.T) {
	// x(t) = t³ has x‴ = 6; with RelTol·|x|+AbsTol weights near t≈1 the
	// norm is 6/weight(x_last).
	tol := num.Tolerances{RelTol: 1e-3, AbsTol: 1e-6}
	var pts []*Point
	for _, tv := range []float64{0.7, 0.8, 0.95, 1.0} {
		pts = append(pts, pt(tv, tv*tv*tv, 0, 0))
	}
	got := DerivNorm(pts, 2, tol)
	want := 6 / tol.Weight(1.0)
	if math.Abs(got-want) > 1e-6*want {
		t.Fatalf("DerivNorm = %g, want %g", got, want)
	}
	// Not enough points: 0.
	if DerivNorm(pts[:2], 2, tol) != 0 {
		t.Fatal("short history should return 0")
	}
}

func TestCheckLTEOrderBehaviour(t *testing.T) {
	// For x(t)=t³ under Gear2, halving the step must reduce the LTE norm
	// by ≈8 (third-order local error).
	c := Control{Tol: num.DefaultTolerances(), TrTol: 1, HMin: 1e-15, HMax: 1}
	mk := func(h float64) ([]*Point, float64, float64) {
		ts := []float64{0, h, 2 * h, 3 * h}
		var pts []*Point
		for _, tv := range ts {
			// Offset keeps the error weights equal across both grids so the
			// ratio isolates the h³ scaling.
			pts = append(pts, pt(tv, 100+tv*tv*tv, 0, 0))
		}
		return pts, h, h
	}
	pts1, h0, h1 := mk(0.1)
	n1 := c.CheckLTE(Gear2, 2, pts1, h0, h1)
	pts2, h0b, h1b := mk(0.05)
	n2 := c.CheckLTE(Gear2, 2, pts2, h0b, h1b)
	if ratio := n1 / n2; math.Abs(ratio-8) > 0.5 {
		t.Fatalf("LTE ratio = %g, want ≈8", ratio)
	}
}

func TestMaxStepMonotoneAndConsistent(t *testing.T) {
	c := Control{Tol: num.DefaultTolerances(), TrTol: 7, HMin: 1e-12, HMax: 1}
	d := 1e6 // weighted third-derivative norm
	h1 := 1e-3
	h := c.MaxStep(Gear2, 2, d, h1)
	// The returned step must satisfy the LTE bound (with bisection slack).
	if ErrorCoefficient(Gear2, 2, h, h1)*d > 7*1.001 {
		t.Fatalf("MaxStep %g violates LTE bound", h)
	}
	// Larger derivative → smaller step.
	if c.MaxStep(Gear2, 2, 10*d, h1) >= h {
		t.Fatal("MaxStep not monotone in derivative norm")
	}
	// Smaller trailing spacing → larger allowed step (backward pipelining).
	if c.MaxStep(Gear2, 2, d, h1/20) <= h {
		t.Fatal("clustered history must allow a larger step")
	}
	// Degenerate inputs.
	if c.MaxStep(Gear2, 2, 0, h1) != c.HMax {
		t.Fatal("zero derivative → HMax")
	}
	if c.MaxStep(Gear2, 2, 1e30, h1) != c.HMin {
		t.Fatal("huge derivative → HMin")
	}
}

func TestShrinkAndClamp(t *testing.T) {
	c := Control{Tol: num.DefaultTolerances(), TrTol: 7, HMin: 1e-9, HMax: 1, GrowthCap: 2}
	h := c.ShrinkOnReject(1e-3, 8, 2)
	if h >= 1e-3 || h < 1e-4 {
		t.Fatalf("ShrinkOnReject = %g", h)
	}
	if got := c.ShrinkOnReject(2e-9, 1e9, 2); got != 1e-9 {
		t.Fatalf("Shrink floors at HMin: %g", got)
	}
	if got := c.ClampStep(1, 1e-3); got != 2e-3 {
		t.Fatalf("growth cap: %g", got)
	}
	if got := c.ClampStep(1e-12, 1e-3); got != 1e-9 {
		t.Fatalf("HMin clamp: %g", got)
	}
	if got := c.ClampStep(0.5, 0); got != 0.5 {
		t.Fatalf("no previous step: %g", got)
	}
}

func TestDefaultControl(t *testing.T) {
	c := DefaultControl(1e-6)
	if c.TrTol != 7 || c.GrowthCap != 2 {
		t.Fatalf("defaults: %+v", c)
	}
	if c.HMax != 5e-8 || math.Abs(c.HMin-1e-18) > 1e-24 {
		t.Fatalf("bounds: %+v", c)
	}
}

func TestSpacedTail(t *testing.T) {
	h := &History{}
	for _, tv := range []float64{0, 1.0, 1.8, 1.96, 2.0} { // trailing cluster
		h.Add(pt(tv, tv, 0, 0))
	}
	// minSep 0.5: newest always in; 1.96 and 1.8 skipped (too close to 2.0
	// and then 1.0 is the next spaced one), 1.0 in, 0 in.
	got := h.SpacedTail(4, 0.5)
	want := []float64{0, 1.0, 2.0}
	if len(got) != len(want) {
		t.Fatalf("spaced tail times: got %d points", len(got))
	}
	for i, p := range got {
		if p.T != want[i] {
			t.Fatalf("spaced tail[%d] = %g, want %g", i, p.T, want[i])
		}
	}
	// k limits the count from the newest side.
	got = h.SpacedTail(2, 0.5)
	if len(got) != 2 || got[1].T != 2.0 || got[0].T != 1.0 {
		t.Fatalf("k-limited tail: %v %v", got[0].T, got[1].T)
	}
	// minSep 0 degenerates to Tail.
	if got := h.SpacedTail(3, 0); len(got) != 3 || got[2].T != 2.0 || got[1].T != 1.96 {
		t.Fatal("zero minSep should keep clustered points")
	}
	// Empty history.
	empty := &History{}
	if len(empty.SpacedTail(3, 1)) != 0 {
		t.Fatal("empty history")
	}
}

func TestNextStepSemantics(t *testing.T) {
	c := Control{Tol: num.DefaultTolerances(), TrTol: 7, HMin: 1e-12, HMax: 1, GrowthCap: 2}
	// No LTE information: HMax (cap applied by the caller).
	if got := c.NextStep(Gear2, 2, 0, 1e-3, 1e-3, 1e-3); got != c.HMax {
		t.Fatalf("zero norm -> %g", got)
	}
	// Norm 1 at uniform spacing: next step ≈ 0.9·h (the safety factor).
	got := c.NextStep(Gear2, 2, 1, 1e-3, 1e-3, 1e-3)
	if math.Abs(got-0.9e-3) > 0.05e-3 {
		t.Fatalf("norm-1 next step = %g, want ≈0.9e-3", got)
	}
	// Clustered trailing spacing must allow a larger step than uniform —
	// the backward-pipelining coefficient gain, end to end.
	clustered := c.NextStep(Gear2, 2, 1, 1e-3, 1e-3, 2e-4)
	if clustered <= got {
		t.Fatalf("clustered %g not above uniform %g", clustered, got)
	}
	if ratio := clustered / got; ratio < 1.15 || ratio > 1.45 {
		t.Fatalf("coefficient gain ratio = %g, want ≈1.27 at δ=h/5", ratio)
	}
}
