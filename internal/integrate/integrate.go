// Package integrate provides the variable-step implicit integration
// machinery shared by the serial and WavePipe transient engines: method
// coefficients for backward Euler, trapezoidal and Gear-2 (BDF2), solution
// history, local-truncation-error (LTE) estimation with variable-step error
// constants, and step-size selection.
//
// The discretization replaces d/dt q(x) at the new time point by
//
//	Alpha0·q(x_new) + qhist
//
// where qhist is a linear combination of stored history charges (and, for
// the trapezoidal rule, the stored charge derivative). The variable-step
// Gear-2 LTE constant
//
//	E(h0, h1) = h0²·(h0+h1)² / (6·(2·h0+h1)) · |x‴|
//
// is the quantity WavePipe's backward pipelining exploits: inserting an
// extra history point at small trailing spacing h1 shrinks the constant
// from 2h³/9 (uniform) toward h³/12, allowing a larger next step.
package integrate

import (
	"fmt"
	"math"

	"wavepipe/internal/num"
)

// Method selects the implicit integration formula.
type Method int

// Supported integration methods.
const (
	BackwardEuler Method = iota
	Trapezoidal
	Gear2
)

// String returns the method name.
func (m Method) String() string {
	switch m {
	case BackwardEuler:
		return "be"
	case Trapezoidal:
		return "trap"
	case Gear2:
		return "gear2"
	default:
		return "unknown"
	}
}

// Order returns the asymptotic order of accuracy of the method.
func (m Method) Order() int {
	if m == BackwardEuler {
		return 1
	}
	return 2
}

// Point is one accepted solution point. Points are immutable once published
// and may be shared freely between workers.
type Point struct {
	T    float64
	X    []float64 // solution vector
	Q    []float64 // charge/flux vector
	Qdot []float64 // discretized dQ/dt at T (needed by the trapezoidal rule)
}

// HistoryDepth is how many trailing points the engines retain: enough for
// Gear-2 coefficients (2), third-derivative LTE estimation (4) and a couple
// of WavePipe backward points.
const HistoryDepth = 8

// History is the bounded trailing window of accepted points, ascending in
// time. The zero value is an empty history.
type History struct {
	pts []*Point
}

// Add appends a point (which must be later than the current last point) and
// trims the window to HistoryDepth. It returns the evicted point, or nil
// when nothing fell out of the window. Only an owner that knows no clone or
// other reference shares the point may recycle it (the serial engine does;
// the pipeline engines, whose histories are cloned across workers, must not).
func (h *History) Add(p *Point) *Point {
	if n := len(h.pts); n > 0 && p.T <= h.pts[n-1].T {
		panic(fmt.Sprintf("integrate: History.Add out of order: %g after %g", p.T, h.pts[n-1].T))
	}
	h.pts = append(h.pts, p)
	if len(h.pts) > HistoryDepth {
		ev := h.pts[0]
		h.pts = h.pts[len(h.pts)-HistoryDepth:]
		return ev
	}
	return nil
}

// RestoreHistory rebuilds a trailing window from checkpointed points. The
// points must ascend strictly in time; at most the last HistoryDepth are
// kept, matching what Add would have retained. The history takes ownership
// of the points.
func RestoreHistory(pts []*Point) (*History, error) {
	for i := 1; i < len(pts); i++ {
		if pts[i].T <= pts[i-1].T {
			return nil, fmt.Errorf("integrate: restore history: times not ascending at point %d", i)
		}
	}
	if len(pts) > HistoryDepth {
		pts = pts[len(pts)-HistoryDepth:]
	}
	return &History{pts: append([]*Point(nil), pts...)}, nil
}

// Len returns the number of stored points.
func (h *History) Len() int { return len(h.pts) }

// At returns the i-th stored point (0 is oldest).
func (h *History) At(i int) *Point { return h.pts[i] }

// Last returns the most recent point, or nil when empty.
func (h *History) Last() *Point {
	if len(h.pts) == 0 {
		return nil
	}
	return h.pts[len(h.pts)-1]
}

// Tail returns a copy of up to the k most recent points, oldest first. The
// copy may be appended to freely (engines append candidate points for LTE
// checks) without aliasing the history's backing array.
func (h *History) Tail(k int) []*Point {
	return h.AppendTail(nil, k)
}

// AppendTail appends up to the k most recent points (oldest first) to dst
// and returns the extended slice — Tail for allocation-free inner loops that
// reuse a scratch buffer across calls.
func (h *History) AppendTail(dst []*Point, k int) []*Point {
	if k > len(h.pts) {
		k = len(h.pts)
	}
	return append(dst, h.pts[len(h.pts)-k:]...)
}

// SpacedTail returns up to k recent points (oldest first) whose pairwise
// spacing is at least minSep, always including the most recent point.
// Divided-difference derivative estimates on clustered stencils amplify
// solver noise by (span/minGap)², so the engines estimate derivatives from
// spaced points even when the history contains tightly clustered backward-
// pipelining points; the clustered spacing still enters the LTE error
// *coefficient*, which is where the WavePipe gain lives.
func (h *History) SpacedTail(k int, minSep float64) []*Point {
	return h.AppendSpacedTail(make([]*Point, 0, k), k, minSep)
}

// AppendSpacedTail appends up to k spaced recent points (oldest first, see
// SpacedTail) to dst and returns the extended slice — the allocation-free
// variant for callers that reuse a scratch buffer across LTE checks.
func (h *History) AppendSpacedTail(dst []*Point, k int, minSep float64) []*Point {
	start := len(dst)
	for i := len(h.pts) - 1; i >= 0 && len(dst)-start < k; i-- {
		p := h.pts[i]
		if len(dst) == start || dst[len(dst)-1].T-p.T >= minSep {
			dst = append(dst, p)
		}
	}
	// Reverse the appended segment to oldest-first.
	for i, j := start, len(dst)-1; i < j; i, j = i+1, j-1 {
		dst[i], dst[j] = dst[j], dst[i]
	}
	return dst
}

// Clone returns a history sharing the (immutable) points. Workers clone the
// history to extend it speculatively without racing.
func (h *History) Clone() *History {
	c := &History{pts: make([]*Point, len(h.pts))}
	copy(c.pts, h.pts)
	return c
}

// Truncate keeps only the most recent point (used after waveform
// breakpoints, where derivative history is invalid). It returns a view of
// the dropped points, subject to the same recycling rule as Add's eviction:
// only a sole owner may reuse them.
func (h *History) Truncate() []*Point {
	if len(h.pts) <= 1 {
		return nil
	}
	dropped := h.pts[:len(h.pts)-1]
	h.pts = h.pts[len(h.pts)-1:]
	return dropped
}

// Coeffs holds the discretization at one new time point.
type Coeffs struct {
	Method Method
	Order  int     // effective order (BE startup may lower it)
	Alpha0 float64 // coefficient of q(x_new)
	H0     float64 // step to the new point
	H1     float64 // previous spacing (0 during startup)
}

// Compute returns the discretization coefficients and fills qhist (length
// of the system) so that qdot_new = Alpha0·q_new + qhist. The effective
// order degrades to backward Euler when the history is too short for the
// requested method.
func Compute(m Method, h *History, tNew float64, qhist []float64) (Coeffs, error) {
	n := h.Len()
	if n == 0 {
		return Coeffs{}, fmt.Errorf("integrate: empty history")
	}
	last := h.Last()
	h0 := tNew - last.T
	if h0 <= 0 {
		return Coeffs{}, fmt.Errorf("integrate: non-positive step %g", h0)
	}
	switch {
	case m == BackwardEuler || n < 2:
		a0 := 1 / h0
		for i := range qhist {
			qhist[i] = -last.Q[i] * a0
		}
		return Coeffs{Method: m, Order: 1, Alpha0: a0, H0: h0}, nil
	case m == Trapezoidal:
		a0 := 2 / h0
		for i := range qhist {
			qhist[i] = -a0*last.Q[i] - last.Qdot[i]
		}
		return Coeffs{Method: m, Order: 2, Alpha0: a0, H0: h0, H1: spacing(h)}, nil
	default: // Gear2
		prev := h.pts[n-2]
		h1 := last.T - prev.T
		a0 := (2*h0 + h1) / (h0 * (h0 + h1))
		a1 := -(h0 + h1) / (h0 * h1)
		a2 := h0 / (h1 * (h0 + h1))
		for i := range qhist {
			qhist[i] = a1*last.Q[i] + a2*prev.Q[i]
		}
		return Coeffs{Method: Gear2, Order: 2, Alpha0: a0, H0: h0, H1: h1}, nil
	}
}

func spacing(h *History) float64 {
	n := h.Len()
	if n < 2 {
		return 0
	}
	return h.pts[n-1].T - h.pts[n-2].T
}

// ErrorCoefficient returns the LTE constant c(h0, h1) such that the local
// error per step is approximately c·|x^(order+1)|. h1 is the spacing of the
// two most recent history points (ignored where the formula is one-step).
func ErrorCoefficient(m Method, order int, h0, h1 float64) float64 {
	if order <= 1 {
		return h0 * h0 / 2 // backward Euler: h²/2·x″
	}
	switch m {
	case Trapezoidal:
		return h0 * h0 * h0 / 12 // h³/12·x‴
	default: // Gear2 variable step
		if h1 <= 0 {
			h1 = h0
		}
		s := h0 + h1
		return h0 * h0 * s * s / (6 * (2*h0 + h1))
	}
}

// Control carries the step-acceptance policy.
type Control struct {
	Tol       num.Tolerances
	TrTol     float64 // LTE overestimation factor (SPICE TRTOL, default 7)
	HMin      float64
	HMax      float64
	GrowthCap float64 // max ratio h_next/h_prev per accepted point (default 2)
}

// DefaultControl returns SPICE-like step control defaults for a simulation
// window of length tstop.
func DefaultControl(tstop float64) Control {
	return Control{
		Tol:       num.DefaultTolerances(),
		TrTol:     7,
		HMin:      tstop * 1e-12,
		HMax:      tstop / 20,
		GrowthCap: 2,
	}
}

// LTEScratch pools the small per-call vectors of DerivNorm/CheckLTE so the
// steady-state accept loop allocates nothing. The zero value is ready to
// use; one scratch serves one goroutine.
type LTEScratch struct {
	ts, ys, dd []float64
}

func (s *LTEScratch) ensure(n int) {
	if cap(s.ts) < n {
		s.ts = make([]float64, n)
		s.ys = make([]float64, n)
		s.dd = make([]float64, n)
	}
	s.ts, s.ys, s.dd = s.ts[:n], s.ys[:n], s.dd[:n]
}

// DerivNorm estimates the weighted norm of the (order+1)-th solution
// derivative from the trailing points (the candidate point included, last).
// The result has units such that ErrorCoefficient(...)·DerivNorm is the
// dimensionless weighted LTE. When not enough points exist, it returns 0
// (the step is accepted — matching SPICE's behaviour on startup).
func DerivNorm(pts []*Point, order int, tol num.Tolerances) float64 {
	var s LTEScratch
	return DerivNormWith(pts, order, tol, &s)
}

// DerivNormWith is DerivNorm with caller-pooled scratch.
func DerivNormWith(pts []*Point, order int, tol num.Tolerances, s *LTEScratch) float64 {
	k := order + 1 // derivative order to estimate
	if len(pts) < k+1 {
		return 0
	}
	pts = pts[len(pts)-(k+1):]
	s.ensure(k + 1)
	ts := s.ts
	for i, p := range pts {
		ts[i] = p.T
	}
	ref := pts[len(pts)-1].X
	nUnk := len(ref)
	ys := s.ys
	dd := s.dd
	fact := 1.0
	for i := 2; i <= k; i++ {
		fact *= float64(i)
	}
	maxNorm := 0.0
	for i := 0; i < nUnk; i++ {
		for j, p := range pts {
			ys[j] = p.X[i]
		}
		num.DividedDifferencesInto(ts, ys, dd)
		d := dd[k] * fact // ≈ x_i^(k)
		if v := math.Abs(d) / tol.Weight(ref[i]); v > maxNorm {
			maxNorm = v
		}
	}
	return maxNorm
}

// CheckLTE returns the dimensionless LTE norm of the candidate step: the
// step is acceptable when the result is <= 1. pts must end with the
// candidate point; h1 is the trailing history spacing before the step.
func (c Control) CheckLTE(m Method, order int, pts []*Point, h0, h1 float64) float64 {
	var s LTEScratch
	return c.CheckLTEWith(m, order, pts, h0, h1, &s)
}

// CheckLTEWith is CheckLTE with caller-pooled scratch.
func (c Control) CheckLTEWith(m Method, order int, pts []*Point, h0, h1 float64, s *LTEScratch) float64 {
	d := DerivNormWith(pts, order, c.Tol, s)
	if d == 0 {
		return 0
	}
	return ErrorCoefficient(m, order, h0, h1) * d / c.TrTol
}

// MaxStep returns the largest step h0 from the end of the given history
// such that the predicted LTE is acceptable: ErrorCoefficient(m, order, h0,
// h1)·derivNorm <= TrTol. derivNorm should come from DerivNorm on the
// trailing points. A zero derivNorm yields HMax.
func (c Control) MaxStep(m Method, order int, derivNorm, h1 float64) float64 {
	if derivNorm <= 0 {
		return c.HMax
	}
	lo, hi := c.HMin, c.HMax
	if ErrorCoefficient(m, order, hi, h1)*derivNorm <= c.TrTol {
		return hi
	}
	if ErrorCoefficient(m, order, lo, h1)*derivNorm > c.TrTol {
		return lo
	}
	// Bisection: ErrorCoefficient is monotone in h0.
	for i := 0; i < 60 && hi/lo > 1.0001; i++ {
		mid := math.Sqrt(lo * hi)
		if ErrorCoefficient(m, order, mid, h1)*derivNorm <= c.TrTol {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// NextStep derives the step after an accepted point from that point's own
// dimensionless LTE norm (CheckLTE at acceptance): the norm measured at
// scale hUsed implies a derivative magnitude d = norm·TrTol/E(hUsed, h1Solve),
// and the next step is the largest h with E(h, h1Next)·d <= TrTol. Using the
// accepted point's norm keeps the derivative estimate at the scale the
// integrator is actually resolving (raw divided differences over fine
// stencils are dominated by sub-tolerance stiff micro-modes and would trap
// the step). h1Next is the trailing history spacing the next step will see —
// this is where backward pipelining's clustered points relax the error
// coefficient. A zero norm (no LTE information yet) yields HMax, leaving the
// growth cap in charge.
func (c Control) NextStep(m Method, order int, norm, hUsed, h1Solve, h1Next float64) float64 {
	if norm <= 1e-12 {
		return c.HMax
	}
	dImplied := norm * c.TrTol / ErrorCoefficient(m, order, hUsed, h1Solve)
	// The 0.9 safety factor keeps the controller off the acceptance
	// boundary; without it roughly a third of all candidates get rejected
	// and the reject/shrink/regrow limit cycle wastes the step budget.
	return 0.9 * c.MaxStep(m, order, dImplied, h1Next)
}

// ShrinkOnReject returns the retry step after an LTE rejection with norm
// lteNorm (> 1).
func (c Control) ShrinkOnReject(h, lteNorm float64, order int) float64 {
	f := 0.9 * math.Pow(1/lteNorm, 1/float64(order+1))
	f = num.Clamp(f, 0.1, 0.9)
	return math.Max(h*f, c.HMin)
}

// ClampStep applies the growth cap (relative to the last accepted step) and
// the absolute bounds.
func (c Control) ClampStep(h, hPrev float64) float64 {
	if hPrev > 0 && h > c.GrowthCap*hPrev {
		h = c.GrowthCap * hPrev
	}
	return num.Clamp(h, c.HMin, c.HMax)
}
