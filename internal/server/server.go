// Package server is the HTTP adapter of the simulation service: a thin,
// schema-checked layer that exposes any wavepipe.Client — normally the
// in-process *wavepipe.Service — over the versioned wire JSON API that
// wavepipe/client speaks. All simulation logic (queueing, preemption,
// artifact caching) lives behind the Client interface; this package only
// translates HTTP ⇄ wire.
//
// Endpoints:
//
//	POST   /v1/jobs             submit a deck (wire.JobRequest → wire.JobStatus)
//	GET    /v1/jobs/{id}        snapshot a job (wire.JobStatus)
//	GET    /v1/jobs/{id}/result block until terminal, return wire.Result
//	GET    /v1/jobs/{id}/stream NDJSON: one header line, then accepted rows
//	DELETE /v1/jobs/{id}        cancel (idempotent)
//	GET    /metrics             Prometheus text (engine + service rows)
package server

import (
	"errors"
	"io"
	"net/http"

	"wavepipe"
	"wavepipe/wire"
)

// Config assembles a handler.
type Config struct {
	// Client executes the jobs (required). Passing an HTTP client here
	// makes the server a relay; passing *wavepipe.Service serves locally.
	Client wavepipe.Client
	// Metrics, when non-nil, serves GET /metrics by writing Prometheus
	// text (normally (*wavepipe.Service).WritePrometheus).
	Metrics func(w io.Writer) error
}

// New returns the HTTP handler for the service API.
func New(cfg Config) http.Handler {
	h := &handler{cfg: cfg}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", h.submit)
	mux.HandleFunc("GET /v1/jobs/{id}", h.status)
	mux.HandleFunc("GET /v1/jobs/{id}/result", h.result)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", h.stream)
	mux.HandleFunc("DELETE /v1/jobs/{id}", h.cancel)
	mux.HandleFunc("GET /metrics", h.metrics)
	return mux
}

type handler struct {
	cfg Config
}

// fail writes the uniform wire error body with the status the error maps
// to: unknown job → 404, admission rejection → 429, everything else the
// caller's default (400 for request shaping, 500 for execution).
func fail(w http.ResponseWriter, err error, fallback int) {
	code := fallback
	switch {
	case errors.Is(err, wavepipe.ErrUnknownJob):
		code = http.StatusNotFound
	case errors.Is(err, wavepipe.ErrQueueFull):
		code = http.StatusTooManyRequests
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = wire.Encode(w, wire.Error{SchemaVersion: wire.SchemaVersion, Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = wire.Encode(w, v)
}

func (h *handler) submit(w http.ResponseWriter, r *http.Request) {
	req, err := wire.DecodeJobRequest(io.LimitReader(r.Body, 64<<20))
	if err != nil {
		fail(w, err, http.StatusBadRequest)
		return
	}
	spec := wavepipe.JobSpec{Deck: req.Deck, Priority: req.Priority, Label: req.Label}
	if req.Options != nil {
		opts, oerr := req.Options.ToTranOptions()
		if oerr != nil {
			fail(w, oerr, http.StatusBadRequest)
			return
		}
		spec.Options = opts
	}
	st, err := h.cfg.Client.Submit(r.Context(), spec)
	if err != nil {
		fail(w, err, http.StatusBadRequest)
		return
	}
	writeJSON(w, http.StatusAccepted, wire.JobStatus{SchemaVersion: wire.SchemaVersion, JobStatus: st})
}

func (h *handler) status(w http.ResponseWriter, r *http.Request) {
	st, err := h.cfg.Client.Status(r.Context(), r.PathValue("id"))
	if err != nil {
		fail(w, err, http.StatusInternalServerError)
		return
	}
	writeJSON(w, http.StatusOK, wire.JobStatus{SchemaVersion: wire.SchemaVersion, JobStatus: st})
}

func (h *handler) result(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	res, err := h.cfg.Client.Wait(r.Context(), id)
	if err != nil && res == nil {
		// Pure failure with nothing salvaged (includes unknown IDs and a
		// client that went away mid-wait).
		fail(w, err, http.StatusInternalServerError)
		return
	}
	out := wire.FromResult(res)
	if out == nil {
		out = &wire.Result{SchemaVersion: wire.SchemaVersion}
	}
	out.SchemaVersion = wire.SchemaVersion
	if err != nil {
		out.Err = err.Error()
	}
	writeJSON(w, http.StatusOK, out)
}

func (h *handler) stream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, err := h.cfg.Client.Status(r.Context(), id)
	if err != nil {
		fail(w, err, http.StatusInternalServerError)
		return
	}
	ch, err := h.cfg.Client.Stream(r.Context(), id)
	if err != nil {
		fail(w, err, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if wire.Encode(w, wire.StreamHeader{SchemaVersion: wire.SchemaVersion, Signals: st.Signals}) != nil {
		return
	}
	if flusher != nil {
		flusher.Flush()
	}
	for p := range ch {
		if wire.Encode(w, p) != nil {
			// Client went away: unblock the producer by draining.
			for range ch {
			}
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

func (h *handler) cancel(w http.ResponseWriter, r *http.Request) {
	if err := h.cfg.Client.Cancel(r.Context(), r.PathValue("id")); err != nil {
		fail(w, err, http.StatusInternalServerError)
		return
	}
	writeJSON(w, http.StatusOK, wire.Error{SchemaVersion: wire.SchemaVersion})
}

func (h *handler) metrics(w http.ResponseWriter, r *http.Request) {
	if h.cfg.Metrics == nil {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = h.cfg.Metrics(w)
}
