package server_test

import (
	"context"
	"errors"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"wavepipe"
	"wavepipe/client"
	"wavepipe/internal/server"
)

const rcDeck = `* rc lowpass
V1 in 0 PULSE(0 1 0 1n 1n 10n 20n)
R1 in out 1k
C1 out 0 1n
.tran 1n 40n
.end
`

const longDeck = `* long rc
V1 in 0 PULSE(0 1 0 1n 1n 10n 20n)
R1 in out 1k
C1 out 0 1n
.tran 0.1n 2000n 0 0.5n
.end
`

// newStack spins up service → HTTP server → HTTP client and returns the
// client plus the underlying service (for metrics assertions).
func newStack(t *testing.T) (*client.Client, *wavepipe.Service, *httptest.Server) {
	t.Helper()
	svc, err := wavepipe.NewService(wavepipe.ServiceConfig{Cores: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(server.Config{Client: svc, Metrics: svc.WritePrometheus}))
	c, err := client.New(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		c.Close()
		ts.Close()
		svc.Close()
	})
	return c, svc, ts
}

// TestHTTPRoundTrip drives the full Client interface over the wire: the
// HTTP client behaves exactly like the in-process service — same deck, same
// points, cache hit on resubmission.
func TestHTTPRoundTrip(t *testing.T) {
	c, _, _ := newStack(t)
	ctx := context.Background()

	st, err := c.Submit(ctx, wavepipe.JobSpec{Deck: rcDeck, Label: "over-http"})
	if err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || st.CacheHit {
		t.Fatalf("first submit: id=%q cacheHit=%v", st.ID, st.CacheHit)
	}
	if st.Label != "over-http" {
		t.Fatalf("label lost on the wire: %q", st.Label)
	}

	ch, err := c.Stream(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	streamed := 0
	lastT := -1.0
	for p := range ch {
		if p.T <= lastT {
			t.Fatalf("stream out of order: %g after %g", p.T, lastT)
		}
		lastT = p.T
		streamed++
	}

	res, err := c.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res.W.Len() != streamed {
		t.Fatalf("streamed %d rows, result has %d", streamed, res.W.Len())
	}
	if _, aerr := res.W.At("out", 20e-9); aerr != nil {
		t.Fatalf("rebuilt waveform unusable: %v", aerr)
	}
	// Stats.Points counts accepted steps; the waveform also holds t=0.
	if res.Stats.Points == 0 || res.W.Len() < res.Stats.Points {
		t.Fatalf("stats says %d points, waveform has %d", res.Stats.Points, res.W.Len())
	}

	st2, err := c.Submit(ctx, wavepipe.JobSpec{Deck: rcDeck})
	if err != nil {
		t.Fatal(err)
	}
	if !st2.CacheHit {
		t.Fatal("repeat deck over HTTP missed the artifact cache")
	}
	if _, err := c.Wait(ctx, st2.ID); err != nil {
		t.Fatal(err)
	}
	got, err := c.Status(ctx, st2.ID)
	if err != nil || got.State != wavepipe.JobDone {
		t.Fatalf("state=%v err=%v", got.State, err)
	}
}

// TestHTTPResultMatchesLocal: the result that crossed the wire is
// numerically identical to a local run of the same deck.
func TestHTTPResultMatchesLocal(t *testing.T) {
	c, _, _ := newStack(t)
	st, err := c.Submit(context.Background(), wavepipe.JobSpec{Deck: rcDeck})
	if err != nil {
		t.Fatal(err)
	}
	remote, err := c.Wait(context.Background(), st.ID)
	if err != nil {
		t.Fatal(err)
	}
	d, err := wavepipe.ParseDeck(rcDeck)
	if err != nil {
		t.Fatal(err)
	}
	local, err := wavepipe.RunDeck(d, wavepipe.TranOptions{CoreBudget: 1})
	if err != nil {
		t.Fatal(err)
	}
	if remote.W.Len() != local.W.Len() {
		t.Fatalf("remote %d points, local %d", remote.W.Len(), local.W.Len())
	}
	for k := range local.W.Times {
		if remote.W.Times[k] != local.W.Times[k] {
			t.Fatalf("time %d differs", k)
		}
		for j := range local.W.Names {
			if remote.W.Data[k][j] != local.W.Data[k][j] {
				t.Fatalf("sample %d/%s differs: %g vs %g", k, local.W.Names[j],
					remote.W.Data[k][j], local.W.Data[k][j])
			}
		}
	}
}

// TestHTTPCancelMidStream: canceling over HTTP closes the live stream and
// the job ends canceled.
func TestHTTPCancelMidStream(t *testing.T) {
	c, _, _ := newStack(t)
	ctx := context.Background()
	st, err := c.Submit(ctx, wavepipe.JobSpec{Deck: longDeck})
	if err != nil {
		t.Fatal(err)
	}
	ch, err := c.Stream(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	for range ch {
		seen++
		if seen == 10 {
			if err := c.Cancel(ctx, st.ID); err != nil {
				t.Fatal(err)
			}
		}
	}
	if seen < 10 {
		t.Fatalf("stream closed after %d rows, before cancel", seen)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		got, serr := c.Status(ctx, st.ID)
		if serr != nil {
			t.Fatal(serr)
		}
		if got.State.Terminal() {
			if got.State != wavepipe.JobCanceled {
				t.Fatalf("state = %v, want canceled", got.State)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never reached a terminal state after cancel")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// A canceled job still serves its partial result, with the error noted.
	res, err := c.Wait(ctx, st.ID)
	if err == nil {
		t.Fatal("canceled job returned no error from Wait")
	}
	if res == nil || res.W.Len() < seen {
		t.Fatalf("partial result lost: %v", res)
	}
}

// TestHTTPErrors: unknown IDs map back to ErrUnknownJob across the wire;
// malformed submissions are 400s.
func TestHTTPErrors(t *testing.T) {
	c, _, _ := newStack(t)
	ctx := context.Background()
	if _, err := c.Status(ctx, "j999999"); !errors.Is(err, wavepipe.ErrUnknownJob) {
		t.Fatalf("err = %v, want ErrUnknownJob", err)
	}
	if err := c.Cancel(ctx, "j999999"); !errors.Is(err, wavepipe.ErrUnknownJob) {
		t.Fatalf("cancel err = %v, want ErrUnknownJob", err)
	}
	if _, err := c.Submit(ctx, wavepipe.JobSpec{Deck: ""}); err == nil {
		t.Fatal("empty deck accepted")
	}
	if _, err := c.Submit(ctx, wavepipe.JobSpec{Deck: "not a deck"}); err == nil {
		t.Fatal("garbage deck accepted")
	}
}

// TestHTTPMetrics: /metrics serves the engine rows and the service rows,
// and the artifact-cache hit counter moves when a deck repeats.
func TestHTTPMetrics(t *testing.T) {
	c, _, ts := newStack(t)
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		st, err := c.Submit(ctx, wavepipe.JobSpec{Deck: rcDeck})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Wait(ctx, st.ID); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		"wavepipe_points_total",
		"wavesimd_artifact_cache_hits_total 1",
		"wavesimd_artifact_cache_builds_total 1",
		"wavesimd_jobs_submitted_total 2",
		"wavesimd_cores_total 2",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
}
