package netlist

import (
	"fmt"
	"strings"
	"unicode"
)

// Expression support for .PARAM: brace expressions like {rload*2+50} are
// evaluated during parsing against the deck's parameter table. The grammar
// is the usual precedence chain with unary minus and parentheses; numbers
// carry SPICE engineering suffixes.

type exprParser struct {
	toks   []string
	pos    int
	params map[string]float64
}

// EvalExpr evaluates an arithmetic expression over the given parameters.
func EvalExpr(src string, params map[string]float64) (float64, error) {
	toks, err := lexExpr(src)
	if err != nil {
		return 0, err
	}
	p := &exprParser{toks: toks, params: params}
	v, err := p.expr()
	if err != nil {
		return 0, err
	}
	if p.pos != len(p.toks) {
		return 0, fmt.Errorf("netlist: trailing tokens in expression %q", src)
	}
	return v, nil
}

func lexExpr(src string) ([]string, error) {
	var toks []string
	i := 0
	rs := []rune(src)
	for i < len(rs) {
		c := rs[i]
		switch {
		case unicode.IsSpace(c):
			i++
		case strings.ContainsRune("+-*/()", c):
			toks = append(toks, string(c))
			i++
		case unicode.IsDigit(c) || c == '.':
			j := i
			for j < len(rs) && (unicode.IsDigit(rs[j]) || rs[j] == '.' ||
				unicode.IsLetter(rs[j]) ||
				((rs[j] == '+' || rs[j] == '-') && (rs[j-1] == 'e' || rs[j-1] == 'E'))) {
				j++
			}
			toks = append(toks, string(rs[i:j]))
			i = j
		case unicode.IsLetter(c) || c == '_':
			j := i
			for j < len(rs) && (unicode.IsLetter(rs[j]) || unicode.IsDigit(rs[j]) || rs[j] == '_') {
				j++
			}
			toks = append(toks, string(rs[i:j]))
			i = j
		default:
			return nil, fmt.Errorf("netlist: bad character %q in expression %q", c, src)
		}
	}
	if len(toks) == 0 {
		return nil, fmt.Errorf("netlist: empty expression")
	}
	return toks, nil
}

func (p *exprParser) peek() string {
	if p.pos < len(p.toks) {
		return p.toks[p.pos]
	}
	return ""
}

func (p *exprParser) expr() (float64, error) {
	v, err := p.term()
	if err != nil {
		return 0, err
	}
	for {
		switch p.peek() {
		case "+":
			p.pos++
			r, err := p.term()
			if err != nil {
				return 0, err
			}
			v += r
		case "-":
			p.pos++
			r, err := p.term()
			if err != nil {
				return 0, err
			}
			v -= r
		default:
			return v, nil
		}
	}
}

func (p *exprParser) term() (float64, error) {
	v, err := p.factor()
	if err != nil {
		return 0, err
	}
	for {
		switch p.peek() {
		case "*":
			p.pos++
			r, err := p.factor()
			if err != nil {
				return 0, err
			}
			v *= r
		case "/":
			p.pos++
			r, err := p.factor()
			if err != nil {
				return 0, err
			}
			if r == 0 {
				return 0, fmt.Errorf("netlist: division by zero in expression")
			}
			v /= r
		default:
			return v, nil
		}
	}
}

func (p *exprParser) factor() (float64, error) {
	tok := p.peek()
	switch {
	case tok == "(":
		p.pos++
		v, err := p.expr()
		if err != nil {
			return 0, err
		}
		if p.peek() != ")" {
			return 0, fmt.Errorf("netlist: missing ')' in expression")
		}
		p.pos++
		return v, nil
	case tok == "-":
		p.pos++
		v, err := p.factor()
		return -v, err
	case tok == "+":
		p.pos++
		return p.factor()
	case tok == "":
		return 0, fmt.Errorf("netlist: unexpected end of expression")
	default:
		p.pos++
		if v, err := ParseValue(tok); err == nil {
			return v, nil
		}
		if v, ok := p.params[strings.ToLower(tok)]; ok {
			return v, nil
		}
		return 0, fmt.Errorf("netlist: unknown parameter %q", tok)
	}
}

// substituteParams replaces every brace expression {expr} in a line with
// its evaluated numeric literal.
func substituteParams(line string, params map[string]float64) (string, error) {
	for {
		open := strings.IndexByte(line, '{')
		if open < 0 {
			return line, nil
		}
		close := strings.IndexByte(line[open:], '}')
		if close < 0 {
			return "", fmt.Errorf("netlist: unterminated brace expression in %q", line)
		}
		close += open
		v, err := EvalExpr(line[open+1:close], params)
		if err != nil {
			return "", err
		}
		line = line[:open] + FormatValue(v) + line[close+1:]
	}
}
