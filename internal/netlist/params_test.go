package netlist

import (
	"testing"

	"wavepipe/internal/device"
)

const paramDeck = `param override fixture
.param rval=1k cval={rval*1e-15}
V1 in 0 DC 1
R1 in out {rval}
C1 out 0 {cval}
.tran 1n 10n
.end
`

// ParseParams overrides must win over the deck's .PARAM cards and flow
// through dependent expressions, while the deck text itself is retained
// for further re-elaboration.
func TestParseParamsOverrides(t *testing.T) {
	nominal, err := Parse(paramDeck)
	if err != nil {
		t.Fatal(err)
	}
	if got := nominal.Params["rval"]; got != 1e3 {
		t.Fatalf("nominal rval = %g, want 1k", got)
	}
	if nominal.Src != paramDeck {
		t.Fatal("deck source not retained")
	}

	over, err := ParseParams(paramDeck, map[string]float64{"RVAL": 4.7e3})
	if err != nil {
		t.Fatal(err)
	}
	var r *device.Resistor
	var c *device.Capacitor
	for _, d := range over.Circuit.Devices() {
		switch el := d.(type) {
		case *device.Resistor:
			r = el
		case *device.Capacitor:
			c = el
		}
	}
	if r == nil || r.R != 4.7e3 {
		t.Fatalf("override did not reach R1: %+v", r)
	}
	// The dependent parameter must re-evaluate against the override.
	if c == nil || c.C != 4.7e3*1e-15 {
		t.Fatalf("dependent cval did not track override: %+v", c)
	}
	if got := over.Params["rval"]; got != 4.7e3 {
		t.Fatalf("resolved rval = %g, want 4.7k", got)
	}

	// Re-elaborating from the retained source reproduces the nominal deck.
	again, err := ParseParams(over.Src, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := again.Params["rval"]; got != 1e3 {
		t.Fatalf("re-elaborated rval = %g, want nominal 1k", got)
	}
}
