package netlist

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"wavepipe/internal/device"
)

// Write renders a deck back to SPICE text. Decks produced by Parse and by
// the programmatic generators round-trip through Write/Parse to equivalent
// circuits (verified by the package tests).
func Write(w io.Writer, d *Deck) error {
	b := &strings.Builder{}
	title := d.Title
	if title == "" {
		title = d.Circuit.Title
	}
	if title == "" {
		title = "untitled"
	}
	fmt.Fprintf(b, "* %s\n", title)

	ckt := d.Circuit
	nn := func(i int) string { return ckt.NodeName(i) }

	// Collect model cards, deduplicated by content.
	dioCards := map[device.DiodeModel]string{}
	mosCards := map[device.MOSModel]string{}
	ekvCards := map[device.EKVModel]string{}
	bjtCards := map[device.BJTModel]string{}
	swCards := map[device.SwitchModel]string{}
	for _, dev := range ckt.Devices() {
		switch el := dev.(type) {
		case *device.Diode:
			if _, ok := dioCards[el.Model]; !ok {
				dioCards[el.Model] = fmt.Sprintf("dmod%d", len(dioCards)+1)
			}
		case *device.MOSFET:
			if _, ok := mosCards[el.Model]; !ok {
				mosCards[el.Model] = fmt.Sprintf("mmod%d", len(mosCards)+1)
			}
		case *device.MOSFETEKV:
			if _, ok := ekvCards[el.Model]; !ok {
				ekvCards[el.Model] = fmt.Sprintf("emod%d", len(ekvCards)+1)
			}
		case *device.BJT:
			if _, ok := bjtCards[el.Model]; !ok {
				bjtCards[el.Model] = fmt.Sprintf("qmod%d", len(bjtCards)+1)
			}
		case *device.Switch:
			if _, ok := swCards[el.Model]; !ok {
				swCards[el.Model] = fmt.Sprintf("smod%d", len(swCards)+1)
			}
		}
	}
	writeModelCards(b, dioCards, mosCards)
	writeExtraModelCards(b, ekvCards, bjtCards, swCards)

	for _, dev := range ckt.Devices() {
		switch el := dev.(type) {
		case *device.Resistor:
			fmt.Fprintf(b, "%s %s %s %s\n", el.Inst, nn(el.P), nn(el.N), FormatValue(el.R))
		case *device.Capacitor:
			fmt.Fprintf(b, "%s %s %s %s\n", el.Inst, nn(el.P), nn(el.N), FormatValue(el.C))
		case *device.Inductor:
			fmt.Fprintf(b, "%s %s %s %s\n", el.Inst, nn(el.P), nn(el.N), FormatValue(el.L))
		case *device.VSource:
			fmt.Fprintf(b, "%s %s %s %s%s\n", el.Inst, nn(el.P), nn(el.N),
				formatWaveform(el.W), formatAC(el.ACMag, el.ACPhase))
		case *device.ISource:
			fmt.Fprintf(b, "%s %s %s %s%s\n", el.Inst, nn(el.P), nn(el.N),
				formatWaveform(el.W), formatAC(el.ACMag, el.ACPhase))
		case *device.Diode:
			fmt.Fprintf(b, "%s %s %s %s %s\n", el.Inst, nn(el.P), nn(el.N),
				dioCards[el.Model], FormatValue(el.Area))
		case *device.MOSFET:
			fmt.Fprintf(b, "%s %s %s %s %s %s w=%s l=%s\n", el.Inst,
				nn(el.D), nn(el.G), nn(el.S), nn(el.B),
				mosCards[el.Model], FormatValue(el.W), FormatValue(el.L))
		case *device.VCVS:
			fmt.Fprintf(b, "%s %s %s %s %s %s\n", el.Inst,
				nn(el.P), nn(el.N), nn(el.CP), nn(el.CN), FormatValue(el.Gain))
		case *device.VCCS:
			fmt.Fprintf(b, "%s %s %s %s %s %s\n", el.Inst,
				nn(el.P), nn(el.N), nn(el.CP), nn(el.CN), FormatValue(el.Gm))
		case *device.BJT:
			fmt.Fprintf(b, "%s %s %s %s %s %s\n", el.Inst,
				nn(el.C), nn(el.B), nn(el.E), bjtCards[el.Model], FormatValue(el.Area))
		case *device.MOSFETEKV:
			fmt.Fprintf(b, "%s %s %s %s %s %s w=%s l=%s\n", el.Inst,
				nn(el.D), nn(el.G), nn(el.S), nn(el.B),
				ekvCards[el.Model], FormatValue(el.W), FormatValue(el.L))
		case *device.Switch:
			fmt.Fprintf(b, "%s %s %s %s %s %s\n", el.Inst,
				nn(el.P), nn(el.N), nn(el.CP), nn(el.CN), swCards[el.Model])
		case *device.CCCS:
			fmt.Fprintf(b, "%s %s %s %s %s\n", el.Inst,
				nn(el.P), nn(el.N), el.Ctrl.Inst, FormatValue(el.Gain))
		case *device.CCVS:
			fmt.Fprintf(b, "%s %s %s %s %s\n", el.Inst,
				nn(el.P), nn(el.N), el.Ctrl.Inst, FormatValue(el.Gain))
		case *device.Mutual:
			fmt.Fprintf(b, "%s %s %s %s\n", el.Inst, el.L1.Inst, el.L2.Inst, FormatValue(el.K))
		default:
			return fmt.Errorf("netlist: cannot serialize device %T (%s)", dev, dev.Name())
		}
	}

	if len(d.ICs) > 0 {
		keys := make([]string, 0, len(d.ICs))
		for k := range d.ICs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprint(b, ".ic")
		for _, k := range keys {
			fmt.Fprintf(b, " v(%s)=%s", k, FormatValue(d.ICs[k]))
		}
		fmt.Fprintln(b)
	}
	if len(d.NodeSets) > 0 {
		keys := make([]string, 0, len(d.NodeSets))
		for k := range d.NodeSets {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprint(b, ".nodeset")
		for _, k := range keys {
			fmt.Fprintf(b, " v(%s)=%s", k, FormatValue(d.NodeSets[k]))
		}
		fmt.Fprintln(b)
	}
	if len(d.Options) > 0 {
		keys := make([]string, 0, len(d.Options))
		for k := range d.Options {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprint(b, ".options")
		for _, k := range keys {
			fmt.Fprintf(b, " %s=%s", k, FormatValue(d.Options[k]))
		}
		fmt.Fprintln(b)
	}
	if d.AC != nil {
		fmt.Fprintf(b, ".ac %s %d %s %s\n", d.AC.Sweep, d.AC.Points,
			FormatValue(d.AC.FStart), FormatValue(d.AC.FStop))
	}
	if d.DC != nil {
		fmt.Fprintf(b, ".dc %s %s %s %s\n", d.DC.Source,
			FormatValue(d.DC.Start), FormatValue(d.DC.Stop), FormatValue(d.DC.Step))
	}
	if d.Tran != nil {
		fmt.Fprintf(b, ".tran %s %s", FormatValue(d.Tran.TStep), FormatValue(d.Tran.TStop))
		if d.Tran.TMax > 0 {
			fmt.Fprintf(b, " %s", FormatValue(d.Tran.TMax))
		}
		if d.Tran.UIC {
			fmt.Fprint(b, " uic")
		}
		fmt.Fprintln(b)
	}
	fmt.Fprintln(b, ".end")
	_, err := io.WriteString(w, b.String())
	return err
}

func writeModelCards(b *strings.Builder, dio map[device.DiodeModel]string, mos map[device.MOSModel]string) {
	type card struct{ name, text string }
	var cards []card
	for m, name := range dio {
		cards = append(cards, card{name, fmt.Sprintf(
			".model %s d(is=%s n=%s tt=%s cj0=%s vj=%s m=%s fc=%s)\n",
			name, FormatValue(m.IS), FormatValue(m.N), FormatValue(m.TT),
			FormatValue(m.CJ0), FormatValue(m.VJ), FormatValue(m.M), FormatValue(m.FC))})
	}
	for m, name := range mos {
		kind := "nmos"
		if m.Type == device.PMOS {
			kind = "pmos"
		}
		cards = append(cards, card{name, fmt.Sprintf(
			".model %s %s(vto=%s kp=%s gamma=%s phi=%s lambda=%s cox=%s cgso=%s cgdo=%s cgbo=%s cbd=%s cbs=%s)\n",
			name, kind, FormatValue(m.VTO), FormatValue(m.KP), FormatValue(m.GAMMA),
			FormatValue(m.PHI), FormatValue(m.LAMBDA), FormatValue(m.COX),
			FormatValue(m.CGSO), FormatValue(m.CGDO), FormatValue(m.CGBO),
			FormatValue(m.CBD), FormatValue(m.CBS))})
	}
	sort.Slice(cards, func(i, j int) bool { return cards[i].name < cards[j].name })
	for _, c := range cards {
		b.WriteString(c.text)
	}
}

// writeExtraModelCards emits EKV, BJT and switch model cards.
func writeExtraModelCards(b *strings.Builder, ekv map[device.EKVModel]string,
	bjt map[device.BJTModel]string, sw map[device.SwitchModel]string) {
	type card struct{ name, text string }
	var cards []card
	for m, name := range ekv {
		kind := "nmos"
		if m.Type == device.PMOS {
			kind = "pmos"
		}
		cards = append(cards, card{name, fmt.Sprintf(
			".model %s %s(level=2 vto=%s kp=%s nfactor=%s lambda=%s cox=%s cgso=%s cgdo=%s)\n",
			name, kind, FormatValue(m.VTO), FormatValue(m.KP), FormatValue(m.N),
			FormatValue(m.LAMBDA), FormatValue(m.COX), FormatValue(m.CGSO), FormatValue(m.CGDO))})
	}
	for m, name := range bjt {
		kind := "npn"
		if m.Type == device.PNP {
			kind = "pnp"
		}
		cards = append(cards, card{name, fmt.Sprintf(
			".model %s %s(is=%s bf=%s br=%s nf=%s nr=%s vaf=%s tf=%s tr=%s cje=%s vje=%s mje=%s cjc=%s vjc=%s mjc=%s fc=%s)\n",
			name, kind, FormatValue(m.IS), FormatValue(m.BF), FormatValue(m.BR),
			FormatValue(m.NF), FormatValue(m.NR), FormatValue(m.VAF),
			FormatValue(m.TF), FormatValue(m.TR), FormatValue(m.CJE), FormatValue(m.VJE),
			FormatValue(m.MJE), FormatValue(m.CJC), FormatValue(m.VJC), FormatValue(m.MJC),
			FormatValue(m.FC))})
	}
	for m, name := range sw {
		cards = append(cards, card{name, fmt.Sprintf(
			".model %s sw(ron=%s roff=%s vt=%s dv=%s)\n",
			name, FormatValue(m.RON), FormatValue(m.ROFF), FormatValue(m.VT), FormatValue(m.DV))})
	}
	sort.Slice(cards, func(i, j int) bool { return cards[i].name < cards[j].name })
	for _, c := range cards {
		b.WriteString(c.text)
	}
}

// formatAC renders a source's AC specification suffix ("" when absent).
func formatAC(mag, phase float64) string {
	if mag == 0 {
		return ""
	}
	if phase == 0 {
		return fmt.Sprintf(" ac %s", FormatValue(mag))
	}
	return fmt.Sprintf(" ac %s %s", FormatValue(mag), FormatValue(phase))
}

func formatWaveform(w device.Waveform) string {
	switch wf := w.(type) {
	case device.DC:
		return fmt.Sprintf("dc %s", FormatValue(float64(wf)))
	case device.Pulse:
		return fmt.Sprintf("pulse(%s %s %s %s %s %s %s)",
			FormatValue(wf.V1), FormatValue(wf.V2), FormatValue(wf.Delay),
			FormatValue(wf.Rise), FormatValue(wf.Fall), FormatValue(wf.Width),
			FormatValue(wf.Period))
	case device.Sin:
		return fmt.Sprintf("sin(%s %s %s %s %s)",
			FormatValue(wf.Offset), FormatValue(wf.Amplitude), FormatValue(wf.Freq),
			FormatValue(wf.Delay), FormatValue(wf.Damping))
	case device.PWL:
		parts := make([]string, 0, 2*len(wf.Times))
		for i := range wf.Times {
			parts = append(parts, FormatValue(wf.Times[i]), FormatValue(wf.Values[i]))
		}
		return fmt.Sprintf("pwl(%s)", strings.Join(parts, " "))
	case device.Exp:
		return fmt.Sprintf("exp(%s %s %s %s %s %s)",
			FormatValue(wf.V1), FormatValue(wf.V2), FormatValue(wf.TD1),
			FormatValue(wf.Tau1), FormatValue(wf.TD2), FormatValue(wf.Tau2))
	default:
		return "dc 0"
	}
}
