package netlist

import (
	"math"
	"strings"
	"testing"

	"wavepipe/internal/device"
)

const extendedDeck = `extended element coverage
.model qn npn(is=1e-15 bf=150 vaf=100 tf=0.3n cje=1p cjc=0.5p)
.model qp pnp(bf=60)
.model nch2 nmos(level=2 vto=0.45 kp=100u nfactor=1.3 lambda=0.04)
.model relay sw(ron=0.5 roff=1meg vt=2.5 dv=0.2)
VCC vcc 0 DC 12
VIN in 0 SIN(0 0.01 1k) AC 1 90
ISRC 0 bias DC 1m AC 0.5
RC1 vcc c1 4.7k
Q1 c1 in e1 qn 2
Q2 vcc e1 out qp
RE e1 0 1k
RL out 0 10k
M1 c1 in 0 0 nch2 w=5u l=1u
L1 in lx 1u
L2 out ly 4u
RLX lx 0 1k
RLY ly 0 1k
K1 L1 L2 0.8
F1 0 fb VIN 3
RF fb 0 2k
H1 hout 0 VIN 100
RH hout 0 1k
S1 bias sw1 in 0 relay
RSW sw1 0 1k
.ac dec 10 1 1meg
.dc VIN -1 1 0.1
.tran 1u 5m
.end
`

func TestParseExtendedElements(t *testing.T) {
	d, err := Parse(extendedDeck)
	if err != nil {
		t.Fatal(err)
	}
	var (
		nBJT, nEKV, nSwitch, nCCCS, nCCVS, nMutual int
		vin                                        *device.VSource
		isrc                                       *device.ISource
	)
	for _, dev := range d.Circuit.Devices() {
		switch el := dev.(type) {
		case *device.BJT:
			nBJT++
			if el.Inst == "Q1" {
				if el.Model.BF != 150 || el.Model.VAF != 100 || el.Area != 2 {
					t.Fatalf("Q1 model: %+v area %g", el.Model, el.Area)
				}
			}
		case *device.MOSFETEKV:
			nEKV++
			if el.Model.VTO != 0.45 || el.Model.N != 1.3 {
				t.Fatalf("EKV model: %+v", el.Model)
			}
		case *device.Switch:
			nSwitch++
			if el.Model.RON != 0.5 || el.Model.VT != 2.5 {
				t.Fatalf("switch model: %+v", el.Model)
			}
		case *device.CCCS:
			nCCCS++
			if el.Ctrl.Inst != "VIN" || el.Gain != 3 {
				t.Fatalf("CCCS: %+v", el)
			}
		case *device.CCVS:
			nCCVS++
			if el.Gain != 100 {
				t.Fatalf("CCVS gain: %g", el.Gain)
			}
		case *device.Mutual:
			nMutual++
			if el.K != 0.8 || el.L1.Inst != "L1" {
				t.Fatalf("mutual: %+v", el)
			}
		case *device.VSource:
			if el.Inst == "VIN" {
				vin = el
			}
		case *device.ISource:
			isrc = el
		}
	}
	if nBJT != 2 || nEKV != 1 || nSwitch != 1 || nCCCS != 1 || nCCVS != 1 || nMutual != 1 {
		t.Fatalf("element counts: Q=%d EKV=%d S=%d F=%d H=%d K=%d",
			nBJT, nEKV, nSwitch, nCCCS, nCCVS, nMutual)
	}
	if vin == nil || vin.ACMag != 1 || vin.ACPhase != 90 {
		t.Fatalf("VIN AC spec: %+v", vin)
	}
	if isrc == nil || isrc.ACMag != 0.5 {
		t.Fatalf("ISRC AC spec: %+v", isrc)
	}
	if d.AC == nil || d.AC.Sweep != "dec" || d.AC.Points != 10 || d.AC.FStop != 1e6 {
		t.Fatalf(".AC = %+v", d.AC)
	}
	if d.DC == nil || d.DC.Source != "VIN" || d.DC.Step != 0.1 {
		t.Fatalf(".DC = %+v", d.DC)
	}
	if src, ok := d.FindSource("vin"); !ok || src != vin {
		t.Fatal("FindSource")
	}
	if _, ok := d.FindSource("nope"); ok {
		t.Fatal("FindSource invented a source")
	}
	if _, err := d.Circuit.Build(); err != nil {
		t.Fatal(err)
	}
}

func TestExtendedWriteParseRoundTrip(t *testing.T) {
	d1, err := Parse(extendedDeck)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := Write(&sb, d1); err != nil {
		t.Fatal(err)
	}
	d2, err := Parse(sb.String())
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, sb.String())
	}
	if len(d2.Circuit.Devices()) != len(d1.Circuit.Devices()) {
		t.Fatalf("device count %d -> %d", len(d1.Circuit.Devices()), len(d2.Circuit.Devices()))
	}
	if d2.AC == nil || d2.AC.Points != 10 || d2.DC == nil || d2.DC.Source != "VIN" {
		t.Fatalf("analysis cards lost: %+v %+v", d2.AC, d2.DC)
	}
	vin2, ok := d2.FindSource("VIN")
	if !ok || vin2.ACMag != 1 || math.Abs(vin2.ACPhase-90) > 1e-12 {
		t.Fatalf("AC spec lost: %+v", vin2)
	}
	if _, err := d2.Circuit.Build(); err != nil {
		t.Fatal(err)
	}
}

func TestSplitACSpec(t *testing.T) {
	// "ac" inside PULSE parens must not trigger the AC spec.
	wave, mag, _, err := splitACSpec([]string{"pulse(0", "1", "1n", "1n", "1n", "5n", "10n)", "AC", "2"})
	if err != nil {
		t.Fatal(err)
	}
	if len(wave) != 7 || mag != 2 {
		t.Fatalf("wave=%v mag=%g", wave, mag)
	}
	// Bare AC defaults to magnitude 1.
	_, mag, _, err = splitACSpec([]string{"dc", "5", "ac"})
	if err != nil || mag != 1 {
		t.Fatalf("bare ac: mag=%g err=%v", mag, err)
	}
	// No AC at all.
	wave, mag, _, err = splitACSpec([]string{"dc", "5"})
	if err != nil || mag != 0 || len(wave) != 2 {
		t.Fatalf("no ac: %v %g %v", wave, mag, err)
	}
}

func TestDeferredReferenceErrors(t *testing.T) {
	cases := []string{
		"t\nR1 a 0 1k\nF1 a 0 VX 2\n.end",         // unknown control source
		"t\nR1 a 0 1k\nK1 L1 L2 0.5\n.end",        // unknown inductors
		"t\nV1 a 0 1\nR1 a 0 1k\nF1 a 0 V1\n.end", // missing gain
		"t\nQ1 a b c nosuch\nR1 a 0 1\n.end",      // unknown BJT model
		"t\nS1 a 0 b 0 nosuch\nR1 a 0 1\n.end",    // unknown switch model
	}
	for _, c := range cases {
		if _, err := Parse(c); err == nil {
			t.Fatalf("expected error for %q", c)
		}
	}
}
