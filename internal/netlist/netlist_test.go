package netlist

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"wavepipe/internal/circuit"
	"wavepipe/internal/dcop"
	"wavepipe/internal/device"
	"wavepipe/internal/transient"
	"wavepipe/internal/waveform"
)

func TestParseValue(t *testing.T) {
	cases := []struct {
		in   string
		want float64
	}{
		{"10", 10}, {"-3.5", -3.5}, {"1e-9", 1e-9}, {"2.5e3", 2500},
		{"10k", 10e3}, {"4.7u", 4.7e-6}, {"100n", 100e-9}, {"2p", 2e-12},
		{"3f", 3e-15}, {"1meg", 1e6}, {"2g", 2e9}, {"1t", 1e12},
		{"5m", 5e-3}, {"10kohm", 10e3}, {"5pF", 5e-12}, {"3V", 3},
		{"1MEG", 1e6}, {"2.2K", 2200},
	}
	for _, c := range cases {
		got, err := ParseValue(c.in)
		if err != nil {
			t.Fatalf("ParseValue(%q): %v", c.in, err)
		}
		if math.Abs(got-c.want) > 1e-12*math.Abs(c.want) {
			t.Fatalf("ParseValue(%q) = %g, want %g", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"", "abc", "--5"} {
		if _, err := ParseValue(bad); err == nil {
			t.Fatalf("ParseValue(%q) should fail", bad)
		}
	}
}

func TestFormatValueRoundTrip(t *testing.T) {
	for _, v := range []float64{0, 1, -2.5, 4.7e-6, 1e-13, 3.3e3, 2.2e6, 5e9, 7e12, 1e-15} {
		got, err := ParseValue(FormatValue(v))
		if err != nil {
			t.Fatalf("FormatValue(%g) = %q unparseable: %v", v, FormatValue(v), err)
		}
		if math.Abs(got-v) > 1e-6*math.Abs(v) {
			t.Fatalf("round trip %g -> %q -> %g", v, FormatValue(v), got)
		}
	}
}

const dividerDeck = `resistive divider test
V1 in 0 DC 10
R1 in mid 1k
R2 mid 0 1k
.tran 1u 1m
.end
`

func TestParseDivider(t *testing.T) {
	d, err := Parse(dividerDeck)
	if err != nil {
		t.Fatal(err)
	}
	if d.Title != "resistive divider test" {
		t.Fatalf("title = %q", d.Title)
	}
	if got := len(d.Circuit.Devices()); got != 3 {
		t.Fatalf("devices = %d", got)
	}
	if d.Tran == nil || d.Tran.TStop != 1e-3 || d.Tran.TStep != 1e-6 {
		t.Fatalf("tran = %+v", d.Tran)
	}
	sys, err := d.Circuit.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := transient.Run(sys, transient.Options{TStop: d.Tran.TStop})
	if err != nil {
		t.Fatal(err)
	}
	v, err := res.W.At("mid", 0.5e-3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-5) > 1e-6 {
		t.Fatalf("v(mid) = %g, want 5", v)
	}
}

func TestParseComments_Continuations_Case(t *testing.T) {
	deck := `* commented title
* a full comment line
V1 IN 0 PULSE(0 5
+ 1u 1u 1u
+ 10u 100u) ; trailing comment
r1 in out 2K $ another comment
C1 OUT 0 1u
.TRAN 1u 50u UIC
.IC v(out)=2.5
.OPTIONS reltol=1e-4 gmin=1e-13
.END
`
	d, err := Parse(deck)
	if err != nil {
		t.Fatal(err)
	}
	if d.Title != "commented title" {
		t.Fatalf("title = %q", d.Title)
	}
	if len(d.Circuit.Devices()) != 3 {
		t.Fatalf("devices = %d", len(d.Circuit.Devices()))
	}
	v1, ok := d.Circuit.Devices()[0].(*device.VSource)
	if !ok {
		t.Fatalf("V1 type %T", d.Circuit.Devices()[0])
	}
	p, ok := v1.W.(device.Pulse)
	if !ok || p.V2 != 5 || math.Abs(p.Delay-1e-6) > 1e-18 ||
		math.Abs(p.Width-10e-6) > 1e-17 || math.Abs(p.Period-100e-6) > 1e-16 {
		t.Fatalf("pulse = %+v", p)
	}
	if !d.Tran.UIC {
		t.Fatal("UIC flag lost")
	}
	if d.ICs["out"] != 2.5 {
		t.Fatalf("ICs = %v", d.ICs)
	}
	if d.Options["reltol"] != 1e-4 || d.Options["gmin"] != 1e-13 {
		t.Fatalf("options = %v", d.Options)
	}
	// Case-insensitive node identity: IN and in are the same node.
	if d.Circuit.NumNodes() != 2 {
		t.Fatalf("nodes = %d, want 2 (in, out)", d.Circuit.NumNodes())
	}
}

func TestParseAllWaveforms(t *testing.T) {
	deck := `waveforms
V1 a 0 5
V2 b 0 DC 3
V3 c 0 SIN(1 2 1k 1u 100)
V4 d 0 PWL(0 0 1u 5 2u 0)
V5 e 0 EXP(0 1 0 1u 5u 1u)
I1 f 0 PULSE(0 1m 0 1n 1n 5n 10n)
R1 a b 1k
R2 c d 1k
R3 e f 1k
.end
`
	d, err := Parse(deck)
	if err != nil {
		t.Fatal(err)
	}
	devs := d.Circuit.Devices()
	if _, ok := devs[0].(*device.VSource).W.(device.DC); !ok {
		t.Fatalf("bare value should parse as DC: %T", devs[0].(*device.VSource).W)
	}
	if _, ok := devs[2].(*device.VSource).W.(device.Sin); !ok {
		t.Fatal("SIN")
	}
	pwl, ok := devs[3].(*device.VSource).W.(device.PWL)
	if !ok || len(pwl.Times) != 3 {
		t.Fatalf("PWL = %+v", pwl)
	}
	if _, ok := devs[4].(*device.VSource).W.(device.Exp); !ok {
		t.Fatal("EXP")
	}
	if _, ok := devs[5].(*device.ISource).W.(device.Pulse); !ok {
		t.Fatal("ISource PULSE")
	}
}

func TestParseModelsAndActives(t *testing.T) {
	deck := `actives
.model d1n4148 D (is=2.52n n=1.752 cj0=4p m=.4 tt=20n)
.model nch NMOS (vto=0.6 kp=120u gamma=0.3 lambda=0.02)
.model pch PMOS (vto=-0.65 kp=40u)
Vdd vdd 0 3.3
Vin in 0 SIN(1.5 0.5 1meg)
D1 in rect d1n4148 2
Rr rect 0 10k
MP1 out in vdd vdd pch w=4u l=0.5u
MN1 out in 0 0 nch w=2u l=0.5u
CL out 0 10f
.tran 10n 2u
.end
`
	d, err := Parse(deck)
	if err != nil {
		t.Fatal(err)
	}
	var dio *device.Diode
	var pm *device.MOSFET
	for _, dev := range d.Circuit.Devices() {
		switch el := dev.(type) {
		case *device.Diode:
			dio = el
		case *device.MOSFET:
			if el.Model.Type == device.PMOS {
				pm = el
			}
		}
	}
	if dio == nil || math.Abs(dio.Model.IS-2.52e-9) > 1e-18 || dio.Area != 2 {
		t.Fatalf("diode = %+v", dio)
	}
	if dio.Model.N != 1.752 || dio.Model.M != 0.4 {
		t.Fatalf("diode model = %+v", dio.Model)
	}
	if pm == nil || pm.Model.VTO != 0.65 || math.Abs(pm.Model.KP-40e-6) > 1e-12 || pm.W != 4e-6 {
		t.Fatalf("pmos = %+v", pm)
	}
	if _, err := d.Circuit.Build(); err != nil {
		t.Fatal(err)
	}
}

func TestSubcircuitExpansion(t *testing.T) {
	deck := `subckt test
.subckt divider top bot mid
R1 top mid 1k
R2 mid bot 1k
.ends
V1 in 0 DC 8
X1 in 0 a divider
X2 a 0 b divider
.end
`
	d, err := Parse(deck)
	if err != nil {
		t.Fatal(err)
	}
	// 1 source + 2×2 resistors.
	if got := len(d.Circuit.Devices()); got != 5 {
		t.Fatalf("devices = %d", got)
	}
	sys, err := d.Circuit.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := transient.Run(sys, transient.Options{TStop: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	// a = 8·(500/1500) = 8/3... compute: X1 divides in..0 with mid=a loaded
	// by X2's 2k chain from a to 0: R_low = 1k || 2k = 2/3k; a = 8·(2/3)/(1+2/3) = 3.2.
	va, err := res.W.At("a", 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(va-3.2) > 1e-3 {
		t.Fatalf("v(a) = %g, want 3.2", va)
	}
	vb, err := res.W.At("b", 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vb-1.6) > 1e-3 {
		t.Fatalf("v(b) = %g, want 1.6", vb)
	}
}

func TestNestedSubcircuits(t *testing.T) {
	deck := `nested
.subckt half a b
R1 a b 1k
.ends
.subckt full p q
X1 p m half
X2 m q half
.ends
V1 in 0 DC 2
Xtop in 0 full
.end
`
	d, err := Parse(deck)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(d.Circuit.Devices()); got != 3 {
		t.Fatalf("devices = %d", got)
	}
	sys, err := d.Circuit.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := transient.Run(sys, transient.Options{TStop: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	v, err := res.W.At("xtop.m", 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-1) > 1e-6 {
		t.Fatalf("v(xtop.m) = %g, want 1", v)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"t\nR1 a 0\n.end",                                   // missing value
		"t\nR1 a 0 0\n.end",                                 // zero resistance
		"t\nQ1 a b c model\n.end",                           // unsupported element
		"t\nD1 a 0 nosuch\n.end",                            // unknown model
		"t\n.model m1 bjt(bf=100)\n.end",                    // unsupported model type
		"t\nX1 a b nosub\n.end",                             // unknown subckt
		"t\n.subckt s a\nR1 a 0 1\n.end",                    // unterminated subckt
		"t\n.ends\n.end",                                    // stray .ends
		"t\n.tran 1u\n.end",                                 // short .tran
		"t\n.ic out=5\n.end",                                // malformed .ic
		"t\n.badcard x\n.end",                               // unknown directive
		"t\n.subckt s a b\nR1 a b 1k\n.ends\nX1 in s\n.end", // port count
		"t\nV1 a 0 SIN(1 2 3 4 5 6 7)\n.end",                // too many SIN args
	}
	for _, c := range cases {
		if _, err := Parse(c); err == nil {
			t.Fatalf("expected error for deck %q", c)
		}
	}
}

// Property: Write then Parse reproduces a circuit that simulates to the
// same waveform.
func TestWriteParseRoundTrip(t *testing.T) {
	deck := `round trip
.model dd d(is=1e-14 n=1.2 tt=1n cj0=2p vj=0.8 m=0.45 fc=0.5)
.model nch nmos(vto=0.7 kp=110u gamma=0.4 phi=0.65 lambda=0.05)
V1 in 0 SIN(0 2 100k)
Vdd vdd 0 DC 3
R1 in a 220
D1 a out dd 1
C1 out 0 100n
R2 out 0 5k
M1 drain a 0 0 nch w=5u l=1u
R3 vdd drain 10k
L1 drain tail 1u
Rt tail 0 50
E1 amp 0 out 0 2
RE amp 0 1k
G1 0 gout a 0 1m
RG gout 0 2k
I2 0 a PULSE(0 1m 1u 100n 100n 2u 10u)
.ic v(out)=0.1
.options reltol=0.002
.tran 100n 30u
.end
`
	d1, err := Parse(deck)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := Write(&sb, d1); err != nil {
		t.Fatal(err)
	}
	d2, err := Parse(sb.String())
	if err != nil {
		t.Fatalf("reparse: %v\ndeck:\n%s", err, sb.String())
	}
	if len(d2.Circuit.Devices()) != len(d1.Circuit.Devices()) {
		t.Fatalf("device count %d -> %d", len(d1.Circuit.Devices()), len(d2.Circuit.Devices()))
	}
	if d2.Tran == nil || math.Abs(d2.Tran.TStop-d1.Tran.TStop) > 1e-12*d1.Tran.TStop {
		t.Fatalf("tran lost: %+v", d2.Tran)
	}
	if d2.ICs["out"] != 0.1 || d2.Options["reltol"] != 0.002 {
		t.Fatalf("ic/options lost: %v %v", d2.ICs, d2.Options)
	}
	run := func(d *Deck) *waveform.Set {
		sys, err := d.Circuit.Build()
		if err != nil {
			t.Fatal(err)
		}
		res, err := transient.Run(sys, transient.Options{TStop: d.Tran.TStop})
		if err != nil {
			t.Fatal(err)
		}
		return res.W
	}
	w1 := run(d1)
	w2 := run(d2)
	for _, node := range []string{"out", "drain", "amp"} {
		dev, err := waveform.Compare(w2, w1, node)
		if err != nil {
			t.Fatal(err)
		}
		if dev.RelMax() > 0.01 {
			t.Fatalf("node %s: round-trip deviation %g", node, dev.RelMax())
		}
	}
}

// Property: randomly generated RC/source circuits survive a Write/Parse
// round trip with identical simulated operating points.
func TestRandomCircuitRoundTripQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := circuit.New("random")
		nNodes := 3 + rng.Intn(6)
		nodes := make([]int, nNodes)
		for i := range nodes {
			nodes[i] = c.Node(fmt.Sprintf("n%d", i))
		}
		pick := func() int { return nodes[rng.Intn(nNodes)] }
		// A source guarantees a reference; resistors guarantee DC paths.
		c.Add(device.NewVSource("V0", nodes[0], circuit.Ground, device.DC(1+rng.Float64()*9)))
		for i, nd := range nodes {
			c.Add(device.NewResistor(fmt.Sprintf("Rg%d", i), nd, circuit.Ground,
				100+rng.Float64()*1e4))
		}
		extra := rng.Intn(8)
		for i := 0; i < extra; i++ {
			a, b := pick(), pick()
			if a == b {
				continue
			}
			switch rng.Intn(3) {
			case 0:
				c.Add(device.NewResistor(fmt.Sprintf("Rx%d", i), a, b, 10+rng.Float64()*1e5))
			case 1:
				c.Add(device.NewCapacitor(fmt.Sprintf("Cx%d", i), a, b, 1e-12+rng.Float64()*1e-9))
			default:
				c.Add(device.NewISource(fmt.Sprintf("Ix%d", i), a, b, device.DC(rng.NormFloat64()*1e-3)))
			}
		}
		d1 := &Deck{Title: "random", Circuit: c,
			ICs: map[string]float64{}, NodeSets: map[string]float64{}, Options: map[string]float64{}}
		var sb strings.Builder
		if err := Write(&sb, d1); err != nil {
			t.Logf("write: %v", err)
			return false
		}
		d2, err := Parse(sb.String())
		if err != nil {
			t.Logf("parse: %v\n%s", err, sb.String())
			return false
		}
		op := func(d *Deck) []float64 {
			sys, err := d.Circuit.Build()
			if err != nil {
				t.Logf("build: %v", err)
				return nil
			}
			ws := sys.NewWorkspace()
			x := make([]float64, sys.N)
			if _, err := dcop.Solve(ws, x, dcop.DefaultOptions()); err != nil {
				return nil
			}
			return x[:sys.NumNodes]
		}
		x1 := op(d1)
		x2 := op(d2)
		if x1 == nil || x2 == nil {
			return x1 == nil && x2 == nil // both unsolvable is consistent
		}
		for i := range x1 {
			if math.Abs(x1[i]-x2[i]) > 1e-6*(1+math.Abs(x1[i])) {
				t.Logf("node %d: %g vs %g", i, x1[i], x2[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
