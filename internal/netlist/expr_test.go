package netlist

import (
	"math"
	"strings"
	"testing"

	"wavepipe/internal/device"
)

func TestEvalExpr(t *testing.T) {
	params := map[string]float64{"rload": 2e3, "n": 4}
	cases := []struct {
		in   string
		want float64
	}{
		{"1+2*3", 7},
		{"(1+2)*3", 9},
		{"-2*3", -6},
		{"rload/2", 1e3},
		{"rload*n + 1k", 9e3},
		{"2.5u*4", 1e-5},
		{"+5", 5},
		{"1e3*2", 2e3},
	}
	for _, c := range cases {
		got, err := EvalExpr(c.in, params)
		if err != nil {
			t.Fatalf("%q: %v", c.in, err)
		}
		if math.Abs(got-c.want) > 1e-12*math.Abs(c.want) {
			t.Fatalf("%q = %g, want %g", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"", "1+", "(1", "zz*2", "1/0", "1 2", "#"} {
		if _, err := EvalExpr(bad, params); err == nil {
			t.Fatalf("%q should fail", bad)
		}
	}
}

func TestSubstituteParams(t *testing.T) {
	params := map[string]float64{"w": 2e-6}
	out, err := substituteParams("M1 d g s b mod w={w} l={w/4}", params)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "w=2u") || !strings.Contains(out, "l=500n") {
		t.Fatalf("substituted: %q", out)
	}
	if _, err := substituteParams("R1 a b {unclosed", params); err == nil {
		t.Fatal("unterminated brace should fail")
	}
	plain, _ := substituteParams("R1 a b 1k", params)
	if plain != "R1 a b 1k" {
		t.Fatal("plain line must pass through")
	}
}

func TestParamDeckEndToEnd(t *testing.T) {
	deck := `parametrized divider
.param rtop=1k rbot={rtop*3}
.param vdrive=8
V1 in 0 DC {vdrive}
R1 in mid {rtop}
R2 mid 0 {rbot}
.end
`
	d, err := Parse(deck)
	if err != nil {
		t.Fatal(err)
	}
	var rbot float64
	for _, dev := range d.Circuit.Devices() {
		if r, ok := dev.(*device.Resistor); ok && r.Inst == "R2" {
			rbot = r.R
		}
	}
	if rbot != 3e3 {
		t.Fatalf("rbot = %g", rbot)
	}
	if _, err := Parse("t\n.param bad\n.end"); err == nil {
		t.Fatal("malformed .param should fail")
	}
	if _, err := Parse("t\n.param x={undefined_ref*2}\n.end"); err == nil {
		t.Fatal("undefined reference should fail")
	}
}
