// Package netlist parses a practical subset of the SPICE netlist language
// into circuit.Circuit instances: the R/C/L/V/I/D/M/E/G elements,
// .MODEL cards for diodes and Level-1 MOSFETs, hierarchical .SUBCKT/X
// instantiation, .TRAN/.IC/.OPTIONS directives, engineering unit suffixes,
// continuation lines and comments. It also writes decks back out.
package netlist

import (
	"fmt"
	"strconv"
	"strings"

	"wavepipe/internal/circuit"
	"wavepipe/internal/device"
)

// TranSpec is the parsed .TRAN directive.
type TranSpec struct {
	TStep float64 // suggested print/output interval
	TStop float64
	TMax  float64 // optional max step (0 = engine default)
	UIC   bool
}

// ACSpec is the parsed .AC directive.
type ACSpec struct {
	Sweep  string // "dec", "oct" or "lin"
	Points int
	FStart float64
	FStop  float64
}

// DCSpec is the parsed .DC directive (single-source sweep).
type DCSpec struct {
	Source string // source instance name
	Start  float64
	Stop   float64
	Step   float64
}

// Deck is a fully parsed netlist.
type Deck struct {
	Title    string
	Circuit  *circuit.Circuit
	Tran     *TranSpec          // nil when the deck has no .TRAN
	AC       *ACSpec            // nil when the deck has no .AC
	DC       *DCSpec            // nil when the deck has no .DC
	ICs      map[string]float64 // node name -> initial voltage (.IC)
	NodeSets map[string]float64 // node name -> OP initial guess (.NODESET)
	Options  map[string]float64 // lower-cased .OPTIONS entries
	Params   map[string]float64 // resolved .PARAM values (lower-cased names)
	// Prints lists node names referenced by .PRINT/.PLOT/.PROBE/.SAVE
	// cards through v(node) terms. The simulator does not format print
	// output, but the parasitic-reduction pass must never collapse a node
	// the deck asks to observe, so these names feed the reduction keep
	// list. The deck writer deliberately does not emit the cards: they do
	// not change the circuit, and keeping them out of the canonical form
	// leaves artifact-cache keying to the layer that owns reduction
	// options.
	Prints []string
	// Src retains the deck text Parse consumed, so variant decks (ensemble
	// lanes with .PARAM overrides) can be re-elaborated without the caller
	// keeping the source around.
	Src string
}

// FindSource returns the named independent voltage source (for .DC sweeps
// and F/H controlling references); names are case-insensitive.
func (d *Deck) FindSource(name string) (*device.VSource, bool) {
	low := strings.ToLower(name)
	for _, dev := range d.Circuit.Devices() {
		if v, ok := dev.(*device.VSource); ok && strings.ToLower(v.Inst) == low {
			return v, true
		}
	}
	return nil, false
}

// Parse reads a SPICE deck. Following the SPICE convention, the first
// non-blank line is always the title (a leading '*' is stripped from it).
func Parse(input string) (*Deck, error) {
	return ParseParams(input, nil)
}

// ParseParams is Parse with .PARAM overrides: entries in over (names are
// case-insensitive) are pre-seeded and locked, so a .PARAM card in the deck
// cannot overwrite them — but expressions referencing the parameter resolve
// to the override. Ensemble lanes and -sweep use it to elaborate variants
// of one deck.
func ParseParams(input string, over map[string]float64) (*Deck, error) {
	p := &parser{
		deck: &Deck{
			ICs:      make(map[string]float64),
			NodeSets: make(map[string]float64),
			Options:  make(map[string]float64),
		},
		models:  make(map[string]modelCard),
		subckts: make(map[string]*subcktDef),
		sources: make(map[string]*device.VSource),
		inducts: make(map[string]*device.Inductor),
		params:  make(map[string]float64),
	}
	if len(over) > 0 {
		p.locked = make(map[string]bool, len(over))
		for k, v := range over {
			lk := strings.ToLower(k)
			p.params[lk] = v
			p.locked[lk] = true
		}
	}
	p.deck.Src = input
	p.deck.Circuit = circuit.New("")
	lines, title := preprocess(input)
	p.deck.Title = title
	p.deck.Circuit.Title = title

	// First pass: collect .PARAM definitions, .SUBCKT bodies and .MODEL
	// cards so instantiation order does not matter; brace expressions are
	// substituted as each line is classified.
	var mainLines []string
	var cur *subcktDef
	for _, ln := range lines {
		if strings.HasPrefix(strings.ToLower(strings.TrimSpace(ln)), ".param") {
			if err := p.parseParam(ln); err != nil {
				return nil, err
			}
			continue
		}
		ln, err := substituteParams(ln, p.params)
		if err != nil {
			return nil, err
		}
		fields := strings.Fields(ln)
		key := strings.ToLower(fields[0])
		switch {
		case key == ".subckt":
			if cur != nil {
				return nil, fmt.Errorf("netlist: nested .SUBCKT at %q", ln)
			}
			if len(fields) < 3 {
				return nil, fmt.Errorf("netlist: malformed .SUBCKT %q", ln)
			}
			cur = &subcktDef{name: strings.ToLower(fields[1]), ports: fields[2:]}
		case key == ".ends":
			if cur == nil {
				return nil, fmt.Errorf("netlist: .ENDS without .SUBCKT")
			}
			p.subckts[cur.name] = cur
			cur = nil
		case cur != nil:
			cur.lines = append(cur.lines, ln)
		case key == ".model":
			if err := p.parseModel(fields); err != nil {
				return nil, err
			}
		default:
			mainLines = append(mainLines, ln)
		}
	}
	if cur != nil {
		return nil, fmt.Errorf("netlist: unterminated .SUBCKT %q", cur.name)
	}

	for _, ln := range mainLines {
		if err := p.parseLine(ln, "", nil); err != nil {
			return nil, err
		}
	}
	for _, d := range p.deferred {
		if err := p.parseDeferred(d); err != nil {
			return nil, err
		}
	}
	p.deck.Params = p.params
	return p.deck, nil
}

// preprocess strips comments, joins continuation lines and extracts the
// title line.
func preprocess(input string) ([]string, string) {
	raw := strings.Split(input, "\n")
	var joined []string
	title := ""
	first := true
	for _, ln := range raw {
		if i := strings.IndexAny(ln, ";$"); i >= 0 {
			ln = ln[:i]
		}
		ln = strings.TrimRight(ln, " \t\r")
		trimmed := strings.TrimSpace(ln)
		if trimmed == "" || strings.HasPrefix(trimmed, "*") {
			if first && strings.HasPrefix(trimmed, "*") {
				title = strings.TrimSpace(trimmed[1:])
				first = false
			}
			continue
		}
		if first {
			title = trimmed
			first = false
			continue
		}
		if strings.HasPrefix(trimmed, "+") {
			if len(joined) > 0 {
				joined[len(joined)-1] += " " + strings.TrimSpace(trimmed[1:])
			}
			continue
		}
		joined = append(joined, trimmed)
	}
	// Drop .end.
	var out []string
	for _, ln := range joined {
		if strings.EqualFold(strings.TrimSpace(ln), ".end") {
			break
		}
		out = append(out, ln)
	}
	return out, title
}

type modelCard struct {
	kind   string // "d", "nmos", "pmos"
	params map[string]float64
}

type subcktDef struct {
	name  string
	ports []string
	lines []string
}

type pendingLine struct {
	line    string
	prefix  string
	portMap map[string]string
}

type parser struct {
	deck    *Deck
	models  map[string]modelCard
	subckts map[string]*subcktDef
	xDepth  int
	// F, H and K elements reference other devices by name; they are
	// resolved after every element exists.
	deferred []pendingLine
	sources  map[string]*device.VSource
	inducts  map[string]*device.Inductor
	params   map[string]float64
	locked   map[string]bool // override-seeded params a .PARAM card cannot redefine
}

// parseParam handles ".PARAM name=expr ..." definitions; expressions may
// reference previously defined parameters.
func (p *parser) parseParam(ln string) error {
	body := strings.TrimSpace(ln)[len(".param"):]
	body = strings.ReplaceAll(body, " =", "=")
	body = strings.ReplaceAll(body, "= ", "=")
	for _, tok := range strings.Fields(body) {
		kv := strings.SplitN(tok, "=", 2)
		if len(kv) != 2 || kv[0] == "" {
			return fmt.Errorf("netlist: malformed .PARAM token %q", tok)
		}
		expr := strings.Trim(kv[1], "{}'")
		v, err := EvalExpr(expr, p.params)
		if err != nil {
			return err
		}
		if name := strings.ToLower(kv[0]); !p.locked[name] {
			p.params[name] = v
		}
	}
	return nil
}

// parseModel handles ".MODEL name TYPE(k=v ...)" (parens optional).
func (p *parser) parseModel(fields []string) error {
	if len(fields) < 3 {
		return fmt.Errorf("netlist: malformed .MODEL: %v", strings.Join(fields, " "))
	}
	name := strings.ToLower(fields[1])
	rest := strings.Join(fields[2:], " ")
	rest = strings.NewReplacer("(", " ", ")", " ", ",", " ", "=", " = ").Replace(rest)
	toks := strings.Fields(rest)
	if len(toks) == 0 {
		return fmt.Errorf("netlist: .MODEL %s missing type", name)
	}
	kind := strings.ToLower(toks[0])
	params := make(map[string]float64)
	i := 1
	for i < len(toks) {
		key := strings.ToLower(toks[i])
		if i+2 < len(toks)+1 && i+1 < len(toks) && toks[i+1] == "=" {
			if i+2 >= len(toks) {
				return fmt.Errorf("netlist: .MODEL %s: dangling %q", name, key)
			}
			v, err := ParseValue(toks[i+2])
			if err != nil {
				return fmt.Errorf("netlist: .MODEL %s: %v", name, err)
			}
			params[key] = v
			i += 3
			continue
		}
		// Bare "level 1"-style pair.
		if i+1 < len(toks) {
			if v, err := ParseValue(toks[i+1]); err == nil {
				params[key] = v
				i += 2
				continue
			}
		}
		i++
	}
	switch kind {
	case "d", "nmos", "pmos", "npn", "pnp", "sw":
		p.models[name] = modelCard{kind: kind, params: params}
		return nil
	default:
		return fmt.Errorf("netlist: unsupported .MODEL type %q", kind)
	}
}

// node resolves a node name within an X-expansion context: port names map
// to the caller's nets; internal names get the instance prefix.
func (p *parser) node(name string, prefix string, portMap map[string]string) int {
	key := strings.ToLower(name)
	if key == "0" || key == "gnd" {
		return circuit.Ground
	}
	if portMap != nil {
		if mapped, ok := portMap[key]; ok {
			return p.deck.Circuit.Node(mapped)
		}
		return p.deck.Circuit.Node(prefix + key)
	}
	return p.deck.Circuit.Node(key)
}

// parseLine dispatches one element or directive line. prefix/portMap carry
// subcircuit expansion context ("" and nil at top level).
func (p *parser) parseLine(ln, prefix string, portMap map[string]string) error {
	fields := strings.Fields(ln)
	name := fields[0]
	kind := strings.ToLower(name[:1])
	inst := prefix + name
	nd := func(i int) int { return p.node(fields[i], prefix, portMap) }
	ckt := p.deck.Circuit

	switch kind {
	case ".":
		return p.parseDirective(fields)
	case "r", "c", "l":
		if len(fields) < 4 {
			return fmt.Errorf("netlist: %s: need 2 nodes and a value", name)
		}
		v, err := ParseValue(fields[3])
		if err != nil {
			return fmt.Errorf("netlist: %s: %v", name, err)
		}
		switch kind {
		case "r":
			if v == 0 {
				return fmt.Errorf("netlist: %s: zero resistance", name)
			}
			ckt.Add(device.NewResistor(inst, nd(1), nd(2), v))
		case "c":
			ckt.Add(device.NewCapacitor(inst, nd(1), nd(2), v))
		default:
			l := device.NewInductor(inst, nd(1), nd(2), v)
			ckt.Add(l)
			p.inducts[strings.ToLower(inst)] = l
		}
		return nil
	case "v", "i":
		if len(fields) < 4 {
			return fmt.Errorf("netlist: %s: need 2 nodes and a source spec", name)
		}
		waveFields, acMag, acPhase, err := splitACSpec(fields[3:])
		if err != nil {
			return fmt.Errorf("netlist: %s: %v", name, err)
		}
		w, err := parseWaveform(strings.Join(waveFields, " "))
		if err != nil {
			return fmt.Errorf("netlist: %s: %v", name, err)
		}
		if kind == "v" {
			src := device.NewVSource(inst, nd(1), nd(2), w)
			src.ACMag, src.ACPhase = acMag, acPhase
			ckt.Add(src)
			p.sources[strings.ToLower(inst)] = src
		} else {
			src := device.NewISource(inst, nd(1), nd(2), w)
			src.ACMag, src.ACPhase = acMag, acPhase
			ckt.Add(src)
		}
		return nil
	case "d":
		if len(fields) < 4 {
			return fmt.Errorf("netlist: %s: need 2 nodes and a model", name)
		}
		mc, ok := p.models[strings.ToLower(fields[3])]
		if !ok || mc.kind != "d" {
			return fmt.Errorf("netlist: %s: unknown diode model %q", name, fields[3])
		}
		area := 1.0
		if len(fields) >= 5 {
			a, err := ParseValue(fields[4])
			if err == nil {
				area = a
			}
		}
		ckt.Add(device.NewDiode(inst, nd(1), nd(2), diodeModel(mc.params), area))
		return nil
	case "m":
		if len(fields) < 6 {
			return fmt.Errorf("netlist: %s: need d g s b nodes and a model", name)
		}
		mc, ok := p.models[strings.ToLower(fields[5])]
		if !ok || (mc.kind != "nmos" && mc.kind != "pmos") {
			return fmt.Errorf("netlist: %s: unknown MOS model %q", name, fields[5])
		}
		w, l := 10e-6, 1e-6
		for _, f := range fields[6:] {
			kv := strings.SplitN(f, "=", 2)
			if len(kv) != 2 {
				continue
			}
			v, err := ParseValue(kv[1])
			if err != nil {
				return fmt.Errorf("netlist: %s: %v", name, err)
			}
			switch strings.ToLower(kv[0]) {
			case "w":
				w = v
			case "l":
				l = v
			}
		}
		if lv, ok := mc.params["level"]; ok && lv >= 2 {
			ckt.Add(device.NewMOSFETEKV(inst, nd(1), nd(2), nd(3), nd(4), ekvModel(mc), w, l))
		} else {
			ckt.Add(device.NewMOSFET(inst, nd(1), nd(2), nd(3), nd(4), mosModel(mc), w, l))
		}
		return nil
	case "e":
		if len(fields) < 6 {
			return fmt.Errorf("netlist: %s: need 4 nodes and a gain", name)
		}
		g, err := ParseValue(fields[5])
		if err != nil {
			return fmt.Errorf("netlist: %s: %v", name, err)
		}
		ckt.Add(device.NewVCVS(inst, nd(1), nd(2), nd(3), nd(4), g))
		return nil
	case "g":
		if len(fields) < 6 {
			return fmt.Errorf("netlist: %s: need 4 nodes and a transconductance", name)
		}
		g, err := ParseValue(fields[5])
		if err != nil {
			return fmt.Errorf("netlist: %s: %v", name, err)
		}
		ckt.Add(device.NewVCCS(inst, nd(1), nd(2), nd(3), nd(4), g))
		return nil
	case "q":
		if len(fields) < 5 {
			return fmt.Errorf("netlist: %s: need c b e nodes and a model", name)
		}
		mc, ok := p.models[strings.ToLower(fields[4])]
		if !ok || (mc.kind != "npn" && mc.kind != "pnp") {
			return fmt.Errorf("netlist: %s: unknown BJT model %q", name, fields[4])
		}
		area := 1.0
		if len(fields) >= 6 {
			if a, err := ParseValue(fields[5]); err == nil {
				area = a
			}
		}
		ckt.Add(device.NewBJT(inst, nd(1), nd(2), nd(3), bjtModel(mc), area))
		return nil
	case "s":
		if len(fields) < 6 {
			return fmt.Errorf("netlist: %s: need p n cp cn and a model", name)
		}
		mc, ok := p.models[strings.ToLower(fields[5])]
		if !ok || mc.kind != "sw" {
			return fmt.Errorf("netlist: %s: unknown switch model %q", name, fields[5])
		}
		ckt.Add(device.NewSwitch(inst, nd(1), nd(2), nd(3), nd(4), switchModel(mc)))
		return nil
	case "f", "h", "k":
		p.deferred = append(p.deferred, pendingLine{line: ln, prefix: prefix, portMap: portMap})
		return nil
	case "x":
		return p.expandSubckt(fields, prefix, portMap)
	default:
		return fmt.Errorf("netlist: unsupported element %q", name)
	}
}

// parseDeferred resolves F, H and K elements once every referenced device
// exists.
func (p *parser) parseDeferred(d pendingLine) error {
	fields := strings.Fields(d.line)
	name := fields[0]
	inst := d.prefix + name
	nd := func(i int) int { return p.node(fields[i], d.prefix, d.portMap) }
	ckt := p.deck.Circuit
	switch strings.ToLower(name[:1]) {
	case "f", "h":
		if len(fields) < 5 {
			return fmt.Errorf("netlist: %s: need 2 nodes, a V source and a gain", name)
		}
		ref := strings.ToLower(d.prefix + fields[3])
		src, ok := p.sources[ref]
		if !ok {
			// Fall back to a global (unprefixed) reference.
			src, ok = p.sources[strings.ToLower(fields[3])]
		}
		if !ok {
			return fmt.Errorf("netlist: %s: unknown controlling source %q", name, fields[3])
		}
		g, err := ParseValue(fields[4])
		if err != nil {
			return fmt.Errorf("netlist: %s: %v", name, err)
		}
		if strings.ToLower(name[:1]) == "f" {
			ckt.Add(device.NewCCCS(inst, nd(1), nd(2), src, g))
		} else {
			ckt.Add(device.NewCCVS(inst, nd(1), nd(2), src, g))
		}
		return nil
	default: // k
		if len(fields) < 4 {
			return fmt.Errorf("netlist: %s: need two inductors and a coefficient", name)
		}
		find := func(ref string) (*device.Inductor, bool) {
			if l, ok := p.inducts[strings.ToLower(d.prefix+ref)]; ok {
				return l, true
			}
			l, ok := p.inducts[strings.ToLower(ref)]
			return l, ok
		}
		l1, ok1 := find(fields[1])
		l2, ok2 := find(fields[2])
		if !ok1 || !ok2 {
			return fmt.Errorf("netlist: %s: unknown inductor reference", name)
		}
		k, err := ParseValue(fields[3])
		if err != nil {
			return fmt.Errorf("netlist: %s: %v", name, err)
		}
		ckt.Add(device.NewMutual(inst, l1, l2, k))
		return nil
	}
}

// splitACSpec separates a trailing "AC mag [phase]" specification from a
// source definition, tracking parenthesis depth so PULSE(...) arguments are
// never mistaken for it.
func splitACSpec(fields []string) (wave []string, mag, phase float64, err error) {
	depth := 0
	for i, f := range fields {
		if depth == 0 && strings.EqualFold(f, "ac") {
			rest := fields[i+1:]
			// The AC spec is "AC [mag [phase]]": consume at most two
			// numeric tokens; anything else (e.g. a following SIN(...)
			// transient spec) stays part of the waveform.
			mag = 1
			consumed := 0
			if len(rest) >= 1 {
				if v, perr := ParseValue(rest[0]); perr == nil {
					mag = v
					consumed = 1
					if len(rest) >= 2 {
						if ph, perr := ParseValue(rest[1]); perr == nil {
							phase = ph
							consumed = 2
						}
					}
				}
			}
			wave = append([]string{}, fields[:i]...)
			wave = append(wave, rest[consumed:]...)
			return wave, mag, phase, nil
		}
		depth += strings.Count(f, "(") - strings.Count(f, ")")
	}
	return fields, 0, 0, nil
}

// expandSubckt instantiates "Xname n1 n2 ... subname" by re-parsing the
// definition body with node renaming.
func (p *parser) expandSubckt(fields []string, prefix string, portMap map[string]string) error {
	if len(fields) < 2 {
		return fmt.Errorf("netlist: malformed X line")
	}
	subName := strings.ToLower(fields[len(fields)-1])
	def, ok := p.subckts[subName]
	if !ok {
		return fmt.Errorf("netlist: unknown subcircuit %q", subName)
	}
	actuals := fields[1 : len(fields)-1]
	if len(actuals) != len(def.ports) {
		return fmt.Errorf("netlist: %s: %d nodes for %d ports of %q",
			fields[0], len(actuals), len(def.ports), subName)
	}
	if p.xDepth > 20 {
		return fmt.Errorf("netlist: subcircuit nesting too deep (recursive %q?)", subName)
	}
	inner := make(map[string]string, len(def.ports))
	for i, port := range def.ports {
		// Resolve the actual net in the caller's context to a flat name.
		actual := strings.ToLower(actuals[i])
		flat := actual
		if portMap != nil {
			if mapped, ok := portMap[actual]; ok {
				flat = mapped
			} else if actual != "0" && actual != "gnd" {
				flat = prefix + actual
			}
		}
		inner[strings.ToLower(port)] = flat
	}
	newPrefix := prefix + strings.ToLower(fields[0]) + "."
	p.xDepth++
	defer func() { p.xDepth-- }()
	for _, ln := range def.lines {
		if err := p.parseLine(ln, newPrefix, inner); err != nil {
			return err
		}
	}
	return nil
}

func (p *parser) parseDirective(fields []string) error {
	switch strings.ToLower(fields[0]) {
	case ".tran":
		if len(fields) < 3 {
			return fmt.Errorf("netlist: .TRAN needs tstep and tstop")
		}
		ts, err := ParseValue(fields[1])
		if err != nil {
			return err
		}
		stop, err := ParseValue(fields[2])
		if err != nil {
			return err
		}
		spec := &TranSpec{TStep: ts, TStop: stop}
		for _, f := range fields[3:] {
			if strings.EqualFold(f, "uic") {
				spec.UIC = true
			} else if v, err := ParseValue(f); err == nil {
				spec.TMax = v
			}
		}
		p.deck.Tran = spec
		return nil
	case ".ic", ".nodeset":
		// .IC/.NODESET V(node)=value ...
		dst := p.deck.ICs
		if strings.ToLower(fields[0]) == ".nodeset" {
			dst = p.deck.NodeSets
		}
		joined := strings.Join(fields[1:], " ")
		joined = strings.ReplaceAll(joined, " =", "=")
		joined = strings.ReplaceAll(joined, "= ", "=")
		for _, tok := range strings.Fields(joined) {
			kv := strings.SplitN(tok, "=", 2)
			if len(kv) != 2 {
				return fmt.Errorf("netlist: malformed %s token %q", fields[0], tok)
			}
			key := strings.ToLower(strings.TrimSpace(kv[0]))
			if !strings.HasPrefix(key, "v(") || !strings.HasSuffix(key, ")") {
				return fmt.Errorf("netlist: %s expects V(node)=val, got %q", fields[0], tok)
			}
			node := key[2 : len(key)-1]
			v, err := ParseValue(kv[1])
			if err != nil {
				return err
			}
			dst[node] = v
		}
		return nil
	case ".options", ".option":
		for _, tok := range fields[1:] {
			kv := strings.SplitN(tok, "=", 2)
			key := strings.ToLower(kv[0])
			if len(kv) == 1 {
				p.deck.Options[key] = 1
				continue
			}
			v, err := ParseValue(kv[1])
			if err != nil {
				return fmt.Errorf("netlist: .OPTIONS %s: %v", key, err)
			}
			p.deck.Options[key] = v
		}
		return nil
	case ".ac":
		if len(fields) < 5 {
			return fmt.Errorf("netlist: .AC needs sweep, points, fstart, fstop")
		}
		sweep := strings.ToLower(fields[1])
		if sweep != "dec" && sweep != "oct" && sweep != "lin" {
			return fmt.Errorf("netlist: .AC sweep must be dec, oct or lin")
		}
		pts, err := ParseValue(fields[2])
		if err != nil {
			return err
		}
		f1, err := ParseValue(fields[3])
		if err != nil {
			return err
		}
		f2, err := ParseValue(fields[4])
		if err != nil {
			return err
		}
		p.deck.AC = &ACSpec{Sweep: sweep, Points: int(pts), FStart: f1, FStop: f2}
		return nil
	case ".dc":
		if len(fields) < 5 {
			return fmt.Errorf("netlist: .DC needs source, start, stop, step")
		}
		start, err := ParseValue(fields[2])
		if err != nil {
			return err
		}
		stop, err := ParseValue(fields[3])
		if err != nil {
			return err
		}
		step, err := ParseValue(fields[4])
		if err != nil {
			return err
		}
		p.deck.DC = &DCSpec{Source: fields[1], Start: start, Stop: stop, Step: step}
		return nil
	case ".print", ".plot", ".probe", ".save":
		// Output cards produce no simulator action, but v(node) references
		// mark nodes the user observes: record them so reduction keeps them.
		for _, f := range fields[1:] {
			low := strings.ToLower(f)
			if strings.HasPrefix(low, "v(") && strings.HasSuffix(low, ")") {
				if name := strings.TrimSpace(f[2 : len(f)-1]); name != "" {
					p.deck.Prints = append(p.deck.Prints, name)
				}
			}
		}
		return nil
	case ".op", ".temp", ".global":
		return nil // accepted and ignored
	default:
		return fmt.Errorf("netlist: unsupported directive %q", fields[0])
	}
}

// diodeModel converts a parsed parameter map to a device model card.
func diodeModel(params map[string]float64) device.DiodeModel {
	m := device.DefaultDiodeModel()
	for k, v := range params {
		switch k {
		case "is":
			m.IS = v
		case "n":
			m.N = v
		case "tt":
			m.TT = v
		case "cj0", "cjo":
			m.CJ0 = v
		case "vj":
			m.VJ = v
		case "m":
			m.M = v
		case "fc":
			m.FC = v
		}
	}
	return m
}

// bjtModel converts a parsed parameter map to a device model card.
func bjtModel(mc modelCard) device.BJTModel {
	t := device.NPN
	if mc.kind == "pnp" {
		t = device.PNP
	}
	m := device.DefaultBJTModel(t)
	for k, v := range mc.params {
		switch k {
		case "is":
			m.IS = v
		case "bf":
			m.BF = v
		case "br":
			m.BR = v
		case "nf":
			m.NF = v
		case "nr":
			m.NR = v
		case "vaf", "va":
			m.VAF = v
		case "tf":
			m.TF = v
		case "tr":
			m.TR = v
		case "cje":
			m.CJE = v
		case "vje":
			m.VJE = v
		case "mje":
			m.MJE = v
		case "cjc":
			m.CJC = v
		case "vjc":
			m.VJC = v
		case "mjc":
			m.MJC = v
		case "fc":
			m.FC = v
		}
	}
	return m
}

// switchModel converts a parsed parameter map to a device model card.
func switchModel(mc modelCard) device.SwitchModel {
	m := device.DefaultSwitchModel()
	for k, v := range mc.params {
		switch k {
		case "ron":
			m.RON = v
		case "roff":
			m.ROFF = v
		case "vt":
			m.VT = v
		case "dv", "vh":
			m.DV = v
		}
	}
	return m
}

// ekvModel converts a parsed parameter map to an EKV card (MOS level >= 2).
func ekvModel(mc modelCard) device.EKVModel {
	t := device.NMOS
	if mc.kind == "pmos" {
		t = device.PMOS
	}
	m := device.DefaultEKVModel(t)
	for k, v := range mc.params {
		switch k {
		case "vto", "vt0":
			if v < 0 {
				v = -v
			}
			m.VTO = v
		case "kp":
			m.KP = v
		case "nfactor", "n":
			m.N = v
		case "lambda":
			m.LAMBDA = v
		case "cox":
			m.COX = v
		case "cgso":
			m.CGSO = v
		case "cgdo":
			m.CGDO = v
		}
	}
	return m
}

// mosModel converts a parsed parameter map to a device model card.
func mosModel(mc modelCard) device.MOSModel {
	t := device.NMOS
	if mc.kind == "pmos" {
		t = device.PMOS
	}
	m := device.DefaultMOSModel(t)
	for k, v := range mc.params {
		switch k {
		case "vto", "vt0":
			if v < 0 {
				v = -v // store magnitude; polarity comes from the type
			}
			m.VTO = v
		case "kp":
			m.KP = v
		case "gamma":
			m.GAMMA = v
		case "phi":
			m.PHI = v
		case "lambda":
			m.LAMBDA = v
		case "cox":
			m.COX = v
		case "cgso":
			m.CGSO = v
		case "cgdo":
			m.CGDO = v
		case "cgbo":
			m.CGBO = v
		case "cbd":
			m.CBD = v
		case "cbs":
			m.CBS = v
		}
	}
	return m
}

// parseWaveform parses a source specification: "DC 5", "5", "PULSE(...)",
// "SIN(...)", "PWL(...)", "EXP(...)".
func parseWaveform(spec string) (device.Waveform, error) {
	s := strings.TrimSpace(spec)
	low := strings.ToLower(s)
	switch {
	case strings.HasPrefix(low, "dc"):
		rest := strings.Fields(strings.TrimSpace(s[2:]))
		if len(rest) == 0 {
			return nil, fmt.Errorf("DC value missing")
		}
		v, err := ParseValue(rest[0])
		if err != nil {
			return nil, err
		}
		// SPICE allows "DC v SIN(...)": the DC value seeds the operating
		// point and the function drives the transient. Our OP evaluates
		// the waveform at t = 0, so the transient function wins when both
		// are present.
		if len(rest) > 1 {
			return parseWaveform(strings.Join(rest[1:], " "))
		}
		return device.DC(v), nil
	case strings.HasPrefix(low, "pulse"):
		vals, err := parseArgs(s[5:], 7)
		if err != nil {
			return nil, fmt.Errorf("PULSE: %v", err)
		}
		return device.Pulse{V1: vals[0], V2: vals[1], Delay: vals[2],
			Rise: vals[3], Fall: vals[4], Width: vals[5], Period: vals[6]}, nil
	case strings.HasPrefix(low, "sin"):
		vals, err := parseArgs(s[3:], 5)
		if err != nil {
			return nil, fmt.Errorf("SIN: %v", err)
		}
		return device.Sin{Offset: vals[0], Amplitude: vals[1], Freq: vals[2],
			Delay: vals[3], Damping: vals[4]}, nil
	case strings.HasPrefix(low, "pwl"):
		vals, err := parseArgs(s[3:], -1)
		if err != nil {
			return nil, fmt.Errorf("PWL: %v", err)
		}
		if len(vals) < 2 || len(vals)%2 != 0 {
			return nil, fmt.Errorf("PWL: need an even number of values")
		}
		w := device.PWL{}
		for i := 0; i < len(vals); i += 2 {
			w.Times = append(w.Times, vals[i])
			w.Values = append(w.Values, vals[i+1])
		}
		return w, nil
	case strings.HasPrefix(low, "exp"):
		vals, err := parseArgs(s[3:], 6)
		if err != nil {
			return nil, fmt.Errorf("EXP: %v", err)
		}
		return device.Exp{V1: vals[0], V2: vals[1], TD1: vals[2],
			Tau1: vals[3], TD2: vals[4], Tau2: vals[5]}, nil
	default:
		v, err := ParseValue(s)
		if err != nil {
			return nil, fmt.Errorf("unrecognized source spec %q", spec)
		}
		return device.DC(v), nil
	}
}

// parseArgs parses "(a b c)" or "a b c" into want values (missing trailing
// arguments default to 0; want < 0 accepts any count).
func parseArgs(s string, want int) ([]float64, error) {
	s = strings.NewReplacer("(", " ", ")", " ", ",", " ").Replace(s)
	fields := strings.Fields(s)
	var vals []float64
	for _, f := range fields {
		v, err := ParseValue(f)
		if err != nil {
			return nil, err
		}
		vals = append(vals, v)
	}
	if want < 0 {
		return vals, nil
	}
	if len(vals) > want {
		return nil, fmt.Errorf("too many arguments: %d > %d", len(vals), want)
	}
	for len(vals) < want {
		vals = append(vals, 0)
	}
	return vals, nil
}

// ParseValue parses a SPICE number with an optional engineering suffix:
// f p n u m k meg g t (case-insensitive; "meg" before "m"). Trailing unit
// text ("5pF", "10kOhm") is ignored, as in SPICE.
func ParseValue(s string) (float64, error) {
	s = strings.TrimSpace(strings.ToLower(s))
	if s == "" {
		return 0, fmt.Errorf("empty value")
	}
	// Split mantissa from suffix.
	i := 0
	for i < len(s) {
		c := s[i]
		if (c >= '0' && c <= '9') || c == '.' || c == '+' || c == '-' {
			i++
			continue
		}
		if c == 'e' && i+1 < len(s) && (s[i+1] == '+' || s[i+1] == '-' || (s[i+1] >= '0' && s[i+1] <= '9')) {
			i += 2
			continue
		}
		break
	}
	mant, err := strconv.ParseFloat(s[:i], 64)
	if err != nil {
		return 0, fmt.Errorf("bad number %q", s)
	}
	suffix := s[i:]
	switch {
	case suffix == "":
		return mant, nil
	case strings.HasPrefix(suffix, "meg"):
		return mant * 1e6, nil
	case strings.HasPrefix(suffix, "mil"):
		return mant * 25.4e-6, nil
	case suffix[0] == 'f':
		return mant * 1e-15, nil
	case suffix[0] == 'p':
		return mant * 1e-12, nil
	case suffix[0] == 'n':
		return mant * 1e-9, nil
	case suffix[0] == 'u':
		return mant * 1e-6, nil
	case suffix[0] == 'm':
		return mant * 1e-3, nil
	case suffix[0] == 'k':
		return mant * 1e3, nil
	case suffix[0] == 'g':
		return mant * 1e9, nil
	case suffix[0] == 't':
		return mant * 1e12, nil
	default:
		// Unit text like "5v", "3a", "2ohm".
		return mant, nil
	}
}

// FormatValue renders a value with an engineering suffix, the inverse of
// ParseValue for round-trip deck writing.
func FormatValue(v float64) string {
	abs := v
	if abs < 0 {
		abs = -abs
	}
	switch {
	case v == 0:
		return "0"
	case abs >= 1e12:
		return trim(v/1e12) + "t"
	case abs >= 1e9:
		return trim(v/1e9) + "g"
	case abs >= 1e6:
		return trim(v/1e6) + "meg"
	case abs >= 1e3:
		return trim(v/1e3) + "k"
	case abs >= 1:
		return trim(v)
	case abs >= 1e-3:
		return trim(v*1e3) + "m"
	case abs >= 1e-6:
		return trim(v*1e6) + "u"
	case abs >= 1e-9:
		return trim(v*1e9) + "n"
	case abs >= 1e-12:
		return trim(v*1e12) + "p"
	default:
		return trim(v*1e15) + "f"
	}
}

func trim(v float64) string {
	// Shortest representation that parses back to the same float64:
	// decks round-trip losslessly.
	return strconv.FormatFloat(v, 'g', -1, 64)
}
