package wavepipe

// Public-API robustness test: fault injection, the typed error taxonomy and
// the recovery log must all be reachable through the facade.

import (
	"errors"
	"math"
	"testing"
)

func faultTestSystem(t *testing.T) *System {
	t.Helper()
	c := NewCircuit("rc")
	in := c.Node("in")
	out := c.Node("out")
	AddVSource(c, "V1", in, Ground, Pulse{V1: 0, V2: 1, Rise: 1e-12, Width: 1})
	AddResistor(c, "R1", in, out, 1e3)
	AddCapacitor(c, "C1", out, Ground, 1e-7)
	sys, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// A faulted run through the facade must recover via the ladder, log the
// events, and still produce the right waveform.
func TestFacadeFaultInjectionAndRecovery(t *testing.T) {
	in := NewFaultInjector(FaultRule{
		Class: FaultNoConvergence, After: 1e-16, Count: 7, SpareFrom: 1, // spare from the damping rung up
	})
	res, err := RunTransient(faultTestSystem(t), TranOptions{TStop: 1e-3, Faults: in})
	if err != nil {
		t.Fatalf("faulted run did not recover: %v", err)
	}
	if in.Fired() == 0 {
		t.Fatal("fault rule never fired")
	}
	if res.Stats.Recoveries == 0 || res.Recovery.Len() == 0 {
		t.Fatalf("no recovery recorded: stats=%+v events=%+v", res.Stats, res.Recovery.Events())
	}
	got, err := res.W.At("out", 3e-4)
	if err != nil {
		t.Fatal(err)
	}
	if want := 1 - math.Exp(-3e-4/1e-4); math.Abs(got-want) > 0.02 {
		t.Fatalf("out(3e-4) = %g, want %g", got, want)
	}
}

// An unrecoverable run must surface the taxonomy through the facade's
// re-exported sentinels and return the partial result.
func TestFacadeTypedFailure(t *testing.T) {
	in := NewFaultInjector(FaultRule{
		Class: FaultNoConvergence, After: 1e-16, Count: 1_000_000,
	})
	res, err := RunTransient(faultTestSystem(t), TranOptions{TStop: 1e-3, Faults: in})
	if err == nil {
		t.Fatal("run succeeded with every solve defeated")
	}
	if !errors.Is(err, ErrStepTooSmall) || !errors.Is(err, ErrNoConvergence) {
		t.Fatalf("err = %v, want ErrStepTooSmall wrapping ErrNoConvergence", err)
	}
	var se *SimError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want a SimError", err)
	}
	if res == nil || res.W == nil || res.W.Len() == 0 {
		t.Fatal("partial result missing")
	}
}
