package wavepipe

// Facade-level contracts of the parasitic-reduction pass (-reduce):
// suite-wide waveform equivalence against unreduced runs, exact-mode
// bit-identity, probe protection through deck .PRINT cards, and clean
// composition with the ensemble and time-parallel window layers.

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"wavepipe/internal/circuits"
)

// reduceLadderDeck renders a parameterised RC ladder netlist. The .PARAM
// card lets ensemble lanes perturb every segment resistor at once while
// keeping the lanes structurally identical.
func reduceLadderDeck(segments int) string {
	var b strings.Builder
	b.WriteString("* param rc ladder\n.param rval=10\n")
	b.WriteString("V1 in 0 PULSE(0 1 0.5n 0.5n 0.5n 4n 10n)\n")
	prev := "in"
	for i := 1; i <= segments; i++ {
		nd := fmt.Sprintf("n%d", i)
		fmt.Fprintf(&b, "R%d %s %s {rval}\nC%d %s 0 20f\n", i, prev, nd, i, nd)
		prev = nd
	}
	fmt.Fprintf(&b, "Rout %s out 10\nCout out 0 50f\n", prev)
	b.WriteString(".tran 0.05n 20n\n.end\n")
	return b.String()
}

// TestReduceSuiteWaveformEquivalence runs every evaluation circuit with the
// reduction pass off and on at the default tolerance. The probed node must
// agree within the documented external-node budget, and the Stats counters
// must reconcile 1:1 with the size of the system actually simulated.
func TestReduceSuiteWaveformEquivalence(t *testing.T) {
	for _, b := range circuits.Suite() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			sys, err := b.Make().Build()
			if err != nil {
				t.Fatal(err)
			}
			opts := TranOptions{TStop: b.TStop / 5, Record: []string{b.Probe}}
			ref, err := RunTransient(sys, opts)
			if err != nil {
				t.Fatal(err)
			}
			ron := opts
			ron.Reduce = true
			ron.ReduceTol = DefaultReduceTol
			res, err := RunTransient(sys, ron)
			if err != nil {
				t.Fatal(err)
			}
			dev, err := Compare(res.W, ref.W, b.Probe)
			if err != nil {
				t.Fatal(err)
			}
			if m := dev.RelMax(); m >= 0.05 {
				t.Fatalf("probe %s deviates by %g with reduction on, budget 0.05", b.Probe, m)
			}
			if res.Stats.ReducedNodes < 0 || res.Stats.ReducedNodes >= int64(sys.NumNodes) {
				t.Fatalf("ReducedNodes = %d out of range for a %d-node system",
					res.Stats.ReducedNodes, sys.NumNodes)
			}
			if (res.Stats.ReducedNodes == 0) != (res.Stats.ReducedDevices == 0) {
				t.Fatalf("counter mismatch: nodes %d, devices %d",
					res.Stats.ReducedNodes, res.Stats.ReducedDevices)
			}
		})
	}
}

// TestReduceSuiteExactModeBitIdentity: in exact mode (ReduceTol = 0) the
// pass performs only provably exact rewrites, and on circuits where nothing
// is eligible it must hand the engine the very same system — the waveforms
// are bit-identical, not merely close. Every stock circuit either probes or
// capacitively loads its chain interiors, so the whole suite lands in the
// no-op regime; the test asserts that, making any future regression in the
// eligibility rules loud.
func TestReduceSuiteExactModeBitIdentity(t *testing.T) {
	for _, b := range circuits.Suite() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			sys, err := b.Make().Build()
			if err != nil {
				t.Fatal(err)
			}
			opts := TranOptions{TStop: b.TStop / 5, Record: []string{b.Probe}}
			ref, err := RunTransient(sys, opts)
			if err != nil {
				t.Fatal(err)
			}
			exact := opts
			exact.Reduce = true
			exact.ReduceTol = 0
			res, err := RunTransient(sys, exact)
			if err != nil {
				t.Fatal(err)
			}
			if res.Stats.ReducedNodes != 0 || res.Stats.ReducedDevices != 0 {
				t.Fatalf("exact mode reduced a stock circuit: nodes %d, devices %d",
					res.Stats.ReducedNodes, res.Stats.ReducedDevices)
			}
			sameWaveform(t, "exact-mode vs off", res, ref)
		})
	}
}

// TestReducePrintNodesProtected: a deck's .PRINT/.PLOT/.PROBE cards name
// nodes the user wants to see; ApplyTo folds them into ReduceKeep so the
// pass can never collapse them, and the full-record waveform still carries
// every original node by way of the expansion map.
func TestReducePrintNodesProtected(t *testing.T) {
	src := strings.Replace(reduceLadderDeck(30), ".end", ".print tran v(n15)\n.end", 1)
	d, err := ParseDeck(src)
	if err != nil {
		t.Fatal(err)
	}
	opts, err := d.ApplyTo(TranOptions{Reduce: true, ReduceTol: DefaultReduceTol})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, k := range opts.ReduceKeep {
		if strings.EqualFold(k, "n15") {
			found = true
		}
	}
	if !found {
		t.Fatalf("ApplyTo did not fold the .print node into ReduceKeep: %v", opts.ReduceKeep)
	}
	res, err := RunDeck(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ReducedNodes == 0 {
		t.Fatal("ladder deck was not reduced at all")
	}
	// Default record + expansion: every original node is reported, the
	// printed one included.
	for _, name := range []string{"n15", "n7", "out"} {
		if _, err := res.W.Signal(name); err != nil {
			t.Fatalf("node %s missing from the expanded waveform: %v", name, err)
		}
	}
}

// TestReduceUnknownKeepNodeFacade: asking to keep a node the circuit does
// not have is a user error and must fail the run with the typed error, not
// silently reduce around the typo.
func TestReduceUnknownKeepNodeFacade(t *testing.T) {
	d, err := ParseDeck(reduceLadderDeck(10))
	if err != nil {
		t.Fatal(err)
	}
	sys, err := d.Build()
	if err != nil {
		t.Fatal(err)
	}
	_, err = RunTransient(sys, TranOptions{TStop: 1e-9, Reduce: true, ReduceKeep: []string{"ghost"}})
	var une *ReduceUnknownNodeError
	if !errors.As(err, &une) {
		t.Fatalf("err = %v, want *ReduceUnknownNodeError", err)
	}
	if une.Node != "ghost" {
		t.Fatalf("error names node %q, want ghost", une.Node)
	}
}

// TestReduceUnderEnsemble: the ensemble layer plans the reduction once on
// the reference lane and applies it to every variant, so lanes stay
// structurally identical. Each lane must match its own serial unreduced
// run within the error budget, carry the reduction counters, and leave no
// goroutines behind.
func TestReduceUnderEnsemble(t *testing.T) {
	before := runtime.NumGoroutine()
	src := reduceLadderDeck(30)
	d, err := ParseDeck(src)
	if err != nil {
		t.Fatal(err)
	}
	variants := []LaneSpec{
		{Name: "nominal"},
		{Name: "slow", Params: map[string]float64{"rval": 25}},
	}
	res, err := RunEnsemble(d, variants, TranOptions{Reduce: true, ReduceTol: DefaultReduceTol})
	if err != nil {
		t.Fatal(err)
	}
	for i, spec := range variants {
		lr := res.Lanes[i]
		if lr.Err != nil {
			t.Fatalf("lane %q failed: %v", lr.Name, lr.Err)
		}
		if lr.Res.Stats.ReducedNodes == 0 {
			t.Fatalf("lane %q carries no reduction counters", lr.Name)
		}
		// Serial unreduced reference for this variant.
		ssrc := src
		if v, ok := spec.Params["rval"]; ok {
			ssrc = strings.Replace(ssrc, "rval=10", fmt.Sprintf("rval=%g", v), 1)
		}
		sd, err := ParseDeck(ssrc)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := RunDeck(sd, TranOptions{})
		if err != nil {
			t.Fatal(err)
		}
		dev, err := Compare(lr.Res.W, ref.W, "out")
		if err != nil {
			t.Fatal(err)
		}
		if m := dev.RelMax(); m >= 0.05 {
			t.Fatalf("lane %q deviates by %g from its serial reference", lr.Name, m)
		}
		// Expansion restored the suppressed interiors on the default record.
		if _, err := lr.Res.W.Signal("n15"); err != nil {
			t.Fatalf("lane %q lost interior node n15: %v", lr.Name, err)
		}
	}
	waitForGoroutines(t, before, "ensemble reduction")
}

// TestReduceUnderWindows: time-parallel windows run on the reduced system —
// the reduction happens once up front, every window solves the small MNA
// system, and the final waveform is expanded and stays within budget.
func TestReduceUnderWindows(t *testing.T) {
	before := runtime.NumGoroutine()
	d, err := ParseDeck(reduceLadderDeck(30))
	if err != nil {
		t.Fatal(err)
	}
	sys, err := d.Build()
	if err != nil {
		t.Fatal(err)
	}
	base := TranOptions{TStop: 20e-9, Record: []string{"out"}}
	ref, err := RunTransient(sys, base)
	if err != nil {
		t.Fatal(err)
	}
	won := base
	won.Windows = 4
	won.Reduce = true
	won.ReduceTol = DefaultReduceTol
	res, err := RunTransient(sys, won)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ReducedNodes == 0 {
		t.Fatal("windowed run carries no reduction counters")
	}
	if res.Stats.WindowsLaunched == 0 {
		t.Fatal("windowed run launched no windows")
	}
	dev, err := Compare(res.W, ref.W, "out")
	if err != nil {
		t.Fatal(err)
	}
	if m := dev.RelMax(); m >= 0.05 {
		t.Fatalf("windowed reduced run deviates by %g, budget 0.05", m)
	}
	waitForGoroutines(t, before, "windowed reduction")
}

// waitForGoroutines gives background machinery a grace period to wind down
// and then fails if the run leaked goroutines.
func waitForGoroutines(t *testing.T, before int, tag string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Fatalf("%s: goroutine leak: %d before, %d after", tag, before, now)
	}
}
