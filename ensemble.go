package wavepipe

import (
	"context"
	"fmt"
	"strings"

	"wavepipe/internal/circuit"
	"wavepipe/internal/device"
	"wavepipe/internal/ensemble"
	"wavepipe/internal/netlist"
	"wavepipe/internal/reduce"
	"wavepipe/internal/trace"
)

// LaneSpec describes one member of a batched ensemble run: a named
// parameter-variant of the base deck. The variant circuit is produced by
// re-elaborating the deck source with Params overriding .PARAM values, then
// applying Devices overrides to individual instances.
type LaneSpec struct {
	// Name labels the lane in results (default "laneN").
	Name string
	// Params overrides netlist .PARAM values (case-insensitive names) for
	// this lane before re-elaboration. Unknown names are an error.
	Params map[string]float64
	// Devices overrides the principal value of individual instances by
	// case-insensitive instance name: resistance, capacitance, inductance,
	// or a DC source level. The named device must support single-value
	// perturbation (R, C, L, V, I).
	Devices map[string]float64
}

// EnsembleLane is one lane's outcome: the lane name, its (possibly
// partial) transient result, and the error that retired it, nil when the
// lane reached TStop.
type EnsembleLane = ensemble.LaneResult

// EnsembleResult is the outcome of a batched ensemble run: per-lane
// results plus aggregate statistics. Stats.CriticalNanos models the gang's
// critical path — the wall time a machine with Threads free cores would
// need — while the per-lane Stats sum the usual work counters.
type EnsembleResult = ensemble.Result

// RunEnsemble runs K parameter-variants of one deck in lockstep over a
// struct-of-arrays workspace: the Jacobian pattern, fill-reducing
// ordering, conflict coloring and LU level schedules are computed once and
// shared by every lane, and device evaluation iterates the models once per
// batched Newton iteration, stamping all lanes' adjacent value blocks.
//
// Step control stays independent per lane, so each lane's waveform is
// bit-identical to its own serial RunTransient. Lanes that finish, fault
// or exhaust the recovery ladder retire without stalling the rest.
//
// Options follow RunTransient semantics with Threads as the gang width;
// Scheme must be Serial (lanes are whole-waveform units — the WavePipe
// schemes parallelize inside one waveform and do not compose with lane
// batching), and durability, bypass and fault options are not supported.
//
// Deprecated: new code should call RunEnsembleCtx — the context-first core
// every facade entry point now funnels through. This wrapper is kept so
// existing callers keep compiling.
func RunEnsemble(d *Deck, variants []LaneSpec, opts TranOptions) (*EnsembleResult, error) {
	return RunEnsembleCtx(context.Background(), d, variants, opts)
}

// RunEnsembleCtx is RunEnsemble under a context: cancellation retires
// every active lane with a partial result at the next round boundary.
func RunEnsembleCtx(ctx context.Context, d *Deck, variants []LaneSpec, opts TranOptions) (*EnsembleResult, error) {
	if len(variants) == 0 {
		return nil, fmt.Errorf("wavepipe: ensemble needs at least one lane")
	}
	if d.nl().Src == "" {
		return nil, fmt.Errorf("wavepipe: ensemble requires a deck parsed from source (ParseDeck); use RunEnsembleCircuits for programmatic circuits")
	}
	opts, err := d.ApplyTo(opts)
	if err != nil {
		return nil, err
	}
	lanes := make([]ensemble.Lane, len(variants))
	for i, spec := range variants {
		if err := checkParams(d.nl(), spec.Params); err != nil {
			return nil, fmt.Errorf("wavepipe: lane %q: %w", laneName(spec.Name, i), err)
		}
		ld, err := netlist.ParseParams(d.nl().Src, spec.Params)
		if err != nil {
			return nil, fmt.Errorf("wavepipe: lane %q: %w", laneName(spec.Name, i), err)
		}
		if err := applyDeviceOverrides(ld.Circuit, spec.Devices); err != nil {
			return nil, fmt.Errorf("wavepipe: lane %q: %w", laneName(spec.Name, i), err)
		}
		lanes[i] = ensemble.Lane{Name: laneName(spec.Name, i), Circ: ld.Circuit}
	}
	// Per-lane device overrides must survive reduction untouched: merging
	// an overridden instance into a lumped equivalent would silently drop
	// the perturbation, so its terminals are pinned for every lane.
	var keepDevices []string
	for _, spec := range variants {
		for name := range spec.Devices {
			keepDevices = append(keepDevices, name)
		}
	}
	// The host system supplies the shared symbolic analysis; build it from
	// lane 0 so its pattern reflects the elaborated variant devices.
	sys, err := lanes[0].Circ.Build()
	if err != nil {
		return nil, err
	}
	return runEnsemble(ctx, sys, lanes, opts, keepDevices)
}

// RunEnsembleCircuits is RunEnsemble over programmatically built variant
// circuits. All circuits must be structurally identical — same node names
// in order, same device sequence and arity — differing only in parameter
// values. Lane names come from the circuit titles.
func RunEnsembleCircuits(circs []*Circuit, opts TranOptions) (*EnsembleResult, error) {
	return RunEnsembleCircuitsCtx(context.Background(), circs, opts)
}

// RunEnsembleCircuitsCtx is RunEnsembleCircuits under a context.
func RunEnsembleCircuitsCtx(ctx context.Context, circs []*Circuit, opts TranOptions) (*EnsembleResult, error) {
	if len(circs) == 0 {
		return nil, fmt.Errorf("wavepipe: ensemble needs at least one lane")
	}
	lanes := make([]ensemble.Lane, len(circs))
	for i, c := range circs {
		if c == nil {
			return nil, fmt.Errorf("wavepipe: ensemble lane %d is nil", i)
		}
		lanes[i] = ensemble.Lane{Name: laneName(c.Title, i), Circ: c}
	}
	sys, err := circs[0].Build()
	if err != nil {
		return nil, err
	}
	return runEnsemble(ctx, sys, lanes, opts, nil)
}

// runEnsemble translates facade options and dispatches the batch engine.
func runEnsemble(ctx context.Context, sys *System, lanes []ensemble.Lane, opts TranOptions, keepDevices []string) (*EnsembleResult, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	switch {
	case opts.Scheme != Serial:
		return nil, fmt.Errorf("wavepipe: ensemble lanes are whole-waveform units; Scheme must be Serial (got %v)", opts.Scheme)
	case opts.BypassTol != 0 || opts.DeviceBypass:
		return nil, fmt.Errorf("wavepipe: bypass options are not supported inside ensemble lanes")
	case opts.CheckpointPath != "" || opts.ResumeFrom != "":
		return nil, fmt.Errorf("wavepipe: checkpoint/resume is not supported for ensemble runs")
	case opts.Deadline > 0 || opts.StallFactor > 0:
		return nil, fmt.Errorf("wavepipe: deadline/stall watchdogs are not supported for ensemble runs")
	case opts.Faults != nil:
		return nil, fmt.Errorf("wavepipe: run-wide fault injection is not supported for ensemble runs (faults are per-lane)")
	case opts.Windows > 1:
		return nil, fmt.Errorf("wavepipe: time-parallel windows are not supported inside ensemble lanes (run lanes or windows, not both)")
	}
	sys, infos, err := reduceEnsemble(sys, lanes, opts, keepDevices)
	if err != nil {
		return nil, err
	}
	base, err := baseOptions(sys, opts)
	if err != nil {
		return nil, err
	}
	base.Ctx = ctx
	base.LoadMode = 0
	base.CoreBudget = 0
	res, err := ensemble.Run(sys, lanes, ensemble.Options{
		Base:    base,
		Workers: opts.Threads,
		Trace:   trace.New(opts.Observer, opts.SnapshotEvery),
	})
	if res != nil && infos != nil {
		for i := range res.Lanes {
			lr := &res.Lanes[i]
			if i >= len(infos) || infos[i] == nil || lr.Res == nil {
				continue
			}
			lr.Res.Stats.ReducedNodes = int64(infos[i].RemovedNodes)
			lr.Res.Stats.ReducedDevices = int64(infos[i].RemovedDevices)
			if opts.Record == nil && lr.Res.W != nil {
				lr.Res.W = expandSet(infos[i], lr.Res.W)
			}
		}
		res.Stats.ReducedNodes = int64(infos[0].RemovedNodes)
		res.Stats.ReducedDevices = int64(infos[0].RemovedDevices)
	}
	return res, err
}

// reduceEnsemble applies one shared reduction plan to every lane. The plan
// is computed from lane 0 and contains only value-independent structural
// decisions, so applying it lane-by-lane keeps the variants structurally
// identical — the invariant the struct-of-arrays batch engine binds lanes
// under. Per-lane Apply recomputes merged and lumped values from each
// lane's own parameters, and the per-lane expansion records are returned
// for waveform reconstruction.
func reduceEnsemble(sys *System, lanes []ensemble.Lane, opts TranOptions, keepDevices []string) (*System, []*circuit.ReducedInfo, error) {
	if !opts.Reduce || sys.Reduction() != nil {
		return sys, nil, nil
	}
	plan, err := reduce.New(lanes[0].Circ, reduce.Options{
		Tol:         opts.ReduceTol,
		Keep:        reduceKeepList(opts),
		KeepDevices: keepDevices,
	})
	if err != nil {
		return nil, nil, err
	}
	if plan.Empty() {
		return sys, nil, nil
	}
	infos := make([]*circuit.ReducedInfo, len(lanes))
	for i := range lanes {
		rc, ri, aerr := plan.Apply(lanes[i].Circ)
		if aerr != nil {
			return nil, nil, fmt.Errorf("wavepipe: ensemble lane %q: %w", lanes[i].Name, aerr)
		}
		lanes[i].Circ = rc
		infos[i] = ri
	}
	rsys, err := lanes[0].Circ.Build()
	if err != nil {
		return nil, nil, fmt.Errorf("wavepipe: reduced ensemble circuit failed to build: %w", err)
	}
	rsys.SetReduction(infos[0])
	return rsys, infos, nil
}

// laneName applies the "laneN" default.
func laneName(name string, i int) string {
	if name != "" {
		return name
	}
	return fmt.Sprintf("lane%d", i)
}

// checkParams rejects overrides naming parameters the deck never defines —
// a silently ignored misspelling would run the nominal circuit K times.
func checkParams(d *netlist.Deck, over map[string]float64) error {
	for name := range over {
		if _, ok := d.Params[strings.ToLower(name)]; !ok {
			return fmt.Errorf("parameter %q is not defined by the deck", name)
		}
	}
	return nil
}

// applyDeviceOverrides perturbs named instances in the variant circuit.
func applyDeviceOverrides(c *Circuit, over map[string]float64) error {
	if len(over) == 0 {
		return nil
	}
	for name, v := range over {
		found := false
		for _, dev := range c.Devices() {
			if !strings.EqualFold(dev.Name(), name) {
				continue
			}
			sv, ok := dev.(device.SingleValued)
			if !ok {
				return fmt.Errorf("device %q (%T) does not support single-value overrides", name, dev)
			}
			sv.SetValue(v)
			found = true
			break
		}
		if !found {
			return fmt.Errorf("device %q not found in circuit", name)
		}
	}
	return nil
}
