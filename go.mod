module wavepipe

go 1.22
