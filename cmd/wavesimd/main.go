// Command wavesimd runs the wavepipe simulation service: a long-running
// HTTP daemon that accepts SPICE decks as jobs, multiplexes concurrent
// simulations over one global core budget (priorities, fair share,
// preemption via checkpoint/resume), reuses compiled artifacts across
// repeat decks, and streams waveform rows as they are accepted.
//
// Endpoints (versioned wire JSON; see wavepipe/wire):
//
//	POST   /v1/jobs             submit {schemaVersion, deck, options?, priority?, label?}
//	GET    /v1/jobs/{id}        job status
//	GET    /v1/jobs/{id}/result block until terminal, full result
//	GET    /v1/jobs/{id}/stream NDJSON live waveform rows
//	DELETE /v1/jobs/{id}        cancel
//	GET    /metrics             Prometheus text
//
// Exit codes: 0 clean shutdown (SIGINT/SIGTERM), 1 startup or serve error,
// 2 flag usage.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"wavepipe"
	"wavepipe/internal/server"
)

func main() {
	addr := flag.String("addr", ":8380", "listen address")
	cores := flag.Int("cores", 0, "global core budget shared by all jobs (0 = GOMAXPROCS)")
	maxQueued := flag.Int("max-queued", 64, "admission queue bound; beyond it submissions get 429")
	cacheSize := flag.Int("cache", 16, "compiled-artifact cache size in decks")
	dir := flag.String("dir", "", "job state directory: checkpoints, traces (default: temp dir)")
	traceJobs := flag.Bool("trace-jobs", false, "write per-job JSONL traces into -dir")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "wavesimd: unexpected arguments %v\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}

	svc, err := wavepipe.NewService(wavepipe.ServiceConfig{
		Cores:     *cores,
		MaxQueued: *maxQueued,
		CacheSize: *cacheSize,
		Dir:       *dir,
		TraceJobs: *traceJobs,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "wavesimd: %v\n", err)
		os.Exit(1)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.New(server.Config{Client: svc, Metrics: svc.WritePrometheus}),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	fmt.Fprintf(os.Stderr, "wavesimd: listening on %s\n", *addr)

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "wavesimd: %v\n", err)
			svc.Close()
			os.Exit(1)
		}
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "wavesimd: %v, shutting down\n", sig)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = srv.Shutdown(ctx)
	svc.Close()
}
