package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeDeck(t *testing.T, body string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "deck.sp")
	if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

const simDeck = `wavesim test deck
V1 in 0 DC 0 AC 1 SIN(0 1 100k)
R1 in out 1k
C1 out 0 1n
.ac dec 5 1k 10meg
.dc V1 0 1 0.5
.tran 0.1u 30u
.end
`

func runToFile(t *testing.T, analysis, scheme, deckPath string) string {
	t.Helper()
	out := filepath.Join(t.TempDir(), "out.csv")
	if err := run(deckPath, analysis, scheme, "gear2", "", "out", out, "", "auto", 2, 0, false); err != nil {
		t.Fatalf("%s/%s: %v", analysis, scheme, err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestRunTransientAllSchemes(t *testing.T) {
	deck := writeDeck(t, simDeck)
	for _, scheme := range []string{"serial", "backward", "forward", "combined", "finegrain"} {
		csv := runToFile(t, "tran", scheme, deck)
		lines := strings.Split(strings.TrimSpace(csv), "\n")
		if lines[0] != "time,out" {
			t.Fatalf("%s: header %q", scheme, lines[0])
		}
		if len(lines) < 50 {
			t.Fatalf("%s: only %d rows", scheme, len(lines))
		}
	}
}

func TestRunACAndDC(t *testing.T) {
	deck := writeDeck(t, simDeck)
	csv := runToFile(t, "ac", "serial", deck)
	if !strings.HasPrefix(csv, "freq,out_db,out_deg") {
		t.Fatalf("ac header: %q", strings.SplitN(csv, "\n", 2)[0])
	}
	csv = runToFile(t, "dc", "serial", deck)
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if lines[0] != "time,out" || len(lines) != 4 {
		t.Fatalf("dc output: %v", lines)
	}
}

func TestRunErrors(t *testing.T) {
	deck := writeDeck(t, simDeck)
	if err := run(deck, "tran", "bogus", "gear2", "", "", "", "", "auto", 0, 0, false); err == nil {
		t.Fatal("bad scheme must fail")
	}
	if err := run(deck, "bogus", "serial", "gear2", "", "", "", "", "auto", 0, 0, false); err == nil {
		t.Fatal("bad analysis must fail")
	}
	if err := run(deck, "tran", "serial", "bogus", "", "", "", "", "auto", 0, 0, false); err == nil {
		t.Fatal("bad method must fail")
	}
	if err := run(deck, "tran", "serial", "gear2", "zz", "", "", "", "auto", 0, 0, false); err == nil {
		t.Fatal("bad tstop must fail")
	}
	if err := run(deck, "tran", "serial", "gear2", "", "", "", "zz", "auto", 0, 0, false); err == nil {
		t.Fatal("bad interval must fail")
	}
	if err := run("/nonexistent.sp", "tran", "serial", "gear2", "", "", "", "", "auto", 0, 0, false); err == nil {
		t.Fatal("missing deck must fail")
	}
}

func TestResampledOutput(t *testing.T) {
	deck := writeDeck(t, simDeck)
	out := filepath.Join(t.TempDir(), "o.csv")
	if err := run(deck, "tran", "serial", "gear2", "10u", "out", out, "1u", "auto", 0, 0, false); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(out)
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 12 { // header + t=0,1u,...,10u inclusive
		t.Fatalf("resampled rows = %d", len(lines))
	}
	if !strings.HasPrefix(lines[2], "1e-06,") {
		t.Fatalf("row 2 = %q", lines[2])
	}
}

func TestTstopOverrideAndMethods(t *testing.T) {
	deck := writeDeck(t, simDeck)
	out := filepath.Join(t.TempDir(), "o.csv")
	for _, method := range []string{"gear2", "trap", "be"} {
		if err := run(deck, "tran", "serial", method, "5u", "out", out, "", "auto", 0, 0, true); err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		data, _ := os.ReadFile(out)
		lines := strings.Split(strings.TrimSpace(string(data)), "\n")
		last := strings.SplitN(lines[len(lines)-1], ",", 2)[0]
		if !strings.HasPrefix(last, "5e-06") && !strings.HasPrefix(last, "4.99") {
			t.Fatalf("%s: tstop override not honoured, last t=%s", method, last)
		}
	}
}
