package main

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"wavepipe"
)

func writeDeck(t *testing.T, body string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "deck.sp")
	if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

const simDeck = `wavesim test deck
V1 in 0 DC 0 AC 1 SIN(0 1 100k)
R1 in out 1k
C1 out 0 1n
.ac dec 5 1k 10meg
.dc V1 0 1 0.5
.tran 0.1u 30u
.end
`

func runCfg(t *testing.T, cfg runConfig) error {
	t.Helper()
	return run(context.Background(), cfg)
}

func runToFile(t *testing.T, analysis, scheme, deckPath string) string {
	t.Helper()
	out := filepath.Join(t.TempDir(), "out.csv")
	err := runCfg(t, runConfig{
		deckPath: deckPath, analysis: analysis, scheme: scheme,
		method: "gear2", probes: "out", outPath: out, loadMode: "auto", threads: 2,
	})
	if err != nil {
		t.Fatalf("%s/%s: %v", analysis, scheme, err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestRunTransientAllSchemes(t *testing.T) {
	deck := writeDeck(t, simDeck)
	for _, scheme := range []string{"serial", "backward", "forward", "combined", "finegrain"} {
		csv := runToFile(t, "tran", scheme, deck)
		lines := strings.Split(strings.TrimSpace(csv), "\n")
		if lines[0] != "time,out" {
			t.Fatalf("%s: header %q", scheme, lines[0])
		}
		if len(lines) < 50 {
			t.Fatalf("%s: only %d rows", scheme, len(lines))
		}
	}
}

func TestRunACAndDC(t *testing.T) {
	deck := writeDeck(t, simDeck)
	csv := runToFile(t, "ac", "serial", deck)
	if !strings.HasPrefix(csv, "freq,out_db,out_deg") {
		t.Fatalf("ac header: %q", strings.SplitN(csv, "\n", 2)[0])
	}
	csv = runToFile(t, "dc", "serial", deck)
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if lines[0] != "time,out" || len(lines) != 4 {
		t.Fatalf("dc output: %v", lines)
	}
}

func TestRunErrors(t *testing.T) {
	deck := writeDeck(t, simDeck)
	base := runConfig{deckPath: deck, analysis: "tran", scheme: "serial", method: "gear2", loadMode: "auto"}
	cases := []struct {
		name string
		mut  func(*runConfig)
	}{
		{"bad scheme", func(c *runConfig) { c.scheme = "bogus" }},
		{"bad analysis", func(c *runConfig) { c.analysis = "bogus" }},
		{"bad method", func(c *runConfig) { c.method = "bogus" }},
		{"bad tstop", func(c *runConfig) { c.tstop = "zz" }},
		{"bad interval", func(c *runConfig) { c.interval = "zz" }},
		{"bad loadmode", func(c *runConfig) { c.loadMode = "bogus" }},
		{"missing deck", func(c *runConfig) { c.deckPath = "/nonexistent.sp" }},
	}
	for _, tc := range cases {
		cfg := base
		tc.mut(&cfg)
		if cfg.outPath == "" {
			cfg.outPath = filepath.Join(t.TempDir(), "out.csv")
		}
		if err := runCfg(t, cfg); err == nil {
			t.Fatalf("%s must fail", tc.name)
		}
	}
}

func TestResampledOutput(t *testing.T) {
	deck := writeDeck(t, simDeck)
	out := filepath.Join(t.TempDir(), "o.csv")
	err := runCfg(t, runConfig{
		deckPath: deck, analysis: "tran", scheme: "serial", method: "gear2",
		tstop: "10u", probes: "out", outPath: out, interval: "1u", loadMode: "auto",
	})
	if err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(out)
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 12 { // header + t=0,1u,...,10u inclusive
		t.Fatalf("resampled rows = %d", len(lines))
	}
	if !strings.HasPrefix(lines[2], "1e-06,") {
		t.Fatalf("row 2 = %q", lines[2])
	}
}

func TestTstopOverrideAndMethods(t *testing.T) {
	deck := writeDeck(t, simDeck)
	out := filepath.Join(t.TempDir(), "o.csv")
	for _, method := range []string{"gear2", "trap", "be"} {
		err := runCfg(t, runConfig{
			deckPath: deck, analysis: "tran", scheme: "serial", method: method,
			tstop: "5u", probes: "out", outPath: out, loadMode: "auto", stats: true,
		})
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		data, _ := os.ReadFile(out)
		lines := strings.Split(strings.TrimSpace(string(data)), "\n")
		last := strings.SplitN(lines[len(lines)-1], ",", 2)[0]
		if !strings.HasPrefix(last, "5e-06") && !strings.HasPrefix(last, "4.99") {
			t.Fatalf("%s: tstop override not honoured, last t=%s", method, last)
		}
	}
}

// TestCanceledRun checks the cancellation plumbing end to end at the CLI
// layer: a canceled context surfaces as ErrCanceled (exit code 8), and the
// partial waveform and trace are still written.
func TestCanceledRun(t *testing.T) {
	deck := writeDeck(t, simDeck)
	dir := t.TempDir()
	out := filepath.Join(dir, "out.csv")
	trace := filepath.Join(dir, "run.jsonl")
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // canceled before the first time point
	err := run(ctx, runConfig{
		deckPath: deck, analysis: "tran", scheme: "serial", method: "gear2",
		probes: "out", outPath: out, loadMode: "auto", tracePath: trace,
	})
	if !errors.Is(err, wavepipe.ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if got := exitCodeFor(err); got != exitCanceled {
		t.Fatalf("exit code = %d, want %d", got, exitCanceled)
	}
	data, rerr := os.ReadFile(out)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if !strings.HasPrefix(string(data), "time,out") {
		t.Fatalf("partial waveform not written: %q", string(data))
	}
	if _, rerr := os.Stat(trace); rerr != nil {
		t.Fatalf("trace not written on cancellation: %v", rerr)
	}
}

// TestTraceFlagOutputs exercises -trace in both formats: a .jsonl path gets
// one JSON object per line, anything else a Chrome trace_event document.
func TestTraceFlagOutputs(t *testing.T) {
	deck := writeDeck(t, simDeck)
	dir := t.TempDir()

	jsonl := filepath.Join(dir, "run.jsonl")
	err := runCfg(t, runConfig{
		deckPath: deck, analysis: "tran", scheme: "combined", method: "gear2",
		tstop: "5u", probes: "out", outPath: filepath.Join(dir, "a.csv"),
		loadMode: "auto", threads: 4, tracePath: jsonl,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(jsonl)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 10 {
		t.Fatalf("jsonl trace suspiciously short: %d lines", len(lines))
	}
	for i, ln := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(ln), &rec); err != nil {
			t.Fatalf("line %d not JSON: %v", i+1, err)
		}
		if ty := rec["type"]; ty != "event" && ty != "snapshot" {
			t.Fatalf("line %d: unexpected type %v", i+1, ty)
		}
	}

	chrome := filepath.Join(dir, "run.json")
	err = runCfg(t, runConfig{
		deckPath: deck, analysis: "tran", scheme: "serial", method: "gear2",
		tstop: "5u", probes: "out", outPath: filepath.Join(dir, "b.csv"),
		loadMode: "auto", tracePath: chrome,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err = os.ReadFile(chrome)
	if err != nil {
		t.Fatal(err)
	}
	var doc []map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("chrome trace not JSON: %v", err)
	}
	if len(doc) < 10 {
		t.Fatalf("chrome trace suspiciously short: %d events", len(doc))
	}
	for i, ce := range doc {
		if _, ok := ce["ph"].(string); !ok {
			t.Fatalf("event %d missing ph: %v", i, ce)
		}
	}
}
