package main

import (
	"errors"
	"fmt"
	"testing"

	"wavepipe"
)

func TestExitCodeMapping(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"nil", nil, exitOK},
		{"generic", errors.New("boom"), exitGeneric},
		{"no-convergence", fmt.Errorf("x: %w", wavepipe.ErrNoConvergence), exitNoConvergence},
		{"singular", fmt.Errorf("x: %w", wavepipe.ErrSingular), exitSingular},
		{"non-finite", fmt.Errorf("x: %w", wavepipe.ErrNonFinite), exitNonFinite},
		{"step-too-small", fmt.Errorf("x: %w", wavepipe.ErrStepTooSmall), exitStepTooSmall},
		{"worker-panic", fmt.Errorf("x: %w", wavepipe.ErrWorkerPanic), exitWorkerPanic},
		// The ladder wraps the exhausting cause inside the step-too-small
		// wrapper; the outer classification must win.
		{"nested", fmt.Errorf("%w: %w", wavepipe.ErrStepTooSmall, wavepipe.ErrNoConvergence), exitStepTooSmall},
		{"sim-error", &wavepipe.SimError{Phase: "newton", Time: 1e-6, Cause: wavepipe.ErrNonFinite}, exitNonFinite},
	}
	for _, tc := range cases {
		if got := exitCodeFor(tc.err); got != tc.want {
			t.Errorf("%s: exit code %d, want %d", tc.name, got, tc.want)
		}
	}
}
