// Command wavesim is a netlist-driven circuit simulator: it reads a SPICE
// deck and runs transient (serial or WavePipe-parallel), AC or DC-sweep
// analysis, writing the results as CSV.
//
// Usage:
//
//	wavesim [-analysis tran] [-scheme combined] [-threads 4] [-cores 8]
//	        [-tstop 1u] [-probe out,in] [-method gear2] [-o out.csv] [-stats]
//	        [-trace run.json] [-metrics-addr :8123] deck.sp
//	wavesim -analysis ac deck.sp     # uses the deck's .AC card
//	wavesim -analysis dc deck.sp     # uses the deck's .DC card
//
// With -trace the transient run records its structured event stream and
// writes it on exit: a .jsonl path gets the line-delimited event log, any
// other extension gets Chrome trace_event JSON (load in chrome://tracing or
// https://ui.perfetto.dev). With -metrics-addr the run serves live counters
// over HTTP (Prometheus text at /metrics, JSON elsewhere) while it computes.
// Interrupting a run (SIGINT or SIGTERM) cancels it cleanly at the next time
// point: the partial waveform is still written, and the exit code is 8.
//
// Durable runs: -checkpoint FILE snapshots the complete run state to FILE
// every -checkpoint-every accepted points and once more when the run ends
// for any reason — including Ctrl-C, SIGTERM, -deadline expiry and watchdog
// aborts — so -resume FILE can pick the run back up where it stopped (a
// resumed serial run is bit-identical to an uninterrupted one). -deadline
// bounds the run's wall-clock time (exit code 9 on expiry); -stall-factor
// arms a watchdog that aborts a run whose solver has hung (exit code 10).
//
// Service mode: -remote URL submits the deck to a running wavesimd instance
// instead of simulating in-process — the same flags shape the job's options,
// and -stats additionally reports the job id and whether the daemon served
// the compiled circuit from its artifact cache. -json switches transient
// output from CSV to the versioned wire JSON document (wavepipe/wire
// schemaVersion 1), the same schema the service speaks.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"wavepipe"
	"wavepipe/client"
	"wavepipe/internal/netlist"
	"wavepipe/wire"
)

// Exit codes, one per error-taxonomy sentinel, so scripts can branch on the
// failure class without parsing stderr. 1 remains the generic failure
// (bad flags, unreadable deck, ...), 2 is flag.Usage.
const (
	exitOK            = 0
	exitGeneric       = 1
	exitUsage         = 2
	exitNoConvergence = 3
	exitSingular      = 4
	exitNonFinite     = 5
	exitStepTooSmall  = 6
	exitWorkerPanic   = 7
	exitCanceled      = 8
	exitDeadline      = 9
	exitStalled       = 10
)

// exitCodeFor maps an error to its exit code. The step-too-small and
// worker-panic wrappers are checked first: they wrap a deeper sentinel (the
// cause that exhausted the ladder), and the outermost failure is the one the
// caller should branch on.
func exitCodeFor(err error) int {
	switch {
	case err == nil:
		return exitOK
	case errors.Is(err, wavepipe.ErrCanceled):
		return exitCanceled
	case errors.Is(err, wavepipe.ErrDeadlineExceeded):
		return exitDeadline
	case errors.Is(err, wavepipe.ErrStalled):
		return exitStalled
	case errors.Is(err, wavepipe.ErrStepTooSmall):
		return exitStepTooSmall
	case errors.Is(err, wavepipe.ErrWorkerPanic):
		return exitWorkerPanic
	case errors.Is(err, wavepipe.ErrNonFinite):
		return exitNonFinite
	case errors.Is(err, wavepipe.ErrSingular):
		return exitSingular
	case errors.Is(err, wavepipe.ErrNoConvergence):
		return exitNoConvergence
	default:
		return exitGeneric
	}
}

// runConfig carries the parsed command line into run.
type runConfig struct {
	deckPath     string
	analysis     string
	scheme       string
	method       string
	tstop        string
	probes       string
	outPath      string
	interval     string
	loadMode     string
	tracePath    string
	metricsAddr  string
	ckptPath     string
	resumePath   string
	deadline     string
	ckptEvery    int
	stallFactor  float64
	threads      int
	cores        int
	lanes        int
	sweep        string
	windows      int
	coarseSteps  int
	coarseTol    float64
	windowGate   float64
	windowStrict bool
	reduceOn     bool
	reduceTol    float64
	bypassTol    float64
	devBypass    bool
	stats        bool
	jsonOut      bool
	remote       string
	priority     int
}

func main() {
	cfg := runConfig{}
	flag.StringVar(&cfg.analysis, "analysis", "tran", "analysis: tran, ac, dc")
	flag.StringVar(&cfg.scheme, "scheme", "serial", "engine: serial, backward, forward, combined, finegrain")
	flag.IntVar(&cfg.threads, "threads", 0, "worker threads for parallel schemes (0 = scheme default)")
	flag.IntVar(&cfg.cores, "cores", 0, "total core budget shared by pipeline workers and intra-point gangs (0 = unmanaged)")
	flag.StringVar(&cfg.tstop, "tstop", "", "override the deck's .TRAN stop time (SPICE units, e.g. 10u)")
	flag.StringVar(&cfg.method, "method", "gear2", "integration method: gear2, trap, be")
	flag.StringVar(&cfg.probes, "probe", "", "comma-separated node names to record (default: all nodes)")
	flag.StringVar(&cfg.interval, "interval", "", "resample transient output uniformly at this interval (e.g. 1u); default: the solver's own time points")
	flag.StringVar(&cfg.outPath, "o", "", "CSV output file (default: stdout)")
	flag.BoolVar(&cfg.stats, "stats", false, "print run statistics to stderr")
	flag.Float64Var(&cfg.bypassTol, "bypasstol", 0, "Newton factorization-bypass tolerance (0 = always factorize)")
	flag.BoolVar(&cfg.devBypass, "devbypass", false, "enable incremental assembly: linear-stamp template caching + SPICE-style device bypass")
	flag.StringVar(&cfg.loadMode, "loadmode", "auto", "parallel device-assembly strategy: auto, sharded, colored")
	flag.StringVar(&cfg.tracePath, "trace", "", "write the run's event trace to this file (.jsonl = JSONL event log, anything else = Chrome trace_event JSON)")
	flag.StringVar(&cfg.metricsAddr, "metrics-addr", "", "serve live run metrics over HTTP on this address (Prometheus text at /metrics)")
	flag.StringVar(&cfg.ckptPath, "checkpoint", "", "write durable run checkpoints to this file (periodic + final, atomic replace)")
	flag.IntVar(&cfg.ckptEvery, "checkpoint-every", 0, "checkpoint cadence in accepted points (0 = default 256; requires -checkpoint)")
	flag.StringVar(&cfg.resumePath, "resume", "", "resume the run from this checkpoint file")
	flag.StringVar(&cfg.deadline, "deadline", "", "wall-clock budget for the run (Go duration, e.g. 30s, 5m); exit 9 on expiry")
	flag.Float64Var(&cfg.stallFactor, "stall-factor", 0, "abort when no point is accepted within this multiple of the trailing per-point time (0 = off; exit 10)")
	flag.BoolVar(&cfg.jsonOut, "json", false, "write transient results as versioned wire JSON instead of CSV")
	flag.StringVar(&cfg.remote, "remote", "", "submit the deck to a wavesimd service at this base URL instead of simulating locally")
	flag.IntVar(&cfg.priority, "priority", 0, "job priority for -remote (higher runs first)")
	flag.IntVar(&cfg.lanes, "lanes", 0, "run N parameter-variant lanes as one batched ensemble (0 = off; requires -analysis tran)")
	flag.StringVar(&cfg.sweep, "sweep", "", "sweep spec NAME=lo:hi for -lanes: NAME is a .PARAM name or a device instance (R/C/L/V/I), lanes get linearly spaced values")
	flag.IntVar(&cfg.windows, "windows", 0, "split the run into N time-parallel Parareal windows refined concurrently by the selected engine (0 = off; requires -analysis tran)")
	flag.IntVar(&cfg.coarseSteps, "coarse-steps", 0, "fixed coarse-propagator steps per window (0 = default 16; requires -windows)")
	flag.Float64Var(&cfg.coarseTol, "coarse-tolscale", 0, "coarse-propagator Newton-tolerance loosening factor (0 = default 8; requires -windows)")
	flag.Float64Var(&cfg.windowGate, "window-gate", 0, "per-window convergence gate in fine error weights (0 = default 2; requires -windows)")
	flag.BoolVar(&cfg.windowStrict, "window-strict", false, "never accept a speculative window: bit-identical to the sequential window chain (requires -windows)")
	flag.BoolVar(&cfg.reduceOn, "reduce", false, "collapse series R/L chains and lump uniform RC ladders before simulation (probed nodes are preserved; suppressed waveforms are reconstructed)")
	flag.Float64Var(&cfg.reduceTol, "reduce-tol", wavepipe.DefaultReduceTol, "ladder-lumping waveform error budget for -reduce (0 = exact mode: series merges only)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: wavesim [flags] deck.sp")
		flag.Usage()
		os.Exit(exitUsage)
	}
	cfg.deckPath = flag.Arg(0)

	// Ctrl-C / SIGTERM cancels the run at the next time-point boundary; the
	// partial waveform (and trace) are still written before exiting 8.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if err := run(ctx, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "wavesim:", err)
		os.Exit(exitCodeFor(err))
	}
}

// reportFailure summarizes a failed transient run on stderr: the typed error
// context plus whatever the partial result says was accomplished and tried.
func reportFailure(w *os.File, res *wavepipe.Result, err error) {
	var se *wavepipe.SimError
	if errors.As(err, &se) {
		fmt.Fprintf(w, "wavesim: failed in %s phase at t=%g\n", se.Phase, se.Time)
	}
	if res == nil {
		return
	}
	fmt.Fprintf(w, "wavesim: partial result: points=%d recoveries=%d worker-panics=%d degraded-stages=%d\n",
		res.Stats.Points, res.Stats.Recoveries, res.Stats.WorkerPanics, res.Stats.DegradedStages)
	for _, e := range res.Recovery.Events() {
		fmt.Fprintf(w, "wavesim:   recovery at t=%g: %s %s\n", e.T, e.Kind, e.Detail)
	}
}

// writeTrace exports a recorded event stream: JSONL for .jsonl paths, Chrome
// trace_event JSON otherwise.
func writeTrace(path string, rec *wavepipe.TraceRecorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(strings.ToLower(path), ".jsonl") {
		err = wavepipe.WriteTraceJSONL(f, rec.Events(), rec.Snapshots())
	} else {
		err = wavepipe.WriteChromeTrace(f, rec.Events(), rec.Snapshots())
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// serveMetrics exposes m over HTTP until the process exits. The listener is
// bound synchronously so scripts can scrape immediately after startup.
func serveMetrics(addr string, m *wavepipe.TraceMetrics) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("metrics listener: %w", err)
	}
	fmt.Fprintf(os.Stderr, "wavesim: serving metrics on http://%s/metrics\n", ln.Addr())
	go func() {
		srv := &http.Server{Handler: m.Handler(), ReadHeaderTimeout: 5 * time.Second}
		_ = srv.Serve(ln)
	}()
	return nil
}

func run(ctx context.Context, cfg runConfig) error {
	src, err := os.ReadFile(cfg.deckPath)
	if err != nil {
		return err
	}
	deck, err := wavepipe.ParseDeck(string(src))
	if err != nil {
		return err
	}
	var record []string
	if cfg.probes != "" {
		record = strings.Split(cfg.probes, ",")
	}
	out := os.Stdout
	if cfg.outPath != "" {
		f, err := os.Create(cfg.outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}

	if cfg.jsonOut {
		switch strings.ToLower(cfg.analysis) {
		case "tran", "":
		default:
			return fmt.Errorf("-json supports only -analysis tran")
		}
	}

	switch strings.ToLower(cfg.analysis) {
	case "ac":
		res, err := wavepipe.RunDeckAC(deck, wavepipe.ACOptions{Record: record})
		if err != nil {
			return err
		}
		return writeAC(out, res)
	case "dc":
		w, err := wavepipe.RunDeckDC(deck, record)
		if err != nil {
			return err
		}
		return w.WriteCSV(out)
	case "tran", "":
		// handled below
	default:
		return fmt.Errorf("unknown analysis %q", cfg.analysis)
	}

	opts := wavepipe.TranOptions{Threads: cfg.threads, CoreBudget: cfg.cores, BypassTol: cfg.bypassTol, DeviceBypass: cfg.devBypass}
	switch strings.ToLower(cfg.loadMode) {
	case "auto", "":
		opts.LoadMode = wavepipe.LoadAuto
	case "sharded":
		opts.LoadMode = wavepipe.LoadSharded
	case "colored":
		opts.LoadMode = wavepipe.LoadColored
	default:
		return fmt.Errorf("unknown load mode %q", cfg.loadMode)
	}
	switch strings.ToLower(cfg.scheme) {
	case "serial":
		opts.Scheme = wavepipe.Serial
	case "backward":
		opts.Scheme = wavepipe.Backward
	case "forward":
		opts.Scheme = wavepipe.Forward
	case "combined":
		opts.Scheme = wavepipe.Combined
	case "finegrain":
		opts.Scheme = wavepipe.FineGrained
	default:
		return fmt.Errorf("unknown scheme %q", cfg.scheme)
	}
	switch strings.ToLower(cfg.method) {
	case "gear2", "":
		opts.Method = wavepipe.Gear2
	case "trap":
		opts.Method = wavepipe.Trapezoidal
	case "be":
		opts.Method = wavepipe.BackwardEuler
	default:
		return fmt.Errorf("unknown method %q", cfg.method)
	}
	if cfg.tstop != "" {
		v, err := netlist.ParseValue(cfg.tstop)
		if err != nil {
			return fmt.Errorf("bad -tstop: %w", err)
		}
		opts.TStop = v
	}
	opts.Record = record
	opts.CheckpointPath = cfg.ckptPath
	opts.CheckpointEvery = cfg.ckptEvery
	opts.ResumeFrom = cfg.resumePath
	opts.StallFactor = cfg.stallFactor
	opts.Reduce = cfg.reduceOn
	if cfg.reduceOn {
		opts.ReduceTol = cfg.reduceTol
	}
	opts.Windows = cfg.windows
	opts.CoarseOpts = wavepipe.CoarseOptions{
		Steps:    cfg.coarseSteps,
		TolScale: cfg.coarseTol,
		Gate:     cfg.windowGate,
		Strict:   cfg.windowStrict,
	}
	if cfg.windows > 1 && (cfg.lanes != 0 || cfg.sweep != "") {
		return fmt.Errorf("-windows cannot be combined with -lanes/-sweep: windows parallelize one run over time, lanes batch many runs")
	}
	if cfg.deadline != "" {
		d, err := time.ParseDuration(cfg.deadline)
		if err != nil {
			return fmt.Errorf("bad -deadline: %w", err)
		}
		opts.Deadline = d
	}

	if cfg.remote != "" {
		if cfg.lanes != 0 || cfg.sweep != "" {
			return fmt.Errorf("-remote does not support -lanes/-sweep")
		}
		if cfg.tracePath != "" || cfg.metricsAddr != "" || cfg.ckptPath != "" || cfg.resumePath != "" {
			return fmt.Errorf("the service manages checkpoints and traces itself; drop -trace/-metrics-addr/-checkpoint/-resume with -remote")
		}
		return runRemote(ctx, cfg, string(src), opts, out)
	}

	var rec *wavepipe.TraceRecorder
	var observers []wavepipe.Observer
	if cfg.tracePath != "" {
		rec = wavepipe.NewTraceRecorder(0) // unbounded: the export must reconcile
		observers = append(observers, rec)
	}
	if cfg.metricsAddr != "" {
		metrics := wavepipe.NewTraceMetrics()
		if err := serveMetrics(cfg.metricsAddr, metrics); err != nil {
			return err
		}
		observers = append(observers, metrics)
	}
	if len(observers) > 0 {
		opts.Observer = wavepipe.MultiObserver(observers...)
	}

	if cfg.lanes != 0 || cfg.sweep != "" {
		return runLanes(ctx, cfg, deck, opts, out, rec)
	}

	start := time.Now()
	res, err := wavepipe.RunDeckCtx(ctx, deck, opts)
	wall := time.Since(start)
	if rec != nil && res != nil {
		// Written even on failure/cancellation: the trace of a broken run is
		// exactly the one worth looking at.
		if terr := writeTrace(cfg.tracePath, rec); terr != nil {
			fmt.Fprintln(os.Stderr, "wavesim: trace:", terr)
		}
	}
	if err != nil {
		interrupted := errors.Is(err, wavepipe.ErrCanceled) ||
			errors.Is(err, wavepipe.ErrDeadlineExceeded) ||
			errors.Is(err, wavepipe.ErrStalled)
		if res != nil && interrupted {
			// An interrupted run (signal, deadline, stall watchdog) still
			// delivers the waveform computed so far; the engine flushed a
			// final checkpoint before returning when one is configured.
			switch {
			case errors.Is(err, wavepipe.ErrDeadlineExceeded):
				fmt.Fprintf(os.Stderr, "wavesim: deadline exceeded at %d points; writing partial waveform\n", res.Stats.Points)
			case errors.Is(err, wavepipe.ErrStalled):
				fmt.Fprintf(os.Stderr, "wavesim: run stalled at %d points; writing partial waveform\n", res.Stats.Points)
			default:
				fmt.Fprintf(os.Stderr, "wavesim: canceled at %d points; writing partial waveform\n", res.Stats.Points)
			}
			if cfg.ckptPath != "" {
				fmt.Fprintf(os.Stderr, "wavesim: checkpoint saved to %s; resume with -resume %s\n", cfg.ckptPath, cfg.ckptPath)
			}
			if werr := writeTranResult(out, res, cfg); werr != nil {
				return werr
			}
			return err
		}
		reportFailure(os.Stderr, res, err)
		return err
	}

	if err := writeTranResult(out, res, cfg); err != nil {
		return err
	}
	if cfg.stats {
		fmt.Fprintf(os.Stderr,
			"wavesim: %s | scheme=%s points=%d stages=%d nr-iters=%d lte-rejects=%d discarded=%d recoveries=%d full-factor=%d refactor=%d bypassed=%d wall=%s\n",
			deck.Title, cfg.scheme, res.Stats.Points, res.Stats.Stages,
			res.Stats.NRIters, res.Stats.LTERejects, res.Stats.Discarded,
			res.Stats.Recoveries, res.Stats.FullFactorizations, res.Stats.Refactorizations,
			res.Stats.BypassedFactorizations, wall.Round(time.Microsecond))
		if cfg.devBypass {
			fmt.Fprintf(os.Stderr,
				"wavesim: device bypass: bypassed-evals=%d linear-stamp-hits=%d\n",
				res.Stats.BypassedEvals, res.Stats.LinearStampHits)
		}
		if res.Stats.CoreBudget > 0 {
			fmt.Fprintf(os.Stderr,
				"wavesim: core budget %d split as %d pipeline x %d intra (pipeline serialized: %v)\n",
				res.Stats.CoreBudget, res.Stats.PipelineWorkers, res.Stats.IntraWorkers,
				res.Stats.PipelineSerialized)
		}
		if res.Stats.WindowsLaunched > 0 {
			fmt.Fprintf(os.Stderr,
				"wavesim: time-parallel windows=%d parareal-iters=%d redos=%d\n",
				res.Stats.WindowsLaunched, res.Stats.PararealIters, res.Stats.WindowRedos)
		}
		if cfg.reduceOn {
			fmt.Fprintf(os.Stderr,
				"wavesim: reduction: nodes-removed=%d devices-removed=%d (tol=%g)\n",
				res.Stats.ReducedNodes, res.Stats.ReducedDevices, cfg.reduceTol)
		}
		for _, e := range res.Recovery.Events() {
			fmt.Fprintf(os.Stderr, "wavesim:   recovery at t=%g: %s %s\n", e.T, e.Kind, e.Detail)
		}
	}
	return nil
}

// writeTranResult renders a transient result: -interval resampling first,
// then either the versioned wire JSON document (-json) or CSV.
func writeTranResult(out *os.File, res *wavepipe.Result, cfg runConfig) error {
	w := res.W
	if cfg.interval != "" {
		dt, err := netlist.ParseValue(cfg.interval)
		if err != nil {
			return fmt.Errorf("bad -interval: %w", err)
		}
		if w, err = w.Resample(dt); err != nil {
			return err
		}
	}
	if cfg.jsonOut {
		r := *res
		r.W = w
		return wire.Encode(out, wire.FromResult(&r))
	}
	return w.WriteCSV(out)
}

// runRemote ships the deck to a wavesimd instance and renders the result
// exactly as a local run would. The service owns checkpointing, preemption
// and artifact reuse; this path only submits, waits, and prints.
func runRemote(ctx context.Context, cfg runConfig, src string, opts wavepipe.TranOptions, out *os.File) error {
	c, err := client.New(cfg.remote, nil)
	if err != nil {
		return err
	}
	defer c.Close()
	st, err := c.Submit(ctx, wavepipe.JobSpec{
		Deck:     src,
		Options:  opts,
		Priority: cfg.priority,
		Label:    filepath.Base(cfg.deckPath),
	})
	if err != nil {
		return err
	}
	if cfg.stats {
		fmt.Fprintf(os.Stderr, "wavesim: remote job %s at %s cache-hit=%v\n",
			st.ID, cfg.remote, st.CacheHit)
	}
	res, err := c.Wait(ctx, st.ID)
	if err != nil {
		if res != nil {
			fmt.Fprintf(os.Stderr, "wavesim: remote job %s failed (%v); writing partial waveform\n", st.ID, err)
			if werr := writeTranResult(out, res, cfg); werr != nil {
				return werr
			}
		}
		return err
	}
	if cfg.stats {
		if final, serr := c.Status(ctx, st.ID); serr == nil {
			fmt.Fprintf(os.Stderr, "wavesim: remote job %s done: points=%d cores=%d resumes=%d\n",
				final.ID, final.Points, final.Cores, final.Resumes)
		}
	}
	return writeTranResult(out, res, cfg)
}

// parseSweep splits a -sweep spec NAME=lo:hi into its parts; the bounds
// accept SPICE magnitude suffixes (4.7k, 20f).
func parseSweep(spec string) (name string, lo, hi float64, err error) {
	eq := strings.IndexByte(spec, '=')
	if eq <= 0 {
		return "", 0, 0, fmt.Errorf("bad -sweep %q: want NAME=lo:hi", spec)
	}
	name = spec[:eq]
	bounds := strings.Split(spec[eq+1:], ":")
	if len(bounds) != 2 {
		return "", 0, 0, fmt.Errorf("bad -sweep %q: want NAME=lo:hi", spec)
	}
	if lo, err = netlist.ParseValue(bounds[0]); err != nil {
		return "", 0, 0, fmt.Errorf("bad -sweep lower bound: %w", err)
	}
	if hi, err = netlist.ParseValue(bounds[1]); err != nil {
		return "", 0, 0, fmt.Errorf("bad -sweep upper bound: %w", err)
	}
	return name, lo, hi, nil
}

// runLanes is the batched-ensemble path (-lanes / -sweep): K variants of
// the deck run in lockstep sharing one symbolic analysis, and each lane's
// waveform is written as its own CSV section under a "# lane" header.
func runLanes(ctx context.Context, cfg runConfig, deck *wavepipe.Deck, opts wavepipe.TranOptions, out *os.File, rec *wavepipe.TraceRecorder) error {
	k := cfg.lanes
	if k == 0 {
		k = 8 // -sweep without -lanes: a reasonable corner count
	}
	if k < 2 {
		return fmt.Errorf("-lanes must be at least 2 (got %d)", cfg.lanes)
	}
	variants := make([]wavepipe.LaneSpec, k)
	if cfg.sweep != "" {
		name, lo, hi, err := parseSweep(cfg.sweep)
		if err != nil {
			return err
		}
		// A .PARAM name sweeps through re-elaboration (dependent expressions
		// track it); anything else must be a single-valued device instance.
		_, isParam := deck.Params[strings.ToLower(name)]
		for i := range variants {
			v := lo + (hi-lo)*float64(i)/float64(k-1)
			variants[i].Name = fmt.Sprintf("%s=%g", name, v)
			if isParam {
				variants[i].Params = map[string]float64{name: v}
			} else {
				variants[i].Devices = map[string]float64{name: v}
			}
		}
	} else {
		for i := range variants {
			variants[i].Name = fmt.Sprintf("lane%d", i)
		}
	}

	start := time.Now()
	res, err := wavepipe.RunEnsembleCtx(ctx, deck, variants, opts)
	wall := time.Since(start)
	if rec != nil && cfg.tracePath != "" {
		if terr := writeTrace(cfg.tracePath, rec); terr != nil {
			fmt.Fprintln(os.Stderr, "wavesim: trace:", terr)
		}
	}
	if err != nil {
		return err
	}

	var firstErr error
	for _, lr := range res.Lanes {
		if lr.Err != nil {
			fmt.Fprintf(os.Stderr, "wavesim: lane %s: %v\n", lr.Name, lr.Err)
			if firstErr == nil {
				firstErr = lr.Err
			}
		}
		if lr.Res == nil {
			continue
		}
		w := lr.Res.W
		if cfg.interval != "" {
			dt, err := netlist.ParseValue(cfg.interval)
			if err != nil {
				return fmt.Errorf("bad -interval: %w", err)
			}
			if w, err = w.Resample(dt); err != nil {
				return err
			}
		}
		fmt.Fprintf(out, "# lane %s\n", lr.Name)
		if err := w.WriteCSV(out); err != nil {
			return err
		}
	}
	if cfg.stats {
		fmt.Fprintf(os.Stderr,
			"wavesim: ensemble %s | lanes=%d workers=%d rounds=%d points=%d nr-iters=%d recoveries=%d crit=%s wall=%s\n",
			deck.Title, len(res.Lanes), res.Stats.PipelineWorkers, res.Rounds,
			res.Stats.Points, res.Stats.NRIters, res.Stats.Recoveries,
			time.Duration(res.Stats.CriticalNanos).Round(time.Microsecond),
			wall.Round(time.Microsecond))
		for _, lr := range res.Lanes {
			if lr.Err == nil {
				fmt.Fprintf(os.Stderr, "wavesim:   %s: points=%d nr-iters=%d\n",
					lr.Name, lr.Res.Stats.Points, lr.Res.Stats.NRIters)
			}
		}
	}
	return firstErr
}

// writeAC renders an AC result as CSV: frequency, then magnitude (dB) and
// phase (degrees) per signal.
func writeAC(out *os.File, res *wavepipe.ACResult) error {
	fmt.Fprint(out, "freq")
	for _, n := range res.Names {
		fmt.Fprintf(out, ",%s_db,%s_deg", n, n)
	}
	fmt.Fprintln(out)
	cols := make([][]float64, 0, 2*len(res.Names))
	for _, n := range res.Names {
		db, err := res.MagDB(n)
		if err != nil {
			return err
		}
		ph, err := res.PhaseDeg(n)
		if err != nil {
			return err
		}
		cols = append(cols, db, ph)
	}
	for k, f := range res.Freqs {
		fmt.Fprintf(out, "%.9g", f)
		for _, col := range cols {
			fmt.Fprintf(out, ",%.6g", col[k])
		}
		fmt.Fprintln(out)
	}
	return nil
}
