// Command wavesim is a netlist-driven circuit simulator: it reads a SPICE
// deck and runs transient (serial or WavePipe-parallel), AC or DC-sweep
// analysis, writing the results as CSV.
//
// Usage:
//
//	wavesim [-analysis tran] [-scheme combined] [-threads 4] [-tstop 1u]
//	        [-probe out,in] [-method gear2] [-o out.csv] [-stats] deck.sp
//	wavesim -analysis ac deck.sp     # uses the deck's .AC card
//	wavesim -analysis dc deck.sp     # uses the deck's .DC card
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"wavepipe"
	"wavepipe/internal/netlist"
)

// Exit codes, one per error-taxonomy sentinel, so scripts can branch on the
// failure class without parsing stderr. 1 remains the generic failure
// (bad flags, unreadable deck, ...), 2 is flag.Usage.
const (
	exitOK            = 0
	exitGeneric       = 1
	exitUsage         = 2
	exitNoConvergence = 3
	exitSingular      = 4
	exitNonFinite     = 5
	exitStepTooSmall  = 6
	exitWorkerPanic   = 7
)

// exitCodeFor maps an error to its exit code. The step-too-small and
// worker-panic wrappers are checked first: they wrap a deeper sentinel (the
// cause that exhausted the ladder), and the outermost failure is the one the
// caller should branch on.
func exitCodeFor(err error) int {
	switch {
	case err == nil:
		return exitOK
	case errors.Is(err, wavepipe.ErrStepTooSmall):
		return exitStepTooSmall
	case errors.Is(err, wavepipe.ErrWorkerPanic):
		return exitWorkerPanic
	case errors.Is(err, wavepipe.ErrNonFinite):
		return exitNonFinite
	case errors.Is(err, wavepipe.ErrSingular):
		return exitSingular
	case errors.Is(err, wavepipe.ErrNoConvergence):
		return exitNoConvergence
	default:
		return exitGeneric
	}
}

func main() {
	var (
		analysisFlag = flag.String("analysis", "tran", "analysis: tran, ac, dc")
		schemeFlag   = flag.String("scheme", "serial", "engine: serial, backward, forward, combined, finegrain")
		threadsFlag  = flag.Int("threads", 0, "worker threads for parallel schemes (0 = scheme default)")
		tstopFlag    = flag.String("tstop", "", "override the deck's .TRAN stop time (SPICE units, e.g. 10u)")
		methodFlag   = flag.String("method", "gear2", "integration method: gear2, trap, be")
		probeFlag    = flag.String("probe", "", "comma-separated node names to record (default: all nodes)")
		intervalFlag = flag.String("interval", "", "resample transient output uniformly at this interval (e.g. 1u); default: the solver's own time points")
		outFlag      = flag.String("o", "", "CSV output file (default: stdout)")
		statsFlag    = flag.Bool("stats", false, "print run statistics to stderr")
		bypassFlag   = flag.Float64("bypasstol", 0, "Newton factorization-bypass tolerance (0 = always factorize)")
		loadModeFlag = flag.String("loadmode", "auto", "parallel device-assembly strategy: auto, sharded, colored")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: wavesim [flags] deck.sp")
		flag.Usage()
		os.Exit(exitUsage)
	}

	if err := run(flag.Arg(0), *analysisFlag, *schemeFlag, *methodFlag, *tstopFlag, *probeFlag, *outFlag, *intervalFlag, *loadModeFlag, *threadsFlag, *bypassFlag, *statsFlag); err != nil {
		fmt.Fprintln(os.Stderr, "wavesim:", err)
		os.Exit(exitCodeFor(err))
	}
}

// reportFailure summarizes a failed transient run on stderr: the typed error
// context plus whatever the partial result says was accomplished and tried.
func reportFailure(w *os.File, res *wavepipe.Result, err error) {
	var se *wavepipe.SimError
	if errors.As(err, &se) {
		fmt.Fprintf(w, "wavesim: failed in %s phase at t=%g\n", se.Phase, se.Time)
	}
	if res == nil {
		return
	}
	fmt.Fprintf(w, "wavesim: partial result: points=%d recoveries=%d worker-panics=%d degraded-stages=%d\n",
		res.Stats.Points, res.Stats.Recoveries, res.Stats.WorkerPanics, res.Stats.DegradedStages)
	for _, e := range res.Recovery.Events() {
		fmt.Fprintf(w, "wavesim:   recovery at t=%g: %s %s\n", e.T, e.Kind, e.Detail)
	}
}

func run(deckPath, analysis, schemeName, methodName, tstop, probes, outPath, interval, loadMode string, threads int, bypassTol float64, stats bool) error {
	src, err := os.ReadFile(deckPath)
	if err != nil {
		return err
	}
	deck, err := wavepipe.ParseDeck(string(src))
	if err != nil {
		return err
	}
	var record []string
	if probes != "" {
		record = strings.Split(probes, ",")
	}
	out := os.Stdout
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}

	switch strings.ToLower(analysis) {
	case "ac":
		res, err := wavepipe.RunDeckAC(deck, wavepipe.ACOptions{Record: record})
		if err != nil {
			return err
		}
		return writeAC(out, res)
	case "dc":
		w, err := wavepipe.RunDeckDC(deck, record)
		if err != nil {
			return err
		}
		return w.WriteCSV(out)
	case "tran", "":
		// handled below
	default:
		return fmt.Errorf("unknown analysis %q", analysis)
	}

	opts := wavepipe.TranOptions{Threads: threads, BypassTol: bypassTol}
	switch strings.ToLower(loadMode) {
	case "auto", "":
		opts.LoadMode = wavepipe.LoadAuto
	case "sharded":
		opts.LoadMode = wavepipe.LoadSharded
	case "colored":
		opts.LoadMode = wavepipe.LoadColored
	default:
		return fmt.Errorf("unknown load mode %q", loadMode)
	}
	switch strings.ToLower(schemeName) {
	case "serial":
		opts.Scheme = wavepipe.Serial
	case "backward":
		opts.Scheme = wavepipe.Backward
	case "forward":
		opts.Scheme = wavepipe.Forward
	case "combined":
		opts.Scheme = wavepipe.Combined
	case "finegrain":
		opts.Scheme = wavepipe.FineGrained
	default:
		return fmt.Errorf("unknown scheme %q", schemeName)
	}
	switch strings.ToLower(methodName) {
	case "gear2", "":
		opts.Method = wavepipe.Gear2
	case "trap":
		opts.Method = wavepipe.Trapezoidal
	case "be":
		opts.Method = wavepipe.BackwardEuler
	default:
		return fmt.Errorf("unknown method %q", methodName)
	}
	if tstop != "" {
		v, err := netlist.ParseValue(tstop)
		if err != nil {
			return fmt.Errorf("bad -tstop: %w", err)
		}
		opts.TStop = v
	}
	opts.Record = record

	start := time.Now()
	res, err := wavepipe.RunDeck(deck, opts)
	if err != nil {
		reportFailure(os.Stderr, res, err)
		return err
	}
	wall := time.Since(start)

	w := res.W
	if interval != "" {
		dt, err := netlist.ParseValue(interval)
		if err != nil {
			return fmt.Errorf("bad -interval: %w", err)
		}
		if w, err = w.Resample(dt); err != nil {
			return err
		}
	}
	if err := w.WriteCSV(out); err != nil {
		return err
	}
	if stats {
		fmt.Fprintf(os.Stderr,
			"wavesim: %s | scheme=%s points=%d stages=%d nr-iters=%d lte-rejects=%d discarded=%d recoveries=%d full-factor=%d refactor=%d bypassed=%d wall=%s\n",
			deck.Title, schemeName, res.Stats.Points, res.Stats.Stages,
			res.Stats.NRIters, res.Stats.LTERejects, res.Stats.Discarded,
			res.Stats.Recoveries, res.Stats.FullFactorizations, res.Stats.Refactorizations,
			res.Stats.BypassedFactorizations, wall.Round(time.Microsecond))
		for _, e := range res.Recovery.Events() {
			fmt.Fprintf(os.Stderr, "wavesim:   recovery at t=%g: %s %s\n", e.T, e.Kind, e.Detail)
		}
	}
	return nil
}

// writeAC renders an AC result as CSV: frequency, then magnitude (dB) and
// phase (degrees) per signal.
func writeAC(out *os.File, res *wavepipe.ACResult) error {
	fmt.Fprint(out, "freq")
	for _, n := range res.Names {
		fmt.Fprintf(out, ",%s_db,%s_deg", n, n)
	}
	fmt.Fprintln(out)
	cols := make([][]float64, 0, 2*len(res.Names))
	for _, n := range res.Names {
		db, err := res.MagDB(n)
		if err != nil {
			return err
		}
		ph, err := res.PhaseDeg(n)
		if err != nil {
			return err
		}
		cols = append(cols, db, ph)
	}
	for k, f := range res.Freqs {
		fmt.Fprintf(out, "%.9g", f)
		for _, col := range cols {
			fmt.Fprintf(out, ",%.6g", col[k])
		}
		fmt.Fprintln(out)
	}
	return nil
}
