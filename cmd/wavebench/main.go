// Command wavebench regenerates the evaluation of the WavePipe
// reproduction: every table and figure listed in DESIGN.md / EXPERIMENTS.md.
//
//	wavebench -all            # everything (several minutes)
//	wavebench -table 2        # backward-pipelining speedup table
//	wavebench -fig scaling    # speedup vs thread count series
//	wavebench -quick -all     # reduced windows (smoke test)
//
// Tables print in the layout of the corresponding table in the paper;
// figures print as CSV series ready for plotting.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"runtime/debug"
	"strings"
	"time"

	"wavepipe"
	"wavepipe/internal/circuit"
	"wavepipe/internal/circuits"
)

var (
	quick       = flag.Bool("quick", false, "reduce simulation windows 5x (smoke test)")
	reps        = flag.Int("reps", 1, "wall-clock repetitions (minimum is reported)")
	tracePath   = flag.String("trace", "", "record every timed run's event stream to this file (.jsonl = JSONL, else Chrome trace_event JSON)")
	metricsAddr = flag.String("metrics-addr", "", "serve live run metrics over HTTP on this address (Prometheus text at /metrics)")
	deadline    = flag.String("deadline", "", "wall-clock budget per timed run (Go duration, e.g. 5m); a run exceeding it aborts the regeneration")

	// benchDeadline is the parsed -deadline, applied to every timed run.
	benchDeadline time.Duration

	// benchObserver, when non-nil, is attached to every timed run so one
	// trace/metrics stream covers the whole regeneration. Tracing perturbs
	// the per-solve timings slightly; don't combine with published numbers.
	benchObserver wavepipe.Observer
)

// isFlagSet reports whether the named flag was given on the command line
// (as opposed to sitting at its default value).
func isFlagSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

func main() {
	table := flag.Int("table", 0, "regenerate table N (1-4)")
	fig := flag.String("fig", "", "regenerate figure: stepsize, accuracy, scaling, work, fwp, ablation, loadscale, corescale, bypassscale, lanescale, windowscale, reducescale")
	all := flag.Bool("all", false, "regenerate every table and figure")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON metrics (see -bench, -bypasstol)")
	benchName := flag.String("bench", "grid16", "circuit for -json, -fig corescale and -fig bypassscale (a suite name, or all)")
	bypassTol := flag.Float64("bypasstol", 0, "factorization-bypass tolerance for the -json run")
	devBypass := flag.Bool("devbypass", false, "enable incremental assembly (linear-stamp caching + device bypass) for the -json run")
	cores := flag.Int("cores", 0, "core budget for the -json run (0 = unmanaged)")
	maxCores := flag.Int("maxcores", 0, "largest core budget for -fig corescale (0 = NumCPU)")
	flag.Parse()

	if *deadline != "" {
		d, err := time.ParseDuration(*deadline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wavebench: bad -deadline:", err)
			os.Exit(2)
		}
		benchDeadline = d
	}

	var traceRec *wavepipe.TraceRecorder
	var observers []wavepipe.Observer
	if *tracePath != "" {
		// Default-sized ring: -all regenerations emit far more events than a
		// single run and only the most recent window is usually of interest.
		traceRec = wavepipe.NewTraceRecorder(-1)
		observers = append(observers, traceRec)
	}
	if *metricsAddr != "" {
		m := wavepipe.NewTraceMetrics()
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wavebench: metrics listener:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wavebench: serving metrics on http://%s/metrics\n", ln.Addr())
		go func() {
			srv := &http.Server{Handler: m.Handler(), ReadHeaderTimeout: 5 * time.Second}
			_ = srv.Serve(ln)
		}()
		observers = append(observers, m)
	}
	if len(observers) > 0 {
		benchObserver = wavepipe.MultiObserver(observers...)
	}
	defer func() {
		if traceRec == nil {
			return
		}
		if err := writeTrace(*tracePath, traceRec); err != nil {
			fmt.Fprintln(os.Stderr, "wavebench: trace:", err)
		}
	}()

	// corescale and bypassscale are resolved before the -json early return:
	// with -json they emit the sweep as JSON records instead of CSV text.
	if *fig == "corescale" {
		if err := figCoreScale(*benchName, *maxCores, *jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, "wavebench:", err)
			os.Exit(1)
		}
		return
	}
	if *fig == "windowscale" {
		name := *benchName
		if !isFlagSet("bench") {
			name = "" // default to the ladder400+grid16 pair, not grid16
		}
		if err := figWindowScale(name, *maxCores, *jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, "wavebench:", err)
			os.Exit(1)
		}
		return
	}
	if *fig == "reducescale" {
		name := *benchName
		if !isFlagSet("bench") {
			name = "" // default to the full ladder sweep + grid16 control
		}
		if err := figReduceScale(name, *jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, "wavebench:", err)
			os.Exit(1)
		}
		return
	}
	if *fig == "bypassscale" {
		if err := figBypassScale(*benchName, *jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, "wavebench:", err)
			os.Exit(1)
		}
		return
	}
	if *fig == "lanescale" {
		if err := figLaneScale(*jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, "wavebench:", err)
			os.Exit(1)
		}
		return
	}
	if *jsonOut {
		if err := jsonMetrics(*benchName, *bypassTol, *cores, *devBypass); err != nil {
			fmt.Fprintln(os.Stderr, "wavebench:", err)
			os.Exit(1)
		}
		return
	}
	if !*all && *table == 0 && *fig == "" {
		flag.Usage()
		os.Exit(2)
	}
	fmt.Printf("wavebench: GOMAXPROCS=%d quick=%v reps=%d\n", runtime.GOMAXPROCS(0), *quick, *reps)
	fmt.Println("speedups use the pipeline critical-path timing model (measured per-solve")
	fmt.Println("times, max over concurrent workers per stage); wall(ms) is the host's")
	fmt.Println("actual 1-socket wall clock and matches the model when enough cores exist.")
	fmt.Println()

	run := func(name string, f func() error) {
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "wavebench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}
	if *all || *table == 1 {
		run("table1", table1)
	}
	if *all || *table == 2 {
		run("table2", table2)
	}
	if *all || *table == 3 {
		run("table3", table3)
	}
	if *all || *table == 4 {
		run("table4", table4)
	}
	if *all || *fig == "stepsize" {
		run("stepsize", figStepSize)
	}
	if *all || *fig == "accuracy" {
		run("accuracy", figAccuracy)
	}
	if *all || *fig == "scaling" {
		run("scaling", figScaling)
	}
	if *all || *fig == "work" {
		run("work", figWork)
	}
	if *all || *fig == "fwp" {
		run("fwp", figFWP)
	}
	if *all || *fig == "ablation" {
		run("ablation", figAblation)
	}
	if *all || *fig == "loadscale" {
		run("loadscale", figLoadScale)
	}
	if *all {
		run("bypassscale", func() error { return figBypassScale(*benchName, false) })
	}
}

func window(b circuits.Benchmark) float64 {
	if *quick {
		return b.TStop / 5
	}
	return b.TStop
}

// build compiles a benchmark circuit once; systems are immutable and safe
// to reuse across engine runs.
func build(b circuits.Benchmark) (*circuit.System, error) {
	return b.Make().Build()
}

// timed runs a configuration reps times and returns the fastest wall time
// with the (identical) result. The shared -trace/-metrics-addr observer is
// attached here so every measured run across every table and figure feeds
// the same telemetry stream.
func timed(sys *circuit.System, opts wavepipe.TranOptions) (time.Duration, *wavepipe.Result, error) {
	opts.Observer = benchObserver
	opts.Deadline = benchDeadline
	var best time.Duration
	var bestCrit int64
	var res *wavepipe.Result
	for i := 0; i < *reps; i++ {
		// GC pauses land inside individual per-solve measurements and bias
		// the per-stage max() statistic; collect up front and pause the
		// collector for the timed region.
		runtime.GC()
		old := debug.SetGCPercent(-1)
		start := time.Now()
		r, err := wavepipe.RunTransient(sys, opts)
		d := time.Since(start)
		debug.SetGCPercent(old)
		if err != nil {
			return 0, nil, err
		}
		if i == 0 || r.Stats.CriticalNanos < bestCrit {
			best = d
			bestCrit = r.Stats.CriticalNanos
			res = r
		}
	}
	return best, res, nil
}

func table1() error {
	fmt.Println("Table 1: benchmark circuit characteristics (reconstructed)")
	fmt.Printf("%-10s %-8s %8s %9s %9s %12s\n", "circuit", "kind", "nodes", "devices", "unknowns", "tran window")
	for _, b := range circuits.Suite() {
		st, err := b.Describe()
		if err != nil {
			return err
		}
		fmt.Printf("%-10s %-8s %8d %9d %9d %12.3g\n", b.Name, b.Kind, st.Nodes, st.Devices, st.Unknowns, window(b))
	}
	return nil
}

// speedupTable measures one scheme at the given thread counts against the
// serial baseline.
func speedupTable(title string, scheme wavepipe.Scheme, threadCounts []int) error {
	fmt.Println(title)
	header := fmt.Sprintf("%-10s %10s %8s", "circuit", "serial(ms)", "points")
	for _, th := range threadCounts {
		header += fmt.Sprintf(" %11s %8s %7s", fmt.Sprintf("%dT(ms)", th), "speedup", "stages")
	}
	fmt.Println(header)
	type acc struct {
		sum float64
		n   int
	}
	sums := make([]acc, len(threadCounts))
	for _, b := range circuits.Suite() {
		sys, err := build(b)
		if err != nil {
			return err
		}
		base := wavepipe.TranOptions{TStop: window(b), Record: []string{b.Probe}}
		_, serialRes, err := timed(sys, base)
		if err != nil {
			return err
		}
		serialCrit := serialRes.Stats.CriticalNanos
		row := fmt.Sprintf("%-10s %10.2f %8d", b.Name, nanosMS(serialCrit), serialRes.Stats.Points)
		for i, th := range threadCounts {
			opts := base
			opts.Scheme = scheme
			opts.Threads = th
			_, res, err := timed(sys, opts)
			if err != nil {
				return err
			}
			sp := float64(serialCrit) / float64(res.Stats.CriticalNanos)
			sums[i].sum += sp
			sums[i].n++
			row += fmt.Sprintf(" %11.2f %8.2f %7d", nanosMS(res.Stats.CriticalNanos), sp, res.Stats.Stages)
		}
		fmt.Println(row)
	}
	avg := fmt.Sprintf("%-10s %10s %8s", "average", "", "")
	for _, a := range sums {
		avg += fmt.Sprintf(" %11s %8.2f %7s", "", a.sum/float64(a.n), "")
	}
	fmt.Println(avg)
	return nil
}

func nanosMS(n int64) float64 { return float64(n) / 1e6 }

func table2() error {
	return speedupTable(
		"Table 2: backward pipelining (BWP) speedup vs serial Gear-2 (reconstructed)",
		wavepipe.Backward, []int{2, 3})
}

func table3() error {
	return speedupTable(
		"Table 3: forward pipelining (FWP) speedup vs serial Gear-2 (reconstructed)",
		wavepipe.Forward, []int{2})
}

func table4() error {
	return speedupTable(
		"Table 4: combined WavePipe speedup vs serial Gear-2 (reconstructed)",
		wavepipe.Combined, []int{3, 4})
}

func figStepSize() error {
	fmt.Println("Figure F1: time-step trace, serial vs backward pipelining (CSV)")
	for _, name := range []string{"rect1k", "amp10M"} {
		b, ok := findBench(name)
		if !ok {
			return fmt.Errorf("no benchmark %s", name)
		}
		sys, err := build(b)
		if err != nil {
			return err
		}
		base := wavepipe.TranOptions{TStop: window(b), Record: []string{b.Probe}}
		_, serial, err := timed(sys, base)
		if err != nil {
			return err
		}
		opts := base
		opts.Scheme = wavepipe.Backward
		opts.Threads = 2
		_, bw, err := timed(sys, opts)
		if err != nil {
			return err
		}
		fmt.Printf("# circuit=%s columns: engine,time,step\n", b.Name)
		emit := func(tag string, res *wavepipe.Result) {
			steps := res.W.StepSizes()
			for i, h := range steps {
				fmt.Printf("%s,%.6g,%.6g\n", tag, res.W.Times[i+1], h)
			}
		}
		emit("serial", serial)
		emit("bwp2", bw)
		// Summary line for quick reading.
		fmt.Printf("# %s: serial points=%d, bwp2 stages=%d (critical path), bwp2 points=%d\n",
			b.Name, serial.Stats.Points, bw.Stats.Stages, bw.Stats.Points)
	}
	return nil
}

func figAccuracy() error {
	fmt.Println("Figure F2: accuracy vs serial reference (max / RMS deviation, relative to signal range)")
	fmt.Printf("%-10s %-10s %12s %12s %12s\n", "circuit", "scheme", "max(V)", "rms(V)", "rel-max")
	for _, name := range []string{"ring9", "rect1k", "inv50"} {
		b, ok := findBench(name)
		if !ok {
			return fmt.Errorf("no benchmark %s", name)
		}
		sys, err := build(b)
		if err != nil {
			return err
		}
		base := wavepipe.TranOptions{TStop: window(b), Record: []string{b.Probe}}
		_, ref, err := timed(sys, base)
		if err != nil {
			return err
		}
		for _, s := range []wavepipe.Scheme{wavepipe.Backward, wavepipe.Forward, wavepipe.Combined} {
			opts := base
			opts.Scheme = s
			opts.Threads = 4
			_, res, err := timed(sys, opts)
			if err != nil {
				return err
			}
			dev, err := wavepipe.Compare(res.W, ref.W, b.Probe)
			if err != nil {
				return err
			}
			fmt.Printf("%-10s %-10s %12.3e %12.3e %12.5f\n", b.Name, s, dev.Max, dev.RMS, dev.RelMax())
		}
	}
	return nil
}

func figScaling() error {
	fmt.Println("Figure F3: speedup vs thread count (CSV: scheme,threads,speedup)")
	b, _ := findBench("grid24")
	sys, err := build(b)
	if err != nil {
		return err
	}
	base := wavepipe.TranOptions{TStop: window(b), Record: []string{b.Probe}}
	_, serialRes, err := timed(sys, base)
	if err != nil {
		return err
	}
	serialCrit := serialRes.Stats.CriticalNanos
	fmt.Printf("serial,1,1.00\n")
	type cfg struct {
		scheme  wavepipe.Scheme
		threads []int
	}
	for _, c := range []cfg{
		{wavepipe.Backward, []int{2, 3, 4}},
		{wavepipe.Forward, []int{2}},
		{wavepipe.Combined, []int{3, 4}},
		{wavepipe.FineGrained, []int{2, 3, 4}},
	} {
		for _, th := range c.threads {
			opts := base
			opts.Scheme = c.scheme
			opts.Threads = th
			_, res, err := timed(sys, opts)
			if err != nil {
				return err
			}
			fmt.Printf("%s,%d,%.2f\n", c.scheme, th, float64(serialCrit)/float64(res.Stats.CriticalNanos))
		}
	}
	return nil
}

func figWork() error {
	fmt.Println("Figure F4: work overhead — WavePipe computes more points but finishes earlier")
	fmt.Printf("%-10s %-10s %8s %8s %10s %10s\n", "circuit", "scheme", "points", "stages", "nr-iters", "discarded")
	for _, b := range circuits.Suite() {
		sys, err := build(b)
		if err != nil {
			return err
		}
		base := wavepipe.TranOptions{TStop: window(b), Record: []string{b.Probe}}
		for _, s := range []wavepipe.Scheme{wavepipe.Serial, wavepipe.Backward, wavepipe.Combined} {
			opts := base
			opts.Scheme = s
			opts.Threads = 4
			_, res, err := timed(sys, opts)
			if err != nil {
				return err
			}
			fmt.Printf("%-10s %-10s %8d %8d %10d %10d\n",
				b.Name, s, res.Stats.Points, res.Stats.Stages, res.Stats.NRIters, res.Stats.Discarded)
		}
	}
	return nil
}

// figFWP shows that forward pipelining's gain tracks the per-point Newton
// cost: circuits whose models converge in ~2 iterations leave nothing to
// overlap, while junction-limited BJT circuits (the stand-in for the
// paper's BSIM-class models) give the speculative phase real latency to
// hide.
func figFWP() error {
	fmt.Println("Figure F5: forward pipelining gain vs per-point Newton cost")
	fmt.Println("(looser tolerances take larger steps, making each point cost more Newton")
	fmt.Println("iterations - emulating the heavier per-point cost of BSIM-class models)")
	fmt.Printf("%-10s %8s %12s %10s %10s %10s\n", "circuit", "reltol", "iters/solve", "serial(ms)", "fwp2(ms)", "speedup")
	for _, name := range []string{"inv50", "ekv30", "rect1k", "ecl8"} {
		b, ok := findBench(name)
		if !ok {
			return fmt.Errorf("no benchmark %s", name)
		}
		sys, err := build(b)
		if err != nil {
			return err
		}
		for _, reltol := range []float64{1e-3, 1e-2} {
			base := wavepipe.TranOptions{TStop: window(b), Record: []string{b.Probe}, RelTol: reltol}
			_, serialRes, err := timed(sys, base)
			if err != nil {
				return err
			}
			opts := base
			opts.Scheme = wavepipe.Forward
			opts.Threads = 2
			_, res, err := timed(sys, opts)
			if err != nil {
				return err
			}
			iters := float64(serialRes.Stats.NRIters) / float64(serialRes.Stats.Solves)
			fmt.Printf("%-10s %8.0e %12.2f %10.2f %10.2f %10.2f\n", b.Name, reltol, iters,
				nanosMS(serialRes.Stats.CriticalNanos), nanosMS(res.Stats.CriticalNanos),
				float64(serialRes.Stats.CriticalNanos)/float64(res.Stats.CriticalNanos))
		}
	}
	return nil
}

func figAblation() error {
	fmt.Println("Ablation A1: backward offset ratio δ/h sweep (grid16, 2 threads)")
	fmt.Printf("%-8s %10s %8s %10s\n", "delta", "wall(ms)", "speedup", "stages")
	b, _ := findBench("grid16")
	sys, err := build(b)
	if err != nil {
		return err
	}
	base := wavepipe.TranOptions{TStop: window(b), Record: []string{b.Probe}}
	_, serialRes, err := timed(sys, base)
	if err != nil {
		return err
	}
	serialCrit := serialRes.Stats.CriticalNanos
	for _, delta := range []float64{0.05, 0.1, 0.2, 0.3, 0.5} {
		opts := base
		opts.Scheme = wavepipe.Backward
		opts.Threads = 2
		opts.DeltaRatio = delta
		_, res, err := timed(sys, opts)
		if err != nil {
			return err
		}
		fmt.Printf("%-8.2f %10.2f %8.2f %10d\n", delta,
			nanosMS(res.Stats.CriticalNanos), float64(serialCrit)/float64(res.Stats.CriticalNanos), res.Stats.Stages)
	}

	fmt.Println("\nAblation A2: growth-cap policy (ladder400, combined 4T)")
	fmt.Printf("%-12s %10s %8s %12s\n", "policy", "wall(ms)", "speedup", "rel-max-dev")
	lb, _ := findBench("ladder400")
	lsys, err := build(lb)
	if err != nil {
		return err
	}
	lbase := wavepipe.TranOptions{TStop: window(lb), Record: []string{lb.Probe}}
	_, lref, err := timed(lsys, lbase)
	if err != nil {
		return err
	}
	lserialCrit := lref.Stats.CriticalNanos
	for _, aggressive := range []bool{false, true} {
		opts := lbase
		opts.Scheme = wavepipe.Combined
		opts.Threads = 4
		opts.AggressiveGrowth = aggressive
		_, res, err := timed(lsys, opts)
		if err != nil {
			return err
		}
		dev, err := wavepipe.Compare(res.W, lref.W, lb.Probe)
		if err != nil {
			return err
		}
		name := "per-stage"
		if aggressive {
			name = "per-point"
		}
		fmt.Printf("%-12s %10.2f %8.2f %12.5f\n", name,
			nanosMS(res.Stats.CriticalNanos), float64(lserialCrit)/float64(res.Stats.CriticalNanos), dev.RelMax())
	}
	return nil
}

func findBench(name string) (circuits.Benchmark, bool) {
	for _, b := range circuits.Suite() {
		if b.Name == name {
			return b, true
		}
	}
	return circuits.Benchmark{}, false
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// writeTrace exports the recorded event stream: JSONL for .jsonl paths,
// Chrome trace_event JSON otherwise.
func writeTrace(path string, rec *wavepipe.TraceRecorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if rec.Dropped() > 0 {
		fmt.Fprintf(os.Stderr, "wavebench: trace ring dropped %d oldest events\n", rec.Dropped())
	}
	if strings.HasSuffix(strings.ToLower(path), ".jsonl") {
		err = wavepipe.WriteTraceJSONL(f, rec.Events(), rec.Snapshots())
	} else {
		err = wavepipe.WriteChromeTrace(f, rec.Events(), rec.Snapshots())
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
