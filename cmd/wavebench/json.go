package main

// Machine-readable metrics (-json) and the load-scaling figure: the
// measurements that seed BENCH_*.json perf-trajectory tracking and the
// EXPERIMENTS.md sharded-vs-colored assembly comparison.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"wavepipe"
	"wavepipe/internal/circuit"
	"wavepipe/internal/circuits"
)

// benchMetrics is one benchmark's machine-readable record.
type benchMetrics struct {
	Circuit                string  `json:"circuit"`
	Scheme                 string  `json:"scheme"`
	NsPerOp                int64   `json:"ns_per_op"`
	AllocsPerOp            uint64  `json:"allocs_per_op"`
	Points                 int     `json:"points"`
	Stages                 int     `json:"stages"`
	NRIters                int     `json:"nr_iters"`
	BypassTol              float64 `json:"bypass_tol"`
	BypassedFactorizations int     `json:"bypassed_factorizations"`
	Refactorizations       int     `json:"refactorizations"`
	FullFactorizations     int     `json:"full_factorizations"`
	LoadSerialNs           int64   `json:"load_serial_ns"`
	LoadSharded4Ns         int64   `json:"load_sharded4_ns"`
	LoadColored4Ns         int64   `json:"load_colored4_ns"`
	// LoadReductionNs is what one device-load call saves under the colored
	// direct-stamp path relative to shard-and-reduce at 4 workers.
	LoadReductionNs int64 `json:"load_reduction_ns"`
}

// measureLoadNs returns the fastest observed wall time of one full device
// load under the given assembly configuration (workers <= 1 is the plain
// serial path).
func measureLoadNs(sys *circuit.System, mode circuit.LoadMode, workers int) int64 {
	ws := sys.NewWorkspace()
	if workers > 1 {
		ws.SetLoadWorkers(workers)
		ws.SetLoadMode(mode)
	}
	x := make([]float64, sys.N)
	p := circuit.LoadParams{Alpha0: 1e9, Gmin: 1e-12, SrcScale: 1}
	ws.Load(x, p) // warm up (coloring probe, pools)
	const iters = 20
	best := int64(0)
	for r := 0; r < 5; r++ {
		start := time.Now()
		for i := 0; i < iters; i++ {
			ws.Load(x, p)
		}
		d := time.Since(start).Nanoseconds() / iters
		if best == 0 || d < best {
			best = d
		}
	}
	return best
}

// jsonMetrics runs the selected circuit once per configuration and emits a
// JSON array of benchMetrics on stdout.
func jsonMetrics(benchName string, bypassTol float64) error {
	var records []benchMetrics
	for _, b := range circuits.Suite() {
		if benchName != "all" && b.Name != benchName {
			continue
		}
		sys, err := build(b)
		if err != nil {
			return err
		}
		loadSerial := measureLoadNs(sys, circuit.LoadAuto, 1)
		loadSharded := measureLoadNs(sys, circuit.LoadSharded, 4)
		loadColored := measureLoadNs(sys, circuit.LoadColored, 4)
		opts := wavepipe.TranOptions{
			TStop:     window(b),
			Record:    []string{b.Probe},
			BypassTol: bypassTol,
		}
		var ms0, ms1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&ms0)
		start := time.Now()
		res, err := wavepipe.RunTransient(sys, opts)
		wall := time.Since(start)
		runtime.ReadMemStats(&ms1)
		if err != nil {
			return fmt.Errorf("%s: %w", b.Name, err)
		}
		records = append(records, benchMetrics{
			Circuit:                b.Name,
			Scheme:                 "serial",
			NsPerOp:                wall.Nanoseconds(),
			AllocsPerOp:            ms1.Mallocs - ms0.Mallocs,
			Points:                 res.Stats.Points,
			Stages:                 res.Stats.Stages,
			NRIters:                res.Stats.NRIters,
			BypassTol:              bypassTol,
			BypassedFactorizations: res.Stats.BypassedFactorizations,
			Refactorizations:       res.Stats.Refactorizations,
			FullFactorizations:     res.Stats.FullFactorizations,
			LoadSerialNs:           loadSerial,
			LoadSharded4Ns:         loadSharded,
			LoadColored4Ns:         loadColored,
			LoadReductionNs:        loadSharded - loadColored,
		})
	}
	if len(records) == 0 {
		return fmt.Errorf("no benchmark circuit %q", benchName)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(records)
}

// figLoadScale prints the sharded-vs-colored assembly comparison: one full
// device load at 1/2/4 workers under both strategies, per suite circuit.
func figLoadScale() error {
	fmt.Println("Figure F6: device-load assembly scaling, sharded vs colored (ns per load)")
	fmt.Printf("%-10s %8s %10s %10s %10s %10s %8s %8s\n",
		"circuit", "serial", "shard2", "shard4", "color2", "color4", "sp2", "sp4")
	for _, b := range circuits.Suite() {
		sys, err := build(b)
		if err != nil {
			return err
		}
		serial := measureLoadNs(sys, circuit.LoadAuto, 1)
		sh2 := measureLoadNs(sys, circuit.LoadSharded, 2)
		sh4 := measureLoadNs(sys, circuit.LoadSharded, 4)
		co2 := measureLoadNs(sys, circuit.LoadColored, 2)
		co4 := measureLoadNs(sys, circuit.LoadColored, 4)
		fmt.Printf("%-10s %8d %10d %10d %10d %10d %8.2f %8.2f\n",
			b.Name, serial, sh2, sh4, co2, co4,
			float64(sh2)/float64(co2), float64(sh4)/float64(co4))
	}
	fmt.Println("sp2/sp4: sharded-vs-colored time ratio at the same worker count (>1 favours colored)")
	return nil
}
